//! Baseline FHE accelerators (CraterLake, ARK, BTS, SHARP) and the
//! cross-deployment study of Fig. 8.
//!
//! The baselines' ResNet-20 latencies and EDPs are the published numbers;
//! other benchmarks are scaled by a CKKS complexity factor normalized to
//! ResNet-20, exactly as §5.1 describes ("We normalize the computational
//! complexity of other benchmarks to that of ResNet-20"). The factor model
//! charges one unit per conv+activation layer (its two bootstraps dominate),
//! `k²−1` comparison units per max-pool window element, and a small epilogue
//! for pooling/softmax — which reproduces the paper's implied per-model
//! ratios within a few percent.

use athena_nn::models::{ModelSpec, NonLinear};

use crate::lower::lower;
use crate::sim::AthenaSim;
use athena_core::trace::{trace_model, TraceParams};
use athena_nn::qmodel::QuantConfig;

/// A baseline ASIC with its published figures.
#[derive(Debug, Clone, Copy)]
pub struct Baseline {
    /// Name.
    pub name: &'static str,
    /// Published ResNet-20 latency (ms), CKKS-based.
    pub resnet20_ms: f64,
    /// Published ResNet-20 EDP (J·s).
    pub resnet20_edp: f64,
    /// Die area (mm²), Table 9.
    pub area_mm2: f64,
    /// Effective element-wise modular-ops throughput per cycle when forced
    /// to run the *Athena* workload (Fig. 8 model; calibrated to the
    /// paper's reported 3.8× / 9.9× slowdowns).
    pub athena_mma_per_cycle: f64,
    /// NTT throughput relative to the Athena accelerator's NTT unit.
    pub ntt_rel: f64,
}

/// The four baselines.
pub fn baselines() -> Vec<Baseline> {
    vec![
        Baseline {
            name: "CraterLake",
            resnet20_ms: 321.0,
            resnet20_edp: 11.61,
            area_mm2: 222.7,
            // The CRB unit has many MACs but a broadcast-only dataflow;
            // only a fraction sustains FBS's independent streams.
            athena_mma_per_cycle: 9000.0,
            ntt_rel: 1.5,
        },
        Baseline {
            name: "ARK",
            resnet20_ms: 125.0,
            resnet20_edp: 1.99,
            area_mm2: 418.3,
            athena_mma_per_cycle: 6000.0,
            ntt_rel: 2.0,
        },
        Baseline {
            name: "BTS",
            resnet20_ms: 1910.0,
            resnet20_edp: 600.6,
            area_mm2: 373.6,
            athena_mma_per_cycle: 4000.0,
            ntt_rel: 1.0,
        },
        Baseline {
            name: "SHARP",
            resnet20_ms: 99.0,
            resnet20_edp: 0.96,
            area_mm2: 178.8,
            // Short-word BConv systolic arrays: singular dataflow, modest
            // MM/MA capacity for the FBS pattern.
            athena_mma_per_cycle: 3400.0,
            ntt_rel: 2.2,
        },
    ]
}

/// CKKS workload units of a model (bootstrap-dominated cost model; see
/// module docs).
pub fn ckks_units(spec: &ModelSpec) -> f64 {
    let mut units = 0.0;
    for l in &spec.layers {
        match l.act {
            NonLinear::Activation => units += 1.0,
            NonLinear::MaxPool { k } => units += 1.27 * (k * k - 1) as f64,
            NonLinear::AvgPool { .. } => units += 0.2,
            NonLinear::Softmax => units += 0.2,
            NonLinear::None => units += 0.05, // downsample conv, no bootstrap
        }
    }
    units
}

/// Baseline latency (ms) of a model: published ResNet-20 number scaled by
/// the unit ratio.
pub fn baseline_latency_ms(b: &Baseline, spec: &ModelSpec) -> f64 {
    let rn20 = ckks_units(&ModelSpec::resnet(3));
    b.resnet20_ms * ckks_units(spec) / rn20
}

/// Baseline EDP (J·s) scaled the same way in both factors (energy scales
/// with work, delay scales with work).
pub fn baseline_edp(b: &Baseline, spec: &ModelSpec) -> f64 {
    let rn20 = ckks_units(&ModelSpec::resnet(3));
    let f = ckks_units(spec) / rn20;
    b.resnet20_edp * f * f
}

/// Fig. 8: latency of the *Athena framework* when deployed on a baseline
/// machine (assuming it is given an SE unit, as the paper does). MM/MA and
/// NTT throughputs come from the baseline; no region pipelining.
pub fn athena_workload_on_baseline(b: &Baseline, spec: &ModelSpec, quant: &QuantConfig) -> f64 {
    let params = TraceParams::athena_production();
    let trace = trace_model(spec, &params, quant);
    let sim = AthenaSim::athena();
    let mut cycles = 0.0;
    for layer in &trace.layers {
        for (_, ops) in &layer.phases {
            let w = lower(ops, &params);
            let mma = (w.fru_mm + w.fru_ma) as f64 / b.athena_mma_per_cycle;
            let ntt = w.ntt_polys as f64 * 80.0 / b.ntt_rel;
            let autom = w.autom_polys as f64 * 96.0;
            cycles += mma + ntt + autom + w.se_cycles as f64;
        }
    }
    let _ = sim;
    cycles / 1e6 // 1 GHz → ms
}

/// Share of MM+MA time in the Fig. 8 deployment (the paper reports >77%
/// for CraterLake and >84% for SHARP).
pub fn mma_share_on_baseline(b: &Baseline, spec: &ModelSpec, quant: &QuantConfig) -> f64 {
    let params = TraceParams::athena_production();
    let trace = trace_model(spec, &params, quant);
    let mut mma_cy = 0.0;
    let mut total = 0.0;
    for layer in &trace.layers {
        for (_, ops) in &layer.phases {
            let w = lower(ops, &params);
            let mma = (w.fru_mm + w.fru_ma) as f64 / b.athena_mma_per_cycle;
            let ntt = w.ntt_polys as f64 * 80.0 / b.ntt_rel;
            let autom = w.autom_polys as f64 * 96.0;
            mma_cy += mma;
            total += mma + ntt + autom + w.se_cycles as f64;
        }
    }
    mma_cy / total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_factors_match_paper_ratios() {
        // The paper's implied per-model scaling factors (same across all
        // four baselines): LeNet ≈ 0.567, MNIST ≈ 0.11, ResNet-56 ≈ 2.95.
        let rn20 = ckks_units(&ModelSpec::resnet(3));
        let lenet = ckks_units(&ModelSpec::lenet()) / rn20;
        let mnist = ckks_units(&ModelSpec::mnist()) / rn20;
        let rn56 = ckks_units(&ModelSpec::resnet(9)) / rn20;
        assert!((lenet - 0.567).abs() < 0.07, "LeNet factor {lenet}");
        assert!((mnist - 0.11).abs() < 0.02, "MNIST factor {mnist}");
        assert!((rn56 - 2.95).abs() < 0.25, "ResNet-56 factor {rn56}");
    }

    #[test]
    fn table6_baseline_rows_reproduced() {
        // Scaled latencies should land near the published Table 6 rows.
        let rows: &[(&str, [f64; 4])] = &[
            // (name, [LeNet, MNIST, RN20, RN56])
            ("CraterLake", [182.0, 35.0, 321.0, 946.0]),
            ("ARK", [71.0, 14.0, 125.0, 368.0]),
            ("BTS", [1084.0, 206.0, 1910.0, 5627.0]),
            ("SHARP", [56.0, 11.0, 99.0, 292.0]),
        ];
        let specs = [
            ModelSpec::lenet(),
            ModelSpec::mnist(),
            ModelSpec::resnet(3),
            ModelSpec::resnet(9),
        ];
        for b in baselines() {
            let (_, published) = rows
                .iter()
                .find(|(n, _)| *n == b.name)
                .expect("baseline row");
            for (spec, &want) in specs.iter().zip(published) {
                let got = baseline_latency_ms(&b, spec);
                let rel = (got - want).abs() / want;
                assert!(
                    rel < 0.12,
                    "{} on {}: {got:.1} vs {want} ({rel:.2})",
                    b.name,
                    spec.name
                );
            }
        }
    }

    #[test]
    fn athena_accelerator_beats_baselines_on_athena_workload() {
        // Fig. 8: CraterLake ≥ 3.8× and SHARP ≥ 9.9× slower than the
        // Athena accelerator when running the Athena framework.
        let spec = ModelSpec::resnet(3);
        let q = QuantConfig::w7a7();
        let athena_ms = AthenaSim::athena().run_model(&spec, &q).latency_ms;
        for b in baselines() {
            if b.name == "CraterLake" || b.name == "SHARP" {
                let ms = athena_workload_on_baseline(&b, &spec, &q);
                let slowdown = ms / athena_ms;
                let target = if b.name == "CraterLake" { 3.8 } else { 9.9 };
                assert!(
                    slowdown > target * 0.6 && slowdown < target * 1.8,
                    "{}: slowdown {slowdown:.1} vs paper {target}",
                    b.name
                );
                let share = mma_share_on_baseline(&b, &spec, &q);
                assert!(share > 0.7, "{} MM/MA share {share:.2}", b.name);
            }
        }
    }
}
