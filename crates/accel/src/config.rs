//! Hardware configuration of the Athena accelerator (§4, Fig. 5, Table 9)
//! and its component library.

/// Clock and unit provisioning of the accelerator.
#[derive(Debug, Clone, Copy)]
pub struct AccelConfig {
    /// Clock frequency in GHz (the paper evaluates at 1 GHz).
    pub freq_ghz: f64,
    /// Vector lanes (the paper's "parallelism of the accelerator is 2048").
    pub lanes: usize,
    /// Radix-8 NTT cores (256 cores process 2048 butterflies per cycle).
    pub ntt_cores: usize,
    /// Automorphism cores (8 cores of lane width 256).
    pub autom_cores: usize,
    /// FRU blocks in Region 1 (16 blocks × `lanes` MM+MA).
    pub fru_blocks_r1: usize,
    /// FRU blocks in Region 0 (1 block).
    pub fru_blocks_r0: usize,
    /// Scratchpad capacity in MiB (45 + 15 register file).
    pub scratchpad_mib: f64,
    /// Scratchpad bandwidth in TB/s.
    pub scratchpad_tbs: f64,
    /// HBM bandwidth in TB/s.
    pub hbm_tbs: f64,
    /// HBM capacity in GiB.
    pub hbm_gib: f64,
    /// Whether the Region-0/Region-1 pipelined FBS dataflow is enabled
    /// (§4.3); disabling it is the dataflow ablation.
    pub fbs_pipelined: bool,
    /// Fixed per-layer overhead cycles: pipeline fill/drain between the
    /// five steps, evaluation-key staging, and the per-layer LUT
    /// interpolation (t log t scalar work). Calibrated against Table 6.
    pub layer_overhead_cycles: f64,
}

impl AccelConfig {
    /// The paper's configuration.
    pub fn athena() -> Self {
        Self {
            freq_ghz: 1.0,
            lanes: 2048,
            ntt_cores: 256,
            autom_cores: 8,
            fru_blocks_r1: 16,
            fru_blocks_r0: 1,
            scratchpad_mib: 45.0 + 15.0,
            scratchpad_tbs: 180.0,
            hbm_tbs: 1.0,
            hbm_gib: 16.0,
            fbs_pipelined: true,
            layer_overhead_cycles: 6.0e5,
        }
    }

    /// Scaled-lane variant for the Fig. 13 sensitivity sweep: scales one
    /// unit class's parallelism while keeping the rest at full size.
    pub fn with_scaled_unit(mut self, unit: ScaledUnit, lanes: usize) -> Self {
        let factor = lanes as f64 / 2048.0;
        match unit {
            ScaledUnit::Ntt => {
                self.ntt_cores = ((self.ntt_cores as f64) * factor).max(1.0) as usize
            }
            ScaledUnit::Fru => {
                self.fru_blocks_r1 =
                    (((self.fru_blocks_r1 * 2048) as f64 * factor) / 2048.0).max(1.0) as usize;
            }
            ScaledUnit::Autom => {
                self.autom_cores = ((self.autom_cores as f64) * factor).max(1.0) as usize;
            }
            ScaledUnit::Se => { /* SE throughput handled via se_lanes() */ }
        }
        if let ScaledUnit::Se = unit {
            self.lanes = lanes; // SE shifter width follows lanes
        }
        self
    }
}

/// The four compute-unit classes swept in Fig. 13.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScaledUnit {
    /// NTT unit.
    Ntt,
    /// FRU array.
    Fru,
    /// Automorphism unit.
    Autom,
    /// Sample-extraction unit.
    Se,
}

impl ScaledUnit {
    /// All classes.
    pub fn all() -> [ScaledUnit; 4] {
        [
            ScaledUnit::Ntt,
            ScaledUnit::Fru,
            ScaledUnit::Autom,
            ScaledUnit::Se,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            ScaledUnit::Ntt => "NTT",
            ScaledUnit::Fru => "FRU",
            ScaledUnit::Autom => "Automorphism",
            ScaledUnit::Se => "SE",
        }
    }
}

/// One component of the floorplan (Table 9).
#[derive(Debug, Clone, Copy)]
pub struct Component {
    /// Name.
    pub name: &'static str,
    /// Area in mm² (ASAP7-derived, as reported).
    pub area_mm2: f64,
    /// Peak power in W at 1 GHz.
    pub peak_power_w: f64,
}

/// Table 9's component library.
pub fn floorplan() -> Vec<Component> {
    vec![
        Component {
            name: "Automorphism",
            area_mm2: 3.8,
            peak_power_w: 3.0,
        },
        Component {
            name: "PRNG",
            area_mm2: 1.2,
            peak_power_w: 1.9,
        },
        Component {
            name: "NTT",
            area_mm2: 4.51,
            peak_power_w: 3.9,
        },
        Component {
            name: "SE",
            area_mm2: 0.32,
            peak_power_w: 0.94,
        },
        Component {
            name: "FRU",
            area_mm2: 42.6,
            peak_power_w: 89.1,
        },
        Component {
            name: "NoC",
            area_mm2: 5.9,
            peak_power_w: 7.8,
        },
        Component {
            name: "Register Files (15MB)",
            area_mm2: 8.4,
            peak_power_w: 4.9,
        },
        Component {
            name: "Scratchpad SRAM (45MB)",
            area_mm2: 20.1,
            peak_power_w: 4.8,
        },
        Component {
            name: "HBM (2x HBM2E)",
            area_mm2: 29.6,
            peak_power_w: 31.8,
        },
    ]
}

/// Total accelerator area (mm²).
pub fn total_area_mm2() -> f64 {
    floorplan().iter().map(|c| c.area_mm2).sum()
}

/// Total peak power (W).
pub fn total_power_w() -> f64 {
    floorplan().iter().map(|c| c.peak_power_w).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table9_totals() {
        assert!(
            (total_area_mm2() - 116.4).abs() < 0.5,
            "area {}",
            total_area_mm2()
        );
        assert!(
            (total_power_w() - 148.1).abs() < 0.5,
            "power {}",
            total_power_w()
        );
    }

    #[test]
    fn athena_config_matches_paper() {
        let c = AccelConfig::athena();
        assert_eq!(c.lanes, 2048);
        assert_eq!(c.fru_blocks_r1, 16);
        assert_eq!(c.ntt_cores, 256);
        assert!((c.scratchpad_tbs - 180.0).abs() < 1e-9);
    }

    #[test]
    fn lane_scaling() {
        let c = AccelConfig::athena().with_scaled_unit(ScaledUnit::Ntt, 512);
        assert_eq!(c.ntt_cores, 64);
        let c = AccelConfig::athena().with_scaled_unit(ScaledUnit::Fru, 1024);
        assert_eq!(c.fru_blocks_r1, 8);
    }
}
