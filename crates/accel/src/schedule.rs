//! Discrete-event schedule of one FBS evaluation on the two-region
//! accelerator (§4.3, Fig. 7): an explicit timeline of which unit does what
//! when, from which the pipelined latency and per-region utilization fall
//! out — the fine-grained companion to the aggregate cycle model in
//! [`crate::sim`].
//!
//! Alg. 2's structure: `gs` giant-step blocks; each block needs `bs`
//! SMult+HAdd passes (Region 1's FRU stream) followed by one CMult against
//! the giant power (Region 0 + NTT unit). Region 0's CMult for block `g`
//! can run while Region 1 streams block `g+1` — the §4.3 pipeline. The
//! baby-power and giant-power precomputation (CMult chains on Region 0)
//! prefixes the pipeline.

use crate::config::AccelConfig;
use athena_core::trace::TraceParams;

/// Execution resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Region {
    /// Region 1: the 16-block FRU array (baby-step SMult/HAdd streams).
    R1,
    /// Region 0: full CU set (CMult tensor/relin + NTT).
    R0,
}

/// One scheduled interval.
#[derive(Debug, Clone)]
pub struct Event {
    /// Resource.
    pub region: Region,
    /// Start cycle.
    pub start: f64,
    /// End cycle.
    pub end: f64,
    /// What runs in the interval.
    pub label: String,
}

/// A complete FBS schedule.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// All intervals, in issue order.
    pub events: Vec<Event>,
    /// Total latency in cycles.
    pub latency: f64,
}

impl Schedule {
    /// Busy cycles of a region.
    pub fn busy(&self, region: Region) -> f64 {
        self.events
            .iter()
            .filter(|e| e.region == region)
            .map(|e| e.end - e.start)
            .sum()
    }

    /// Utilization of a region over the schedule span.
    pub fn utilization(&self, region: Region) -> f64 {
        if self.latency == 0.0 {
            0.0
        } else {
            self.busy(region) / self.latency
        }
    }

    /// Renders a coarse text Gantt chart (for reports/debugging).
    pub fn gantt(&self, columns: usize) -> String {
        let mut lines = [vec![b' '; columns], vec![b' '; columns]];
        for e in &self.events {
            let row = match e.region {
                Region::R1 => 0,
                Region::R0 => 1,
            };
            let a = (e.start / self.latency * columns as f64) as usize;
            let b = ((e.end / self.latency * columns as f64) as usize).min(columns);
            for c in &mut lines[row][a.min(columns.saturating_sub(1))..b] {
                *c = if row == 0 { b'=' } else { b'#' };
            }
        }
        format!(
            "R1 |{}|\nR0 |{}|",
            String::from_utf8_lossy(&lines[0]),
            String::from_utf8_lossy(&lines[1])
        )
    }
}

/// Per-operation region costs (cycles), derived from the same unit model as
/// [`crate::sim`].
#[derive(Debug, Clone, Copy)]
pub struct OpCosts {
    /// One SMult+HAdd pass on Region 1.
    pub smult_r1: f64,
    /// One CMult on Region 0 (tensor + fused BConv/relin + NTTs).
    pub cmult_r0: f64,
}

impl OpCosts {
    /// Costs at a configuration and parameter set.
    pub fn new(config: &AccelConfig, params: &TraceParams) -> Self {
        let n = params.n as f64;
        let k = params.limbs as f64;
        let r1 = (config.fru_blocks_r1 * 2048) as f64;
        let r0 = (config.fru_blocks_r0 * 2048) as f64;
        let ntt_lanes = (config.ntt_cores * 8) as f64;
        let ntt_cycles = (n.log2() / 3.0).ceil() * (n / ntt_lanes).max(1.0);
        Self {
            smult_r1: 2.0 * k * n / r1,
            cmult_r0: (6.0 * k + k * k / 2.0) * n / r0 + 2.0 * k * ntt_cycles,
        }
    }
}

/// Builds the schedule of one FBS with LUT size `t_eff`.
///
/// `pipelined = false` serializes the regions (the ablation).
pub fn schedule_fbs(t_eff: u64, costs: &OpCosts, pipelined: bool) -> Schedule {
    let bs = (t_eff as f64).sqrt().ceil();
    let gs = (t_eff as f64 / bs).ceil() as usize;
    let mut events = Vec::new();
    // Prologue on Region 0: baby + giant power ladders (≈ 2·bs CMults in a
    // log-depth tree; the tree's parallelism is bounded by Region 0, so the
    // time is the op count, not the depth).
    let prologue = 2.0 * bs * costs.cmult_r0 / 2.0; // half overlap with R1 warm-up
    events.push(Event {
        region: Region::R0,
        start: 0.0,
        end: prologue,
        label: "power ladders".into(),
    });
    let block_r1 = bs * costs.smult_r1;
    let mut r1_free: f64 = 0.0;
    let mut r0_free = prologue;
    for g in 0..gs {
        let r1_start = if pipelined {
            r1_free
        } else {
            r1_free.max(r0_free)
        };
        let r1_end = r1_start + block_r1;
        events.push(Event {
            region: Region::R1,
            start: r1_start,
            end: r1_end,
            label: format!("block {g}: {} SMult/HAdd", bs as u64),
        });
        r1_free = r1_end;
        let r0_start = r0_free.max(r1_end);
        let r0_end = r0_start + costs.cmult_r0;
        events.push(Event {
            region: Region::R0,
            start: r0_start,
            end: r0_end,
            label: format!("block {g}: CMult x giant power"),
        });
        r0_free = r0_end;
        if !pipelined {
            r1_free = r0_end;
        }
    }
    let latency = events.iter().map(|e| e.end).fold(0.0f64, f64::max);
    Schedule { events, latency }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn costs() -> OpCosts {
        OpCosts::new(&AccelConfig::athena(), &TraceParams::athena_production())
    }

    #[test]
    fn pipelined_beats_sequential() {
        let c = costs();
        let p = schedule_fbs(1 << 16, &c, true);
        let s = schedule_fbs(1 << 16, &c, false);
        assert!(
            p.latency < s.latency * 0.8,
            "{} vs {}",
            p.latency,
            s.latency
        );
        // Work conservation: both schedules do the same busy cycles.
        assert!((p.busy(Region::R1) - s.busy(Region::R1)).abs() < 1.0);
        assert!((p.busy(Region::R0) - s.busy(Region::R0)).abs() < 1.0);
    }

    #[test]
    fn regions_are_balanced_at_design_point() {
        // §4.3: the 2048-lane Region 0 and the 16-block Region 1 are sized
        // so the two streams balance at the production LUT size.
        let c = costs();
        let ratio = c.cmult_r0 / (256.0 * c.smult_r1);
        assert!(
            ratio > 0.3 && ratio < 3.0,
            "per-block region costs should be same order: ratio {ratio}"
        );
        let p = schedule_fbs(1 << 16, &c, true);
        let u1 = p.utilization(Region::R1);
        let u0 = p.utilization(Region::R0);
        assert!(u1 > 0.3 && u0 > 0.3, "both regions busy: {u1:.2}, {u0:.2}");
        assert!(
            u0.max(u1) > 0.8,
            "the bottleneck region is nearly saturated"
        );
    }

    #[test]
    fn no_intra_region_overlap() {
        let p = schedule_fbs(1 << 14, &costs(), true);
        for region in [Region::R0, Region::R1] {
            let mut spans: Vec<(f64, f64)> = p
                .events
                .iter()
                .filter(|e| e.region == region)
                .map(|e| (e.start, e.end))
                .collect();
            spans.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaNs"));
            for w in spans.windows(2) {
                assert!(w[0].1 <= w[1].0 + 1e-9, "overlap in {region:?}: {w:?}");
            }
        }
    }

    #[test]
    fn schedule_latency_scales_with_lut_size() {
        let c = costs();
        let small = schedule_fbs(1 << 12, &c, true);
        let big = schedule_fbs(1 << 16, &c, true);
        assert!(big.latency > 2.0 * small.latency);
    }

    #[test]
    fn gantt_renders() {
        let g = schedule_fbs(1 << 12, &costs(), true).gantt(60);
        assert!(g.contains("R1 |"));
        assert!(g.contains('='));
        assert!(g.contains('#'));
    }
}
