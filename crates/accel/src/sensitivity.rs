//! Sensitivity analyses: Fig. 12 (quantization precision) and Fig. 13
//! (per-unit lane scaling).

use athena_nn::models::ModelSpec;
use athena_nn::qmodel::QuantConfig;

use crate::config::{total_area_mm2, AccelConfig, ScaledUnit};
use crate::sim::AthenaSim;

/// One Fig. 13 data point.
#[derive(Debug, Clone, Copy)]
pub struct LanePoint {
    /// Unit that was scaled.
    pub unit: ScaledUnit,
    /// Lane count the unit was scaled to.
    pub lanes: usize,
    /// Delay normalized to the full (2048-lane) configuration.
    pub delay_norm: f64,
    /// Energy normalized to full.
    pub energy_norm: f64,
    /// EDP normalized to full.
    pub edp_norm: f64,
    /// EDAP normalized to full.
    pub edap_norm: f64,
}

/// Sweeps each unit's lanes over {256, 512, 1024, 2048} on ResNet-20
/// (Fig. 13), normalizing to the full configuration.
pub fn lane_sweep(spec: &ModelSpec, quant: &QuantConfig) -> Vec<LanePoint> {
    let base = AthenaSim::athena().run_model(spec, quant);
    let area = total_area_mm2();
    let mut out = Vec::new();
    for unit in ScaledUnit::all() {
        for lanes in [256usize, 512, 1024, 2048] {
            let mut sim = AthenaSim::athena();
            sim.config = AccelConfig::athena().with_scaled_unit(unit, lanes);
            // area scales (crudely) with the scaled unit's share
            let unit_area_share = match unit {
                ScaledUnit::Ntt => 4.51 / area,
                ScaledUnit::Fru => 42.6 / area,
                ScaledUnit::Autom => 3.8 / area,
                ScaledUnit::Se => 0.32 / area,
            };
            let scaled_area = area * (1.0 - unit_area_share * (1.0 - lanes as f64 / 2048.0));
            let r = sim.run_model(spec, quant);
            out.push(LanePoint {
                unit,
                lanes,
                delay_norm: r.latency_ms / base.latency_ms,
                energy_norm: r.energy_j / base.energy_j,
                edp_norm: r.edp() / base.edp(),
                edap_norm: r.edap(scaled_area) / base.edap(area),
            });
        }
    }
    out
}

/// One Fig. 12 data point.
#[derive(Debug, Clone, Copy)]
pub struct PrecisionPoint {
    /// Quantization mode.
    pub quant: QuantConfig,
    /// Latency (ms).
    pub latency_ms: f64,
}

/// The precision sweep of Fig. 12 (performance half; the accuracy half
/// comes from `athena_core::simulate`).
pub fn precision_sweep(spec: &ModelSpec) -> Vec<PrecisionPoint> {
    [(4u32, 4u32), (5, 5), (6, 6), (6, 7), (7, 7), (8, 8)]
        .iter()
        .map(|&(w, a)| {
            let quant = QuantConfig::new(w, a);
            PrecisionPoint {
                quant,
                latency_ms: AthenaSim::athena().run_model(spec, &quant).latency_ms,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fru_scaling_hurts_most() {
        // Fig. 13: the FRU significantly impacts system performance; SE has
        // the least impact.
        let pts = lane_sweep(&ModelSpec::resnet(3), &QuantConfig::w7a7());
        let delay_at = |u: ScaledUnit, l: usize| {
            pts.iter()
                .find(|p| p.unit == u && p.lanes == l)
                .expect("point exists")
                .delay_norm
        };
        let fru = delay_at(ScaledUnit::Fru, 256);
        let ntt = delay_at(ScaledUnit::Ntt, 256);
        let se = delay_at(ScaledUnit::Se, 256);
        let autom = delay_at(ScaledUnit::Autom, 256);
        assert!(fru > ntt, "FRU ({fru}) should hurt more than NTT ({ntt})");
        assert!(
            ntt >= se,
            "NTT ({ntt}) should hurt at least as much as SE ({se})"
        );
        assert!(fru > 2.0, "quartering FRU should >2x delay, got {fru}");
        assert!(se < 1.3, "SE scaling nearly free, got {se}");
        assert!(autom >= se, "automorphism >= SE impact");
    }

    #[test]
    fn full_lanes_are_the_baseline() {
        let pts = lane_sweep(&ModelSpec::resnet(3), &QuantConfig::w7a7());
        for p in pts.iter().filter(|p| p.lanes == 2048) {
            assert!((p.delay_norm - 1.0).abs() < 1e-9, "{:?}", p);
            assert!((p.edap_norm - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn precision_sweep_monotone_and_knee_after_w6a6() {
        // Fig. 12: degradation accelerates after w6a6, biggest step between
        // w7a7 and w8a8.
        let pts = precision_sweep(&ModelSpec::resnet(3));
        for w in pts.windows(2) {
            assert!(
                w[1].latency_ms >= w[0].latency_ms * 0.999,
                "latency must not decrease with precision: {:?}",
                w
            );
        }
        let step_last = pts[5].latency_ms / pts[4].latency_ms; // w7a7 → w8a8
        let step_first = pts[1].latency_ms / pts[0].latency_ms; // w4a4 → w5a5
        assert!(
            step_last > step_first,
            "last step {step_last} vs first {step_first}"
        );
        assert!(
            step_last > 1.4,
            "w7a7→w8a8 step should be large: {step_last}"
        );
    }
}
