//! The cycle-level performance and energy model of the Athena accelerator.
//!
//! Per layer, per phase, the lowered [`Work`] is scheduled onto the units:
//!
//! * **NTT unit** — 256 radix-8 cores, 2048 butterflies/cycle: one
//!   single-limb `N = 2^15` NTT takes `5·(N/lanes) = 80` cycles (§4.2.1).
//! * **Automorphism unit** — 8 cores of width 256, `2(l + N/l)` cycles per
//!   poly, pipelined across cores (§4.2.1).
//! * **FRU array** — Region 1: `16 × 2048` cascaded MM+MA pairs; Region 0:
//!   one block of 2048 (§4.2.2).
//! * **SE unit** — one extraction per cycle after pipeline fill (§4.2.3).
//!
//! The FBS phase uses the Region-0/Region-1 pipelined dataflow of §4.3:
//! baby-step `SMult`/`HAdd` stream through Region 1 while giant-step
//! `CMult`s run on Region 0 + the NTT unit, so the phase latency is the
//! *maximum* of the two regions' work (the sum when the ablation flag
//! disables pipelining). Other phases are bandwidth-checked sums.

use athena_core::plan::ExecutionPlan;
use athena_core::trace::{ModelTrace, OpCounts, Phase, TraceParams};
use athena_nn::models::ModelSpec;
use athena_nn::qmodel::QuantConfig;

use crate::config::{floorplan, AccelConfig};
use crate::lower::{lower, Work};

/// Cycle/energy result for one phase of one layer.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseCost {
    /// Cycles.
    pub cycles: f64,
    /// Dynamic energy in joules.
    pub energy_j: f64,
}

/// Simulation result for a whole model.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Model name.
    pub model: &'static str,
    /// Total latency in milliseconds.
    pub latency_ms: f64,
    /// Total energy in joules.
    pub energy_j: f64,
    /// Per-phase totals.
    pub phase_costs: Vec<(Phase, PhaseCost)>,
    /// Per-unit busy-cycle totals (NTT, FRU, Automorphism, SE) plus memory
    /// energy, for the Fig. 10 breakdown.
    pub unit_energy_j: Vec<(&'static str, f64)>,
}

impl SimResult {
    /// Energy-delay product in J·s.
    pub fn edp(&self) -> f64 {
        self.energy_j * self.latency_ms / 1000.0
    }

    /// Energy-delay-area product in J·s·mm² (divided by 1000 for display
    /// parity with Fig. 11's scale).
    pub fn edap(&self, area_mm2: f64) -> f64 {
        self.edp() * area_mm2
    }
}

/// The simulator.
#[derive(Debug, Clone, Copy)]
pub struct AthenaSim {
    /// Hardware configuration.
    pub config: AccelConfig,
    /// Crypto parameters of the trace.
    pub params: TraceParams,
}

/// DRAM energy per byte (HBM2E class, ~4 pJ/bit ≈ 32 pJ/byte at the
/// paper's operating point; calibrated so memory is ≈ half the energy as
/// in Fig. 10).
const HBM_PJ_PER_BYTE: f64 = 32.0;
/// Scratchpad/NoC energy per byte touched by the FRU stream (heavy
/// operand reuse inside the cascaded MM+MA blocks).
const SRAM_PJ_PER_BYTE: f64 = 0.1;

impl AthenaSim {
    /// Simulator at the paper's configuration.
    pub fn athena() -> Self {
        Self {
            config: AccelConfig::athena(),
            params: TraceParams::athena_production(),
        }
    }

    /// Cycles for one single-limb NTT.
    fn ntt_poly_cycles(&self) -> f64 {
        let lanes = (self.config.ntt_cores * 8) as f64;
        // radix-8: log8(N) iterations, N/lanes vector passes each
        let iters = ((self.params.n as f64).log2() / 3.0).ceil();
        iters * (self.params.n as f64 / lanes).max(1.0)
    }

    /// Cycles for one automorphism poly pass.
    fn autom_poly_cycles(&self) -> f64 {
        let l = 256.0;
        let n = self.params.n as f64;
        2.0 * (l + n / l) / self.config.autom_cores as f64
    }

    fn r1_mma_per_cycle(&self) -> f64 {
        (self.config.fru_blocks_r1 * 2048) as f64
    }

    fn r0_mma_per_cycle(&self) -> f64 {
        (self.config.fru_blocks_r0 * 2048) as f64
    }

    /// Schedules one phase's ops; `pipelined_fbs` applies the §4.3 overlap.
    fn phase_cycles(&self, phase: Phase, ops: &OpCounts) -> (f64, Work) {
        let w = lower(ops, &self.params);
        let is_fbs_phase = matches!(phase, Phase::Activation | Phase::Pooling | Phase::Softmax);
        let ntt_cy = w.ntt_polys as f64 * self.ntt_poly_cycles();
        let autom_cy = w.autom_polys as f64 * self.autom_poly_cycles();
        // SE shifter width follows the lane count (1 extraction/cycle at
        // full width).
        let se_cy = w.se_cycles as f64 * 2048.0 / self.config.lanes as f64;
        let cycles = if is_fbs_phase && self.config.fbs_pipelined {
            // Region 1: the baby-step SMult/HAdd stream.
            let bulk = lower(
                &OpCounts {
                    smult: ops.smult,
                    hadd: ops.hadd,
                    ..OpCounts::default()
                },
                &self.params,
            );
            let r1 = (bulk.fru_mm + bulk.fru_ma / 2) as f64 / self.r1_mma_per_cycle();
            // Region 0: CMult MM work + its NTTs (NTT unit runs alongside).
            let cm = lower(
                &OpCounts {
                    cmult: ops.cmult,
                    ..OpCounts::default()
                },
                &self.params,
            );
            let r0 = (cm.fru_mm + cm.fru_ma / 2) as f64 / self.r0_mma_per_cycle();
            let r0 = r0.max(cm.ntt_polys as f64 * self.ntt_poly_cycles());
            r1.max(r0) + autom_cy + se_cy
        } else {
            // Sequential: all MM/MA on the combined FRU capacity.
            let fru = (w.fru_mm + w.fru_ma / 2) as f64
                / (self.r1_mma_per_cycle() + self.r0_mma_per_cycle());
            fru + ntt_cy + autom_cy + se_cy
        };
        // Bandwidth check against HBM.
        let hbm_bytes_per_cycle = self.config.hbm_tbs * 1e12 / (self.config.freq_ghz * 1e9);
        let mem_cycles = w.hbm_bytes as f64 / hbm_bytes_per_cycle;
        (cycles.max(mem_cycles), w)
    }

    /// Runs the model trace through the cycle model.
    pub fn run(&self, trace: &ModelTrace) -> SimResult {
        let comps = floorplan();
        let power = |name: &str| -> f64 {
            comps
                .iter()
                .find(|c| c.name.starts_with(name))
                .map(|c| c.peak_power_w)
                .unwrap_or(0.0)
        };
        let freq = self.config.freq_ghz * 1e9;
        let mut phase_costs: Vec<(Phase, PhaseCost)> = Phase::all()
            .iter()
            .map(|&p| (p, PhaseCost::default()))
            .collect();
        let mut total_cycles = 0.0;
        let mut unit_cycles = [0.0f64; 4]; // ntt, fru, autom, se
        let mut hbm_bytes = 0u64;
        let mut sram_bytes = 0u64;
        for layer in &trace.layers {
            total_cycles += self.config.layer_overhead_cycles;
            if let Some((_, slot)) = phase_costs
                .iter_mut()
                .find(|(p, _)| *p == Phase::Conversion)
            {
                slot.cycles += self.config.layer_overhead_cycles;
            }
            for (phase, ops) in &layer.phases {
                let (cycles, w) = self.phase_cycles(*phase, ops);
                total_cycles += cycles;
                let slot = phase_costs
                    .iter_mut()
                    .find(|(p, _)| p == phase)
                    .expect("phase exists");
                slot.1.cycles += cycles;
                unit_cycles[0] += w.ntt_polys as f64 * self.ntt_poly_cycles();
                unit_cycles[1] += (w.fru_mm + w.fru_ma / 2) as f64 / self.r1_mma_per_cycle();
                unit_cycles[2] += w.autom_polys as f64 * self.autom_poly_cycles();
                unit_cycles[3] += w.se_cycles as f64;
                hbm_bytes += w.hbm_bytes;
                sram_bytes += (w.fru_mm + w.fru_ma) * 16; // 2×8B operands
            }
        }
        // Energy: unit busy time × unit power + memory traffic.
        let e_ntt = unit_cycles[0] / freq * power("NTT");
        let e_fru = unit_cycles[1] / freq * power("FRU");
        let e_autom = unit_cycles[2] / freq * power("Automorphism");
        let e_se = unit_cycles[3] / freq * power("SE");
        let e_noc = total_cycles / freq * power("NoC") * 0.5;
        let e_hbm = hbm_bytes as f64 * HBM_PJ_PER_BYTE * 1e-12;
        let e_sram = sram_bytes as f64 * SRAM_PJ_PER_BYTE * 1e-12;
        let energy = e_ntt + e_fru + e_autom + e_se + e_noc + e_hbm + e_sram;
        // Distribute energy into phases proportionally to cycles.
        for (_, c) in &mut phase_costs {
            c.energy_j = energy * c.cycles / total_cycles.max(1.0);
        }
        SimResult {
            model: trace.name,
            latency_ms: total_cycles / freq * 1e3,
            energy_j: energy,
            phase_costs,
            unit_energy_j: vec![
                ("NTT", e_ntt),
                ("FRU", e_fru),
                ("Automorphism", e_autom),
                ("SE", e_se),
                ("NoC", e_noc),
                ("Memory", e_hbm + e_sram),
            ],
        }
    }

    /// Convenience: trace + run a model spec.
    pub fn run_model(&self, spec: &ModelSpec, quant: &QuantConfig) -> SimResult {
        let trace = athena_core::trace::trace_model(spec, &self.params, quant);
        self.run(&trace)
    }

    /// Runs a compiled execution plan through the cycle model: the trace is
    /// derived from the plan's own per-step analytic op counts
    /// ([`ExecutionPlan::to_trace`]), so the accelerator sees exactly the
    /// schedules the executor runs — not a separately-maintained analytic
    /// model.
    pub fn run_plan(
        &self,
        plan: &ExecutionPlan,
        name: &'static str,
        quant: &QuantConfig,
    ) -> SimResult {
        self.run(&plan.to_trace(name, quant))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use athena_nn::models::ModelSpec;

    #[test]
    fn run_plan_matches_to_trace_run() {
        use athena_core::pipeline::AthenaEngine;
        use athena_core::plan;
        use athena_fhe::params::BfvParams;
        use athena_nn::qmodel::{Activation, QLinear, QModel, QNode, QOp};
        use athena_nn::tensor::ITensor;

        let engine = AthenaEngine::new(BfvParams::test_small());
        let model = QModel {
            nodes: vec![
                QNode {
                    op: QOp::Linear(QLinear {
                        weight: ITensor::from_vec(&[2, 1, 3, 3], vec![1; 18]),
                        bias: vec![0, 0],
                        stride: 1,
                        padding: 0,
                        is_fc: false,
                        act: Activation::ReLU,
                        in_scale: 1.0,
                        w_scale: 1.0,
                        out_scale: 1.0,
                    }),
                    input: 0,
                    skip: None,
                },
                QNode {
                    op: QOp::Linear(QLinear {
                        weight: ITensor::from_vec(&[3, 18, 1, 1], vec![0; 54]),
                        bias: vec![0; 3],
                        stride: 1,
                        padding: 0,
                        is_fc: true,
                        act: Activation::Identity,
                        in_scale: 1.0,
                        w_scale: 1.0,
                        out_scale: 1.0,
                    }),
                    input: 1,
                    skip: None,
                },
            ],
            input_scale: 1.0,
            cfg: QuantConfig::new(3, 3),
        };
        let plan = plan::compile(&engine, &model, &[1, 5, 5]);
        let sim = AthenaSim::athena();
        let r = sim.run_plan(&plan, "tiny", &model.cfg);
        assert_eq!(r.model, "tiny");
        assert!(r.latency_ms > 0.0 && r.latency_ms.is_finite());
        assert!(r.energy_j > 0.0);
        // Same numbers as lowering the derived trace directly.
        let direct = sim.run(&plan.to_trace("tiny", &model.cfg));
        assert_eq!(r.latency_ms, direct.latency_ms);
        assert_eq!(r.energy_j, direct.energy_j);
    }

    #[test]
    fn resnet20_latency_in_paper_ballpark() {
        let sim = AthenaSim::athena();
        let r = sim.run_model(&ModelSpec::resnet(3), &QuantConfig::w7a7());
        // Paper: 65.5 ms. The model should land within ~2×.
        assert!(
            r.latency_ms > 30.0 && r.latency_ms < 140.0,
            "ResNet-20 latency {} ms",
            r.latency_ms
        );
    }

    #[test]
    fn w6a7_is_faster_than_w7a7() {
        let sim = AthenaSim::athena();
        let a = sim.run_model(&ModelSpec::resnet(3), &QuantConfig::w7a7());
        let b = sim.run_model(&ModelSpec::resnet(3), &QuantConfig::w6a7());
        assert!(
            b.latency_ms < a.latency_ms,
            "{} !< {}",
            b.latency_ms,
            a.latency_ms
        );
    }

    #[test]
    fn pipelining_helps_fbs() {
        let mut sim = AthenaSim::athena();
        let with = sim.run_model(&ModelSpec::resnet(3), &QuantConfig::w7a7());
        sim.config.fbs_pipelined = false;
        let without = sim.run_model(&ModelSpec::resnet(3), &QuantConfig::w7a7());
        assert!(
            without.latency_ms > with.latency_ms * 1.1,
            "pipelined {} vs sequential {}",
            with.latency_ms,
            without.latency_ms
        );
    }

    #[test]
    fn fbs_dominates_execution_time() {
        let sim = AthenaSim::athena();
        let r = sim.run_model(&ModelSpec::resnet(3), &QuantConfig::w7a7());
        let total: f64 = r.phase_costs.iter().map(|(_, c)| c.cycles).sum();
        let nonlinear: f64 = r
            .phase_costs
            .iter()
            .filter(|(p, _)| matches!(p, Phase::Activation | Phase::Pooling | Phase::Softmax))
            .map(|(_, c)| c.cycles)
            .sum();
        let share = nonlinear / total;
        // Fig. 9: the non-linear share is the largest, up to ~72%.
        assert!(share > 0.35 && share < 0.9, "non-linear share {share}");
    }

    #[test]
    fn energy_split_has_large_memory_share() {
        let sim = AthenaSim::athena();
        let r = sim.run_model(&ModelSpec::resnet(3), &QuantConfig::w7a7());
        let mem = r
            .unit_energy_j
            .iter()
            .find(|(n, _)| *n == "Memory")
            .expect("memory row")
            .1;
        let share = mem / r.energy_j;
        // Fig. 10: memory ≈ 50%.
        assert!(share > 0.25 && share < 0.75, "memory share {share}");
        // FRU is the largest compute consumer.
        let fru = r
            .unit_energy_j
            .iter()
            .find(|(n, _)| *n == "FRU")
            .expect("fru")
            .1;
        for (n, e) in &r.unit_energy_j {
            if *n != "FRU" && *n != "Memory" {
                assert!(fru >= *e, "FRU ({fru}) must dominate {n} ({e})");
            }
        }
    }

    #[test]
    fn resnet56_scales_about_3x() {
        let sim = AthenaSim::athena();
        let a = sim.run_model(&ModelSpec::resnet(3), &QuantConfig::w7a7());
        let b = sim.run_model(&ModelSpec::resnet(9), &QuantConfig::w7a7());
        let ratio = b.latency_ms / a.latency_ms;
        assert!(ratio > 2.2 && ratio < 3.8, "RN56/RN20 ratio {ratio}");
    }
}

#[cfg(test)]
mod debug_tests {
    use super::*;
    use athena_nn::models::ModelSpec;

    #[test]
    #[ignore]
    fn print_breakdown() {
        let sim = AthenaSim::athena();
        let r = sim.run_model(&ModelSpec::resnet(3), &QuantConfig::w7a7());
        println!("latency {} ms, energy {} J", r.latency_ms, r.energy_j);
        for (p, c) in &r.phase_costs {
            println!(
                "  {:12} {:>12.0} cycles  {:.3} J",
                p.name(),
                c.cycles,
                c.energy_j
            );
        }
        for (u, e) in &r.unit_energy_j {
            println!("  unit {:12} {:.3} J", u, e);
        }
    }
}
