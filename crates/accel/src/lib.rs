//! # athena-accel
//!
//! Cycle-level model of the Athena accelerator (§4) and of the baseline
//! ASICs it is compared against, driving Tables 6–9 and Figures 8–13.

pub mod baselines;
pub mod config;
pub mod lower;
pub mod memory;
pub mod schedule;
pub mod sensitivity;
pub mod sim;
