//! Table 8: on/off-chip memory comparison across accelerators.

/// Memory profile of one accelerator.
#[derive(Debug, Clone, Copy)]
pub struct MemoryProfile {
    /// Name.
    pub name: &'static str,
    /// HBM capacity (GB).
    pub hbm_gb: f64,
    /// HBM bandwidth (TB/s).
    pub hbm_tbs: f64,
    /// Scratchpad capacity (MB) — main + register files.
    pub scratchpad_mb: (f64, f64),
    /// Scratchpad bandwidth (TB/s).
    pub scratchpad_tbs: f64,
}

/// All Table 8 rows.
pub fn table8() -> Vec<MemoryProfile> {
    vec![
        MemoryProfile {
            name: "CraterLake",
            hbm_gb: 16.0,
            hbm_tbs: 1.0,
            scratchpad_mb: (256.0, 26.0),
            scratchpad_tbs: 84.0,
        },
        MemoryProfile {
            name: "ARK",
            hbm_gb: 16.0,
            hbm_tbs: 1.0,
            scratchpad_mb: (512.0, 76.0),
            scratchpad_tbs: 92.0,
        },
        MemoryProfile {
            name: "BTS",
            hbm_gb: 16.0,
            hbm_tbs: 1.0,
            scratchpad_mb: (512.0, 22.0),
            scratchpad_tbs: 330.0,
        },
        MemoryProfile {
            name: "SHARP",
            hbm_gb: 16.0,
            hbm_tbs: 1.0,
            scratchpad_mb: (180.0, 18.0),
            scratchpad_tbs: 72.0,
        },
        MemoryProfile {
            name: "Athena",
            hbm_gb: 16.0,
            hbm_tbs: 1.0,
            scratchpad_mb: (45.0, 15.0),
            scratchpad_tbs: 180.0,
        },
    ]
}

/// The Athena row.
pub fn athena_profile() -> MemoryProfile {
    *table8().last().expect("athena row")
}

/// Derives the Athena scratchpad requirement from first principles: the
/// working set is a handful of ciphertexts plus the hot keys, all at the
/// small parameters (ciphertext ≈ 6 MB at `N = 2^15`, 12 limbs).
pub fn athena_working_set_mb(ciphertext_mb: f64) -> f64 {
    // 4 live ciphertexts (input, conv result, packed, FBS accumulators)
    // + relin key streamed in halves (PRNG regenerates the `a` parts)
    // + one Galois key.
    4.0 * ciphertext_mb + 1.5 * ciphertext_mb * 2.0 + ciphertext_mb * 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn athena_scratchpad_at_least_4x_smaller() {
        let rows = table8();
        let athena = rows.last().expect("athena");
        let athena_total = athena.scratchpad_mb.0 + athena.scratchpad_mb.1;
        for r in &rows[..rows.len() - 1] {
            let total = r.scratchpad_mb.0 + r.scratchpad_mb.1;
            if r.name != "SHARP" {
                assert!(
                    total >= 4.0 * athena_total,
                    "{}: {total} vs Athena {athena_total}",
                    r.name
                );
            } else {
                // SHARP is the smallest baseline; still >3× Athena.
                assert!(total >= 3.0 * athena_total);
            }
        }
    }

    #[test]
    fn working_set_fits_scratchpad() {
        // Ciphertext at production parameters ≈ 6 MB.
        let ws = athena_working_set_mb(6.0);
        let athena = athena_profile();
        assert!(
            ws <= athena.scratchpad_mb.0 + athena.scratchpad_mb.1,
            "working set {ws} MB vs scratchpad"
        );
        assert!(ws > 30.0, "working set should need most of the 45 MB: {ws}");
    }
}
