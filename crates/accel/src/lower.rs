//! Lowering high-level homomorphic operations to unit-level work.
//!
//! Constants below encode how each framework operation decomposes onto the
//! accelerator's units at production parameters (`N = 2^15`, `k = 12`
//! limbs). They follow the RNS-BFV implementations in `athena-fhe`:
//!
//! * `PMult` — one plaintext forward NTT (`k` polys; kernels and diagonals
//!   are data-dependent, so they cannot be pre-transformed) plus `2kN`
//!   element-wise modular multiplies.
//! * `SMult`/`HAdd` — `2kN` element-wise MM / MA (the FBS inner loop; this
//!   is what Region 1's FRU array exists for).
//! * `CMult` — tensor product resident in evaluation domain (`6kN` MM +
//!   `6kN` MA), with the `t/Q` base conversion and relinearization fused
//!   onto the FRU's BConv datapath (`k²N/2` MACs — the whole point of the
//!   versatile FRU, §4.2.2) and `2k` NTT passes. The constant is set so
//!   Region 0's CMult stream and Region 1's SMult/HAdd stream balance, the
//!   paper's stated design target (§4.3).
//! * `HRot` — `2k` automorphism passes + key switch (`2k²N` MM, `3k` NTT).
//! * `ModSwitch` — `2k` inverse NTTs + `2kN` scaling MACs.
//! * `SampleExtract` — 1 shifter cycle per extracted sample (§4.2.3).

use athena_core::trace::{OpCounts, TraceParams};

/// Unit-level work amounts.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Work {
    /// Single-limb NTT passes of degree `N`.
    pub ntt_polys: u64,
    /// Element-wise modular multiplies (FRU MM).
    pub fru_mm: u64,
    /// Element-wise modular adds (FRU MA).
    pub fru_ma: u64,
    /// Automorphism poly passes.
    pub autom_polys: u64,
    /// Sample-extraction shifter cycles.
    pub se_cycles: u64,
    /// Bytes moved to/from off-chip memory.
    pub hbm_bytes: u64,
}

impl Work {
    /// Component-wise sum.
    pub fn add(&mut self, o: &Work) {
        self.ntt_polys += o.ntt_polys;
        self.fru_mm += o.fru_mm;
        self.fru_ma += o.fru_ma;
        self.autom_polys += o.autom_polys;
        self.se_cycles += o.se_cycles;
        self.hbm_bytes += o.hbm_bytes;
    }

    /// Scales all work by an integer factor.
    pub fn scaled(mut self, f: u64) -> Work {
        self.ntt_polys *= f;
        self.fru_mm *= f;
        self.fru_ma *= f;
        self.autom_polys *= f;
        self.se_cycles *= f;
        self.hbm_bytes *= f;
        self
    }
}

/// Lowers one [`OpCounts`] bundle at the given parameters.
pub fn lower(ops: &OpCounts, p: &TraceParams) -> Work {
    let n = p.n as u64;
    let k = p.limbs as u64;
    let mut w = Work::default();
    // PMult
    w.ntt_polys += ops.pmult * k;
    w.fru_mm += ops.pmult * 2 * k * n;
    // data-dependent plaintexts streamed in (bit-packed to ~log t of the
    // word, and reused across the limb dimension)
    w.hbm_bytes += ops.pmult * k * n / 16;
    // SMult / HAdd (the FBS bulk)
    w.fru_mm += ops.smult * 2 * k * n;
    w.fru_ma += ops.hadd * 2 * k * n;
    // CMult (FRU-fused base conversion + relinearization)
    w.ntt_polys += ops.cmult * 2 * k;
    w.fru_mm += ops.cmult * (6 * k * n + k * k * n / 2);
    w.fru_ma += ops.cmult * 6 * k * n;
    // HRot
    w.autom_polys += ops.hrot * 2 * k;
    w.ntt_polys += ops.hrot * 3 * k;
    w.fru_mm += ops.hrot * 2 * k * k * n;
    // ModSwitch / degree switch
    w.ntt_polys += ops.mod_switch * 2 * k;
    w.fru_mm += ops.mod_switch * 2 * k * n;
    // Sample extraction
    w.se_cycles += ops.sample_extract;
    // Ciphertext movement: every mod-switched ciphertext comes back from
    // the scratchpad/HBM hierarchy once.
    w.hbm_bytes += ops.mod_switch * k * n; // bit-packed, 1/16 spill rate
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> TraceParams {
        TraceParams::athena_production()
    }

    #[test]
    fn smult_cost_matches_hand_calc() {
        let ops = OpCounts {
            smult: 1,
            ..Default::default()
        };
        let w = lower(&ops, &params());
        assert_eq!(w.fru_mm, 2 * 12 * 32768);
        assert_eq!(w.ntt_polys, 0);
    }

    #[test]
    fn cmult_is_much_heavier_than_smult() {
        let s = lower(
            &OpCounts {
                smult: 1,
                ..Default::default()
            },
            &params(),
        );
        let c = lower(
            &OpCounts {
                cmult: 1,
                ..Default::default()
            },
            &params(),
        );
        assert!(c.fru_mm > 5 * s.fru_mm);
        assert!(c.ntt_polys > 0);
    }

    #[test]
    fn work_addition_and_scaling() {
        let a = lower(
            &OpCounts {
                pmult: 2,
                hadd: 3,
                ..Default::default()
            },
            &params(),
        );
        let mut b = a;
        b.add(&a);
        assert_eq!(b, a.scaled(2));
    }
}
