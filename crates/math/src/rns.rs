//! Residue number system (RNS) machinery: multi-prime bases, CRT
//! reconstruction through [`UBig`], and the fast (approximate) base
//! conversion that the Athena accelerator's FRU executes in hardware.

use crate::arena::LimbVec;
use crate::bigint::{IBig, UBig};
use crate::modops::Modulus;
use crate::par;
use crate::poly::{Domain, Poly, Ring};

/// An RNS basis: a set of pairwise-coprime NTT-friendly primes sharing one
/// ring degree, with CRT precomputations.
///
/// # Examples
///
/// ```
/// use athena_math::rns::RnsBasis;
/// use athena_math::prime::ntt_primes;
/// let primes = ntt_primes(30, 64, 3);
/// let basis = RnsBasis::new(&primes, 64);
/// assert_eq!(basis.len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct RnsBasis {
    rings: Vec<Ring>,
    /// Q = prod q_i
    product: UBig,
    /// Q_i = Q / q_i
    hats: Vec<UBig>,
    /// (Q_i)^{-1} mod q_i
    hat_invs: Vec<u64>,
    /// Q mod 2^64 convenience (lossy)
    bits: usize,
}

impl RnsBasis {
    /// Builds a basis from distinct primes, each `≡ 1 (mod 2n)`.
    ///
    /// # Panics
    ///
    /// Panics if primes are not distinct or not NTT-friendly for `n`.
    pub fn new(primes: &[u64], n: usize) -> Self {
        assert!(!primes.is_empty(), "basis needs at least one prime");
        let mut sorted = primes.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), primes.len(), "primes must be distinct");
        let rings: Vec<Ring> = primes.iter().map(|&q| Ring::new(q, n)).collect();
        let mut product = UBig::one();
        for &q in primes {
            product = product.mul_u64(q);
        }
        let hats: Vec<UBig> = primes.iter().map(|&q| product.div_rem_u64(q).0).collect();
        let hat_invs: Vec<u64> = primes
            .iter()
            .zip(&hats)
            .map(|(&q, hat)| {
                let m = Modulus::new(q);
                m.inv(hat.rem_u64(q))
                    .expect("hat invertible: primes coprime")
            })
            .collect();
        let bits = product.bits();
        Self {
            rings,
            product,
            hats,
            hat_invs,
            bits,
        }
    }

    /// Number of limb primes.
    pub fn len(&self) -> usize {
        self.rings.len()
    }

    /// Whether the basis is empty (never true).
    pub fn is_empty(&self) -> bool {
        self.rings.is_empty()
    }

    /// The shared ring degree.
    pub fn n(&self) -> usize {
        self.rings[0].n()
    }

    /// The rings, one per limb prime.
    pub fn rings(&self) -> &[Ring] {
        &self.rings
    }

    /// The `i`-th ring.
    pub fn ring(&self, i: usize) -> &Ring {
        &self.rings[i]
    }

    /// The limb primes.
    pub fn moduli(&self) -> Vec<u64> {
        self.rings.iter().map(|r| r.modulus().value()).collect()
    }

    /// `Q = ∏ q_i`.
    pub fn product(&self) -> &UBig {
        &self.product
    }

    /// Bit size of `Q`.
    pub fn product_bits(&self) -> usize {
        self.bits
    }

    /// A sub-basis keeping only the first `k` primes.
    pub fn prefix(&self, k: usize) -> RnsBasis {
        RnsBasis::new(&self.moduli()[..k], self.n())
    }

    /// CRT-reconstructs residues `x_i` into `x ∈ [0, Q)`.
    pub fn crt_reconstruct(&self, residues: &[u64]) -> UBig {
        assert_eq!(residues.len(), self.len());
        let mut acc = UBig::zero();
        for (i, &res) in residues.iter().enumerate() {
            let m = self.rings[i].modulus();
            let term = self.hats[i].mul_u64(m.mul(res, self.hat_invs[i]));
            acc = acc.add(&term);
        }
        acc.rem(&self.product)
    }

    /// Decomposes `x mod Q` into RNS residues.
    pub fn crt_decompose(&self, x: &UBig) -> Vec<u64> {
        self.rings
            .iter()
            .map(|r| x.rem_u64(r.modulus().value()))
            .collect()
    }

    /// Centered CRT value in `(-Q/2, Q/2]`.
    pub fn crt_reconstruct_centered(&self, residues: &[u64]) -> IBig {
        let x = self.crt_reconstruct(residues);
        let half = self.product.shr(1);
        if x > half {
            IBig::new(true, self.product.sub(&x))
        } else {
            IBig::new(false, x)
        }
    }
}

/// A polynomial in RNS form: one residue [`Poly`] per basis prime, all in the
/// same domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RnsPoly {
    limbs: Vec<Poly>,
}

impl RnsPoly {
    /// Wraps per-limb polynomials (must share degree and domain).
    ///
    /// # Panics
    ///
    /// Panics on mismatched domains or lengths.
    pub fn from_limbs(limbs: Vec<Poly>) -> Self {
        assert!(!limbs.is_empty());
        let d = limbs[0].domain();
        let n = limbs[0].len();
        assert!(
            limbs.iter().all(|l| l.domain() == d && l.len() == n),
            "limbs must share domain and degree"
        );
        Self { limbs }
    }

    /// The per-limb polynomials.
    pub fn limbs(&self) -> &[Poly] {
        &self.limbs
    }

    /// Mutable per-limb polynomials.
    pub fn limbs_mut(&mut self) -> &mut [Poly] {
        &mut self.limbs
    }

    /// The shared domain.
    pub fn domain(&self) -> Domain {
        self.limbs[0].domain()
    }

    /// Number of limbs.
    pub fn limb_count(&self) -> usize {
        self.limbs.len()
    }

    /// The ring degree.
    pub fn n(&self) -> usize {
        self.limbs[0].len()
    }
}

/// Arithmetic on [`RnsPoly`] values over a fixed [`RnsBasis`].
impl RnsBasis {
    /// The zero RNS polynomial.
    pub fn zero_poly(&self, domain: Domain) -> RnsPoly {
        RnsPoly::from_limbs(self.rings.iter().map(|r| r.zero(domain)).collect())
    }

    /// Lifts signed coefficients into RNS (coefficient domain).
    pub fn poly_from_i64(&self, coeffs: &[i64]) -> RnsPoly {
        RnsPoly::from_limbs(self.rings.iter().map(|r| r.from_i64(coeffs)).collect())
    }

    /// Lifts `UBig` coefficients (each in `[0, Q)`) into RNS.
    pub fn poly_from_ubig(&self, coeffs: &[UBig]) -> RnsPoly {
        assert_eq!(coeffs.len(), self.n());
        let limbs = self
            .rings
            .iter()
            .map(|r| {
                let q = r.modulus().value();
                Poly::from_values(coeffs.iter().map(|c| c.rem_u64(q)).collect(), Domain::Coeff)
            })
            .collect();
        RnsPoly::from_limbs(limbs)
    }

    /// CRT-reconstructs every coefficient to `[0, Q)`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in coefficient domain.
    pub fn poly_to_ubig(&self, p: &RnsPoly) -> Vec<UBig> {
        assert_eq!(
            p.domain(),
            Domain::Coeff,
            "reconstruction needs Coeff domain"
        );
        let n = self.n();
        let mut out = Vec::with_capacity(n);
        let mut residues = vec![0u64; self.len()];
        for j in 0..n {
            for (i, limb) in p.limbs.iter().enumerate() {
                residues[i] = limb.values()[j];
            }
            out.push(self.crt_reconstruct(&residues));
        }
        out
    }

    /// Per-coefficient work of a linear (add/sub/scalar) limb op.
    fn lin_work(&self) -> usize {
        self.n()
    }

    /// Per-limb work of an NTT-bearing op (`n·(log₂n + 1)` butterflies).
    fn ntt_work(&self) -> usize {
        self.n() * (self.n().ilog2() as usize + 1)
    }

    /// Maps a unary per-limb operation, one worker per limb (the limbs are
    /// independent — this is exactly the parallelism the FRU array
    /// exploits). `work` estimates one limb's cost in coefficient ops so
    /// tiny rings run inline (see [`par::threads_for`]).
    fn map_limbs(
        &self,
        a: &RnsPoly,
        work: usize,
        f: impl Fn(&Ring, &Poly) -> Poly + Sync,
    ) -> RnsPoly {
        assert_eq!(a.limb_count(), self.len());
        let threads = par::threads_for(self.len(), work);
        RnsPoly::from_limbs(par::parallel_map_range_with(threads, self.len(), |i| {
            f(&self.rings[i], &a.limbs[i])
        }))
    }

    /// Debug-checked domain agreement for element-wise (additive) zip ops.
    ///
    /// Adding a Coeff-form polynomial to an Eval-form one is *always* a
    /// logic error — the sum would mix incompatible representations and
    /// silently decrypt to garbage — so every additive zip op funnels
    /// through this check. Multiplicative ops ([`RnsBasis::mul_poly`]) are
    /// exempt: [`Ring::mul`] is deliberately domain-polymorphic and
    /// converts operands to Eval itself.
    #[inline]
    fn debug_check_zip_domains(&self, a: &RnsPoly, b: &RnsPoly, op: &str) {
        assert_eq!(a.limb_count(), self.len());
        assert_eq!(b.limb_count(), self.len());
        debug_assert_eq!(
            a.domain(),
            b.domain(),
            "RnsBasis::{op}: domain mismatch (lhs is {:?}, rhs is {:?}); \
             convert one operand with poly_to_eval/poly_to_coeff first",
            a.domain(),
            b.domain()
        );
    }

    fn zip_polys(
        &self,
        a: &RnsPoly,
        b: &RnsPoly,
        work: usize,
        f: impl Fn(&Ring, &Poly, &Poly) -> Poly + Sync,
    ) -> RnsPoly {
        assert_eq!(a.limb_count(), self.len());
        assert_eq!(b.limb_count(), self.len());
        let threads = par::threads_for(self.len(), work);
        RnsPoly::from_limbs(par::parallel_map_range_with(threads, self.len(), |i| {
            f(&self.rings[i], &a.limbs[i], &b.limbs[i])
        }))
    }

    /// Element-wise addition.
    ///
    /// # Panics
    ///
    /// Debug builds panic if the operands are in different domains.
    pub fn add_poly(&self, a: &RnsPoly, b: &RnsPoly) -> RnsPoly {
        self.debug_check_zip_domains(a, b, "add_poly");
        self.zip_polys(a, b, self.lin_work(), Ring::add)
    }

    /// Element-wise subtraction.
    ///
    /// # Panics
    ///
    /// Debug builds panic if the operands are in different domains.
    pub fn sub_poly(&self, a: &RnsPoly, b: &RnsPoly) -> RnsPoly {
        self.debug_check_zip_domains(a, b, "sub_poly");
        self.zip_polys(a, b, self.lin_work(), Ring::sub)
    }

    /// In-place element-wise combination over the parallel layer, limbs
    /// being independent (shared impl of the `*_assign` zip ops).
    fn zip_assign_polys(
        &self,
        a: &mut RnsPoly,
        b: &RnsPoly,
        f: impl Fn(&Ring, &mut Poly, &Poly) + Sync,
    ) {
        let threads = par::threads_for(self.len(), self.lin_work());
        par::parallel_zip_mut_with(threads, &mut a.limbs, &b.limbs, |i, x, y| {
            f(&self.rings[i], x, y)
        });
    }

    /// In-place addition.
    ///
    /// # Panics
    ///
    /// Debug builds panic if the operands are in different domains.
    pub fn add_assign_poly(&self, a: &mut RnsPoly, b: &RnsPoly) {
        self.debug_check_zip_domains(a, b, "add_assign_poly");
        self.zip_assign_polys(a, b, Ring::add_assign);
    }

    /// In-place subtraction.
    ///
    /// # Panics
    ///
    /// Debug builds panic if the operands are in different domains.
    pub fn sub_assign_poly(&self, a: &mut RnsPoly, b: &RnsPoly) {
        self.debug_check_zip_domains(a, b, "sub_assign_poly");
        self.zip_assign_polys(a, b, Ring::sub_assign);
    }

    /// Negation.
    pub fn neg_poly(&self, a: &RnsPoly) -> RnsPoly {
        self.map_limbs(a, self.lin_work(), Ring::neg)
    }

    /// Polynomial multiplication (result in `Eval` domain).
    pub fn mul_poly(&self, a: &RnsPoly, b: &RnsPoly) -> RnsPoly {
        self.zip_polys(a, b, self.ntt_work(), Ring::mul)
    }

    /// Multiplication by a small scalar (applied per limb).
    pub fn scalar_mul_poly(&self, a: &RnsPoly, c: u64) -> RnsPoly {
        self.map_limbs(a, self.lin_work(), |r, x| r.scalar_mul(x, c))
    }

    /// Multiplication by a signed scalar.
    pub fn scalar_mul_poly_i64(&self, a: &RnsPoly, c: i64) -> RnsPoly {
        self.map_limbs(a, self.lin_work(), |r, x| {
            r.scalar_mul(x, r.modulus().from_i64(c))
        })
    }

    /// Converts all limbs to evaluation domain (one NTT per limb, run on the
    /// parallel layer — the per-limb transforms are independent).
    pub fn poly_to_eval(&self, a: &RnsPoly) -> RnsPoly {
        self.map_limbs(a, self.ntt_work(), Ring::to_eval)
    }

    /// Converts all limbs to coefficient domain (one inverse NTT per limb,
    /// run on the parallel layer).
    pub fn poly_to_coeff(&self, a: &RnsPoly) -> RnsPoly {
        self.map_limbs(a, self.ntt_work(), Ring::to_coeff)
    }

    /// In-place conversion of all limbs to evaluation domain: transforms
    /// inside the existing limb buffers — zero checkouts, zero copies
    /// (the write-into-scratch variant of [`RnsBasis::poly_to_eval`] for
    /// callers that own their operand).
    pub fn poly_to_eval_inplace(&self, a: &mut RnsPoly) {
        assert_eq!(a.limb_count(), self.len());
        let threads = par::threads_for(self.len(), self.ntt_work());
        par::parallel_zip_mut_with(threads, a.limbs_mut(), &self.rings, |_, p, r| {
            r.to_eval_inplace(p)
        });
    }

    /// In-place conversion of all limbs to coefficient domain (see
    /// [`RnsBasis::poly_to_eval_inplace`]).
    pub fn poly_to_coeff_inplace(&self, a: &mut RnsPoly) {
        assert_eq!(a.limb_count(), self.len());
        let threads = par::threads_for(self.len(), self.ntt_work());
        par::parallel_zip_mut_with(threads, a.limbs_mut(), &self.rings, |_, p, r| {
            r.to_coeff_inplace(p)
        });
    }

    /// Applies the Galois automorphism `X → X^k` per limb (any domain).
    ///
    /// In Eval form the slot permutation depends only on the shared ring
    /// degree, so it is computed once here and applied to every limb —
    /// not recomputed per limb.
    pub fn automorphism_poly(&self, a: &RnsPoly, k: usize) -> RnsPoly {
        match a.domain() {
            Domain::Coeff => self.map_limbs(a, self.lin_work(), |r, x| r.automorphism_coeff(x, k)),
            Domain::Eval => {
                let perm = self.rings[0].automorphism_permutation(k);
                self.map_limbs(a, self.lin_work(), |r, x| {
                    r.automorphism_eval_perm(x, &perm)
                })
            }
        }
    }

    /// **Exact** scaled rounding `round(num · x / Q) mod target` applied per
    /// coefficient, where `x` is the centered CRT value. This is BFV modulus
    /// switching / decryption scaling, done with big integers (the reference
    /// path that fast RNS tricks are tested against).
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in coefficient domain.
    pub fn scale_round(&self, p: &RnsPoly, num: u64, target: u64) -> Vec<u64> {
        assert_eq!(p.domain(), Domain::Coeff);
        let tm = Modulus::new(target);
        let half = self.product.shr(1);
        let n = self.n();
        let mut out = Vec::with_capacity(n);
        let mut residues = vec![0u64; self.len()];
        for j in 0..n {
            for (i, limb) in p.limbs.iter().enumerate() {
                residues[i] = limb.values()[j];
            }
            let x = self.crt_reconstruct(&residues);
            // centered: x or x - Q
            if x > half {
                let mag = self.product.sub(&x).mul_u64(num).div_round(&self.product);
                out.push(tm.neg(mag.rem_u64(target)));
            } else {
                let mag = x.mul_u64(num).div_round(&self.product);
                out.push(mag.rem_u64(target));
            }
        }
        out
    }

    /// Fast (approximate) base conversion of one coefficient vector of
    /// residues from this basis to `other`: computes
    /// `Σ_i [x_i · (Q/q_i)^{-1}]_{q_i} · (Q/q_i) mod p_j`, which equals
    /// `x + α·Q (mod p_j)` for some small overflow `0 ≤ α < len`.
    ///
    /// This is the `BConv` workload executed by the FRU's RNS datapath.
    pub fn fast_base_convert(&self, p: &RnsPoly, other: &RnsBasis) -> RnsPoly {
        assert_eq!(
            p.domain(),
            Domain::Coeff,
            "base conversion needs Coeff domain"
        );
        let n = self.n();
        // y_i = [x_i * hat_inv_i]_{q_i}, independent per source limb.
        let ys: Vec<LimbVec> = par::parallel_map_range_with(
            par::threads_for(self.len(), self.lin_work()),
            self.len(),
            |i| {
                let m = self.rings[i].modulus();
                let src = p.limbs[i].values();
                let mut y = LimbVec::take_raw(n);
                for (o, &x) in y.iter_mut().zip(src) {
                    *o = m.mul(x, self.hat_invs[i]);
                }
                y
            },
        );
        // The target limbs are independent too: one worker per p_j.
        let limbs = par::parallel_map_range_with(
            par::threads_for(other.len(), self.n() * self.len()),
            other.len(),
            |j| {
                let pj = other.rings[j].modulus();
                // precompute Q_i mod p_j
                let hats_mod: Vec<u64> = self.hats.iter().map(|h| h.rem_u64(pj.value())).collect();
                let mut vals = LimbVec::take_zeroed(n);
                for (i, y) in ys.iter().enumerate() {
                    let h = hats_mod[i];
                    let h_sh = pj.shoup(pj.reduce(h));
                    let h = pj.reduce(h);
                    for (v, &yy) in vals.iter_mut().zip(y.iter()) {
                        *v = pj.add(*v, pj.mul_shoup(pj.reduce(yy), h, h_sh));
                    }
                }
                Poly::from_limbs(vals, Domain::Coeff)
            },
        );
        RnsPoly::from_limbs(limbs)
    }

    /// Exact base conversion via CRT reconstruction (reference path).
    pub fn exact_base_convert(&self, p: &RnsPoly, other: &RnsBasis) -> RnsPoly {
        let coeffs = self.poly_to_ubig(p);
        other.poly_from_ubig(&coeffs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prime::ntt_primes;

    fn basis(n: usize, k: usize) -> RnsBasis {
        RnsBasis::new(&ntt_primes(30, n, k), n)
    }

    #[test]
    fn crt_roundtrip() {
        let b = basis(16, 3);
        let x = UBig::from_decimal("123456789012345678901234");
        let x = x.rem(b.product());
        let res = b.crt_decompose(&x);
        assert_eq!(b.crt_reconstruct(&res), x);
    }

    #[test]
    fn poly_roundtrip_and_ops() {
        let b = basis(16, 2);
        let a = b.poly_from_i64(&(0..16).map(|i| i as i64 - 8).collect::<Vec<_>>());
        let c = b.add_poly(&a, &a);
        let d = b.sub_poly(&c, &a);
        assert_eq!(d, a);
        let coeffs = b.poly_to_ubig(&a);
        let back = b.poly_from_ubig(&coeffs);
        assert_eq!(back, a);
    }

    #[test]
    fn mul_matches_bigint() {
        let b = basis(16, 2);
        let a = b.poly_from_i64(&(0..16).map(|i| i as i64 + 1).collect::<Vec<_>>());
        let c = b.poly_from_i64(&(0..16).map(|i| 2 * i as i64 - 3).collect::<Vec<_>>());
        let prod = b.poly_to_coeff(&b.mul_poly(&a, &c));
        // verify one coefficient against schoolbook over centered integers
        let av: Vec<i64> = (0..16).map(|i| i as i64 + 1).collect();
        let cv: Vec<i64> = (0..16).map(|i| 2 * i as i64 - 3).collect();
        let mut want = vec![0i64; 16];
        for i in 0..16 {
            for j in 0..16 {
                let p = av[i] * cv[j];
                if i + j < 16 {
                    want[i + j] += p;
                } else {
                    want[i + j - 16] -= p;
                }
            }
        }
        let got = b.poly_to_ubig(&prod);
        for j in 0..16 {
            let w = IBig::from_i64(want[j]).rem_euclid(b.product());
            assert_eq!(got[j], w, "coeff {j}");
        }
    }

    #[test]
    fn scale_round_matches_manual() {
        // Switch a known value from Q to t = 97.
        let b = basis(16, 2);
        let t = 97u64;
        // encode x_j = j * Q / 100 approximately: use  x = j * (Q/100)
        let (q100, _) = b.product().div_rem_u64(100);
        let coeffs: Vec<UBig> = (0..16u64).map(|j| q100.mul_u64(j)).collect();
        let p = b.poly_from_ubig(&coeffs);
        let scaled = b.scale_round(&p, t, t);
        for j in 0..16usize {
            // round(t * j * (Q/100) / Q) ≈ round(97*j/100)
            let want = coeffs[j].mul_u64(t).div_round(b.product()).rem_u64(t);
            assert_eq!(scaled[j], want, "j={j}");
        }
    }

    #[test]
    fn fast_base_convert_off_by_alpha_q() {
        let b = basis(16, 3);
        let other = RnsBasis::new(&ntt_primes(31, 16, 2), 16);
        let a = b.poly_from_i64(&(0..16).map(|i| 1000 * i as i64).collect::<Vec<_>>());
        let fast = b.fast_base_convert(&a, &other);
        let exact = b.exact_base_convert(&a, &other);
        // fast = exact + alpha*Q mod p_j, with 0 <= alpha < len
        for (j, r) in other.rings().iter().enumerate() {
            let pj = r.modulus();
            let qmod = b.product().rem_u64(pj.value());
            for c in 0..16 {
                let f = fast.limbs()[j].values()[c];
                let e = exact.limbs()[j].values()[c];
                let mut ok = false;
                let mut cand = e;
                for _ in 0..b.len() + 1 {
                    if cand == f {
                        ok = true;
                        break;
                    }
                    cand = pj.add(cand, qmod);
                }
                assert!(ok, "limb {j} coeff {c}: fast not within alpha*Q of exact");
            }
        }
    }

    #[test]
    fn add_assign_matches_add_for_all_thread_counts() {
        let b = basis(16, 3);
        let x = b.poly_from_i64(&(0..16).map(|i| 3 * i as i64 - 20).collect::<Vec<_>>());
        let y = b.poly_from_i64(&(0..16).map(|i| 7 - i as i64).collect::<Vec<_>>());
        let want_add = b.add_poly(&x, &y);
        let want_sub = b.sub_poly(&x, &y);
        for threads in [1usize, 2, 4, 8] {
            par::set_threads(threads);
            let mut a = x.clone();
            b.add_assign_poly(&mut a, &y);
            assert_eq!(a, want_add, "add threads={threads}");
            let mut s = x.clone();
            b.sub_assign_poly(&mut s, &y);
            assert_eq!(s, want_sub, "sub threads={threads}");
        }
        par::set_threads(0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "domain mismatch")]
    fn add_assign_rejects_mixed_domains() {
        let b = basis(16, 2);
        let x = b.poly_from_i64(&(0..16).map(|i| i as i64).collect::<Vec<_>>());
        let mut e = b.poly_to_eval(&x);
        b.add_assign_poly(&mut e, &x);
    }

    #[test]
    fn automorphism_poly_coeff_matches_eval() {
        let b = basis(16, 3);
        let a = b.poly_from_i64(&(0..16).map(|i| 5 * i as i64 - 11).collect::<Vec<_>>());
        let ae = b.poly_to_eval(&a);
        for k in [3usize, 5, 9, 31] {
            let via_coeff = b.poly_to_eval(&b.automorphism_poly(&a, k));
            let via_eval = b.automorphism_poly(&ae, k);
            assert_eq!(via_coeff, via_eval, "k={k}");
            // and back down to Coeff for good measure
            assert_eq!(
                b.poly_to_coeff(&via_eval),
                b.automorphism_poly(&a, k),
                "k={k} roundtrip"
            );
        }
    }

    #[test]
    fn automorphism_poly_serial_matches_parallel() {
        let b = basis(16, 3);
        let a = b.poly_from_i64(
            &(0..16)
                .map(|i| i as i64 * i as i64 - 50)
                .collect::<Vec<_>>(),
        );
        let ae = b.poly_to_eval(&a);
        par::set_threads(1);
        let serial_c = b.automorphism_poly(&a, 9);
        let serial_e = b.automorphism_poly(&ae, 9);
        par::set_threads(4);
        let par_c = b.automorphism_poly(&a, 9);
        let par_e = b.automorphism_poly(&ae, 9);
        par::set_threads(0);
        assert_eq!(serial_c, par_c, "Coeff domain");
        assert_eq!(serial_e, par_e, "Eval domain");
    }

    #[test]
    fn prefix_basis() {
        let b = basis(16, 3);
        let p = b.prefix(2);
        assert_eq!(p.len(), 2);
        assert_eq!(p.moduli(), b.moduli()[..2].to_vec());
    }
}
