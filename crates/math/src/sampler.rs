//! Randomness for lattice cryptography: uniform ring elements, ternary
//! secrets, and rounded-Gaussian error, all driven by a seedable PRNG so
//! tests are reproducible.
//!
//! The accelerator mirrors this module in hardware as its PRNG unit, which
//! regenerates the uniform `a`-halves of public/key-switching keys from
//! seeds to halve key storage and bandwidth (as CraterLake and SHARP do).

use crate::prng::Prng;

/// Default error standard deviation used across the stack (the classic 3.2
/// from the homomorphic-encryption security standard).
pub const DEFAULT_SIGMA: f64 = 3.2;

/// A seedable sampler for lattice noise and secrets.
///
/// # Examples
///
/// ```
/// use athena_math::sampler::Sampler;
/// let mut s = Sampler::from_seed(7);
/// let sk = s.ternary(16);
/// assert!(sk.iter().all(|&c| c == -1 || c == 0 || c == 1));
/// ```
#[derive(Debug)]
pub struct Sampler {
    rng: Prng,
    sigma: f64,
}

impl Sampler {
    /// Creates a sampler from a 64-bit seed with the default σ.
    pub fn from_seed(seed: u64) -> Self {
        Self {
            rng: Prng::seed_from_u64(seed),
            sigma: DEFAULT_SIGMA,
        }
    }

    /// Creates a sampler from ambient entropy.
    pub fn from_entropy() -> Self {
        Self {
            rng: Prng::from_entropy(),
            sigma: DEFAULT_SIGMA,
        }
    }

    /// Overrides the Gaussian standard deviation.
    pub fn with_sigma(mut self, sigma: f64) -> Self {
        assert!(sigma >= 0.0, "sigma must be non-negative");
        self.sigma = sigma;
        self
    }

    /// The Gaussian standard deviation.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// A uniform value in `[0, q)`.
    pub fn uniform_mod(&mut self, q: u64) -> u64 {
        self.rng.next_below(q)
    }

    /// A vector of uniform values in `[0, q)`.
    pub fn uniform_vec(&mut self, q: u64, n: usize) -> Vec<u64> {
        (0..n).map(|_| self.uniform_mod(q)).collect()
    }

    /// A ternary vector with entries in `{-1, 0, 1}` (uniform).
    pub fn ternary(&mut self, n: usize) -> Vec<i64> {
        (0..n).map(|_| self.rng.next_i64_in(-1, 1)).collect()
    }

    /// A rounded-Gaussian error vector with standard deviation σ, truncated
    /// at 6σ.
    pub fn gaussian(&mut self, n: usize) -> Vec<i64> {
        (0..n).map(|_| self.gaussian_one()).collect()
    }

    /// One rounded-Gaussian sample.
    pub fn gaussian_one(&mut self) -> i64 {
        if self.sigma == 0.0 {
            return 0;
        }
        let bound = (6.0 * self.sigma).ceil();
        loop {
            // Box–Muller
            let u1: f64 = self.rng.next_f64().max(f64::EPSILON);
            let u2: f64 = self.rng.next_f64();
            let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            let v = (z * self.sigma).round();
            if v.abs() <= bound {
                return v as i64;
            }
        }
    }

    /// Raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Derives an independent sampler (for splitting deterministic streams).
    pub fn fork(&mut self) -> Sampler {
        Sampler {
            rng: Prng::seed_from_u64(self.rng.next_u64()),
            sigma: self.sigma,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = Sampler::from_seed(42);
        let mut b = Sampler::from_seed(42);
        assert_eq!(a.uniform_vec(1 << 30, 32), b.uniform_vec(1 << 30, 32));
        assert_eq!(a.gaussian(32), b.gaussian(32));
    }

    #[test]
    fn uniform_in_range() {
        let mut s = Sampler::from_seed(1);
        for _ in 0..1000 {
            assert!(s.uniform_mod(97) < 97);
        }
    }

    #[test]
    fn gaussian_statistics() {
        let mut s = Sampler::from_seed(9);
        let xs = s.gaussian(20_000);
        let mean: f64 = xs.iter().map(|&x| x as f64).sum::<f64>() / xs.len() as f64;
        let var: f64 = xs.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.2, "mean {mean}");
        let sigma2 = DEFAULT_SIGMA * DEFAULT_SIGMA;
        assert!((var - sigma2).abs() < sigma2 * 0.2, "var {var}");
        assert!(xs
            .iter()
            .all(|&x| x.abs() <= (6.0 * DEFAULT_SIGMA).ceil() as i64));
    }

    #[test]
    fn zero_sigma_yields_zero() {
        let mut s = Sampler::from_seed(3).with_sigma(0.0);
        assert!(s.gaussian(100).iter().all(|&x| x == 0));
    }

    #[test]
    fn fork_streams_differ() {
        let mut s = Sampler::from_seed(5);
        let mut f1 = s.fork();
        let mut f2 = s.fork();
        assert_ne!(f1.uniform_vec(1 << 20, 16), f2.uniform_vec(1 << 20, 16));
    }
}
