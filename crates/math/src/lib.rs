//! # athena-math
//!
//! Number-theoretic foundations for the Athena reproduction: modular
//! arithmetic, NTTs (negacyclic and cyclic/Fermat), a from-scratch big
//! integer, RNS bases with exact and fast base conversion, lattice samplers,
//! and the baby-step/giant-step schedules used by functional bootstrapping.
//!
//! Everything above this crate (BFV, the Athena framework, the accelerator
//! model) is built on these primitives; they are deliberately
//! dependency-free — randomness comes from the in-repo [`prng`] module and
//! thread parallelism from the `std`-only [`par`] module, so the whole
//! workspace builds with zero registry access.
//!
//! ## Example
//!
//! ```
//! use athena_math::poly::Ring;
//!
//! // Multiply two polynomials in Z_12289[X]/(X^64 + 1).
//! let ring = Ring::new(12289, 64);
//! let a = ring.from_i64(&vec![1i64; 64]);
//! let b = ring.from_i64(&vec![2i64; 64]);
//! let c = ring.to_coeff(&ring.mul(&a, &b));
//! assert_eq!(c.values().len(), 64);
//! ```

pub mod arena;
pub mod bigint;
pub mod bsgs;
pub mod modops;
pub mod ntt;
pub mod par;
pub mod poly;
pub mod prime;
pub mod prng;
pub mod rns;
pub mod sampler;
pub mod stats;

pub use arena::{ArenaLease, LimbVec};
pub use bigint::{IBig, UBig};
pub use modops::Modulus;
pub use poly::{Domain, Poly, Ring};
pub use rns::{RnsBasis, RnsPoly};
pub use sampler::Sampler;
