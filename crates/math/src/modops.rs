//! Scalar modular arithmetic over word-sized moduli.
//!
//! Every modulus used in Athena fits in 62 bits (RNS limb primes are chosen
//! NTT-friendly and below 2^60; the plaintext modulus `t = 65537` is tiny),
//! so `u64` values with 128-bit intermediates are sufficient everywhere.
//!
//! The hot paths (NTT butterflies, element-wise modular multiply-accumulate)
//! use [`Modulus`], which precomputes a Barrett constant, and Shoup
//! multiplication for operand-invariant multiplies.

/// A prime (or prime-power) modulus with precomputed Barrett reduction data.
///
/// # Examples
///
/// ```
/// use athena_math::modops::Modulus;
/// let m = Modulus::new(65537);
/// assert_eq!(m.mul(65536, 65536), 1); // (-1)*(-1) mod 65537
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Modulus {
    value: u64,
    /// floor(2^128 / value), stored as (hi, lo) 64-bit words.
    barrett_hi: u64,
    barrett_lo: u64,
}

impl Modulus {
    /// Creates a new modulus.
    ///
    /// # Panics
    ///
    /// Panics if `value < 2` or `value >= 2^62`.
    pub fn new(value: u64) -> Self {
        assert!(value >= 2, "modulus must be >= 2");
        assert!(value < (1u64 << 62), "modulus must fit in 62 bits");
        // floor(2^128 / v), computed from (2^128 - 1) = q*v + r:
        // floor(2^128 / v) is q unless r == v-1, in which case it is q+1.
        let q = u128::MAX / value as u128;
        let r = u128::MAX % value as u128;
        let q = if r == value as u128 - 1 { q + 1 } else { q };
        Self {
            value,
            barrett_hi: (q >> 64) as u64,
            barrett_lo: q as u64,
        }
    }

    /// The raw modulus value.
    #[inline(always)]
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Number of significant bits in the modulus.
    pub fn bits(&self) -> u32 {
        64 - self.value.leading_zeros()
    }

    /// Reduces an arbitrary `u64` into `[0, q)`.
    #[inline(always)]
    pub fn reduce(&self, x: u64) -> u64 {
        self.reduce_u128(x as u128)
    }

    /// Reduces a 128-bit value into `[0, q)` using Barrett reduction.
    #[inline(always)]
    pub fn reduce_u128(&self, x: u128) -> u64 {
        // Barrett: estimate quotient qhat = floor(x * floor(2^128/q) / 2^128)
        let xl = x as u64 as u128;
        let xh = (x >> 64) as u64 as u128;
        let bl = self.barrett_lo as u128;
        let bh = self.barrett_hi as u128;
        // x * b = (xh*2^64 + xl) * (bh*2^64 + bl); we need bits >= 128.
        let ll = xl * bl; // contributes to <128 only via carry
        let lh = xl * bh;
        let hl = xh * bl;
        let hh = xh * bh; // contributes fully above 2^128
        let mid = lh + hl + (ll >> 64);
        let qhat = hh + (mid >> 64);
        let rem = x.wrapping_sub(qhat.wrapping_mul(self.value as u128)) as u64;
        // qhat may be off by a small amount; correct with subtractions.
        let mut r = rem;
        while r >= self.value {
            r -= self.value;
        }
        r
    }

    /// Modular addition of two values already in `[0, q)`.
    #[inline(always)]
    pub fn add(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.value && b < self.value);
        let s = a + b;
        if s >= self.value {
            s - self.value
        } else {
            s
        }
    }

    /// Modular subtraction of two values already in `[0, q)`.
    #[inline(always)]
    pub fn sub(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.value && b < self.value);
        if a >= b {
            a - b
        } else {
            a + self.value - b
        }
    }

    /// Modular negation of a value already in `[0, q)`.
    #[inline(always)]
    pub fn neg(&self, a: u64) -> u64 {
        debug_assert!(a < self.value);
        if a == 0 {
            0
        } else {
            self.value - a
        }
    }

    /// Modular multiplication of two values already in `[0, q)`.
    #[inline(always)]
    pub fn mul(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.value && b < self.value);
        self.reduce_u128(a as u128 * b as u128)
    }

    /// Fused multiply-add: `(a*b + c) mod q`.
    #[inline(always)]
    pub fn mul_add(&self, a: u64, b: u64, c: u64) -> u64 {
        self.reduce_u128(a as u128 * b as u128 + c as u128)
    }

    /// Modular exponentiation by squaring.
    pub fn pow(&self, mut base: u64, mut exp: u64) -> u64 {
        base = self.reduce(base);
        let mut acc = 1u64 % self.value;
        while exp > 0 {
            if exp & 1 == 1 {
                acc = self.mul(acc, base);
            }
            base = self.mul(base, base);
            exp >>= 1;
        }
        acc
    }

    /// Modular inverse, if it exists (i.e. `gcd(a, q) == 1`).
    pub fn inv(&self, a: u64) -> Option<u64> {
        // Extended Euclid over i128.
        let (mut t, mut new_t) = (0i128, 1i128);
        let (mut r, mut new_r) = (self.value as i128, self.reduce(a) as i128);
        while new_r != 0 {
            let q = r / new_r;
            (t, new_t) = (new_t, t - q * new_t);
            (r, new_r) = (new_r, r - q * new_r);
        }
        if r != 1 {
            return None;
        }
        let mut t = t % self.value as i128;
        if t < 0 {
            t += self.value as i128;
        }
        Some(t as u64)
    }

    /// Centered representative of `a` in `(-q/2, q/2]`, as `i64`.
    #[inline]
    pub fn center(&self, a: u64) -> i64 {
        debug_assert!(a < self.value);
        if a > self.value / 2 {
            a as i64 - self.value as i64
        } else {
            a as i64
        }
    }

    /// Maps a signed value into `[0, q)`.
    #[inline]
    pub fn from_i64(&self, a: i64) -> u64 {
        let r = a.rem_euclid(self.value as i64);
        r as u64
    }

    /// Precomputes a Shoup representation of `w` for fast repeated
    /// multiplication by the fixed operand `w`.
    #[inline]
    pub fn shoup(&self, w: u64) -> u64 {
        debug_assert!(w < self.value);
        (((w as u128) << 64) / self.value as u128) as u64
    }

    /// Shoup multiplication `a * w mod q`, where `w_shoup = shoup(w)`.
    ///
    /// Roughly twice as fast as Barrett because the quotient estimate is a
    /// single high multiply.
    #[inline(always)]
    pub fn mul_shoup(&self, a: u64, w: u64, w_shoup: u64) -> u64 {
        let q = ((a as u128 * w_shoup as u128) >> 64) as u64;
        let r = a.wrapping_mul(w).wrapping_sub(q.wrapping_mul(self.value));
        if r >= self.value {
            r - self.value
        } else {
            r
        }
    }
}

impl std::fmt::Display for Modulus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn barrett_matches_naive() {
        let q = Modulus::new(0x3fff_ffff_0000_0001 % (1 << 61) | 1);
        for &x in &[
            0u128,
            1,
            12345,
            u128::from(u64::MAX),
            u128::MAX / 7,
            u128::MAX,
        ] {
            assert_eq!(q.reduce_u128(x), (x % q.value() as u128) as u64);
        }
    }

    #[test]
    fn add_sub_neg() {
        let q = Modulus::new(97);
        assert_eq!(q.add(96, 5), 4);
        assert_eq!(q.sub(3, 10), 90);
        assert_eq!(q.neg(0), 0);
        assert_eq!(q.neg(1), 96);
    }

    #[test]
    fn pow_and_inv() {
        let q = Modulus::new(65537);
        let a = 12345;
        let ai = q.inv(a).expect("65537 is prime");
        assert_eq!(q.mul(a, ai), 1);
        // Fermat's little theorem.
        assert_eq!(q.pow(a, 65536), 1);
        assert_eq!(q.pow(a, 65535), ai);
    }

    #[test]
    fn inv_of_noninvertible() {
        let q = Modulus::new(100);
        assert_eq!(q.inv(10), None);
        assert_eq!(q.inv(3).map(|i| q.mul(3, i)), Some(1));
    }

    #[test]
    fn center_roundtrip() {
        let q = Modulus::new(17);
        for a in 0..17u64 {
            let c = q.center(a);
            assert!(c > -9 && c <= 8);
            assert_eq!(q.from_i64(c), a);
        }
    }

    #[test]
    fn shoup_matches_barrett() {
        let q = Modulus::new((1 << 59) - 55); // arbitrary odd modulus
        let w = 0x1234_5678_9abc % q.value();
        let ws = q.shoup(w);
        for a in [0u64, 1, 42, q.value() - 1, q.value() / 2] {
            assert_eq!(q.mul_shoup(a, w, ws), q.mul(a, w));
        }
    }

    #[test]
    fn mul_add_matches() {
        let q = Modulus::new(65537);
        assert_eq!(
            q.mul_add(65536, 65536, 65536),
            q.add(q.mul(65536, 65536), 65536)
        );
    }
}
