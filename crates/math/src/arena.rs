//! Pooled limb buffers: the scratch arena behind every [`crate::poly::Poly`].
//!
//! Steady-state FHE inference has a *fixed, plan-known working set*: every
//! step of a compiled plan takes and releases the same ring-degree-sized
//! limb buffers on every run. This module turns those buffers into a
//! process-wide recycling pool so the hot path stops round-tripping through
//! the system allocator: a [`LimbVec`] checks a buffer out of the pool on
//! construction and returns it on drop, and once the pool has been warmed
//! by one full run, later runs perform **zero fresh heap allocations** in
//! the limb hot path (pinned by `alloc_discipline` in `athena-bench`).
//!
//! # Per-thread checkout
//!
//! The pool is split into [`N_SHARDS`] shards. Each thread is assigned a
//! shard on first use (round-robin), checks buffers out of — and returns
//! them to — *its own* shard, so the workers of a `par` scoped region
//! normally never contend on a lock. Only when a thread's shard has no
//! buffer of the right size does it *steal* from the other shards, and only
//! when every shard misses does it fall back to a fresh allocation. The
//! steal pass is what keeps the steady-state zero-miss guarantee
//! independent of `ATHENA_THREADS`: `par` spawns fresh OS threads per
//! region, so a buffer released by one region's worker must be reachable
//! from the next region's differently-assigned workers.
//!
//! # Determinism
//!
//! Pooling changes *where* a buffer's memory comes from, never its
//! contents as observed by correct code: [`LimbVec::take_raw`] contents are
//! unspecified and the caller must fully overwrite them (enable
//! [`set_poison`] in tests to enforce this), while [`LimbVec::take_zeroed`]
//! always zeroes. Total take/recycle counts are schedule-independent;
//! the fresh-vs-pooled split of a *cold* run depends on thread
//! interleaving, so tests and reports only pin thread-invariant totals and
//! the steady-state `fresh == 0` invariant.
//!
//! # Capacity and leases
//!
//! Each shard retains at most `BASE_SHARD_CAP` bytes plus its share of the
//! process-wide [`ArenaLease`] reservation; buffers released above the cap
//! are freed (counted by `alloc_stats::freed_count`). A long-lived owner
//! with a known working set — the plan cache entry of an
//! `InferenceSession` — holds a lease sized from its compiled plan, so the
//! pool keeps that working set resident exactly as long as the plan is
//! cached and trims back when the entry is evicted.
//!
//! # Quarantine (panic safety)
//!
//! A panic mid-step can leave partially written buffers: the unwinding
//! drops recycle them into the pool looking like any other released
//! buffer. Contents never affect correct code (the [`LimbVec::take_raw`]
//! contract requires a full overwrite before reading), but a faulted
//! request must not be able to leave *anything* behind — so an executor
//! that catches a panic calls [`quarantine`], which bumps the pool
//! generation and frees every pooled buffer. [`LimbVec`]s are stamped with
//! the generation at checkout; a buffer from a pre-quarantine generation
//! is freed, never re-pooled, when it finally drops. The next run re-warms
//! the pool from fresh allocations (one cold run after a fault — visible
//! as `fresh > 0` in the `alloc-stats` counters, then `fresh == 0` again).
//!
//! A panic *inside* the arena (while a shard lock is held) poisons that
//! shard's mutex. Every lock site recovers: the poisoned shard's contents
//! are freed, the poison is cleared, and [`poison_recoveries`] counts the
//! event so an executor can surface it as a typed `PoolPoisoned` error.

use std::collections::BTreeMap;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::stats::alloc_stats;

/// Number of pool shards. Threads are assigned round-robin, so regions
/// with up to this many workers get contention-free checkout.
pub const N_SHARDS: usize = 8;

/// Bytes each shard retains with no lease outstanding (so short-lived
/// usage — tests, one-shot tools — still gets recycling without a lease).
const BASE_SHARD_CAP: usize = 4 * 1024 * 1024;

/// One pool shard: buffers bucketed by exact length.
struct Shard {
    buckets: BTreeMap<usize, Vec<Vec<u64>>>,
    bytes: usize,
}

impl Shard {
    const fn new() -> Self {
        Self {
            buckets: BTreeMap::new(),
            bytes: 0,
        }
    }
}

static SHARDS: [Mutex<Shard>; N_SHARDS] = [const { Mutex::new(Shard::new()) }; N_SHARDS];

/// Round-robin shard assignment for new threads.
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

/// Process-wide extra retention reserved by live [`ArenaLease`]s.
static RESERVED: AtomicUsize = AtomicUsize::new(0);

/// Poison mode: when enabled, `take_raw` buffers are filled with
/// [`poison_value`] instead of being handed out with stale contents.
static POISON_ON: AtomicBool = AtomicBool::new(false);
static POISON_VALUE: AtomicU64 = AtomicU64::new(0);

/// Pool generation, bumped by [`quarantine`]. Buffers checked out under an
/// older generation are freed instead of recycled when they drop.
static GENERATION: AtomicU64 = AtomicU64::new(0);

/// Count of shard-lock poison recoveries (a thread panicked while holding
/// a shard mutex; the shard was flushed and the poison cleared).
static POISON_RECOVERED: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's home shard index.
    static SHARD_IDX: usize = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % N_SHARDS;
}

/// The calling thread's home shard (0 if thread-local storage is already
/// being torn down).
fn my_shard() -> usize {
    SHARD_IDX.try_with(|&i| i).unwrap_or(0)
}

/// Per-shard retention cap: the base cap plus this shard's share of the
/// lease reservation.
fn shard_cap() -> usize {
    BASE_SHARD_CAP + RESERVED.load(Ordering::Relaxed) / N_SHARDS
}

/// Enables (`Some(sentinel)`) or disables (`None`) poison-on-checkout.
///
/// With poisoning on, every [`LimbVec::take_raw`] buffer is filled with the
/// sentinel before it is handed out. Code that honors the `take_raw`
/// contract (fully overwrite before reading) is unaffected; code that
/// reads stale pool data produces sentinel-dependent output. Running a
/// deterministic computation with poisoning off and on and asserting
/// bit-identical results therefore proves no op reads stale scratch
/// (see `scratch_poisoning_is_invisible` in `athena-core`).
pub fn set_poison(sentinel: Option<u64>) {
    match sentinel {
        Some(v) => {
            POISON_VALUE.store(v, Ordering::Relaxed);
            POISON_ON.store(true, Ordering::Relaxed);
        }
        None => POISON_ON.store(false, Ordering::Relaxed),
    }
}

/// The active poison sentinel, if poisoning is enabled.
pub fn poison_value() -> Option<u64> {
    if POISON_ON.load(Ordering::Relaxed) {
        Some(POISON_VALUE.load(Ordering::Relaxed))
    } else {
        None
    }
}

/// Locks shard `idx`, recovering from lock poisoning: a thread that
/// panicked while holding the lock may have left the shard mid-update, so
/// its retained buffers are suspect — free them all, clear the poison, and
/// count the recovery (surfaced by [`poison_recoveries`]).
fn lock_shard(idx: usize) -> std::sync::MutexGuard<'static, Shard> {
    match SHARDS[idx].lock() {
        Ok(guard) => guard,
        Err(poisoned) => {
            let mut guard = poisoned.into_inner();
            for bucket in guard.buckets.values() {
                for _ in bucket {
                    alloc_stats::record_freed();
                }
            }
            guard.buckets.clear();
            guard.bytes = 0;
            SHARDS[idx].clear_poison();
            POISON_RECOVERED.fetch_add(1, Ordering::Relaxed);
            guard
        }
    }
}

/// Total bytes currently retained across all shards.
pub fn pooled_bytes() -> usize {
    (0..N_SHARDS).map(|i| lock_shard(i).bytes).sum()
}

/// Total bytes currently reserved by live [`ArenaLease`]s.
pub fn reserved_bytes() -> usize {
    RESERVED.load(Ordering::Relaxed)
}

/// The current pool generation (bumped by every [`quarantine`]).
pub fn generation() -> u64 {
    GENERATION.load(Ordering::Relaxed)
}

/// Number of shard-lock poison recoveries since process start.
pub fn poison_recoveries() -> usize {
    POISON_RECOVERED.load(Ordering::Relaxed)
}

/// What [`quarantine`] flushed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuarantineReport {
    /// The generation the pool is now on.
    pub generation: u64,
    /// Pooled buffers freed by the flush.
    pub freed: usize,
}

/// Quarantines the pool after a caught panic: bumps the generation (so
/// every buffer checked out *before* the quarantine is freed, not
/// re-pooled, when it drops) and frees everything currently pooled —
/// including buffers a panicking step recycled on its way out with
/// partially written contents. Conservative by design: the next run pays
/// one cold warm-up, and no state from the faulted request can reach a
/// later one.
pub fn quarantine() -> QuarantineReport {
    // Bump first: a concurrent recycle racing the flush below must route
    // its (old-generation) buffer to the free path, not re-pool it after
    // we have already swept its shard.
    let generation = GENERATION.fetch_add(1, Ordering::Relaxed) + 1;
    let mut freed = 0usize;
    for i in 0..N_SHARDS {
        let mut shard = lock_shard(i);
        for bucket in shard.buckets.values() {
            freed += bucket.len();
            for _ in bucket {
                alloc_stats::record_freed();
            }
        }
        shard.buckets.clear();
        shard.bytes = 0;
    }
    QuarantineReport { generation, freed }
}

/// Drops every retained buffer (test hook for measuring cold starts).
pub fn clear() {
    for i in 0..N_SHARDS {
        let mut shard = lock_shard(i);
        shard.buckets.clear();
        shard.bytes = 0;
    }
}

/// Poisons shard `idx`'s lock by panicking a throwaway thread inside it —
/// a test hook for the poison-recovery path; never call it from code that
/// holds arena buffers.
#[doc(hidden)]
pub fn poison_shard_lock_for_test(idx: usize) {
    let _ = std::thread::spawn(move || {
        let _guard = SHARDS[idx % N_SHARDS].lock().expect("not yet poisoned");
        panic!("deliberate poison (test hook)");
    })
    .join();
}

/// Checks a length-`len` buffer out of the pool: own shard first, then a
/// steal pass over the others, then a fresh (zeroed) allocation.
fn take(len: usize) -> Vec<u64> {
    alloc_stats::record_take();
    let home = my_shard();
    for probe in 0..N_SHARDS {
        let idx = (home + probe) % N_SHARDS;
        let mut shard = lock_shard(idx);
        if let Some(bucket) = shard.buckets.get_mut(&len) {
            if let Some(buf) = bucket.pop() {
                shard.bytes -= len * 8;
                debug_assert_eq!(buf.len(), len);
                return buf;
            }
        }
    }
    alloc_stats::record_fresh();
    vec![0u64; len]
}

/// Returns a buffer to the caller's home shard, or frees it if the shard
/// is at its retention cap — or if the buffer was checked out before the
/// last [`quarantine`] (its contents are suspect; drop, don't recycle).
fn recycle(buf: Vec<u64>, checkout_generation: u64) {
    let len = buf.len();
    if len == 0 {
        return;
    }
    if checkout_generation != GENERATION.load(Ordering::Relaxed) {
        alloc_stats::record_freed();
        return;
    }
    let bytes = len * 8;
    let mut shard = lock_shard(my_shard());
    if shard.bytes + bytes > shard_cap() {
        alloc_stats::record_freed();
        return;
    }
    shard.bytes += bytes;
    shard.buckets.entry(len).or_default().push(buf);
    alloc_stats::record_recycle();
}

/// Trims every shard down to the current cap (called when a lease drops).
fn trim_to_cap() {
    let cap = shard_cap();
    for i in 0..N_SHARDS {
        let mut shard = lock_shard(i);
        while shard.bytes > cap {
            // Drop from the largest bucket first: big buffers free the
            // most memory per pop and are the least likely to be general.
            let Some((&len, _)) = shard.buckets.iter().next_back() else {
                break;
            };
            let bucket = shard.buckets.get_mut(&len).expect("bucket exists");
            let (popped, empty) = (bucket.pop().is_some(), bucket.is_empty());
            if popped {
                shard.bytes -= len * 8;
                alloc_stats::record_freed();
            }
            if empty {
                shard.buckets.remove(&len);
            }
        }
    }
}

/// A reservation raising the pool's retention cap by `bytes` for as long
/// as the lease lives. Dropping the lease lowers the cap again and trims
/// retained buffers back down to it, so a plan-cache eviction releases its
/// arena memory deterministically.
#[derive(Debug)]
pub struct ArenaLease {
    bytes: usize,
}

impl ArenaLease {
    /// Reserves `bytes` of extra pool retention.
    pub fn reserve(bytes: usize) -> Self {
        RESERVED.fetch_add(bytes, Ordering::Relaxed);
        Self { bytes }
    }

    /// The reservation size.
    pub fn bytes(&self) -> usize {
        self.bytes
    }
}

impl Drop for ArenaLease {
    fn drop(&mut self) {
        RESERVED.fetch_sub(self.bytes, Ordering::Relaxed);
        trim_to_cap();
    }
}

/// A pool-backed `u64` buffer: the backing store of every
/// [`crate::poly::Poly`].
///
/// Construction checks a buffer out of the arena; `Drop` returns it.
/// Dereferences to `[u64]`, and `Clone`/`PartialEq` behave exactly like
/// `Vec<u64>`, so it is a drop-in replacement for owned limb storage.
pub struct LimbVec {
    inner: Vec<u64>,
    /// Pool generation at checkout: [`quarantine`] invalidates older
    /// generations, routing their drop to the free path.
    generation: u64,
}

impl LimbVec {
    fn wrap(inner: Vec<u64>) -> Self {
        Self {
            inner,
            generation: GENERATION.load(Ordering::Relaxed),
        }
    }

    /// Checks out a buffer with **unspecified contents** (stale pool data,
    /// the poison sentinel, or zeros). The caller must fully overwrite it
    /// before reading — use [`LimbVec::take_zeroed`] for accumulators.
    pub fn take_raw(len: usize) -> Self {
        let mut inner = take(len);
        if let Some(p) = poison_value() {
            inner.fill(p);
        }
        Self::wrap(inner)
    }

    /// Checks out a zero-filled buffer.
    pub fn take_zeroed(len: usize) -> Self {
        let mut inner = take(len);
        inner.fill(0);
        Self::wrap(inner)
    }

    /// Checks out a buffer initialized as a copy of `src`.
    pub fn take_copy(src: &[u64]) -> Self {
        let mut inner = take(src.len());
        inner.copy_from_slice(src);
        Self::wrap(inner)
    }

    /// Adopts an existing vector: the allocation joins the pool when this
    /// `LimbVec` drops.
    pub fn from_vec(inner: Vec<u64>) -> Self {
        Self::wrap(inner)
    }

    /// Escapes the pool: the buffer becomes a plain `Vec` owned by the
    /// caller and is *not* recycled on drop.
    pub fn into_vec(mut self) -> Vec<u64> {
        std::mem::take(&mut self.inner)
    }
}

impl Drop for LimbVec {
    fn drop(&mut self) {
        recycle(std::mem::take(&mut self.inner), self.generation);
    }
}

impl Deref for LimbVec {
    type Target = [u64];

    fn deref(&self) -> &[u64] {
        &self.inner
    }
}

impl DerefMut for LimbVec {
    fn deref_mut(&mut self) -> &mut [u64] {
        &mut self.inner
    }
}

impl Clone for LimbVec {
    fn clone(&self) -> Self {
        Self::take_copy(&self.inner)
    }
}

impl PartialEq for LimbVec {
    fn eq(&self, other: &Self) -> bool {
        self.inner == other.inner
    }
}

impl Eq for LimbVec {}

impl std::fmt::Debug for LimbVec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

impl From<Vec<u64>> for LimbVec {
    fn from(v: Vec<u64>) -> Self {
        Self::from_vec(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_recycle_roundtrip_reuses_buffer() {
        // Use a length nothing else in the process plausibly uses so the
        // pool state for this bucket is ours alone.
        let len = 12347;
        let a = LimbVec::take_raw(len);
        let ptr = a.as_ptr();
        drop(a);
        let b = LimbVec::take_raw(len);
        // Not guaranteed to be the *same* buffer under concurrent tests
        // (another thread's shard may serve first), but the pooled bytes
        // must cover the bucket either way.
        let _ = ptr;
        assert_eq!(b.len(), len);
    }

    #[test]
    fn zeroed_checkout_is_zero_even_after_dirty_recycle() {
        let len = 12349;
        let mut a = LimbVec::take_raw(len);
        a.fill(0xDEAD_BEEF);
        drop(a);
        let b = LimbVec::take_zeroed(len);
        assert!(b.iter().all(|&x| x == 0));
    }

    #[test]
    fn clone_and_eq_match_vec_semantics() {
        let a = LimbVec::from_vec(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(&*b, &[1, 2, 3]);
        assert_eq!(b.into_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn poison_fills_raw_checkouts() {
        let len = 12351;
        drop(LimbVec::take_raw(len)); // ensure a pooled buffer exists
        set_poison(Some(0xABCD));
        let a = LimbVec::take_raw(len);
        set_poison(None);
        assert!(a.iter().all(|&x| x == 0xABCD));
        let z = LimbVec::take_zeroed(len);
        assert!(z.iter().all(|&x| x == 0));
    }

    #[test]
    fn lease_raises_and_trims_retention() {
        let before = reserved_bytes();
        let lease = ArenaLease::reserve(1 << 20);
        assert_eq!(reserved_bytes(), before + (1 << 20));
        drop(lease);
        assert_eq!(reserved_bytes(), before);
    }

    #[test]
    fn quarantine_frees_in_flight_checkouts_instead_of_pooling() {
        // Unique length so concurrent tests cannot feed this bucket.
        let len = 12353;
        let held = LimbVec::take_raw(len);
        let report = quarantine();
        assert_eq!(report.generation, generation());
        // The pre-quarantine checkout must not re-enter the pool on drop.
        drop(held);
        let probe = LimbVec::take_raw(len);
        // Whether this came from a pool repopulated by *post*-quarantine
        // drops or fresh, it can never be the quarantined buffer's bucket
        // entry: the pool held nothing of this length right after the
        // flush. (Exact identity is unobservable; the generation stamp is
        // the mechanism under test.)
        assert_eq!(probe.generation, generation());
        assert_eq!(probe.len(), len);
    }

    #[test]
    fn quarantine_bumps_generation_and_flushes_pool() {
        let len = 12361;
        drop(LimbVec::take_raw(len)); // ensure something is pooled
        let g0 = generation();
        let report = quarantine();
        assert_eq!(report.generation, g0 + 1);
        assert_eq!(generation(), g0 + 1);
        // Post-quarantine checkouts recycle normally again.
        let a = LimbVec::take_raw(len);
        drop(a);
        let b = LimbVec::take_raw(len);
        assert_eq!(b.generation, g0 + 1);
    }

    #[test]
    fn poisoned_shard_lock_is_recovered_and_counted() {
        let before = poison_recoveries();
        poison_shard_lock_for_test(5);
        // Any path that locks shard 5 recovers it; pooled_bytes locks all.
        let _ = pooled_bytes();
        assert!(
            poison_recoveries() > before,
            "lock poisoning must be recovered and counted"
        );
        // The arena remains fully usable afterwards.
        let v = LimbVec::take_zeroed(12373);
        assert!(v.iter().all(|&x| x == 0));
    }
}
