//! A small arbitrary-precision unsigned integer, `UBig`.
//!
//! Athena's exact paths need integers up to roughly `Q² · N` where
//! `log₂ Q = 720`, i.e. ~1500 bits — far beyond `u128` but small enough that
//! a simple little-endian `Vec<u64>` limb representation with schoolbook
//! multiplication and Knuth Algorithm D division is more than fast enough.
//! This keeps the workspace free of external big-integer dependencies and
//! doubles as the reference implementation that the RNS fast paths are
//! property-tested against.

use std::cmp::Ordering;

/// Arbitrary-precision unsigned integer (little-endian `u64` limbs, no
/// trailing zero limbs; zero is the empty limb vector).
///
/// # Examples
///
/// ```
/// use athena_math::bigint::UBig;
/// let a = UBig::from(u64::MAX);
/// let b = &a * &a;
/// let (q, r) = b.div_rem(&a);
/// assert_eq!(q, a);
/// assert!(r.is_zero());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Hash)]
pub struct UBig {
    limbs: Vec<u64>,
}

impl UBig {
    /// The value zero.
    pub fn zero() -> Self {
        Self { limbs: Vec::new() }
    }

    /// The value one.
    pub fn one() -> Self {
        Self { limbs: vec![1] }
    }

    /// Constructs from little-endian limbs (trailing zeros allowed).
    pub fn from_limbs(mut limbs: Vec<u64>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        Self { limbs }
    }

    /// The little-endian limb view.
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Whether this is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Number of significant bits (0 for zero).
    pub fn bits(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&hi) => self.limbs.len() * 64 - hi.leading_zeros() as usize,
        }
    }

    /// The low 64 bits.
    pub fn to_u64_lossy(&self) -> u64 {
        self.limbs.first().copied().unwrap_or(0)
    }

    /// The low 128 bits.
    pub fn to_u128_lossy(&self) -> u128 {
        let lo = self.limbs.first().copied().unwrap_or(0) as u128;
        let hi = self.limbs.get(1).copied().unwrap_or(0) as u128;
        (hi << 64) | lo
    }

    /// Bit `i` (false beyond the top).
    pub fn bit(&self, i: usize) -> bool {
        self.limbs
            .get(i / 64)
            .is_some_and(|l| (l >> (i % 64)) & 1 == 1)
    }

    /// `self + other`.
    pub fn add(&self, other: &UBig) -> UBig {
        let (a, b) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(a.len() + 1);
        let mut carry = 0u64;
        for (i, &ai) in a.iter().enumerate() {
            let bi = b.get(i).copied().unwrap_or(0);
            let (s1, c1) = ai.overflowing_add(bi);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = u64::from(c1) + u64::from(c2);
        }
        if carry != 0 {
            out.push(carry);
        }
        UBig::from_limbs(out)
    }

    /// `self - other`.
    ///
    /// # Panics
    ///
    /// Panics if `other > self`.
    pub fn sub(&self, other: &UBig) -> UBig {
        assert!(self >= other, "UBig::sub would underflow");
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let bi = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs[i].overflowing_sub(bi);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = u64::from(b1) + u64::from(b2);
        }
        debug_assert_eq!(borrow, 0);
        UBig::from_limbs(out)
    }

    /// `self * other` (schoolbook).
    pub fn mul(&self, other: &UBig) -> UBig {
        if self.is_zero() || other.is_zero() {
            return UBig::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = out[i + j] as u128 + a as u128 * b as u128 + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        UBig::from_limbs(out)
    }

    /// Multiplies by a single word.
    pub fn mul_u64(&self, w: u64) -> UBig {
        if w == 0 || self.is_zero() {
            return UBig::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry = 0u128;
        for &a in &self.limbs {
            let cur = a as u128 * w as u128 + carry;
            out.push(cur as u64);
            carry = cur >> 64;
        }
        if carry != 0 {
            out.push(carry as u64);
        }
        UBig::from_limbs(out)
    }

    /// Adds a single word.
    pub fn add_u64(&self, w: u64) -> UBig {
        self.add(&UBig::from(w))
    }

    /// Left shift by `n` bits.
    pub fn shl(&self, n: usize) -> UBig {
        if self.is_zero() {
            return UBig::zero();
        }
        let word_shift = n / 64;
        let bit_shift = n % 64;
        let mut out = vec![0u64; word_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        UBig::from_limbs(out)
    }

    /// Right shift by `n` bits.
    pub fn shr(&self, n: usize) -> UBig {
        let word_shift = n / 64;
        if word_shift >= self.limbs.len() {
            return UBig::zero();
        }
        let bit_shift = n % 64;
        let src = &self.limbs[word_shift..];
        let mut out = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            out.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let lo = src[i] >> bit_shift;
                let hi = src.get(i + 1).map_or(0, |&l| l << (64 - bit_shift));
                out.push(lo | hi);
            }
        }
        UBig::from_limbs(out)
    }

    /// Divides by a single word, returning `(quotient, remainder)`.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    pub fn div_rem_u64(&self, d: u64) -> (UBig, u64) {
        assert!(d != 0, "division by zero");
        let mut out = vec![0u64; self.limbs.len()];
        let mut rem = 0u128;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | self.limbs[i] as u128;
            out[i] = (cur / d as u128) as u64;
            rem = cur % d as u128;
        }
        (UBig::from_limbs(out), rem as u64)
    }

    /// Full division: returns `(quotient, remainder)` with
    /// `self = q*d + r`, `0 <= r < d` (Knuth Algorithm D).
    ///
    /// # Panics
    ///
    /// Panics if `d` is zero.
    pub fn div_rem(&self, d: &UBig) -> (UBig, UBig) {
        assert!(!d.is_zero(), "division by zero");
        if self < d {
            return (UBig::zero(), self.clone());
        }
        if d.limbs.len() == 1 {
            let (q, r) = self.div_rem_u64(d.limbs[0]);
            return (q, UBig::from(r));
        }
        // Normalize so divisor's top limb has its high bit set.
        let shift = d.limbs.last().unwrap().leading_zeros() as usize;
        let u = self.shl(shift);
        let v = d.shl(shift);
        let n = v.limbs.len();
        let m = u.limbs.len() - n;
        let mut un = u.limbs.clone();
        un.push(0); // u has m+n+1 limbs
        let vn = &v.limbs;
        let mut q = vec![0u64; m + 1];
        let b = 1u128 << 64;
        for j in (0..=m).rev() {
            // Estimate qhat from top two limbs of current remainder.
            let top = ((un[j + n] as u128) << 64) | un[j + n - 1] as u128;
            let mut qhat = top / vn[n - 1] as u128;
            let mut rhat = top % vn[n - 1] as u128;
            while qhat >= b || qhat * vn[n - 2] as u128 > ((rhat << 64) | un[j + n - 2] as u128) {
                qhat -= 1;
                rhat += vn[n - 1] as u128;
                if rhat >= b {
                    break;
                }
            }
            // Multiply and subtract: un[j..j+n+1] -= qhat * v.
            let mut borrow = 0i128;
            let mut carry = 0u128;
            for i in 0..n {
                let p = qhat * vn[i] as u128 + carry;
                carry = p >> 64;
                let sub = un[j + i] as i128 - (p as u64) as i128 - borrow;
                un[j + i] = sub as u64;
                borrow = i128::from(sub < 0);
            }
            let sub = un[j + n] as i128 - carry as i128 - borrow;
            un[j + n] = sub as u64;
            if sub < 0 {
                // qhat was one too large; add divisor back.
                qhat -= 1;
                let mut carry = 0u128;
                for i in 0..n {
                    let s = un[j + i] as u128 + vn[i] as u128 + carry;
                    un[j + i] = s as u64;
                    carry = s >> 64;
                }
                un[j + n] = un[j + n].wrapping_add(carry as u64);
            }
            q[j] = qhat as u64;
        }
        let r = UBig::from_limbs(un[..n].to_vec()).shr(shift);
        (UBig::from_limbs(q), r)
    }

    /// `self mod d`.
    pub fn rem(&self, d: &UBig) -> UBig {
        self.div_rem(d).1
    }

    /// `self mod m` for a word-sized modulus.
    pub fn rem_u64(&self, m: u64) -> u64 {
        self.div_rem_u64(m).1
    }

    /// Rounded division `round(self / d)` (ties away from zero, matching
    /// `⌊x/d⌉` for non-negative x as used in BFV scaling).
    pub fn div_round(&self, d: &UBig) -> UBig {
        let (q, r) = self.div_rem(d);
        // round up if 2r >= d
        if r.mul_u64(2) >= *d {
            q.add(&UBig::one())
        } else {
            q
        }
    }

    /// Parses from a decimal string.
    ///
    /// # Panics
    ///
    /// Panics on non-digit characters.
    pub fn from_decimal(s: &str) -> UBig {
        let mut acc = UBig::zero();
        for c in s.bytes() {
            assert!(c.is_ascii_digit(), "invalid decimal digit");
            acc = acc.mul_u64(10).add_u64((c - b'0') as u64);
        }
        acc
    }

    /// Renders as a decimal string.
    pub fn to_decimal(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut digits = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.div_rem_u64(10);
            digits.push(b'0' + r as u8);
            cur = q;
        }
        digits.reverse();
        String::from_utf8(digits).expect("digits are ASCII")
    }
}

impl From<u64> for UBig {
    fn from(v: u64) -> Self {
        UBig::from_limbs(vec![v])
    }
}

impl From<u128> for UBig {
    fn from(v: u128) -> Self {
        UBig::from_limbs(vec![v as u64, (v >> 64) as u64])
    }
}

impl PartialOrd for UBig {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for UBig {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for i in (0..self.limbs.len()).rev() {
                    match self.limbs[i].cmp(&other.limbs[i]) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                Ordering::Equal
            }
            ord => ord,
        }
    }
}

impl std::ops::Add for &UBig {
    type Output = UBig;
    fn add(self, rhs: &UBig) -> UBig {
        UBig::add(self, rhs)
    }
}

impl std::ops::Sub for &UBig {
    type Output = UBig;
    fn sub(self, rhs: &UBig) -> UBig {
        UBig::sub(self, rhs)
    }
}

impl std::ops::Mul for &UBig {
    type Output = UBig;
    fn mul(self, rhs: &UBig) -> UBig {
        UBig::mul(self, rhs)
    }
}

impl std::fmt::Display for UBig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_decimal())
    }
}

/// A signed wrapper over [`UBig`], used for centered residues.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IBig {
    /// Magnitude.
    pub mag: UBig,
    /// Sign: true if negative (zero is always non-negative).
    pub neg: bool,
}

impl IBig {
    /// Constructs from a sign and a magnitude.
    pub fn new(neg: bool, mag: UBig) -> Self {
        let neg = neg && !mag.is_zero();
        Self { mag, neg }
    }

    /// Constructs from an `i64`.
    pub fn from_i64(v: i64) -> Self {
        Self::new(v < 0, UBig::from(v.unsigned_abs()))
    }

    /// Signed addition.
    pub fn add(&self, other: &IBig) -> IBig {
        if self.neg == other.neg {
            IBig::new(self.neg, self.mag.add(&other.mag))
        } else if self.mag >= other.mag {
            IBig::new(self.neg, self.mag.sub(&other.mag))
        } else {
            IBig::new(other.neg, other.mag.sub(&self.mag))
        }
    }

    /// Signed multiplication.
    pub fn mul(&self, other: &IBig) -> IBig {
        IBig::new(self.neg != other.neg, self.mag.mul(&other.mag))
    }

    /// Euclidean remainder in `[0, m)`.
    pub fn rem_euclid(&self, m: &UBig) -> UBig {
        let r = self.mag.rem(m);
        if self.neg && !r.is_zero() {
            m.sub(&r)
        } else {
            r
        }
    }

    /// Lossy conversion to `i128` (low bits).
    pub fn to_i128_lossy(&self) -> i128 {
        let v = self.mag.to_u128_lossy() as i128;
        if self.neg {
            -v
        } else {
            v
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sub_roundtrip() {
        let a = UBig::from_decimal("123456789012345678901234567890");
        let b = UBig::from_decimal("987654321098765432109876543210");
        let s = a.add(&b);
        assert_eq!(s.sub(&b), a);
        assert_eq!(s.to_decimal(), "1111111110111111111011111111100");
    }

    #[test]
    fn mul_div_roundtrip() {
        let a = UBig::from_decimal("340282366920938463463374607431768211457"); // 2^128+1
        let b = UBig::from_decimal("18446744073709551629"); // prime > 2^64
        let p = a.mul(&b);
        let (q, r) = p.div_rem(&b);
        assert_eq!(q, a);
        assert!(r.is_zero());
        let p1 = p.add_u64(12345);
        let (q1, r1) = p1.div_rem(&b);
        assert_eq!(q1, a);
        assert_eq!(r1, UBig::from(12345u64));
    }

    #[test]
    fn division_stress_knuth_d_edge() {
        // Case that exercises the add-back branch: divisor with max top limb.
        let d = UBig::from_limbs(vec![0, u64::MAX]);
        let n = UBig::from_limbs(vec![u64::MAX, u64::MAX, u64::MAX - 1]);
        let (q, r) = n.div_rem(&d);
        let recon = q.mul(&d).add(&r);
        assert_eq!(recon, n);
        assert!(r < d);
    }

    #[test]
    fn shifts() {
        let a = UBig::from_decimal("123456789123456789123456789");
        assert_eq!(a.shl(67).shr(67), a);
        assert_eq!(a.shl(3), a.mul_u64(8));
        assert_eq!(a.shr(200), UBig::zero());
    }

    #[test]
    fn div_round_ties() {
        let d = UBig::from(10u64);
        assert_eq!(UBig::from(14u64).div_round(&d), UBig::from(1u64));
        assert_eq!(UBig::from(15u64).div_round(&d), UBig::from(2u64));
        assert_eq!(UBig::from(16u64).div_round(&d), UBig::from(2u64));
    }

    #[test]
    fn decimal_roundtrip() {
        for s in [
            "0",
            "1",
            "18446744073709551616",
            "340282366920938463463374607431768211456",
        ] {
            assert_eq!(UBig::from_decimal(s).to_decimal(), s);
        }
    }

    #[test]
    fn bits_and_bit() {
        let a = UBig::from(0b1011u64);
        assert_eq!(a.bits(), 4);
        assert!(a.bit(0) && a.bit(1) && !a.bit(2) && a.bit(3) && !a.bit(64));
        assert_eq!(UBig::zero().bits(), 0);
    }

    #[test]
    fn ibig_arithmetic() {
        let a = IBig::from_i64(-7);
        let b = IBig::from_i64(3);
        assert_eq!(a.add(&b), IBig::from_i64(-4));
        assert_eq!(a.mul(&b), IBig::from_i64(-21));
        assert_eq!(a.rem_euclid(&UBig::from(5u64)), UBig::from(3u64));
    }
}
