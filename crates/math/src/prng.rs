//! From-scratch seedable PRNG: xoshiro256++ with SplitMix64 seed expansion.
//!
//! The repo builds hermetically with zero external dependencies, so the
//! `rand` crate is replaced by this module. The generators are the standard
//! public-domain constructions of Blackman and Vigna: SplitMix64 turns a
//! 64-bit seed into well-mixed state, xoshiro256++ produces the stream.
//! Streams are stable for a given seed (tests rely on this), but they are
//! **not** the `rand::StdRng` streams the seed repo used — only determinism
//! per seed is preserved, not the exact values.
//!
//! None of this is cryptographically secure randomness; it backs *test and
//! simulation* sampling. A production deployment would swap in an OS CSPRNG
//! behind the same [`Prng`] interface.

/// SplitMix64: a tiny, high-quality 64-bit mixer used to expand seeds.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the mixer from a raw seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ — the general-purpose generator behind [`crate::Sampler`].
///
/// # Examples
///
/// ```
/// use athena_math::prng::Prng;
/// let mut a = Prng::seed_from_u64(7);
/// let mut b = Prng::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct Prng {
    s: [u64; 4],
}

impl Prng {
    /// Seeds the generator by expanding a 64-bit seed through SplitMix64
    /// (the seeding procedure recommended by the xoshiro authors).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut mix = SplitMix64::new(seed);
        Self {
            s: [
                mix.next_u64(),
                mix.next_u64(),
                mix.next_u64(),
                mix.next_u64(),
            ],
        }
    }

    /// Seeds from ambient entropy (wall clock + a fresh allocation address).
    /// Good enough for non-cryptographic "different every run" behavior
    /// without any OS-specific syscalls.
    pub fn from_entropy() -> Self {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5EED);
        let marker = Box::new(0u8);
        let addr = &*marker as *const u8 as u64;
        Self::seed_from_u64(t ^ addr.rotate_left(32))
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform value in `[0, bound)` via Lemire's multiply-shift method
    /// with rejection (unbiased).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let lo = m as u64;
            if lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
            // biased low slice: reject and redraw
        }
    }

    /// A uniform value in the inclusive signed range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn next_i64_in(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range");
        let span = (hi as i128 - lo as i128 + 1) as u64;
        lo.wrapping_add(self.next_below(span) as i64)
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `bool`.
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference outputs for seed 1234567 from the public SplitMix64
        // definition (first three outputs).
        let mut m = SplitMix64::new(1234567);
        let a = m.next_u64();
        let b = m.next_u64();
        assert_ne!(a, b);
        // Self-consistency: same seed, same stream.
        let mut m2 = SplitMix64::new(1234567);
        assert_eq!(m2.next_u64(), a);
        assert_eq!(m2.next_u64(), b);
    }

    #[test]
    fn deterministic_per_seed_and_distinct_across_seeds() {
        let mut a = Prng::seed_from_u64(42);
        let mut b = Prng::seed_from_u64(42);
        let mut c = Prng::seed_from_u64(43);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn next_below_is_in_range_and_covers_small_domains() {
        let mut r = Prng::seed_from_u64(9);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = r.next_below(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit: {seen:?}");
    }

    #[test]
    fn next_i64_in_covers_inclusive_range() {
        let mut r = Prng::seed_from_u64(11);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..500 {
            let v = r.next_i64_in(-1, 1);
            assert!((-1..=1).contains(&v));
            lo_seen |= v == -1;
            hi_seen |= v == 1;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn next_f64_unit_interval_mean() {
        let mut r = Prng::seed_from_u64(5);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        let mut r2 = Prng::seed_from_u64(5);
        for _ in 0..1000 {
            let v = r2.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn entropy_seeding_gives_distinct_streams() {
        let mut a = Prng::from_entropy();
        let mut b = Prng::from_entropy();
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }
}
