//! A `std`-only parallel execution layer for the FHE hot paths.
//!
//! Athena's five-step loop turns every non-linear layer into thousands of
//! *independent* LWE functional bootstrappings, and the underlying RNS-BFV
//! arithmetic is limb-parallel by construction — the exact parallelism the
//! paper's FRU array exploits in hardware. This module exposes that
//! parallelism on CPU threads with nothing but `std::thread::scope`:
//! no rayon, no crossbeam, no external crates (the build is hermetic).
//!
//! Work is split into contiguous chunks, one per worker, and results are
//! reassembled in input order, so every `parallel_*` function is
//! **deterministic**: the output is identical for any thread count,
//! including the sequential `threads = 1` fallback (which runs entirely on
//! the caller's stack — no spawning at all).
//!
//! The default worker count is [`std::thread::available_parallelism`],
//! overridable at runtime with the `ATHENA_THREADS` environment variable or
//! programmatically with [`set_threads`] (handy for serial-vs-parallel
//! equivalence tests and benchmarks).
//!
//! ```
//! use athena_math::par;
//! let squares = par::parallel_map(&[1u64, 2, 3, 4], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide thread-count override set by [`set_threads`]
/// (0 means "not set").
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// The worker count used by the `parallel_*` entry points, resolved in
/// priority order: [`set_threads`] override, then the `ATHENA_THREADS`
/// environment variable, then [`std::thread::available_parallelism`].
pub fn num_threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    if let Ok(v) = std::env::var("ATHENA_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Forces the worker count for the whole process (`0` clears the override
/// and returns control to `ATHENA_THREADS` / hardware detection).
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

/// Minimum work units (one unit ≈ one coefficient operation) each extra
/// worker must receive before spawning it pays for itself: a scoped
/// spawn + join costs tens of microseconds, so handing a thread less
/// than ~32k coefficient ops makes the region slower than running it
/// inline. Differential fuzzing at reduced ring degrees also showed the
/// churn itself is a hazard: a sweep spawning millions of short-lived
/// threads (one parallel region per per-limb op at `n = 64`)
/// intermittently died in `pthread_join` on some kernels. Work-sized
/// regions keep tiny rings inline and production rings parallel.
const WORK_PER_WORKER: usize = 32 * 1024;

/// The worker count for a region of `len` items costing roughly
/// `work_per_item` units each: the default count ([`num_threads`]),
/// capped so every worker gets at least `WORK_PER_WORKER` (32k) units.
/// Chunking — and therefore every result — is identical at any worker
/// count, so this only changes scheduling, never output.
pub fn threads_for(len: usize, work_per_item: usize) -> usize {
    let total = len.saturating_mul(work_per_item.max(1));
    num_threads().min(total / WORK_PER_WORKER).max(1)
}

/// Splits `len` items into at most `workers` contiguous chunk ranges.
fn chunk_ranges(len: usize, workers: usize) -> Vec<(usize, usize)> {
    let workers = workers.clamp(1, len.max(1));
    let base = len / workers;
    let extra = len % workers;
    let mut ranges = Vec::with_capacity(workers);
    let mut start = 0;
    for w in 0..workers {
        let size = base + usize::from(w < extra);
        if size == 0 {
            break;
        }
        ranges.push((start, start + size));
        start += size;
    }
    ranges
}

/// Maps `f` over `0..len` with an explicit worker count, preserving index
/// order. `threads <= 1` (or a single-item input) runs inline.
pub fn parallel_map_range_with<U, F>(threads: usize, len: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let threads = threads.min(len).max(1);
    if threads == 1 {
        return (0..len).map(f).collect();
    }
    let ranges = chunk_ranges(len, threads);
    let fref = &f;
    let mut chunks: Vec<Vec<U>> = Vec::with_capacity(ranges.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .iter()
            .map(|&(a, b)| scope.spawn(move || (a..b).map(fref).collect::<Vec<U>>()))
            .collect();
        for h in handles {
            chunks.push(h.join().expect("parallel worker panicked"));
        }
    });
    let mut out = Vec::with_capacity(len);
    for c in chunks {
        out.extend(c);
    }
    out
}

/// Maps `f` over `0..len` with the default worker count ([`num_threads`]).
pub fn parallel_map_range<U, F>(len: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    parallel_map_range_with(num_threads(), len, f)
}

/// Maps `f` over a slice with an explicit worker count, preserving order.
pub fn parallel_map_with<T, U, F>(threads: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    parallel_map_range_with(threads, items.len(), |i| f(&items[i]))
}

/// Maps `f` over a slice with the default worker count, preserving order.
pub fn parallel_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    parallel_map_with(num_threads(), items, f)
}

/// Applies `f` to every element of a mutable slice in place, with an
/// explicit worker count.
pub fn parallel_for_each_mut_with<T, F>(threads: usize, items: &mut [T], f: F)
where
    T: Send,
    F: Fn(&mut T) + Sync,
{
    let len = items.len();
    let threads = threads.min(len).max(1);
    if threads == 1 {
        for item in items {
            f(item);
        }
        return;
    }
    let fref = &f;
    // Hand each worker a disjoint chunk of the slice.
    let chunk = len.div_ceil(threads);
    std::thread::scope(|scope| {
        for part in items.chunks_mut(chunk) {
            scope.spawn(move || {
                for item in part {
                    fref(item);
                }
            });
        }
    });
}

/// Applies `f` to every element of a mutable slice in place, with the
/// default worker count.
pub fn parallel_for_each_mut<T, F>(items: &mut [T], f: F)
where
    T: Send,
    F: Fn(&mut T) + Sync,
{
    parallel_for_each_mut_with(num_threads(), items, f)
}

/// Zips a mutable slice against a read-only slice of the same length and
/// applies `f(index, &mut a[i], &b[i])` in place, with an explicit worker
/// count. Workers own disjoint chunks of both slices, so this is as
/// deterministic as the serial loop.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn parallel_zip_mut_with<T, U, F>(threads: usize, a: &mut [T], b: &[U], f: F)
where
    T: Send,
    U: Sync,
    F: Fn(usize, &mut T, &U) + Sync,
{
    assert_eq!(a.len(), b.len(), "zip requires equal lengths");
    let len = a.len();
    let threads = threads.min(len).max(1);
    if threads == 1 {
        for (i, (x, y)) in a.iter_mut().zip(b).enumerate() {
            f(i, x, y);
        }
        return;
    }
    let fref = &f;
    let chunk = len.div_ceil(threads);
    std::thread::scope(|scope| {
        for (ci, (pa, pb)) in a.chunks_mut(chunk).zip(b.chunks(chunk)).enumerate() {
            scope.spawn(move || {
                let base = ci * chunk;
                for (i, (x, y)) in pa.iter_mut().zip(pb).enumerate() {
                    fref(base + i, x, y);
                }
            });
        }
    });
}

/// Zips a mutable slice against a read-only slice with the default worker
/// count. See [`parallel_zip_mut_with`].
pub fn parallel_zip_mut<T, U, F>(a: &mut [T], b: &[U], f: F)
where
    T: Send,
    U: Sync,
    F: Fn(usize, &mut T, &U) + Sync,
{
    parallel_zip_mut_with(num_threads(), a, b, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunking_covers_input_exactly() {
        for len in [0usize, 1, 2, 7, 16, 100] {
            for workers in [1usize, 2, 3, 8, 200] {
                let ranges = chunk_ranges(len, workers);
                let total: usize = ranges.iter().map(|(a, b)| b - a).sum();
                assert_eq!(total, len, "len={len} workers={workers}");
                for w in ranges.windows(2) {
                    assert_eq!(w[0].1, w[1].0, "contiguous");
                }
            }
        }
    }

    #[test]
    fn map_matches_serial_for_all_thread_counts() {
        let items: Vec<u64> = (0..257).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for threads in [1usize, 2, 3, 4, 8, 300] {
            let par = parallel_map_with(threads, &items, |&x| x * x + 1);
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn map_range_preserves_index_order() {
        for threads in [1usize, 2, 5] {
            let out = parallel_map_range_with(threads, 100, |i| i * 3);
            assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn for_each_mut_matches_serial() {
        let mut a: Vec<u64> = (0..100).collect();
        let mut b = a.clone();
        parallel_for_each_mut_with(1, &mut a, |x| *x = x.wrapping_mul(7) + 3);
        parallel_for_each_mut_with(4, &mut b, |x| *x = x.wrapping_mul(7) + 3);
        assert_eq!(a, b);
    }

    #[test]
    fn zip_mut_matches_serial() {
        let b: Vec<u64> = (0..101).map(|i| i * 5 + 1).collect();
        let mut serial: Vec<u64> = (0..101).collect();
        for (i, (x, y)) in serial.iter_mut().zip(&b).enumerate() {
            *x = x.wrapping_add(*y) ^ i as u64;
        }
        for threads in [1usize, 2, 3, 8, 300] {
            let mut par: Vec<u64> = (0..101).collect();
            parallel_zip_mut_with(threads, &mut par, &b, |i, x, y| {
                *x = x.wrapping_add(*y) ^ i as u64;
            });
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u64> = Vec::new();
        assert!(parallel_map_with(8, &empty, |&x| x).is_empty());
        assert_eq!(parallel_map_with(8, &[5u64], |&x| x + 1), vec![6]);
        assert_eq!(parallel_map_range_with(8, 0, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn override_takes_priority() {
        set_threads(3);
        assert_eq!(num_threads(), 3);
        set_threads(0);
        assert!(num_threads() >= 1);
    }
}
