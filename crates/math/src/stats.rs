//! Lightweight operation counters for the NTT hot path.
//!
//! The domain-aware refactor keeps ciphertexts and key material in Eval
//! (NTT) form end-to-end; these counters let tests and benches *prove* the
//! round-trips are gone rather than merely moved. Counting is compiled in
//! under the default-on `op-stats` feature and costs one relaxed atomic
//! increment per transform; with the feature disabled the API still exists
//! but every call is a no-op and every read returns zero.
//!
//! Counters are process-global. Tests that assert exact counts must not run
//! concurrently with other NTT work — keep them in a dedicated integration
//! test binary and serialize them behind a lock (see
//! `crates/fhe/tests/domain_invariants.rs`).

/// Forward/inverse negacyclic NTT counters.
pub mod ntt_stats {
    #[cfg(feature = "op-stats")]
    mod imp {
        use std::sync::atomic::{AtomicU64, Ordering};

        static FORWARD: AtomicU64 = AtomicU64::new(0);
        static INVERSE: AtomicU64 = AtomicU64::new(0);

        #[inline]
        pub fn record_forward() {
            FORWARD.fetch_add(1, Ordering::Relaxed);
        }

        #[inline]
        pub fn record_inverse() {
            INVERSE.fetch_add(1, Ordering::Relaxed);
        }

        pub fn reset() {
            FORWARD.store(0, Ordering::Relaxed);
            INVERSE.store(0, Ordering::Relaxed);
        }

        pub fn forward_count() -> u64 {
            FORWARD.load(Ordering::Relaxed)
        }

        pub fn inverse_count() -> u64 {
            INVERSE.load(Ordering::Relaxed)
        }
    }

    #[cfg(not(feature = "op-stats"))]
    mod imp {
        #[inline]
        pub fn record_forward() {}
        #[inline]
        pub fn record_inverse() {}
        pub fn reset() {}
        pub fn forward_count() -> u64 {
            0
        }
        pub fn inverse_count() -> u64 {
            0
        }
    }

    pub use imp::{forward_count, inverse_count, record_forward, record_inverse, reset};

    /// Snapshot of both counters, for before/after deltas.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct NttCounts {
        /// Forward (Coeff→Eval) transforms since the last reset.
        pub forward: u64,
        /// Inverse (Eval→Coeff) transforms since the last reset.
        pub inverse: u64,
    }

    /// Reads both counters at once.
    pub fn snapshot() -> NttCounts {
        NttCounts {
            forward: forward_count(),
            inverse: inverse_count(),
        }
    }

    /// Runs `f` and returns its result together with the NTT counts it
    /// incurred. Only meaningful when no other thread is transforming.
    pub fn measure<T>(f: impl FnOnce() -> T) -> (T, NttCounts) {
        let before = snapshot();
        let out = f();
        let after = snapshot();
        (
            out,
            NttCounts {
                forward: after.forward - before.forward,
                inverse: after.inverse - before.inverse,
            },
        )
    }
}

#[cfg(all(test, feature = "op-stats"))]
mod tests {
    use super::ntt_stats;
    use crate::poly::Ring;

    #[test]
    fn counts_forward_and_inverse_transforms() {
        // Serialized implicitly: this is the only count-sensitive test in
        // the athena-math binary that uses the ring below; use measure()
        // deltas rather than absolute values to stay robust anyway.
        let ring = Ring::new(12289, 64);
        let a = ring.from_i64(&vec![1i64; 64]);
        let (_, counts) = ntt_stats::measure(|| {
            let e = ring.to_eval(&a);
            ring.to_coeff(&e)
        });
        assert_eq!(counts.forward, 1);
        assert_eq!(counts.inverse, 1);
    }
}
