//! Lightweight operation counters for the NTT hot path.
//!
//! The domain-aware refactor keeps ciphertexts and key material in Eval
//! (NTT) form end-to-end; these counters let tests and benches *prove* the
//! round-trips are gone rather than merely moved. Counting is compiled in
//! under the default-on `op-stats` feature and costs one relaxed atomic
//! increment per transform; with the feature disabled the API still exists
//! but every call is a no-op and every read returns zero.
//!
//! Counters are process-global. Tests that assert exact counts must not run
//! concurrently with other NTT work — keep them in a dedicated integration
//! test binary and serialize them behind a lock (see
//! `crates/fhe/tests/domain_invariants.rs`).

/// Forward/inverse negacyclic NTT counters.
pub mod ntt_stats {
    #[cfg(feature = "op-stats")]
    mod imp {
        use std::sync::atomic::{AtomicU64, Ordering};

        static FORWARD: AtomicU64 = AtomicU64::new(0);
        static INVERSE: AtomicU64 = AtomicU64::new(0);

        #[inline]
        pub fn record_forward() {
            FORWARD.fetch_add(1, Ordering::Relaxed);
        }

        #[inline]
        pub fn record_inverse() {
            INVERSE.fetch_add(1, Ordering::Relaxed);
        }

        pub fn reset() {
            FORWARD.store(0, Ordering::Relaxed);
            INVERSE.store(0, Ordering::Relaxed);
        }

        pub fn forward_count() -> u64 {
            FORWARD.load(Ordering::Relaxed)
        }

        pub fn inverse_count() -> u64 {
            INVERSE.load(Ordering::Relaxed)
        }
    }

    #[cfg(not(feature = "op-stats"))]
    mod imp {
        #[inline]
        pub fn record_forward() {}
        #[inline]
        pub fn record_inverse() {}
        pub fn reset() {}
        pub fn forward_count() -> u64 {
            0
        }
        pub fn inverse_count() -> u64 {
            0
        }
    }

    pub use imp::{forward_count, inverse_count, record_forward, record_inverse, reset};

    /// Snapshot of both counters, for before/after deltas.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct NttCounts {
        /// Forward (Coeff→Eval) transforms since the last reset.
        pub forward: u64,
        /// Inverse (Eval→Coeff) transforms since the last reset.
        pub inverse: u64,
    }

    /// Reads both counters at once.
    pub fn snapshot() -> NttCounts {
        NttCounts {
            forward: forward_count(),
            inverse: inverse_count(),
        }
    }

    /// Runs `f` and returns its result together with the NTT counts it
    /// incurred. Only meaningful when no other thread is transforming.
    pub fn measure<T>(f: impl FnOnce() -> T) -> (T, NttCounts) {
        let before = snapshot();
        let out = f();
        let after = snapshot();
        (
            out,
            NttCounts {
                forward: after.forward - before.forward,
                inverse: after.inverse - before.inverse,
            },
        )
    }
}

/// Rotation / key-switch counters: eager vs hoisted HRots and the digit
/// decompositions feeding them.
///
/// One **eager** rotation pays its own digit decomposition; a **hoisted**
/// rotation permutes digits that were decomposed once up front. `decompose`
/// counts every digit decomposition performed (rotation key switches and
/// relinearizations alike), so `decompose ≪ eager + hoisted` is the proof
/// that a schedule actually shares its source decompositions.
pub mod rot_stats {
    #[cfg(feature = "op-stats")]
    mod imp {
        use std::sync::atomic::{AtomicU64, Ordering};

        static EAGER: AtomicU64 = AtomicU64::new(0);
        static HOISTED: AtomicU64 = AtomicU64::new(0);
        static DECOMPOSE: AtomicU64 = AtomicU64::new(0);

        #[inline]
        pub fn record_eager() {
            EAGER.fetch_add(1, Ordering::Relaxed);
        }

        #[inline]
        pub fn record_hoisted() {
            HOISTED.fetch_add(1, Ordering::Relaxed);
        }

        #[inline]
        pub fn record_decompose() {
            DECOMPOSE.fetch_add(1, Ordering::Relaxed);
        }

        pub fn reset() {
            EAGER.store(0, Ordering::Relaxed);
            HOISTED.store(0, Ordering::Relaxed);
            DECOMPOSE.store(0, Ordering::Relaxed);
        }

        pub fn eager_count() -> u64 {
            EAGER.load(Ordering::Relaxed)
        }

        pub fn hoisted_count() -> u64 {
            HOISTED.load(Ordering::Relaxed)
        }

        pub fn decompose_count() -> u64 {
            DECOMPOSE.load(Ordering::Relaxed)
        }
    }

    #[cfg(not(feature = "op-stats"))]
    mod imp {
        #[inline]
        pub fn record_eager() {}
        #[inline]
        pub fn record_hoisted() {}
        #[inline]
        pub fn record_decompose() {}
        pub fn reset() {}
        pub fn eager_count() -> u64 {
            0
        }
        pub fn hoisted_count() -> u64 {
            0
        }
        pub fn decompose_count() -> u64 {
            0
        }
    }

    pub use imp::{
        decompose_count, eager_count, hoisted_count, record_decompose, record_eager,
        record_hoisted, reset,
    };

    /// Snapshot of the rotation counters, for before/after deltas.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RotCounts {
        /// Rotations that paid their own digit decomposition.
        pub eager: u64,
        /// Rotations served from hoisted (cached) digits.
        pub hoisted: u64,
        /// Digit decompositions performed (rotations *and* relins).
        pub decompose: u64,
    }

    impl RotCounts {
        /// Total HRot operations, however they were keyed.
        pub fn rotations(&self) -> u64 {
            self.eager + self.hoisted
        }
    }

    /// Reads all three counters at once.
    pub fn snapshot() -> RotCounts {
        RotCounts {
            eager: eager_count(),
            hoisted: hoisted_count(),
            decompose: decompose_count(),
        }
    }

    /// Runs `f` and returns its result together with the rotation counts it
    /// incurred. Only meaningful when no other thread is rotating.
    pub fn measure<T>(f: impl FnOnce() -> T) -> (T, RotCounts) {
        let before = snapshot();
        let out = f();
        let after = snapshot();
        (
            out,
            RotCounts {
                eager: after.eager - before.eager,
                hoisted: after.hoisted - before.hoisted,
                decompose: after.decompose - before.decompose,
            },
        )
    }
}

/// Tensor-lift counters for the CMult hot path: how many operand lifts into
/// the extended multiplication basis were computed from scratch vs served
/// from a cache (the CMult analogue of rotation hoisting — BSGS polynomial
/// evaluation reuses the same powers across many products).
pub mod lift_stats {
    #[cfg(feature = "op-stats")]
    mod imp {
        use std::sync::atomic::{AtomicU64, Ordering};

        static COMPUTED: AtomicU64 = AtomicU64::new(0);
        static REUSED: AtomicU64 = AtomicU64::new(0);

        #[inline]
        pub fn record_computed() {
            COMPUTED.fetch_add(1, Ordering::Relaxed);
        }

        #[inline]
        pub fn record_reused() {
            REUSED.fetch_add(1, Ordering::Relaxed);
        }

        pub fn reset() {
            COMPUTED.store(0, Ordering::Relaxed);
            REUSED.store(0, Ordering::Relaxed);
        }

        pub fn computed_count() -> u64 {
            COMPUTED.load(Ordering::Relaxed)
        }

        pub fn reused_count() -> u64 {
            REUSED.load(Ordering::Relaxed)
        }
    }

    #[cfg(not(feature = "op-stats"))]
    mod imp {
        #[inline]
        pub fn record_computed() {}
        #[inline]
        pub fn record_reused() {}
        pub fn reset() {}
        pub fn computed_count() -> u64 {
            0
        }
        pub fn reused_count() -> u64 {
            0
        }
    }

    pub use imp::{computed_count, record_computed, record_reused, reset, reused_count};

    /// Snapshot of both lift counters.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct LiftCounts {
        /// Tensor lifts computed from scratch.
        pub computed: u64,
        /// Tensor lifts served from an operand cache.
        pub reused: u64,
    }

    /// Reads both counters at once.
    pub fn snapshot() -> LiftCounts {
        LiftCounts {
            computed: computed_count(),
            reused: reused_count(),
        }
    }

    /// Runs `f` and returns its result together with the lift counts it
    /// incurred. Only meaningful when no other thread is lifting.
    pub fn measure<T>(f: impl FnOnce() -> T) -> (T, LiftCounts) {
        let before = snapshot();
        let out = f();
        let after = snapshot();
        (
            out,
            LiftCounts {
                computed: after.computed - before.computed,
                reused: after.reused - before.reused,
            },
        )
    }
}

#[cfg(all(test, feature = "op-stats"))]
mod tests {
    use super::{lift_stats, ntt_stats, rot_stats};
    use crate::poly::Ring;

    #[test]
    fn counts_forward_and_inverse_transforms() {
        // Serialized implicitly: this is the only count-sensitive test in
        // the athena-math binary that uses the ring below; use measure()
        // deltas rather than absolute values to stay robust anyway.
        let ring = Ring::new(12289, 64);
        let a = ring.from_i64(&vec![1i64; 64]);
        let (_, counts) = ntt_stats::measure(|| {
            let e = ring.to_eval(&a);
            ring.to_coeff(&e)
        });
        assert_eq!(counts.forward, 1);
        assert_eq!(counts.inverse, 1);
    }

    #[test]
    fn rot_counters_record_and_measure() {
        let ((), counts) = rot_stats::measure(|| {
            rot_stats::record_eager();
            rot_stats::record_hoisted();
            rot_stats::record_hoisted();
            rot_stats::record_decompose();
        });
        assert_eq!(counts.eager, 1);
        assert_eq!(counts.hoisted, 2);
        assert_eq!(counts.decompose, 1);
        assert_eq!(counts.rotations(), 3);
    }

    #[test]
    fn lift_counters_record_and_measure() {
        let ((), counts) = lift_stats::measure(|| {
            lift_stats::record_computed();
            lift_stats::record_reused();
            lift_stats::record_reused();
        });
        assert_eq!(counts.computed, 1);
        assert_eq!(counts.reused, 2);
    }
}
