//! Lightweight operation counters for the NTT hot path.
//!
//! The domain-aware refactor keeps ciphertexts and key material in Eval
//! (NTT) form end-to-end; these counters let tests and benches *prove* the
//! round-trips are gone rather than merely moved. Counting is compiled in
//! under the default-on `op-stats` feature and costs one relaxed atomic
//! increment per transform; with the feature disabled the API still exists
//! but every call is a no-op and every read returns zero.
//!
//! Counters are process-global. Tests that assert exact counts must not run
//! concurrently with other NTT work — keep them in a dedicated integration
//! test binary and serialize them behind a lock (see
//! `crates/fhe/tests/domain_invariants.rs`).
//!
//! **Measurement discipline:** every module exposes `snapshot()` and
//! `measure()` and *no reset*. A global reset racing a parallel region
//! would silently corrupt any measurement running elsewhere in the
//! process (the `report_*` binaries measure inside parallel sweeps), so
//! the snapshot-and-diff bracket is the only sanctioned pattern — the
//! counters are monotone for the life of the process.

/// Forward/inverse negacyclic NTT counters.
pub mod ntt_stats {
    #[cfg(feature = "op-stats")]
    mod imp {
        use std::sync::atomic::{AtomicU64, Ordering};

        static FORWARD: AtomicU64 = AtomicU64::new(0);
        static INVERSE: AtomicU64 = AtomicU64::new(0);

        #[inline]
        pub fn record_forward() {
            FORWARD.fetch_add(1, Ordering::Relaxed);
        }

        #[inline]
        pub fn record_inverse() {
            INVERSE.fetch_add(1, Ordering::Relaxed);
        }

        pub fn forward_count() -> u64 {
            FORWARD.load(Ordering::Relaxed)
        }

        pub fn inverse_count() -> u64 {
            INVERSE.load(Ordering::Relaxed)
        }
    }

    #[cfg(not(feature = "op-stats"))]
    mod imp {
        #[inline]
        pub fn record_forward() {}
        #[inline]
        pub fn record_inverse() {}
        pub fn forward_count() -> u64 {
            0
        }
        pub fn inverse_count() -> u64 {
            0
        }
    }

    pub use imp::{forward_count, inverse_count, record_forward, record_inverse};

    /// Snapshot of both counters, for before/after deltas.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct NttCounts {
        /// Forward (Coeff→Eval) transforms since the last reset.
        pub forward: u64,
        /// Inverse (Eval→Coeff) transforms since the last reset.
        pub inverse: u64,
    }

    /// Reads both counters at once.
    pub fn snapshot() -> NttCounts {
        NttCounts {
            forward: forward_count(),
            inverse: inverse_count(),
        }
    }

    /// Runs `f` and returns its result together with the NTT counts it
    /// incurred. Only meaningful when no other thread is transforming.
    pub fn measure<T>(f: impl FnOnce() -> T) -> (T, NttCounts) {
        let before = snapshot();
        let out = f();
        let after = snapshot();
        (
            out,
            NttCounts {
                forward: after.forward - before.forward,
                inverse: after.inverse - before.inverse,
            },
        )
    }
}

/// Rotation / key-switch counters: eager vs hoisted HRots and the digit
/// decompositions feeding them.
///
/// One **eager** rotation pays its own digit decomposition; a **hoisted**
/// rotation permutes digits that were decomposed once up front. `decompose`
/// counts every digit decomposition performed (rotation key switches and
/// relinearizations alike), so `decompose ≪ eager + hoisted` is the proof
/// that a schedule actually shares its source decompositions.
pub mod rot_stats {
    #[cfg(feature = "op-stats")]
    mod imp {
        use std::sync::atomic::{AtomicU64, Ordering};

        static EAGER: AtomicU64 = AtomicU64::new(0);
        static HOISTED: AtomicU64 = AtomicU64::new(0);
        static DECOMPOSE: AtomicU64 = AtomicU64::new(0);

        #[inline]
        pub fn record_eager() {
            EAGER.fetch_add(1, Ordering::Relaxed);
        }

        #[inline]
        pub fn record_hoisted() {
            HOISTED.fetch_add(1, Ordering::Relaxed);
        }

        #[inline]
        pub fn record_decompose() {
            DECOMPOSE.fetch_add(1, Ordering::Relaxed);
        }

        pub fn eager_count() -> u64 {
            EAGER.load(Ordering::Relaxed)
        }

        pub fn hoisted_count() -> u64 {
            HOISTED.load(Ordering::Relaxed)
        }

        pub fn decompose_count() -> u64 {
            DECOMPOSE.load(Ordering::Relaxed)
        }
    }

    #[cfg(not(feature = "op-stats"))]
    mod imp {
        #[inline]
        pub fn record_eager() {}
        #[inline]
        pub fn record_hoisted() {}
        #[inline]
        pub fn record_decompose() {}
        pub fn eager_count() -> u64 {
            0
        }
        pub fn hoisted_count() -> u64 {
            0
        }
        pub fn decompose_count() -> u64 {
            0
        }
    }

    pub use imp::{
        decompose_count, eager_count, hoisted_count, record_decompose, record_eager, record_hoisted,
    };

    /// Snapshot of the rotation counters, for before/after deltas.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RotCounts {
        /// Rotations that paid their own digit decomposition.
        pub eager: u64,
        /// Rotations served from hoisted (cached) digits.
        pub hoisted: u64,
        /// Digit decompositions performed (rotations *and* relins).
        pub decompose: u64,
    }

    impl RotCounts {
        /// Total HRot operations, however they were keyed.
        pub fn rotations(&self) -> u64 {
            self.eager + self.hoisted
        }
    }

    /// Reads all three counters at once.
    pub fn snapshot() -> RotCounts {
        RotCounts {
            eager: eager_count(),
            hoisted: hoisted_count(),
            decompose: decompose_count(),
        }
    }

    /// Runs `f` and returns its result together with the rotation counts it
    /// incurred. Only meaningful when no other thread is rotating.
    pub fn measure<T>(f: impl FnOnce() -> T) -> (T, RotCounts) {
        let before = snapshot();
        let out = f();
        let after = snapshot();
        (
            out,
            RotCounts {
                eager: after.eager - before.eager,
                hoisted: after.hoisted - before.hoisted,
                decompose: after.decompose - before.decompose,
            },
        )
    }
}

/// Tensor-lift counters for the CMult hot path: how many operand lifts into
/// the extended multiplication basis were computed from scratch vs served
/// from a cache (the CMult analogue of rotation hoisting — BSGS polynomial
/// evaluation reuses the same powers across many products).
pub mod lift_stats {
    #[cfg(feature = "op-stats")]
    mod imp {
        use std::sync::atomic::{AtomicU64, Ordering};

        static COMPUTED: AtomicU64 = AtomicU64::new(0);
        static REUSED: AtomicU64 = AtomicU64::new(0);

        #[inline]
        pub fn record_computed() {
            COMPUTED.fetch_add(1, Ordering::Relaxed);
        }

        #[inline]
        pub fn record_reused() {
            REUSED.fetch_add(1, Ordering::Relaxed);
        }

        pub fn computed_count() -> u64 {
            COMPUTED.load(Ordering::Relaxed)
        }

        pub fn reused_count() -> u64 {
            REUSED.load(Ordering::Relaxed)
        }
    }

    #[cfg(not(feature = "op-stats"))]
    mod imp {
        #[inline]
        pub fn record_computed() {}
        #[inline]
        pub fn record_reused() {}
        pub fn computed_count() -> u64 {
            0
        }
        pub fn reused_count() -> u64 {
            0
        }
    }

    pub use imp::{computed_count, record_computed, record_reused, reused_count};

    /// Snapshot of both lift counters.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct LiftCounts {
        /// Tensor lifts computed from scratch.
        pub computed: u64,
        /// Tensor lifts served from an operand cache.
        pub reused: u64,
    }

    /// Reads both counters at once.
    pub fn snapshot() -> LiftCounts {
        LiftCounts {
            computed: computed_count(),
            reused: reused_count(),
        }
    }

    /// Runs `f` and returns its result together with the lift counts it
    /// incurred. Only meaningful when no other thread is lifting.
    pub fn measure<T>(f: impl FnOnce() -> T) -> (T, LiftCounts) {
        let before = snapshot();
        let out = f();
        let after = snapshot();
        (
            out,
            LiftCounts {
                computed: after.computed - before.computed,
                reused: after.reused - before.reused,
            },
        )
    }
}

/// High-level homomorphic-operation counters: the measured counterpart of
/// the analytic `OpCounts` the execution-plan IR carries per step.
///
/// Each counter is incremented exactly once per logical operation at the
/// single choke point every code path funnels through (e.g. `hrot` in the
/// shared decompose-then-permute key switch, so eager and hoisted rotations
/// count alike). `sample_extract` counts extracted coefficients and
/// `mod_switch` whole-ciphertext RLWE rescales; LWE-level arithmetic
/// (additions, per-LWE modulus drops, dimension-switch MACs) is below this
/// abstraction and deliberately uncounted, matching the analytic model.
pub mod op_stats {
    #[cfg(feature = "op-stats")]
    mod imp {
        use std::sync::atomic::{AtomicU64, Ordering};

        static PMULT: AtomicU64 = AtomicU64::new(0);
        static CMULT: AtomicU64 = AtomicU64::new(0);
        static SMULT: AtomicU64 = AtomicU64::new(0);
        static HADD: AtomicU64 = AtomicU64::new(0);
        static HROT: AtomicU64 = AtomicU64::new(0);
        static SAMPLE_EXTRACT: AtomicU64 = AtomicU64::new(0);
        static MOD_SWITCH: AtomicU64 = AtomicU64::new(0);

        #[inline]
        pub fn record_pmult() {
            PMULT.fetch_add(1, Ordering::Relaxed);
        }

        #[inline]
        pub fn record_cmult() {
            CMULT.fetch_add(1, Ordering::Relaxed);
        }

        #[inline]
        pub fn record_smult() {
            SMULT.fetch_add(1, Ordering::Relaxed);
        }

        #[inline]
        pub fn record_hadd() {
            HADD.fetch_add(1, Ordering::Relaxed);
        }

        #[inline]
        pub fn record_hrot() {
            HROT.fetch_add(1, Ordering::Relaxed);
        }

        #[inline]
        pub fn record_sample_extract() {
            SAMPLE_EXTRACT.fetch_add(1, Ordering::Relaxed);
        }

        #[inline]
        pub fn record_mod_switch() {
            MOD_SWITCH.fetch_add(1, Ordering::Relaxed);
        }

        pub fn raw() -> [u64; 7] {
            [
                PMULT.load(Ordering::Relaxed),
                CMULT.load(Ordering::Relaxed),
                SMULT.load(Ordering::Relaxed),
                HADD.load(Ordering::Relaxed),
                HROT.load(Ordering::Relaxed),
                SAMPLE_EXTRACT.load(Ordering::Relaxed),
                MOD_SWITCH.load(Ordering::Relaxed),
            ]
        }
    }

    #[cfg(not(feature = "op-stats"))]
    mod imp {
        #[inline]
        pub fn record_pmult() {}
        #[inline]
        pub fn record_cmult() {}
        #[inline]
        pub fn record_smult() {}
        #[inline]
        pub fn record_hadd() {}
        #[inline]
        pub fn record_hrot() {}
        #[inline]
        pub fn record_sample_extract() {}
        #[inline]
        pub fn record_mod_switch() {}
        pub fn raw() -> [u64; 7] {
            [0; 7]
        }
    }

    pub use imp::{
        record_cmult, record_hadd, record_hrot, record_mod_switch, record_pmult,
        record_sample_extract, record_smult,
    };

    /// Snapshot of every homomorphic-operation counter.
    #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
    pub struct HomOpCounts {
        /// Plaintext-ciphertext multiplications.
        pub pmult: u64,
        /// Ciphertext-ciphertext multiplications (tensor products).
        pub cmult: u64,
        /// Scalar multiplications.
        pub smult: u64,
        /// Homomorphic additions (ciphertext-ciphertext and plaintext).
        pub hadd: u64,
        /// Rotations / automorphisms with a key switch.
        pub hrot: u64,
        /// Coefficients run through sample extraction.
        pub sample_extract: u64,
        /// Whole-ciphertext RLWE modulus switches.
        pub mod_switch: u64,
    }

    impl HomOpCounts {
        /// Component-wise sum.
        pub fn add(&mut self, o: &HomOpCounts) {
            self.pmult += o.pmult;
            self.cmult += o.cmult;
            self.smult += o.smult;
            self.hadd += o.hadd;
            self.hrot += o.hrot;
            self.sample_extract += o.sample_extract;
            self.mod_switch += o.mod_switch;
        }

        /// Component-wise difference (saturating).
        pub fn sub(&self, o: &HomOpCounts) -> HomOpCounts {
            HomOpCounts {
                pmult: self.pmult.saturating_sub(o.pmult),
                cmult: self.cmult.saturating_sub(o.cmult),
                smult: self.smult.saturating_sub(o.smult),
                hadd: self.hadd.saturating_sub(o.hadd),
                hrot: self.hrot.saturating_sub(o.hrot),
                sample_extract: self.sample_extract.saturating_sub(o.sample_extract),
                mod_switch: self.mod_switch.saturating_sub(o.mod_switch),
            }
        }
    }

    /// Reads every counter at once.
    pub fn snapshot() -> HomOpCounts {
        let [pmult, cmult, smult, hadd, hrot, sample_extract, mod_switch] = imp::raw();
        HomOpCounts {
            pmult,
            cmult,
            smult,
            hadd,
            hrot,
            sample_extract,
            mod_switch,
        }
    }

    /// Runs `f` and returns its result together with the operation counts
    /// it incurred. Only meaningful when no other thread is evaluating
    /// (worker threads spawned *by* `f` are counted — the counters are
    /// process-global).
    ///
    /// Thread-count invariance: `par::parallel_*` workers are joined
    /// before their entry point returns, so every bump a step's workers
    /// make lands inside that step's bracket regardless of
    /// `ATHENA_THREADS` — per-step deltas are identical at 1 and N
    /// workers (pinned by `per_step_counts_are_thread_count_invariant` in
    /// `athena-core`). Nested `measure()` calls double-attribute: the
    /// inner bracket's counts also appear in the outer delta, so callers
    /// composing brackets must subtract inner deltas themselves.
    pub fn measure<T>(f: impl FnOnce() -> T) -> (T, HomOpCounts) {
        let before = snapshot();
        let out = f();
        (out, snapshot().sub(&before))
    }
}

/// Limb-buffer allocation counters for the scratch arena
/// (`crate::arena`): checkouts, fresh heap allocations (pool misses),
/// recycles, and cap-driven frees.
///
/// Compiled in under the default-on `alloc-stats` feature (the pooling
/// itself is always on — only the telemetry is gated). `takes` and
/// `recycled` are schedule-independent and therefore thread-count
/// invariant per plan step; the `fresh`/pooled split of a *cold* run
/// depends on thread interleaving, so only the steady-state invariant
/// `fresh == 0` (warm pool) is pinned across thread counts.
pub mod alloc_stats {
    #[cfg(feature = "alloc-stats")]
    mod imp {
        use std::sync::atomic::{AtomicU64, Ordering};

        static TAKES: AtomicU64 = AtomicU64::new(0);
        static FRESH: AtomicU64 = AtomicU64::new(0);
        static RECYCLED: AtomicU64 = AtomicU64::new(0);
        static FREED: AtomicU64 = AtomicU64::new(0);

        #[inline]
        pub fn record_take() {
            TAKES.fetch_add(1, Ordering::Relaxed);
        }

        #[inline]
        pub fn record_fresh() {
            FRESH.fetch_add(1, Ordering::Relaxed);
        }

        #[inline]
        pub fn record_recycle() {
            RECYCLED.fetch_add(1, Ordering::Relaxed);
        }

        #[inline]
        pub fn record_freed() {
            FREED.fetch_add(1, Ordering::Relaxed);
        }

        pub fn raw() -> [u64; 4] {
            [
                TAKES.load(Ordering::Relaxed),
                FRESH.load(Ordering::Relaxed),
                RECYCLED.load(Ordering::Relaxed),
                FREED.load(Ordering::Relaxed),
            ]
        }
    }

    #[cfg(not(feature = "alloc-stats"))]
    mod imp {
        #[inline]
        pub fn record_take() {}
        #[inline]
        pub fn record_fresh() {}
        #[inline]
        pub fn record_recycle() {}
        #[inline]
        pub fn record_freed() {}
        pub fn raw() -> [u64; 4] {
            [0; 4]
        }
    }

    pub use imp::{record_freed, record_fresh, record_recycle, record_take};

    /// Snapshot of every arena allocation counter.
    #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
    pub struct AllocCounts {
        /// Limb-buffer checkouts (pool hits *and* misses).
        pub takes: u64,
        /// Checkouts that missed the pool and hit the heap allocator.
        pub fresh: u64,
        /// Buffers returned to the pool on drop.
        pub recycled: u64,
        /// Buffers freed instead of pooled (retention cap reached).
        pub freed: u64,
    }

    impl AllocCounts {
        /// Component-wise sum.
        pub fn add(&mut self, o: &AllocCounts) {
            self.takes += o.takes;
            self.fresh += o.fresh;
            self.recycled += o.recycled;
            self.freed += o.freed;
        }

        /// Component-wise difference (saturating).
        pub fn sub(&self, o: &AllocCounts) -> AllocCounts {
            AllocCounts {
                takes: self.takes.saturating_sub(o.takes),
                fresh: self.fresh.saturating_sub(o.fresh),
                recycled: self.recycled.saturating_sub(o.recycled),
                freed: self.freed.saturating_sub(o.freed),
            }
        }

        /// Checkouts served from the pool.
        pub fn pooled(&self) -> u64 {
            self.takes - self.fresh
        }
    }

    /// Reads every counter at once.
    pub fn snapshot() -> AllocCounts {
        let [takes, fresh, recycled, freed] = imp::raw();
        AllocCounts {
            takes,
            fresh,
            recycled,
            freed,
        }
    }

    /// Runs `f` and returns its result together with the allocation counts
    /// it incurred. Same bracket semantics as [`super::op_stats::measure`]: the
    /// counters are process-global, workers spawned *by* `f` are joined
    /// before it returns (so their bumps land inside the bracket), and
    /// nested brackets double-attribute.
    pub fn measure<T>(f: impl FnOnce() -> T) -> (T, AllocCounts) {
        let before = snapshot();
        let out = f();
        (out, snapshot().sub(&before))
    }
}

#[cfg(all(test, feature = "alloc-stats"))]
mod alloc_tests {
    use super::alloc_stats;
    use crate::arena::LimbVec;

    #[test]
    fn alloc_counters_record_and_measure() {
        // Counters are process-global and other tests allocate
        // concurrently, so assert lower bounds only.
        let ((), counts) = alloc_stats::measure(|| {
            drop(LimbVec::take_raw(12353));
        });
        assert!(counts.takes >= 1);
        assert!(counts.recycled + counts.freed >= 1);
        let mut sum = counts;
        sum.add(&counts);
        assert_eq!(sum.takes, 2 * counts.takes);
        assert_eq!(sum.sub(&counts), counts);
        assert_eq!(counts.pooled(), counts.takes - counts.fresh);
    }
}

#[cfg(all(test, feature = "op-stats"))]
mod tests {
    use super::{lift_stats, ntt_stats, op_stats, rot_stats};
    use crate::poly::Ring;

    #[test]
    fn counts_forward_and_inverse_transforms() {
        // Serialized implicitly: this is the only count-sensitive test in
        // the athena-math binary that uses the ring below; use measure()
        // deltas rather than absolute values to stay robust anyway.
        let ring = Ring::new(12289, 64);
        let a = ring.from_i64(&vec![1i64; 64]);
        let (_, counts) = ntt_stats::measure(|| {
            let e = ring.to_eval(&a);
            ring.to_coeff(&e)
        });
        assert_eq!(counts.forward, 1);
        assert_eq!(counts.inverse, 1);
    }

    #[test]
    fn rot_counters_record_and_measure() {
        let ((), counts) = rot_stats::measure(|| {
            rot_stats::record_eager();
            rot_stats::record_hoisted();
            rot_stats::record_hoisted();
            rot_stats::record_decompose();
        });
        assert_eq!(counts.eager, 1);
        assert_eq!(counts.hoisted, 2);
        assert_eq!(counts.decompose, 1);
        assert_eq!(counts.rotations(), 3);
    }

    #[test]
    fn op_counters_record_and_measure() {
        let ((), counts) = op_stats::measure(|| {
            op_stats::record_pmult();
            op_stats::record_pmult();
            op_stats::record_cmult();
            op_stats::record_smult();
            op_stats::record_hadd();
            op_stats::record_hrot();
            op_stats::record_sample_extract();
            op_stats::record_mod_switch();
        });
        assert_eq!(counts.pmult, 2);
        assert_eq!(counts.cmult, 1);
        assert_eq!(counts.smult, 1);
        assert_eq!(counts.hadd, 1);
        assert_eq!(counts.hrot, 1);
        assert_eq!(counts.sample_extract, 1);
        assert_eq!(counts.mod_switch, 1);
        let mut sum = counts;
        sum.add(&counts);
        assert_eq!(sum.pmult, 4);
        assert_eq!(sum.sub(&counts), counts);
    }

    #[test]
    fn lift_counters_record_and_measure() {
        let ((), counts) = lift_stats::measure(|| {
            lift_stats::record_computed();
            lift_stats::record_reused();
            lift_stats::record_reused();
        });
        assert_eq!(counts.computed, 1);
        assert_eq!(counts.reused, 2);
    }
}
