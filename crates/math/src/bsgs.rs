//! Baby-step/giant-step decompositions used throughout Athena: polynomial
//! evaluation (Alg. 2 of the paper, after Paterson–Stockmeyer) and
//! matrix-vector rotation schedules.

/// A baby-step/giant-step split of a problem of size `total`:
/// `total <= baby * giant`, with `baby = ceil(sqrt(total))` by default.
///
/// # Examples
///
/// ```
/// use athena_math::bsgs::BsgsSplit;
/// let s = BsgsSplit::balanced(65537);
/// assert!(s.baby * s.giant >= 65537);
/// assert!(s.baby <= 257 && s.giant <= 257);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BsgsSplit {
    /// Baby-step count (inner loop; cheap ops).
    pub baby: usize,
    /// Giant-step count (outer loop; expensive ops).
    pub giant: usize,
}

/// Exact ceiling square root: the smallest `r` with `r·r >= total`.
///
/// `f64::sqrt` only carries 53 mantissa bits, so for large `total` the
/// rounded seed can land one off the true root; the fix-up loops below move
/// it onto the exact answer using full-width `u128` products.
pub fn ceil_sqrt(total: usize) -> usize {
    let t = total as u128;
    let mut r = (total as f64).sqrt().ceil() as u128;
    while r > 0 && (r - 1) * (r - 1) >= t {
        r -= 1;
    }
    while r * r < t {
        r += 1;
    }
    r as usize
}

impl BsgsSplit {
    /// Balanced split: `baby = ceil(sqrt(total))`, `giant = ceil(total/baby)`.
    ///
    /// # Panics
    ///
    /// Panics if `total == 0`.
    pub fn balanced(total: usize) -> Self {
        assert!(total > 0, "cannot split zero work");
        let baby = ceil_sqrt(total);
        let giant = total.div_ceil(baby);
        Self { baby, giant }
    }

    /// Split with an explicit baby-step count.
    ///
    /// # Panics
    ///
    /// Panics if `baby == 0`.
    pub fn with_baby(total: usize, baby: usize) -> Self {
        assert!(baby > 0);
        Self {
            baby,
            giant: total.div_ceil(baby),
        }
    }

    /// Total capacity `baby * giant`.
    pub fn capacity(&self) -> usize {
        self.baby * self.giant
    }
}

/// Evaluates the **non-constant part** `Σ_{i>=1} c_i x^i` (degree <
/// `coeffs.len()`) over any "ciphertext-like" algebra supplied via closures,
/// using the BSGS schedule of Alg. 2; the constant `c_0` is the caller's
/// responsibility (FBS adds `LUT(0)` in plaintext).
///
/// Baby/giant structure:
/// baby powers `x^1..x^baby` are combined with scalar multiplications, giant
/// powers `x^(baby·k)` with full multiplications.
///
/// `mul` is the expensive ciphertext×ciphertext product; `smul` multiplies by
/// a scalar coefficient; `add` sums. Returns `None` when all coefficients are
/// zero.
///
/// The closure design lets the exact same schedule drive (a) real BFV
/// ciphertexts, (b) plain modular integers in tests, and (c) the
/// op-counting cost model.
pub fn bsgs_polynomial_eval<T: Clone>(
    coeffs: &[u64],
    x: &T,
    mul: &mut impl FnMut(&T, &T) -> T,
    smul: &mut impl FnMut(&T, u64) -> T,
    add: &mut impl FnMut(&T, &T) -> T,
) -> Option<T> {
    // Highest non-constant coefficient actually present.
    let max_idx = (1..coeffs.len()).rev().find(|&i| coeffs[i] != 0)?;
    let split = BsgsSplit::balanced((max_idx + 1).max(2));
    let bs = split.baby;
    // Baby powers x^1 .. x^bs, built by the half-split tree so that the
    // multiplicative depth is log₂(bs) rather than bs. powers[i] = x^{i+1}.
    let baby_needed = bs.min(max_idx.max(1));
    let mut powers: Vec<T> = Vec::with_capacity(baby_needed);
    powers.push(x.clone());
    for i in 1..baby_needed {
        // x^{i+1} = x^{ceil((i+1)/2)} · x^{floor((i+1)/2)}
        let hi = (i + 1).div_ceil(2);
        let lo = (i + 1) - hi;
        let p = mul(&powers[hi - 1], &powers[lo - 1]);
        powers.push(p);
    }
    // Giant powers x^{bs·g}, also by half-split tree over g, keeping total
    // depth at log₂(bs) + log₂(gs) ≈ log₂(t) — the depth Table 4 charges
    // FBS for. giants[g-1] = x^{bs·g}.
    let giant_blocks = max_idx / bs; // blocks beyond block 0
    let mut giants: Vec<T> = Vec::with_capacity(giant_blocks);
    if giant_blocks >= 1 {
        giants.push(powers[bs - 1].clone());
        for g in 2..=giant_blocks {
            let hi = g.div_ceil(2);
            let lo = g - hi;
            let p = mul(&giants[hi - 1], &giants[lo - 1]);
            giants.push(p);
        }
    }
    let mut result: Option<T> = None;
    for g in 0..split.giant {
        let start = g * bs;
        if start > max_idx {
            break;
        }
        let end = (start + bs).min(max_idx + 1);
        // inner = Σ_{k=1..bs-1} c_{start+k} · x^k  (local-degree >= 1 part)
        let mut inner: Option<T> = None;
        for (k, &c) in coeffs[start..end].iter().enumerate().skip(1) {
            if c == 0 {
                continue;
            }
            let t = smul(&powers[k - 1], c);
            inner = Some(match inner {
                None => t,
                Some(acc) => add(&acc, &t),
            });
        }
        // Block contribution: inner · x^{start}, plus the boundary term
        // c_{start} · x^{start}. For g == 0 the boundary term is the
        // constant c_0, which FBS adds in plaintext, so it is skipped here.
        let mut block: Option<T> = match inner {
            Some(inn) if g == 0 => Some(inn), // x^{start} = 1
            Some(inn) => Some(mul(&inn, &giants[g - 1])),
            None => None,
        };
        if coeffs[start] != 0 && start != 0 {
            let t = smul(&giants[g - 1], coeffs[start]);
            block = Some(match block {
                None => t,
                Some(acc) => add(&acc, &t),
            });
        }
        if let Some(bc) = block {
            result = Some(match result {
                None => bc,
                Some(acc) => add(&acc, &bc),
            });
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modops::Modulus;

    fn eval_plain(coeffs: &[u64], x: u64, q: &Modulus) -> u64 {
        let mut acc = 0;
        for &c in coeffs.iter().rev() {
            acc = q.mul_add(acc, x, c % q.value());
        }
        acc
    }

    #[test]
    fn split_covers_total() {
        for total in [1usize, 2, 3, 5, 17, 100, 65537] {
            let s = BsgsSplit::balanced(total);
            assert!(s.capacity() >= total, "total={total}");
        }
    }

    #[test]
    fn ceil_sqrt_exact_on_perfect_squares() {
        for r in [1usize, 2, 3, 16, 257, 65536, 1 << 26, (1 << 31) + 12345] {
            assert_eq!(ceil_sqrt(r * r), r, "r={r}");
            assert_eq!(ceil_sqrt(r * r + 1), r + 1, "r²+1, r={r}");
            if r > 1 {
                assert_eq!(ceil_sqrt(r * r - 1), r, "r²-1, r={r}");
            }
        }
    }

    #[test]
    fn ceil_sqrt_edge_cases() {
        assert_eq!(ceil_sqrt(0), 0);
        assert_eq!(ceil_sqrt(1), 1);
        assert_eq!(ceil_sqrt(2), 2);
        assert_eq!(ceil_sqrt(3), 2);
        assert_eq!(ceil_sqrt(4), 2);
    }

    #[test]
    fn ceil_sqrt_usize_large_totals() {
        // Near the top of the usize range, an f64 round-trip is lossy:
        // (2⁶⁴−1) as f64 rounds *up* to 2⁶⁴ and sqrt().ceil() would still
        // seed at 2³², which happens to be correct here — but values like
        // (2³²−1)² + 2³² sit exactly where the 53-bit mantissa mis-rounds.
        assert_eq!(ceil_sqrt(usize::MAX), 1 << 32);
        let r = (1u64 << 32) - 1;
        let r2 = (r * r) as usize;
        assert_eq!(ceil_sqrt(r2), r as usize);
        assert_eq!(ceil_sqrt(r2 + 1), r as usize + 1);
        // Balanced splits at large totals keep the covering invariant
        // (checked in u128 — capacity() itself would overflow usize).
        for total in [r2, r2 + 1, usize::MAX] {
            let s = BsgsSplit::balanced(total);
            assert!(
                (s.baby as u128) * (s.giant as u128) >= total as u128,
                "total={total}"
            );
        }
    }

    #[test]
    fn bsgs_eval_matches_horner_many() {
        let q = Modulus::new(65537);
        for (deg, x, seed) in [
            (1usize, 5u64, 1u64),
            (4, 7, 2),
            (16, 123, 3),
            (17, 9999, 4),
            (63, 3, 5),
            (64, 65536, 6),
        ] {
            let coeffs: Vec<u64> = (0..=deg as u64)
                .map(|i| (i * seed * 2654435761 + 17) % 65537)
                .collect();
            let mut muls = 0usize;
            let got = bsgs_polynomial_eval(
                &coeffs,
                &x,
                &mut |a: &u64, b: &u64| {
                    muls += 1;
                    q.mul(*a, *b)
                },
                &mut |a: &u64, c: u64| q.mul(*a, c % 65537),
                &mut |a: &u64, b: &u64| q.add(*a, *b),
            );
            let want_nonconst = {
                let mut c = coeffs.clone();
                c[0] = 0;
                eval_plain(&c, x, &q)
            };
            assert_eq!(
                got.unwrap_or(0),
                want_nonconst,
                "deg={deg} (non-constant part)"
            );
            // CMult count should be O(sqrt(deg)) rather than O(deg).
            if deg >= 16 {
                assert!(
                    muls <= 4 * (deg as f64).sqrt() as usize + 4,
                    "deg={deg}, muls={muls}"
                );
            }
        }
    }

    #[test]
    fn bsgs_eval_constant_only_returns_none() {
        let q = Modulus::new(97);
        let got = bsgs_polynomial_eval(
            &[5, 0, 0, 0],
            &3u64,
            &mut |a: &u64, b: &u64| q.mul(*a, *b),
            &mut |a: &u64, c: u64| q.mul(*a, c),
            &mut |a: &u64, b: &u64| q.add(*a, *b),
        );
        // Constant term is the caller's responsibility (it is added in
        // plaintext in FBS); all-zero non-constant part yields None.
        assert!(got.is_none());
    }
}
