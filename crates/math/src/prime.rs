//! Primality testing and NTT-friendly prime generation.
//!
//! RNS limb moduli must satisfy `q ≡ 1 (mod 2N)` so that the negacyclic NTT
//! over `Z_q[X]/(X^N + 1)` exists. [`ntt_primes`] produces such primes just
//! below a requested bit size, and [`primitive_root`] finds generators used
//! to derive roots of unity.

use crate::modops::Modulus;

/// Deterministic Miller–Rabin for `u64` (the first 12 prime bases are a
/// proven-deterministic witness set below 3.3·10^24).
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for &p in &[2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    let m = Modulus::new(n);
    let d = n - 1;
    let s = d.trailing_zeros();
    let d = d >> s;
    'witness: for &a in &[2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = m.pow(a, d);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 1..s {
            x = m.mul(x, x);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Returns `count` distinct primes `q ≡ 1 (mod 2n)` with at most `bits` bits,
/// largest first.
///
/// # Panics
///
/// Panics if `bits > 62`, if `n` is not a power of two, or if not enough
/// primes exist below `2^bits` (practically impossible for the sizes used
/// here).
pub fn ntt_primes(bits: u32, n: usize, count: usize) -> Vec<u64> {
    assert!((4..=62).contains(&bits), "prime size out of range");
    assert!(n.is_power_of_two(), "ring degree must be a power of two");
    let step = 2 * n as u64;
    let mut candidate = ((1u64 << bits) - 1) / step * step + 1;
    let mut out = Vec::with_capacity(count);
    while out.len() < count {
        assert!(
            candidate > step,
            "exhausted candidates for {count} NTT primes of {bits} bits (n={n})"
        );
        if is_prime(candidate) {
            out.push(candidate);
        }
        candidate -= step;
    }
    out
}

/// Factorizes a `u64` by trial division + Pollard-free simple sieve (the
/// group orders factored here are tiny: `q - 1` for moduli up to 62 bits,
/// dominated by small factors and at most one large prime cofactor found by
/// trial division up to 2^21; falls back to treating the cofactor as prime
/// if it is).
fn factorize(mut n: u64) -> Vec<u64> {
    let mut fs = Vec::new();
    let mut d = 2u64;
    while d * d <= n && d < (1 << 21) {
        if n.is_multiple_of(d) {
            fs.push(d);
            while n.is_multiple_of(d) {
                n /= d;
            }
        }
        d += 1;
    }
    if n > 1 {
        if is_prime(n) {
            fs.push(n);
        } else {
            // Rare for our prime-1 orders; finish with slow trial division.
            while d * d <= n {
                if n.is_multiple_of(d) {
                    fs.push(d);
                    while n.is_multiple_of(d) {
                        n /= d;
                    }
                }
                d += 1;
            }
            if n > 1 {
                fs.push(n);
            }
        }
    }
    fs
}

/// Finds a generator of the multiplicative group `Z_q^*` for prime `q`.
///
/// # Panics
///
/// Panics if `q` is not prime.
pub fn primitive_root(q: u64) -> u64 {
    assert!(is_prime(q), "primitive_root requires a prime modulus");
    let m = Modulus::new(q);
    let order = q - 1;
    let factors = factorize(order);
    'cand: for g in 2..q {
        for &f in &factors {
            if m.pow(g, order / f) == 1 {
                continue 'cand;
            }
        }
        return g;
    }
    unreachable!("every prime has a primitive root")
}

/// Returns a primitive `order`-th root of unity mod prime `q`.
///
/// # Panics
///
/// Panics if `order` does not divide `q - 1`.
pub fn root_of_unity(q: u64, order: u64) -> u64 {
    assert_eq!((q - 1) % order, 0, "order must divide q-1");
    let m = Modulus::new(q);
    let g = primitive_root(q);
    let w = m.pow(g, (q - 1) / order);
    debug_assert_eq!(m.pow(w, order), 1);
    debug_assert_ne!(m.pow(w, order / 2), 1);
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_primes() {
        let primes: Vec<u64> = (0..100).filter(|&n| is_prime(n)).collect();
        assert_eq!(
            primes,
            vec![
                2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79,
                83, 89, 97
            ]
        );
    }

    #[test]
    fn known_primes() {
        assert!(is_prime(65537));
        assert!(is_prime(12289)); // classic NTT prime
        assert!(!is_prime(65536));
        assert!(is_prime((1 << 61) - 1)); // Mersenne prime M61
    }

    #[test]
    fn ntt_primes_congruence() {
        let ps = ntt_primes(50, 1 << 12, 4);
        assert_eq!(ps.len(), 4);
        for &p in &ps {
            assert!(is_prime(p));
            assert_eq!(p % (2 << 12), 1);
            assert!(p < (1 << 50));
        }
        // Distinct and descending.
        for w in ps.windows(2) {
            assert!(w[0] > w[1]);
        }
    }

    #[test]
    fn primitive_root_has_full_order() {
        for &q in &[17u64, 257, 65537, 12289] {
            let g = primitive_root(q);
            let m = Modulus::new(q);
            assert_eq!(m.pow(g, q - 1), 1);
            // No proper divisor order.
            for &f in &factorize(q - 1) {
                assert_ne!(m.pow(g, (q - 1) / f), 1);
            }
        }
    }

    #[test]
    fn roots_of_unity() {
        let q = 65537;
        let m = Modulus::new(q);
        let w = root_of_unity(q, 65536);
        assert_eq!(m.pow(w, 65536), 1);
        assert_ne!(m.pow(w, 32768), 1);
        let w2 = root_of_unity(q, 2);
        assert_eq!(w2, q - 1);
    }
}
