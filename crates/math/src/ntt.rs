//! Number-theoretic transforms: negacyclic (for `Z_q[X]/(X^N+1)`) and plain
//! cyclic power-of-two DFTs (used by the LUT→polynomial interpolation, which
//! is a size-`t−1` Fermat-number transform when `t = 65537`).
//!
//! The negacyclic transform follows the standard Cooley–Tukey /
//! Gentleman–Sande pair with merged `ψ` twisting and Shoup multiplication,
//! as in Longa–Naehrig and Microsoft SEAL. The forward transform maps the
//! coefficient vector of `a(X)` to the evaluations `a(ψ^{2·brv(j)+1})` stored
//! at index `j` (bit-reversed evaluation order); the inverse undoes it.

use crate::modops::Modulus;
use crate::prime::root_of_unity;

/// Bit-reverses the low `bits` bits of `x`.
#[inline]
pub fn bit_reverse(x: usize, bits: u32) -> usize {
    x.reverse_bits() >> (usize::BITS - bits)
}

/// Permutes a slice into bit-reversed index order in place.
pub fn bit_reverse_permute<T>(a: &mut [T]) {
    let n = a.len();
    assert!(n.is_power_of_two());
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = bit_reverse(i, bits);
        if i < j {
            a.swap(i, j);
        }
    }
}

/// Precomputed tables for the negacyclic NTT over `Z_q[X]/(X^N+1)`.
///
/// # Examples
///
/// ```
/// use athena_math::ntt::NttTables;
/// let tables = NttTables::new(257, 8); // 257 ≡ 1 (mod 16)
/// let mut a: Vec<u64> = (0..8).collect();
/// let orig = a.clone();
/// tables.forward(&mut a);
/// tables.inverse(&mut a);
/// assert_eq!(a, orig);
/// ```
#[derive(Debug, Clone)]
pub struct NttTables {
    modulus: Modulus,
    n: usize,
    /// psi^brv(i), psi a primitive 2N-th root of unity.
    psi_br: Vec<u64>,
    psi_br_shoup: Vec<u64>,
    /// psi^{-brv(i)} tables for the inverse transform.
    ipsi_br: Vec<u64>,
    ipsi_br_shoup: Vec<u64>,
    n_inv: u64,
    n_inv_shoup: u64,
    psi: u64,
}

impl NttTables {
    /// Builds tables for degree `n` (a power of two) over prime `q` with
    /// `q ≡ 1 (mod 2n)`.
    ///
    /// # Panics
    ///
    /// Panics if the congruence does not hold or `n` is not a power of two.
    pub fn new(q: u64, n: usize) -> Self {
        assert!(
            n.is_power_of_two() && n >= 2,
            "degree must be a power of two >= 2"
        );
        assert_eq!((q - 1) % (2 * n as u64), 0, "q must be 1 mod 2n");
        let psi = root_of_unity(q, 2 * n as u64);
        Self::with_psi(q, n, psi)
    }

    /// Builds tables with an explicit primitive `2n`-th root `psi`.
    ///
    /// # Panics
    ///
    /// Panics if `psi` is not a primitive `2n`-th root of unity mod `q`.
    pub fn with_psi(q: u64, n: usize, psi: u64) -> Self {
        let modulus = Modulus::new(q);
        assert_eq!(modulus.pow(psi, 2 * n as u64), 1, "psi^2n must be 1");
        assert_eq!(modulus.pow(psi, n as u64), q - 1, "psi^n must be -1");
        let bits = n.trailing_zeros();
        let ipsi = modulus.inv(psi).expect("psi invertible");
        let mut psi_br = vec![0u64; n];
        let mut ipsi_br = vec![0u64; n];
        let mut p = 1u64;
        let mut ip = 1u64;
        for i in 0..n {
            let j = bit_reverse(i, bits);
            psi_br[j] = p;
            ipsi_br[j] = ip;
            p = modulus.mul(p, psi);
            ip = modulus.mul(ip, ipsi);
        }
        let psi_br_shoup = psi_br.iter().map(|&w| modulus.shoup(w)).collect();
        let ipsi_br_shoup = ipsi_br.iter().map(|&w| modulus.shoup(w)).collect();
        let n_inv = modulus.inv(n as u64).expect("n invertible mod prime");
        Self {
            modulus,
            n,
            psi_br,
            psi_br_shoup,
            ipsi_br,
            ipsi_br_shoup,
            n_inv,
            n_inv_shoup: modulus.shoup(n_inv),
            psi,
        }
    }

    /// The ring degree.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The coefficient modulus.
    pub fn modulus(&self) -> &Modulus {
        &self.modulus
    }

    /// The primitive 2N-th root of unity used by these tables.
    pub fn psi(&self) -> u64 {
        self.psi
    }

    /// In-place forward negacyclic NTT.
    ///
    /// After the call, index `j` holds `a(ψ^{2·brv(j)+1})`.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n`.
    pub fn forward(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n);
        crate::stats::ntt_stats::record_forward();
        let q = &self.modulus;
        let mut t = self.n;
        let mut m = 1;
        while m < self.n {
            t /= 2;
            for i in 0..m {
                let s = self.psi_br[m + i];
                let s_sh = self.psi_br_shoup[m + i];
                let j1 = 2 * i * t;
                for j in j1..j1 + t {
                    let u = a[j];
                    let v = q.mul_shoup(a[j + t], s, s_sh);
                    a[j] = q.add(u, v);
                    a[j + t] = q.sub(u, v);
                }
            }
            m *= 2;
        }
    }

    /// In-place inverse negacyclic NTT (consumes the layout produced by
    /// [`NttTables::forward`]).
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n`.
    pub fn inverse(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n);
        crate::stats::ntt_stats::record_inverse();
        let q = &self.modulus;
        let mut t = 1;
        let mut m = self.n;
        while m > 1 {
            let h = m / 2;
            let mut j1 = 0;
            for i in 0..h {
                let s = self.ipsi_br[h + i];
                let s_sh = self.ipsi_br_shoup[h + i];
                for j in j1..j1 + t {
                    let u = a[j];
                    let v = a[j + t];
                    a[j] = q.add(u, v);
                    a[j + t] = q.mul_shoup(q.sub(u, v), s, s_sh);
                }
                j1 += 2 * t;
            }
            t *= 2;
            m = h;
        }
        for x in a.iter_mut() {
            *x = q.mul_shoup(*x, self.n_inv, self.n_inv_shoup);
        }
    }

    /// Exponent `e` such that forward-NTT output index `j` is the evaluation
    /// of the polynomial at `ψ^e`.
    pub fn eval_exponent(&self, j: usize) -> u64 {
        let bits = self.n.trailing_zeros();
        (2 * bit_reverse(j, bits) as u64 + 1) % (2 * self.n as u64)
    }
}

/// Plain cyclic power-of-two NTT over `Z_q` (no negacyclic twist): computes
/// `X[k] = Σ_j x[j]·ω^{jk}` in natural order.
///
/// # Examples
///
/// ```
/// use athena_math::ntt::CyclicNtt;
/// let t = CyclicNtt::new(17, 4); // 17 ≡ 1 (mod 4)
/// let x = vec![1, 2, 3, 4];
/// let y = t.forward(&x);
/// assert_eq!(t.inverse(&y), x);
/// ```
#[derive(Debug, Clone)]
pub struct CyclicNtt {
    modulus: Modulus,
    len: usize,
    omega: u64,
    omega_inv: u64,
    len_inv: u64,
}

impl CyclicNtt {
    /// Builds a transform of power-of-two length `len` over prime `q` with
    /// `q ≡ 1 (mod len)`.
    ///
    /// # Panics
    ///
    /// Panics if the congruence fails or `len` is not a power of two.
    pub fn new(q: u64, len: usize) -> Self {
        assert!(len.is_power_of_two(), "length must be a power of two");
        let omega = root_of_unity(q, len as u64);
        Self::with_omega(q, len, omega)
    }

    /// Builds a transform with an explicit primitive `len`-th root `omega`.
    ///
    /// # Panics
    ///
    /// Panics if `omega` is not a primitive `len`-th root of unity.
    pub fn with_omega(q: u64, len: usize, omega: u64) -> Self {
        let modulus = Modulus::new(q);
        assert_eq!(modulus.pow(omega, len as u64), 1);
        if len > 1 {
            assert_ne!(modulus.pow(omega, len as u64 / 2), 1, "omega not primitive");
        }
        Self {
            modulus,
            len,
            omega,
            omega_inv: modulus.inv(omega).expect("omega invertible"),
            len_inv: modulus.inv(len as u64).expect("len invertible"),
        }
    }

    /// The transform length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the transform is length zero (it never is; present for
    /// `len`/`is_empty` convention).
    pub fn is_empty(&self) -> bool {
        false
    }

    fn transform(&self, x: &[u64], root: u64) -> Vec<u64> {
        assert_eq!(x.len(), self.len);
        let q = &self.modulus;
        let mut a: Vec<u64> = x.to_vec();
        bit_reverse_permute(&mut a);
        let mut width = 2;
        while width <= self.len {
            let w_step = q.pow(root, (self.len / width) as u64);
            for start in (0..self.len).step_by(width) {
                let mut w = 1u64;
                for k in 0..width / 2 {
                    let u = a[start + k];
                    let v = q.mul(a[start + k + width / 2], w);
                    a[start + k] = q.add(u, v);
                    a[start + k + width / 2] = q.sub(u, v);
                    w = q.mul(w, w_step);
                }
            }
            width *= 2;
        }
        a
    }

    /// Forward transform, natural-order input and output.
    pub fn forward(&self, x: &[u64]) -> Vec<u64> {
        self.transform(x, self.omega)
    }

    /// Inverse transform, natural-order input and output.
    pub fn inverse(&self, x: &[u64]) -> Vec<u64> {
        let mut a = self.transform(x, self.omega_inv);
        for v in &mut a {
            *v = self.modulus.mul(*v, self.len_inv);
        }
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modops::Modulus;

    fn naive_negacyclic_mul(a: &[u64], b: &[u64], q: &Modulus) -> Vec<u64> {
        let n = a.len();
        let mut out = vec![0u64; n];
        for i in 0..n {
            for j in 0..n {
                let p = q.mul(a[i], b[j]);
                let k = i + j;
                if k < n {
                    out[k] = q.add(out[k], p);
                } else {
                    out[k - n] = q.sub(out[k - n], p);
                }
            }
        }
        out
    }

    #[test]
    fn forward_is_evaluation_at_documented_points() {
        let n = 8;
        let q = 257; // 257 = 2^8+1, 2n=16 divides 256
        let t = NttTables::new(q, n);
        let m = Modulus::new(q);
        let a: Vec<u64> = vec![3, 1, 4, 1, 5, 9, 2, 6];
        let mut f = a.clone();
        t.forward(&mut f);
        for j in 0..n {
            let e = t.eval_exponent(j);
            let point = m.pow(t.psi(), e);
            let mut val = 0u64;
            for (i, &c) in a.iter().enumerate() {
                val = m.add(val, m.mul(c, m.pow(point, i as u64)));
            }
            assert_eq!(f[j], val, "output index {j}");
        }
    }

    #[test]
    fn roundtrip_various_sizes() {
        for &(q, n) in &[(257u64, 8usize), (12289, 64), (65537, 1024)] {
            let t = NttTables::new(q, n);
            let a: Vec<u64> = (0..n as u64).map(|i| (i * 7 + 3) % q).collect();
            let mut b = a.clone();
            t.forward(&mut b);
            t.inverse(&mut b);
            assert_eq!(a, b, "q={q}, n={n}");
        }
    }

    #[test]
    fn convolution_theorem() {
        let n = 16;
        let q = 12289;
        let t = NttTables::new(q, n);
        let m = Modulus::new(q);
        let a: Vec<u64> = (0..n as u64).map(|i| (i * i + 1) % q).collect();
        let b: Vec<u64> = (0..n as u64).map(|i| (3 * i + 7) % q).collect();
        let expected = naive_negacyclic_mul(&a, &b, &m);
        let mut fa = a.clone();
        let mut fb = b.clone();
        t.forward(&mut fa);
        t.forward(&mut fb);
        let mut fc: Vec<u64> = fa.iter().zip(&fb).map(|(&x, &y)| m.mul(x, y)).collect();
        t.inverse(&mut fc);
        assert_eq!(fc, expected);
    }

    #[test]
    fn cyclic_roundtrip_and_dft_definition() {
        let q = 65537u64;
        let len = 16;
        let t = CyclicNtt::new(q, len);
        let m = Modulus::new(q);
        let x: Vec<u64> = (0..len as u64).map(|i| (i * 31 + 5) % q).collect();
        let y = t.forward(&x);
        // Check the DFT definition directly.
        for k in 0..len {
            let mut s = 0u64;
            for j in 0..len {
                s = m.add(s, m.mul(x[j], m.pow(t.omega, (j * k) as u64)));
            }
            assert_eq!(y[k], s, "k={k}");
        }
        assert_eq!(t.inverse(&y), x);
    }

    #[test]
    fn fermat_number_transform_full_length() {
        // Size 65536 transform over Z_65537: the transform used to
        // interpolate full-size LUT polynomials.
        let t = CyclicNtt::new(65537, 65536);
        let x: Vec<u64> = (0..65536u64).map(|i| (i * 17 + 11) % 65537).collect();
        let y = t.forward(&x);
        assert_eq!(t.inverse(&y), x);
    }
}
