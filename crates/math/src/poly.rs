//! Polynomials over `R_q = Z_q[X]/(X^N + 1)` for a single word-sized prime
//! modulus, together with the [`Ring`] context that owns the NTT tables.
//!
//! A [`Poly`] is tagged with its [`Domain`]: `Coeff` (coefficient vector) or
//! `Eval` (NTT/evaluation form). Multiplication is pointwise in `Eval` form;
//! automorphisms are supported in both forms.

use crate::arena::LimbVec;
use crate::modops::Modulus;
use crate::ntt::NttTables;

/// Representation domain of a polynomial.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Domain {
    /// Coefficient representation.
    Coeff,
    /// NTT / evaluation representation (bit-reversed evaluation order).
    Eval,
}

/// A residue polynomial: `N` values mod a single prime `q`, in one of two
/// domains.
///
/// Backing storage is a pool-checked-out [`LimbVec`]: dropping a `Poly`
/// recycles its buffer into the scratch arena (see [`crate::arena`]), and
/// the [`Ring`] operations below check their result buffers out of the
/// same pool — so steady-state ring arithmetic performs no heap
/// allocation once the pool is warm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Poly {
    values: LimbVec,
    domain: Domain,
}

impl Poly {
    /// Wraps raw values (each must already be reduced mod the ring modulus).
    /// The vector's allocation is adopted into the scratch arena.
    pub fn from_values(values: Vec<u64>, domain: Domain) -> Self {
        Self {
            values: LimbVec::from_vec(values),
            domain,
        }
    }

    /// Wraps an arena buffer directly (the zero-copy constructor the
    /// [`Ring`] hot paths use).
    pub fn from_limbs(values: LimbVec, domain: Domain) -> Self {
        Self { values, domain }
    }

    /// The underlying values.
    pub fn values(&self) -> &[u64] {
        &self.values
    }

    /// Mutable access to the underlying values.
    pub fn values_mut(&mut self) -> &mut [u64] {
        &mut self.values
    }

    /// Consumes the polynomial and returns its values as a plain vector
    /// (the buffer escapes the arena and is not recycled).
    pub fn into_values(self) -> Vec<u64> {
        self.values.into_vec()
    }

    /// The representation domain.
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// Number of values (the ring degree).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the polynomial has no values (never true for ring elements).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// Context for arithmetic in `R_q = Z_q[X]/(X^N + 1)`.
///
/// # Examples
///
/// ```
/// use athena_math::poly::{Ring, Domain};
/// let ring = Ring::new(12289, 64);
/// let a = ring.from_i64(&vec![1i64; 64]);
/// let b = ring.from_i64(&vec![2i64; 64]);
/// let c = ring.add(&a, &b);
/// assert_eq!(c.values()[0], 3);
/// ```
#[derive(Debug, Clone)]
pub struct Ring {
    n: usize,
    modulus: Modulus,
    ntt: NttTables,
}

impl Ring {
    /// Creates a ring of degree `n` (power of two) over prime `q ≡ 1 mod 2n`.
    ///
    /// # Panics
    ///
    /// Panics if the NTT does not exist for `(q, n)`.
    pub fn new(q: u64, n: usize) -> Self {
        Self {
            n,
            modulus: Modulus::new(q),
            ntt: NttTables::new(q, n),
        }
    }

    /// Ring degree `N`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Estimated coefficient-op cost of one NTT over this ring
    /// (`n·(log₂n + 1)` butterflies) — the work hint fed to
    /// [`crate::par::threads_for`] by the batch converters.
    fn ntt_work(&self) -> usize {
        self.n * (self.n.ilog2() as usize + 1)
    }

    /// Coefficient modulus.
    pub fn modulus(&self) -> &Modulus {
        &self.modulus
    }

    /// The NTT tables for this ring.
    pub fn ntt(&self) -> &NttTables {
        &self.ntt
    }

    /// The zero polynomial in the given domain.
    pub fn zero(&self, domain: Domain) -> Poly {
        Poly::from_limbs(LimbVec::take_zeroed(self.n), domain)
    }

    /// Builds a coefficient-domain polynomial from signed coefficients.
    pub fn from_i64(&self, coeffs: &[i64]) -> Poly {
        assert_eq!(coeffs.len(), self.n, "coefficient count must equal N");
        let mut out = LimbVec::take_raw(self.n);
        for (o, &c) in out.iter_mut().zip(coeffs) {
            *o = self.modulus.from_i64(c);
        }
        Poly::from_limbs(out, Domain::Coeff)
    }

    /// Builds a coefficient-domain polynomial from unsigned values
    /// (reduced mod q).
    pub fn from_u64(&self, coeffs: &[u64]) -> Poly {
        assert_eq!(coeffs.len(), self.n, "coefficient count must equal N");
        let mut out = LimbVec::take_raw(self.n);
        for (o, &c) in out.iter_mut().zip(coeffs) {
            *o = self.modulus.reduce(c);
        }
        Poly::from_limbs(out, Domain::Coeff)
    }

    /// Converts to evaluation domain (no-op if already there).
    pub fn to_eval(&self, p: &Poly) -> Poly {
        match p.domain {
            Domain::Eval => p.clone(),
            Domain::Coeff => {
                let mut v = LimbVec::take_copy(&p.values);
                self.ntt.forward(&mut v);
                Poly::from_limbs(v, Domain::Eval)
            }
        }
    }

    /// Converts to coefficient domain (no-op if already there).
    pub fn to_coeff(&self, p: &Poly) -> Poly {
        match p.domain {
            Domain::Coeff => p.clone(),
            Domain::Eval => {
                let mut v = LimbVec::take_copy(&p.values);
                self.ntt.inverse(&mut v);
                Poly::from_limbs(v, Domain::Coeff)
            }
        }
    }

    /// In-place domain conversion to evaluation form.
    pub fn to_eval_inplace(&self, p: &mut Poly) {
        if p.domain == Domain::Coeff {
            self.ntt.forward(&mut p.values);
            p.domain = Domain::Eval;
        }
    }

    /// In-place domain conversion to coefficient form.
    pub fn to_coeff_inplace(&self, p: &mut Poly) {
        if p.domain == Domain::Eval {
            self.ntt.inverse(&mut p.values);
            p.domain = Domain::Coeff;
        }
    }

    /// Converts a batch of polynomials to evaluation form in place, one
    /// forward NTT per element, distributed over the parallel layer (the
    /// transforms are independent; order and results are deterministic for
    /// any thread count).
    pub fn to_eval_batch(&self, polys: &mut [Poly]) {
        let threads = crate::par::threads_for(polys.len(), self.ntt_work());
        crate::par::parallel_for_each_mut_with(threads, polys, |p| self.to_eval_inplace(p));
    }

    /// Converts a batch of polynomials to coefficient form in place, one
    /// inverse NTT per element, distributed over the parallel layer.
    pub fn to_coeff_batch(&self, polys: &mut [Poly]) {
        let threads = crate::par::threads_for(polys.len(), self.ntt_work());
        crate::par::parallel_for_each_mut_with(threads, polys, |p| self.to_coeff_inplace(p));
    }

    fn zip(&self, a: &Poly, b: &Poly, f: impl Fn(&Modulus, u64, u64) -> u64) -> Poly {
        assert_eq!(a.domain, b.domain, "domain mismatch");
        assert_eq!(a.len(), self.n);
        assert_eq!(b.len(), self.n);
        let mut out = LimbVec::take_raw(self.n);
        for (o, (&x, &y)) in out.iter_mut().zip(a.values.iter().zip(b.values.iter())) {
            *o = f(&self.modulus, x, y);
        }
        Poly::from_limbs(out, a.domain)
    }

    /// Element-wise addition (same domain required).
    pub fn add(&self, a: &Poly, b: &Poly) -> Poly {
        self.zip(a, b, Modulus::add)
    }

    /// Element-wise subtraction (same domain required).
    pub fn sub(&self, a: &Poly, b: &Poly) -> Poly {
        self.zip(a, b, Modulus::sub)
    }

    /// In-place addition `a += b`.
    pub fn add_assign(&self, a: &mut Poly, b: &Poly) {
        assert_eq!(a.domain, b.domain, "domain mismatch");
        for (x, &y) in a.values.iter_mut().zip(b.values.iter()) {
            *x = self.modulus.add(*x, y);
        }
    }

    /// In-place subtraction `a -= b`.
    pub fn sub_assign(&self, a: &mut Poly, b: &Poly) {
        assert_eq!(a.domain, b.domain, "domain mismatch");
        for (x, &y) in a.values.iter_mut().zip(b.values.iter()) {
            *x = self.modulus.sub(*x, y);
        }
    }

    /// Negation.
    pub fn neg(&self, a: &Poly) -> Poly {
        let mut out = LimbVec::take_raw(a.len());
        for (o, &x) in out.iter_mut().zip(a.values.iter()) {
            *o = self.modulus.neg(x);
        }
        Poly::from_limbs(out, a.domain)
    }

    /// Scalar multiplication by `c ∈ Z_q` (domain preserved).
    pub fn scalar_mul(&self, a: &Poly, c: u64) -> Poly {
        let c = self.modulus.reduce(c);
        let c_shoup = self.modulus.shoup(c);
        let mut out = LimbVec::take_raw(a.len());
        for (o, &x) in out.iter_mut().zip(a.values.iter()) {
            *o = self.modulus.mul_shoup(x, c, c_shoup);
        }
        Poly::from_limbs(out, a.domain)
    }

    /// Pointwise multiplication of two `Eval`-domain polynomials.
    ///
    /// # Panics
    ///
    /// Panics if either operand is in coefficient domain.
    pub fn mul_eval(&self, a: &Poly, b: &Poly) -> Poly {
        assert_eq!(a.domain, Domain::Eval, "mul_eval needs Eval domain");
        self.zip(a, b, Modulus::mul)
    }

    /// Full polynomial multiplication: accepts any domains, returns `Eval`.
    pub fn mul(&self, a: &Poly, b: &Poly) -> Poly {
        let ea = self.to_eval(a);
        let eb = self.to_eval(b);
        self.mul_eval(&ea, &eb)
    }

    /// Multiply-accumulate in evaluation domain: `acc += a ⊙ b`.
    pub fn mul_acc_eval(&self, acc: &mut Poly, a: &Poly, b: &Poly) {
        assert_eq!(acc.domain, Domain::Eval);
        assert_eq!(a.domain, Domain::Eval);
        assert_eq!(b.domain, Domain::Eval);
        for i in 0..self.n {
            acc.values[i] = self
                .modulus
                .mul_add(a.values[i], b.values[i], acc.values[i]);
        }
    }

    /// Galois automorphism `a(X) → a(X^k)` for odd `k`, in coefficient
    /// domain.
    ///
    /// # Panics
    ///
    /// Panics if `k` is even or the input is not in coefficient domain.
    pub fn automorphism_coeff(&self, a: &Poly, k: usize) -> Poly {
        assert_eq!(
            a.domain,
            Domain::Coeff,
            "automorphism_coeff needs Coeff domain"
        );
        assert!(k % 2 == 1, "Galois element must be odd");
        let two_n = 2 * self.n;
        let mut out = LimbVec::take_zeroed(self.n);
        for i in 0..self.n {
            let e = (i * k) % two_n;
            let v = a.values[i];
            if e < self.n {
                out[e] = self.modulus.add(out[e], v);
            } else {
                out[e - self.n] = self.modulus.sub(out[e - self.n], v);
            }
        }
        Poly::from_limbs(out, Domain::Coeff)
    }

    /// Galois automorphism in evaluation domain (a pure index permutation).
    ///
    /// # Panics
    ///
    /// Panics if `k` is even or the input is not in evaluation domain.
    pub fn automorphism_eval(&self, a: &Poly, k: usize) -> Poly {
        assert_eq!(
            a.domain,
            Domain::Eval,
            "automorphism_eval needs Eval domain"
        );
        assert!(k % 2 == 1, "Galois element must be odd");
        let perm = self.automorphism_permutation(k);
        self.automorphism_eval_perm(a, &perm)
    }

    /// Galois automorphism in evaluation domain from a precomputed
    /// permutation (see [`Ring::automorphism_permutation`]) — the hot-path
    /// variant: callers applying the same `k` across many limbs or digits
    /// compute the permutation once.
    pub fn automorphism_eval_perm(&self, a: &Poly, perm: &[usize]) -> Poly {
        assert_eq!(
            a.domain,
            Domain::Eval,
            "automorphism_eval needs Eval domain"
        );
        assert_eq!(perm.len(), self.n, "permutation length must equal N");
        let mut out = LimbVec::take_raw(self.n);
        for (o, &src) in out.iter_mut().zip(perm) {
            *o = a.values[src];
        }
        Poly::from_limbs(out, Domain::Eval)
    }

    /// For output index `j`, the input index whose evaluation point maps to
    /// `j` under `X → X^k`: output slot `j` (point `ψ^e`) takes the value of
    /// the polynomial at `ψ^{e·k}`.
    pub fn automorphism_permutation(&self, k: usize) -> Vec<usize> {
        let two_n = 2 * self.n as u64;
        // exponent -> ntt index lookup
        let mut index_of_exp = vec![usize::MAX; two_n as usize];
        for j in 0..self.n {
            index_of_exp[self.ntt.eval_exponent(j) as usize] = j;
        }
        (0..self.n)
            .map(|j| {
                let e = self.ntt.eval_exponent(j);
                let src_exp = (e * k as u64) % two_n;
                index_of_exp[src_exp as usize]
            })
            .collect()
    }

    /// Evaluates the polynomial at a point `x ∈ Z_q` (coefficient domain).
    pub fn eval_at(&self, a: &Poly, x: u64) -> u64 {
        assert_eq!(a.domain, Domain::Coeff);
        let mut acc = 0u64;
        for &c in a.values.iter().rev() {
            acc = self.modulus.mul_add(acc, x, c);
        }
        acc
    }

    /// The infinity norm of the centered representatives.
    pub fn inf_norm(&self, a: &Poly) -> u64 {
        a.values
            .iter()
            .map(|&x| self.modulus.center(x).unsigned_abs())
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring() -> Ring {
        Ring::new(12289, 16)
    }

    #[test]
    fn domain_roundtrip() {
        let r = ring();
        let a = r.from_i64(&(0..16).map(|i| i - 8).collect::<Vec<_>>());
        let b = r.to_coeff(&r.to_eval(&a));
        assert_eq!(a, b);
    }

    #[test]
    fn batch_domain_conversion_matches_serial() {
        let r = ring();
        let mut batch: Vec<Poly> = (0..9i64)
            .map(|s| r.from_i64(&(0..16).map(|i| i * s - 7).collect::<Vec<_>>()))
            .collect();
        let orig = batch.clone();
        let serial: Vec<Poly> = batch.iter().map(|p| r.to_eval(p)).collect();
        r.to_eval_batch(&mut batch);
        assert_eq!(batch, serial);
        r.to_coeff_batch(&mut batch);
        assert_eq!(batch, orig);
    }

    #[test]
    fn mul_matches_schoolbook() {
        let r = ring();
        let a = r.from_i64(&(0..16).map(|i| i * 3 - 5).collect::<Vec<_>>());
        let b = r.from_i64(&(0..16).map(|i| 7 - i).collect::<Vec<_>>());
        let c = r.to_coeff(&r.mul(&a, &b));
        // schoolbook negacyclic
        let q = r.modulus();
        let mut want = vec![0u64; 16];
        for i in 0..16 {
            for j in 0..16 {
                let p = q.mul(a.values()[i], b.values()[j]);
                if i + j < 16 {
                    want[i + j] = q.add(want[i + j], p);
                } else {
                    want[i + j - 16] = q.sub(want[i + j - 16], p);
                }
            }
        }
        assert_eq!(c.values(), &want[..]);
    }

    #[test]
    fn automorphism_coeff_matches_eval() {
        let r = ring();
        let a = r.from_i64(&(0..16).map(|i| i + 1).collect::<Vec<_>>());
        for k in [3usize, 5, 9, 31] {
            let via_coeff = r.to_eval(&r.automorphism_coeff(&a, k));
            let via_eval = r.automorphism_eval(&r.to_eval(&a), k);
            assert_eq!(via_coeff, via_eval, "k={k}");
        }
    }

    #[test]
    fn automorphism_is_ring_homomorphism() {
        let r = ring();
        let a = r.from_i64(&(0..16).map(|i| 2 * i - 3).collect::<Vec<_>>());
        let b = r.from_i64(&(0..16).map(|i| i * i).collect::<Vec<_>>());
        let k = 5;
        let lhs = r.automorphism_coeff(&r.to_coeff(&r.mul(&a, &b)), k);
        let rhs = r.to_coeff(&r.mul(&r.automorphism_coeff(&a, k), &r.automorphism_coeff(&b, k)));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn eval_at_horner() {
        let r = ring();
        // p(X) = 1 + 2X + 3X^2
        let mut coeffs = vec![0i64; 16];
        coeffs[0] = 1;
        coeffs[1] = 2;
        coeffs[2] = 3;
        let p = r.from_i64(&coeffs);
        assert_eq!(r.eval_at(&p, 10), 321);
    }

    #[test]
    fn scalar_and_linear_ops() {
        let r = ring();
        let a = r.from_i64(&vec![5i64; 16]);
        let b = r.scalar_mul(&a, 3);
        assert_eq!(b.values()[7], 15);
        let c = r.sub(&b, &a);
        assert_eq!(c.values()[0], 10);
        let d = r.neg(&c);
        assert_eq!(r.add(&c, &d), r.zero(Domain::Coeff));
    }

    #[test]
    fn inf_norm_centered() {
        let r = ring();
        let a = r.from_i64(&{
            let mut v = vec![0i64; 16];
            v[3] = -100;
            v[4] = 99;
            v
        });
        assert_eq!(r.inf_norm(&a), 100);
    }
}
