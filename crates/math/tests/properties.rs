//! Property-based tests of the math substrate: ring axioms, NTT/CRT
//! round-trips, big-integer arithmetic against u128 oracles, and the
//! exact-vs-fast base-conversion relation.

use athena_math::bigint::UBig;
use athena_math::bsgs::bsgs_polynomial_eval;
use athena_math::modops::Modulus;
use athena_math::ntt::NttTables;
use athena_math::poly::{Domain, Ring};
use athena_math::prime::ntt_primes;
use athena_math::rns::RnsBasis;
use proptest::prelude::*;

const Q: u64 = 12289;
const N: usize = 64;

fn ring() -> Ring {
    Ring::new(Q, N)
}

fn coeffs() -> impl Strategy<Value = Vec<i64>> {
    prop::collection::vec(-6000i64..6000, N)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn modulus_mul_matches_u128(a in 0u64..Q, b in 0u64..Q) {
        let m = Modulus::new(Q);
        prop_assert_eq!(m.mul(a, b), ((a as u128 * b as u128) % Q as u128) as u64);
    }

    #[test]
    fn modulus_inverse_is_inverse(a in 1u64..Q) {
        let m = Modulus::new(Q);
        let inv = m.inv(a).expect("prime modulus");
        prop_assert_eq!(m.mul(a, inv), 1);
    }

    #[test]
    fn shoup_mul_matches_barrett(a in 0u64..Q, w in 0u64..Q) {
        let m = Modulus::new(Q);
        prop_assert_eq!(m.mul_shoup(a, w, m.shoup(w)), m.mul(a, w));
    }

    #[test]
    fn ntt_roundtrip(v in coeffs()) {
        let r = ring();
        let p = r.from_i64(&v);
        prop_assert_eq!(r.to_coeff(&r.to_eval(&p)), p);
    }

    #[test]
    fn ntt_is_linear(a in coeffs(), b in coeffs()) {
        let r = ring();
        let pa = r.from_i64(&a);
        let pb = r.from_i64(&b);
        let lhs = r.to_eval(&r.add(&pa, &pb));
        let rhs = r.add(&r.to_eval(&pa), &r.to_eval(&pb));
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn ring_mul_commutes_and_distributes(a in coeffs(), b in coeffs(), c in coeffs()) {
        let r = ring();
        let (pa, pb, pc) = (r.from_i64(&a), r.from_i64(&b), r.from_i64(&c));
        prop_assert_eq!(r.mul(&pa, &pb), r.mul(&pb, &pa));
        let lhs = r.to_coeff(&r.mul(&pa, &r.add(&pb, &pc)));
        let rhs = r.to_coeff(&r.add(&r.mul(&pa, &pb), &r.mul(&pa, &pc)));
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn automorphism_preserves_products(a in coeffs(), b in coeffs(), ki in 0usize..5) {
        let r = ring();
        let k = [3usize, 5, 9, 17, 2 * N - 1][ki];
        let (pa, pb) = (r.from_i64(&a), r.from_i64(&b));
        let lhs = r.automorphism_coeff(&r.to_coeff(&r.mul(&pa, &pb)), k);
        let rhs = r.to_coeff(&r.mul(&r.automorphism_coeff(&pa, k), &r.automorphism_coeff(&pb, k)));
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn ubig_add_mul_match_u128(a in 0u128..u128::MAX / 2, b in 0u128..(1u128 << 60)) {
        let ua = UBig::from(a);
        let ub = UBig::from(b);
        prop_assert_eq!(ua.add(&ub).to_u128_lossy(), a + b);
        if a < (1 << 64) {
            prop_assert_eq!(ua.mul(&ub).to_u128_lossy(), a.wrapping_mul(b));
        }
    }

    #[test]
    fn ubig_divrem_reconstructs(a in prop::collection::vec(any::<u64>(), 1..6),
                                d in prop::collection::vec(any::<u64>(), 1..4)) {
        let n = UBig::from_limbs(a);
        let dd = UBig::from_limbs(d);
        prop_assume!(!dd.is_zero());
        let (q, r) = n.div_rem(&dd);
        prop_assert!(r < dd);
        prop_assert_eq!(q.mul(&dd).add(&r), n);
    }

    #[test]
    fn crt_roundtrip(vals in prop::collection::vec(any::<u64>(), 3)) {
        let basis = RnsBasis::new(&ntt_primes(40, 16, 3), 16);
        let reduced: Vec<u64> = vals
            .iter()
            .zip(basis.moduli())
            .map(|(&v, q)| v % q)
            .collect();
        let x = basis.crt_reconstruct(&reduced);
        prop_assert_eq!(basis.crt_decompose(&x), reduced);
    }

    #[test]
    fn fast_bconv_within_alpha_q(v in prop::collection::vec(-100_000i64..100_000, 16)) {
        let src = RnsBasis::new(&ntt_primes(40, 16, 3), 16);
        let dst = RnsBasis::new(&ntt_primes(39, 16, 2), 16);
        let p = src.poly_from_i64(&v);
        let fast = src.fast_base_convert(&p, &dst);
        let exact = src.exact_base_convert(&p, &dst);
        for (j, r) in dst.rings().iter().enumerate() {
            let pj = r.modulus();
            let qmod = src.product().rem_u64(pj.value());
            for c in 0..16 {
                let f = fast.limbs()[j].values()[c];
                let e = exact.limbs()[j].values()[c];
                let mut ok = false;
                let mut cand = e;
                for _ in 0..src.len() + 1 {
                    if cand == f {
                        ok = true;
                        break;
                    }
                    cand = pj.add(cand, qmod);
                }
                prop_assert!(ok, "limb {} coeff {}", j, c);
            }
        }
    }

    #[test]
    fn bsgs_matches_horner(deg in 1usize..40, x in 0u64..Q, seed in any::<u64>()) {
        let m = Modulus::new(Q);
        let coeffs: Vec<u64> = (0..=deg as u64)
            .map(|i| (i.wrapping_mul(seed | 1)) % Q)
            .collect();
        let got = bsgs_polynomial_eval(
            &coeffs,
            &x,
            &mut |a: &u64, b: &u64| m.mul(*a, *b),
            &mut |a: &u64, c: u64| m.mul(*a, c % Q),
            &mut |a: &u64, b: &u64| m.add(*a, *b),
        );
        // Horner evaluation, then strip the constant term (BSGS evaluates
        // only the non-constant part).
        let mut acc = 0u64;
        for &c in coeffs.iter().rev() {
            acc = m.mul_add(acc, x, c);
        }
        let nonconst = m.sub(acc, coeffs[0] % Q);
        prop_assert_eq!(got.unwrap_or(0), nonconst);
    }

    #[test]
    fn negacyclic_identity_xn_is_minus_one(c in 0u64..Q) {
        // X^(N/2) * X^(N/2) = X^N = -1 in the ring.
        let r = ring();
        let mut half = vec![0i64; N];
        half[N / 2] = c as i64 % Q as i64;
        let p = r.from_i64(&half);
        let sq = r.to_coeff(&r.mul(&p, &p));
        let m = Modulus::new(Q);
        prop_assert_eq!(sq.values()[0], m.neg(m.mul(c, c)));
        for i in 1..N {
            prop_assert_eq!(sq.values()[i], 0);
        }
    }
}

#[test]
fn ntt_tables_reject_bad_congruence() {
    // q = 12289 supports 2n | 12288 only up to n = 2048.
    assert!(std::panic::catch_unwind(|| NttTables::new(12289, 4096)).is_err());
    let _ = NttTables::new(12289, 2048);
}

#[test]
fn poly_domain_mismatch_panics() {
    let r = ring();
    let a = r.from_i64(&vec![1; N]);
    let b = r.to_eval(&a);
    assert!(std::panic::catch_unwind(|| {
        let r2 = Ring::new(Q, N);
        r2.add(&a, &b)
    })
    .is_err());
    let _ = r.zero(Domain::Coeff);
}
