//! Property-style tests of the math substrate: ring axioms, NTT/CRT
//! round-trips, big-integer arithmetic against u128 oracles, and the
//! exact-vs-fast base-conversion relation.
//!
//! Originally written with `proptest`; ported to plain `#[test]`s driven by
//! the in-repo PRNG (fixed seeds, N random cases each) so the suite runs
//! with zero external dependencies. Determinism per seed is preserved.

use athena_math::bigint::UBig;
use athena_math::bsgs::bsgs_polynomial_eval;
use athena_math::modops::Modulus;
use athena_math::ntt::NttTables;
use athena_math::poly::{Domain, Ring};
use athena_math::prime::ntt_primes;
use athena_math::prng::Prng;
use athena_math::rns::RnsBasis;

const Q: u64 = 12289;
const N: usize = 64;
const CASES: usize = 64;

fn ring() -> Ring {
    Ring::new(Q, N)
}

fn coeffs(rng: &mut Prng) -> Vec<i64> {
    (0..N).map(|_| rng.next_i64_in(-6000, 6000)).collect()
}

#[test]
fn modulus_mul_matches_u128() {
    let mut rng = Prng::seed_from_u64(0x11);
    let m = Modulus::new(Q);
    for _ in 0..CASES {
        let a = rng.next_below(Q);
        let b = rng.next_below(Q);
        assert_eq!(m.mul(a, b), ((a as u128 * b as u128) % Q as u128) as u64);
    }
}

#[test]
fn modulus_inverse_is_inverse() {
    let mut rng = Prng::seed_from_u64(0x12);
    let m = Modulus::new(Q);
    for _ in 0..CASES {
        let a = 1 + rng.next_below(Q - 1);
        let inv = m.inv(a).expect("prime modulus");
        assert_eq!(m.mul(a, inv), 1, "a={a}");
    }
}

#[test]
fn shoup_mul_matches_barrett() {
    let mut rng = Prng::seed_from_u64(0x13);
    let m = Modulus::new(Q);
    for _ in 0..CASES {
        let a = rng.next_below(Q);
        let w = rng.next_below(Q);
        assert_eq!(m.mul_shoup(a, w, m.shoup(w)), m.mul(a, w), "a={a} w={w}");
    }
}

#[test]
fn ntt_roundtrip() {
    let mut rng = Prng::seed_from_u64(0x14);
    let r = ring();
    for _ in 0..CASES {
        let p = r.from_i64(&coeffs(&mut rng));
        assert_eq!(r.to_coeff(&r.to_eval(&p)), p);
    }
}

#[test]
fn ntt_is_linear() {
    let mut rng = Prng::seed_from_u64(0x15);
    let r = ring();
    for _ in 0..CASES {
        let pa = r.from_i64(&coeffs(&mut rng));
        let pb = r.from_i64(&coeffs(&mut rng));
        let lhs = r.to_eval(&r.add(&pa, &pb));
        let rhs = r.add(&r.to_eval(&pa), &r.to_eval(&pb));
        assert_eq!(lhs, rhs);
    }
}

#[test]
fn ring_mul_commutes_and_distributes() {
    let mut rng = Prng::seed_from_u64(0x16);
    let r = ring();
    for _ in 0..CASES / 2 {
        let pa = r.from_i64(&coeffs(&mut rng));
        let pb = r.from_i64(&coeffs(&mut rng));
        let pc = r.from_i64(&coeffs(&mut rng));
        assert_eq!(r.mul(&pa, &pb), r.mul(&pb, &pa));
        let lhs = r.to_coeff(&r.mul(&pa, &r.add(&pb, &pc)));
        let rhs = r.to_coeff(&r.add(&r.mul(&pa, &pb), &r.mul(&pa, &pc)));
        assert_eq!(lhs, rhs);
    }
}

#[test]
fn automorphism_preserves_products() {
    let mut rng = Prng::seed_from_u64(0x17);
    let r = ring();
    let galois = [3usize, 5, 9, 17, 2 * N - 1];
    for _ in 0..CASES / 2 {
        let k = galois[rng.next_below(galois.len() as u64) as usize];
        let pa = r.from_i64(&coeffs(&mut rng));
        let pb = r.from_i64(&coeffs(&mut rng));
        let lhs = r.automorphism_coeff(&r.to_coeff(&r.mul(&pa, &pb)), k);
        let rhs = r.to_coeff(&r.mul(&r.automorphism_coeff(&pa, k), &r.automorphism_coeff(&pb, k)));
        assert_eq!(lhs, rhs, "k={k}");
    }
}

#[test]
fn ubig_add_mul_match_u128() {
    let mut rng = Prng::seed_from_u64(0x18);
    for _ in 0..CASES {
        let a = ((rng.next_u64() as u128) << 63) | rng.next_u64() as u128 >> 1;
        let a = a % (u128::MAX / 2);
        let b = (rng.next_u64() % (1 << 60)) as u128;
        let ua = UBig::from(a);
        let ub = UBig::from(b);
        assert_eq!(ua.add(&ub).to_u128_lossy(), a + b);
        if a < (1 << 64) {
            assert_eq!(ua.mul(&ub).to_u128_lossy(), a.wrapping_mul(b));
        }
    }
}

#[test]
fn ubig_divrem_reconstructs() {
    let mut rng = Prng::seed_from_u64(0x19);
    for _ in 0..CASES {
        let na = 1 + rng.next_below(5) as usize;
        let nd = 1 + rng.next_below(3) as usize;
        let n = UBig::from_limbs((0..na).map(|_| rng.next_u64()).collect());
        let dd = UBig::from_limbs((0..nd).map(|_| rng.next_u64()).collect());
        if dd.is_zero() {
            continue;
        }
        let (q, r) = n.div_rem(&dd);
        assert!(r < dd);
        assert_eq!(q.mul(&dd).add(&r), n);
    }
}

#[test]
fn crt_roundtrip() {
    let mut rng = Prng::seed_from_u64(0x1A);
    let basis = RnsBasis::new(&ntt_primes(40, 16, 3), 16);
    for _ in 0..CASES {
        let reduced: Vec<u64> = basis.moduli().iter().map(|&q| rng.next_u64() % q).collect();
        let x = basis.crt_reconstruct(&reduced);
        assert_eq!(basis.crt_decompose(&x), reduced);
    }
}

#[test]
fn fast_bconv_within_alpha_q() {
    let mut rng = Prng::seed_from_u64(0x1B);
    let src = RnsBasis::new(&ntt_primes(40, 16, 3), 16);
    let dst = RnsBasis::new(&ntt_primes(39, 16, 2), 16);
    for _ in 0..CASES / 4 {
        let v: Vec<i64> = (0..16)
            .map(|_| rng.next_i64_in(-100_000, 100_000))
            .collect();
        let p = src.poly_from_i64(&v);
        let fast = src.fast_base_convert(&p, &dst);
        let exact = src.exact_base_convert(&p, &dst);
        for (j, r) in dst.rings().iter().enumerate() {
            let pj = r.modulus();
            let qmod = src.product().rem_u64(pj.value());
            for c in 0..16 {
                let f = fast.limbs()[j].values()[c];
                let e = exact.limbs()[j].values()[c];
                let mut ok = false;
                let mut cand = e;
                for _ in 0..src.len() + 1 {
                    if cand == f {
                        ok = true;
                        break;
                    }
                    cand = pj.add(cand, qmod);
                }
                assert!(ok, "limb {j} coeff {c}: fast not within alpha*Q of exact");
            }
        }
    }
}

#[test]
fn bsgs_matches_horner() {
    let mut rng = Prng::seed_from_u64(0x1C);
    let m = Modulus::new(Q);
    for _ in 0..CASES {
        let deg = 1 + rng.next_below(39) as usize;
        let x = rng.next_below(Q);
        let seed = rng.next_u64();
        let coeffs: Vec<u64> = (0..=deg as u64)
            .map(|i| (i.wrapping_mul(seed | 1)) % Q)
            .collect();
        let got = bsgs_polynomial_eval(
            &coeffs,
            &x,
            &mut |a: &u64, b: &u64| m.mul(*a, *b),
            &mut |a: &u64, c: u64| m.mul(*a, c % Q),
            &mut |a: &u64, b: &u64| m.add(*a, *b),
        );
        // Horner evaluation, then strip the constant term (BSGS evaluates
        // only the non-constant part).
        let mut acc = 0u64;
        for &c in coeffs.iter().rev() {
            acc = m.mul_add(acc, x, c);
        }
        let nonconst = m.sub(acc, coeffs[0] % Q);
        assert_eq!(got.unwrap_or(0), nonconst, "deg={deg} x={x}");
    }
}

#[test]
fn negacyclic_identity_xn_is_minus_one() {
    let mut rng = Prng::seed_from_u64(0x1D);
    let r = ring();
    let m = Modulus::new(Q);
    for _ in 0..CASES {
        // X^(N/2) * X^(N/2) = X^N = -1 in the ring.
        let c = rng.next_below(Q);
        let mut half = vec![0i64; N];
        half[N / 2] = c as i64;
        let p = r.from_i64(&half);
        let sq = r.to_coeff(&r.mul(&p, &p));
        assert_eq!(sq.values()[0], m.neg(m.mul(c, c)));
        for i in 1..N {
            assert_eq!(sq.values()[i], 0);
        }
    }
}

#[test]
fn parallel_rns_ops_match_serial() {
    // The RNS limb operations must be bit-identical for any worker count
    // (the par layer reassembles chunks in order; modular arithmetic is
    // exact, so there is no tolerance here).
    use athena_math::par;
    let mut rng = Prng::seed_from_u64(0x1E);
    let basis = RnsBasis::new(&ntt_primes(40, 64, 4), 64);
    let v1: Vec<i64> = (0..64).map(|_| rng.next_i64_in(-50_000, 50_000)).collect();
    let v2: Vec<i64> = (0..64).map(|_| rng.next_i64_in(-50_000, 50_000)).collect();
    let a = basis.poly_from_i64(&v1);
    let b = basis.poly_from_i64(&v2);
    let dst = RnsBasis::new(&ntt_primes(39, 64, 2), 64);

    par::set_threads(1);
    let mul_1 = basis.mul_poly(&a, &b);
    let eval_1 = basis.poly_to_eval(&a);
    let coeff_1 = basis.poly_to_coeff(&eval_1);
    let conv_1 = basis.fast_base_convert(&a, &dst);
    par::set_threads(4);
    let mul_4 = basis.mul_poly(&a, &b);
    let eval_4 = basis.poly_to_eval(&a);
    let coeff_4 = basis.poly_to_coeff(&eval_4);
    let conv_4 = basis.fast_base_convert(&a, &dst);
    par::set_threads(0);

    assert_eq!(mul_1, mul_4);
    assert_eq!(eval_1, eval_4);
    assert_eq!(coeff_1, coeff_4);
    assert_eq!(conv_1, conv_4);
}

#[test]
fn ntt_tables_reject_bad_congruence() {
    // q = 12289 supports 2n | 12288 only up to n = 2048.
    assert!(std::panic::catch_unwind(|| NttTables::new(12289, 4096)).is_err());
    let _ = NttTables::new(12289, 2048);
}

#[test]
fn poly_domain_mismatch_panics() {
    let r = ring();
    let a = r.from_i64(&vec![1; N]);
    let b = r.to_eval(&a);
    assert!(std::panic::catch_unwind(|| {
        let r2 = Ring::new(Q, N);
        r2.add(&a, &b)
    })
    .is_err());
    let _ = r.zero(Domain::Coeff);
}
