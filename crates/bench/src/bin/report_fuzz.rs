//! The differential-fuzzing report: runs the fixed-seed sweep of
//! `athena_core::fuzz` — every case through all four oracles (plain
//! reference, fast simulation, plan-driven simulation, real encryption at
//! the case's reduced parameters) — and summarizes coverage and the
//! worst observed encrypted deviation against its `e_ms` tolerance.
//!
//! Writes `reports/fuzz.txt`. The output is deterministic (every sampler
//! is seeded from the case seed or parameter fingerprint, no timings) and
//! thread-count invariant, so CI diffs it against the committed copy.

use athena_bench::render_table;
use athena_core::fuzz::{corpus, run_case, run_fuzz, FuzzConfig, OracleCtx};

/// The sweep CI replays: seeds `FUZZ_BASE_SEED + 0..400`.
const FUZZ_BASE_SEED: u64 = 20_260_808;
const CASES: usize = 400;

fn main() {
    let cfg = FuzzConfig {
        seed: FUZZ_BASE_SEED,
        cases: CASES,
        encrypted: true,
    };
    let report = match run_fuzz(&cfg) {
        Ok(r) => r,
        Err(failure) => {
            eprintln!("{failure}");
            eprintln!("minimized case:\n{}", corpus::to_text(&failure.case));
            std::process::exit(1);
        }
    };

    let mut out = String::new();
    out.push_str(&format!(
        "Differential fuzzing sweep: {} seeded cases (base seed {}), each run\n\
         through four oracles — plain QModel::forward, simulate_inference at\n\
         sigma=0 (bit-equal), plan-driven NoiseSimBackend at sigma=0 (bit-equal),\n\
         and EncryptedBackend at the case's reduced parameters (within the\n\
         propagated e_ms logit bound). All oracles agreed on every case.\n\n",
        cfg.cases, cfg.seed
    ));
    out.push_str(&render_table(
        &["metric", "value"],
        &[
            vec!["cases run".into(), report.cases.to_string()],
            vec!["encrypted runs".into(), report.encrypted_runs.to_string()],
            vec![
                "max encrypted logit deviation".into(),
                format!("{:.6}", report.max_encrypted_dev),
            ],
            vec![
                "e_ms tolerance at that case".into(),
                format!("{:.6}", report.tolerance_at_max),
            ],
        ],
    ));
    out.push('\n');
    out.push_str(&render_table(
        &["coverage", "count"],
        &[
            vec!["conv nodes".into(), report.op_counts[0].to_string()],
            vec!["fc nodes".into(), report.op_counts[1].to_string()],
            vec!["maxpool nodes".into(), report.op_counts[2].to_string()],
            vec!["avgpool nodes".into(), report.op_counts[3].to_string()],
            vec!["residual skips".into(), report.op_counts[4].to_string()],
            vec![
                "column-packed cases".into(),
                report.packing_counts[0].to_string(),
            ],
            vec![
                "bsgs-packed cases".into(),
                report.packing_counts[1].to_string(),
            ],
        ],
    ));

    // Replay the pinned regression corpus through the same oracles.
    let dir = corpus::corpus_dir();
    let mut corpus_rows: Vec<Vec<String>> = Vec::new();
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .map(|rd| rd.filter_map(Result::ok).collect::<Vec<_>>())
        .unwrap_or_default();
    entries.sort_by_key(|e| e.file_name());
    let mut ctx = OracleCtx::new();
    for entry in entries {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("case") {
            continue;
        }
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("?")
            .to_string();
        let text = std::fs::read_to_string(&path).expect("corpus file readable");
        let case = corpus::from_text(&text)
            .unwrap_or_else(|e| panic!("corpus file {name} does not parse: {e}"));
        match run_case(&mut ctx, &case, true) {
            Ok(_) => corpus_rows.push(vec![name, "pass".into()]),
            Err(f) => {
                eprintln!("pinned corpus case {name} regressed: {f}");
                std::process::exit(1);
            }
        }
    }
    if !corpus_rows.is_empty() {
        out.push('\n');
        out.push_str(&render_table(
            &["pinned corpus case", "status"],
            &corpus_rows,
        ));
    }

    print!("{out}");
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../reports");
    let path = dir.join("fuzz.txt");
    if let Err(e) = std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, &out)) {
        eprintln!("could not write {}: {e}", path.display());
    } else {
        eprintln!("wrote {}", path.display());
    }
}
