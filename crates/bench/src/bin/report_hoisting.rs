//! Before/after accounting for hoisted rotations (decompose-once,
//! rotate-many) and the tensor-lift operand cache: NTT counts, the
//! hoisted-vs-eager HRot breakdown, and computed-vs-reused tensor lifts for
//! the rotation-heavy ops and one full five-step layer.
//!
//! Reads the pre-hoisting counts from `reports/domain_ntt.txt` (the PR 2
//! Eval-resident baseline) and writes `reports/hoisting.txt` with deltas
//! plus the headline five-step forward-NTT reduction.

use std::time::Duration;

use athena_bench::microbench::{fmt_duration, run, BenchOpts};
use athena_bench::render_table;
use athena_core::pipeline::{AthenaEngine, PackingMethod, PipelineStats};
use athena_fhe::bfv::BfvEvaluator;
use athena_fhe::fbs::{fbs_apply, Lut};
use athena_fhe::lwe::LweCiphertext;
use athena_fhe::params::BfvParams;
use athena_math::par;
use athena_math::stats::{lift_stats, ntt_stats, rot_stats};

struct Row {
    name: String,
    forward: u64,
    inverse: u64,
    rot_eager: u64,
    rot_hoisted: u64,
    lifts_computed: u64,
    lifts_reused: u64,
    latency: Duration,
}

/// Counts NTTs/rotations/lifts for one serial execution of `f`, then times
/// it (counting and timing are separated so the timing run can use all
/// workers).
fn profile(opts: &BenchOpts, name: &str, mut f: impl FnMut()) -> Row {
    par::set_threads(1);
    let ((((), lifts), rot), ntt) =
        ntt_stats::measure(|| rot_stats::measure(|| lift_stats::measure(&mut f)));
    par::set_threads(0);
    let latency = run(opts, &mut f).median;
    Row {
        name: name.to_string(),
        forward: ntt.forward,
        inverse: ntt.inverse,
        rot_eager: rot.eager,
        rot_hoisted: rot.hoisted,
        lifts_computed: lifts.computed,
        lifts_reused: lifts.reused,
        latency,
    }
}

/// Parses `op:name forward inverse latency_ns` lines from a previous report.
fn read_baseline(path: &std::path::Path) -> Vec<(String, u64, u64, Duration)> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|l| {
            let mut it = l.split_whitespace();
            let name = it.next()?.to_string();
            if !name.starts_with("op:") {
                return None;
            }
            let fwd = it.next()?.parse().ok()?;
            let inv = it.next()?.parse().ok()?;
            let ns: u64 = it.next()?.parse().ok()?;
            Some((name, fwd, inv, Duration::from_nanos(ns)))
        })
        .collect()
}

fn main() {
    let opts = BenchOpts {
        warmup: Duration::from_millis(100),
        measure: Duration::from_millis(600),
        samples: 7,
    };
    let engine = AthenaEngine::with_packing(BfvParams::test_small(), PackingMethod::Bsgs);
    let ctx = engine.context();
    let mut sampler = athena_math::sampler::Sampler::from_seed(4242);
    let (secrets, keys) = engine.keygen(&mut sampler);
    let ev = BfvEvaluator::new(ctx);
    let enc = ctx.encoder();
    let n = ctx.n();
    let t = ctx.t();
    let k_limbs = ctx.q_basis().len();

    let vals: Vec<u64> = (0..n as u64).map(|i| (i * 3 + 1) % t).collect();
    let ct = ev.encrypt_sk(&enc.encode(&vals), &secrets.sk, &mut sampler);
    let ct_eval = ct.to_eval(ctx);
    let mut rows: Vec<Row> = Vec::new();

    // Eight eager rotations of one source vs hoist-once + eight rotations —
    // the decompose-once/rotate-many shape of every BSGS schedule.
    const R: usize = 8;
    rows.push(profile(&opts, "op:rot8_eager", || {
        for k in 1..=R {
            std::hint::black_box(ev.rotate_rows(&ct_eval, k, &keys.gk));
        }
    }));
    rows.push(profile(&opts, "op:rot8_hoisted", || {
        let hoisted = ev.hoist(&ct_eval);
        for k in 1..=R {
            std::hint::black_box(hoisted.rotate_rows(ctx, k, &keys.gk));
        }
    }));

    // BSGS packing of 32 LWEs (baby rotations ride the key's digit cache).
    let lwes: Vec<LweCiphertext> = (0..32u64)
        .map(|i| LweCiphertext::encrypt((i * 8) % t, &secrets.lwe_sk, &mut sampler))
        .collect();
    let pack_key = keys.pack_bsgs.as_ref().expect("bsgs engine");
    rows.push(profile(&opts, "op:pack_bsgs_32", || {
        std::hint::black_box(pack_key.pack(ctx, &lwes, &keys.gk));
    }));

    // One FBS (ReLU LUT) on a packed ciphertext (cached tensor lifts).
    let packed = pack_key.pack(ctx, &lwes, &keys.gk);
    let lut = Lut::from_signed_fn(t, |x| x.max(0));
    rows.push(profile(&opts, "op:fbs_relu", || {
        std::hint::black_box(fbs_apply(ctx, &packed, &lut, &keys.rlk));
    }));

    // One five-step layer: linear → extract → pack → FBS → S2C.
    let positions: Vec<usize> = (0..32).collect();
    let kernel: Vec<i64> = {
        let mut v = vec![0i64; n];
        v[0] = 2;
        v[1] = -1;
        v
    };
    rows.push(profile(&opts, "op:five_step_layer", || {
        let mut stats = PipelineStats::default();
        let conv = engine.linear(&ct, &kernel, &[], &mut stats);
        let lw = engine.extract_lwes(&conv, &positions, &keys, &mut stats);
        let opt: Vec<Option<LweCiphertext>> = lw.into_iter().map(Some).collect();
        std::hint::black_box(engine.pack_fbs_s2c(&opt, &lut, &keys, &mut stats));
    }));

    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../reports");
    let baseline = read_baseline(&dir.join("domain_ntt.txt"));

    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let dfwd = baseline
                .iter()
                .find(|(bn, ..)| *bn == r.name)
                .map(|&(_, bf, ..)| format!("{:+}", r.forward as i64 - bf as i64))
                .unwrap_or_else(|| "-".into());
            vec![
                r.name.trim_start_matches("op:").to_string(),
                r.forward.to_string(),
                dfwd,
                r.inverse.to_string(),
                format!("{}/{}", r.rot_eager, r.rot_hoisted),
                format!("{}/{}", r.lifts_computed, r.lifts_reused),
                fmt_duration(r.latency),
            ]
        })
        .collect();

    let mut out = String::new();
    out.push_str("Hoisted rotations + tensor-lift cache: NTT counts per op\n");
    out.push_str(&format!(
        "params: test_small (N={n}, t={t}, {k_limbs} RNS limbs); counts from a 1-worker run\n"
    ));
    out.push_str("HRot column = eager/hoisted; lift column = computed/reused\n");
    out.push_str("Δfwd vs reports/domain_ntt.txt (PR 2 Eval-resident, pre-hoisting)\n\n");
    out.push_str(&render_table(
        &[
            "op", "fwd NTT", "Δfwd", "inv NTT", "HRot e/h", "lift c/r", "latency",
        ],
        &table_rows,
    ));

    // Headline: five-step forward-NTT reduction vs the pre-hoisting report.
    if let Some(&(_, base_fwd, ..)) = baseline.iter().find(|(bn, ..)| bn == "op:five_step_layer") {
        let now = rows
            .iter()
            .find(|r| r.name == "op:five_step_layer")
            .map(|r| r.forward)
            .unwrap_or(0);
        let cut = 100.0 * (1.0 - now as f64 / base_fwd as f64);
        out.push_str(&format!(
            "\nfive-step forward NTTs: {base_fwd} -> {now} ({cut:.1}% reduction vs pre-hoisting)\n"
        ));
    }

    out.push_str("\nmachine-readable (op: name fwd inv latency_ns):\n");
    for r in &rows {
        out.push_str(&format!(
            "{} {} {} {}\n",
            r.name,
            r.forward,
            r.inverse,
            r.latency.as_nanos()
        ));
    }
    print!("{out}");

    let path = dir.join("hoisting.txt");
    if let Err(e) = std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, &out)) {
        eprintln!("could not write {}: {e}", path.display());
    } else {
        eprintln!("wrote {}", path.display());
    }
}
