//! Fig. 12: sensitivity to quantization precision — accuracy and latency.

use athena_accel::sensitivity::precision_sweep;
use athena_bench::{pct, render_table, train_model, Budget};
use athena_core::simulate::{simulated_accuracy, NoiseSpec};
use athena_math::sampler::Sampler;
use athena_nn::models::{ModelKind, ModelSpec};
use athena_nn::qmodel::QuantConfig;

fn main() {
    let budget = Budget::from_env();
    eprintln!("[fig12] training ResNet-20 ({budget:?})...");
    let tm = train_model(ModelKind::ResNet20, budget, 0xA7EA);
    let perf = precision_sweep(&ModelSpec::resnet(3));
    let mut rows = Vec::new();
    for p in &perf {
        let qm = tm.quantized(QuantConfig::new(p.quant.w_bits, p.quant.a_bits));
        let pq = tm.plain_q_acc(&qm);
        let mut s = Sampler::from_seed(99);
        let cipher = simulated_accuracy(
            &qm,
            &tm.test.images,
            &tm.test.labels,
            &NoiseSpec::athena_production(),
            &mut s,
        );
        rows.push(vec![
            format!("{}", p.quant),
            pct(pq),
            pct(cipher),
            format!("{:.1}", p.latency_ms),
        ]);
    }
    println!("Fig. 12: ResNet-20 accuracy/performance across quantization precision");
    println!(
        "{}",
        render_table(&["mode", "plain-Q %", "cipher %", "latency ms"], &rows)
    );
    println!("Paper shape: accuracy gains plateau at w6a7; latency degradation accelerates");
    println!("after w6a6 with the largest step between w7a7 and w8a8 (~2x).");
}
