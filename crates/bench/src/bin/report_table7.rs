//! Table 7: energy-delay product.

use athena_accel::baselines::{baseline_edp, baselines};
use athena_accel::sim::AthenaSim;
use athena_bench::render_table;
use athena_nn::models::ModelSpec;
use athena_nn::qmodel::QuantConfig;

fn main() {
    let specs = [
        ModelSpec::lenet(),
        ModelSpec::mnist(),
        ModelSpec::resnet(3),
        ModelSpec::resnet(9),
    ];
    let mut rows = Vec::new();
    for b in baselines() {
        let mut row = vec![b.name.to_string()];
        for spec in &specs {
            row.push(format!("{:.3}", baseline_edp(&b, spec)));
        }
        rows.push(row);
    }
    let sim = AthenaSim::athena();
    for (label, cfg) in [
        ("Athena-w7a7", QuantConfig::w7a7()),
        ("Athena-w6a7", QuantConfig::w6a7()),
    ] {
        let mut row = vec![label.to_string()];
        for spec in &specs {
            row.push(format!("{:.3}", sim.run_model(spec, &cfg).edp()));
        }
        rows.push(row);
    }
    println!("Table 7: EDP (J*s), lower is better");
    println!(
        "{}",
        render_table(
            &["Accelerator", "LeNet", "MNIST", "ResNet-20", "ResNet-56"],
            &rows
        )
    );
    println!(
        "Paper: Athena-w7a7 = 0.056 / 0.008 / 0.35 / 3.32; SHARP = 0.31 / 0.012 / 0.96 / 8.36."
    );
    let a = sim
        .run_model(&ModelSpec::resnet(3), &QuantConfig::w7a7())
        .edp();
    println!("Athena vs SHARP EDP improvement on ResNet-20: {:.1}x (paper: 2.7x; >3.8x claimed across models)", 0.96 / a);
}
