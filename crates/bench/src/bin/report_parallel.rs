//! Serial-vs-parallel throughput of the `std`-only execution layer
//! (`athena_math::par`) on the two hot paths it accelerates: per-limb RNS
//! NTTs and the batched FBS of the five-step loop.
//!
//! Writes `reports/parallel_throughput.txt`. Worker counts are forced with
//! `par::set_threads`, so the comparison is honest on any host; the printed
//! hardware thread count says how much parallel speedup is *available*
//! (on a single-core container both columns measure the same serial work
//! plus scheduling overhead).

use std::time::Duration;

use athena_bench::microbench::{fmt_duration, run, BenchOpts};
use athena_bench::render_table;
use athena_fhe::bfv::{BfvContext, BfvEvaluator, RelinKey, SecretKey};
use athena_fhe::fbs::{fbs_apply_batch, Lut};
use athena_fhe::params::BfvParams;
use athena_math::par;
use athena_math::prime::ntt_primes;
use athena_math::rns::RnsBasis;
use athena_math::sampler::Sampler;

struct Row {
    name: String,
    serial: Duration,
    parallel: Duration,
}

fn bench_pair(opts: &BenchOpts, name: &str, threads: usize, mut f: impl FnMut()) -> Row {
    par::set_threads(1);
    let serial = run(opts, &mut f).median;
    par::set_threads(threads);
    let parallel = run(opts, &mut f).median;
    par::set_threads(0);
    Row {
        name: name.to_string(),
        serial,
        parallel,
    }
}

fn main() {
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    // Use at least 4 workers so the threaded code path is exercised even on
    // hosts with few cores (there it measures pure scheduling overhead).
    let threads = par::num_threads().max(4);
    let opts = BenchOpts {
        warmup: Duration::from_millis(200),
        measure: Duration::from_secs(1),
        samples: 10,
    };
    let mut rows: Vec<Row> = Vec::new();

    // RNS NTT: 8 limbs of degree 4096, forward + inverse per iteration.
    {
        let n = 4096;
        let basis = RnsBasis::new(&ntt_primes(50, n, 8), n);
        let p = basis.poly_from_i64(
            &(0..n as i64)
                .map(|i| i * 17 % 4001 - 2000)
                .collect::<Vec<_>>(),
        );
        rows.push(bench_pair(&opts, "rns_ntt_8x4096_fwd_inv", threads, || {
            let e = basis.poly_to_eval(&p);
            std::hint::black_box(basis.poly_to_coeff(&e));
        }));
    }

    // Batched FBS: 4 independent bootstrappings over one shared ReLU LUT
    // (the per-LWE batch of framework Step ⑤).
    {
        let ctx = BfvContext::new(BfvParams::test_small());
        let mut sampler = Sampler::from_seed(7);
        let sk = SecretKey::generate(&ctx, &mut sampler);
        let rlk = RelinKey::generate(&ctx, &sk, &mut sampler);
        let ev = BfvEvaluator::new(&ctx);
        let enc = ctx.encoder();
        let lut = Lut::from_signed_fn(ctx.t(), |x| x.max(0));
        let cts: Vec<_> = (0..4u64)
            .map(|j| {
                let vals: Vec<u64> = (0..ctx.n() as u64).map(|i| (i * 7 + j) % ctx.t()).collect();
                ev.encrypt_sk(&enc.encode(&vals), &sk, &mut sampler)
            })
            .collect();
        rows.push(bench_pair(&opts, "batched_fbs_t257_x4", threads, || {
            std::hint::black_box(fbs_apply_batch(&ctx, &cts, &lut, &rlk));
        }));
    }

    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let speedup = r.serial.as_secs_f64() / r.parallel.as_secs_f64().max(1e-12);
            vec![
                r.name.clone(),
                fmt_duration(r.serial),
                fmt_duration(r.parallel),
                format!("{speedup:.2}x"),
            ]
        })
        .collect();

    let mut out = String::new();
    out.push_str("Parallel execution layer: serial vs parallel throughput\n");
    out.push_str(&format!(
        "hardware threads: {hw}; parallel column forced to {threads} workers (ATHENA_THREADS honored)\n\n"
    ));
    out.push_str(&render_table(
        &["workload", "serial (1 thread)", "parallel", "speedup"],
        &table_rows,
    ));
    out.push_str("\nExpectation: >= 2x on batched FBS with >= 4 hardware threads.\n");
    if hw < 4 {
        out.push_str(&format!(
            "This host exposes only {hw} hardware thread(s): the parallel column\n\
             oversubscribes the core, so the speedup is <= 1x (scheduling and\n\
             cache contention overhead). The multi-worker code path is still\n\
             exercised, and the equivalence tests guarantee bit-identical output.\n"
        ));
    }
    print!("{out}");

    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../reports");
    let path = dir.join("parallel_throughput.txt");
    if let Err(e) = std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, &out)) {
        eprintln!("could not write {}: {e}", path.display());
    } else {
        eprintln!("wrote {}", path.display());
    }
}
