//! NTT counts and per-op latency of the domain-sensitive hot paths:
//! HRot (`rotate_rows`), the BSGS LWE→RLWE packing, one FBS, and a full
//! five-step layer (linear → mod-switch/extract → pack → FBS → S2C).
//!
//! Run once before the Eval-resident refactor to record the baseline
//! (`reports/domain_ntt_baseline.txt`), and after it to produce
//! `reports/domain_ntt.txt` with before/after deltas; counting uses the
//! `op-stats` feature of `athena-math` (relaxed atomics, process-global, so
//! the bench forces a single worker while counting).

use std::time::Duration;

use athena_bench::microbench::{fmt_duration, run, BenchOpts};
use athena_bench::render_table;
use athena_core::pipeline::{AthenaEngine, PackingMethod, PipelineStats};
use athena_fhe::bfv::BfvEvaluator;
use athena_fhe::fbs::{fbs_apply, Lut};
use athena_fhe::lwe::LweCiphertext;
use athena_fhe::params::BfvParams;
use athena_math::par;
use athena_math::stats::ntt_stats;

struct Row {
    name: String,
    forward: u64,
    inverse: u64,
    latency: Duration,
}

/// Counts NTTs for one serial execution of `f`, then times it (counts and
/// timing are separated so the timing run can use all workers).
fn profile(opts: &BenchOpts, name: &str, mut f: impl FnMut()) -> Row {
    par::set_threads(1);
    let ((), counts) = ntt_stats::measure(&mut f);
    par::set_threads(0);
    let latency = run(opts, &mut f).median;
    Row {
        name: name.to_string(),
        forward: counts.forward,
        inverse: counts.inverse,
        latency,
    }
}

/// Parses `name forward inverse latency_ns` lines from a previous baseline
/// file, returning `(forward, inverse, latency)` per row name.
fn read_baseline(path: &std::path::Path) -> Vec<(String, u64, u64, Duration)> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|l| {
            let mut it = l.split_whitespace();
            let name = it.next()?.to_string();
            if !name.starts_with("op:") {
                return None;
            }
            let fwd = it.next()?.parse().ok()?;
            let inv = it.next()?.parse().ok()?;
            let ns: u64 = it.next()?.parse().ok()?;
            Some((name, fwd, inv, Duration::from_nanos(ns)))
        })
        .collect()
}

fn main() {
    let opts = BenchOpts {
        warmup: Duration::from_millis(100),
        measure: Duration::from_millis(600),
        samples: 7,
    };
    let engine = AthenaEngine::with_packing(BfvParams::test_small(), PackingMethod::Bsgs);
    let ctx = engine.context();
    let mut sampler = athena_math::sampler::Sampler::from_seed(4242);
    let (secrets, keys) = engine.keygen(&mut sampler);
    let ev = BfvEvaluator::new(ctx);
    let enc = ctx.encoder();
    let n = ctx.n();
    let t = ctx.t();
    let k_limbs = ctx.q_basis().len();

    let vals: Vec<u64> = (0..n as u64).map(|i| (i * 3 + 1) % t).collect();
    let ct = ev.encrypt_sk(&enc.encode(&vals), &secrets.sk, &mut sampler);
    let mut rows: Vec<Row> = Vec::new();

    // HRot on the ciphertext in its resident form (Coeff pre-refactor; now
    // Eval, converted once outside the measured region, matching how the
    // BSGS loops hold their operands).
    let ct_eval = ct.to_eval(ctx);
    rows.push(profile(&opts, "op:hrot_resident", || {
        std::hint::black_box(ev.rotate_rows(&ct_eval, 1, &keys.gk));
    }));

    // BSGS packing of 32 LWEs.
    let lwes: Vec<LweCiphertext> = (0..32u64)
        .map(|i| LweCiphertext::encrypt((i * 8) % t, &secrets.lwe_sk, &mut sampler))
        .collect();
    let pack_key = keys.pack_bsgs.as_ref().expect("bsgs engine");
    rows.push(profile(&opts, "op:pack_bsgs_32", || {
        std::hint::black_box(pack_key.pack(ctx, &lwes, &keys.gk));
    }));

    // One FBS (ReLU LUT) on a packed ciphertext.
    let packed = pack_key.pack(ctx, &lwes, &keys.gk);
    let lut = Lut::from_signed_fn(t, |x| x.max(0));
    rows.push(profile(&opts, "op:fbs_relu", || {
        std::hint::black_box(fbs_apply(ctx, &packed, &lut, &keys.rlk));
    }));

    // One five-step layer: linear → extract → pack → FBS → S2C.
    let positions: Vec<usize> = (0..32).collect();
    let kernel: Vec<i64> = {
        let mut v = vec![0i64; n];
        v[0] = 2;
        v[1] = -1;
        v
    };
    rows.push(profile(&opts, "op:five_step_layer", || {
        let mut stats = PipelineStats::default();
        let conv = engine.linear(&ct, &kernel, &[], &mut stats);
        let lw = engine.extract_lwes(&conv, &positions, &keys, &mut stats);
        let opt: Vec<Option<LweCiphertext>> = lw.into_iter().map(Some).collect();
        std::hint::black_box(engine.pack_fbs_s2c(&opt, &lut, &keys, &mut stats));
    }));

    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../reports");
    let baseline_path = dir.join("domain_ntt_baseline.txt");
    let baseline = read_baseline(&baseline_path);
    let have_baseline = !baseline.is_empty();

    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let (dfwd, dinv, dlat) = baseline
                .iter()
                .find(|(bn, ..)| *bn == r.name)
                .map(|&(_, bf, bi, bl)| {
                    (
                        format!("{:+}", r.forward as i64 - bf as i64),
                        format!("{:+}", r.inverse as i64 - bi as i64),
                        format!(
                            "{:+.1}%",
                            (r.latency.as_secs_f64() / bl.as_secs_f64().max(1e-12) - 1.0) * 100.0
                        ),
                    )
                })
                .unwrap_or_else(|| ("-".into(), "-".into(), "-".into()));
            vec![
                r.name.trim_start_matches("op:").to_string(),
                r.forward.to_string(),
                dfwd,
                r.inverse.to_string(),
                dinv,
                fmt_duration(r.latency),
                dlat,
            ]
        })
        .collect();

    let mut out = String::new();
    out.push_str("Domain-aware representation: NTT counts and latency per op\n");
    out.push_str(&format!(
        "params: test_small (N={n}, t={t}, {k_limbs} RNS limbs); counts from a 1-worker run\n"
    ));
    if have_baseline {
        out.push_str("deltas vs reports/domain_ntt_baseline.txt (pre-refactor)\n");
    } else {
        out.push_str("no baseline file found: this run IS the baseline\n");
    }
    out.push('\n');
    out.push_str(&render_table(
        &[
            "op", "fwd NTT", "Δfwd", "inv NTT", "Δinv", "latency", "Δlat",
        ],
        &table_rows,
    ));
    out.push_str("\nmachine-readable (op: name fwd inv latency_ns):\n");
    for r in &rows {
        out.push_str(&format!(
            "{} {} {} {}\n",
            r.name,
            r.forward,
            r.inverse,
            r.latency.as_nanos()
        ));
    }
    print!("{out}");

    let path = if have_baseline {
        dir.join("domain_ntt.txt")
    } else {
        baseline_path
    };
    if let Err(e) = std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, &out)) {
        eprintln!("could not write {}: {e}", path.display());
    } else {
        eprintln!("wrote {}", path.display());
    }
}
