//! Table 1: solutions for CNN under FHE — parameters and derived sizes.

use athena_bench::render_table;
use athena_core::paramsets::table1;

fn main() {
    let rows: Vec<Vec<String>> = table1()
        .iter()
        .map(|s| {
            vec![
                s.name.to_string(),
                if s.quantized { "Q" } else { "NQ" }.to_string(),
                s.degree.to_string(),
                s.log_q.to_string(),
                s.nonlinear.to_string(),
                format!("{:.2} MB", s.ciphertext_bytes() as f64 / (1024.0 * 1024.0)),
                format!("{:.0} MB", s.key_bytes() as f64 / (1024.0 * 1024.0)),
                s.dataset.to_string(),
                format!("{:.2} ({:.2})", s.accuracy.0, s.accuracy.1),
            ]
        })
        .collect();
    println!("Table 1: Solutions for CNN under FHE");
    println!(
        "{}",
        render_table(
            &[
                "Method",
                "CNN",
                "Degree",
                "logQ",
                "B & NL",
                "Cipher",
                "Keys",
                "Dataset",
                "Acc c(p) %"
            ],
            &rows
        )
    );
    println!("Paper reference sizes: CKKS [27] 32 MB / 2.1 GB keys; Athena 5.6 MB / 720 MB keys.");
}
