//! Table 2: valid-data ratios of Cheetah vs Athena conv encodings.

use athena_bench::render_table;
use athena_core::encoding::{athena_packing, cheetah_packing, table2_shapes};

fn main() {
    let n = 1 << 15;
    let paper_cheetah = [25.0, 3.13, 1.56, 2.27, 0.78, 0.96];
    let paper_athena = [50.0, 50.0, 25.0, 25.0, 6.25, 12.5];
    let rows: Vec<Vec<String>> = table2_shapes()
        .iter()
        .zip(paper_cheetah.iter().zip(&paper_athena))
        .map(|(s, (&pc, &pa))| {
            let c = cheetah_packing(s, n);
            let a = athena_packing(s, n);
            vec![
                format!(
                    "({}^2,{},{},{},{},{})",
                    s.hw, s.c_in, s.c_out, s.k, s.stride, s.padding
                ),
                format!("{:.2}%", 100.0 * c.valid_ratio(s, n)),
                format!("{pc}%"),
                format!("{:.2}%", 100.0 * a.valid_ratio(s, n)),
                format!("{pa}%"),
            ]
        })
        .collect();
    println!("Table 2: valid-data ratio in result polynomials (N = 2^15)");
    println!(
        "{}",
        render_table(
            &[
                "(HW,Cin,Cout,Wk,s,p)",
                "Cheetah (ours)",
                "Cheetah (paper)",
                "Athena (ours)",
                "Athena (paper)"
            ],
            &rows
        )
    );
    println!("Shape check: Athena's output-channel-first packing beats Cheetah on every row.");
}
