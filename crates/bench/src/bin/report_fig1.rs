//! Fig. 1: bit accuracy of Taylor/Chebyshev activation approximations under
//! CKKS-style fixed-point Δ, plus the plaintext (Δ = 40) reference line.

use athena_bench::render_table;
use athena_nn::approx::{bit_accuracy, ApproxKind, ApproxTarget};

fn main() {
    let orders = [3usize, 7, 15, 31, 63];
    let deltas = [25u32, 30, 35, 40];
    for (target, kind, label) in [
        (
            ApproxTarget::Relu,
            ApproxKind::Chebyshev,
            "ReLU (Chebyshev)",
        ),
        (
            ApproxTarget::Sigmoid,
            ApproxKind::Taylor,
            "Sigmoid (Taylor)",
        ),
        (
            ApproxTarget::Sigmoid,
            ApproxKind::Chebyshev,
            "Sigmoid (Chebyshev)",
        ),
    ] {
        let mut rows = Vec::new();
        for &order in &orders {
            let mut row = vec![order.to_string()];
            // plaintext (red) line: high-precision evaluation
            row.push(format!("{:.1}", bit_accuracy(target, kind, order, 52, 512)));
            for &d in &deltas {
                row.push(format!("{:.1}", bit_accuracy(target, kind, order, d, 512)));
            }
            rows.push(row);
        }
        println!("Fig. 1 — {label}: bit accuracy vs expansion order");
        println!(
            "{}",
            render_table(&["order", "plain", "d=25", "d=30", "d=35", "d=40"], &rows)
        );
    }
    println!("Shape checks: accuracy grows with order except at small Δ; ReLU lags sigmoid;");
    println!("Δ=25 collapses to a few bits — the paper's motivation for Δ ≥ 46 in CKKS CNNs.");

    // Model-level probe (the figure's "ResNet-20 with ReLU" lines, run on
    // the fast-to-train MNIST CNN): class agreement between the exact model
    // and the polynomial-activation fixed-point model.
    use athena_bench::{train_model, Budget};
    use athena_nn::approx::{folded_forward_poly_relu, FixedPoint};
    use athena_nn::models::ModelKind;
    use athena_nn::quant::fold_network;
    eprintln!("[fig1] training MNIST CNN for the model-level probe...");
    let mut tm = train_model(ModelKind::Mnist, Budget::from_env(), 0xF161);
    let folded = fold_network(&tm.net);
    println!(
        "
Model probe: exact-vs-polynomial-ReLU class agreement (MNIST CNN)"
    );
    let mut rows = Vec::new();
    for &(order, delta) in &[(7usize, 25u32), (7, 40), (31, 25), (31, 40)] {
        let fp = FixedPoint::new(delta);
        let mut agree = 0;
        let total = 60.min(tm.test.images.len());
        for img in tm.test.images.iter().take(total) {
            let exact = tm.net.predict(img);
            let approx = folded_forward_poly_relu(&folded, img, order, fp).argmax();
            if exact == approx {
                agree += 1;
            }
        }
        rows.push(vec![
            order.to_string(),
            delta.to_string(),
            format!("{agree}/{total}"),
        ]);
    }
    println!("{}", render_table(&["order", "delta", "agreement"], &rows));
    println!("Shape: higher order and larger Δ recover the exact model's predictions.");
}
