//! Table 4: per-step noise budget of the Athena loop.

use athena_bench::render_table;
use athena_fhe::noise::{athena_steps, total_noise_bits, NoiseModel};

fn main() {
    let m = NoiseModel::athena_production();
    let steps = athena_steps();
    let mut rows: Vec<Vec<String>> = steps
        .iter()
        .map(|s| {
            vec![
                s.name.to_string(),
                s.pmult.to_string(),
                s.cmult.to_string(),
                s.smult.to_string(),
                s.hadd.to_string(),
                s.noise_bits(&m).to_string(),
            ]
        })
        .collect();
    rows.push(vec![
        "Total".into(),
        steps.iter().map(|s| s.pmult).sum::<u32>().to_string(),
        steps.iter().map(|s| s.cmult).sum::<u32>().to_string(),
        steps.iter().map(|s| s.smult).sum::<u32>().to_string(),
        steps.iter().map(|s| s.hadd).sum::<u32>().to_string(),
        total_noise_bits(&steps, &m).to_string(),
    ]);
    println!("Table 4: maximum noise (bits) per Athena step (paper: 37/43/558/68, total 706)");
    println!(
        "{}",
        render_table(
            &[
                "Step",
                "PMult d",
                "CMult d",
                "SMult d",
                "HAdd d",
                "Noise (bits)"
            ],
            &rows
        )
    );
    println!(
        "Headroom: Δ = {} bits, Δ/2 = {} bits.",
        m.delta_bits(),
        m.headroom_bits()
    );
}
