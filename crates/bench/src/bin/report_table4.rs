//! Table 4: per-step noise budget of the Athena loop.
//!
//! Since the plan-derived noise accounting landed, the rows come from
//! [`derive_steps`] at the production [`StepProfile`] — the same
//! constructors the plan compiler charges compiled steps with — and the
//! paper's hand-written table survives as the frozen [`athena_steps`]
//! fixture the derivation is checked against (here and in
//! `report_noise` / the `athena-fhe` unit tests).

use athena_bench::render_table;
use athena_fhe::noise::{athena_steps, derive_steps, total_noise_bits, NoiseModel, StepProfile};

fn main() {
    let m = NoiseModel::athena_production();
    let steps = derive_steps(&StepProfile::athena_production());
    let fixture = athena_steps();
    assert_eq!(
        steps.len(),
        fixture.len(),
        "derived Table 4 drifted from the frozen fixture"
    );
    for (d, f) in steps.iter().zip(&fixture) {
        assert_eq!(
            (d.name, d.pmult, d.cmult, d.smult, d.hadd),
            (f.name, f.pmult, f.cmult, f.smult, f.hadd),
            "derived Table 4 drifted from the frozen fixture"
        );
    }
    let mut rows: Vec<Vec<String>> = steps
        .iter()
        .map(|s| {
            vec![
                s.name.to_string(),
                s.pmult.to_string(),
                s.cmult.to_string(),
                s.smult.to_string(),
                s.hadd.to_string(),
                s.noise_bits(&m).to_string(),
            ]
        })
        .collect();
    rows.push(vec![
        "Total".into(),
        steps.iter().map(|s| s.pmult).sum::<u32>().to_string(),
        steps.iter().map(|s| s.cmult).sum::<u32>().to_string(),
        steps.iter().map(|s| s.smult).sum::<u32>().to_string(),
        steps.iter().map(|s| s.hadd).sum::<u32>().to_string(),
        total_noise_bits(&steps, &m).to_string(),
    ]);
    println!("Table 4: maximum noise (bits) per Athena step (paper: 37/43/558/68, total 706)");
    println!("(rows derived from StepProfile::athena_production; frozen fixture matched)");
    println!(
        "{}",
        render_table(
            &[
                "Step",
                "PMult d",
                "CMult d",
                "SMult d",
                "HAdd d",
                "Noise (bits)"
            ],
            &rows
        )
    );
    println!(
        "Headroom: Δ = {} bits, Δ/2 = {} bits.",
        m.delta_bits(),
        m.headroom_bits()
    );
}
