//! Allocation telemetry of the plan executor: limb-buffer checkout
//! counters (`athena_math::stats::alloc_stats`) for a cold and a warm
//! encrypted run of the reference model, whole-run and per step.
//!
//! Writes `reports/alloc.txt`. Only **thread-count-invariant** values are
//! printed — checkout and drop totals are determined by the executed ops,
//! and the warm-run invariant `fresh == 0` is scheduling-independent — so
//! CI regenerates this file in both `ATHENA_THREADS` legs and fails on
//! any diff against the committed copy. (The `fresh`/pooled split of the
//! *cold* run depends on thread interleaving and is deliberately
//! omitted.)

use athena_bench::render_table;
use athena_core::pipeline::AthenaEngine;
use athena_core::plan;
use athena_core::plan::InferenceSession;
use athena_fhe::params::BfvParams;
use athena_math::sampler::Sampler;
use athena_math::stats::alloc_stats;
use athena_nn::qmodel::{Activation, QLinear, QModel, QNode, QOp, QuantConfig};
use athena_nn::tensor::ITensor;

/// The reference model: conv 1→2 3×3 on 5×5 (bias), then FC 18→3 (bias) —
/// the same shape the tier-1 inference tests pin.
fn reference_model() -> QModel {
    let conv_w: Vec<i64> = (0..2 * 9).map(|i| ((i % 5) as i64) - 2).collect();
    let fc_w: Vec<i64> = (0..3 * 18).map(|i| ((i % 3) as i64) - 1).collect();
    QModel {
        nodes: vec![
            QNode {
                op: QOp::Linear(QLinear {
                    weight: ITensor::from_vec(&[2, 1, 3, 3], conv_w),
                    bias: vec![1, -2],
                    stride: 1,
                    padding: 0,
                    is_fc: false,
                    act: Activation::ReLU,
                    in_scale: 0.5,
                    w_scale: 0.5,
                    out_scale: 1.0,
                }),
                input: 0,
                skip: None,
            },
            QNode {
                op: QOp::Linear(QLinear {
                    weight: ITensor::from_vec(&[3, 18, 1, 1], fc_w),
                    bias: vec![0, 1, -1],
                    stride: 1,
                    padding: 0,
                    is_fc: true,
                    act: Activation::Identity,
                    in_scale: 1.0,
                    w_scale: 0.5,
                    out_scale: 1.0,
                }),
                input: 1,
                skip: None,
            },
        ],
        input_scale: 0.5,
        cfg: QuantConfig::new(3, 3),
    }
}

fn main() {
    let model = reference_model();
    let input = ITensor::from_vec(&[1, 5, 5], (0..25).map(|i| ((i % 5) as i64) - 2).collect());
    let mut out = String::new();
    out.push_str("Scratch-arena allocation telemetry (params: test_small)\n");
    out.push_str(
        "Thread-invariant values only: checkout/drop totals are determined by\n\
         the executed ops; the fresh/pooled split of a cold run depends on\n\
         thread interleaving and is not printed.\n\n",
    );

    // Session-level reservation: the arena lease each cached plan holds.
    {
        let mut session = InferenceSession::new(AthenaEngine::new(BfvParams::test_small()), 4, 42);
        session.plan_for(&model, input.shape());
        out.push_str(&format!(
            "arena reservation per cached plan: {} bytes\n\n",
            session.stats().arena_reserved
        ));
    }

    let engine = AthenaEngine::new(BfvParams::test_small());
    let compiled = plan::compile(&engine, &model, input.shape());
    let mut sampler = Sampler::from_seed(777);
    let (secrets, keys) = engine.keygen_for_plan(&compiled, &mut sampler);

    let (cold, cold_counts) = alloc_stats::measure(|| {
        plan::execute(&engine, &secrets, &keys, &compiled, &input, &mut sampler)
    });
    let (warm, warm_counts) = alloc_stats::measure(|| {
        plan::execute(&engine, &secrets, &keys, &compiled, &input, &mut sampler)
    });
    drop(cold);

    out.push_str("== whole-run limb-buffer counters ==\n\n");
    out.push_str(&render_table(
        &["run", "takes", "fresh", "drops"],
        &[
            vec![
                "cold".into(),
                cold_counts.takes.to_string(),
                "(not pinned)".into(),
                (cold_counts.recycled + cold_counts.freed).to_string(),
            ],
            vec![
                "warm".into(),
                warm_counts.takes.to_string(),
                warm_counts.fresh.to_string(),
                (warm_counts.recycled + warm_counts.freed).to_string(),
            ],
        ],
    ));
    out.push_str(&format!(
        "\nsteady-state invariant: warm fresh == 0 ({} of {} checkouts pooled)\n\n",
        warm_counts.pooled(),
        warm_counts.takes
    ));

    out.push_str("== per-step checkout totals (warm run) ==\n\n");
    let rows: Vec<Vec<String>> = warm
        .steps
        .iter()
        .map(|s| {
            vec![
                format!("{}.{}", s.node, s.step),
                s.label.to_string(),
                s.phase.name().to_string(),
                s.alloc.takes.to_string(),
                s.alloc.fresh.to_string(),
            ]
        })
        .collect();
    out.push_str(&render_table(
        &["step", "op", "phase", "takes", "fresh"],
        &rows,
    ));
    let step_takes: u64 = warm.steps.iter().map(|s| s.alloc.takes).sum();
    let step_fresh: u64 = warm.steps.iter().map(|s| s.alloc.fresh).sum();
    out.push_str(&format!(
        "\nstep totals: takes {step_takes}, fresh {step_fresh} \
         (input encryption accounts for the whole-run remainder)\n"
    ));

    print!("{out}");
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../reports");
    let path = dir.join("alloc.txt");
    if let Err(e) = std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, &out)) {
        eprintln!("could not write {}: {e}", path.display());
    } else {
        eprintln!("wrote {}", path.display());
    }
}
