//! Table 9: area and power breakdown.

use athena_accel::config::{floorplan, total_area_mm2, total_power_w};
use athena_bench::render_table;

fn main() {
    let mut rows: Vec<Vec<String>> = floorplan()
        .iter()
        .map(|c| {
            vec![
                c.name.to_string(),
                format!("{:.2}", c.area_mm2),
                format!("{:.2}", c.peak_power_w),
            ]
        })
        .collect();
    rows.push(vec![
        "Sum".into(),
        format!("{:.1}", total_area_mm2()),
        format!("{:.1}", total_power_w()),
    ]);
    println!("Table 9: area and power breakdown @1 GHz, 7nm (paper totals: 116.4 mm^2, 148.1 W)");
    println!(
        "{}",
        render_table(&["Component", "Area [mm^2]", "Peak Power [W]"], &rows)
    );
    println!("Baselines: CraterLake 222.7 mm^2 (~207 W), ARK 418.3 (281.3), BTS 373.6 (133.8), SHARP 178.8.");
    println!(
        "Area reduction vs SHARP: {:.2}x (paper: 1.53x)",
        178.8 / total_area_mm2()
    );
}
