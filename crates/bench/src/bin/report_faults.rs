//! The fault-injection report: every fault kind at every step index of
//! the tier-1 reference model, the typed [`AthenaError`] each one
//! surfaces as, and the recovery invariant (a clean run after every
//! faulted run stays bit-identical to the unfaulted baseline).
//!
//! Writes `reports/faults.txt`. Everything here is seeded and exact — no
//! timings, no thread-sensitive state — so the output is deterministic
//! and thread-count invariant; CI regenerates it in both `ATHENA_THREADS`
//! legs and diffs it against the committed copy.

use std::collections::BTreeMap;
use std::time::Duration;

use athena_bench::render_table;
use athena_core::pipeline::{AthenaEngine, PackingMethod};
use athena_core::plan::{
    self, AthenaError, FaultKind, FaultPlan, FaultSpec, RetryPolicy, RunPolicy,
};
use athena_fhe::params::BfvParams;
use athena_math::sampler::Sampler;
use athena_nn::qmodel::{Activation, QLinear, QModel, QNode, QOp, QuantConfig};
use athena_nn::tensor::ITensor;

/// conv 1→2 3×3 on 5×5 + FC 18→3 — the tier-1 reference shape.
fn conv_model() -> QModel {
    let linear = |shape: &[usize], w: Vec<i64>, bias: Vec<i64>, is_fc: bool, input: usize| QNode {
        op: QOp::Linear(QLinear {
            weight: ITensor::from_vec(shape, w),
            bias,
            stride: 1,
            padding: 0,
            is_fc,
            act: if is_fc {
                Activation::Identity
            } else {
                Activation::ReLU
            },
            in_scale: 0.5,
            w_scale: 0.5,
            out_scale: 1.0,
        }),
        input,
        skip: None,
    };
    let conv_w: Vec<i64> = (0..2 * 9).map(|i| ((i % 5) as i64) - 2).collect();
    let fc_w: Vec<i64> = (0..3 * 18).map(|i| ((i % 3) as i64) - 1).collect();
    QModel {
        nodes: vec![
            linear(&[2, 1, 3, 3], conv_w, vec![1, -2], false, 0),
            linear(&[3, 18, 1, 1], fc_w, vec![0, 1, -1], true, 1),
        ],
        input_scale: 0.5,
        cfg: QuantConfig::new(3, 3),
    }
}

const KINDS: [FaultKind; 4] = [
    FaultKind::Panic,
    FaultKind::CorruptLimb,
    FaultKind::NoiseSpike { bits: 60_000 },
    FaultKind::SlowStep { millis: 0 },
];

fn sweep_section(out: &mut String, method: PackingMethod, seed: u64) {
    let model = conv_model();
    let input = ITensor::from_vec(&[1, 5, 5], (0..25).map(|i| ((i % 5) as i64) - 2).collect());
    let engine = AthenaEngine::with_packing(BfvParams::test_small(), method);
    let compiled = plan::compile(&engine, &model, input.shape());
    let mut key_sampler = Sampler::from_seed(seed);
    let (secrets, keys) = engine.keygen_for_plan(&compiled, &mut key_sampler);

    let run_with = |policy: &RunPolicy| {
        let mut sampler = Sampler::from_seed(seed ^ 0x66_61_75_6c_74_73_21_21);
        plan::execute_resilient(
            &engine,
            &secrets,
            &keys,
            &compiled,
            &input,
            &mut sampler,
            policy,
            1,
            None,
        )
    };
    let baseline = run_with(&RunPolicy::default()).expect("baseline clean run");

    let labels: Vec<(usize, usize, &'static str)> = compiled
        .layers
        .iter()
        .flat_map(|l| {
            l.steps
                .iter()
                .enumerate()
                .map(|(si, s)| (l.node, si, s.op.label()))
        })
        .collect();

    out.push_str(&format!(
        "\n== {method:?} — {} flat steps, fresh budget probed per faulted run ==\n\n",
        labels.len()
    ));
    let mut rows = Vec::new();
    let mut outcome_counts: BTreeMap<String, usize> = BTreeMap::new();
    let mut recoveries_ok = 0usize;
    let mut faulted_runs = 0usize;
    for (k, &(node, si, label)) in labels.iter().enumerate() {
        let mut row = vec![format!("{node}.{si}"), label.to_string()];
        for kind in KINDS {
            let policy = RunPolicy::default()
                .with_probe()
                .with_faults(FaultPlan::new(seed, vec![FaultSpec::at(k, kind)]));
            let outcome = match run_with(&policy) {
                Ok(run) => {
                    if run.logits == baseline.logits {
                        "ok".to_string()
                    } else {
                        "OK-BUT-DIVERGED".to_string()
                    }
                }
                Err(e) => e.kind().to_string(),
            };
            *outcome_counts.entry(outcome.clone()).or_default() += 1;
            row.push(outcome);
            faulted_runs += 1;
            let recovered = run_with(&RunPolicy::default()).expect("recovery clean run");
            if recovered.logits == baseline.logits {
                recoveries_ok += 1;
            }
        }
        rows.push(row);
    }
    out.push_str(&render_table(
        &[
            "step",
            "op",
            "panic",
            "corrupt-limb",
            "noise-spike",
            "slow-step",
        ],
        &rows,
    ));
    out.push_str("\noutcome totals: ");
    let totals: Vec<String> = outcome_counts
        .iter()
        .map(|(k, v)| format!("{k} ×{v}"))
        .collect();
    out.push_str(&totals.join(", "));
    out.push_str(&format!(
        "\nrecovery after every faulted run bit-identical to baseline: {}/{}\n",
        recoveries_ok, faulted_runs
    ));
    assert_eq!(
        recoveries_ok, faulted_runs,
        "a faulted run leaked state into a later clean run"
    );

    // Policy behaviors, pinned: a zero deadline fails typed before step 0,
    // and a transient panic recovers under a 2-attempt retry policy.
    let deadline_err =
        run_with(&RunPolicy::default().with_deadline(Duration::ZERO)).expect_err("zero deadline");
    out.push_str(&format!(
        "zero-deadline request: {} ({deadline_err})\n",
        deadline_err.kind()
    ));
    // The retry loop lives in the session layer (execute_resilient is the
    // single-attempt primitive), so the demonstration goes through one.
    let mut session = plan::InferenceSession::new(
        AthenaEngine::with_packing(BfvParams::test_small(), method),
        2,
        seed,
    );
    let mut sampler = Sampler::from_seed(seed ^ 0x72_65_74_72_79_21_21_21);
    let retried = session.run_encrypted_with(
        &model,
        &input,
        &mut sampler,
        &RunPolicy::default()
            .with_faults(FaultPlan::new(
                seed,
                vec![FaultSpec::at(2, FaultKind::Panic).on_attempt(1)],
            ))
            .with_retry(RetryPolicy {
                max_attempts: 2,
                backoff: Duration::ZERO,
            }),
    );
    out.push_str(&format!(
        "transient panic under 2-attempt retry: {}\n",
        match &retried {
            Ok(_) => "recovered on attempt 2".to_string(),
            Err(e) => format!("FAILED ({e})"),
        }
    ));
    assert!(retried.is_ok(), "retry must recover a transient fault");
}

fn taxonomy_table(out: &mut String) {
    let samples: Vec<AthenaError> = vec![
        AthenaError::Compile(plan::CompileError::NoiseBudget {
            chain_bits: 342,
            budget_bits: 241,
            margin: 0,
        }),
        AthenaError::ShapeMismatch {
            input: 2,
            expected: vec![1, 5, 5],
            got: vec![1, 4, 4],
        },
        AthenaError::NoiseExhausted(plan::NoiseExhausted {
            node: 1,
            step: 4,
            label: "fbs",
            budget: -3,
            analytic_bits: 40,
            consumed: Some(43),
        }),
        AthenaError::KeyMissing {
            node: 0,
            step: 6,
            label: "s2c",
            element: 3,
            available: vec![5, 9],
        },
        AthenaError::Fhe {
            node: 0,
            step: 4,
            label: "pack",
            source: athena_fhe::FheError::PackCapacity {
                lwes: 200,
                slots: 128,
            },
        },
        AthenaError::DeadlineExceeded {
            node: 0,
            step: 0,
            label: "linear",
            deadline: Duration::from_millis(5),
        },
        AthenaError::StepPanicked {
            node: 0,
            step: 1,
            label: "mod_switch",
            payload: "injected fault".into(),
        },
        AthenaError::PoolPoisoned {
            recoveries: 1,
            payload: "injected fault".into(),
        },
    ];
    let rows: Vec<Vec<String>> = samples
        .iter()
        .map(|e| {
            vec![
                e.kind().to_string(),
                if e.is_transient() {
                    "transient (retried)".into()
                } else {
                    "deterministic (fail fast)".into()
                },
            ]
        })
        .collect();
    out.push_str("Error taxonomy and retry classification:\n\n");
    out.push_str(&render_table(&["kind", "retry class"], &rows));
}

fn main() {
    let mut out = String::new();
    out.push_str(
        "Fault-injection sweep: every fault kind at every flat step index of\n\
         the tier-1 reference model (params: test_small, probe on), the typed\n\
         error each surfaces as, and the quarantine-recovery invariant. A\n\
         `slow-step` of 0 ms and sub-budget faults legitimately complete —\n\
         `ok` means bit-identical to the unfaulted baseline.\n\n",
    );
    taxonomy_table(&mut out);
    sweep_section(&mut out, PackingMethod::Column, 11_000);
    sweep_section(&mut out, PackingMethod::Bsgs, 11_001);

    print!("{out}");
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../reports");
    let path = dir.join("faults.txt");
    if let Err(e) = std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, &out)) {
        eprintln!("could not write {}: {e}", path.display());
    } else {
        eprintln!("wrote {}", path.display());
    }
}
