//! Fig. 11: energy-delay-area product.

use athena_accel::baselines::{baseline_edp, baselines};
use athena_accel::config::total_area_mm2;
use athena_accel::sim::AthenaSim;
use athena_bench::render_table;
use athena_nn::models::ModelSpec;
use athena_nn::qmodel::QuantConfig;

fn main() {
    let specs = [
        ModelSpec::lenet(),
        ModelSpec::mnist(),
        ModelSpec::resnet(3),
        ModelSpec::resnet(9),
    ];
    let mut rows = Vec::new();
    for b in baselines() {
        let mut row = vec![b.name.to_string()];
        for spec in &specs {
            row.push(format!("{:.2}", baseline_edp(&b, spec) * b.area_mm2));
        }
        rows.push(row);
    }
    let sim = AthenaSim::athena();
    let area = total_area_mm2();
    for (label, cfg) in [
        ("Athena-w7a7", QuantConfig::w7a7()),
        ("Athena-w6a7", QuantConfig::w6a7()),
    ] {
        let mut row = vec![label.to_string()];
        for spec in &specs {
            row.push(format!("{:.2}", sim.run_model(spec, &cfg).edap(area)));
        }
        rows.push(row);
    }
    println!("Fig. 11: EDAP (J*s*mm^2), lower is better");
    println!(
        "{}",
        render_table(
            &["Accelerator", "LeNet", "MNIST", "ResNet-20", "ResNet-56"],
            &rows
        )
    );
    let a = sim
        .run_model(&ModelSpec::resnet(3), &QuantConfig::w7a7())
        .edap(area);
    let sharp = baseline_edp(&baselines()[3], &ModelSpec::resnet(3)) * baselines()[3].area_mm2;
    println!(
        "EDAP improvement vs SHARP on ResNet-20: {:.1}x (paper claims 3.8x-9.9x EDAP gains)",
        sharp / a
    );
}
