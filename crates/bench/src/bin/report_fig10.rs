//! Fig. 10: full-system energy consumption and breakdown.

use athena_accel::sim::AthenaSim;
use athena_bench::render_table;
use athena_nn::models::ModelSpec;
use athena_nn::qmodel::QuantConfig;

fn main() {
    let sim = AthenaSim::athena();
    let mut rows = Vec::new();
    for (label, cfg) in [("w7a7", QuantConfig::w7a7()), ("w6a7", QuantConfig::w6a7())] {
        for spec in [
            ModelSpec::lenet(),
            ModelSpec::mnist(),
            ModelSpec::resnet(3),
            ModelSpec::resnet(9),
        ] {
            let r = sim.run_model(&spec, &cfg);
            let mut row = vec![
                format!("{} {}", spec.name, label),
                format!("{:.2} J", r.energy_j),
            ];
            for (unit, e) in &r.unit_energy_j {
                row.push(format!("{}: {:.0}%", unit, 100.0 * e / r.energy_j));
            }
            rows.push(row);
        }
    }
    println!("Fig. 10: energy and breakdown");
    println!(
        "{}",
        render_table(
            &["Model", "Total", "NTT", "FRU", "Autom", "SE", "NoC", "Memory"],
            &rows
        )
    );
    println!("Paper shape: memory ~50% of energy; FRU is the largest compute consumer;");
    println!("w6a7 slightly reduces the FRU share (smaller LUTs).");
}
