//! Table 6: full-system latency vs the baseline accelerators.

use athena_accel::baselines::{baseline_latency_ms, baselines};
use athena_accel::sim::AthenaSim;
use athena_bench::render_table;
use athena_nn::models::ModelSpec;
use athena_nn::qmodel::QuantConfig;

fn main() {
    let specs = [
        ModelSpec::lenet(),
        ModelSpec::mnist(),
        ModelSpec::resnet(3),
        ModelSpec::resnet(9),
    ];
    let paper: &[(&str, [f64; 4])] = &[
        ("CraterLake", [182.0, 35.0, 321.0, 946.0]),
        ("ARK", [71.0, 14.0, 125.0, 368.0]),
        ("BTS", [1084.0, 206.0, 1910.0, 5627.0]),
        ("SHARP", [56.0, 11.0, 99.0, 292.0]),
        ("Athena-w7a7", [26.6, 9.2, 65.5, 198.7]),
        ("Athena-w6a7", [24.1, 7.3, 54.9, 157.8]),
    ];
    let mut rows = Vec::new();
    for b in baselines() {
        let mut row = vec![b.name.to_string()];
        for spec in &specs {
            row.push(format!("{:.1}", baseline_latency_ms(&b, spec)));
        }
        rows.push(row);
    }
    let sim = AthenaSim::athena();
    for (label, cfg) in [
        ("Athena-w7a7", QuantConfig::w7a7()),
        ("Athena-w6a7", QuantConfig::w6a7()),
    ] {
        let mut row = vec![label.to_string()];
        for spec in &specs {
            row.push(format!("{:.1}", sim.run_model(spec, &cfg).latency_ms));
        }
        rows.push(row);
    }
    println!("Table 6: execution time (ms) — ours");
    println!(
        "{}",
        render_table(
            &["Accelerator", "LeNet", "MNIST", "ResNet-20", "ResNet-56"],
            &rows
        )
    );
    println!("Paper values:");
    let paper_rows: Vec<Vec<String>> = paper
        .iter()
        .map(|(n, v)| {
            let mut r = vec![n.to_string()];
            r.extend(v.iter().map(|x| format!("{x}")));
            r
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["Accelerator", "LeNet", "MNIST", "ResNet-20", "ResNet-56"],
            &paper_rows
        )
    );
    // Shape summary
    let a7 = sim
        .run_model(&ModelSpec::resnet(3), &QuantConfig::w7a7())
        .latency_ms;
    let sharp = baseline_latency_ms(&baselines()[3], &ModelSpec::resnet(3));
    println!(
        "Speedup vs SHARP on ResNet-20: {:.2}x (paper: 1.51x)",
        sharp / a7
    );
}
