//! Table 5: accuracy of plain-G / plain-Q / ciphertext (simulated) for all
//! four benchmarks, at w7a7 and w6a7.
//!
//! Weights come from training on deterministic synthetic datasets (the
//! paper's MNIST/CIFAR-10 are not available offline — see DESIGN.md §2);
//! the reproduced quantity is the *delta* between plain-Q and ciphertext
//! inference, which the paper reports as ≤ 0.24 %.
//!
//! Set `ATHENA_BUDGET=full` for larger training/eval budgets.

use athena_bench::{pct, render_table, train_model, Budget};
use athena_core::simulate::{simulated_accuracy, NoiseSpec};
use athena_math::sampler::Sampler;
use athena_nn::models::ModelKind;
use athena_nn::qmodel::QuantConfig;

fn main() {
    let budget = Budget::from_env();
    let mut rows = Vec::new();
    for kind in ModelKind::all() {
        eprintln!("[table5] training {} ({budget:?})...", kind.name());
        let tm = train_model(kind, budget, 0xA7EA);
        let mut row = vec![kind.name().to_string(), pct(tm.plain_g_acc)];
        for cfg in [QuantConfig::w7a7(), QuantConfig::w6a7()] {
            let qm = tm.quantized(cfg);
            let pq = tm.plain_q_acc(&qm);
            let mut s = Sampler::from_seed(0xC1FE);
            let cipher = simulated_accuracy(
                &qm,
                &tm.test.images,
                &tm.test.labels,
                &NoiseSpec::athena_production(),
                &mut s,
            );
            row.push(pct(pq));
            row.push(format!("{} ({:+.2})", pct(cipher), 100.0 * (cipher - pq)));
        }
        rows.push(row);
    }
    println!("Table 5: accuracy under plaintext and (simulated) ciphertext inference");
    println!(
        "{}",
        render_table(
            &[
                "Model",
                "plain-G %",
                "w7a7 plain-Q",
                "w7a7 cipher (Δ)",
                "w6a7 plain-Q",
                "w6a7 cipher (Δ)"
            ],
            &rows
        )
    );
    println!("Paper deltas (cipher − plain-Q): −0.01..−0.24 % across models/modes.");
}
