//! Table 3: computational complexity comparison.

use athena_bench::render_table;
use athena_core::complexity::{table3, ComplexityParams};

fn main() {
    let p = ComplexityParams::default();
    let rows: Vec<Vec<String>> = table3(&p)
        .iter()
        .map(|r| {
            vec![
                r.solution.to_string(),
                r.operation.to_string(),
                format!("{} = {}", r.pmult.0, r.pmult.1),
                format!("{} = {}", r.cmult.0, r.cmult.1),
                format!("{} = {}", r.hrot.0, r.hrot.1),
            ]
        })
        .collect();
    println!("Table 3: op-count complexity (N=2^15, f=3, C=32, p=27, r=31, t=65537)");
    println!(
        "{}",
        render_table(&["Solution", "Op", "# PMult", "# CMult", "# HRot"], &rows)
    );
}
