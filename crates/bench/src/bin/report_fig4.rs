//! Fig. 4: per-layer max MAC (t-headroom, orange) and e_ms error ratio
//! (blue) for ResNet-20 under w7a7.

use athena_bench::{render_table, train_model, Budget};
use athena_core::simulate::{max_mac_per_layer, per_layer_error_ratio, NoiseSpec};
use athena_math::sampler::Sampler;
use athena_nn::models::ModelKind;
use athena_nn::qmodel::QuantConfig;

fn main() {
    let budget = Budget::from_env();
    eprintln!("[fig4] training ResNet-20 ({budget:?})...");
    let tm = train_model(ModelKind::ResNet20, budget, 0xA7EA);
    let qm = tm.quantized(QuantConfig::w7a7());
    let probe: Vec<_> = tm.test.images.iter().take(24).cloned().collect();
    let macs = max_mac_per_layer(&qm, &probe);
    let mut s = Sampler::from_seed(4242);
    let ratios = per_layer_error_ratio(&qm, &probe, &NoiseSpec::athena_production(), &mut s);
    let rows: Vec<Vec<String>> = macs
        .iter()
        .zip(&ratios)
        .enumerate()
        .map(|(i, (&m, &r))| {
            vec![
                i.to_string(),
                m.to_string(),
                format!("{:.2}", (m.max(1) as f64).log2()),
                format!("{:.2}%", 100.0 * r),
            ]
        })
        .collect();
    println!("Fig. 4: ResNet-20 w7a7 — max |MAC| and error ratio per layer (t = 65537)");
    println!(
        "{}",
        render_table(&["layer", "max |MAC|", "log2", "error ratio"], &rows)
    );
    let worst = macs.iter().copied().max().unwrap_or(0);
    println!(
        "Max MAC {} {} t/2 = 32768 — t = 65537 holds the accumulators (paper's orange line).",
        worst,
        if worst < 32768 { "<" } else { ">=" }
    );
    println!("Paper: most layers < 6% error ratio, max < 11% (final raw-logit layer excluded).");
}
