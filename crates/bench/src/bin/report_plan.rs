//! The execution-plan report: compiles a small reference model into the
//! typed plan IR, prints the step program, validates the plan's analytic
//! per-step op counts against counter-measured counts from a real encrypted
//! run, and accounts the Galois-key dedup (one merged key set sized from
//! the plan vs per-consumer sets).
//!
//! Writes `reports/plan.txt`.

use athena_bench::render_table;
use athena_core::pipeline::{AthenaEngine, PackingMethod};
use athena_core::plan;
use athena_core::trace::OpCounts;
use athena_fhe::pack::BsgsPackingKey;
use athena_fhe::params::BfvParams;
use athena_math::sampler::Sampler;
use athena_nn::qmodel::{Activation, QLinear, QModel, QNode, QOp, QuantConfig};
use athena_nn::tensor::ITensor;

/// The reference model: conv 1→2 3×3 on 5×5 (bias), then FC 18→3 (bias) —
/// the same shape the tier-1 inference tests pin.
fn reference_model() -> QModel {
    let conv_w: Vec<i64> = (0..2 * 9).map(|i| ((i % 5) as i64) - 2).collect();
    let fc_w: Vec<i64> = (0..3 * 18).map(|i| ((i % 3) as i64) - 1).collect();
    QModel {
        nodes: vec![
            QNode {
                op: QOp::Linear(QLinear {
                    weight: ITensor::from_vec(&[2, 1, 3, 3], conv_w),
                    bias: vec![1, -2],
                    stride: 1,
                    padding: 0,
                    is_fc: false,
                    act: Activation::ReLU,
                    in_scale: 0.5,
                    w_scale: 0.5,
                    out_scale: 1.0,
                }),
                input: 0,
                skip: None,
            },
            QNode {
                op: QOp::Linear(QLinear {
                    weight: ITensor::from_vec(&[3, 18, 1, 1], fc_w),
                    bias: vec![0, 1, -1],
                    stride: 1,
                    padding: 0,
                    is_fc: true,
                    act: Activation::Identity,
                    in_scale: 1.0,
                    w_scale: 0.5,
                    out_scale: 1.0,
                }),
                input: 1,
                skip: None,
            },
        ],
        input_scale: 0.5,
        cfg: QuantConfig::new(3, 3),
    }
}

fn fmt_counts(c: &OpCounts) -> String {
    let mut parts = Vec::new();
    for (v, name) in [
        (c.pmult, "pm"),
        (c.cmult, "cm"),
        (c.smult, "sm"),
        (c.hadd, "ha"),
        (c.hrot, "hr"),
        (c.sample_extract, "se"),
        (c.mod_switch, "ms"),
    ] {
        if v != 0 {
            parts.push(format!("{name}:{v}"));
        }
    }
    if parts.is_empty() {
        "-".into()
    } else {
        parts.join(" ")
    }
}

fn main() {
    let model = reference_model();
    let input = ITensor::from_vec(&[1, 5, 5], (0..25).map(|i| ((i % 5) as i64) - 2).collect());
    let mut out = String::new();
    out.push_str("Execution-plan IR: step program, analytic-vs-measured op counts,\n");
    out.push_str("and plan-driven Galois dedup (params: test_small)\n");
    out.push_str(
        "counts: pm=PMult cm=CMult sm=SMult ha=HAdd hr=HRot se=SampleExtract ms=ModSwitch\n",
    );

    for method in [PackingMethod::Column, PackingMethod::Bsgs] {
        let engine = AthenaEngine::with_packing(BfvParams::test_small(), method);
        let ctx = engine.context();
        let compiled = plan::compile(&engine, &model, input.shape());
        let mut sampler = Sampler::from_seed(777);
        let (secrets, keys) = engine.keygen_for_plan(&compiled, &mut sampler);
        let run = plan::execute(&engine, &secrets, &keys, &compiled, &input, &mut sampler);

        out.push_str(&format!(
            "\n== packing: {method:?} — {} layers, {} steps ==\n\n",
            compiled.layers.len(),
            compiled.step_count()
        ));

        // Per-step analytic vs measured.
        let rows: Vec<Vec<String>> = run
            .steps
            .iter()
            .map(|s| {
                vec![
                    format!("{}.{}", s.node, s.step),
                    s.label.to_string(),
                    s.phase.name().to_string(),
                    fmt_counts(&s.analytic),
                    fmt_counts(&s.measured),
                    if s.analytic == s.measured { "=" } else { "!" }.to_string(),
                ]
            })
            .collect();
        out.push_str(&render_table(
            &["step", "op", "phase", "analytic", "measured", "ok"],
            &rows,
        ));
        let mismatches = run
            .steps
            .iter()
            .filter(|s| s.analytic != s.measured)
            .count();
        let (a_tot, m_tot) = run.steps.iter().fold(
            (OpCounts::default(), OpCounts::default()),
            |(mut a, mut m), s| {
                a.add(&s.analytic);
                m.add(&s.measured);
                (a, m)
            },
        );
        out.push_str(&format!(
            "\ntotal analytic: {}\ntotal measured: {}\nmismatching steps: {mismatches}\n",
            fmt_counts(&a_tot),
            fmt_counts(&m_tot)
        ));
        out.push_str(&format!(
            "logits: {:?}\n",
            run.logits.iter().map(|v| *v as f32).collect::<Vec<_>>()
        ));

        // Galois dedup accounting: per-consumer sets vs the merged plan set.
        let ks = ctx.params().keyswitch_key_bytes();
        let s2c = engine.slot_to_coeff().required_galois_elements(ctx);
        let bsgs = match method {
            PackingMethod::Bsgs => {
                BsgsPackingKey::required_galois_elements_for(ctx, ctx.params().lwe_n)
            }
            PackingMethod::Column => Vec::new(),
        };
        let merged = &compiled.required_keys().galois;
        let separate = s2c.len() + bsgs.len();
        out.push_str(&format!(
            "\ngalois elements: s2c {} + bsgs {} = {} per-consumer; merged {} \
             (saved {} keys, {} bytes)\n",
            s2c.len(),
            bsgs.len(),
            separate,
            merged.len(),
            separate - merged.len(),
            (separate - merged.len()) * ks
        ));
        out.push_str(&format!(
            "eval-key bytes: {} (merged) vs {} (per-consumer sets)\n",
            keys.bytes(ctx),
            keys.bytes(ctx) + (separate - merged.len()) * ks
        ));
    }

    print!("{out}");
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../reports");
    let path = dir.join("plan.txt");
    if let Err(e) = std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, &out)) {
        eprintln!("could not write {}: {e}", path.display());
    } else {
        eprintln!("wrote {}", path.display());
    }
}
