//! Fig. 9: execution-time breakdown per phase.

use athena_accel::sim::AthenaSim;
use athena_bench::render_table;
use athena_nn::models::ModelSpec;
use athena_nn::qmodel::QuantConfig;

fn main() {
    let sim = AthenaSim::athena();
    let mut rows = Vec::new();
    for spec in [
        ModelSpec::lenet(),
        ModelSpec::mnist(),
        ModelSpec::resnet(3),
        ModelSpec::resnet(9),
    ] {
        let r = sim.run_model(&spec, &QuantConfig::w7a7());
        let total: f64 = r.phase_costs.iter().map(|(_, c)| c.cycles).sum();
        let mut row = vec![spec.name.to_string()];
        for (p, c) in &r.phase_costs {
            row.push(format!("{}: {:.1}%", p.name(), 100.0 * c.cycles / total));
        }
        rows.push(row);
    }
    println!("Fig. 9: execution-time breakdown (w7a7)");
    println!(
        "{}",
        render_table(
            &[
                "Model",
                "Linear",
                "Convert",
                "Activation",
                "Pooling",
                "Softmax"
            ],
            &rows
        )
    );
    println!("Paper shape: non-linear (FBS) share is the largest, up to 72%; LeNet's max-pooling");
    println!("inflates its pooling share; MNIST/LeNet have relatively higher softmax share.");
}
