//! Fig. 8: the Athena framework deployed on CraterLake / SHARP vs the
//! Athena accelerator.

use athena_accel::baselines::{athena_workload_on_baseline, baselines, mma_share_on_baseline};
use athena_accel::sim::AthenaSim;
use athena_bench::render_table;
use athena_nn::models::ModelSpec;
use athena_nn::qmodel::QuantConfig;

fn main() {
    let q = QuantConfig::w7a7();
    let specs = [
        ModelSpec::lenet(),
        ModelSpec::mnist(),
        ModelSpec::resnet(3),
        ModelSpec::resnet(9),
    ];
    let sim = AthenaSim::athena();
    let mut rows = Vec::new();
    for spec in &specs {
        let ours = sim.run_model(spec, &q).latency_ms;
        let mut row = vec![spec.name.to_string(), format!("{ours:.1}")];
        for b in baselines() {
            if b.name == "CraterLake" || b.name == "SHARP" {
                let ms = athena_workload_on_baseline(&b, spec, &q);
                let share = mma_share_on_baseline(&b, spec, &q);
                row.push(format!(
                    "{ms:.0} ({:.1}x, MM/MA {:.0}%)",
                    ms / ours,
                    100.0 * share
                ));
            }
        }
        rows.push(row);
    }
    println!("Fig. 8: Athena framework latency (ms) on each machine");
    println!(
        "{}",
        render_table(&["Model", "Athena accel", "CraterLake", "SHARP"], &rows)
    );
    println!("Paper: CraterLake >= 3.8x slower (MM/MA > 77%), SHARP >= 9.9x slower (MM/MA > 84%).");
}
