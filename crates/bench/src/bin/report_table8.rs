//! Table 8: memory comparison.

use athena_accel::memory::{athena_working_set_mb, table8};
use athena_bench::render_table;

fn main() {
    let rows: Vec<Vec<String>> = table8()
        .iter()
        .map(|m| {
            vec![
                m.name.to_string(),
                format!("{} GB", m.hbm_gb),
                format!("{} TB/s", m.hbm_tbs),
                format!("{}+{} MB", m.scratchpad_mb.0, m.scratchpad_mb.1),
                format!("{} TB/s", m.scratchpad_tbs),
            ]
        })
        .collect();
    println!("Table 8: memory-related comparison");
    println!(
        "{}",
        render_table(
            &[
                "Accelerator",
                "HBM Cap.",
                "HBM BW",
                "Scratchpad",
                "Scratch BW"
            ],
            &rows
        )
    );
    println!(
        "Athena working set at production params: {:.1} MB (fits 45+15 MB scratchpad).",
        athena_working_set_mb(6.0)
    );
}
