//! Fig. 13: sensitivity of delay/energy/EDP/EDAP to per-unit lane scaling.

use athena_accel::sensitivity::lane_sweep;
use athena_bench::render_table;
use athena_nn::models::ModelSpec;
use athena_nn::qmodel::QuantConfig;

fn main() {
    let pts = lane_sweep(&ModelSpec::resnet(3), &QuantConfig::w7a7());
    let mut rows = Vec::new();
    for p in &pts {
        rows.push(vec![
            p.unit.name().to_string(),
            p.lanes.to_string(),
            format!("{:.2}", p.delay_norm),
            format!("{:.2}", p.energy_norm),
            format!("{:.2}", p.edp_norm),
            format!("{:.2}", p.edap_norm),
        ]);
    }
    println!("Fig. 13: lane sensitivity on ResNet-20 (normalized to 2048 lanes)");
    println!(
        "{}",
        render_table(&["Unit", "Lanes", "Delay", "Energy", "EDP", "EDAP"], &rows)
    );
    println!("Paper shape: FRU scaling hurts most, then NTT; SE is nearly free;");
    println!("Automorphism sits between NTT and SE.");
}
