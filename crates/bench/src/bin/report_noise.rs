//! The noise-accounting report: regenerates Table 4 from the derived
//! per-step model (and checks it against the frozen paper fixture
//! bit-for-bit), then cross-validates the plan compiler's analytic
//! per-step noise charges against measured invariant-noise budgets from
//! probed encrypted runs at test parameters, on both packing engines.
//!
//! Writes `reports/noise.txt`. The output is deterministic (seeded
//! samplers, exact modular arithmetic) and thread-count invariant, so CI
//! diffs it against the committed copy.

use athena_bench::render_table;
use athena_core::pipeline::{AthenaEngine, PackingMethod};
use athena_core::plan::{self, NoiseProbe};
use athena_fhe::noise::{athena_steps, derive_steps, NoiseModel, StepProfile};
use athena_fhe::params::BfvParams;
use athena_math::sampler::Sampler;
use athena_nn::qmodel::{Activation, QLinear, QModel, QNode, QOp, QuantConfig};
use athena_nn::tensor::ITensor;

fn linear_node(shape: &[usize], w: Vec<i64>, bias: Vec<i64>, is_fc: bool, input: usize) -> QNode {
    QNode {
        op: QOp::Linear(QLinear {
            weight: ITensor::from_vec(shape, w),
            bias,
            stride: 1,
            padding: 0,
            is_fc,
            act: if is_fc {
                Activation::Identity
            } else {
                Activation::ReLU
            },
            in_scale: 0.5,
            w_scale: 0.5,
            out_scale: 1.0,
        }),
        input,
        skip: None,
    }
}

/// conv 1→2 3×3 on 5×5 + FC 18→3 — the tier-1 reference shape.
fn conv_model() -> QModel {
    let conv_w: Vec<i64> = (0..2 * 9).map(|i| ((i % 5) as i64) - 2).collect();
    let fc_w: Vec<i64> = (0..3 * 18).map(|i| ((i % 3) as i64) - 1).collect();
    QModel {
        nodes: vec![
            linear_node(&[2, 1, 3, 3], conv_w, vec![1, -2], false, 0),
            linear_node(&[3, 18, 1, 1], fc_w, vec![0, 1, -1], true, 1),
        ],
        input_scale: 0.5,
        cfg: QuantConfig::new(3, 3),
    }
}

/// conv 1→2 3×3 on 6×6 + MaxPool 2 + FC 8→2 — exercises the pooling
/// composite's worst-chain charge.
fn pool_model() -> QModel {
    let conv_w: Vec<i64> = (0..2 * 9).map(|i| ((i % 3) as i64) - 1).collect();
    let fc_w: Vec<i64> = (0..2 * 8).map(|i| ((i % 3) as i64) - 1).collect();
    QModel {
        nodes: vec![
            linear_node(&[2, 1, 3, 3], conv_w, vec![1, 0], false, 0),
            QNode {
                op: QOp::MaxPool { k: 2 },
                input: 1,
                skip: None,
            },
            linear_node(&[2, 8, 1, 1], fc_w, vec![0, 0], true, 2),
        ],
        input_scale: 0.5,
        cfg: QuantConfig::new(3, 3),
    }
}

fn production_table(out: &mut String) {
    let m = NoiseModel::athena_production();
    let derived = derive_steps(&StepProfile::athena_production());
    let fixture = athena_steps();
    let mut rows: Vec<Vec<String>> = derived
        .iter()
        .map(|s| {
            vec![
                s.name.to_string(),
                s.pmult.to_string(),
                s.cmult.to_string(),
                s.smult.to_string(),
                s.hadd.to_string(),
                s.noise_bits(&m).to_string(),
            ]
        })
        .collect();
    rows.push(vec![
        "Total".into(),
        derived.iter().map(|s| s.pmult).sum::<u32>().to_string(),
        derived.iter().map(|s| s.cmult).sum::<u32>().to_string(),
        derived.iter().map(|s| s.smult).sum::<u32>().to_string(),
        derived.iter().map(|s| s.hadd).sum::<u32>().to_string(),
        athena_fhe::noise::total_noise_bits(&derived, &m).to_string(),
    ]);
    out.push_str(
        "Table 4, regenerated from the derived per-step model at the production\n\
         profile (C_in=64, lwe_n=2048, t=65537, 2-stage S2C over 64 channels).\n\
         Paper: 37/43/558/68, total 706.\n\n",
    );
    out.push_str(&render_table(
        &[
            "Step",
            "PMult d",
            "CMult d",
            "SMult d",
            "HAdd d",
            "Noise (bits)",
        ],
        &rows,
    ));
    let matches = derived.len() == fixture.len()
        && derived.iter().zip(&fixture).all(|(d, f)| {
            d.name == f.name
                && d.pmult == f.pmult
                && d.cmult == f.cmult
                && d.smult == f.smult
                && d.hadd == f.hadd
        });
    out.push_str(&format!(
        "\nderivation vs frozen paper fixture (athena_steps): {}\n",
        if matches {
            "bit-for-bit match"
        } else {
            "MISMATCH"
        }
    ));
    out.push_str(&format!(
        "headroom: Δ = {} bits, Δ/2 = {} bits\n",
        m.delta_bits(),
        m.headroom_bits()
    ));
    assert!(matches, "derived Table 4 drifted from the frozen fixture");
}

fn probed_section(out: &mut String, name: &str, model: &QModel, in_shape: &[usize], seed: u64) {
    for method in [PackingMethod::Column, PackingMethod::Bsgs] {
        let len: usize = in_shape.iter().product();
        let input = ITensor::from_vec(in_shape, (0..len).map(|i| ((i % 5) as i64) - 2).collect());
        let engine = AthenaEngine::with_packing(BfvParams::test_small(), method);
        let compiled = plan::compile(&engine, model, in_shape);
        let mut sampler = Sampler::from_seed(seed);
        let (secrets, keys) = engine.keygen_for_plan(&compiled, &mut sampler);
        let run = plan::execute_probed(
            &engine,
            &secrets,
            &keys,
            &compiled,
            &input,
            &mut sampler,
            NoiseProbe::On,
        )
        .expect("test_small has ample budget for the report models");

        let fresh = run.fresh_budget.expect("probe on");
        out.push_str(&format!(
            "\n== {name} / {method:?} — fresh budget {fresh} bits, \
             worst analytic chain {} bits ==\n\n",
            compiled.worst_chain_noise_bits()
        ));
        let rows: Vec<Vec<String>> = run
            .steps
            .iter()
            .map(|s| {
                let (budget, consumed, margin) = match (s.noise_budget, s.noise_consumed) {
                    (Some(b), Some(c)) => (
                        b.to_string(),
                        c.to_string(),
                        (i64::from(s.noise_bits) - c).to_string(),
                    ),
                    _ => ("-".into(), "-".into(), "-".into()),
                };
                vec![
                    format!("{}.{}", s.node, s.step),
                    s.label.to_string(),
                    s.noise_bits.to_string(),
                    budget,
                    consumed,
                    margin,
                ]
            })
            .collect();
        out.push_str(&render_table(
            &["step", "op", "charge", "budget", "consumed", "margin"],
            &rows,
        ));
        let undercounts = run
            .steps
            .iter()
            .filter(|s| {
                s.noise_consumed
                    .is_some_and(|c| c > i64::from(s.noise_bits))
            })
            .count();
        out.push_str(&format!(
            "\nsteps where measured consumption exceeds the analytic charge: {undercounts}\n"
        ));
        assert_eq!(undercounts, 0, "analytic model undercounted a step");
    }
}

fn main() {
    let mut out = String::new();
    out.push_str(
        "Plan-derived noise accounting: Table 4 from the derived model, and\n\
         analytic per-step charges vs measured invariant-noise budgets from\n\
         probed encrypted runs (params: test_small; charge/budget/consumed in\n\
         bits; margin = charge - consumed, never negative).\n\n",
    );
    production_table(&mut out);
    probed_section(&mut out, "conv", &conv_model(), &[1, 5, 5], 9_090);
    probed_section(&mut out, "pool", &pool_model(), &[1, 6, 6], 9_091);

    print!("{out}");
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../reports");
    let path = dir.join("noise.txt");
    if let Err(e) = std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, &out)) {
        eprintln!("could not write {}: {e}", path.display());
    } else {
        eprintln!("wrote {}", path.display());
    }
}
