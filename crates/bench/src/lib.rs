//! # athena-bench
//!
//! Experiment harness: one `report_*` binary per table/figure of the paper
//! (`cargo run -p athena-bench --release --bin report_table6`), plus shared
//! table-rendering and model-preparation helpers, plus `std`-only
//! micro-benchmarks of the kernels (`cargo bench`, see [`microbench`]).

pub mod microbench;

use athena_math::sampler::Sampler;
use athena_nn::data::{Dataset, SyntheticConfig, SyntheticSource};
use athena_nn::models::ModelKind;
use athena_nn::network::Network;
use athena_nn::qmodel::{QModel, QuantConfig};
use athena_nn::quant::quantize;
use athena_nn::tensor::Tensor;
use athena_nn::train::{train, TrainConfig};

/// Renders an aligned text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("| ");
        for (c, w) in cells.iter().zip(widths) {
            line.push_str(&format!("{c:w$} | "));
        }
        line.trim_end().to_string()
    };
    let head: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&head, &widths));
    out.push('\n');
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    out.push_str(&fmt_row(&sep, &widths));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Training/evaluation budget of a report run, controlled by the
/// `ATHENA_BUDGET` environment variable (`quick` default, `full` for the
/// paper-scale sweep).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Budget {
    /// Small training sets, reduced epochs for the ResNets.
    Quick,
    /// Everything, paper-leaning sizes (minutes of training).
    Full,
}

impl Budget {
    /// Reads the budget from the environment.
    pub fn from_env() -> Self {
        match std::env::var("ATHENA_BUDGET").as_deref() {
            Ok("full") => Budget::Full,
            _ => Budget::Quick,
        }
    }

    /// Training images for a model kind.
    pub fn train_images(&self, kind: ModelKind) -> usize {
        match (self, kind) {
            (Budget::Quick, ModelKind::Mnist | ModelKind::LeNet) => 300,
            (Budget::Quick, ModelKind::ResNet20) => 400,
            (Budget::Quick, ModelKind::ResNet56) => 200,
            (Budget::Full, ModelKind::Mnist | ModelKind::LeNet) => 1500,
            (Budget::Full, ModelKind::ResNet20) => 800,
            (Budget::Full, ModelKind::ResNet56) => 400,
        }
    }

    /// Test images.
    pub fn test_images(&self, kind: ModelKind) -> usize {
        match (self, kind) {
            (Budget::Quick, ModelKind::Mnist | ModelKind::LeNet) => 200,
            (Budget::Quick, _) => 60,
            (Budget::Full, ModelKind::Mnist | ModelKind::LeNet) => 1000,
            (Budget::Full, _) => 300,
        }
    }

    /// Training epochs.
    pub fn epochs(&self, kind: ModelKind) -> usize {
        match (self, kind) {
            (Budget::Quick, ModelKind::ResNet56) => 5,
            (Budget::Quick, ModelKind::ResNet20) => 6,
            (Budget::Quick, _) => 3,
            (Budget::Full, ModelKind::ResNet20 | ModelKind::ResNet56) => 8,
            (Budget::Full, _) => 4,
        }
    }

    /// Learning rate (the unnormalized ResNets need a hotter schedule with
    /// the damped residual branches).
    pub fn lr(&self, kind: ModelKind) -> f32 {
        match kind {
            ModelKind::ResNet20 | ModelKind::ResNet56 => 0.15,
            _ => 0.02,
        }
    }
}

/// A trained model bundle ready for the accuracy experiments.
#[derive(Debug)]
pub struct TrainedModel {
    /// Model identity.
    pub kind: ModelKind,
    /// The float network (plain-G).
    pub net: Network,
    /// Calibration images.
    pub calib: Vec<Tensor>,
    /// Held-out test set.
    pub test: Dataset,
    /// plain-G accuracy on the test set.
    pub plain_g_acc: f64,
}

/// Trains one benchmark model on its synthetic dataset.
pub fn train_model(kind: ModelKind, budget: Budget, seed: u64) -> TrainedModel {
    let cfg = match kind {
        ModelKind::Mnist | ModelKind::LeNet => SyntheticConfig::mnist_like(),
        _ => SyntheticConfig::cifar_like(),
    };
    let src = SyntheticSource::new(cfg, seed);
    let train_set = src.generate(budget.train_images(kind), seed + 1);
    let test = src.generate(budget.test_images(kind), seed + 2);
    let mut sampler = Sampler::from_seed(seed + 3);
    let mut net = kind.build(&mut sampler);
    let tc = TrainConfig {
        epochs: budget.epochs(kind),
        lr: budget.lr(kind),
        lr_decay: 0.8,
        ..TrainConfig::default()
    };
    train(&mut net, &train_set, &tc, &mut sampler);
    let plain_g_acc = athena_nn::train::evaluate(&mut net, &test);
    let calib: Vec<Tensor> = train_set.images.iter().take(32).cloned().collect();
    TrainedModel {
        kind,
        net,
        calib,
        test,
        plain_g_acc,
    }
}

impl TrainedModel {
    /// Quantizes at a mode, then fits the accumulators into the production
    /// plaintext modulus `t = 65537` (§3.3's headroom constraint).
    pub fn quantized(&self, cfg: QuantConfig) -> QModel {
        let mut qm = quantize(&self.net, &self.calib, cfg);
        athena_nn::quant::enforce_mac_headroom(&mut qm, &self.calib, 65537, 0.95);
        qm
    }

    /// plain-Q accuracy.
    pub fn plain_q_acc(&self, qm: &QModel) -> f64 {
        let correct = self
            .test
            .images
            .iter()
            .zip(&self.test.labels)
            .filter(|(img, &label)| qm.predict(&qm.quantize_input(img)) == label)
            .count();
        correct as f64 / self.test.len() as f64
    }
}

/// Formats a float as a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.2}", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rendering() {
        let t = render_table(
            &["a", "bb"],
            &[vec!["1".into(), "2".into()], vec!["33".into(), "4".into()]],
        );
        assert!(t.contains("| a  | bb |"));
        assert!(t.lines().count() == 4);
    }

    #[test]
    fn budget_defaults_quick() {
        assert_eq!(Budget::from_env(), Budget::Quick);
        assert!(Budget::Quick.train_images(ModelKind::Mnist) >= 200);
    }
}
