//! A minimal `std`-only micro-benchmark harness (`std::time::Instant`
//! timing, adaptive batch sizing, median-of-samples reporting) that
//! replaces Criterion so the workspace builds hermetically offline.

use std::time::{Duration, Instant};

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct BenchOpts {
    /// Time spent warming up (and calibrating the batch size).
    pub warmup: Duration,
    /// Target measurement time per benchmark.
    pub measure: Duration,
    /// Number of timed samples the measurement window is divided into.
    pub samples: usize,
}

impl Default for BenchOpts {
    fn default() -> Self {
        Self {
            warmup: Duration::from_millis(200),
            measure: Duration::from_secs(1),
            samples: 10,
        }
    }
}

/// One benchmark's aggregate timing.
#[derive(Debug, Clone, Copy)]
pub struct BenchResult {
    /// Median time per iteration.
    pub median: Duration,
    /// Fastest sample's per-iteration time.
    pub min: Duration,
    /// Slowest sample's per-iteration time.
    pub max: Duration,
    /// Iterations per timed sample.
    pub iters_per_sample: u64,
}

impl BenchResult {
    /// Iterations per second implied by the median.
    pub fn throughput(&self) -> f64 {
        if self.median.as_secs_f64() > 0.0 {
            1.0 / self.median.as_secs_f64()
        } else {
            f64::INFINITY
        }
    }
}

/// Formats a duration with an appropriate unit.
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Runs `f` repeatedly: warm up, pick a batch size that makes one sample
/// last roughly `measure / samples`, then time `samples` batches and return
/// the per-iteration statistics.
pub fn run<F, R>(opts: &BenchOpts, mut f: F) -> BenchResult
where
    F: FnMut() -> R,
{
    // Warmup + calibration: count how many iterations fit in the window.
    let warm_start = Instant::now();
    let mut warm_iters: u64 = 0;
    while warm_start.elapsed() < opts.warmup || warm_iters == 0 {
        std::hint::black_box(f());
        warm_iters += 1;
    }
    let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
    let sample_target = opts.measure.as_secs_f64() / opts.samples.max(1) as f64;
    let iters_per_sample = ((sample_target / per_iter).ceil() as u64).max(1);

    let mut samples: Vec<Duration> = Vec::with_capacity(opts.samples);
    for _ in 0..opts.samples.max(1) {
        let t0 = Instant::now();
        for _ in 0..iters_per_sample {
            std::hint::black_box(f());
        }
        samples.push(t0.elapsed() / iters_per_sample as u32);
    }
    samples.sort_unstable();
    BenchResult {
        median: samples[samples.len() / 2],
        min: samples[0],
        max: samples[samples.len() - 1],
        iters_per_sample,
    }
}

/// Runs a benchmark and prints a one-line result (the `cargo bench` UX).
pub fn run_named<F, R>(opts: &BenchOpts, name: &str, f: F) -> BenchResult
where
    F: FnMut() -> R,
{
    let r = run(opts, f);
    println!(
        "{name:<44} median {:>12}   [{} .. {}]   ({} iters/sample)",
        fmt_duration(r.median),
        fmt_duration(r.min),
        fmt_duration(r.max),
        r.iters_per_sample,
    );
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_reasonable() {
        let opts = BenchOpts {
            warmup: Duration::from_millis(5),
            measure: Duration::from_millis(20),
            samples: 4,
        };
        let mut acc = 0u64;
        let r = run(&opts, || {
            acc = acc.wrapping_add(1);
            std::hint::black_box(acc)
        });
        assert!(r.median <= r.max && r.min <= r.median);
        assert!(r.iters_per_sample >= 1);
        assert!(r.throughput() > 0.0);
    }

    #[test]
    fn duration_formatting_units() {
        assert!(fmt_duration(Duration::from_nanos(500)).contains("ns"));
        assert!(fmt_duration(Duration::from_micros(500)).contains("µs"));
        assert!(fmt_duration(Duration::from_millis(500)).contains("ms"));
        assert!(fmt_duration(Duration::from_secs(50)).contains(" s"));
    }
}
