//! Criterion micro-benchmarks of the kernels whose costs drive every
//! evaluation table: NTT, the five framework steps, and the FBS internals
//! (the bottleneck per Table 3 / Fig. 9), measured on real ciphertexts at
//! the reduced parameter set.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use athena_core::encoding::ConvEncoder;
use athena_core::pipeline::{AthenaEngine, PipelineStats};
use athena_fhe::bfv::{BfvEvaluator, RelinKey, SecretKey};
use athena_fhe::extract::{mod_switch_rlwe, sample_extract_all};
use athena_fhe::fbs::{fbs_apply, Lut};
use athena_fhe::params::BfvParams;
use athena_math::ntt::NttTables;
use athena_math::sampler::Sampler;
use athena_nn::models::ConvShape;
use athena_nn::tensor::ITensor;

fn bench_ntt(c: &mut Criterion) {
    let mut g = c.benchmark_group("ntt");
    g.measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_millis(500));
    for n in [1024usize, 4096] {
        let tables = NttTables::new(athena_math::prime::ntt_primes(50, n, 1)[0], n);
        let mut data: Vec<u64> = (0..n as u64).collect();
        g.bench_function(format!("forward_{n}"), |b| {
            b.iter(|| tables.forward(std::hint::black_box(&mut data)))
        });
    }
    g.finish();
}

fn bench_framework_steps(c: &mut Criterion) {
    let params = BfvParams::test_small();
    let ctx_engine = AthenaEngine::new(params.clone());
    let mut sampler = Sampler::from_seed(1);
    let (secrets, keys) = ctx_engine.keygen(&mut sampler);
    let n = ctx_engine.context().n();
    let t = ctx_engine.context().t();

    let mut g = c.benchmark_group("framework");
    g.measurement_time(Duration::from_secs(4)).warm_up_time(Duration::from_millis(500)).sample_size(10);

    // Step 1: conv via one PMult (Table 3's Conv row).
    let shape = ConvShape { hw: 6, c_in: 2, c_out: 1, k: 3, stride: 1, padding: 0 };
    let enc = ConvEncoder::new(shape, n);
    let img = ITensor::from_vec(&[2, 6, 6], (0..72).map(|i| (i % 7) - 3).collect());
    let ker = ITensor::from_vec(&[1, 2, 3, 3], (0..18).map(|i| (i % 5) - 2).collect());
    let positions: Vec<usize> = (0..n).collect();
    let ct = ctx_engine.encrypt_at(&enc.encode_input(&img), &positions, &secrets, &mut sampler);
    let kcoeffs = enc.encode_kernel(&ker);
    g.bench_function("conv_pmult", |b| {
        b.iter(|| {
            let mut st = PipelineStats::default();
            ctx_engine.linear(std::hint::black_box(&ct), &kcoeffs, &[], &mut st)
        })
    });

    // Step 2: modulus switch.
    let ctx = ctx_engine.context();
    g.bench_function("mod_switch", |b| {
        b.iter(|| mod_switch_rlwe(ctx, std::hint::black_box(&ct), params.q_primes[0]))
    });

    // Step 3: sample extraction of all N coefficients.
    let small = mod_switch_rlwe(ctx, &ct, t);
    g.bench_function("sample_extract_all", |b| {
        b.iter(|| sample_extract_all(std::hint::black_box(&small)))
    });

    // Steps 2+3 fused as the engine runs them (incl. dimension switch).
    g.bench_function("extract_pipeline", |b| {
        b.iter(|| {
            let mut st = PipelineStats::default();
            ctx_engine.extract_lwes(&ct, &positions[..32], &keys, &mut st)
        })
    });

    // Step 4: packing 32 LWEs.
    let mut st = PipelineStats::default();
    let lwes: Vec<_> = ctx_engine
        .extract_lwes(&ct, &positions[..32], &keys, &mut st)
        .into_iter()
        .map(Some)
        .collect();
    g.bench_function("pack_32_lwes", |b| {
        b.iter(|| {
            let mut st = PipelineStats::default();
            ctx_engine.pack(std::hint::black_box(&lwes), &keys, &mut st)
        })
    });

    // Step 5: S2C.
    g.bench_function("s2c", |b| {
        b.iter(|| {
            let mut st = PipelineStats::default();
            ctx_engine.s2c(std::hint::black_box(&ct), &keys, &mut st)
        })
    });
    g.finish();
}

fn bench_fbs(c: &mut Criterion) {
    let ctx = athena_fhe::bfv::BfvContext::new(BfvParams::test_small());
    let mut sampler = Sampler::from_seed(2);
    let sk = SecretKey::generate(&ctx, &mut sampler);
    let rlk = RelinKey::generate(&ctx, &sk, &mut sampler);
    let ev = BfvEvaluator::new(&ctx);
    let enc = ctx.encoder();
    let inputs: Vec<u64> = (0..ctx.n() as u64).map(|i| i % ctx.t()).collect();
    let ct = ev.encrypt_sk(&enc.encode(&inputs), &sk, &mut sampler);
    let relu = Lut::from_signed_fn(ctx.t(), |x| x.max(0));

    let mut g = c.benchmark_group("fbs");
    g.measurement_time(Duration::from_secs(5)).warm_up_time(Duration::from_millis(500)).sample_size(10);
    g.bench_function("fbs_full_t257", |b| {
        b.iter(|| fbs_apply(&ctx, std::hint::black_box(&ct), &relu, &rlk))
    });
    // The two LUT→polynomial interpolation paths (design decision 2 of
    // DESIGN.md).
    g.bench_function("lut_interpolate_ntt_t257", |b| {
        b.iter(|| std::hint::black_box(&relu).interpolate_ntt())
    });
    g.bench_function("lut_interpolate_naive_t257", |b| {
        b.iter(|| std::hint::black_box(&relu).interpolate_naive())
    });
    let big = Lut::from_signed_fn(65537, |x| x.max(0));
    g.bench_function("lut_interpolate_ntt_t65537", |b| {
        b.iter(|| std::hint::black_box(&big).interpolate_ntt())
    });
    // One CMult (the giant-step unit of Alg. 2).
    g.bench_function("cmult_relin", |b| {
        b.iter(|| ev.mul(std::hint::black_box(&ct), &ct, &rlk))
    });
    // One SMult (the baby-step unit).
    g.bench_function("smult", |b| {
        b.iter(|| ev.mul_scalar(std::hint::black_box(&ct), 123))
    });
    g.finish();
}

fn bench_base_conversion(c: &mut Criterion) {
    // Exact vs fast base conversion — the FRU's RNS datapath (ablation 1).
    use athena_math::prime::ntt_primes;
    use athena_math::rns::RnsBasis;
    let n = 1024;
    let src = RnsBasis::new(&ntt_primes(50, n, 4), n);
    let dst = RnsBasis::new(&ntt_primes(49, n, 4), n);
    let p = src.poly_from_i64(&(0..n as i64).map(|i| i * 31 % 1000).collect::<Vec<_>>());
    let mut g = c.benchmark_group("base_conversion");
    g.measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_millis(500));
    g.bench_function("fast_bconv_4to4_n1024", |b| {
        b.iter(|| src.fast_base_convert(std::hint::black_box(&p), &dst))
    });
    g.bench_function("exact_bconv_4to4_n1024", |b| {
        b.iter(|| src.exact_base_convert(std::hint::black_box(&p), &dst))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_ntt,
    bench_framework_steps,
    bench_fbs,
    bench_base_conversion
);
criterion_main!(benches);
