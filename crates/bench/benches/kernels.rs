//! Micro-benchmarks of the kernels whose costs drive every evaluation
//! table: NTT, the five framework steps, and the FBS internals (the
//! bottleneck per Table 3 / Fig. 9), measured on real ciphertexts at the
//! reduced parameter set.
//!
//! This is a `std`-only harness (`harness = false`, timed with
//! `std::time::Instant`) so the workspace builds with zero external
//! dependencies. Run with `cargo bench -p athena-bench`.

use std::time::Duration;

use athena_bench::microbench::{run_named, BenchOpts};
use athena_core::encoding::ConvEncoder;
use athena_core::pipeline::{AthenaEngine, PipelineStats};
use athena_fhe::bfv::{BfvEvaluator, RelinKey, SecretKey};
use athena_fhe::extract::{mod_switch_rlwe, sample_extract_all};
use athena_fhe::fbs::{fbs_apply, Lut};
use athena_fhe::params::BfvParams;
use athena_math::ntt::NttTables;
use athena_math::sampler::Sampler;
use athena_nn::models::ConvShape;
use athena_nn::tensor::ITensor;

fn bench_ntt(opts: &BenchOpts) {
    for n in [1024usize, 4096] {
        let tables = NttTables::new(athena_math::prime::ntt_primes(50, n, 1)[0], n);
        let mut data: Vec<u64> = (0..n as u64).collect();
        run_named(opts, &format!("ntt/forward_{n}"), || {
            tables.forward(std::hint::black_box(&mut data))
        });
    }
}

fn bench_framework_steps(opts: &BenchOpts) {
    let params = BfvParams::test_small();
    let ctx_engine = AthenaEngine::new(params.clone());
    let mut sampler = Sampler::from_seed(1);
    let (secrets, keys) = ctx_engine.keygen(&mut sampler);
    let n = ctx_engine.context().n();
    let t = ctx_engine.context().t();

    // Step 1: conv via one PMult (Table 3's Conv row).
    let shape = ConvShape {
        hw: 6,
        c_in: 2,
        c_out: 1,
        k: 3,
        stride: 1,
        padding: 0,
    };
    let enc = ConvEncoder::new(shape, n);
    let img = ITensor::from_vec(&[2, 6, 6], (0..72).map(|i| (i % 7) - 3).collect());
    let ker = ITensor::from_vec(&[1, 2, 3, 3], (0..18).map(|i| (i % 5) - 2).collect());
    let positions: Vec<usize> = (0..n).collect();
    let ct = ctx_engine.encrypt_at(&enc.encode_input(&img), &positions, &secrets, &mut sampler);
    let kcoeffs = enc.encode_kernel(&ker);
    run_named(opts, "framework/conv_pmult", || {
        let mut st = PipelineStats::default();
        ctx_engine.linear(std::hint::black_box(&ct), &kcoeffs, &[], &mut st)
    });

    // Step 2: modulus switch.
    let ctx = ctx_engine.context();
    run_named(opts, "framework/mod_switch", || {
        mod_switch_rlwe(ctx, std::hint::black_box(&ct), params.q_primes[0])
    });

    // Step 3: sample extraction of all N coefficients.
    let small = mod_switch_rlwe(ctx, &ct, t);
    run_named(opts, "framework/sample_extract_all", || {
        sample_extract_all(std::hint::black_box(&small))
    });

    // Steps 2+3 fused as the engine runs them (incl. dimension switch).
    run_named(opts, "framework/extract_pipeline", || {
        let mut st = PipelineStats::default();
        ctx_engine.extract_lwes(&ct, &positions[..32], &keys, &mut st)
    });

    // Step 4: packing 32 LWEs.
    let mut st = PipelineStats::default();
    let lwes: Vec<_> = ctx_engine
        .extract_lwes(&ct, &positions[..32], &keys, &mut st)
        .into_iter()
        .map(Some)
        .collect();
    run_named(opts, "framework/pack_32_lwes", || {
        let mut st = PipelineStats::default();
        ctx_engine.pack(std::hint::black_box(&lwes), &keys, &mut st)
    });

    // Step 5: S2C.
    run_named(opts, "framework/s2c", || {
        let mut st = PipelineStats::default();
        ctx_engine.s2c(std::hint::black_box(&ct), &keys, &mut st)
    });
}

fn bench_fbs(opts: &BenchOpts) {
    let ctx = athena_fhe::bfv::BfvContext::new(BfvParams::test_small());
    let mut sampler = Sampler::from_seed(2);
    let sk = SecretKey::generate(&ctx, &mut sampler);
    let rlk = RelinKey::generate(&ctx, &sk, &mut sampler);
    let ev = BfvEvaluator::new(&ctx);
    let enc = ctx.encoder();
    let inputs: Vec<u64> = (0..ctx.n() as u64).map(|i| i % ctx.t()).collect();
    let ct = ev.encrypt_sk(&enc.encode(&inputs), &sk, &mut sampler);
    let relu = Lut::from_signed_fn(ctx.t(), |x| x.max(0));

    run_named(opts, "fbs/fbs_full_t257", || {
        fbs_apply(&ctx, std::hint::black_box(&ct), &relu, &rlk)
    });
    // The two LUT→polynomial interpolation paths (design decision 2 of
    // DESIGN.md).
    run_named(opts, "fbs/lut_interpolate_ntt_t257", || {
        std::hint::black_box(&relu).interpolate_ntt()
    });
    run_named(opts, "fbs/lut_interpolate_naive_t257", || {
        std::hint::black_box(&relu).interpolate_naive()
    });
    let big = Lut::from_signed_fn(65537, |x| x.max(0));
    run_named(opts, "fbs/lut_interpolate_ntt_t65537", || {
        std::hint::black_box(&big).interpolate_ntt()
    });
    // One CMult (the giant-step unit of Alg. 2).
    run_named(opts, "fbs/cmult_relin", || {
        ev.mul(std::hint::black_box(&ct), &ct, &rlk)
    });
    // One SMult (the baby-step unit).
    run_named(opts, "fbs/smult", || {
        ev.mul_scalar(std::hint::black_box(&ct), 123)
    });
}

fn bench_base_conversion(opts: &BenchOpts) {
    // Exact vs fast base conversion — the FRU's RNS datapath (ablation 1).
    use athena_math::prime::ntt_primes;
    use athena_math::rns::RnsBasis;
    let n = 1024;
    let src = RnsBasis::new(&ntt_primes(50, n, 4), n);
    let dst = RnsBasis::new(&ntt_primes(49, n, 4), n);
    let p = src.poly_from_i64(&(0..n as i64).map(|i| i * 31 % 1000).collect::<Vec<_>>());
    run_named(opts, "base_conversion/fast_bconv_4to4_n1024", || {
        src.fast_base_convert(std::hint::black_box(&p), &dst)
    });
    run_named(opts, "base_conversion/exact_bconv_4to4_n1024", || {
        src.exact_base_convert(std::hint::black_box(&p), &dst)
    });
}

fn main() {
    // `cargo bench` passes --bench (and possibly filter args); ignore them.
    let opts = BenchOpts {
        warmup: Duration::from_millis(300),
        measure: Duration::from_secs(2),
        ..BenchOpts::default()
    };
    bench_ntt(&opts);
    bench_framework_steps(&opts);
    bench_fbs(&opts);
    bench_base_conversion(&opts);
}
