//! Heap-allocation discipline of the warm inference path, measured with a
//! counting `#[global_allocator]` (this binary's allocator only — the
//! unit-test binaries are unaffected).
//!
//! The arena's own counters prove limb checkouts stop missing the pool
//! (`fresh == 0`, pinned in `athena-core`'s `arena_discipline` tests);
//! this test closes the loop at the allocator itself: a steady-state run
//! on a warm session must perform strictly fewer global heap allocations
//! than the cold run that populated the pool. Limb buffers dominate the
//! hot path's allocation count, so pooling them must show up here — if it
//! doesn't, the pool is leaking misses somewhere.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use athena_core::pipeline::AthenaEngine;
use athena_core::plan::InferenceSession;
use athena_fhe::params::BfvParams;
use athena_math::sampler::Sampler;
use athena_nn::qmodel::{Activation, QLinear, QModel, QNode, QOp, QuantConfig};
use athena_nn::tensor::ITensor;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn reference_model() -> QModel {
    let conv_w: Vec<i64> = (0..2 * 9).map(|i| ((i % 5) as i64) - 2).collect();
    let fc_w: Vec<i64> = (0..3 * 18).map(|i| ((i % 3) as i64) - 1).collect();
    QModel {
        nodes: vec![
            QNode {
                op: QOp::Linear(QLinear {
                    weight: ITensor::from_vec(&[2, 1, 3, 3], conv_w),
                    bias: vec![1, -2],
                    stride: 1,
                    padding: 0,
                    is_fc: false,
                    act: Activation::ReLU,
                    in_scale: 0.5,
                    w_scale: 0.5,
                    out_scale: 1.0,
                }),
                input: 0,
                skip: None,
            },
            QNode {
                op: QOp::Linear(QLinear {
                    weight: ITensor::from_vec(&[3, 18, 1, 1], fc_w),
                    bias: vec![0, 1, -1],
                    stride: 1,
                    padding: 0,
                    is_fc: true,
                    act: Activation::Identity,
                    in_scale: 1.0,
                    w_scale: 0.5,
                    out_scale: 1.0,
                }),
                input: 1,
                skip: None,
            },
        ],
        input_scale: 0.5,
        cfg: QuantConfig::new(3, 3),
    }
}

fn count_allocs(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

/// One test function: the global allocator's counter is process-wide, so
/// concurrent tests in this binary would double-attribute.
#[test]
fn warm_run_allocates_less_than_the_cold_run_that_filled_the_pool() {
    let mut session = InferenceSession::new(AthenaEngine::new(BfvParams::test_small()), 4, 42);
    let model = reference_model();
    let img = ITensor::from_vec(&[1, 5, 5], (0..25).map(|i| ((i % 5) as i64) - 2).collect());
    let mut sampler = Sampler::from_seed(555);

    // Compile + keygen outside both measurements, so the comparison is
    // cold-pool execution vs warm-pool execution of the *same* step
    // program.
    session.plan_for(&model, img.shape());

    let cold = count_allocs(|| {
        session
            .run_encrypted(&model, &img, &mut sampler)
            .expect("cold run");
    });

    // `alloc_stats::measure` exists with the feature off too (it reads
    // all-zero counters), so only the arena-counter asserts are gated.
    let ((), arena_counts) = athena_math::stats::alloc_stats::measure(|| {
        let warm = count_allocs(|| {
            session
                .run_encrypted(&model, &img, &mut sampler)
                .expect("warm run");
        });
        assert!(
            warm < cold,
            "warm run must allocate strictly less: warm {warm} vs cold {cold}"
        );
    });
    #[cfg(feature = "alloc-stats")]
    {
        assert!(arena_counts.takes > 0, "the run must use the arena");
        assert_eq!(
            arena_counts.fresh, 0,
            "steady state: every limb checkout must hit the pool"
        );
    }
    #[cfg(not(feature = "alloc-stats"))]
    let _ = arena_counts;
}
