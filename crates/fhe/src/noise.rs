//! Noise-budget accounting (§3.3, Table 4).
//!
//! The paper charges each operation a per-depth bit growth:
//! CMult/PMult `log₂N + log₂t` bits, SMult `log₂t` bits, HAdd 1 bit, and
//! requires the total to stay below `Δ/2 = Q/(2t)`. This module holds
//! both sides of that accounting:
//!
//! * the **derivation**: [`StepDepths::linear`] / [`StepDepths::packing`] /
//!   [`StepDepths::fbs`] / [`StepDepths::s2c`] compute each framework
//!   step's op-depth profile from the hyper-parameters that determine it
//!   (fan-ins, LWE dimension, LUT size). The plan compiler
//!   (`athena_core::plan::compile`) uses the same constructors to attach a
//!   per-step analytic noise charge to every compiled step, and
//!   [`derive_steps`] instantiates them at a [`StepProfile`] to regenerate
//!   Table 4;
//! * the **fixture**: [`athena_steps`] is the paper's production table,
//!   frozen verbatim. [`derive_steps`] at
//!   [`StepProfile::athena_production`] must reproduce it bit-for-bit
//!   (pinned in tests and in the `report_noise` binary), so the derivation
//!   can never silently drift from the published numbers.
//!
//! The analytic model is cross-checked against the measured invariant
//! noise of real ciphertexts: the plan executor's probe mode samples
//! `BfvEvaluator::noise_budget` after every RLWE-producing step, and
//! `crates/core/tests/noise_telemetry.rs` pins
//! `analytic charge ≥ measured consumption` per step.

use crate::params::BfvParams;

/// `⌈log₂ x⌉` for `x ≥ 1` (`ceil_log2(1) = 0`).
fn ceil_log2(x: u64) -> u32 {
    assert!(x >= 1, "ceil_log2 of zero");
    u64::BITS - (x - 1).leading_zeros()
}

/// Per-parameter noise model.
#[derive(Debug, Clone, Copy)]
pub struct NoiseModel {
    /// log₂ of the ring degree.
    pub log_n: u32,
    /// log₂ of the plaintext modulus (floor — see [`NoiseModel::new`]).
    pub log_t: u32,
    /// Total bits of Q.
    pub log_q: u32,
}

impl NoiseModel {
    /// Model for given `N`, `t`, `log₂Q`.
    ///
    /// `N` must be a power of two (every parameter set validates this; the
    /// exact `ilog2` below floors rather than returning garbage if a
    /// non-power-of-two ever slips through, and debug builds assert).
    ///
    /// `log_t` uses **floor(log₂ t)**, matching the paper's rounding
    /// convention: Table 4 charges `log₂ 65537 → 16` (not 17), i.e. the
    /// prime `t = 2^k + 1` is charged as its power-of-two part. All
    /// per-step bit totals below (37/43/558/68) depend on this floor;
    /// rounding up instead would overshoot the published table by one bit
    /// per SMult/PMult depth.
    pub fn new(n: usize, t: u64, log_q: u32) -> Self {
        debug_assert!(
            n.is_power_of_two(),
            "ring degree {n} must be a power of two"
        );
        Self {
            log_n: n.ilog2(),
            log_t: 63 - t.leading_zeros(),
            log_q,
        }
    }

    /// Model for a parameter set (`log₂Q` from the exact limb product).
    pub fn for_params(p: &BfvParams) -> Self {
        Self::new(p.n, p.t, p.q_bits() as u32)
    }

    /// The paper's production model (`N = 2^15`, `t = 65537`, `logQ = 720`).
    pub fn athena_production() -> Self {
        Self::new(1 << 15, 65537, 720)
    }

    /// Bits contributed by one PMult/CMult depth.
    pub fn pmult_bits(&self) -> u32 {
        self.log_n + self.log_t
    }

    /// Bits contributed by one SMult depth.
    pub fn smult_bits(&self) -> u32 {
        self.log_t
    }

    /// Bits contributed by one HAdd depth.
    pub fn hadd_bits(&self) -> u32 {
        1
    }

    /// Upper bound, in bits, on how far the per-limb gadget's key-switch
    /// noise floor sits above fresh encryption noise: one key switch
    /// (rotation or relinearization) injects `e_ks ≈ k·N·2^b·σ` against a
    /// fresh `e ≈ σ`-scale noise, a gap of at most
    /// `b + log₂N + ⌈log₂k⌉` bits for `k` limbs of `b` bits. A single
    /// key-switching hop can therefore pull a quieter-than-floor
    /// ciphertext down to the floor in one step — a consumption the pure
    /// depth model of Table 4 does not see (the production set's 60-bit
    /// limbs keep the floor far below `Δ/2`, so the paper's rows absorb
    /// it in rounding slack). The plan compiler adds this slack to the
    /// charge of every key-switching step so the analytic bound stays
    /// above the measured consumption at reduced parameters too.
    pub fn keyswitch_slack_bits(&self, limb_bits: u32, limbs: u32) -> u32 {
        limb_bits + self.log_n + ceil_log2(u64::from(limbs.max(1)))
    }

    /// `Δ/2` headroom in bits.
    pub fn headroom_bits(&self) -> u32 {
        self.log_q - self.log_t - 1
    }

    /// `Δ` in bits (the bound the paper's Table 4 total is actually checked
    /// against: 706 < 704+rounding; the text says "≤ 706 bits and less than
    /// Δ/2", which only holds with their per-step rounding slack).
    pub fn delta_bits(&self) -> u32 {
        self.log_q - self.log_t
    }
}

/// One row of Table 4: the op-depth profile of a framework step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepDepths {
    /// Step name.
    pub name: &'static str,
    /// PMult depth.
    pub pmult: u32,
    /// CMult depth.
    pub cmult: u32,
    /// SMult depth.
    pub smult: u32,
    /// HAdd depth.
    pub hadd: u32,
}

impl StepDepths {
    /// Linear step: one PMult by the coefficient-encoded kernel plus an
    /// accumulation of `fan_in` partial products, `⌈log₂ fan_in⌉` HAdd
    /// depth. The paper's production row charges the *channel* fan-in only
    /// (`C_in = 64 → 6`): the `k²` spatial taps ride the PMult's `log₂ N`
    /// term (they are coefficients of the same polynomial product). The
    /// plan compiler passes the full structural fan-in
    /// `C_in·k² (+1 bias)` instead — strictly more conservative.
    pub fn linear(fan_in: u64) -> Self {
        Self {
            name: "Linear",
            pmult: 1,
            cmult: 0,
            smult: 0,
            hadd: ceil_log2(fan_in),
        }
    }

    /// Packing step (LWE → RLWE homomorphic decryption): one PMult depth
    /// (each packing-key ciphertext times its mask polynomial) and an
    /// accumulation over the `lwe_n` mask coordinates plus the trivial
    /// body add: `⌈log₂ n⌉ + 1` HAdd depth (`n = 2048 → 12`).
    pub fn packing(lwe_n: u64) -> Self {
        Self {
            name: "Packing",
            pmult: 1,
            cmult: 0,
            smult: 0,
            hadd: ceil_log2(lwe_n) + 1,
        }
    }

    /// FBS step (Alg. 2): the BSGS power-basis tree is
    /// `⌈log₂(t−1)⌉ + 1` CMult deep (`t = 65537 → 17`), one SMult for the
    /// LUT-coefficient scaling, and `⌈log₂(t−1)⌉ − 1` HAdd depth for the
    /// Paterson–Stockmeyer giant-step accumulation (`→ 15`).
    pub fn fbs(t: u64) -> Self {
        let d = ceil_log2(t - 1);
        Self {
            name: "FBS",
            pmult: 0,
            cmult: d + 1,
            smult: 1,
            hadd: d - 1,
        }
    }

    /// S2C step (slots → coefficients): `stages` PMult depths — one per
    /// factor of the transform (the production pipeline factors it into 2
    /// stages, our executor runs it in 1) — and `⌈log₂ fan_in⌉` HAdd depth
    /// for the per-output-coefficient accumulation (production: the
    /// consumer's `C_in = 64` channels → 6; single-stage test transform:
    /// its diagonal count).
    pub fn s2c(stages: u32, fan_in: u64) -> Self {
        Self {
            name: "S2C",
            pmult: stages,
            cmult: 0,
            smult: 0,
            hadd: ceil_log2(fan_in),
        }
    }

    /// Adds extra PMult depth (e.g. the FBS non-valid-slot mask).
    pub fn with_pmult(mut self, extra: u32) -> Self {
        self.pmult += extra;
        self
    }

    /// Adds extra HAdd depth (e.g. a bias add).
    pub fn with_hadd(mut self, extra: u32) -> Self {
        self.hadd += extra;
        self
    }

    /// Total noise bits of this step under a model.
    pub fn noise_bits(&self, m: &NoiseModel) -> u32 {
        (self.pmult + self.cmult) * m.pmult_bits()
            + self.smult * m.smult_bits()
            + self.hadd * m.hadd_bits()
    }
}

/// The hyper-parameters Table 4's rows are a function of.
#[derive(Debug, Clone, Copy)]
pub struct StepProfile {
    /// Linear fan-in charged by the table (the paper's convention: input
    /// channels only — see [`StepDepths::linear`]).
    pub c_in: u64,
    /// LWE dimension folded by packing.
    pub lwe_n: u64,
    /// Plaintext modulus (LUT size).
    pub t: u64,
    /// Stage count of the S2C factorization.
    pub s2c_stages: u32,
    /// Per-output-coefficient accumulation fan-in of S2C.
    pub s2c_fan_in: u64,
}

impl StepProfile {
    /// The paper's production pipeline: `C_in = 64` channels per layer,
    /// LWE `n = 2048`, `t = 65537`, a 2-stage factored S2C feeding 64
    /// channels.
    pub fn athena_production() -> Self {
        Self {
            c_in: 64,
            lwe_n: 2048,
            t: 65537,
            s2c_stages: 2,
            s2c_fan_in: 64,
        }
    }
}

/// Derives the four Table-4 rows from a [`StepProfile`] via the same
/// constructors the plan compiler charges compiled steps with. At
/// [`StepProfile::athena_production`] this reproduces [`athena_steps`]
/// bit-for-bit (pinned below and in `report_noise`).
pub fn derive_steps(p: &StepProfile) -> Vec<StepDepths> {
    vec![
        StepDepths::linear(p.c_in),
        StepDepths::packing(p.lwe_n),
        StepDepths::fbs(p.t),
        StepDepths::s2c(p.s2c_stages, p.s2c_fan_in),
    ]
}

/// The four framework steps with the paper's production depths, **frozen
/// verbatim** as a regression fixture (`C_in = 64 → log₂C_in = 6` for the
/// linear row; packing HAdd depth 12; FBS CMult depth 17 = ⌈log₂ t⌉ + 1
/// from the BSGS power tree; S2C depth 2 PMult + 6 HAdd). The live
/// derivation is [`derive_steps`]; this list exists so a change to the
/// derivation that moves any production number fails loudly.
pub fn athena_steps() -> Vec<StepDepths> {
    vec![
        StepDepths {
            name: "Linear",
            pmult: 1,
            cmult: 0,
            smult: 0,
            hadd: 6,
        },
        StepDepths {
            name: "Packing",
            pmult: 1,
            cmult: 0,
            smult: 0,
            hadd: 12,
        },
        StepDepths {
            name: "FBS",
            pmult: 0,
            cmult: 17,
            smult: 1,
            hadd: 15,
        },
        StepDepths {
            name: "S2C",
            pmult: 2,
            cmult: 0,
            smult: 0,
            hadd: 6,
        },
    ]
}

/// Total noise of the whole loop under a model.
pub fn total_noise_bits(steps: &[StepDepths], m: &NoiseModel) -> u32 {
    steps.iter().map(|s| s.noise_bits(m)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_reproduction() {
        // The exact numbers of Table 4.
        let m = NoiseModel::athena_production();
        assert_eq!(m.pmult_bits(), 31); // log2(2^15) + log2(65536) = 15 + 16
        let steps = athena_steps();
        let bits: Vec<u32> = steps.iter().map(|s| s.noise_bits(&m)).collect();
        assert_eq!(bits, vec![37, 43, 558, 68]);
        assert_eq!(total_noise_bits(&steps, &m), 706);
        // The paper claims the total stays below Δ/2; with exact bit
        // accounting 706 sits between Δ/2 = 703 and Δ+2 — reproduce the
        // comparison at Δ granularity (their per-step numbers carry
        // worst-case rounding slack).
        assert!(total_noise_bits(&steps, &m) <= m.delta_bits() + 2);
        // The dominant single step (FBS) is well below Δ/2, which is what
        // decryptability actually requires after each refresh.
        assert!(steps[2].noise_bits(&m) < m.headroom_bits());
    }

    #[test]
    fn derivation_matches_frozen_fixture_bit_for_bit() {
        // The live derivation at the production profile must equal the
        // frozen paper table exactly — names, depths, and bit totals.
        let derived = derive_steps(&StepProfile::athena_production());
        let frozen = athena_steps();
        assert_eq!(derived, frozen);
        let m = NoiseModel::athena_production();
        assert_eq!(
            derived.iter().map(|s| s.noise_bits(&m)).collect::<Vec<_>>(),
            frozen.iter().map(|s| s.noise_bits(&m)).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn exact_log_in_model_constructor() {
        // n.ilog2() is exact for powers of two; log_t floors (65537 → 16,
        // 257 → 8) per the paper's rounding convention.
        let m = NoiseModel::new(1 << 15, 65537, 720);
        assert_eq!(m.log_n, 15);
        assert_eq!(m.log_t, 16);
        let m = NoiseModel::new(128, 257, 250);
        assert_eq!(m.log_n, 7);
        assert_eq!(m.log_t, 8);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    #[cfg(debug_assertions)]
    fn non_power_of_two_degree_asserts() {
        let _ = NoiseModel::new(96, 257, 250);
    }

    #[test]
    fn small_model_fits_small_params() {
        // test_small: N = 128, t = 257, 5×50-bit primes. The derived FBS
        // row (CMult depth ⌈log₂ 256⌉+1 = 9) fits the reduced headroom.
        let m = NoiseModel::new(128, 257, 250);
        let fbs_small = StepDepths::fbs(257);
        assert_eq!(
            (fbs_small.cmult, fbs_small.smult, fbs_small.hadd),
            (9, 1, 7)
        );
        assert!(fbs_small.noise_bits(&m) < m.headroom_bits());
    }
}
