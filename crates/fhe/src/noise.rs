//! Noise-budget accounting (§3.3, Table 4).
//!
//! The paper charges each operation a per-depth bit growth:
//! CMult/PMult `log₂N + log₂t` bits, SMult `log₂t` bits, HAdd 1 bit, and
//! requires the total to stay below `Δ/2 = Q/(2t)`. This module reproduces
//! that accounting symbolically (so `report_table4` can regenerate the
//! table) and cross-checks it against the measured invariant-noise budget
//! of real ciphertexts in tests.

/// Per-parameter noise model.
#[derive(Debug, Clone, Copy)]
pub struct NoiseModel {
    /// log₂ of the ring degree.
    pub log_n: u32,
    /// log₂ of the plaintext modulus (rounded up).
    pub log_t: u32,
    /// Total bits of Q.
    pub log_q: u32,
}

impl NoiseModel {
    /// Model for given `N`, `t`, `log₂Q`.
    pub fn new(n: usize, t: u64, log_q: u32) -> Self {
        Self {
            log_n: n.trailing_zeros(),
            // The paper rounds log₂(65537) to 16: use floor(log₂ t).
            log_t: 63 - t.leading_zeros(),
            log_q,
        }
    }

    /// The paper's production model (`N = 2^15`, `t = 65537`, `logQ = 720`).
    pub fn athena_production() -> Self {
        Self::new(1 << 15, 65537, 720)
    }

    /// Bits contributed by one PMult/CMult depth.
    pub fn pmult_bits(&self) -> u32 {
        self.log_n + self.log_t
    }

    /// Bits contributed by one SMult depth.
    pub fn smult_bits(&self) -> u32 {
        self.log_t
    }

    /// Bits contributed by one HAdd depth.
    pub fn hadd_bits(&self) -> u32 {
        1
    }

    /// `Δ/2` headroom in bits.
    pub fn headroom_bits(&self) -> u32 {
        self.log_q - self.log_t - 1
    }

    /// `Δ` in bits (the bound the paper's Table 4 total is actually checked
    /// against: 706 < 704+rounding; the text says "≤ 706 bits and less than
    /// Δ/2", which only holds with their per-step rounding slack).
    pub fn delta_bits(&self) -> u32 {
        self.log_q - self.log_t
    }
}

/// One row of Table 4: the op-depth profile of a framework step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepDepths {
    /// Step name.
    pub name: &'static str,
    /// PMult depth.
    pub pmult: u32,
    /// CMult depth.
    pub cmult: u32,
    /// SMult depth.
    pub smult: u32,
    /// HAdd depth.
    pub hadd: u32,
}

impl StepDepths {
    /// Total noise bits of this step under a model.
    pub fn noise_bits(&self, m: &NoiseModel) -> u32 {
        (self.pmult + self.cmult) * m.pmult_bits()
            + self.smult * m.smult_bits()
            + self.hadd * m.hadd_bits()
    }
}

/// The four framework steps with the paper's production depths
/// (`C_in = 64 → log₂C_in = 6` for the linear row; packing HAdd depth 12;
/// FBS CMult depth 17 = ⌈log₂ t⌉ + 1 from the BSGS power tree; S2C depth 2
/// PMult + 6 HAdd).
pub fn athena_steps() -> Vec<StepDepths> {
    vec![
        StepDepths {
            name: "Linear",
            pmult: 1,
            cmult: 0,
            smult: 0,
            hadd: 6,
        },
        StepDepths {
            name: "Packing",
            pmult: 1,
            cmult: 0,
            smult: 0,
            hadd: 12,
        },
        StepDepths {
            name: "FBS",
            pmult: 0,
            cmult: 17,
            smult: 1,
            hadd: 15,
        },
        StepDepths {
            name: "S2C",
            pmult: 2,
            cmult: 0,
            smult: 0,
            hadd: 6,
        },
    ]
}

/// Total noise of the whole loop under a model.
pub fn total_noise_bits(steps: &[StepDepths], m: &NoiseModel) -> u32 {
    steps.iter().map(|s| s.noise_bits(m)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_reproduction() {
        // The exact numbers of Table 4.
        let m = NoiseModel::athena_production();
        assert_eq!(m.pmult_bits(), 31); // log2(2^15) + log2(65536) = 15 + 16
        let steps = athena_steps();
        let bits: Vec<u32> = steps.iter().map(|s| s.noise_bits(&m)).collect();
        assert_eq!(bits, vec![37, 43, 558, 68]);
        assert_eq!(total_noise_bits(&steps, &m), 706);
        // The paper claims the total stays below Δ/2; with exact bit
        // accounting 706 sits between Δ/2 = 703 and Δ+2 — reproduce the
        // comparison at Δ granularity (their per-step numbers carry
        // worst-case rounding slack).
        assert!(total_noise_bits(&steps, &m) <= m.delta_bits() + 2);
        // The dominant single step (FBS) is well below Δ/2, which is what
        // decryptability actually requires after each refresh.
        assert!(steps[2].noise_bits(&m) < m.headroom_bits());
    }

    #[test]
    fn small_model_fits_small_params() {
        // test_small: N = 128, t = 257, 5×50-bit primes.
        let m = NoiseModel::new(128, 257, 250);
        let fbs_small = StepDepths {
            name: "FBS",
            pmult: 0,
            cmult: 9, // ceil(log2 256) + 1
            smult: 1,
            hadd: 9,
        };
        assert!(fbs_small.noise_bits(&m) < m.headroom_bits());
    }
}
