//! Seed-compressed ciphertexts and keys: the uniform `a`-halves of fresh
//! encryptions and key-switching keys are pseudorandom, so they can be
//! shipped and stored as a PRNG seed and re-expanded on use. This halves
//! key storage and bandwidth — the reason the Athena accelerator (like
//! CraterLake and SHARP) carries a PRNG unit (§4.1), and part of why its
//! 45 MB scratchpad suffices (Table 8).

use athena_math::poly::{Domain, Poly};
use athena_math::rns::RnsPoly;
use athena_math::sampler::Sampler;

use crate::bfv::{BfvCiphertext, BfvContext, SecretKey};

/// A ciphertext whose mask half is stored as a seed.
#[derive(Debug, Clone)]
pub struct SeededCiphertext {
    /// Body polynomial `c0 = −a·s + Δm + e` (computed against the expanded
    /// mask).
    b: RnsPoly,
    /// Seed regenerating the mask `a = c1`.
    seed: u64,
}

/// Expands a seed into the uniform mask polynomial, deterministically.
pub fn expand_mask(ctx: &BfvContext, seed: u64) -> RnsPoly {
    let mut s = Sampler::from_seed(seed);
    let limbs = ctx
        .q_basis()
        .rings()
        .iter()
        .map(|r| Poly::from_values(s.uniform_vec(r.modulus().value(), ctx.n()), Domain::Coeff))
        .collect();
    RnsPoly::from_limbs(limbs)
}

impl SeededCiphertext {
    /// Secret-key encryption with a seeded mask.
    pub fn encrypt_sk(
        ctx: &BfvContext,
        m: &Poly,
        sk: &SecretKey,
        seed: u64,
        sampler: &mut Sampler,
    ) -> Self {
        let a = expand_mask(ctx, seed);
        let qb = ctx.q_basis();
        let e = qb.poly_from_i64(&sampler.gaussian(ctx.n()));
        let mut b = qb.neg_poly(&ctx.mul_into_coeff(&a, sk.rns_form()));
        qb.add_assign_poly(&mut b, &e);
        qb.add_assign_poly(&mut b, &ctx.delta_times_plain(m));
        Self { b, seed }
    }

    /// The seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Re-expands into a full ciphertext.
    pub fn expand(&self, ctx: &BfvContext) -> BfvCiphertext {
        BfvCiphertext::from_parts(vec![self.b.clone(), expand_mask(ctx, self.seed)])
    }

    /// Stored size in bytes (one ring element + 8 seed bytes), versus
    /// [`full_ciphertext_bytes`] for the expanded form.
    pub fn bytes(&self, ctx: &BfvContext) -> usize {
        ctx.q_basis().len() * ctx.n() * 8 + 8
    }
}

/// Size of a full two-element ciphertext in bytes.
pub fn full_ciphertext_bytes(ctx: &BfvContext) -> usize {
    2 * ctx.q_basis().len() * ctx.n() * 8
}

/// Storage for a key-switching key with seeded masks: `k` body polynomials
/// plus `k` seeds, instead of `2k` polynomials.
pub fn seeded_ksk_bytes(ctx: &BfvContext) -> usize {
    let k = ctx.q_basis().len();
    k * (ctx.n() * k * 8 + 8)
}

/// Storage for a full key-switching key.
pub fn full_ksk_bytes(ctx: &BfvContext) -> usize {
    let k = ctx.q_basis().len();
    2 * k * ctx.n() * k * 8
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfv::BfvEvaluator;
    use crate::encoder::encode_coeff;
    use crate::params::BfvParams;

    #[test]
    fn seeded_encryption_decrypts() {
        let ctx = BfvContext::new(BfvParams::test_small());
        let mut sampler = Sampler::from_seed(11);
        let sk = SecretKey::generate(&ctx, &mut sampler);
        let ev = BfvEvaluator::new(&ctx);
        let m = encode_coeff(&[3, -7, 250, 0, 42], 257, 128);
        let sct = SeededCiphertext::encrypt_sk(&ctx, &m, &sk, 0xDEAD_BEEF, &mut sampler);
        let ct = sct.expand(&ctx);
        assert_eq!(ev.decrypt(&ct, &sk), m);
    }

    #[test]
    fn expansion_is_deterministic() {
        let ctx = BfvContext::new(BfvParams::test_small());
        let a1 = expand_mask(&ctx, 42);
        let a2 = expand_mask(&ctx, 42);
        assert_eq!(a1, a2);
        assert_ne!(a1, expand_mask(&ctx, 43));
    }

    #[test]
    fn seeded_form_is_half_the_size() {
        let ctx = BfvContext::new(BfvParams::test_small());
        let mut sampler = Sampler::from_seed(12);
        let sk = SecretKey::generate(&ctx, &mut sampler);
        let m = encode_coeff(&[1], 257, 128);
        let sct = SeededCiphertext::encrypt_sk(&ctx, &m, &sk, 7, &mut sampler);
        let full = full_ciphertext_bytes(&ctx);
        assert!(
            sct.bytes(&ctx) * 2 <= full + 16,
            "{} vs {}",
            sct.bytes(&ctx),
            full
        );
        // KSK halving, the Table 8 claim.
        assert!(seeded_ksk_bytes(&ctx) * 2 <= full_ksk_bytes(&ctx) + 1024);
    }

    #[test]
    fn seeded_ciphertexts_are_fully_homomorphic() {
        // Expanded seeded ciphertexts are ordinary ciphertexts.
        let ctx = BfvContext::new(BfvParams::test_small());
        let mut sampler = Sampler::from_seed(13);
        let sk = SecretKey::generate(&ctx, &mut sampler);
        let ev = BfvEvaluator::new(&ctx);
        let ma = encode_coeff(&[10], 257, 128);
        let mb = encode_coeff(&[20], 257, 128);
        let ca = SeededCiphertext::encrypt_sk(&ctx, &ma, &sk, 1, &mut sampler).expand(&ctx);
        let cb = SeededCiphertext::encrypt_sk(&ctx, &mb, &sk, 2, &mut sampler).expand(&ctx);
        let sum = ev.decrypt(&ev.add(&ca, &cb), &sk);
        assert_eq!(sum.values()[0], 30);
    }
}
