//! # athena-fhe
//!
//! The FHE substrate of the Athena reproduction: RNS-BFV with slot and
//! coefficient encodings, LWE ciphertexts, modulus switching, sample
//! extraction (Alg. 1), LWE→RLWE packing, functional bootstrapping
//! (Eq. 3 / Alg. 2), homomorphic linear transforms with S2C, and the
//! Table 4 noise model.
//!
//! ## The five-step loop's crypto, in order
//!
//! 1. [`bfv`] — coefficient-encoded linear layers via `PMult`/`HAdd`.
//! 2. [`extract::mod_switch_rlwe`] — noise-killing modulus switch (Eq. 2).
//! 3. [`extract::sample_extract_all`] + [`lwe`] — RLWE→LWE and `N → n`.
//! 4. [`pack`] — homomorphic decryption packs LWEs into fresh slots.
//! 5. [`fbs`] — LUT evaluation = non-linearity + remap + bootstrap;
//!    then [`linear::SlotToCoeff`] re-enters step 1.
//!
//! ## Example
//!
//! ```
//! use athena_fhe::params::BfvParams;
//! use athena_fhe::bfv::{BfvContext, BfvEvaluator, SecretKey};
//! use athena_math::sampler::Sampler;
//!
//! let ctx = BfvContext::new(BfvParams::test_small());
//! let mut sampler = Sampler::from_seed(1);
//! let sk = SecretKey::generate(&ctx, &mut sampler);
//! let ev = BfvEvaluator::new(&ctx);
//! let m = ctx.encoder().encode(&vec![7u64; ctx.n()]);
//! let ct = ev.encrypt_sk(&m, &sk, &mut sampler);
//! assert_eq!(ev.decrypt(&ct, &sk), m);
//! ```

pub mod bfv;
pub mod encoder;
pub mod error;
pub mod extract;
pub mod fbs;
pub mod linear;
pub mod lwe;
pub mod noise;
pub mod pack;
pub mod params;
pub mod security;
pub mod seeded;

pub use bfv::{
    BfvCiphertext, BfvContext, BfvEvaluator, GaloisKeys, PublicKey, RelinKey, SecretKey,
};
pub use error::FheError;
pub use fbs::{fbs_apply, Lut};
pub use params::BfvParams;
