//! Parameter sets for the Athena cryptosystem: an RNS-BFV RLWE layer
//! (linear algebra, FBS, packing) plus an LWE layer (sample extraction /
//! dimension switching), as in §3.3 of the paper.
//!
//! The paper's production set is `N = 2^15`, `log₂ Q = 720`, `t = 65537`,
//! LWE `n = 2048`, `q = t` — exposed as [`BfvParams::athena_production`].
//! Reduced sets keep every pipeline step real but finish in milliseconds,
//! for tests and examples.

use athena_math::bigint::UBig;
use athena_math::prime::ntt_primes;
use athena_math::rns::RnsBasis;

/// Parameters of the full Athena cryptosystem.
///
/// # Examples
///
/// ```
/// use athena_fhe::params::BfvParams;
/// let p = BfvParams::test_small();
/// assert!(p.delta().bits() > 20);
/// ```
#[derive(Debug, Clone)]
pub struct BfvParams {
    /// RLWE ring degree `N`.
    pub n: usize,
    /// RNS limb primes whose product is `Q`.
    pub q_primes: Vec<u64>,
    /// Plaintext modulus `t` (prime, `t ≡ 1 mod 2N` for slot encoding).
    pub t: u64,
    /// LWE dimension `n` after dimension switching.
    pub lwe_n: usize,
    /// Error standard deviation.
    pub sigma: f64,
    /// Decomposition base (log2) for LWE dimension switching.
    pub lwe_ks_base_log: u32,
}

impl BfvParams {
    /// The paper's production parameter set (§3.3): `N = 2^15`,
    /// twelve 60-bit primes (`log₂ Q = 720`), `t = 65537`, LWE `n = 2048`.
    ///
    /// Too heavy to run under test profiles; used by the cost model, size
    /// accounting (Tables 1 and 8) and noise analysis (Table 4).
    pub fn athena_production() -> Self {
        Self {
            n: 1 << 15,
            q_primes: ntt_primes(60, 1 << 15, 12),
            t: 65537,
            lwe_n: 2048,
            sigma: 3.2,
            lwe_ks_base_log: 8,
        }
    }

    /// Small test set: `N = 128`, five 50-bit primes, `t = 257`.
    ///
    /// `t − 1 = 256` is a power of two, so the fast LUT interpolation works,
    /// and `2N = 256` divides `t − 1`, so slot encoding works; a full FBS
    /// finishes quickly.
    pub fn test_small() -> Self {
        Self {
            n: 128,
            q_primes: ntt_primes(50, 128, 5),
            t: 257,
            lwe_n: 32,
            sigma: 3.2,
            lwe_ks_base_log: 4,
        }
    }

    /// Medium test set: `N = 1024`, four 55-bit primes, `t = 12289`
    /// (`2N = 2048` divides `t − 1 = 12288`).
    pub fn test_medium() -> Self {
        Self {
            n: 1024,
            q_primes: ntt_primes(55, 1024, 4),
            t: 12289,
            lwe_n: 128,
            sigma: 3.2,
            lwe_ks_base_log: 7,
        }
    }

    /// Test set with the production plaintext modulus `t = 65537` at a
    /// reduced degree, for exercising 17-bit LUTs.
    pub fn test_full_t() -> Self {
        Self {
            n: 2048,
            q_primes: ntt_primes(55, 2048, 6),
            t: 65537,
            lwe_n: 256,
            sigma: 3.2,
            lwe_ks_base_log: 8,
        }
    }

    /// Builds the RNS basis for `Q`.
    pub fn q_basis(&self) -> RnsBasis {
        RnsBasis::new(&self.q_primes, self.n)
    }

    /// Builds the extended basis used during ciphertext multiplication:
    /// `Q ∪ P` with `P` big enough that the tensor product never wraps
    /// (`|P| · |Q| > N · Q² · t`, with margin).
    pub fn mult_basis(&self) -> RnsBasis {
        let mut primes = self.q_primes.clone();
        primes.extend_from_slice(&self.aux_primes());
        RnsBasis::new(&primes, self.n)
    }

    /// Auxiliary primes appended for multiplication.
    pub fn aux_primes(&self) -> Vec<u64> {
        // Need P > N * Q * t * margin (tensor coeffs are bounded by
        // N * (Q/2)^2, and we carry them modulo Q*P).
        let q_bits: u32 = self.q_primes.iter().map(|&p| 64 - p.leading_zeros()).sum();
        let need_bits = q_bits + (self.n as u64).ilog2() + (64 - self.t.leading_zeros()) + 8;
        let prime_bits = 55u32;
        let count = need_bits.div_ceil(prime_bits - 1) as usize;
        // Pick primes disjoint from q_primes by going one bit smaller.
        let mut cands = ntt_primes(prime_bits, self.n, count + self.q_primes.len());
        cands.retain(|p| !self.q_primes.contains(p));
        cands.truncate(count);
        cands
    }

    /// `Q = ∏ q_i` as a big integer.
    pub fn q_product(&self) -> UBig {
        let mut q = UBig::one();
        for &p in &self.q_primes {
            q = q.mul_u64(p);
        }
        q
    }

    /// `Δ = ⌊Q/t⌋`, the BFV plaintext scaling factor.
    pub fn delta(&self) -> UBig {
        self.q_product().div_rem_u64(self.t).0
    }

    /// Total bits of `Q`.
    pub fn q_bits(&self) -> usize {
        self.q_product().bits()
    }

    /// Size in bytes of one BFV ciphertext (two ring elements, RNS form,
    /// 8 bytes per residue) — the quantity reported in Table 1.
    pub fn ciphertext_bytes(&self) -> usize {
        2 * self.n * self.q_primes.len() * 8
    }

    /// Size in bytes of one key-switching key (per-limb gadget: `k` pairs of
    /// ring elements).
    pub fn keyswitch_key_bytes(&self) -> usize {
        let k = self.q_primes.len();
        2 * k * self.n * k * 8
    }

    /// Number of slots (equal to `N` for our power-of-two cyclotomic with
    /// `t ≡ 1 mod 2N`).
    pub fn slot_count(&self) -> usize {
        self.n
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics with a description if any constraint is violated.
    pub fn validate(&self) {
        assert!(self.n.is_power_of_two(), "N must be a power of two");
        assert!(self.lwe_n.is_power_of_two(), "LWE n must be a power of two");
        assert!(self.lwe_n <= self.n, "LWE dimension cannot exceed N");
        assert_eq!(
            (self.t - 1) % (2 * self.n as u64),
            0,
            "t must be 1 mod 2N for slot encoding"
        );
        for &p in &self.q_primes {
            assert_eq!((p - 1) % (2 * self.n as u64), 0, "q_i must be 1 mod 2N");
            assert!(p > self.t, "limb primes must exceed t");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        for p in [
            BfvParams::test_small(),
            BfvParams::test_medium(),
            BfvParams::test_full_t(),
        ] {
            p.validate();
        }
    }

    #[test]
    fn production_matches_paper() {
        let p = BfvParams::athena_production();
        p.validate();
        assert_eq!(p.n, 32768);
        assert_eq!(p.t, 65537);
        assert_eq!(p.lwe_n, 2048);
        // log2 Q = 720 (12 x 60-bit primes).
        assert!(
            p.q_bits() >= 708 && p.q_bits() <= 720,
            "q_bits = {}",
            p.q_bits()
        );
        // Ciphertext size ~ 5.6 MB > 5 MB, < 7 MB (Table 1 reports 5.6 MB,
        // counting 720 bits packed; our 8-byte-per-residue RNS form is 6 MB).
        let mb = p.ciphertext_bytes() as f64 / (1024.0 * 1024.0);
        assert!(mb > 4.0 && mb < 8.0, "ciphertext {mb} MB");
    }

    #[test]
    fn aux_primes_disjoint_and_sufficient() {
        let p = BfvParams::test_small();
        let aux = p.aux_primes();
        for a in &aux {
            assert!(!p.q_primes.contains(a));
        }
        let mut total = UBig::one();
        for &x in &aux {
            total = total.mul_u64(x);
        }
        // P > N * Q * t
        let bound = p.q_product().mul_u64(p.n as u64).mul_u64(p.t);
        assert!(total > bound);
    }

    #[test]
    fn delta_close_to_q_over_t() {
        let p = BfvParams::test_small();
        let d = p.delta();
        let back = d.mul_u64(p.t);
        let q = p.q_product();
        assert!(back <= q);
        assert!(q.sub(&back) < UBig::from(p.t));
    }
}
