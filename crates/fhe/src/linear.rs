//! Homomorphic linear transforms over the slot vector, and the
//! slot-to-coefficient (S2C) transform that closes the Athena loop
//! (Step ⑤ → Step ①).
//!
//! An arbitrary `N×N` plaintext matrix `M` over `Z_t` is applied to an
//! encrypted slot vector with the Halevi–Shoup generalized-diagonal method.
//! The permutation group used is the full slot symmetry group: row rotations
//! `k ∈ [0, N/2)` crossed with the row swap — a regular action on slots, so
//! each matrix entry lands in exactly one generalized diagonal. A
//! baby-step/giant-step schedule keeps the number of key-switched rotations
//! at `O(√N)` instead of `O(N)`.

use athena_math::bsgs::BsgsSplit;
use athena_math::modops::Modulus;
use athena_math::par;
use athena_math::poly::Domain;
use athena_math::rns::RnsPoly;
use athena_math::stats::op_stats::HomOpCounts;

use crate::bfv::{BfvCiphertext, BfvContext, BfvEvaluator, GaloisKeys};

/// A plaintext matrix to be applied homomorphically to the slot vector.
///
/// The generalized diagonals the BSGS schedule multiplies against are
/// fixed by the matrix, so they are lifted into the `Q` basis and
/// NTT-transformed **once, at construction**: the cache holds Eval-form
/// operands and [`apply`](Self::apply) runs the whole schedule NTT-resident.
#[derive(Debug, Clone)]
pub struct HomLinearTransform {
    /// Row-major `N×N` matrix over `Z_t`.
    matrix: Vec<Vec<u64>>,
    split: BsgsSplit,
    /// Giant-group count of the BSGS schedule.
    groups: usize,
    /// Lifted Eval-form plaintext operands, flat index
    /// `(g·baby + k2)·2 + bi`: the generalized diagonal `(g·baby + k2, bi)`
    /// pre-rotated right by the group shift. `None` marks an all-zero (or
    /// out-of-range) diagonal, skipped by the schedule.
    diag_cache: Vec<Option<RnsPoly>>,
}

impl HomLinearTransform {
    /// Wraps a matrix (must be `N×N` with entries reduced mod `t`) and
    /// precomputes the Eval-form diagonal cache.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square `N×N`.
    pub fn new(ctx: &BfvContext, matrix: Vec<Vec<u64>>) -> Self {
        let n = ctx.n();
        assert_eq!(matrix.len(), n, "matrix must have N rows");
        assert!(matrix.iter().all(|r| r.len() == n), "matrix must be N×N");
        let row = ctx.encoder().row_size();
        let split = BsgsSplit::balanced(row);
        let groups = split.giant.min(row.div_ceil(split.baby.max(1)));
        let tmp = Self {
            matrix,
            split,
            groups,
            diag_cache: Vec::new(),
        };
        let enc = ctx.encoder();
        let diag_cache = par::parallel_map_range(groups * split.baby * 2, |idx| {
            let bi = idx % 2;
            let k2 = (idx / 2) % split.baby;
            let g = idx / 2 / split.baby;
            let shift = g * split.baby;
            let k = shift + k2;
            if k >= row {
                return None;
            }
            let dv = tmp.diagonal(ctx, k, bi == 1);
            if dv.iter().all(|&x| x == 0) {
                return None;
            }
            // Pre-rotate the diagonal right by `shift` per row so the one
            // giant rotation at the end restores alignment.
            let pre: Vec<u64> = (0..n)
                .map(|i| {
                    let r = i / row;
                    let c = i % row;
                    dv[r * row + (c + row - (shift % row)) % row]
                })
                .collect();
            Some(
                ctx.q_basis()
                    .poly_to_eval(&ctx.lift_plaintext(&enc.encode(&pre))),
            )
        });
        Self { diag_cache, ..tmp }
    }

    /// The Galois elements the BSGS schedule needs (generate keys for
    /// these). Giant steps use the clamped group count — the shifts
    /// [`apply`](Self::apply) actually performs.
    pub fn required_galois_elements(&self, ctx: &BfvContext) -> Vec<usize> {
        let enc = ctx.encoder();
        let mut els = vec![enc.galois_for_row_swap()];
        for b in 1..self.split.baby {
            els.push(enc.galois_for_rotation(b));
        }
        for g in 1..self.groups {
            els.push(enc.galois_for_rotation(g * self.split.baby));
        }
        els.sort_unstable();
        els.dedup();
        els
    }

    /// Number of HRot operations one dense application performs: `baby − 1`
    /// baby rotations of **each** of the two sources (identity and
    /// row-swapped), `groups − 1` giant output rotations, and one row swap.
    pub fn rotation_count(&self) -> usize {
        2 * (self.split.baby - 1) + (self.groups - 1) + 1
    }

    /// Exact operation counts of one [`apply`](Self::apply) call, derived
    /// from the cached diagonal sparsity — these match the op-stats-measured
    /// counts bit for bit (the schedule is deterministic):
    ///
    /// * `pmult` — one per cached (non-zero) generalized diagonal;
    /// * `hrot` — the swap, all `2·(baby−1)` baby rotations (performed
    ///   unconditionally), and one giant rotation per *non-empty* group
    ///   beyond group 0;
    /// * `hadd` — the in-group folds plus the final cross-group fold.
    pub fn op_counts(&self) -> HomOpCounts {
        let baby = self.split.baby;
        let mut pmult = 0u64;
        let mut hadd = 0u64;
        let mut nonempty = 0u64;
        let mut giant_rots = 0u64;
        for g in 0..self.groups {
            let terms = (0..2 * baby)
                .filter(|i| self.diag_cache[g * 2 * baby + i].is_some())
                .count() as u64;
            if terms == 0 {
                continue;
            }
            pmult += terms;
            hadd += terms - 1;
            nonempty += 1;
            if g > 0 {
                giant_rots += 1;
            }
        }
        hadd += nonempty.saturating_sub(1);
        HomOpCounts {
            pmult,
            hadd,
            hrot: 1 + 2 * (baby as u64 - 1) + giant_rots,
            ..HomOpCounts::default()
        }
    }

    /// Reference (plaintext) application for tests: `out = M · v`.
    pub fn apply_plain(&self, ctx: &BfvContext, v: &[u64]) -> Vec<u64> {
        let t = Modulus::new(ctx.t());
        self.matrix
            .iter()
            .map(|row| {
                let mut acc = 0u64;
                for (m, &x) in row.iter().zip(v) {
                    acc = t.mul_add(*m % t.value(), x, acc);
                }
                acc
            })
            .collect()
    }

    /// Generalized diagonal `(k, b)`: entry `i` is `M[i][π_{k,b}(i)]` where
    /// `π_{k,b}` rotates rows by `k` and swaps rows if `b`.
    fn diagonal(&self, ctx: &BfvContext, k: usize, b: bool) -> Vec<u64> {
        let n = ctx.n();
        let row = ctx.encoder().row_size();
        (0..n)
            .map(|i| {
                let r = i / row;
                let c = i % row;
                let src_r = if b { 1 - r } else { r };
                let src_c = (c + k) % row;
                self.matrix[i][src_r * row + src_c]
            })
            .collect()
    }

    /// Applies the transform homomorphically. The whole schedule runs in
    /// Eval form — one up-conversion of the input here, then every HRot,
    /// the PMults against the cached Eval diagonals, and the HAdd folds are
    /// NTT-resident — and the result is handed on in Eval form.
    ///
    /// Both BSGS sources are **hoisted**: the identity source and the
    /// row-swapped source each pay one digit decomposition, and all their
    /// baby rotations permute the cached digits NTT-free. The giant output
    /// rotations stay eager — each acts on a distinct group sum, so there
    /// is nothing to share (hoisting one ciphertext for one rotation costs
    /// exactly one rotation).
    ///
    /// # Panics
    ///
    /// Panics up front, with the full required-vs-available listing, if any
    /// Galois key of the schedule is missing.
    pub fn apply(&self, ctx: &BfvContext, ct: &BfvCiphertext, gk: &GaloisKeys) -> BfvCiphertext {
        gk.ensure_covers(&self.required_galois_elements(ctx));
        let ev = BfvEvaluator::new(ctx);
        // Two "source" ciphertexts: identity and row-swapped, each with its
        // c1 digits decomposed once (the swap itself rotates the hoisted
        // identity source).
        let hoisted = ev.hoist(ct);
        let swapped = ev.hoist(&hoisted.swap_rows(ctx, gk));
        let sources = [&hoisted, &swapped];
        // Baby rotations of both sources — 2·baby independent digit
        // permutations, run on the parallel layer (flat index
        // = bi * baby + k).
        let baby_flat: Vec<BfvCiphertext> = par::parallel_map_range(2 * self.split.baby, |idx| {
            let (bi, k) = (idx / self.split.baby, idx % self.split.baby);
            if k == 0 {
                sources[bi].ciphertext().clone()
            } else {
                sources[bi].rotate_rows(ctx, k, gk)
            }
        });
        let baby: Vec<&[BfvCiphertext]> = baby_flat.chunks(self.split.baby).collect();
        // The giant groups are independent; compute them in parallel and fold
        // in order (exact modular arithmetic — bit-identical for any thread
        // count).
        let groups: Vec<Option<BfvCiphertext>> = par::parallel_map_range(self.groups, |g| {
            let shift = g * self.split.baby;
            let mut inner: Option<BfvCiphertext> = None;
            for (bi, chunk) in baby.iter().enumerate() {
                for (k2, src) in chunk.iter().enumerate() {
                    let Some(lifted) = &self.diag_cache[(shift + k2) * 2 + bi] else {
                        continue;
                    };
                    let term = ev.mul_plain_lifted(src, lifted);
                    inner = Some(match inner {
                        None => term,
                        Some(mut a) => {
                            ev.add_assign(&mut a, &term);
                            a
                        }
                    });
                }
            }
            inner.map(|inn| {
                if shift == 0 {
                    inn
                } else {
                    ev.rotate_rows(&inn, shift, gk)
                }
            })
        });
        let mut acc: Option<BfvCiphertext> = None;
        for rotated in groups.into_iter().flatten() {
            acc = Some(match acc {
                None => rotated,
                Some(mut a) => {
                    ev.add_assign(&mut a, &rotated);
                    a
                }
            });
        }
        acc.unwrap_or_else(|| BfvCiphertext::zero_in(ctx, Domain::Eval))
    }
}

/// Builds the S2C matrix `D`: for a plaintext polynomial with coefficient
/// vector `v`, `slots(v as coefficients) = D · slots(v as slots)` — i.e.
/// applying `D` in slot space rewrites the slot values into the coefficient
/// positions. `D[i][j] = ψ^{e_i · j}` where `e_i` is slot `i`'s evaluation
/// exponent, composed with the inverse encode map.
pub fn s2c_matrix(ctx: &BfvContext) -> Vec<Vec<u64>> {
    let enc = ctx.encoder();
    let n = ctx.n();
    let t = enc.ring().modulus();
    let psi = enc.ntt().psi();
    // E[i][j]: slot i of the polynomial X^j, i.e. evaluation of X^j at the
    // slot-i point: psi^{e_i * j}.
    // We want: given ct with slots v, produce ct' whose *coefficients* are
    // v. The plaintext map is v |-> poly with coeffs v; its slot vector is
    // slots' = E · v. So the matrix to apply in slot space is exactly E.
    let mut e = vec![vec![0u64; n]; n];
    for (i, row) in e.iter_mut().enumerate() {
        // evaluation exponent of slot i
        let slot_ntt = {
            // reconstruct: encoder stores slot->ntt; exponent via ntt tables
            enc.slot_eval_exponent(i)
        };
        let base = t.pow(psi, slot_ntt);
        let mut p = 1u64;
        for ej in row.iter_mut() {
            *ej = p;
            p = t.mul(p, base);
        }
    }
    e
}

/// The S2C transform packaged with its matrix.
#[derive(Debug, Clone)]
pub struct SlotToCoeff {
    transform: HomLinearTransform,
}

impl SlotToCoeff {
    /// Builds the S2C transform for a context.
    pub fn new(ctx: &BfvContext) -> Self {
        Self {
            transform: HomLinearTransform::new(ctx, s2c_matrix(ctx)),
        }
    }

    /// Galois elements needed by [`SlotToCoeff::apply`].
    pub fn required_galois_elements(&self, ctx: &BfvContext) -> Vec<usize> {
        self.transform.required_galois_elements(ctx)
    }

    /// Rotation count per application.
    pub fn rotation_count(&self) -> usize {
        self.transform.rotation_count()
    }

    /// Exact operation counts of one application (see
    /// [`HomLinearTransform::op_counts`]).
    pub fn op_counts(&self) -> HomOpCounts {
        self.transform.op_counts()
    }

    /// Moves slot values into coefficient positions: after this, decrypting
    /// and reading raw coefficients yields the former slot values.
    pub fn apply(&self, ctx: &BfvContext, ct: &BfvCiphertext, gk: &GaloisKeys) -> BfvCiphertext {
        self.transform.apply(ctx, ct, gk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfv::SecretKey;
    use crate::params::BfvParams;
    use athena_math::sampler::Sampler;

    struct Fx {
        ctx: BfvContext,
        sk: SecretKey,
        sampler: Sampler,
    }

    fn setup() -> Fx {
        let ctx = BfvContext::new(BfvParams::test_small());
        let mut sampler = Sampler::from_seed(31337);
        let sk = SecretKey::generate(&ctx, &mut sampler);
        Fx { ctx, sk, sampler }
    }

    fn keys_for(f: &mut Fx, tr: &HomLinearTransform) -> GaloisKeys {
        let els = tr.required_galois_elements(&f.ctx);
        GaloisKeys::generate(&f.ctx, &f.sk, &els, &mut f.sampler)
    }

    #[test]
    fn identity_matrix_is_identity() {
        let mut f = setup();
        let n = f.ctx.n();
        let mut m = vec![vec![0u64; n]; n];
        for (i, row) in m.iter_mut().enumerate() {
            row[i] = 1;
        }
        let tr = HomLinearTransform::new(&f.ctx, m);
        let gk = keys_for(&mut f, &tr);
        let ev = BfvEvaluator::new(&f.ctx);
        let vals: Vec<u64> = (0..n as u64).map(|i| (i * 3 + 1) % 257).collect();
        let ct = ev.encrypt_sk(&f.ctx.encoder().encode(&vals), &f.sk, &mut f.sampler);
        let out = tr.apply(&f.ctx, &ct, &gk);
        assert_eq!(f.ctx.encoder().decode(&ev.decrypt(&out, &f.sk)), vals);
    }

    #[test]
    fn random_matrix_matches_plain_matvec() {
        let mut f = setup();
        let n = f.ctx.n();
        let mut rng = Sampler::from_seed(99);
        let m: Vec<Vec<u64>> = (0..n)
            .map(|_| (0..n).map(|_| rng.uniform_mod(257)).collect())
            .collect();
        let tr = HomLinearTransform::new(&f.ctx, m);
        let gk = keys_for(&mut f, &tr);
        let ev = BfvEvaluator::new(&f.ctx);
        let vals: Vec<u64> = (0..n as u64).map(|i| (7 * i + 2) % 257).collect();
        let want = tr.apply_plain(&f.ctx, &vals);
        let ct = ev.encrypt_sk(&f.ctx.encoder().encode(&vals), &f.sk, &mut f.sampler);
        let out = tr.apply(&f.ctx, &ct, &gk);
        assert_eq!(f.ctx.encoder().decode(&ev.decrypt(&out, &f.sk)), want);
    }

    #[test]
    fn s2c_moves_slots_to_coefficients() {
        let mut f = setup();
        let s2c = SlotToCoeff::new(&f.ctx);
        let els = s2c.required_galois_elements(&f.ctx);
        let gk = GaloisKeys::generate(&f.ctx, &f.sk, &els, &mut f.sampler);
        let ev = BfvEvaluator::new(&f.ctx);
        let n = f.ctx.n();
        let vals: Vec<u64> = (0..n as u64).map(|i| (i * 5 + 3) % 257).collect();
        let ct = ev.encrypt_sk(&f.ctx.encoder().encode(&vals), &f.sk, &mut f.sampler);
        let out = s2c.apply(&f.ctx, &ct, &gk);
        // Raw coefficients (no slot decode) must equal the slot values.
        let plain = ev.decrypt(&out, &f.sk);
        assert_eq!(plain.values(), &vals[..]);
    }

    #[test]
    fn s2c_uses_sqrt_rotations() {
        let f = setup();
        let s2c = SlotToCoeff::new(&f.ctx);
        // N = 128 -> row 64 -> baby 8, groups 8 -> 2·7 baby + 7 giant +
        // 1 swap = 22 rotations, far below the 2·64 = 128 diagonals a
        // rotation-per-diagonal schedule would need.
        assert!(
            s2c.rotation_count() <= 24,
            "rotations = {}",
            s2c.rotation_count()
        );
    }
}
