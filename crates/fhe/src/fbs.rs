//! Functional bootstrapping (framework Step ⑤, Eq. 3 + Alg. 2).
//!
//! A lookup table over `Z_t` is interpolated into the polynomial `FBS(x)`
//! with `FBS(k) = LUT(k)` for every `k ∈ Z_t` (t prime), then evaluated on a
//! slot-encoded BFV ciphertext with the BSGS schedule of Alg. 2. Because the
//! packing step produced a *fresh* ciphertext at full modulus `Q`, the LUT
//! evaluation simultaneously (a) applies an arbitrary non-linear function,
//! (b) performs the quantization remap, and (c) refreshes the noise — the
//! paper's "merged" bootstrapping.
//!
//! Interpolation cost: `O(t log t)` when `t − 1` is a power of two (a
//! size-(t−1) Fermat-style NTT over `Z_t` — this covers the production
//! `t = 65537`), with an `O(t²)` Lagrange fallback for other primes.

use std::cell::OnceCell;
use std::rc::Rc;

use athena_math::bsgs::{bsgs_polynomial_eval, BsgsSplit};
use athena_math::modops::Modulus;
use athena_math::ntt::CyclicNtt;
use athena_math::prime::{is_prime, primitive_root};
use athena_math::stats::lift_stats;

use crate::bfv::{BfvCiphertext, BfvContext, BfvEvaluator, RelinKey, TensorOperand};

/// A lookup table over `Z_t`: entry `k` is the image of input `k`.
///
/// # Examples
///
/// ```
/// use athena_fhe::fbs::Lut;
/// // ReLU over Z_17 (inputs 9..16 represent negatives).
/// let lut = Lut::from_signed_fn(17, |x| x.max(0));
/// assert_eq!(lut.get(3), 3);
/// assert_eq!(lut.get(16), 0); // 16 ≡ -1
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lut {
    t: u64,
    table: Vec<u64>,
}

impl Lut {
    /// Builds a LUT from explicit entries (reduced mod `t`).
    ///
    /// # Panics
    ///
    /// Panics unless `table.len() == t` and `t` is prime.
    pub fn new(t: u64, table: Vec<u64>) -> Self {
        assert!(is_prime(t), "FBS requires a prime plaintext modulus");
        assert_eq!(table.len(), t as usize, "LUT must have t entries");
        let table = table.into_iter().map(|v| v % t).collect();
        Self { t, table }
    }

    /// Builds a LUT from a function on raw residues `[0, t)`.
    pub fn from_fn(t: u64, f: impl Fn(u64) -> u64) -> Self {
        Self::new(t, (0..t).map(f).collect())
    }

    /// Builds a LUT from a function on **centered** inputs
    /// `(-t/2, t/2]`, producing centered outputs (re-encoded mod `t`).
    pub fn from_signed_fn(t: u64, f: impl Fn(i64) -> i64) -> Self {
        let m = Modulus::new(t);
        Self::new(t, (0..t).map(|k| m.from_i64(f(m.center(k)))).collect())
    }

    /// The plaintext modulus.
    pub fn t(&self) -> u64 {
        self.t
    }

    /// Entry `k`.
    pub fn get(&self, k: u64) -> u64 {
        self.table[(k % self.t) as usize]
    }

    /// Evaluates the LUT on a centered input.
    pub fn get_signed(&self, x: i64) -> i64 {
        let m = Modulus::new(self.t);
        m.center(self.get(m.from_i64(x)))
    }

    /// The raw table.
    pub fn table(&self) -> &[u64] {
        &self.table
    }

    /// Interpolates the LUT into polynomial coefficients `c_0..c_{t−1}`
    /// with `Σ c_i x^i ≡ LUT(x) (mod t)` for all `x` (Eq. 3).
    pub fn interpolate(&self) -> Vec<u64> {
        if (self.t - 1).is_power_of_two() && self.t > 3 {
            self.interpolate_ntt()
        } else {
            self.interpolate_naive()
        }
    }

    /// `O(t²)` direct evaluation of Eq. 3 (reference / fallback).
    pub fn interpolate_naive(&self) -> Vec<u64> {
        let t = self.t;
        let m = Modulus::new(t);
        let mut coeffs = vec![0u64; t as usize];
        coeffs[0] = self.table[0];
        // c_i = -Σ_{k=1}^{t-1} LUT(k) · k^{t-1-i}, with the 0^0 = 1
        // convention adding LUT(0) into c_{t-1}.
        for i in 1..t {
            let mut s = 0u64;
            for k in 1..t {
                s = m.add(s, m.mul(self.table[k as usize], m.pow(k, t - 1 - i)));
            }
            if i == t - 1 {
                s = m.add(s, self.table[0]);
            }
            coeffs[i as usize] = m.neg(s);
        }
        coeffs
    }

    /// `O(t log t)` interpolation via the multiplicative-group DFT: with
    /// `k = g^j` (g a generator of `Z_t^*`), the sums
    /// `S_i = Σ_k LUT(k)·k^{−i}` become a length-(t−1) cyclic NTT over `Z_t`
    /// with root `ζ = g^{−1}`.
    ///
    /// # Panics
    ///
    /// Panics unless `t − 1` is a power of two.
    pub fn interpolate_ntt(&self) -> Vec<u64> {
        let t = self.t;
        assert!((t - 1).is_power_of_two(), "needs a Fermat-style prime");
        let m = Modulus::new(t);
        let g = primitive_root(t);
        let g_inv = m.inv(g).expect("generator invertible");
        let len = (t - 1) as usize;
        // a_j = LUT(g^j)
        let mut a = vec![0u64; len];
        let mut gp = 1u64;
        for slot in a.iter_mut() {
            *slot = self.table[gp as usize];
            gp = m.mul(gp, g);
        }
        // S_i = Σ_j a_j ζ^{ij} = DFT with ω = ζ = g^{-1}
        let ntt = CyclicNtt::with_omega(t, len, g_inv);
        let s = ntt.forward(&a);
        let mut coeffs = vec![0u64; t as usize];
        coeffs[0] = self.table[0];
        for i in 1..t as usize {
            // c_i = -S_{i mod (t-1)}; for i = t-1 the index wraps to 0 and
            // the 0^0 convention adds LUT(0).
            let mut v = s[i % len];
            if i == t as usize - 1 {
                v = m.add(v, self.table[0]);
            }
            coeffs[i] = m.neg(v);
        }
        coeffs
    }
}

/// Operation counts of one FBS evaluation (drives the cost model and the
/// Table 3 / Table 4 accounting).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FbsStats {
    /// Ciphertext–ciphertext multiplications (CMult).
    pub cmult: usize,
    /// Scalar multiplications (SMult).
    pub smult: usize,
    /// Homomorphic additions (HAdd).
    pub hadd: usize,
}

/// Evaluates the LUT homomorphically on a slot-encoded ciphertext:
/// every slot `x` becomes `LUT(x)` (Alg. 2). Returns the result and the
/// operation counts.
///
/// # Panics
///
/// Panics if the LUT modulus differs from the context's `t`.
pub fn fbs_apply(
    ctx: &BfvContext,
    ct: &BfvCiphertext,
    lut: &Lut,
    rlk: &RelinKey,
) -> (BfvCiphertext, FbsStats) {
    assert_eq!(lut.t(), ctx.t(), "LUT modulus must match context t");
    let coeffs = lut.interpolate();
    fbs_apply_interpolated(ctx, ct, &coeffs, rlk)
}

/// Evaluates a batch of independent FBS over the same LUT: the LUT is
/// interpolated once, then the per-ciphertext BSGS evaluations run on the
/// parallel layer (they are fully independent — this is the loop the paper's
/// FRU array spreads across hardware units). Results are in input order and
/// bit-identical for any thread count.
///
/// # Panics
///
/// Panics if the LUT modulus differs from the context's `t`.
pub fn fbs_apply_batch(
    ctx: &BfvContext,
    cts: &[BfvCiphertext],
    lut: &Lut,
    rlk: &RelinKey,
) -> Vec<(BfvCiphertext, FbsStats)> {
    assert_eq!(lut.t(), ctx.t(), "LUT modulus must match context t");
    let coeffs = lut.interpolate();
    athena_math::par::parallel_map(cts, |ct| fbs_apply_interpolated(ctx, ct, &coeffs, rlk))
}

/// A BSGS operand carrying a shared, lazily computed tensor-basis lift.
///
/// The schedule reuses the same baby/giant powers across many CMults, so
/// each power pays its forced-Coeff lift into the extended basis **once**
/// (the CMult analogue of rotation hoisting; `lift_stats` counts computed
/// vs reused lifts). The `Rc` never crosses a thread: each
/// [`fbs_apply_interpolated`] call builds and drops its own operand graph,
/// and the batch parallelism is at the whole-call level.
#[derive(Clone)]
struct FbsOperand {
    ct: BfvCiphertext,
    lift: Rc<OnceCell<TensorOperand>>,
}

impl FbsOperand {
    fn new(ct: BfvCiphertext) -> Self {
        Self {
            ct,
            lift: Rc::new(OnceCell::new()),
        }
    }

    /// The cached tensor lift, computed on first use.
    fn tensor(&self, ev: &BfvEvaluator) -> &TensorOperand {
        if self.lift.get().is_some() {
            lift_stats::record_reused();
        }
        self.lift.get_or_init(|| ev.lift_for_mul(&self.ct))
    }
}

/// Alg. 2 on pre-interpolated LUT coefficients (shared across a batch).
fn fbs_apply_interpolated(
    ctx: &BfvContext,
    ct: &BfvCiphertext,
    coeffs: &[u64],
    rlk: &RelinKey,
) -> (BfvCiphertext, FbsStats) {
    let ev = BfvEvaluator::new(ctx);
    // Polynomial evaluation is CMult-dominated, and every CMult tensors
    // through the centered CRT lift — a forced-Coeff boundary — so an
    // Eval-resident input (e.g. fresh out of packing) is normalized to
    // coefficient form once here instead of inside every product.
    let ct = FbsOperand::new(ct.to_coeff(ctx));
    let mut stats = FbsStats::default();
    let result = {
        let mut mul = |a: &FbsOperand, b: &FbsOperand| {
            stats.cmult += 1;
            let tensored = ev.mul_no_relin_lifted(a.tensor(&ev), b.tensor(&ev));
            FbsOperand::new(ev.relinearize(&tensored, rlk))
        };
        let mut smul = |a: &FbsOperand, c: u64| {
            stats.smult += 1;
            FbsOperand::new(ev.mul_scalar(&a.ct, c))
        };
        let mut add = |a: &FbsOperand, b: &FbsOperand| {
            stats.hadd += 1;
            FbsOperand::new(ev.add(&a.ct, &b.ct))
        };
        bsgs_polynomial_eval(coeffs, &ct, &mut mul, &mut smul, &mut add)
    };
    // Add the constant term c_0 = LUT(0) in plaintext (all slots).
    let constant = ctx.encoder().encode(&vec![coeffs[0] % ctx.t(); ctx.n()]);
    let out = match result {
        Some(r) => ev.add_plain(&r.ct, &constant),
        None => BfvCiphertext::trivial(ctx, &constant),
    };
    (out, stats)
}

/// Expected BSGS split for a LUT of size `t` (Alg. 2's `bs`/`gs`).
pub fn fbs_split(t: u64) -> BsgsSplit {
    BsgsSplit::balanced(t as usize)
}

/// Exact operation counts one [`fbs_apply`] of this LUT will incur,
/// computed by dry-running Alg. 2's schedule over a unit algebra (the same
/// [`bsgs_polynomial_eval`] drives both, so zero-coefficient skipping — the
/// data-dependent part of the count — is reproduced exactly).
///
/// The returned stats mirror the [`FbsStats`] of the real call; the final
/// plaintext constant add (`c_0`) is *not* included, matching the real
/// path's accounting (it shows up as one extra measured HAdd).
pub fn expected_stats(lut: &Lut) -> FbsStats {
    let coeffs = lut.interpolate();
    #[derive(Clone)]
    struct Unit;
    let mut stats = FbsStats::default();
    {
        let mut mul = |_: &Unit, _: &Unit| {
            stats.cmult += 1;
            Unit
        };
        let mut smul = |_: &Unit, _: u64| {
            stats.smult += 1;
            Unit
        };
        let mut add = |_: &Unit, _: &Unit| {
            stats.hadd += 1;
            Unit
        };
        let _ = bsgs_polynomial_eval(&coeffs, &Unit, &mut mul, &mut smul, &mut add);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfv::SecretKey;
    use crate::params::BfvParams;
    use athena_math::sampler::Sampler;

    #[test]
    fn paper_example_relu_mod_5() {
        // §3.2.3: t = 5, LUT = ReLU → FBS(x) = 3x + x² + 2x⁴.
        let lut = Lut::from_signed_fn(5, |x| x.max(0));
        assert_eq!(lut.table(), &[0, 1, 2, 0, 0]);
        let coeffs = lut.interpolate();
        assert_eq!(coeffs, vec![0, 3, 1, 0, 2]);
    }

    #[test]
    fn interpolation_agrees_on_all_points() {
        for t in [5u64, 17, 257] {
            let m = Modulus::new(t);
            let lut = Lut::from_fn(t, |k| (k * k + 3 * k + 1) % t);
            let coeffs = lut.interpolate_naive();
            for x in 0..t {
                let mut acc = 0u64;
                for &c in coeffs.iter().rev() {
                    acc = m.mul_add(acc, x, c);
                }
                assert_eq!(acc, lut.get(x), "t={t}, x={x}");
            }
        }
    }

    #[test]
    fn ntt_interpolation_matches_naive() {
        for t in [5u64, 17, 257] {
            let lut = Lut::from_fn(t, |k| (7 * k + k * k * k + 2) % t);
            assert_eq!(lut.interpolate_ntt(), lut.interpolate_naive(), "t={t}");
        }
    }

    #[test]
    fn full_t_interpolation_is_fast_and_correct() {
        // t = 65537: the production LUT size. NTT interpolation plus spot
        // checks of 100 points.
        let t = 65537u64;
        let m = Modulus::new(t);
        let lut = Lut::from_signed_fn(t, |x| x.clamp(-128, 127));
        let coeffs = lut.interpolate_ntt();
        for x in (0..t).step_by(653) {
            let mut acc = 0u64;
            for &c in coeffs.iter().rev() {
                acc = m.mul_add(acc, x, c);
            }
            assert_eq!(acc, lut.get(x), "x={x}");
        }
    }

    #[test]
    fn homomorphic_fbs_computes_relu_with_remap() {
        // The real thing: encrypt slot values, run FBS with a fused
        // ReLU + remap LUT, decrypt, compare with the plain LUT.
        let ctx = BfvContext::new(BfvParams::test_small());
        let mut sampler = Sampler::from_seed(555);
        let sk = SecretKey::generate(&ctx, &mut sampler);
        let rlk = RelinKey::generate(&ctx, &sk, &mut sampler);
        let ev = BfvEvaluator::new(&ctx);
        let enc = ctx.encoder();
        let t = ctx.t();
        // LUT(x) = round(ReLU(x) / 4)  (remap scale 4)
        let lut = Lut::from_signed_fn(t, |x| if x > 0 { (x + 2) / 4 } else { 0 });
        let inputs: Vec<u64> = (0..ctx.n() as u64).map(|i| i % t).collect();
        let ct = ev.encrypt_sk(&enc.encode(&inputs), &sk, &mut sampler);
        let (out, stats) = fbs_apply(&ctx, &ct, &lut, &rlk);
        let got = enc.decode(&ev.decrypt(&out, &sk));
        let want: Vec<u64> = inputs.iter().map(|&x| lut.get(x)).collect();
        assert_eq!(got, want);
        // Alg. 2 structure: CMult is O(sqrt t), SMult is O(t).
        let split = fbs_split(t);
        assert!(
            stats.cmult <= 2 * (split.baby + split.giant),
            "cmult = {}",
            stats.cmult
        );
        assert!(stats.smult <= t as usize, "smult = {}", stats.smult);
    }

    #[test]
    fn fbs_constant_lut() {
        // A constant LUT exercises the trivial path (no CMult at all).
        let ctx = BfvContext::new(BfvParams::test_small());
        let mut sampler = Sampler::from_seed(556);
        let sk = SecretKey::generate(&ctx, &mut sampler);
        let rlk = RelinKey::generate(&ctx, &sk, &mut sampler);
        let ev = BfvEvaluator::new(&ctx);
        let enc = ctx.encoder();
        let lut = Lut::from_fn(ctx.t(), |_| 42);
        let inputs: Vec<u64> = (0..ctx.n() as u64).collect();
        let ct = ev.encrypt_sk(&enc.encode(&inputs), &sk, &mut sampler);
        let (out, stats) = fbs_apply(&ctx, &ct, &lut, &rlk);
        let got = enc.decode(&ev.decrypt(&out, &sk));
        assert!(got.iter().all(|&v| v == 42));
        assert_eq!(stats.cmult, 0);
    }

    #[test]
    fn fbs_refreshes_noise() {
        // After FBS the ciphertext must have enough budget for another
        // round of linear ops — the bootstrapping property.
        let ctx = BfvContext::new(BfvParams::test_small());
        let mut sampler = Sampler::from_seed(557);
        let sk = SecretKey::generate(&ctx, &mut sampler);
        let rlk = RelinKey::generate(&ctx, &sk, &mut sampler);
        let ev = BfvEvaluator::new(&ctx);
        let enc = ctx.encoder();
        let lut = Lut::from_signed_fn(ctx.t(), |x| x.max(0));
        let inputs: Vec<u64> = vec![5; ctx.n()];
        let ct = ev.encrypt_sk(&enc.encode(&inputs), &sk, &mut sampler);
        let (out, _) = fbs_apply(&ctx, &ct, &lut, &rlk);
        let budget = ev.noise_budget(&out, &sk);
        assert!(budget > 20, "post-FBS budget = {budget}");
    }
}
