//! Security estimation for the RLWE/LWE parameter sets (§3.3's
//! "> 128 bits security" claim).
//!
//! Estimates follow the Homomorphic Encryption Security Standard tables
//! (Albrecht et al.): for a ternary secret at error width σ ≈ 3.2, each
//! ring dimension admits a maximum `log₂ Q` for a given security level.
//! Intermediate dimensions are interpolated linearly — the same methodology
//! libraries like SEAL use for parameter validation.

/// Security level classes of the HE standard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SecurityLevel {
    /// 128-bit classical security.
    Bits128,
    /// 192-bit classical security.
    Bits192,
    /// 256-bit classical security.
    Bits256,
}

/// (n, max log₂ q) rows for ternary-secret LWE at 128-bit classical
/// security (HE standard, ternary column).
const MAX_LOGQ_128: &[(usize, u32)] = &[
    (1024, 27),
    (2048, 54),
    (4096, 109),
    (8192, 218),
    (16384, 438),
    (32768, 881),
    (65536, 1770),
];

const MAX_LOGQ_192: &[(usize, u32)] = &[
    (1024, 19),
    (2048, 37),
    (4096, 75),
    (8192, 152),
    (16384, 305),
    (32768, 611),
    (65536, 1220),
];

const MAX_LOGQ_256: &[(usize, u32)] = &[
    (1024, 14),
    (2048, 29),
    (4096, 58),
    (8192, 118),
    (16384, 237),
    (32768, 476),
    (65536, 950),
];

fn table(level: SecurityLevel) -> &'static [(usize, u32)] {
    match level {
        SecurityLevel::Bits128 => MAX_LOGQ_128,
        SecurityLevel::Bits192 => MAX_LOGQ_192,
        SecurityLevel::Bits256 => MAX_LOGQ_256,
    }
}

/// Maximum `log₂ q` admissible at dimension `n` for the level
/// (log-linear interpolation between table rows; conservative clamp below
/// the smallest row).
pub fn max_log_q(n: usize, level: SecurityLevel) -> u32 {
    let t = table(level);
    if n <= t[0].0 {
        // extrapolate downward proportionally (lattice hardness is roughly
        // linear in n at fixed log q)
        return ((t[0].1 as f64) * n as f64 / t[0].0 as f64) as u32;
    }
    for w in t.windows(2) {
        let (n0, q0) = w[0];
        let (n1, q1) = w[1];
        if n <= n1 {
            let f = (n - n0) as f64 / (n1 - n0) as f64;
            return (q0 as f64 + f * (q1 - q0) as f64) as u32;
        }
    }
    t.last().expect("non-empty table").1
}

/// Whether an (n, log₂ q) pair meets a security level.
pub fn meets_level(n: usize, log_q: u32, level: SecurityLevel) -> bool {
    log_q <= max_log_q(n, level)
}

/// Estimated security level of a parameter pair (the strongest satisfied
/// class, or `None` if below 128 bits).
pub fn estimate(n: usize, log_q: u32) -> Option<SecurityLevel> {
    if meets_level(n, log_q, SecurityLevel::Bits256) {
        Some(SecurityLevel::Bits256)
    } else if meets_level(n, log_q, SecurityLevel::Bits192) {
        Some(SecurityLevel::Bits192)
    } else if meets_level(n, log_q, SecurityLevel::Bits128) {
        Some(SecurityLevel::Bits128)
    } else {
        None
    }
}

/// Validates a full [`crate::params::BfvParams`]: both the RLWE pair
/// `(N, log Q)` and the LWE pair `(n, log q = log t)` must clear 128 bits.
pub fn validate_params(params: &crate::params::BfvParams) -> Result<(), String> {
    let log_q = params.q_bits() as u32;
    if !meets_level(params.n, log_q, SecurityLevel::Bits128) {
        return Err(format!(
            "RLWE (N = {}, log Q = {log_q}) below 128-bit security (max log Q = {})",
            params.n,
            max_log_q(params.n, SecurityLevel::Bits128)
        ));
    }
    let log_t = 64 - (params.t - 1).leading_zeros();
    if !meets_level(params.lwe_n, log_t, SecurityLevel::Bits128) {
        return Err(format!(
            "LWE (n = {}, log q = {log_t}) below 128-bit security",
            params.lwe_n
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::BfvParams;

    #[test]
    fn production_parameters_clear_128_bits() {
        // §3.3: N = 2^15 with log Q = 720 (max 881), LWE n = 2048 with
        // q = t = 65537 (17 bits, max 54) — both comfortably 128-bit.
        let p = BfvParams::athena_production();
        validate_params(&p).expect("production params are 128-bit secure");
        assert!(meets_level(1 << 15, 720, SecurityLevel::Bits128));
        assert!(meets_level(2048, 17, SecurityLevel::Bits128));
        // The LWE layer even clears 256 bits at its tiny modulus.
        assert_eq!(estimate(2048, 17), Some(SecurityLevel::Bits256));
    }

    #[test]
    fn ckks_large_params_also_valid_but_bigger() {
        // The CKKS baselines' N = 2^16, log Q ≈ 1501 also clear 128 bits —
        // the point is Athena gets there with 4× less ciphertext.
        assert!(meets_level(1 << 16, 1501, SecurityLevel::Bits128));
    }

    #[test]
    fn oversized_modulus_fails() {
        assert!(!meets_level(1 << 15, 900, SecurityLevel::Bits128));
        assert_eq!(estimate(1 << 15, 900), None);
        let err = validate_params(&BfvParams {
            n: 4096,
            q_primes: athena_math::prime::ntt_primes(55, 4096, 4), // 220 bits > 109
            t: 40961,                                              // ≡ 1 mod 8192
            lwe_n: 1024,
            sigma: 3.2,
            lwe_ks_base_log: 8,
        });
        assert!(err.is_err());
    }

    #[test]
    fn interpolation_is_monotone() {
        let mut prev = 0;
        for n in [1024usize, 3000, 4096, 10_000, 32768, 65536] {
            let q = max_log_q(n, SecurityLevel::Bits128);
            assert!(q >= prev, "monotone in n");
            prev = q;
        }
        // Higher levels admit less modulus.
        for n in [2048usize, 8192, 32768] {
            assert!(max_log_q(n, SecurityLevel::Bits256) < max_log_q(n, SecurityLevel::Bits192));
            assert!(max_log_q(n, SecurityLevel::Bits192) < max_log_q(n, SecurityLevel::Bits128));
        }
    }
}
