//! Framework Step ④: packing `n`-dimensional LWE ciphertexts (mod `t`)
//! back into one BFV ciphertext (mod `Q`) whose **slots** hold the LWE
//! plaintexts.
//!
//! The operation is a homomorphic decryption: slot `i` of the result must
//! equal `b_i + ⟨a⃗_i, s'⟩ (mod t)`. The mask matrix `A = (a⃗_i)` and bodies
//! `b⃗` are *plaintext*; only the LWE secret `s'` is encrypted (the "packing
//! key"). Two implementations are provided:
//!
//! * [`ColumnPackingKey`] — one BFV ciphertext per LWE coordinate
//!   (`n` PMult + HAdd, zero rotations; big key). Simple and robust.
//! * [`BsgsPackingKey`] — one BFV ciphertext holding `s'` replicated across
//!   slots; the Halevi–Shoup diagonal method with a baby-step/giant-step
//!   rotation schedule (`O(√n)` HRot, `n` PMult). This matches the paper's
//!   Table 3 complexity (`O(C)` PMult, `O(C)` HRot via BSGS \[7\]).

use athena_math::bsgs::BsgsSplit;
use athena_math::par;
use athena_math::poly::Domain;
use athena_math::sampler::Sampler;
use athena_math::stats::op_stats::HomOpCounts;

use crate::bfv::{
    BfvCiphertext, BfvContext, BfvEvaluator, GaloisKeys, HoistedCiphertext, SecretKey,
};
use crate::error::FheError;
use crate::lwe::{LweCiphertext, LweSecret};

/// Validates the shared preconditions of both packing strategies, raising
/// a typed [`FheError`] payload on violation.
fn check_pack_operands(lwes: &[LweCiphertext], n_slots: usize, n_lwe: usize, t: u64) {
    if lwes.len() > n_slots {
        crate::error::raise(FheError::PackCapacity {
            lwes: lwes.len(),
            slots: n_slots,
        });
    }
    for ct in lwes {
        if ct.dim() != n_lwe {
            crate::error::raise(FheError::LweDimension {
                got: ct.dim(),
                expected: n_lwe,
            });
        }
        if ct.q() != t {
            crate::error::raise(FheError::LweModulus {
                got: ct.q(),
                expected: t,
            });
        }
    }
}

/// Packing key for the naive column method: `pk[j]` encrypts the constant
/// `s'_j` in every slot. The component ciphertexts are key material — they
/// only ever feed PMult — so they are stored in Eval form.
#[derive(Debug, Clone)]
pub struct ColumnPackingKey {
    keys: Vec<BfvCiphertext>,
}

impl ColumnPackingKey {
    /// Generates the key (n BFV encryptions under the RLWE secret).
    pub fn generate(
        ctx: &BfvContext,
        rlwe_sk: &SecretKey,
        lwe_sk: &LweSecret,
        sampler: &mut Sampler,
    ) -> Self {
        let ev = BfvEvaluator::new(ctx);
        let enc = ctx.encoder();
        let keys = lwe_sk
            .coeffs()
            .iter()
            .map(|&sj| {
                let slots = vec![enc.ring().modulus().from_i64(sj); ctx.n()];
                ev.encrypt_sk(&enc.encode(&slots), rlwe_sk, sampler)
                    .to_eval(ctx)
            })
            .collect();
        Self { keys }
    }

    /// Number of component ciphertexts (`n`).
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the key is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Key size in bytes (Table 1 accounting).
    pub fn bytes(&self, ctx: &BfvContext) -> usize {
        self.len() * ctx.params().ciphertext_bytes()
    }

    /// Expected operation counts of one [`pack`](Self::pack) call with at
    /// least one non-trivial LWE among the inputs: one PMult + HAdd per
    /// LWE coordinate, plus the plaintext-bodies add. A mask *column* that
    /// happens to be all-zero across every slot is skipped at run time, so
    /// the measured count can only fall below this (for uniform LWE masks
    /// the probability is ≈ `t^-slots` per column — negligible).
    pub fn expected_op_counts(&self, nontrivial: usize) -> HomOpCounts {
        if nontrivial == 0 {
            return HomOpCounts {
                hadd: 1,
                ..HomOpCounts::default()
            };
        }
        HomOpCounts {
            pmult: self.len() as u64,
            hadd: self.len() as u64 + 1,
            ..HomOpCounts::default()
        }
    }

    /// Packs up to `N` LWE ciphertexts; missing entries become zero slots.
    ///
    /// # Panics
    ///
    /// Panics with a typed [`FheError`] payload if more than `N`
    /// ciphertexts are supplied or dimensions mismatch.
    pub fn pack(&self, ctx: &BfvContext, lwes: &[LweCiphertext]) -> BfvCiphertext {
        let n_slots = ctx.n();
        let n_lwe = self.keys.len();
        check_pack_operands(lwes, n_slots, n_lwe, ctx.t());
        let ev = BfvEvaluator::new(ctx);
        let enc = ctx.encoder();
        // The per-coordinate terms col_j ⊙ Enc(s'_j) are independent, so they
        // run on the parallel layer; the fold below is exact modular
        // arithmetic, so the result is bit-identical for any thread count.
        let work = 2 * ctx.q_basis().len() * n_slots;
        let terms = par::parallel_map_range_with(par::threads_for(n_lwe, work), n_lwe, |j| {
            let mut col = vec![0u64; n_slots];
            let mut all_zero = true;
            for (i, ct) in lwes.iter().enumerate() {
                col[i] = ct.a()[j];
                all_zero &= col[i] == 0;
            }
            if all_zero {
                return None;
            }
            Some(ev.mul_plain(&self.keys[j], &enc.encode(&col)))
        });
        // The Eval-resident keys make every term Eval; the whole fold stays
        // NTT-free and the packed ciphertext is handed on in Eval form.
        let mut acc = BfvCiphertext::zero_in(ctx, Domain::Eval);
        for term in terms.into_iter().flatten() {
            ev.add_assign(&mut acc, &term);
        }
        // + plaintext bodies b_i
        let mut bodies = vec![0u64; n_slots];
        for (i, ct) in lwes.iter().enumerate() {
            bodies[i] = ct.b();
        }
        ev.add_plain(&acc, &enc.encode(&bodies))
    }
}

/// Packing key for the BSGS diagonal method: the LWE secret replicated
/// across slots, plus the Galois keys for the rotation schedule.
///
/// The key ciphertext never changes between pack calls, so it is stored
/// **hoisted** ([`HoistedCiphertext`]): its `c1` digit decomposition is
/// computed once at [`generate`](Self::generate) time and every baby
/// rotation in every subsequent [`pack`](Self::pack) call is an NTT-free
/// digit permutation.
#[derive(Debug, Clone)]
pub struct BsgsPackingKey {
    key: HoistedCiphertext,
    lwe_dim: usize,
    split: BsgsSplit,
    /// Giant-group count (`giant` clamped to the groups the schedule
    /// actually visits).
    groups: usize,
}

impl BsgsPackingKey {
    /// The BSGS schedule for an LWE dimension: the balanced split and the
    /// clamped giant-group count. Static — the plan compiler sizes key
    /// material from this before any key exists.
    pub fn schedule(lwe_dim: usize) -> (BsgsSplit, usize) {
        let split = BsgsSplit::balanced(lwe_dim);
        let groups = split.giant.min(lwe_dim.div_ceil(split.baby.max(1)));
        (split, groups)
    }

    /// The Galois elements the schedule for `lwe_dim` needs: rotations
    /// `1..baby` (baby steps) and `baby, 2·baby, …` for the clamped giant
    /// groups. The key no longer owns these — they are merged into the
    /// engine's single deduplicated [`GaloisKeys`] set alongside the S2C
    /// elements and passed to [`pack`](Self::pack).
    pub fn required_galois_elements_for(ctx: &BfvContext, lwe_dim: usize) -> Vec<usize> {
        let (split, groups) = Self::schedule(lwe_dim);
        let enc = ctx.encoder();
        let mut elements = Vec::new();
        for b in 1..split.baby {
            elements.push(enc.galois_for_rotation(b));
        }
        for g in 1..groups {
            elements.push(enc.galois_for_rotation(g * split.baby));
        }
        elements.sort_unstable();
        elements.dedup();
        elements
    }

    /// Generates the key (the replicated-secret ciphertext and its hoisted
    /// digit cache; no Galois material — see
    /// [`required_galois_elements_for`](Self::required_galois_elements_for)).
    ///
    /// # Panics
    ///
    /// Panics unless the LWE dimension divides the slot row size (`N/2`).
    pub fn generate(
        ctx: &BfvContext,
        rlwe_sk: &SecretKey,
        lwe_sk: &LweSecret,
        sampler: &mut Sampler,
    ) -> Self {
        let n_lwe = lwe_sk.dim();
        let row = ctx.encoder().row_size();
        if !row.is_multiple_of(n_lwe) {
            crate::error::raise(FheError::GroupMisfit { lwe_n: n_lwe, row });
        }
        let ev = BfvEvaluator::new(ctx);
        let enc = ctx.encoder();
        // Replicate s' with period n along both rows.
        let slots: Vec<u64> = (0..ctx.n())
            .map(|i| {
                let c = i % row;
                enc.ring().modulus().from_i64(lwe_sk.coeffs()[c % n_lwe])
            })
            .collect();
        // Hoist the key once: the digit decomposition is part of the key
        // material, paid at generation instead of on every pack call.
        let key = ev.hoist(&ev.encrypt_sk(&enc.encode(&slots), rlwe_sk, sampler));
        let (split, groups) = Self::schedule(n_lwe);
        Self {
            key,
            lwe_dim: n_lwe,
            split,
            groups,
        }
    }

    /// The Galois elements this key's schedule needs.
    pub fn required_galois_elements(&self, ctx: &BfvContext) -> Vec<usize> {
        Self::required_galois_elements_for(ctx, self.lwe_dim)
    }

    /// Key size in bytes: 1 ciphertext + hoisted digit cache. The Galois
    /// keys the schedule rotates with live in the engine's shared,
    /// deduplicated set and are accounted there, once.
    pub fn bytes(&self, ctx: &BfvContext) -> usize {
        ctx.params().ciphertext_bytes() + self.key.digit_bytes()
    }

    /// Number of HRot operations one pack call performs: `baby − 1` baby
    /// rotations of the key plus `groups − 1` giant output rotations.
    pub fn rotation_count(&self) -> usize {
        (self.split.baby - 1) + (self.groups - 1)
    }

    /// Expected operation counts of one [`pack`](Self::pack) call: one
    /// PMult per mask diagonal (there are `lwe_dim` of them across the
    /// giant groups), the in-group and cross-group HAdd folds, the bodies
    /// add, and [`rotation_count`](Self::rotation_count) HRots. All-zero
    /// diagonals are skipped at run time, so measured counts can only fall
    /// below this (negligibly likely for real LWE masks).
    pub fn expected_op_counts(&self) -> HomOpCounts {
        Self::expected_op_counts_for(self.lwe_dim)
    }

    /// [`expected_op_counts`](Self::expected_op_counts) computed from the
    /// dimension alone — the plan compiler's entry point, usable before any
    /// key exists.
    pub fn expected_op_counts_for(lwe_dim: usize) -> HomOpCounts {
        let (split, groups_n) = Self::schedule(lwe_dim);
        let mut pmult = 0u64;
        let mut hadd = 0u64;
        for g in 0..groups_n {
            let shift = g * split.baby;
            let terms = split.baby.min(lwe_dim.saturating_sub(shift)) as u64;
            if terms == 0 {
                continue;
            }
            pmult += terms;
            hadd += terms - 1;
        }
        hadd += groups_n as u64 - 1; // cross-group fold
        hadd += 1; // plaintext bodies
        HomOpCounts {
            pmult,
            hadd,
            hrot: ((split.baby - 1) + (groups_n - 1)) as u64,
            ..HomOpCounts::default()
        }
    }

    /// Packs up to `N` LWE ciphertexts with the BSGS diagonal method,
    /// rotating with the caller's (shared, deduplicated) Galois key set.
    ///
    /// # Panics
    ///
    /// Panics with a typed [`FheError`] payload on dimension/modulus
    /// mismatches or if `gk` is missing an element the schedule needs.
    pub fn pack(&self, ctx: &BfvContext, lwes: &[LweCiphertext], gk: &GaloisKeys) -> BfvCiphertext {
        let n_slots = ctx.n();
        let row = ctx.encoder().row_size();
        let n_lwe = self.lwe_dim;
        check_pack_operands(lwes, n_slots, n_lwe, ctx.t());
        // Fail up front on a missing key, not mid-schedule.
        gk.ensure_covers(&self.required_galois_elements(ctx));
        let ev = BfvEvaluator::new(ctx);
        let enc = ctx.encoder();
        // diag_d[i] = A[i][(c_i + d) mod n], c_i = (i mod row) mod n
        let diag = |d: usize| -> Vec<u64> {
            (0..n_slots)
                .map(|i| {
                    if i < lwes.len() {
                        let c = (i % row) % n_lwe;
                        lwes[i].a()[(c + d) % n_lwe]
                    } else {
                        0
                    }
                })
                .collect()
        };
        // Baby rotations of the key are hoisted: each permutes the digit
        // cache computed once at `generate` — no NTTs, one worker each.
        let key = &self.key;
        let baby_keys: Vec<BfvCiphertext> = par::parallel_map_range(self.split.baby, |b| {
            if b == 0 {
                key.ciphertext().clone()
            } else {
                key.rotate_rows(ctx, b, gk)
            }
        });
        // Each giant group — the inner diagonal sum plus one output rotation
        // — is independent of the others; run the groups on the parallel
        // layer, then fold in order (exact arithmetic, so the grouping does
        // not change the result).
        let groups: Vec<Option<BfvCiphertext>> = par::parallel_map_range(self.groups, |g| {
            let shift = g * self.split.baby;
            // inner = Σ_b rot_{-shift}(diag_{shift+b}) ⊙ rot_b(key)
            let mut inner: Option<BfvCiphertext> = None;
            for (b, baby_key) in baby_keys.iter().enumerate() {
                let d = shift + b;
                if d >= n_lwe {
                    break;
                }
                let dv = diag(d);
                if dv.iter().all(|&x| x == 0) {
                    continue;
                }
                // Rotate the diagonal right by `shift` so that the final
                // left-rotation by `shift` restores alignment:
                // inv_rot[c] = dv[c - shift] (per row).
                let inv_rot: Vec<u64> = (0..n_slots)
                    .map(|i| {
                        let r = i / row;
                        let c = i % row;
                        dv[r * row + (c + row - (shift % row)) % row]
                    })
                    .collect();
                let term = ev.mul_plain(baby_key, &enc.encode(&inv_rot));
                inner = Some(match inner {
                    None => term,
                    Some(mut a) => {
                        ev.add_assign(&mut a, &term);
                        a
                    }
                });
            }
            inner.map(|inn| {
                if shift == 0 {
                    inn
                } else {
                    ev.rotate_rows(&inn, shift, gk)
                }
            })
        });
        let mut acc: Option<BfvCiphertext> = None;
        for rotated in groups.into_iter().flatten() {
            acc = Some(match acc {
                None => rotated,
                Some(mut a) => {
                    ev.add_assign(&mut a, &rotated);
                    a
                }
            });
        }
        // The key, its baby rotations, and every group output are Eval, so
        // the schedule never leaves NTT form; the result stays Eval too.
        let acc = acc.unwrap_or_else(|| BfvCiphertext::zero_in(ctx, Domain::Eval));
        let mut bodies = vec![0u64; n_slots];
        for (i, ct) in lwes.iter().enumerate() {
            bodies[i] = ct.b();
        }
        ev.add_plain(&acc, &enc.encode(&bodies))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::encode_coeff;
    use crate::extract::{mod_switch_rlwe, rlwe_secret_as_lwe_mod, sample_extract_all};
    use crate::params::BfvParams;

    struct Fixture {
        ctx: BfvContext,
        rlwe_sk: SecretKey,
        lwe_sk: LweSecret,
        sampler: Sampler,
    }

    fn setup() -> Fixture {
        let ctx = BfvContext::new(BfvParams::test_small());
        let mut sampler = Sampler::from_seed(2024);
        let rlwe_sk = SecretKey::generate(&ctx, &mut sampler);
        let lwe_sk = LweSecret::generate(ctx.params().lwe_n, ctx.t(), &mut sampler);
        Fixture {
            ctx,
            rlwe_sk,
            lwe_sk,
            sampler,
        }
    }

    fn fresh_lwes(f: &mut Fixture, msgs: &[u64]) -> Vec<LweCiphertext> {
        msgs.iter()
            .map(|&m| LweCiphertext::encrypt(m, &f.lwe_sk, &mut f.sampler))
            .collect()
    }

    #[test]
    fn column_packing_recovers_lwe_plaintexts() {
        let mut f = setup();
        let pk = ColumnPackingKey::generate(&f.ctx, &f.rlwe_sk, &f.lwe_sk, &mut f.sampler);
        // Put messages at multiples of 16 so the small LWE noise is visible
        // in LSBs but the value identifiable.
        let msgs: Vec<u64> = (0..64u64).map(|i| (i % 16) * 16).collect();
        let lwes = fresh_lwes(&mut f, &msgs);
        let packed = pk.pack(&f.ctx, &lwes);
        let ev = BfvEvaluator::new(&f.ctx);
        let slots = f.ctx.encoder().decode(&ev.decrypt(&packed, &f.rlwe_sk));
        for (i, &want) in msgs.iter().enumerate() {
            let got = slots[i] as i64;
            let want = want as i64;
            let diff = (got - want).rem_euclid(257);
            let diff = diff.min(257 - diff);
            assert!(diff <= 20, "slot {i}: got {got}, want {want}");
        }
        // unpacked tail is zero-ish
        for (i, &s) in slots.iter().enumerate().skip(msgs.len()) {
            let c = if s > 128 { s as i64 - 257 } else { s as i64 };
            assert!(c.abs() <= 20, "tail slot {i} = {c}");
        }
    }

    #[test]
    fn bsgs_packing_matches_column_packing() {
        let mut f = setup();
        let col = ColumnPackingKey::generate(&f.ctx, &f.rlwe_sk, &f.lwe_sk, &mut f.sampler);
        let bsgs = BsgsPackingKey::generate(&f.ctx, &f.rlwe_sk, &f.lwe_sk, &mut f.sampler);
        let gk = GaloisKeys::generate(
            &f.ctx,
            &f.rlwe_sk,
            &bsgs.required_galois_elements(&f.ctx),
            &mut f.sampler,
        );
        let msgs: Vec<u64> = (0..32u64).map(|i| i * 8 % 257).collect();
        let lwes = fresh_lwes(&mut f, &msgs);
        let ev = BfvEvaluator::new(&f.ctx);
        let a = f
            .ctx
            .encoder()
            .decode(&ev.decrypt(&col.pack(&f.ctx, &lwes), &f.rlwe_sk));
        let b = f
            .ctx
            .encoder()
            .decode(&ev.decrypt(&bsgs.pack(&f.ctx, &lwes, &gk), &f.rlwe_sk));
        // Both compute exactly the same plaintext function of (A, b, s'), so
        // the decrypted slots must agree exactly (same LWE noise embedded).
        assert_eq!(a, b);
    }

    #[test]
    fn bsgs_uses_sqrt_rotations() {
        let f = {
            let mut f = setup();
            BsgsPackingKey::generate(&f.ctx, &f.rlwe_sk, &f.lwe_sk, &mut f.sampler)
        };
        // n = 32 -> baby 6, giant 6 -> ~10 rotations, far below 32.
        assert!(
            f.rotation_count() <= 12,
            "rotations = {}",
            f.rotation_count()
        );
    }

    #[test]
    fn pack_after_extract_roundtrip() {
        // The full Step ②→③→④ chain in the noise-correct order: mod-switch
        // the RLWE ciphertext to an intermediate RNS prime, extract, switch
        // dimension N -> n at that prime (key-switch noise is negligible
        // there), mod-switch each LWE down to t, and pack.
        let mut f = setup();
        let ev = BfvEvaluator::new(&f.ctx);
        let n = f.ctx.n();
        let msgs: Vec<i64> = (0..n as i64).map(|i| (i % 8) * 32).collect();
        let m = encode_coeff(&msgs, f.ctx.t(), n);
        let ct = ev.encrypt_sk(&m, &f.rlwe_sk, &mut f.sampler);
        let q_mid = f.ctx.params().q_primes[0];
        let small = mod_switch_rlwe(&f.ctx, &ct, q_mid);
        let lwes = sample_extract_all(&small);
        let big_lwe_sk = rlwe_secret_as_lwe_mod(&f.rlwe_sk, q_mid);
        let lwe_sk_mid = LweSecret::from_coeffs(f.lwe_sk.coeffs().to_vec(), q_mid);
        let ksk = crate::lwe::LweKeySwitchKey::generate(
            &big_lwe_sk,
            &lwe_sk_mid,
            f.ctx.params().lwe_ks_base_log,
            &mut f.sampler,
        );
        let switched: Vec<LweCiphertext> = lwes
            .iter()
            .map(|c| crate::lwe::lwe_mod_switch(&ksk.switch(c), f.ctx.t()))
            .collect();
        let pk = ColumnPackingKey::generate(&f.ctx, &f.rlwe_sk, &f.lwe_sk, &mut f.sampler);
        let packed = pk.pack(&f.ctx, &switched);
        let slots = f.ctx.encoder().decode(&ev.decrypt(&packed, &f.rlwe_sk));
        let t = f.ctx.t() as i64;
        for (i, (&got, &want)) in slots.iter().zip(&msgs).enumerate() {
            let got = got as i64;
            let diff = (got - want).rem_euclid(t);
            let diff = diff.min(t - diff);
            assert!(diff <= 24, "slot {i}: got {got}, want {want}, diff {diff}");
        }
    }
}
