//! Plaintext encoders for BFV over `Z_t[X]/(X^N + 1)` with prime
//! `t ≡ 1 (mod 2N)`.
//!
//! Two encodings are used by the Athena framework:
//!
//! * **Coefficient encoding** (`encode_coeff`) — values live in polynomial
//!   coefficients; this is what the convolution layer uses (Eq. 1) because
//!   polynomial multiplication then *is* the sliding inner product.
//! * **Slot (batch) encoding** (`SlotEncoder`) — values live in the CRT
//!   "slots"; element-wise plaintext ops act in parallel on all slots, which
//!   is what FBS needs to evaluate a LUT polynomial on every value at once.
//!
//! Slots are arranged SEAL-style as a 2×(N/2) matrix. The Galois
//! automorphism `X → X^{3^k}` rotates each row left by `k`; `X → X^{−1}`
//! swaps the rows.

use athena_math::modops::Modulus;
use athena_math::ntt::NttTables;
use athena_math::poly::{Domain, Poly, Ring};

use crate::error::FheError;

/// Encoder/decoder between slot vectors over `Z_t` and plaintext polynomials.
///
/// # Examples
///
/// ```
/// use athena_fhe::encoder::SlotEncoder;
/// let enc = SlotEncoder::new(257, 16);
/// let values: Vec<u64> = (0..16).collect();
/// let poly = enc.encode(&values);
/// assert_eq!(enc.decode(&poly), values);
/// ```
#[derive(Debug, Clone)]
pub struct SlotEncoder {
    ring: Ring,
    /// slot index -> NTT output index
    slot_to_ntt: Vec<usize>,
    /// NTT output index -> slot index
    ntt_to_slot: Vec<usize>,
}

impl SlotEncoder {
    /// Creates an encoder for prime `t ≡ 1 (mod 2n)`.
    ///
    /// # Panics
    ///
    /// Panics if the congruence fails.
    pub fn new(t: u64, n: usize) -> Self {
        let ring = Ring::new(t, n);
        let two_n = 2 * n as u64;
        let tm = Modulus::new(two_n);
        // exponent -> NTT index
        let ntt = ring.ntt();
        let mut index_of_exp = vec![usize::MAX; two_n as usize];
        for j in 0..n {
            index_of_exp[ntt.eval_exponent(j) as usize] = j;
        }
        // slot (r, c): exponent 3^c * (-1)^r mod 2N
        let half = n / 2;
        let mut slot_to_ntt = vec![usize::MAX; n];
        let mut e = 1u64;
        for c in 0..half {
            let j0 = index_of_exp[e as usize];
            let j1 = index_of_exp[(two_n - e) as usize]; // -e ≡ 2N - e
            slot_to_ntt[c] = j0;
            slot_to_ntt[half + c] = j1;
            e = tm.mul(e, 3);
        }
        let mut ntt_to_slot = vec![usize::MAX; n];
        for (s, &j) in slot_to_ntt.iter().enumerate() {
            ntt_to_slot[j] = s;
        }
        Self {
            ring,
            slot_to_ntt,
            ntt_to_slot,
        }
    }

    /// The plaintext ring (over `t`).
    pub fn ring(&self) -> &Ring {
        &self.ring
    }

    /// The plaintext modulus.
    pub fn t(&self) -> u64 {
        self.ring.modulus().value()
    }

    /// Number of slots (`N`).
    pub fn slot_count(&self) -> usize {
        self.ring.n()
    }

    /// Slots per row (`N/2`).
    pub fn row_size(&self) -> usize {
        self.ring.n() / 2
    }

    /// The NTT tables over `Z_t`.
    pub fn ntt(&self) -> &NttTables {
        self.ring.ntt()
    }

    /// Encodes a slot vector (values mod `t`, length `N`) into a
    /// coefficient-domain plaintext polynomial.
    ///
    /// # Panics
    ///
    /// Panics with a typed [`FheError::EncodeLength`] payload if
    /// `values.len() != N`.
    pub fn encode(&self, values: &[u64]) -> Poly {
        let n = self.ring.n();
        if values.len() != n {
            crate::error::raise(FheError::EncodeLength {
                got: values.len(),
                expected: n,
            });
        }
        let t = self.ring.modulus();
        let mut eval = vec![0u64; n];
        for (s, &v) in values.iter().enumerate() {
            eval[self.slot_to_ntt[s]] = t.reduce(v);
        }
        let mut p = Poly::from_values(eval, Domain::Eval);
        self.ring.to_coeff_inplace(&mut p);
        p
    }

    /// Encodes signed slot values.
    pub fn encode_i64(&self, values: &[i64]) -> Poly {
        let t = self.ring.modulus();
        let u: Vec<u64> = values.iter().map(|&v| t.from_i64(v)).collect();
        self.encode(&u)
    }

    /// Decodes a coefficient-domain plaintext polynomial into its slot
    /// vector.
    pub fn decode(&self, p: &Poly) -> Vec<u64> {
        let e = self.ring.to_eval(p);
        (0..self.ring.n())
            .map(|s| e.values()[self.slot_to_ntt[s]])
            .collect()
    }

    /// The evaluation exponent of slot `i`: the plaintext value in slot `i`
    /// is the polynomial evaluated at `ψ^{e}` with `e` this exponent.
    pub fn slot_eval_exponent(&self, i: usize) -> u64 {
        self.ring.ntt().eval_exponent(self.slot_to_ntt[i])
    }

    /// The slot index whose value sits at NTT output index `j` (inverse of
    /// the slot→NTT map).
    pub fn slot_of_ntt_index(&self, j: usize) -> usize {
        self.ntt_to_slot[j]
    }

    /// Galois element realizing "rotate each row left by `k`":
    /// `X → X^{3^k mod 2N}`.
    pub fn galois_for_rotation(&self, k: usize) -> usize {
        let two_n = 2 * self.ring.n() as u64;
        let m = Modulus::new(two_n);
        m.pow(3, k as u64 % (self.ring.n() as u64 / 2)) as usize
    }

    /// Galois element realizing the row swap: `X → X^{2N−1}`.
    pub fn galois_for_row_swap(&self) -> usize {
        2 * self.ring.n() - 1
    }

    /// Applies "rotate rows left by k" to a plain slot vector (reference
    /// semantics for tests and plaintext mirrors).
    pub fn rotate_slots(&self, slots: &[u64], k: usize) -> Vec<u64> {
        let half = self.row_size();
        assert_eq!(slots.len(), 2 * half);
        let mut out = vec![0u64; slots.len()];
        for c in 0..half {
            out[c] = slots[(c + k) % half];
            out[half + c] = slots[half + (c + k) % half];
        }
        out
    }

    /// Applies the row swap to a plain slot vector.
    pub fn swap_rows(&self, slots: &[u64]) -> Vec<u64> {
        let half = self.row_size();
        let mut out = slots[half..].to_vec();
        out.extend_from_slice(&slots[..half]);
        out
    }
}

/// Coefficient encoding: places signed values directly into polynomial
/// coefficients mod `t` (length-N, zero-padded).
///
/// # Panics
///
/// Panics with a typed [`FheError::CoeffOverflow`] payload if more than
/// `n` values are supplied.
pub fn encode_coeff(values: &[i64], t: u64, n: usize) -> Poly {
    if values.len() > n {
        crate::error::raise(FheError::CoeffOverflow {
            got: values.len(),
            max: n,
        });
    }
    let m = Modulus::new(t);
    let mut v = vec![0u64; n];
    for (i, &x) in values.iter().enumerate() {
        v[i] = m.from_i64(x);
    }
    Poly::from_values(v, Domain::Coeff)
}

/// Reads centered signed values back out of a coefficient-encoded plaintext.
pub fn decode_coeff(p: &Poly, t: u64) -> Vec<i64> {
    let m = Modulus::new(t);
    p.values().iter().map(|&x| m.center(x)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let enc = SlotEncoder::new(257, 32);
        let vals: Vec<u64> = (0..32u64).map(|i| (i * 13 + 7) % 257).collect();
        assert_eq!(enc.decode(&enc.encode(&vals)), vals);
    }

    #[test]
    fn encoding_is_linear() {
        let enc = SlotEncoder::new(257, 16);
        let a: Vec<u64> = (0..16u64).map(|i| i % 257).collect();
        let b: Vec<u64> = (0..16u64).map(|i| (i * i) % 257).collect();
        let sum: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| (x + y) % 257).collect();
        let ea = enc.encode(&a);
        let eb = enc.encode(&b);
        let esum = enc.ring().add(&ea, &eb);
        assert_eq!(enc.decode(&esum), sum);
    }

    #[test]
    fn slotwise_product_is_poly_product() {
        let enc = SlotEncoder::new(257, 16);
        let a: Vec<u64> = (1..17u64).collect();
        let b: Vec<u64> = (3..19u64).collect();
        let prod_slots: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| (x * y) % 257).collect();
        let p = enc
            .ring()
            .to_coeff(&enc.ring().mul(&enc.encode(&a), &enc.encode(&b)));
        assert_eq!(enc.decode(&p), prod_slots);
    }

    #[test]
    fn rotation_via_automorphism_matches_reference() {
        let enc = SlotEncoder::new(257, 32);
        let vals: Vec<u64> = (0..32u64).collect();
        let p = enc.encode(&vals);
        for k in [1usize, 3, 7, 15] {
            let g = enc.galois_for_rotation(k);
            let rotated = enc.ring().automorphism_coeff(&p, g);
            assert_eq!(
                enc.decode(&rotated),
                enc.rotate_slots(&vals, k),
                "rotation k={k}"
            );
        }
    }

    #[test]
    fn row_swap_via_automorphism() {
        let enc = SlotEncoder::new(257, 32);
        let vals: Vec<u64> = (0..32u64).map(|i| i * 2 + 1).collect();
        let p = enc.encode(&vals);
        let swapped = enc.ring().automorphism_coeff(&p, enc.galois_for_row_swap());
        assert_eq!(enc.decode(&swapped), enc.swap_rows(&vals));
    }

    #[test]
    fn coeff_encode_roundtrip() {
        let p = encode_coeff(&[-3, 5, 0, 120], 257, 8);
        let back = decode_coeff(&p, 257);
        assert_eq!(&back[..4], &[-3, 5, 0, 120]);
        assert_eq!(&back[4..], &[0, 0, 0, 0]);
    }

    #[test]
    fn full_t_encoder() {
        // t = 65537 with N = 1024 (production plaintext modulus).
        let enc = SlotEncoder::new(65537, 1024);
        let vals: Vec<u64> = (0..1024u64).map(|i| (i * 64 + 1) % 65537).collect();
        assert_eq!(enc.decode(&enc.encode(&vals)), vals);
    }
}
