//! The LWE layer: ciphertexts modulo the plaintext modulus `t`, produced by
//! modulus switching + sample extraction (framework Steps ② and ③), plus
//! the dimension-switching key switch `N → n` of \[12\] (Gentry et al. field
//! switching, realized here as an LWE key switch).
//!
//! Decryption convention: `ct = (a⃗, b)` decrypts as `b + ⟨a⃗, s⃗⟩ mod t`.

use athena_math::modops::Modulus;
use athena_math::sampler::Sampler;

/// An LWE secret key: signed ternary coefficients.
#[derive(Debug, Clone)]
pub struct LweSecret {
    coeffs: Vec<i64>,
    q: u64,
}

impl LweSecret {
    /// Samples a ternary LWE secret of dimension `n` over modulus `q`.
    pub fn generate(n: usize, q: u64, sampler: &mut Sampler) -> Self {
        Self {
            coeffs: sampler.ternary(n),
            q,
        }
    }

    /// Wraps explicit coefficients (used to view an RLWE secret as an LWE
    /// secret after sample extraction).
    pub fn from_coeffs(coeffs: Vec<i64>, q: u64) -> Self {
        Self { coeffs, q }
    }

    /// The signed coefficients.
    pub fn coeffs(&self) -> &[i64] {
        &self.coeffs
    }

    /// Dimension.
    pub fn dim(&self) -> usize {
        self.coeffs.len()
    }

    /// Modulus.
    pub fn q(&self) -> u64 {
        self.q
    }
}

/// An LWE ciphertext `(a⃗, b)` modulo `q` with decryption `b + ⟨a⃗, s⃗⟩`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LweCiphertext {
    a: Vec<u64>,
    b: u64,
    q: u64,
}

impl LweCiphertext {
    /// Wraps raw components (already reduced mod `q`).
    pub fn from_parts(a: Vec<u64>, b: u64, q: u64) -> Self {
        Self { a, b, q }
    }

    /// The mask vector `a⃗`.
    pub fn a(&self) -> &[u64] {
        &self.a
    }

    /// The body `b`.
    pub fn b(&self) -> u64 {
        self.b
    }

    /// The modulus.
    pub fn q(&self) -> u64 {
        self.q
    }

    /// Dimension of the mask.
    pub fn dim(&self) -> usize {
        self.a.len()
    }

    /// A fresh encryption of `m ∈ Z_q` under `s` ("fresh" here means noise
    /// `e` sampled from the sampler's Gaussian; Athena's pipeline instead
    /// *produces* LWE ciphertexts by extraction, but direct encryption is
    /// useful for tests and key material).
    pub fn encrypt(m: u64, s: &LweSecret, sampler: &mut Sampler) -> Self {
        let q = Modulus::new(s.q);
        let a: Vec<u64> = (0..s.dim()).map(|_| sampler.uniform_mod(s.q)).collect();
        let mut dot = 0u64;
        for (x, &si) in a.iter().zip(s.coeffs()) {
            dot = q.add(dot, q.mul(*x, q.from_i64(si)));
        }
        let e = q.from_i64(sampler.gaussian_one());
        // b = m - <a,s> + e
        let b = q.add(q.sub(q.reduce(m), dot), e);
        Self { a, b, q: s.q }
    }

    /// Decrypts (returns `m + e mod q`; the caller decides how much noise is
    /// tolerable).
    pub fn decrypt(&self, s: &LweSecret) -> u64 {
        assert_eq!(self.dim(), s.dim(), "dimension mismatch");
        let q = Modulus::new(self.q);
        let mut acc = self.b;
        for (x, &si) in self.a.iter().zip(s.coeffs()) {
            acc = q.add(acc, q.mul(*x, q.from_i64(si)));
        }
        acc
    }

    /// Homomorphic addition of two LWE ciphertexts.
    pub fn add(&self, other: &LweCiphertext) -> LweCiphertext {
        assert_eq!(self.q, other.q);
        assert_eq!(self.dim(), other.dim());
        let q = Modulus::new(self.q);
        LweCiphertext {
            a: self
                .a
                .iter()
                .zip(&other.a)
                .map(|(&x, &y)| q.add(x, y))
                .collect(),
            b: q.add(self.b, other.b),
            q: self.q,
        }
    }

    /// The trivial (noiseless) encryption of `m`.
    pub fn trivial(m: u64, dim: usize, q: u64) -> Self {
        Self {
            a: vec![0; dim],
            b: m % q,
            q,
        }
    }
}

/// LWE modulus switching: rescales `(a⃗, b)` from `q` to `new_q` with
/// rounding. The plaintext scales by `new_q / q`; the rounding introduces
/// the paper's `e_ms ~ N(0, (t·σ/Q)² + (‖s‖² + 1)/12)` noise on the result.
pub fn lwe_mod_switch(ct: &LweCiphertext, new_q: u64) -> LweCiphertext {
    let q = ct.q();
    let round = |x: u64| -> u64 {
        // centered rounding: treat x as signed in (-q/2, q/2]
        let qm = Modulus::new(q);
        let c = qm.center(x);
        let scaled = (c as i128 * new_q as i128
            + if c >= 0 {
                q as i128 / 2
            } else {
                -(q as i128) / 2
            })
            / q as i128;
        scaled.rem_euclid(new_q as i128) as u64
    };
    LweCiphertext {
        a: ct.a().iter().map(|&x| round(x)).collect(),
        b: round(ct.b()),
        q: new_q,
    }
}

/// Key-switching key from a dimension-`N` secret to a dimension-`n` secret,
/// with unsigned base-`2^base_log` digit decomposition.
#[derive(Debug, Clone)]
pub struct LweKeySwitchKey {
    /// keys[j][d] encrypts `s_src[j] · B^d` under the destination secret.
    keys: Vec<Vec<LweCiphertext>>,
    base_log: u32,
    digits: usize,
    q: u64,
    dst_dim: usize,
}

impl LweKeySwitchKey {
    /// Generates a key switching `src → dst`.
    pub fn generate(
        src: &LweSecret,
        dst: &LweSecret,
        base_log: u32,
        sampler: &mut Sampler,
    ) -> Self {
        assert_eq!(src.q(), dst.q(), "moduli must match");
        let q = src.q();
        let qm = Modulus::new(q);
        let digits = (64 - (q - 1).leading_zeros()).div_ceil(base_log) as usize;
        let keys = src
            .coeffs()
            .iter()
            .map(|&sj| {
                (0..digits)
                    .map(|d| {
                        let scale = qm.pow(2, (d as u32 * base_log) as u64);
                        let m = qm.mul(qm.from_i64(sj), scale);
                        LweCiphertext::encrypt(m, dst, sampler)
                    })
                    .collect()
            })
            .collect();
        Self {
            keys,
            base_log,
            digits,
            q,
            dst_dim: dst.dim(),
        }
    }

    /// Number of decomposition digits.
    pub fn digits(&self) -> usize {
        self.digits
    }

    /// Size of the key in bytes (Table 1 key accounting).
    pub fn bytes(&self) -> usize {
        self.keys.len() * self.digits * (self.dst_dim + 1) * 8
    }

    /// Switches a ciphertext from the source to the destination dimension.
    ///
    /// # Panics
    ///
    /// Panics if `ct` does not match the source dimension/modulus.
    pub fn switch(&self, ct: &LweCiphertext) -> LweCiphertext {
        assert_eq!(ct.dim(), self.keys.len(), "source dimension mismatch");
        assert_eq!(ct.q(), self.q, "modulus mismatch");
        let qm = Modulus::new(self.q);
        let mask = (1u64 << self.base_log) - 1;
        let mut acc = LweCiphertext::trivial(ct.b(), self.dst_dim, self.q);
        for (j, &aj) in ct.a().iter().enumerate() {
            let mut rest = aj;
            for d in 0..self.digits {
                let digit = rest & mask;
                rest >>= self.base_log;
                if digit == 0 {
                    continue;
                }
                let key = &self.keys[j][d];
                // acc += digit * key
                for (x, &ka) in acc.a.iter_mut().zip(key.a()) {
                    *x = qm.add(*x, qm.mul(digit, ka));
                }
                acc.b = qm.add(acc.b, qm.mul(digit, key.b()));
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encrypt_decrypt_with_scale_margin() {
        // Encode m in the high bits so Gaussian noise does not corrupt it.
        let q = 65537u64;
        let scale = 256u64;
        let mut sampler = Sampler::from_seed(7);
        let s = LweSecret::generate(64, q, &mut sampler);
        for m in [0u64, 1, 100, 255] {
            let ct = LweCiphertext::encrypt(m * scale, &s, &mut sampler);
            let dec = ct.decrypt(&s);
            let recovered = (dec + scale / 2) / scale % 256;
            assert_eq!(recovered, m);
        }
    }

    #[test]
    fn additive_homomorphism() {
        let q = 65537u64;
        let scale = 512u64;
        let mut sampler = Sampler::from_seed(8);
        let s = LweSecret::generate(32, q, &mut sampler);
        let c1 = LweCiphertext::encrypt(3 * scale, &s, &mut sampler);
        let c2 = LweCiphertext::encrypt(9 * scale, &s, &mut sampler);
        let sum = c1.add(&c2);
        let dec = sum.decrypt(&s);
        assert_eq!((dec + scale / 2) / scale, 12);
    }

    #[test]
    fn trivial_decrypts_exactly() {
        let q = 257u64;
        let s = LweSecret::generate(16, q, &mut Sampler::from_seed(9));
        let ct = LweCiphertext::trivial(123, 16, q);
        assert_eq!(ct.decrypt(&s), 123);
    }

    #[test]
    fn keyswitch_preserves_message_at_large_modulus() {
        // Dimension switching happens at a word-sized RNS prime, where the
        // key-switch noise (~2^20) is negligible relative to the scale.
        let q = athena_math::prime::ntt_primes(50, 64, 1)[0];
        let scale = 1u64 << 40;
        let mut sampler = Sampler::from_seed(10);
        let big = LweSecret::generate(256, q, &mut sampler);
        let small = LweSecret::generate(64, q, &mut sampler);
        let ksk = LweKeySwitchKey::generate(&big, &small, 8, &mut sampler);
        for m in [0u64, 5, 31, 63] {
            let ct = LweCiphertext::encrypt(m * scale, &big, &mut sampler);
            let switched = ksk.switch(&ct);
            assert_eq!(switched.dim(), 64);
            let dec = switched.decrypt(&small);
            let recovered = (dec + scale / 2) / scale % 64;
            assert_eq!(recovered, m, "m={m}");
        }
    }

    #[test]
    fn lwe_mod_switch_rescales_message() {
        // Encrypt (q1/t)*m at modulus q1, switch to t, recover m.
        let q1 = athena_math::prime::ntt_primes(50, 64, 1)[0];
        let t = 257u64;
        let mut sampler = Sampler::from_seed(12);
        let s_q1 = LweSecret::generate(32, q1, &mut sampler);
        for m in [0u64, 1, 100, 200, 256] {
            let scaled = ((m as u128 * q1 as u128) / t as u128) as u64;
            let ct = LweCiphertext::encrypt(scaled, &s_q1, &mut sampler);
            let switched = lwe_mod_switch(&ct, t);
            let s_t = LweSecret::from_coeffs(s_q1.coeffs().to_vec(), t);
            let dec = switched.decrypt(&s_t) as i64;
            let diff = (dec - m as i64).rem_euclid(t as i64);
            let diff = diff.min(t as i64 - diff);
            assert!(diff <= 12, "m={m}, dec={dec}, diff={diff}");
        }
    }

    #[test]
    fn keyswitch_key_size_accounting() {
        let q = 65537u64;
        let mut sampler = Sampler::from_seed(11);
        let big = LweSecret::generate(128, q, &mut sampler);
        let small = LweSecret::generate(32, q, &mut sampler);
        let ksk = LweKeySwitchKey::generate(&big, &small, 8, &mut sampler);
        // 17-bit modulus, base 2^8 -> 3 digits
        assert_eq!(ksk.digits(), 3);
        assert_eq!(ksk.bytes(), 128 * 3 * 33 * 8);
    }
}
