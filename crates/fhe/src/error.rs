//! Typed fault payloads for the user-reachable failure points of the FHE
//! substrate.
//!
//! The deep call stacks of the hot path (rotation schedules, packing,
//! encoders) validate their preconditions with what used to be anonymous
//! `panic!`/`assert!` messages. Threading `Result` through every one of
//! those layers would put error plumbing on paths that, by construction,
//! cannot fail once a plan has been compiled and its key coverage
//! validated — so instead the checks stay where they are but panic with a
//! *typed* [`FheError`] payload via [`raise`]. A panic-safe driver (the
//! plan executor's `execute_resilient` in `athena-core`) catches the
//! unwind, downcasts the payload, and surfaces it as a typed error with
//! the offending plan step attached; direct library users still get a
//! panic, but one whose payload names the exact precondition violated.
//!
//! The payload type survives thread boundaries: `std::thread` scope joins
//! repropagate the original `Box<dyn Any>`, so an [`FheError`] raised
//! inside a parallel region reaches the catching driver intact.

use std::fmt;

/// A typed precondition violation of the FHE substrate, raised as a panic
/// payload (see [`raise`]) and downcast by panic-safe drivers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FheError {
    /// A rotation needed a Galois key that was never generated.
    KeyMissing {
        /// The absent Galois element.
        element: usize,
        /// The elements keys exist for.
        available: Vec<usize>,
    },
    /// An up-front key coverage check (`GaloisKeys::ensure_covers`) found
    /// gaps before a rotation schedule started.
    KeyCoverage {
        /// Required elements with no key.
        missing: Vec<usize>,
        /// The full requirement set.
        required: Vec<usize>,
        /// The elements keys exist for.
        available: Vec<usize>,
    },
    /// A slot-encoding was given the wrong number of values.
    EncodeLength {
        /// Values supplied.
        got: usize,
        /// Slot count `N` required.
        expected: usize,
    },
    /// A coefficient-encoding was given more values than the ring degree.
    CoeffOverflow {
        /// Values supplied.
        got: usize,
        /// Ring degree `N`.
        max: usize,
    },
    /// More LWE ciphertexts than the ring has slots to pack them into.
    PackCapacity {
        /// Ciphertexts supplied.
        lwes: usize,
        /// Slot capacity `N`.
        slots: usize,
    },
    /// An LWE ciphertext's dimension does not match the packing key's.
    LweDimension {
        /// The ciphertext's dimension.
        got: usize,
        /// The packing key's dimension.
        expected: usize,
    },
    /// An LWE ciphertext is not at the plaintext modulus `t` packing
    /// requires.
    LweModulus {
        /// The ciphertext's modulus.
        got: u64,
        /// The required modulus `t`.
        expected: u64,
    },
    /// BSGS packing requires the LWE dimension to divide the slot row.
    GroupMisfit {
        /// LWE dimension.
        lwe_n: usize,
        /// Slot row size `N/2`.
        row: usize,
    },
}

impl fmt::Display for FheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FheError::KeyMissing { element, available } => write!(
                f,
                "missing Galois key for element {element}: available elements are {available:?} — \
                 generate keys for every element of `required_galois_elements` up front"
            ),
            FheError::KeyCoverage {
                missing,
                required,
                available,
            } => write!(
                f,
                "Galois key coverage gap: missing elements {missing:?} \
                 (required {required:?}, available {available:?})"
            ),
            FheError::EncodeLength { got, expected } => {
                write!(f, "need one value per slot: got {got} for {expected} slots")
            }
            FheError::CoeffOverflow { got, max } => {
                write!(f, "too many coefficients for degree {max}: got {got}")
            }
            FheError::PackCapacity { lwes, slots } => {
                write!(f, "more LWE ciphertexts than slots: {lwes} > {slots}")
            }
            FheError::LweDimension { got, expected } => {
                write!(f, "LWE dimension mismatch: got {got}, expected {expected}")
            }
            FheError::LweModulus { got, expected } => {
                write!(f, "LWE modulus must equal t: got {got}, t is {expected}")
            }
            FheError::GroupMisfit { lwe_n, row } => {
                write!(f, "LWE dimension must divide N/2: n = {lwe_n}, N/2 = {row}")
            }
        }
    }
}

impl std::error::Error for FheError {}

/// Raises `e` as a structured panic. The payload is the [`FheError`]
/// itself (not a string), so a `catch_unwind` boundary can downcast it
/// back into a typed value; its [`fmt::Display`] carries the same
/// diagnostic text the old `assert!` messages did.
#[cold]
pub fn raise(e: FheError) -> ! {
    std::panic::panic_any(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn raised_payload_downcasts_back_to_the_typed_error() {
        let err = FheError::EncodeLength {
            got: 3,
            expected: 128,
        };
        let payload = catch_unwind(AssertUnwindSafe(|| raise(err.clone())))
            .expect_err("raise always unwinds");
        let caught = payload
            .downcast_ref::<FheError>()
            .expect("payload is the typed error");
        assert_eq!(*caught, err);
        assert!(caught.to_string().contains("need one value per slot"));
    }

    #[test]
    fn display_messages_name_the_precondition() {
        let cases: Vec<(FheError, &str)> = vec![
            (
                FheError::KeyMissing {
                    element: 3,
                    available: vec![5],
                },
                "missing Galois key",
            ),
            (
                FheError::KeyCoverage {
                    missing: vec![3],
                    required: vec![3, 5],
                    available: vec![5],
                },
                "coverage gap",
            ),
            (
                FheError::CoeffOverflow { got: 200, max: 128 },
                "too many coefficients",
            ),
            (
                FheError::PackCapacity {
                    lwes: 200,
                    slots: 128,
                },
                "more LWE ciphertexts than slots",
            ),
            (
                FheError::LweDimension {
                    got: 16,
                    expected: 32,
                },
                "dimension mismatch",
            ),
            (
                FheError::LweModulus {
                    got: 65537,
                    expected: 257,
                },
                "must equal t",
            ),
            (
                FheError::GroupMisfit { lwe_n: 24, row: 64 },
                "must divide N/2",
            ),
        ];
        for (e, needle) in cases {
            assert!(e.to_string().contains(needle), "{e}");
        }
    }
}
