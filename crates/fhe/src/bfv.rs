//! RNS-BFV: the integer-exact FHE scheme Athena builds on.
//!
//! A ciphertext is `(c0, c1)` with `c0 + c1·s = Δ·m + e (mod Q)`,
//! `Δ = ⌊Q/t⌋`. Supported operations: encryption (secret- and public-key),
//! decryption, addition, plaintext multiplication (`PMult`), scalar
//! multiplication (`SMult`), ciphertext multiplication with relinearization
//! (`CMult`), Galois automorphisms / rotations (`HRot`) via key switching,
//! and the invariant-noise-budget probe used by the Table 4 analysis.
//!
//! Ciphertext multiplication takes the **exact** route: operands are lifted
//! (centered) into an extended RNS basis, tensored there, and the `t/Q`
//! scaling is performed coefficient-wise with big-integer rounding. This is
//! the reference semantics that the accelerator's fast-base-conversion
//! datapath (FRU) reproduces approximately in hardware.
//!
//! ## Representation invariants
//!
//! Every ciphertext is **domain-uniform**: all component polynomials share
//! one [`Domain`], queryable with [`BfvCiphertext::domain`]. Key material
//! (secret key, public key, key-switching keys) lives permanently in Eval
//! (NTT) form — keys only ever participate in multiplications, so storing
//! them evaluated makes every keyed inner product pointwise. Key switching
//! therefore emits Eval-form ciphertexts, and [`apply_galois`]/
//! [`rotate_rows`] keep rotation chains NTT-resident end-to-end; conversion
//! back to coefficient form happens lazily, only where BFV semantics force
//! it: the digit decomposition inside [`KeySwitchKey::apply`], the centered
//! CRT lift of the tensor step in [`mul_no_relin`], modulus switching /
//! decryption scaling, and sample extraction.
//!
//! [`apply_galois`]: BfvEvaluator::apply_galois
//! [`rotate_rows`]: BfvEvaluator::rotate_rows
//! [`mul_no_relin`]: BfvEvaluator::mul_no_relin

use athena_math::arena::LimbVec;
use athena_math::bigint::{IBig, UBig};
use athena_math::par;
use athena_math::poly::{Domain, Poly};
use athena_math::rns::{RnsBasis, RnsPoly};
use athena_math::sampler::Sampler;
use athena_math::stats::{lift_stats, op_stats, rot_stats};
use std::collections::HashMap;

use crate::encoder::SlotEncoder;
use crate::error::FheError;
use crate::params::BfvParams;

/// Shared context: parameter set plus every precomputed table.
#[derive(Debug)]
pub struct BfvContext {
    params: BfvParams,
    qb: RnsBasis,
    mb: RnsBasis,
    encoder: SlotEncoder,
    /// Δ mod q_i.
    delta_mod_qi: Vec<u64>,
    /// RNS gadget g_i = (Q/q_i)·[(Q/q_i)^{-1}]_{q_i} as residues mod every q_j.
    gadget: Vec<Vec<u64>>,
    delta: UBig,
    q: UBig,
    half_q: UBig,
}

impl BfvContext {
    /// Builds a context (precomputing NTT tables, CRT data, gadget vectors).
    ///
    /// # Panics
    ///
    /// Panics if the parameters fail validation.
    pub fn new(params: BfvParams) -> Self {
        params.validate();
        let qb = params.q_basis();
        let mb = params.mult_basis();
        let encoder = SlotEncoder::new(params.t, params.n);
        let q = params.q_product();
        let delta = params.delta();
        let delta_mod_qi = qb
            .rings()
            .iter()
            .map(|r| delta.rem_u64(r.modulus().value()))
            .collect();
        // Gadget: g_i = hat_i * hat_inv_i mod Q, as residues.
        let k = qb.len();
        let mut gadget = Vec::with_capacity(k);
        for i in 0..k {
            let qi = qb.ring(i).modulus().value();
            let hat = q.div_rem_u64(qi).0;
            let hat_inv = qb
                .ring(i)
                .modulus()
                .inv(hat.rem_u64(qi))
                .expect("pairwise coprime");
            let g = hat.mul_u64(hat_inv).rem(&q);
            gadget.push(qb.crt_decompose(&g));
        }
        let half_q = q.shr(1);
        Self {
            params,
            qb,
            mb,
            encoder,
            delta_mod_qi,
            gadget,
            delta,
            q,
            half_q,
        }
    }

    /// The parameter set.
    pub fn params(&self) -> &BfvParams {
        &self.params
    }

    /// The RNS basis of `Q`.
    pub fn q_basis(&self) -> &RnsBasis {
        &self.qb
    }

    /// The extended multiplication basis.
    pub fn mult_basis(&self) -> &RnsBasis {
        &self.mb
    }

    /// The slot encoder over `Z_t`.
    pub fn encoder(&self) -> &SlotEncoder {
        &self.encoder
    }

    /// Plaintext modulus `t`.
    pub fn t(&self) -> u64 {
        self.params.t
    }

    /// Ring degree `N`.
    pub fn n(&self) -> usize {
        self.params.n
    }

    /// `Δ = ⌊Q/t⌋`.
    pub fn delta(&self) -> &UBig {
        &self.delta
    }

    /// Lifts a plaintext polynomial (mod `t`, coefficient domain) into the
    /// `Q` basis, **centered** (values above `t/2` become negative), which
    /// keeps PMult noise growth minimal.
    pub fn lift_plaintext(&self, m: &Poly) -> RnsPoly {
        assert_eq!(m.domain(), Domain::Coeff);
        let t = self.params.t;
        let centered: Vec<i64> = m
            .values()
            .iter()
            .map(|&v| {
                if v > t / 2 {
                    v as i64 - t as i64
                } else {
                    v as i64
                }
            })
            .collect();
        self.qb.poly_from_i64(&centered)
    }

    /// `Δ · m` as an RNS polynomial (coefficient domain) — public for the
    /// seed-compressed encryption path.
    pub fn delta_times_plain(&self, m: &Poly) -> RnsPoly {
        self.delta_times(m)
    }

    /// `Δ · m` as an RNS polynomial (coefficient domain).
    fn delta_times(&self, m: &Poly) -> RnsPoly {
        assert_eq!(m.domain(), Domain::Coeff);
        let limbs = self
            .qb
            .rings()
            .iter()
            .zip(&self.delta_mod_qi)
            .map(|(r, &dq)| {
                let q = r.modulus();
                let mut vals = LimbVec::take_raw(m.values().len());
                for (o, &v) in vals.iter_mut().zip(m.values()) {
                    *o = q.mul(dq, q.reduce(v));
                }
                Poly::from_limbs(vals, Domain::Coeff)
            })
            .collect();
        RnsPoly::from_limbs(limbs)
    }

    /// The recurring key-material inner product `a·b` brought back to
    /// coefficient form in one step. This is the only sanctioned way to
    /// leave Eval form on an encryption path: everything that *stays* on
    /// the hot path keeps the `mul_poly` output NTT-resident instead.
    pub fn mul_into_coeff(&self, a: &RnsPoly, b: &RnsPoly) -> RnsPoly {
        let mut prod = self.qb.mul_poly(a, b);
        self.qb.poly_to_coeff_inplace(&mut prod);
        prod
    }

    /// Digit-decomposes a coefficient-form polynomial `d` (interpreted mod
    /// `Q`) and lifts every digit into the full basis in **Eval form** —
    /// the `k²` forward NTTs that dominate a key switch. The digits depend
    /// only on `d`, never on the key, so hoisted rotation paths
    /// ([`BfvEvaluator::hoist`]) compute them once and reuse them across
    /// arbitrarily many Galois elements.
    ///
    /// Digits are lifted **balanced**: residue `v ∈ [0, q_i)` is lifted as
    /// the centered integer `v` or `v − q_i ∈ (−q_i/2, q_i/2]`. This is
    /// still the same digit mod `q_i` (so the gadget identity
    /// `Σ D_i·g_i ≡ d (mod Q)` is untouched — the other limbs only ever
    /// see `g_i ≡ 0`), but it halves the expected digit magnitude and with
    /// it the `Σ D_i·e_i` key-switch noise of every rotation and
    /// relinearization.
    ///
    /// # Panics
    ///
    /// Panics if `d` is not in coefficient form (digit decomposition must
    /// read raw residues — one of the scheme's forced-Coeff boundaries).
    pub fn decompose_lift(&self, d: &RnsPoly) -> Vec<RnsPoly> {
        assert_eq!(
            d.domain(),
            Domain::Coeff,
            "digit decomposition needs coefficient form"
        );
        rot_stats::record_decompose();
        // The per-digit lifts are independent — fan out like the limbs
        // (each digit costs a full-basis lift plus NTTs).
        let work = self.qb.len() * self.qb.n() * (self.qb.n().ilog2() as usize + 2);
        par::parallel_map_range_with(par::threads_for(self.qb.len(), work), self.qb.len(), |i| {
            // Lift limb i of d to the full basis, centered: |value| ≤ q_i/2.
            let qi = self.qb.rings()[i].modulus().value();
            let half = qi / 2;
            let vals = d.limbs()[i].values();
            let lifted_limbs: Vec<Poly> = self
                .qb
                .rings()
                .iter()
                .map(|r| {
                    let m = r.modulus();
                    let mut out = LimbVec::take_raw(vals.len());
                    for (o, &v) in out.iter_mut().zip(vals) {
                        *o = if v <= half {
                            m.reduce(v)
                        } else {
                            m.neg(m.reduce(qi - v))
                        };
                    }
                    Poly::from_limbs(out, Domain::Coeff)
                })
                .collect();
            let mut lifted = RnsPoly::from_limbs(lifted_limbs);
            self.qb.poly_to_eval_inplace(&mut lifted);
            lifted
        })
    }

    fn sample_error(&self, sampler: &mut Sampler) -> RnsPoly {
        let e = sampler.gaussian(self.params.n);
        self.qb.poly_from_i64(&e)
    }

    fn sample_uniform(&self, sampler: &mut Sampler) -> RnsPoly {
        let limbs = self
            .qb
            .rings()
            .iter()
            .map(|r| {
                Poly::from_values(
                    sampler.uniform_vec(r.modulus().value(), self.params.n),
                    Domain::Coeff,
                )
            })
            .collect();
        RnsPoly::from_limbs(limbs)
    }
}

/// The RLWE secret key: ternary coefficients, kept both as signed integers
/// (for extraction/noise probes) and in **Eval-form** RNS — the secret only
/// ever enters multiplications, so it is stored pre-transformed.
#[derive(Debug, Clone)]
pub struct SecretKey {
    coeffs: Vec<i64>,
    rns: RnsPoly,
}

impl SecretKey {
    /// Samples a fresh ternary secret.
    pub fn generate(ctx: &BfvContext, sampler: &mut Sampler) -> Self {
        let coeffs = sampler.ternary(ctx.params.n);
        let rns = ctx.qb.poly_to_eval(&ctx.qb.poly_from_i64(&coeffs));
        Self { coeffs, rns }
    }

    /// The signed coefficient vector.
    pub fn coeffs(&self) -> &[i64] {
        &self.coeffs
    }

    /// The Eval-form RNS representation of the secret (for key material
    /// built outside this module, e.g. seed-compressed keys).
    pub fn rns_form(&self) -> &RnsPoly {
        &self.rns
    }

    /// `‖s‖₂²` (used by the e_ms noise model of §3.2.2).
    pub fn norm_sq(&self) -> u64 {
        self.coeffs.iter().map(|&c| (c * c) as u64).sum()
    }
}

/// A public encryption key `(b, a)` with `b = −a·s + e`, stored in Eval
/// form: encryption only ever multiplies both halves by the ephemeral `u`.
#[derive(Debug, Clone)]
pub struct PublicKey {
    b: RnsPoly,
    a: RnsPoly,
}

impl PublicKey {
    /// Derives a public key from a secret key.
    pub fn generate(ctx: &BfvContext, sk: &SecretKey, sampler: &mut Sampler) -> Self {
        let a = ctx.qb.poly_to_eval(&ctx.sample_uniform(sampler));
        let e = ctx.qb.poly_to_eval(&ctx.sample_error(sampler));
        let mut b = ctx.qb.neg_poly(&ctx.qb.mul_poly(&a, &sk.rns));
        ctx.qb.add_assign_poly(&mut b, &e);
        Self { b, a }
    }
}

/// A BFV ciphertext: two (or, mid-multiplication, three) ring elements in
/// RNS form. All parts share one domain — fresh encryptions are Coeff,
/// anything that went through key switching is Eval, and the two never mix
/// within a ciphertext (see the module-level representation invariants).
#[derive(Debug, Clone)]
pub struct BfvCiphertext {
    parts: Vec<RnsPoly>,
}

impl BfvCiphertext {
    /// The component polynomials.
    pub fn parts(&self) -> &[RnsPoly] {
        &self.parts
    }

    /// Mutable access to the component polynomials. The pipeline never
    /// mutates parts in place; this exists for fault-injection tooling
    /// (deliberate limb corruption) and tests. The caller must keep every
    /// value reduced modulo its limb prime and preserve the shared-domain
    /// invariant.
    pub fn parts_mut(&mut self) -> &mut [RnsPoly] {
        &mut self.parts
    }

    /// Number of components (2 normally, 3 before relinearization).
    pub fn size(&self) -> usize {
        self.parts.len()
    }

    /// The common domain of every component polynomial.
    pub fn domain(&self) -> Domain {
        let d = self.parts[0].domain();
        debug_assert!(
            self.parts.iter().all(|p| p.domain() == d),
            "ciphertext parts must share a domain"
        );
        d
    }

    /// Assembles a ciphertext from raw component polynomials.
    ///
    /// # Panics
    ///
    /// Panics unless there are 2 or 3 components; debug builds also reject
    /// components in different domains.
    pub fn from_parts(parts: Vec<RnsPoly>) -> Self {
        assert!(parts.len() == 2 || parts.len() == 3, "2 or 3 components");
        debug_assert!(
            parts.iter().all(|p| p.domain() == parts[0].domain()),
            "ciphertext parts must share a domain"
        );
        Self { parts }
    }

    /// The trivial encryption of zero, in the requested domain (the zero
    /// polynomial is a fixed point of the NTT, so no transform is needed).
    pub fn zero_in(ctx: &BfvContext, domain: Domain) -> Self {
        Self {
            parts: vec![ctx.qb.zero_poly(domain), ctx.qb.zero_poly(domain)],
        }
    }

    /// The trivial encryption of zero (coefficient form).
    pub fn zero(ctx: &BfvContext) -> Self {
        Self::zero_in(ctx, Domain::Coeff)
    }

    /// This ciphertext with every part in Eval form (no-op copies for parts
    /// already there).
    pub fn to_eval(&self, ctx: &BfvContext) -> Self {
        Self {
            parts: self.parts.iter().map(|p| ctx.qb.poly_to_eval(p)).collect(),
        }
    }

    /// This ciphertext with every part in coefficient form (no-op copies
    /// for parts already there).
    pub fn to_coeff(&self, ctx: &BfvContext) -> Self {
        Self {
            parts: self.parts.iter().map(|p| ctx.qb.poly_to_coeff(p)).collect(),
        }
    }

    /// A trivial (noiseless, non-secret) encryption of a plaintext.
    pub fn trivial(ctx: &BfvContext, m: &Poly) -> Self {
        Self {
            parts: vec![ctx.delta_times(m), ctx.qb.zero_poly(Domain::Coeff)],
        }
    }
}

/// A key-switching key translating decryptions under some source secret
/// `s_src` into decryptions under `s` — used for relinearization (`s² → s`)
/// and rotations (`s(X^g) → s`). The pairs are stored in Eval form: every
/// application multiplies them by decomposed digits, so the forward NTTs
/// are paid once at keygen instead of on every homomorphic rotation.
#[derive(Debug, Clone)]
pub struct KeySwitchKey {
    /// Per limb i: (b_i, a_i) with b_i = −a_i·s + e_i + g_i·s_src, Eval form.
    pairs: Vec<(RnsPoly, RnsPoly)>,
}

impl KeySwitchKey {
    fn generate(
        ctx: &BfvContext,
        sk: &SecretKey,
        src_rns: &RnsPoly,
        sampler: &mut Sampler,
    ) -> Self {
        assert_eq!(
            src_rns.domain(),
            Domain::Eval,
            "source secrets are derived from the Eval-form secret key"
        );
        let k = ctx.qb.len();
        let mut pairs = Vec::with_capacity(k);
        for i in 0..k {
            let a = ctx.qb.poly_to_eval(&ctx.sample_uniform(sampler));
            let e = ctx.qb.poly_to_eval(&ctx.sample_error(sampler));
            let mut b = ctx.qb.neg_poly(&ctx.qb.mul_poly(&a, &sk.rns));
            ctx.qb.add_assign_poly(&mut b, &e);
            // + g_i · s_src (per-limb scalar residues preserve Eval form)
            let g_src = {
                let limbs = ctx
                    .qb
                    .rings()
                    .iter()
                    .enumerate()
                    .map(|(j, r)| r.scalar_mul(&src_rns.limbs()[j], ctx.gadget[i][j]))
                    .collect();
                RnsPoly::from_limbs(limbs)
            };
            ctx.qb.add_assign_poly(&mut b, &g_src);
            pairs.push((b, a));
        }
        Self { pairs }
    }

    /// Applies the key to a coefficient-form polynomial `d` (interpreted
    /// mod `Q`): returns `(p0, p1)` in **Eval form** with
    /// `p0 + p1·s ≈ d·s_src`.
    ///
    /// The digit decomposition must read raw residues, so `d` is required
    /// in coefficient form — this is one of the scheme's forced-Coeff
    /// boundaries. Each lifted digit is transformed once (`k` forward NTTs,
    /// `k²` in total) and every inner product against the Eval-resident
    /// pairs is pointwise; no inverse transforms happen here at all.
    pub fn apply(&self, ctx: &BfvContext, d: &RnsPoly) -> (RnsPoly, RnsPoly) {
        self.apply_digits(ctx, &ctx.decompose_lift(d))
    }

    /// The per-key half of a key switch: inner products of already lifted,
    /// Eval-form digits against the key pairs. Hoisted rotation paths call
    /// [`BfvContext::decompose_lift`] once and then only pay this part per
    /// Galois element — it performs **zero** NTTs.
    ///
    /// # Panics
    ///
    /// Panics unless there is exactly one digit per key pair.
    pub fn apply_digits(&self, ctx: &BfvContext, digits: &[RnsPoly]) -> (RnsPoly, RnsPoly) {
        assert_eq!(digits.len(), self.pairs.len(), "one digit per key pair");
        // The per-digit products are independent — fan out like the limbs
        // (two Eval-form RNS multiplications per digit).
        let work = 2 * ctx.qb.len() * ctx.qb.n();
        let threads = par::threads_for(digits.len(), work);
        let terms: Vec<(RnsPoly, RnsPoly)> =
            par::parallel_map_range_with(threads, digits.len(), |i| {
                (
                    ctx.qb.mul_poly(&digits[i], &self.pairs[i].0),
                    ctx.qb.mul_poly(&digits[i], &self.pairs[i].1),
                )
            });
        // Fold from the first term (0 + x = x exactly, so this is
        // bit-identical to seeding with zero polynomials but skips two
        // accumulator allocations and a full pass).
        let mut terms = terms.into_iter();
        let (mut p0, mut p1) = terms.next().expect("at least one digit");
        for (t0, t1) in terms {
            ctx.qb.add_assign_poly(&mut p0, &t0);
            ctx.qb.add_assign_poly(&mut p1, &t1);
        }
        (p0, p1)
    }
}

/// Relinearization key (`s² → s`).
#[derive(Debug, Clone)]
pub struct RelinKey(KeySwitchKey);

impl RelinKey {
    /// Generates a relinearization key.
    pub fn generate(ctx: &BfvContext, sk: &SecretKey, sampler: &mut Sampler) -> Self {
        let s2 = ctx.qb.mul_poly(&sk.rns, &sk.rns);
        Self(KeySwitchKey::generate(ctx, sk, &s2, sampler))
    }
}

/// Galois keys, one key-switching key per Galois element.
#[derive(Debug, Clone, Default)]
pub struct GaloisKeys {
    keys: HashMap<usize, KeySwitchKey>,
}

impl GaloisKeys {
    /// Generates keys for the given Galois elements.
    pub fn generate(
        ctx: &BfvContext,
        sk: &SecretKey,
        elements: &[usize],
        sampler: &mut Sampler,
    ) -> Self {
        let mut keys = HashMap::new();
        for &g in elements {
            assert!(g % 2 == 1, "Galois elements are odd");
            let s_g = ctx.qb.automorphism_poly(&sk.rns, g);
            keys.insert(g, KeySwitchKey::generate(ctx, sk, &s_g, sampler));
        }
        Self { keys }
    }

    /// The key for element `g`, if generated.
    pub fn key(&self, g: usize) -> Option<&KeySwitchKey> {
        self.keys.get(&g)
    }

    /// The key for element `g`, panicking with a typed
    /// [`FheError::KeyMissing`] payload (downcastable by panic-safe
    /// drivers; its display text carries the coverage diagnostic) when it
    /// is absent.
    fn key_or_panic(&self, g: usize) -> &KeySwitchKey {
        self.keys.get(&g).unwrap_or_else(|| {
            crate::error::raise(FheError::KeyMissing {
                element: g,
                available: self.elements(),
            })
        })
    }

    /// Validates that every element of `required` has a key — call this
    /// before starting a rotation schedule so a coverage gap fails up
    /// front, with the full listing, instead of mid-schedule.
    ///
    /// # Panics
    ///
    /// Panics with the required-vs-available listing if any key is missing.
    pub fn ensure_covers(&self, required: &[usize]) {
        let missing: Vec<usize> = required
            .iter()
            .copied()
            .filter(|g| !self.keys.contains_key(g))
            .collect();
        if !missing.is_empty() {
            crate::error::raise(FheError::KeyCoverage {
                missing,
                required: required.to_vec(),
                available: self.elements(),
            });
        }
    }

    /// Galois elements covered.
    pub fn elements(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.keys.keys().copied().collect();
        v.sort_unstable();
        v
    }
}

/// The BFV evaluator: all homomorphic operations, parameterized by context.
#[derive(Debug)]
pub struct BfvEvaluator<'a> {
    ctx: &'a BfvContext,
}

impl<'a> BfvEvaluator<'a> {
    /// Creates an evaluator over a context.
    pub fn new(ctx: &'a BfvContext) -> Self {
        Self { ctx }
    }

    /// The underlying context.
    pub fn context(&self) -> &BfvContext {
        self.ctx
    }

    /// Secret-key encryption of a plaintext polynomial (mod `t`). Fresh
    /// ciphertexts are in coefficient form.
    pub fn encrypt_sk(&self, m: &Poly, sk: &SecretKey, sampler: &mut Sampler) -> BfvCiphertext {
        let ctx = self.ctx;
        let a = ctx.sample_uniform(sampler);
        let e = ctx.sample_error(sampler);
        let mut c0 = ctx.qb.neg_poly(&ctx.mul_into_coeff(&a, &sk.rns));
        ctx.qb.add_assign_poly(&mut c0, &e);
        ctx.qb.add_assign_poly(&mut c0, &ctx.delta_times(m));
        BfvCiphertext { parts: vec![c0, a] }
    }

    /// Public-key encryption of a plaintext polynomial (mod `t`). Fresh
    /// ciphertexts are in coefficient form.
    pub fn encrypt_pk(&self, m: &Poly, pk: &PublicKey, sampler: &mut Sampler) -> BfvCiphertext {
        let ctx = self.ctx;
        let u = ctx
            .qb
            .poly_to_eval(&ctx.qb.poly_from_i64(&sampler.ternary(ctx.params.n)));
        let e0 = ctx.sample_error(sampler);
        let e1 = ctx.sample_error(sampler);
        let mut c0 = ctx.mul_into_coeff(&pk.b, &u);
        ctx.qb.add_assign_poly(&mut c0, &e0);
        ctx.qb.add_assign_poly(&mut c0, &ctx.delta_times(m));
        let mut c1 = ctx.mul_into_coeff(&pk.a, &u);
        ctx.qb.add_assign_poly(&mut c1, &e1);
        BfvCiphertext {
            parts: vec![c0, c1],
        }
    }

    /// Computes the raw phase `c0 + c1·s (+ c2·s²)` in coefficient domain
    /// (accepting ciphertexts in either form — decryption is a forced-Coeff
    /// boundary).
    fn phase(&self, ct: &BfvCiphertext, sk: &SecretKey) -> RnsPoly {
        let ctx = self.ctx;
        let mut acc = ctx.qb.poly_to_coeff(&ct.parts[0]);
        // The first power is the key itself, borrowed; higher powers (only
        // needed for size-3 ciphertexts) are produced on demand, pointwise
        // in Eval form.
        let mut s_owned: Option<RnsPoly> = None;
        for (i, part) in ct.parts[1..].iter().enumerate() {
            let s = s_owned.as_ref().unwrap_or(&sk.rns);
            let term = ctx.mul_into_coeff(part, s);
            let next = (i + 2 < ct.parts.len()).then(|| ctx.qb.mul_poly(s, &sk.rns));
            ctx.qb.add_assign_poly(&mut acc, &term);
            if next.is_some() {
                s_owned = next;
            }
        }
        acc
    }

    /// Decrypts to a plaintext polynomial mod `t`.
    pub fn decrypt(&self, ct: &BfvCiphertext, sk: &SecretKey) -> Poly {
        let ctx = self.ctx;
        let x = self.phase(ct, sk);
        let vals = ctx.qb.scale_round(&x, ctx.params.t, ctx.params.t);
        Poly::from_values(vals, Domain::Coeff)
    }

    /// Invariant noise budget in bits (SEAL-style): bits of headroom left
    /// before `t·(phase)/Q` rounds to the wrong integer. Positive values
    /// are safe doublings of headroom; any value `≤ 0` means decryption is
    /// no longer guaranteed.
    ///
    /// Once the worst coefficient's noise magnitude is within a factor 4
    /// of the wrap boundary `Q/2` the probe returns **−1** — the band
    /// where genuinely swamped (mod-`Q`-wrapped) noise lands almost
    /// surely. The probe **saturates** there: past the wrap, magnitude
    /// information is unrecoverable (the centered residue is at most
    /// `Q/2` however large the true noise), so arbitrarily worse noise
    /// still reads −1 rather than underflowing the `i64`.
    pub fn noise_budget(&self, ct: &BfvCiphertext, sk: &SecretKey) -> i64 {
        let ctx = self.ctx;
        let x = self.phase(ct, sk);
        let coeffs = ctx.qb.poly_to_ubig(&x);
        let mut worst: usize = 0;
        let mut swamped = false;
        for c in &coeffs {
            // v = t*c mod Q, centered
            let v = c.mul_u64(ctx.params.t).rem(&ctx.q);
            let mag = if v > ctx.half_q { ctx.q.sub(&v) } else { v };
            swamped = swamped || mag.mul_u64(4) >= ctx.q;
            worst = worst.max(mag.bits());
        }
        if swamped {
            return -1;
        }
        // mag ≤ ⌊Q/2⌋ by centering, so this difference is never negative
        // on its own; the explicit −1 above is the only negative value the
        // probe can produce.
        ctx.q.bits() as i64 - 1 - worst as i64
    }

    /// Homomorphic addition. Operands must share a domain (debug builds
    /// panic on a mismatch — convert one with [`BfvCiphertext::to_eval`] /
    /// [`BfvCiphertext::to_coeff`] first).
    pub fn add(&self, a: &BfvCiphertext, b: &BfvCiphertext) -> BfvCiphertext {
        assert_eq!(a.size(), b.size(), "ciphertext sizes must match");
        op_stats::record_hadd();
        let parts = a
            .parts
            .iter()
            .zip(&b.parts)
            .map(|(x, y)| self.ctx.qb.add_poly(x, y))
            .collect();
        BfvCiphertext { parts }
    }

    /// Homomorphic subtraction.
    pub fn sub(&self, a: &BfvCiphertext, b: &BfvCiphertext) -> BfvCiphertext {
        assert_eq!(a.size(), b.size(), "ciphertext sizes must match");
        op_stats::record_hadd();
        let parts = a
            .parts
            .iter()
            .zip(&b.parts)
            .map(|(x, y)| self.ctx.qb.sub_poly(x, y))
            .collect();
        BfvCiphertext { parts }
    }

    /// In-place addition.
    pub fn add_assign(&self, a: &mut BfvCiphertext, b: &BfvCiphertext) {
        assert_eq!(a.size(), b.size());
        op_stats::record_hadd();
        for (x, y) in a.parts.iter_mut().zip(&b.parts) {
            self.ctx.qb.add_assign_poly(x, y);
        }
    }

    /// Adds a plaintext polynomial (mod `t`), following the ciphertext's
    /// domain (`Δ·m` is transformed when the ciphertext is Eval-resident).
    pub fn add_plain(&self, a: &BfvCiphertext, m: &Poly) -> BfvCiphertext {
        op_stats::record_hadd();
        let ctx = self.ctx;
        let mut d = ctx.delta_times(m);
        if a.parts[0].domain() == Domain::Eval {
            ctx.qb.poly_to_eval_inplace(&mut d);
        }
        // Build the result directly: part 0 is the sum, the rest are
        // (pooled) copies — no whole-ciphertext clone followed by an
        // in-place add.
        let mut parts = Vec::with_capacity(a.size());
        parts.push(ctx.qb.add_poly(&a.parts[0], &d));
        parts.extend(a.parts[1..].iter().cloned());
        BfvCiphertext { parts }
    }

    /// Plaintext multiplication (`PMult`): multiplies the encrypted
    /// plaintext by `m` (mod `t`). Domain-preserving: an Eval-resident
    /// ciphertext multiplies pointwise and stays Eval.
    pub fn mul_plain(&self, a: &BfvCiphertext, m: &Poly) -> BfvCiphertext {
        let lifted = self.ctx.qb.poly_to_eval(&self.ctx.lift_plaintext(m));
        self.mul_plain_lifted(a, &lifted)
    }

    /// `PMult` against an already lifted, Eval-form plaintext — the cached
    /// operand shape used by the BSGS linear-transform loops. Domain-
    /// preserving, like [`mul_plain`](Self::mul_plain); on an Eval-form
    /// ciphertext this is NTT-free.
    pub fn mul_plain_lifted(&self, a: &BfvCiphertext, lifted: &RnsPoly) -> BfvCiphertext {
        let ctx = self.ctx;
        assert_eq!(
            lifted.domain(),
            Domain::Eval,
            "lifted plaintext operands are cached in Eval form"
        );
        op_stats::record_pmult();
        let keep_coeff = a.domain() == Domain::Coeff;
        let parts = a
            .parts
            .iter()
            .map(|p| {
                let mut prod = ctx.qb.mul_poly(p, lifted);
                if keep_coeff {
                    ctx.qb.poly_to_coeff_inplace(&mut prod);
                }
                prod
            })
            .collect();
        BfvCiphertext { parts }
    }

    /// Scalar multiplication (`SMult`): multiplies the encrypted plaintext
    /// by the constant `c ∈ Z_t` (lifted centered). Domain-preserving and
    /// NTT-free in either form.
    pub fn mul_scalar(&self, a: &BfvCiphertext, c: u64) -> BfvCiphertext {
        op_stats::record_smult();
        let ctx = self.ctx;
        let t = ctx.params.t;
        let c = c % t;
        let signed = if c > t / 2 {
            c as i64 - t as i64
        } else {
            c as i64
        };
        let parts = a
            .parts
            .iter()
            .map(|p| ctx.qb.scalar_mul_poly_i64(p, signed))
            .collect();
        BfvCiphertext { parts }
    }

    /// Lifts a ciphertext part into the extended basis, centered.
    fn lift_centered(&self, p: &RnsPoly) -> RnsPoly {
        let ctx = self.ctx;
        debug_assert_eq!(p.domain(), Domain::Coeff, "CRT lift reads coefficients");
        let coeffs = ctx.qb.poly_to_ubig(p);
        let n = ctx.params.n;
        let limbs = ctx
            .mb
            .rings()
            .iter()
            .map(|r| {
                let m = r.modulus();
                debug_assert_eq!(coeffs.len(), n);
                let mut vals = LimbVec::take_raw(n);
                for (o, c) in vals.iter_mut().zip(&coeffs) {
                    *o = if *c > ctx.half_q {
                        let mag = ctx.q.sub(c);
                        m.neg(mag.rem_u64(m.value()))
                    } else {
                        c.rem_u64(m.value())
                    };
                }
                Poly::from_limbs(vals, Domain::Coeff)
            })
            .collect();
        RnsPoly::from_limbs(limbs)
    }

    /// Scales a tensored component by `t/Q` with exact rounding and reduces
    /// back into the `Q` basis.
    fn scale_to_q(&self, p: &RnsPoly) -> RnsPoly {
        let ctx = self.ctx;
        let p = ctx.mb.poly_to_coeff(p);
        let n = ctx.params.n;
        let k = ctx.mb.len();
        let d = ctx.mb.product();
        let half_d = d.shr(1);
        let mut out_coeffs: Vec<IBig> = Vec::with_capacity(n);
        let mut residues = vec![0u64; k];
        for j in 0..n {
            for (i, limb) in p.limbs().iter().enumerate() {
                residues[i] = limb.values()[j];
            }
            let x = ctx.mb.crt_reconstruct(&residues);
            let (neg, mag) = if x > half_d {
                (true, d.sub(&x))
            } else {
                (false, x)
            };
            let w = mag.mul_u64(ctx.params.t).div_round(&ctx.q);
            out_coeffs.push(IBig::new(neg, w));
        }
        let limbs = ctx
            .qb
            .rings()
            .iter()
            .map(|r| {
                let m = r.modulus();
                let mut vals = LimbVec::take_raw(n);
                for (o, c) in vals.iter_mut().zip(&out_coeffs) {
                    let v = c.mag.rem_u64(m.value());
                    *o = if c.neg { m.neg(v) } else { v };
                }
                Poly::from_limbs(vals, Domain::Coeff)
            })
            .collect();
        RnsPoly::from_limbs(limbs)
    }

    /// Ciphertext multiplication without relinearization (result size 3,
    /// coefficient form). The centered CRT lift into the extended basis is
    /// the second forced-Coeff boundary: Eval-resident operands are
    /// converted down here, lazily, rather than eagerly at production.
    pub fn mul_no_relin(&self, a: &BfvCiphertext, b: &BfvCiphertext) -> BfvCiphertext {
        self.mul_no_relin_lifted(&self.lift_for_mul(a), &self.lift_for_mul(b))
    }

    /// Lifts a size-2 ciphertext into the extended multiplication basis
    /// (centered CRT lift + forward NTTs there) — the reusable operand half
    /// of a CMult tensor step. BSGS polynomial evaluation multiplies the
    /// same powers many times; lifting each one **once** hoists the
    /// forced-Coeff boundary out of the inner loop, exactly as
    /// [`hoist`](Self::hoist) does for rotations.
    ///
    /// # Panics
    ///
    /// Panics unless `ct` has exactly two components.
    pub fn lift_for_mul(&self, ct: &BfvCiphertext) -> TensorOperand {
        assert_eq!(ct.size(), 2, "operands must be size-2 ciphertexts");
        let ctx = self.ctx;
        lift_stats::record_computed();
        let parts = ct
            .parts
            .iter()
            .map(|p| {
                let mut lifted = self.lift_centered(&ctx.qb.poly_to_coeff(p));
                ctx.mb.poly_to_eval_inplace(&mut lifted);
                lifted
            })
            .collect();
        TensorOperand { parts }
    }

    /// The tensor step on pre-lifted operands (result size 3, coefficient
    /// form): pointwise products in the extended basis plus the exact `t/Q`
    /// scale-down. No lifts, so repeated products against a cached
    /// [`TensorOperand`] pay zero forward NTTs on that operand.
    pub fn mul_no_relin_lifted(&self, a: &TensorOperand, b: &TensorOperand) -> BfvCiphertext {
        op_stats::record_cmult();
        let ctx = self.ctx;
        let e0 = ctx.mb.mul_poly(&a.parts[0], &b.parts[0]);
        let mut e1 = ctx.mb.mul_poly(&a.parts[0], &b.parts[1]);
        ctx.mb
            .add_assign_poly(&mut e1, &ctx.mb.mul_poly(&a.parts[1], &b.parts[0]));
        let e2 = ctx.mb.mul_poly(&a.parts[1], &b.parts[1]);
        BfvCiphertext {
            parts: vec![
                self.scale_to_q(&e0),
                self.scale_to_q(&e1),
                self.scale_to_q(&e2),
            ],
        }
    }

    /// Relinearizes a size-3 ciphertext back to size 2, preserving the
    /// input's domain (the key-switched correction is produced in Eval form
    /// and folded into whatever form `c0`/`c1` are already in).
    pub fn relinearize(&self, ct: &BfvCiphertext, rlk: &RelinKey) -> BfvCiphertext {
        assert_eq!(ct.size(), 3, "relinearization expects a size-3 ciphertext");
        let ctx = self.ctx;
        let d = ctx.qb.poly_to_coeff(&ct.parts[2]);
        let (mut p0, mut p1) = rlk.0.apply(ctx, &d);
        if ct.parts[0].domain() == Domain::Coeff {
            ctx.qb.poly_to_coeff_inplace(&mut p0);
            ctx.qb.poly_to_coeff_inplace(&mut p1);
        }
        BfvCiphertext {
            parts: vec![
                ctx.qb.add_poly(&ct.parts[0], &p0),
                ctx.qb.add_poly(&ct.parts[1], &p1),
            ],
        }
    }

    /// Full ciphertext multiplication (`CMult`): tensor + relinearize.
    pub fn mul(&self, a: &BfvCiphertext, b: &BfvCiphertext, rlk: &RelinKey) -> BfvCiphertext {
        self.relinearize(&self.mul_no_relin(a, b), rlk)
    }

    /// Applies the Galois automorphism `X → X^g` homomorphically
    /// (`HRot` building block). Accepts either domain and always produces
    /// an **Eval-form** ciphertext: on an Eval-resident input the
    /// automorphism is a pure permutation and the only transforms are the
    /// `k` inverse NTTs bringing `c1` down for digit decomposition plus
    /// the `k²` digit lifts inside the key switch — zero forward NTTs touch
    /// the ciphertext body, which is what keeps rotation chains cheap.
    ///
    /// The schedule is decompose-*then*-permute: `c1` is decomposed first
    /// and the automorphism is applied to the lifted digits in Eval form
    /// (a pure index permutation). Because the gadget constants are fixed
    /// by every automorphism, `Σ φ_g(D_i)·g_i = φ_g(c1) (mod Q)` exactly,
    /// so this is the same key switch — and it makes one eager rotation
    /// **bit-identical** to [`BfvEvaluator::hoist`] + one hoisted rotation,
    /// which share this code path.
    ///
    /// # Panics
    ///
    /// Panics if no key for `g` is present.
    pub fn apply_galois(&self, ct: &BfvCiphertext, g: usize, gk: &GaloisKeys) -> BfvCiphertext {
        assert_eq!(ct.size(), 2, "automorphism expects a size-2 ciphertext");
        let ctx = self.ctx;
        let key = gk.key_or_panic(g);
        let c0 = ctx.qb.poly_to_eval(&ct.parts[0]);
        let digits = ctx.decompose_lift(&ctx.qb.poly_to_coeff(&ct.parts[1]));
        rot_stats::record_eager();
        self.galois_from_digits(&c0, &digits, g, key)
    }

    /// One Galois application from pre-lifted digits: permutes the cached
    /// Eval-form digits (index permutation, zero NTTs), runs the per-key
    /// inner products, and folds in the permuted `c0`. Shared by the eager
    /// path above and [`HoistedCiphertext::apply_galois`].
    fn galois_from_digits(
        &self,
        c0_eval: &RnsPoly,
        digits: &[RnsPoly],
        g: usize,
        key: &KeySwitchKey,
    ) -> BfvCiphertext {
        let ctx = self.ctx;
        op_stats::record_hrot();
        let permuted: Vec<RnsPoly> = par::parallel_map_range_with(
            par::threads_for(digits.len(), ctx.qb.len() * ctx.qb.n()),
            digits.len(),
            |i| ctx.qb.automorphism_poly(&digits[i], g),
        );
        let (mut p0, p1) = key.apply_digits(ctx, &permuted);
        ctx.qb
            .add_assign_poly(&mut p0, &ctx.qb.automorphism_poly(c0_eval, g));
        BfvCiphertext {
            parts: vec![p0, p1],
        }
    }

    /// Prepares a ciphertext for **hoisted** rotations (Halevi–Shoup):
    /// decomposes and lifts the `c1` digits once — `k` inverse + `k²`
    /// forward NTTs, the same bill as a single rotation — after which every
    /// [`HoistedCiphertext::apply_galois`] is an NTT-free digit permutation
    /// plus inner products. Rotating one source `R` times costs one
    /// decomposition instead of `R`.
    ///
    /// # Panics
    ///
    /// Panics unless `ct` has exactly two components.
    pub fn hoist(&self, ct: &BfvCiphertext) -> HoistedCiphertext {
        assert_eq!(ct.size(), 2, "hoisting expects a size-2 ciphertext");
        let ctx = self.ctx;
        let digits = ctx.decompose_lift(&ctx.qb.poly_to_coeff(&ct.parts[1]));
        HoistedCiphertext {
            ct: ct.to_eval(ctx),
            digits,
        }
    }

    /// Rotates every slot row left by `k` (`HRot`). Output is Eval-form,
    /// except for the trivial `k ≡ 0` rotation, which is a domain-
    /// preserving copy.
    pub fn rotate_rows(&self, ct: &BfvCiphertext, k: usize, gk: &GaloisKeys) -> BfvCiphertext {
        if k.is_multiple_of(self.ctx.encoder.row_size()) {
            return ct.clone();
        }
        let g = self.ctx.encoder.galois_for_rotation(k);
        self.apply_galois(ct, g, gk)
    }

    /// Swaps the two slot rows (`HRot` column rotation, Eval-form output).
    pub fn swap_rows(&self, ct: &BfvCiphertext, gk: &GaloisKeys) -> BfvCiphertext {
        self.apply_galois(ct, self.ctx.encoder.galois_for_row_swap(), gk)
    }
}

/// A size-2 ciphertext lifted (centered) into the extended multiplication
/// basis and NTT-transformed there — the reusable operand half of a CMult
/// tensor step, produced by [`BfvEvaluator::lift_for_mul`] and consumed by
/// [`BfvEvaluator::mul_no_relin_lifted`]. The CMult analogue of
/// [`HoistedCiphertext`]: the forced-Coeff lift is paid once per operand
/// instead of once per product.
#[derive(Debug, Clone)]
pub struct TensorOperand {
    /// Both components in the extended basis, Eval form.
    parts: Vec<RnsPoly>,
}

/// A size-2 ciphertext whose `c1` digit decomposition has been **hoisted**:
/// [`BfvEvaluator::hoist`] decomposed and lifted the digits once, so every
/// rotation of this source is an Eval-domain index permutation of the
/// cached digits plus per-key inner products — zero NTTs per Galois
/// element. This is the decompose-once/rotate-many shape of every BSGS
/// schedule (all baby rotations act on the same source).
///
/// Outputs are bit-identical to the eager [`BfvEvaluator::apply_galois`]
/// path — both run the same decompose-then-permute key switch.
#[derive(Debug, Clone)]
pub struct HoistedCiphertext {
    /// The source ciphertext, Eval-resident.
    ct: BfvCiphertext,
    /// Eval-form lifted digits of `c1`, shared by every rotation.
    digits: Vec<RnsPoly>,
}

impl HoistedCiphertext {
    /// The underlying (Eval-form) ciphertext.
    pub fn ciphertext(&self) -> &BfvCiphertext {
        &self.ct
    }

    /// Heap size of the cached digits in bytes (`k²` limb polynomials) —
    /// for key-material accounting when digits are stored long-term.
    pub fn digit_bytes(&self) -> usize {
        self.digits
            .iter()
            .map(|d| {
                d.limbs()
                    .iter()
                    .map(|l| l.values().len() * 8)
                    .sum::<usize>()
            })
            .sum()
    }

    /// Applies the Galois automorphism `X → X^g` from the cached digits
    /// (always Eval-form output, zero NTTs).
    ///
    /// # Panics
    ///
    /// Panics if no key for `g` is present.
    pub fn apply_galois(&self, ctx: &BfvContext, g: usize, gk: &GaloisKeys) -> BfvCiphertext {
        let key = gk.key_or_panic(g);
        rot_stats::record_hoisted();
        BfvEvaluator::new(ctx).galois_from_digits(&self.ct.parts[0], &self.digits, g, key)
    }

    /// Rotates every slot row left by `k` from the cached digits; the
    /// trivial `k ≡ 0` rotation is a copy of the source.
    pub fn rotate_rows(&self, ctx: &BfvContext, k: usize, gk: &GaloisKeys) -> BfvCiphertext {
        if k.is_multiple_of(ctx.encoder().row_size()) {
            return self.ct.clone();
        }
        self.apply_galois(ctx, ctx.encoder().galois_for_rotation(k), gk)
    }

    /// Swaps the two slot rows from the cached digits.
    pub fn swap_rows(&self, ctx: &BfvContext, gk: &GaloisKeys) -> BfvCiphertext {
        self.apply_galois(ctx, ctx.encoder().galois_for_row_swap(), gk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::encode_coeff;

    fn setup() -> (BfvContext, SecretKey, Sampler) {
        let ctx = BfvContext::new(BfvParams::test_small());
        let mut sampler = Sampler::from_seed(1234);
        let sk = SecretKey::generate(&ctx, &mut sampler);
        (ctx, sk, sampler)
    }

    #[test]
    fn encrypt_decrypt_roundtrip_sk() {
        let (ctx, sk, mut sampler) = setup();
        let ev = BfvEvaluator::new(&ctx);
        let m = encode_coeff(&(0..128).map(|i| i - 64).collect::<Vec<_>>(), 257, 128);
        let ct = ev.encrypt_sk(&m, &sk, &mut sampler);
        assert!(ev.noise_budget(&ct, &sk) > 100, "fresh budget too small");
        assert_eq!(ev.decrypt(&ct, &sk), m);
    }

    #[test]
    fn encrypt_decrypt_roundtrip_pk() {
        let (ctx, sk, mut sampler) = setup();
        let pk = PublicKey::generate(&ctx, &sk, &mut sampler);
        let ev = BfvEvaluator::new(&ctx);
        let m = encode_coeff(&[42, -7, 100], 257, 128);
        let ct = ev.encrypt_pk(&m, &pk, &mut sampler);
        assert_eq!(ev.decrypt(&ct, &sk), m);
    }

    #[test]
    fn homomorphic_add_sub() {
        let (ctx, sk, mut sampler) = setup();
        let ev = BfvEvaluator::new(&ctx);
        let ma = encode_coeff(&[10, 20, 30], 257, 128);
        let mb = encode_coeff(&[1, 2, 250], 257, 128);
        let ca = ev.encrypt_sk(&ma, &sk, &mut sampler);
        let cb = ev.encrypt_sk(&mb, &sk, &mut sampler);
        let sum = ev.decrypt(&ev.add(&ca, &cb), &sk);
        assert_eq!(&sum.values()[..3], &[11, 22, (30 + 250) % 257]);
        let diff = ev.decrypt(&ev.sub(&ca, &cb), &sk);
        assert_eq!(&diff.values()[..3], &[9, 18, (30 + 257 - 250) % 257]);
    }

    #[test]
    fn plain_and_scalar_mul() {
        let (ctx, sk, mut sampler) = setup();
        let ev = BfvEvaluator::new(&ctx);
        // slot-encoded so products are slot-wise
        let enc = ctx.encoder();
        let a: Vec<u64> = (0..128u64).collect();
        let b: Vec<u64> = (0..128u64).map(|i| (3 * i + 1) % 257).collect();
        let ct = ev.encrypt_sk(&enc.encode(&a), &sk, &mut sampler);
        let prod = ev.mul_plain(&ct, &enc.encode(&b));
        let got = enc.decode(&ev.decrypt(&prod, &sk));
        let want: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| x * y % 257).collect();
        assert_eq!(got, want);
        let scaled = ev.mul_scalar(&ct, 5);
        let got = enc.decode(&ev.decrypt(&scaled, &sk));
        let want: Vec<u64> = a.iter().map(|&x| 5 * x % 257).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn ciphertext_multiplication_with_relin() {
        let (ctx, sk, mut sampler) = setup();
        let ev = BfvEvaluator::new(&ctx);
        let rlk = RelinKey::generate(&ctx, &sk, &mut sampler);
        let enc = ctx.encoder();
        let a: Vec<u64> = (0..128u64).map(|i| (i * 7) % 257).collect();
        let b: Vec<u64> = (0..128u64).map(|i| (i + 11) % 257).collect();
        let ca = ev.encrypt_sk(&enc.encode(&a), &sk, &mut sampler);
        let cb = ev.encrypt_sk(&enc.encode(&b), &sk, &mut sampler);
        let prod = ev.mul(&ca, &cb, &rlk);
        assert_eq!(prod.size(), 2);
        assert!(
            ev.noise_budget(&prod, &sk) > 0,
            "budget exhausted after one mul"
        );
        let got = enc.decode(&ev.decrypt(&prod, &sk));
        let want: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| x * y % 257).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn repeated_multiplication_depth() {
        let (ctx, sk, mut sampler) = setup();
        let ev = BfvEvaluator::new(&ctx);
        let rlk = RelinKey::generate(&ctx, &sk, &mut sampler);
        let enc = ctx.encoder();
        let x: Vec<u64> = vec![3; 128];
        let mut ct = ev.encrypt_sk(&enc.encode(&x), &sk, &mut sampler);
        // square 3 times: 3^8 = 6561 mod 257 = 6561 - 25*257 = 136
        for _ in 0..3 {
            ct = ev.mul(&ct, &ct, &rlk);
        }
        let got = enc.decode(&ev.decrypt(&ct, &sk));
        assert!(got.iter().all(|&v| v == 6561 % 257), "got[0] = {}", got[0]);
    }

    #[test]
    fn rotation_rotates_slots() {
        let (ctx, sk, mut sampler) = setup();
        let ev = BfvEvaluator::new(&ctx);
        let enc = ctx.encoder();
        let vals: Vec<u64> = (0..128u64).collect();
        let g1 = enc.galois_for_rotation(1);
        let g5 = enc.galois_for_rotation(5);
        let gs = enc.galois_for_row_swap();
        let gk = GaloisKeys::generate(&ctx, &sk, &[g1, g5, gs], &mut sampler);
        let ct = ev.encrypt_sk(&enc.encode(&vals), &sk, &mut sampler);
        for k in [1usize, 5] {
            let rot = ev.rotate_rows(&ct, k, &gk);
            let got = enc.decode(&ev.decrypt(&rot, &sk));
            assert_eq!(got, enc.rotate_slots(&vals, k), "k={k}");
        }
        let sw = ev.swap_rows(&ct, &gk);
        let got = enc.decode(&ev.decrypt(&sw, &sk));
        assert_eq!(got, enc.swap_rows(&vals));
    }

    #[test]
    fn hoisted_rotations_match_eager_bitwise() {
        let (ctx, sk, mut sampler) = setup();
        let ev = BfvEvaluator::new(&ctx);
        let enc = ctx.encoder();
        let vals: Vec<u64> = (0..128u64).map(|i| (i * 13 + 5) % 257).collect();
        let els: Vec<usize> = (1..4usize)
            .map(|k| enc.galois_for_rotation(k))
            .chain([enc.galois_for_row_swap()])
            .collect();
        let gk = GaloisKeys::generate(&ctx, &sk, &els, &mut sampler);
        let ct = ev.encrypt_sk(&enc.encode(&vals), &sk, &mut sampler);
        let hoisted = ev.hoist(&ct);
        for k in 1..4usize {
            let eager = ev.rotate_rows(&ct, k, &gk);
            let fast = hoisted.rotate_rows(&ctx, k, &gk);
            assert_eq!(eager.parts(), fast.parts(), "k={k}");
        }
        assert_eq!(
            ev.swap_rows(&ct, &gk).parts(),
            hoisted.swap_rows(&ctx, &gk).parts()
        );
    }

    #[test]
    fn lifted_tensor_mul_matches_direct() {
        let (ctx, sk, mut sampler) = setup();
        let ev = BfvEvaluator::new(&ctx);
        let enc = ctx.encoder();
        let a: Vec<u64> = (0..128u64).map(|i| (i * 7) % 257).collect();
        let b: Vec<u64> = (0..128u64).map(|i| (i + 11) % 257).collect();
        let ca = ev.encrypt_sk(&enc.encode(&a), &sk, &mut sampler);
        let cb = ev.encrypt_sk(&enc.encode(&b), &sk, &mut sampler);
        let direct = ev.mul_no_relin(&ca, &cb);
        let (la, lb) = (ev.lift_for_mul(&ca), ev.lift_for_mul(&cb));
        let lifted = ev.mul_no_relin_lifted(&la, &lb);
        assert_eq!(direct.parts(), lifted.parts());
        // Reusing a cached operand (squaring) also matches the direct route.
        assert_eq!(
            ev.mul_no_relin(&ca, &ca).parts(),
            ev.mul_no_relin_lifted(&la, &la).parts()
        );
    }

    #[test]
    fn missing_galois_key_panics_with_typed_payload() {
        let (ctx, sk, mut sampler) = setup();
        let ev = BfvEvaluator::new(&ctx);
        let enc = ctx.encoder();
        let g1 = enc.galois_for_rotation(1);
        let g2 = enc.galois_for_rotation(2);
        let gk = GaloisKeys::generate(&ctx, &sk, &[g1], &mut sampler);
        let ct = ev.encrypt_sk(&encode_coeff(&[1], 257, 128), &sk, &mut sampler);
        // Key for rotation 2 was never generated: the unwind payload must
        // be the typed error, downcastable at a catch boundary.
        let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = ev.rotate_rows(&ct, 2, &gk);
        }))
        .expect_err("missing key must unwind");
        let err = payload
            .downcast_ref::<FheError>()
            .expect("payload is FheError");
        assert_eq!(
            *err,
            FheError::KeyMissing {
                element: g2,
                available: vec![g1],
            }
        );
        assert!(err.to_string().contains("missing Galois key for element"));
    }

    #[test]
    fn ensure_covers_reports_missing_elements_as_typed_payload() {
        let (ctx, sk, mut sampler) = setup();
        let enc = ctx.encoder();
        let g1 = enc.galois_for_rotation(1);
        let g2 = enc.galois_for_rotation(2);
        let gk = GaloisKeys::generate(&ctx, &sk, &[g1], &mut sampler);
        let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            gk.ensure_covers(&[g1, g2]);
        }))
        .expect_err("coverage gap must unwind");
        let err = payload
            .downcast_ref::<FheError>()
            .expect("payload is FheError");
        assert!(
            matches!(err, FheError::KeyCoverage { missing, .. } if missing == &vec![g2]),
            "wrong payload: {err:?}"
        );
        assert!(err.to_string().contains("Galois key coverage gap"));
    }

    #[test]
    fn ensure_covers_accepts_full_coverage() {
        let (ctx, sk, mut sampler) = setup();
        let enc = ctx.encoder();
        let els = [enc.galois_for_rotation(1), enc.galois_for_row_swap()];
        let gk = GaloisKeys::generate(&ctx, &sk, &els, &mut sampler);
        gk.ensure_covers(&els);
        gk.ensure_covers(&[]);
    }

    #[test]
    fn trivial_ciphertext_decrypts() {
        let (ctx, sk, _s) = setup();
        let ev = BfvEvaluator::new(&ctx);
        let m = encode_coeff(&[7, 0, 99], 257, 128);
        let ct = BfvCiphertext::trivial(&ctx, &m);
        assert_eq!(ev.decrypt(&ct, &sk), m);
    }

    #[test]
    fn add_plain_matches() {
        let (ctx, sk, mut sampler) = setup();
        let ev = BfvEvaluator::new(&ctx);
        let m1 = encode_coeff(&[100], 257, 128);
        let m2 = encode_coeff(&[200], 257, 128);
        let ct = ev.encrypt_sk(&m1, &sk, &mut sampler);
        let sum = ev.add_plain(&ct, &m2);
        assert_eq!(ev.decrypt(&sum, &sk).values()[0], 300 % 257);
    }
}
