//! Framework Steps ② and ③: modulus switching `Q → t` (Eq. 2) and sample
//! extraction (Alg. 1), turning one RLWE ciphertext into `N` LWE
//! ciphertexts — one per plaintext coefficient.

use athena_math::modops::Modulus;
use athena_math::poly::Domain;
use athena_math::stats::op_stats;

use crate::bfv::{BfvCiphertext, BfvContext, SecretKey};
use crate::lwe::{LweCiphertext, LweSecret};

/// An RLWE ciphertext over the small modulus `t`, produced by modulus
/// switching: `(a, b)` with `b + a·s = m + e_ms (mod t)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRlwe {
    /// Mask polynomial coefficients mod `t` (this is `c1` of the BFV pair).
    pub a: Vec<u64>,
    /// Body polynomial coefficients mod `t` (this is `c0`).
    pub b: Vec<u64>,
    /// The small modulus (`t`).
    pub q: u64,
}

impl SmallRlwe {
    /// Decrypts directly (reference path for tests): returns
    /// `b + a·s mod t` coefficient-wise, i.e. `m + e_ms`.
    pub fn decrypt(&self, sk_coeffs: &[i64]) -> Vec<u64> {
        let n = self.a.len();
        assert_eq!(sk_coeffs.len(), n);
        let q = Modulus::new(self.q);
        // b + a*s over the negacyclic ring mod t
        let mut out = self.b.clone();
        for (i, &ai) in self.a.iter().enumerate() {
            for (j, &sj) in sk_coeffs.iter().enumerate() {
                let p = q.mul(ai, q.from_i64(sj));
                let k = i + j;
                if k < n {
                    out[k] = q.add(out[k], p);
                } else {
                    out[k - n] = q.sub(out[k - n], p);
                }
            }
        }
        out
    }
}

/// Modulus switching (Step ②, Eq. 2) to an arbitrary smaller modulus:
/// rescales both ciphertext components from `Q` to `target` with rounding.
/// This removes the accumulated linear-layer noise `e` (which lived below
/// Δ) at the cost of a small rounding noise `e_ms`.
///
/// Switching directly to `t` puts `e_ms` on the plaintext itself; switching
/// to an intermediate word-sized modulus (e.g. one RNS prime) keeps plenty
/// of noise headroom for the LWE dimension switch, after which a final LWE
/// modulus switch drops to `t` — the order that makes the paper's
/// `e_ms ≈ 4 bits` claim hold.
///
/// # Panics
///
/// Panics if the ciphertext has more than two components.
pub fn mod_switch_rlwe(ctx: &BfvContext, ct: &BfvCiphertext, target: u64) -> SmallRlwe {
    assert_eq!(ct.size(), 2, "mod switch expects a size-2 ciphertext");
    op_stats::record_mod_switch();
    let qb = ctx.q_basis();
    let c0 = qb.poly_to_coeff(&ct.parts()[0]);
    let c1 = qb.poly_to_coeff(&ct.parts()[1]);
    assert_eq!(c0.domain(), Domain::Coeff);
    let b = qb.scale_round(&c0, target, target);
    let a = qb.scale_round(&c1, target, target);
    SmallRlwe { a, b, q: target }
}

/// Modulus switching straight to the plaintext modulus `t`.
pub fn mod_switch_to_t(ctx: &BfvContext, ct: &BfvCiphertext) -> SmallRlwe {
    mod_switch_rlwe(ctx, ct, ctx.t())
}

/// Sample extraction (Step ③, Alg. 1): expands a [`SmallRlwe`] ciphertext
/// into `N` LWE ciphertexts, where the `i`-th decrypts to the `i`-th
/// plaintext coefficient under the RLWE secret viewed as an LWE secret.
pub fn sample_extract_all(rlwe: &SmallRlwe) -> Vec<LweCiphertext> {
    let n = rlwe.a.len();
    (0..n).map(|i| sample_extract_one(rlwe, i)).collect()
}

/// Extracts only coefficient `i` (Alg. 1 body).
///
/// # Panics
///
/// Panics if `i >= N`.
pub fn sample_extract_one(rlwe: &SmallRlwe, i: usize) -> LweCiphertext {
    let n = rlwe.a.len();
    assert!(i < n, "coefficient index out of range");
    op_stats::record_sample_extract();
    let q = Modulus::new(rlwe.q);
    let mut a = vec![0u64; n];
    for (j, slot) in a.iter_mut().enumerate() {
        *slot = if j <= i {
            rlwe.a[i - j]
        } else {
            q.neg(rlwe.a[n + i - j])
        };
    }
    LweCiphertext::from_parts(a, rlwe.b[i], rlwe.q)
}

/// Views the RLWE secret key as the LWE secret the extracted ciphertexts
/// decrypt under, at modulus `q`.
pub fn rlwe_secret_as_lwe_mod(sk: &SecretKey, q: u64) -> LweSecret {
    LweSecret::from_coeffs(sk.coeffs().to_vec(), q)
}

/// Views the RLWE secret key as an LWE secret at the plaintext modulus `t`.
pub fn rlwe_secret_as_lwe(ctx: &BfvContext, sk: &SecretKey) -> LweSecret {
    rlwe_secret_as_lwe_mod(sk, ctx.t())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfv::{BfvContext, BfvEvaluator, SecretKey};
    use crate::encoder::encode_coeff;
    use crate::params::BfvParams;
    use athena_math::sampler::Sampler;

    fn setup() -> (BfvContext, SecretKey, Sampler) {
        let ctx = BfvContext::new(BfvParams::test_small());
        let mut sampler = Sampler::from_seed(77);
        let sk = SecretKey::generate(&ctx, &mut sampler);
        (ctx, sk, sampler)
    }

    #[test]
    fn mod_switch_then_direct_decrypt() {
        let (ctx, sk, mut sampler) = setup();
        let ev = BfvEvaluator::new(&ctx);
        // message in the high bits of t so e_ms (a few units) is visible but
        // removable: encode m * 16
        let msgs: Vec<i64> = (0..128).map(|i| (i % 16) * 16).collect();
        let m = encode_coeff(&msgs, 257, 128);
        let ct = ev.encrypt_sk(&m, &sk, &mut sampler);
        let small = mod_switch_to_t(&ctx, &ct);
        let dec = small.decrypt(sk.coeffs());
        for (i, (&d, &want)) in dec.iter().zip(&msgs).enumerate() {
            let err = (d as i64 - want).rem_euclid(257);
            let err = err.min(257 - err);
            assert!(
                err <= 16,
                "coeff {i}: decrypted {d}, want {want} (err {err})"
            );
        }
    }

    #[test]
    fn extraction_matches_ring_decryption() {
        let (ctx, sk, mut sampler) = setup();
        let ev = BfvEvaluator::new(&ctx);
        let msgs: Vec<i64> = (0..128).map(|i| (i * 2) % 257).collect();
        let m = encode_coeff(&msgs, 257, 128);
        let ct = ev.encrypt_sk(&m, &sk, &mut sampler);
        let small = mod_switch_to_t(&ctx, &ct);
        let ring_dec = small.decrypt(sk.coeffs());
        let lwe_sk = rlwe_secret_as_lwe(&ctx, &sk);
        let lwes = sample_extract_all(&small);
        assert_eq!(lwes.len(), 128);
        for (i, lwe) in lwes.iter().enumerate() {
            assert_eq!(lwe.decrypt(&lwe_sk), ring_dec[i], "coefficient {i}");
        }
    }

    #[test]
    fn extraction_is_exact_on_trivial_rlwe() {
        // With a = 0 the extraction must return exactly b_i.
        let rlwe = SmallRlwe {
            a: vec![0; 8],
            b: (0..8u64).collect(),
            q: 257,
        };
        let s = LweSecret::from_coeffs(vec![1, -1, 0, 1, 0, 0, -1, 1], 257);
        for i in 0..8 {
            let ct = sample_extract_one(&rlwe, i);
            assert_eq!(ct.decrypt(&s), i as u64);
        }
    }

    #[test]
    fn extraction_negacyclic_wraparound_sign() {
        // Single nonzero a coefficient at position N-1 exercises the
        // negation branch of Alg. 1.
        let n = 8;
        let mut a = vec![0u64; n];
        a[n - 1] = 5;
        let rlwe = SmallRlwe {
            a,
            b: vec![0; n],
            q: 257,
        };
        let mut s = vec![0i64; n];
        s[1] = 1; // s = X
        let sk = LweSecret::from_coeffs(s.clone(), 257);
        // a*s = 5 X^{n-1} * X = 5 X^n = -5 (negacyclic)
        let dec0 = sample_extract_one(&rlwe, 0).decrypt(&sk);
        assert_eq!(dec0, 257 - 5);
        // all other coefficients are 0
        for i in 1..n {
            assert_eq!(sample_extract_one(&rlwe, i).decrypt(&sk), 0, "i={i}");
        }
    }
}
