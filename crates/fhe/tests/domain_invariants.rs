//! Domain-representation invariants: rotation chains stay NTT-resident,
//! lazy Coeff conversion happens only at the forced boundaries, and the
//! `op-stats` counters prove the NTT budget of a key-switched rotation.
//!
//! The counters are process-global relaxed atomics, so every test in this
//! binary — including the ones that only check values — serializes on one
//! mutex to keep `ntt_stats::measure` deltas attributable.

use std::sync::Mutex;

use athena_fhe::bfv::{BfvContext, BfvEvaluator, GaloisKeys, SecretKey};
use athena_fhe::params::BfvParams;
use athena_math::poly::Domain;
use athena_math::sampler::Sampler;

static COUNTER_GUARD: Mutex<()> = Mutex::new(());

struct Fx {
    ctx: BfvContext,
    sk: SecretKey,
    sampler: Sampler,
}

fn setup() -> Fx {
    let ctx = BfvContext::new(BfvParams::test_small());
    let mut sampler = Sampler::from_seed(77_001);
    let sk = SecretKey::generate(&ctx, &mut sampler);
    Fx { ctx, sk, sampler }
}

fn rotation_keys(f: &mut Fx, rotations: &[usize]) -> GaloisKeys {
    let enc = f.ctx.encoder();
    let mut els: Vec<usize> = rotations
        .iter()
        .map(|&k| enc.galois_for_rotation(k))
        .collect();
    els.sort_unstable();
    els.dedup();
    GaloisKeys::generate(&f.ctx, &f.sk, &els, &mut f.sampler)
}

/// A rotate→rotate→add chain held in Eval form end-to-end decrypts to
/// exactly the same plaintext as the eager variant that converts back to
/// coefficient form after every operation (the conversions are exact, so
/// even the embedded noise agrees).
#[test]
fn eval_resident_rotation_chain_matches_eager() {
    let _lock = COUNTER_GUARD.lock().unwrap();
    let mut f = setup();
    let gk = rotation_keys(&mut f, &[1, 2]);
    let ev = BfvEvaluator::new(&f.ctx);
    let enc = f.ctx.encoder();
    let t = f.ctx.t();
    let vals: Vec<u64> = (0..f.ctx.n() as u64).map(|i| (i * 11 + 3) % t).collect();
    let ct = ev.encrypt_sk(&enc.encode(&vals), &f.sk, &mut f.sampler);

    // Resident chain: every intermediate stays in Eval form.
    let r1 = ev.rotate_rows(&ct, 1, &gk);
    assert_eq!(
        r1.domain(),
        Domain::Eval,
        "rotation output is Eval-resident"
    );
    let r2 = ev.rotate_rows(&r1, 2, &gk);
    assert_eq!(r2.domain(), Domain::Eval);
    let resident = ev.add(&r1, &r2);
    assert_eq!(resident.domain(), Domain::Eval);

    // Eager chain: identical operations, forced down to Coeff at each step.
    let e1 = ev.rotate_rows(&ct, 1, &gk).to_coeff(&f.ctx);
    let e2 = ev.rotate_rows(&e1, 2, &gk).to_coeff(&f.ctx);
    let eager = ev.add(&e1, &e2);

    let got = ev.decrypt(&resident, &f.sk);
    assert_eq!(got, ev.decrypt(&eager, &f.sk));
    // And the plaintext is the expected rot¹(v) + rot³(v).
    let want: Vec<u64> = {
        let a = enc.rotate_slots(&vals, 1);
        let b = enc.rotate_slots(&vals, 3);
        a.iter().zip(&b).map(|(&x, &y)| (x + y) % t).collect()
    };
    assert_eq!(enc.decode(&got), want);
}

/// Domain bookkeeping across the forced-Coeff boundaries: CMult accepts
/// Eval operands and produces Coeff, relinearization preserves the input's
/// domain, and decryption works from either form.
#[test]
fn lazy_boundaries_accept_eval_operands() {
    let _lock = COUNTER_GUARD.lock().unwrap();
    let mut f = setup();
    let ev = BfvEvaluator::new(&f.ctx);
    let enc = f.ctx.encoder();
    let rlk = athena_fhe::bfv::RelinKey::generate(&f.ctx, &f.sk, &mut f.sampler);
    let t = f.ctx.t();
    let vals: Vec<u64> = (0..f.ctx.n() as u64).map(|i| (i + 5) % t).collect();
    let ct = ev.encrypt_sk(&enc.encode(&vals), &f.sk, &mut f.sampler);
    let ct_eval = ct.to_eval(&f.ctx);
    assert_eq!(ct_eval.domain(), Domain::Eval);

    let prod = ev.mul(&ct_eval, &ct_eval, &rlk);
    assert_eq!(prod.domain(), Domain::Coeff, "tensor route lands in Coeff");
    let want: Vec<u64> = vals.iter().map(|&x| x * x % t).collect();
    assert_eq!(enc.decode(&ev.decrypt(&prod, &f.sk)), want);
    // Decrypting the Eval form directly matches the Coeff form.
    assert_eq!(ev.decrypt(&ct_eval, &f.sk), ev.decrypt(&ct, &f.sk));
}

/// PMult and plaintext addition follow the ciphertext's domain, so slot
/// arithmetic is identical whichever form the operand is resident in.
#[test]
fn pmult_and_add_plain_are_domain_preserving() {
    let _lock = COUNTER_GUARD.lock().unwrap();
    let mut f = setup();
    let ev = BfvEvaluator::new(&f.ctx);
    let enc = f.ctx.encoder();
    let t = f.ctx.t();
    let vals: Vec<u64> = (0..f.ctx.n() as u64).map(|i| (3 * i) % t).collect();
    let m: Vec<u64> = (0..f.ctx.n() as u64).map(|i| (i + 9) % t).collect();
    let ct = ev.encrypt_sk(&enc.encode(&vals), &f.sk, &mut f.sampler);
    let ct_eval = ct.to_eval(&f.ctx);

    let p_coeff = ev.mul_plain(&ct, &enc.encode(&m));
    let p_eval = ev.mul_plain(&ct_eval, &enc.encode(&m));
    assert_eq!(p_coeff.domain(), Domain::Coeff);
    assert_eq!(p_eval.domain(), Domain::Eval);
    assert_eq!(ev.decrypt(&p_coeff, &f.sk), ev.decrypt(&p_eval, &f.sk));

    let s_coeff = ev.add_plain(&ct, &enc.encode(&m));
    let s_eval = ev.add_plain(&ct_eval, &enc.encode(&m));
    assert_eq!(s_eval.domain(), Domain::Eval);
    assert_eq!(ev.decrypt(&s_coeff, &f.sk), ev.decrypt(&s_eval, &f.sk));
}

/// The headline count: one `rotate_rows` on an Eval-resident ciphertext
/// performs **zero forward NTTs on the ciphertext body**. The only forward
/// transforms are the k² digit lifts inside the key switch, and the only
/// inverse transforms are the k limbs of `c1∘g` coming down for digit
/// decomposition — for the pre-refactor Coeff-resident path this operation
/// cost 4k² forward + 2k² inverse (100 + 50 at k = 5; see
/// `reports/domain_ntt_baseline.txt`).
#[cfg(feature = "op-stats")]
#[test]
fn eval_rotation_does_no_body_forward_ntts() {
    use athena_math::stats::ntt_stats;
    let _lock = COUNTER_GUARD.lock().unwrap();
    let mut f = setup();
    let gk = rotation_keys(&mut f, &[1]);
    let ev = BfvEvaluator::new(&f.ctx);
    let enc = f.ctx.encoder();
    let vals: Vec<u64> = (0..f.ctx.n() as u64).map(|i| i % f.ctx.t()).collect();
    let ct = ev
        .encrypt_sk(&enc.encode(&vals), &f.sk, &mut f.sampler)
        .to_eval(&f.ctx);
    let k = f.ctx.q_basis().len();

    let (rot, counts) = ntt_stats::measure(|| ev.rotate_rows(&ct, 1, &gk));
    assert_eq!(
        counts.forward,
        (k * k) as u64,
        "only the k² digit lifts may transform forward"
    );
    assert_eq!(
        counts.inverse, k as u64,
        "only c1∘g comes down for decomposition"
    );
    assert_eq!(rot.domain(), Domain::Eval);
    assert_eq!(
        enc.decode(&ev.decrypt(&rot, &f.sk)),
        enc.rotate_slots(&vals, 1)
    );
}

/// A second rotation chained onto the first costs exactly the same budget —
/// residency means no re-conversion between hops.
#[cfg(feature = "op-stats")]
#[test]
fn chained_rotations_pay_no_conversion_between_hops() {
    use athena_math::stats::ntt_stats;
    let _lock = COUNTER_GUARD.lock().unwrap();
    let mut f = setup();
    let gk = rotation_keys(&mut f, &[1, 2]);
    let ev = BfvEvaluator::new(&f.ctx);
    let enc = f.ctx.encoder();
    let vals: Vec<u64> = (0..f.ctx.n() as u64).map(|i| i % f.ctx.t()).collect();
    let ct = ev
        .encrypt_sk(&enc.encode(&vals), &f.sk, &mut f.sampler)
        .to_eval(&f.ctx);
    let k = (f.ctx.q_basis().len()) as u64;

    let ((), counts) = ntt_stats::measure(|| {
        let r1 = ev.rotate_rows(&ct, 1, &gk);
        let r2 = ev.rotate_rows(&r1, 2, &gk);
        std::hint::black_box(r2);
    });
    assert_eq!(counts.forward, 2 * k * k);
    assert_eq!(counts.inverse, 2 * k);
}
