//! Hoisted-rotation invariants: decompose-once/rotate-many is bit-identical
//! to the eager path, deterministic under any worker count, noise-neutral,
//! and actually shares the digit decomposition (one per source, not one per
//! rotation — proved with the `op-stats` counters).
//!
//! The counters are process-global relaxed atomics, so every test in this
//! binary serializes on one mutex to keep `measure` deltas attributable
//! (see `domain_invariants.rs`, which uses the same pattern).

use std::sync::Mutex;

use athena_fhe::bfv::{BfvContext, BfvEvaluator, GaloisKeys, SecretKey};
use athena_fhe::linear::HomLinearTransform;
use athena_fhe::lwe::{LweCiphertext, LweSecret};
use athena_fhe::pack::BsgsPackingKey;
use athena_fhe::params::BfvParams;
use athena_math::par;
use athena_math::sampler::Sampler;

static COUNTER_GUARD: Mutex<()> = Mutex::new(());

struct Fx {
    ctx: BfvContext,
    sk: SecretKey,
    sampler: Sampler,
}

fn setup() -> Fx {
    let ctx = BfvContext::new(BfvParams::test_small());
    let mut sampler = Sampler::from_seed(88_001);
    let sk = SecretKey::generate(&ctx, &mut sampler);
    Fx { ctx, sk, sampler }
}

/// Galois keys for a BSGS-shaped element set: rotations `1..=max_rot` plus
/// the row swap.
fn schedule_keys(f: &mut Fx, max_rot: usize) -> GaloisKeys {
    let enc = f.ctx.encoder();
    let mut els: Vec<usize> = (1..=max_rot).map(|k| enc.galois_for_rotation(k)).collect();
    els.push(enc.galois_for_row_swap());
    els.sort_unstable();
    els.dedup();
    GaloisKeys::generate(&f.ctx, &f.sk, &els, &mut f.sampler)
}

/// Hoisted rotation output is bit-identical to the eager path for every
/// Galois element of a BSGS schedule, at one worker and at the default
/// worker count (and the two runs agree with each other bit-for-bit).
#[test]
fn hoisted_matches_eager_for_every_element_any_thread_count() {
    let _lock = COUNTER_GUARD.lock().unwrap();
    let mut f = setup();
    let gk = schedule_keys(&mut f, 8);
    let ev = BfvEvaluator::new(&f.ctx);
    let enc = f.ctx.encoder();
    let vals: Vec<u64> = (0..f.ctx.n() as u64).map(|i| (i * 9 + 4) % 257).collect();
    let ct = ev.encrypt_sk(&enc.encode(&vals), &f.sk, &mut f.sampler);

    let mut runs: Vec<Vec<athena_fhe::bfv::BfvCiphertext>> = Vec::new();
    for threads in [1usize, 0] {
        par::set_threads(threads);
        let hoisted = ev.hoist(&ct);
        let mut outs = Vec::new();
        for k in 1..=8usize {
            let eager = ev.rotate_rows(&ct, k, &gk);
            let fast = hoisted.rotate_rows(&f.ctx, k, &gk);
            assert_eq!(eager.parts(), fast.parts(), "k={k}, threads={threads}");
            outs.push(fast);
        }
        let eager_swap = ev.swap_rows(&ct, &gk);
        let fast_swap = hoisted.swap_rows(&f.ctx, &gk);
        assert_eq!(
            eager_swap.parts(),
            fast_swap.parts(),
            "row swap, threads={threads}"
        );
        outs.push(fast_swap);
        runs.push(outs);
    }
    par::set_threads(0);
    // Serial and parallel runs are bit-identical too.
    for (i, (a, b)) in runs[0].iter().zip(&runs[1]).enumerate() {
        assert_eq!(a.parts(), b.parts(), "serial vs parallel, output {i}");
    }
}

/// The trivial rotation (`k ≡ 0 mod row`) returns the source unchanged.
#[test]
fn hoisted_trivial_rotation_is_identity() {
    let _lock = COUNTER_GUARD.lock().unwrap();
    let mut f = setup();
    let gk = schedule_keys(&mut f, 1);
    let ev = BfvEvaluator::new(&f.ctx);
    let enc = f.ctx.encoder();
    let vals: Vec<u64> = (0..f.ctx.n() as u64).collect();
    let ct = ev
        .encrypt_sk(&enc.encode(&vals), &f.sk, &mut f.sampler)
        .to_eval(&f.ctx);
    let hoisted = ev.hoist(&ct);
    let row = enc.row_size();
    assert_eq!(hoisted.rotate_rows(&f.ctx, 0, &gk).parts(), ct.parts());
    assert_eq!(hoisted.rotate_rows(&f.ctx, row, &gk).parts(), ct.parts());
}

/// Hoisting is noise-neutral: the rotated output decrypts correctly and its
/// invariant-noise budget equals the eager path's (they are bit-identical).
#[test]
fn hoisted_rotation_noise_budget_matches_eager() {
    let _lock = COUNTER_GUARD.lock().unwrap();
    let mut f = setup();
    let gk = schedule_keys(&mut f, 4);
    let ev = BfvEvaluator::new(&f.ctx);
    let enc = f.ctx.encoder();
    let vals: Vec<u64> = (0..f.ctx.n() as u64).map(|i| (5 * i + 1) % 257).collect();
    let ct = ev.encrypt_sk(&enc.encode(&vals), &f.sk, &mut f.sampler);
    let hoisted = ev.hoist(&ct);
    for k in 1..=4usize {
        let fast = hoisted.rotate_rows(&f.ctx, k, &gk);
        let eager = ev.rotate_rows(&ct, k, &gk);
        assert_eq!(
            enc.decode(&ev.decrypt(&fast, &f.sk)),
            enc.rotate_slots(&vals, k),
            "k={k}"
        );
        let (bf, be) = (
            ev.noise_budget(&fast, &f.sk),
            ev.noise_budget(&eager, &f.sk),
        );
        assert_eq!(bf, be, "k={k}: hoisted budget {bf} != eager budget {be}");
        assert!(bf > 0, "k={k}: budget exhausted");
    }
}

/// The headline hoisting budget: preparing one source and rotating it R
/// times performs exactly **one** digit decomposition — `k` inverse plus
/// `k²` forward NTTs in total, zero additional NTTs per rotation — where
/// the eager schedule pays the full bill R times.
#[cfg(feature = "op-stats")]
#[test]
fn hoisted_schedule_shares_one_decomposition() {
    use athena_math::stats::{ntt_stats, rot_stats};
    let _lock = COUNTER_GUARD.lock().unwrap();
    let mut f = setup();
    const R: usize = 5;
    let gk = schedule_keys(&mut f, R);
    let ev = BfvEvaluator::new(&f.ctx);
    let enc = f.ctx.encoder();
    let vals: Vec<u64> = (0..f.ctx.n() as u64).map(|i| i % 257).collect();
    let ct = ev
        .encrypt_sk(&enc.encode(&vals), &f.sk, &mut f.sampler)
        .to_eval(&f.ctx);
    let k = f.ctx.q_basis().len() as u64;

    par::set_threads(1);
    let (rots, (ntt, rot)) = {
        let ((out, rot), ntt) = ntt_stats::measure(|| {
            rot_stats::measure(|| {
                let hoisted = ev.hoist(&ct);
                (1..=R)
                    .map(|r| hoisted.rotate_rows(&f.ctx, r, &gk))
                    .collect::<Vec<_>>()
            })
        });
        (out, (ntt, rot))
    };
    par::set_threads(0);

    assert_eq!(rot.decompose, 1, "one decomposition for the whole schedule");
    assert_eq!(rot.hoisted, R as u64);
    assert_eq!(rot.eager, 0);
    assert_eq!(
        ntt.forward,
        k * k,
        "only the one-time k² digit lifts transform forward"
    );
    assert_eq!(
        ntt.inverse, k,
        "only c1 comes down, once, for decomposition"
    );
    // And the rotations are still correct.
    for (i, r) in rots.iter().enumerate() {
        assert_eq!(
            enc.decode(&ev.decrypt(r, &f.sk)),
            enc.rotate_slots(&vals, i + 1)
        );
    }
}

/// `HomLinearTransform::rotation_count()` equals the HRot count an actual
/// dense `apply` performs, as measured by the rotation counters.
#[cfg(feature = "op-stats")]
#[test]
fn linear_rotation_count_matches_measured() {
    use athena_math::stats::rot_stats;
    let _lock = COUNTER_GUARD.lock().unwrap();
    let mut f = setup();
    let n = f.ctx.n();
    let mut rng = Sampler::from_seed(424_242);
    // Dense random matrix: no all-zero diagonal, so every group is visited.
    let m: Vec<Vec<u64>> = (0..n)
        .map(|_| (0..n).map(|_| 1 + rng.uniform_mod(256)).collect())
        .collect();
    let tr = HomLinearTransform::new(&f.ctx, m);
    let els = tr.required_galois_elements(&f.ctx);
    let gk = GaloisKeys::generate(&f.ctx, &f.sk, &els, &mut f.sampler);
    let ev = BfvEvaluator::new(&f.ctx);
    let enc = f.ctx.encoder();
    let vals: Vec<u64> = (0..n as u64).map(|i| (i * 3 + 2) % 257).collect();
    let ct = ev.encrypt_sk(&enc.encode(&vals), &f.sk, &mut f.sampler);

    let (out, rot) = rot_stats::measure(|| tr.apply(&f.ctx, &ct, &gk));
    assert_eq!(
        rot.rotations() as usize,
        tr.rotation_count(),
        "measured HRots (eager {} + hoisted {}) != rotation_count()",
        rot.eager,
        rot.hoisted
    );
    // Two hoisted sources (identity + swapped) pay one decomposition each;
    // every other decomposition belongs to an eager giant rotation. The
    // un-hoisted schedule would have paid rotation_count() of them.
    assert_eq!(rot.decompose, rot.eager + 2);
    assert_eq!(
        enc.decode(&ev.decrypt(&out, &f.sk)),
        tr.apply_plain(&f.ctx, &vals)
    );
}

/// `BsgsPackingKey::rotation_count()` equals the HRot count an actual
/// `pack` call performs, and the baby rotations ride on the digit cache
/// hoisted at `generate` time (zero decompositions during pack).
#[cfg(feature = "op-stats")]
#[test]
fn pack_rotation_count_matches_measured() {
    use athena_math::stats::rot_stats;
    let _lock = COUNTER_GUARD.lock().unwrap();
    let mut f = setup();
    let lwe_sk = LweSecret::generate(f.ctx.params().lwe_n, f.ctx.t(), &mut f.sampler);
    let pk = BsgsPackingKey::generate(&f.ctx, &f.sk, &lwe_sk, &mut f.sampler);
    let gk = GaloisKeys::generate(
        &f.ctx,
        &f.sk,
        &pk.required_galois_elements(&f.ctx),
        &mut f.sampler,
    );
    let lwes: Vec<LweCiphertext> = (0..32u64)
        .map(|i| LweCiphertext::encrypt((i * 8) % 257, &lwe_sk, &mut f.sampler))
        .collect();

    let (_, rot) = rot_stats::measure(|| pk.pack(&f.ctx, &lwes, &gk));
    assert_eq!(
        rot.rotations() as usize,
        pk.rotation_count(),
        "measured HRots (eager {} + hoisted {}) != rotation_count()",
        rot.eager,
        rot.hoisted
    );
    assert_eq!(
        rot.decompose, rot.eager,
        "pack-time decompositions must come from giant steps only — the \
         key's digits were hoisted at generate time"
    );
}
