//! Property-based tests of the FHE layer: homomorphism laws of BFV,
//! encoder/LUT/extraction invariants, all on random inputs.

use athena_fhe::bfv::{BfvContext, BfvEvaluator, RelinKey, SecretKey};
use athena_fhe::encoder::SlotEncoder;
use athena_fhe::extract::{mod_switch_to_t, rlwe_secret_as_lwe, sample_extract_all, SmallRlwe};
use athena_fhe::fbs::Lut;
use athena_fhe::lwe::LweSecret;
use athena_fhe::params::BfvParams;
use athena_math::modops::Modulus;
use athena_math::sampler::Sampler;
use proptest::prelude::*;
use std::sync::OnceLock;

/// Shared context (keygen is the slow part; the properties hold for any
/// fixed key).
struct Fixture {
    ctx: BfvContext,
    sk: SecretKey,
    rlk: RelinKey,
}

fn fixture() -> &'static Fixture {
    static FX: OnceLock<Fixture> = OnceLock::new();
    FX.get_or_init(|| {
        let ctx = BfvContext::new(BfvParams::test_small());
        let mut sampler = Sampler::from_seed(0xF1);
        let sk = SecretKey::generate(&ctx, &mut sampler);
        let rlk = RelinKey::generate(&ctx, &sk, &mut sampler);
        Fixture { ctx, sk, rlk }
    })
}

fn slot_values() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..257, 128)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn enc_dec_roundtrip(vals in slot_values(), seed in any::<u64>()) {
        let f = fixture();
        let ev = BfvEvaluator::new(&f.ctx);
        let mut s = Sampler::from_seed(seed);
        let m = f.ctx.encoder().encode(&vals);
        let ct = ev.encrypt_sk(&m, &f.sk, &mut s);
        prop_assert_eq!(ev.decrypt(&ct, &f.sk), m);
    }

    #[test]
    fn add_is_homomorphic(a in slot_values(), b in slot_values(), seed in any::<u64>()) {
        let f = fixture();
        let ev = BfvEvaluator::new(&f.ctx);
        let enc = f.ctx.encoder();
        let mut s = Sampler::from_seed(seed);
        let ca = ev.encrypt_sk(&enc.encode(&a), &f.sk, &mut s);
        let cb = ev.encrypt_sk(&enc.encode(&b), &f.sk, &mut s);
        let got = enc.decode(&ev.decrypt(&ev.add(&ca, &cb), &f.sk));
        let want: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| (x + y) % 257).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn mul_is_homomorphic(a in slot_values(), b in slot_values(), seed in any::<u64>()) {
        let f = fixture();
        let ev = BfvEvaluator::new(&f.ctx);
        let enc = f.ctx.encoder();
        let mut s = Sampler::from_seed(seed);
        let ca = ev.encrypt_sk(&enc.encode(&a), &f.sk, &mut s);
        let cb = ev.encrypt_sk(&enc.encode(&b), &f.sk, &mut s);
        let got = enc.decode(&ev.decrypt(&ev.mul(&ca, &cb, &f.rlk), &f.sk));
        let want: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| x * y % 257).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn lut_interpolation_is_exact_everywhere(seed in any::<u64>()) {
        // Random LUT over t = 257: the interpolated polynomial must hit
        // every entry exactly (both interpolation paths).
        let t = 257u64;
        let m = Modulus::new(t);
        let lut = Lut::from_fn(t, |k| (k.wrapping_mul(seed | 1) ^ (k >> 3)) % t);
        for coeffs in [lut.interpolate_ntt(), lut.interpolate_naive()] {
            for x in (0..t).step_by(17) {
                let mut acc = 0u64;
                for &c in coeffs.iter().rev() {
                    acc = m.mul_add(acc, x, c);
                }
                prop_assert_eq!(acc, lut.get(x));
            }
        }
    }

    #[test]
    fn extraction_linear_in_ciphertext(vals in slot_values(), seed in any::<u64>()) {
        // Extracted LWE decryptions equal the SmallRlwe ring decryption at
        // every coefficient, for arbitrary ciphertext data.
        let f = fixture();
        let ev = BfvEvaluator::new(&f.ctx);
        let mut s = Sampler::from_seed(seed);
        let m = athena_fhe::encoder::encode_coeff(
            &vals.iter().map(|&v| v as i64).collect::<Vec<_>>(),
            257,
            128,
        );
        let ct = ev.encrypt_sk(&m, &f.sk, &mut s);
        let small = mod_switch_to_t(&f.ctx, &ct);
        let ring_dec = small.decrypt(f.sk.coeffs());
        let lwe_sk = rlwe_secret_as_lwe(&f.ctx, &f.sk);
        for (i, lwe) in sample_extract_all(&small).iter().enumerate().step_by(13) {
            prop_assert_eq!(lwe.decrypt(&lwe_sk), ring_dec[i]);
        }
    }

    #[test]
    fn extraction_of_trivial_is_exact(b_vals in prop::collection::vec(0u64..257, 16)) {
        let rlwe = SmallRlwe { a: vec![0; 16], b: b_vals.clone(), q: 257 };
        let sk = LweSecret::from_coeffs(vec![0; 16], 257);
        for (i, lwe) in sample_extract_all(&rlwe).iter().enumerate() {
            prop_assert_eq!(lwe.decrypt(&sk), b_vals[i]);
        }
    }

    #[test]
    fn encoder_rotation_group_structure(vals in slot_values(), k1 in 0usize..64, k2 in 0usize..64) {
        // rot(k1) ∘ rot(k2) = rot(k1 + k2) on the plaintext semantics.
        let enc = SlotEncoder::new(257, 128);
        let lhs = enc.rotate_slots(&enc.rotate_slots(&vals, k1), k2);
        let rhs = enc.rotate_slots(&vals, (k1 + k2) % 64);
        prop_assert_eq!(lhs, rhs);
        // row swap is an involution
        prop_assert_eq!(enc.swap_rows(&enc.swap_rows(&vals)), vals);
    }

    #[test]
    fn noise_budget_decreases_under_mul(vals in slot_values(), seed in any::<u64>()) {
        let f = fixture();
        let ev = BfvEvaluator::new(&f.ctx);
        let enc = f.ctx.encoder();
        let mut s = Sampler::from_seed(seed);
        let ct = ev.encrypt_sk(&enc.encode(&vals), &f.sk, &mut s);
        let fresh = ev.noise_budget(&ct, &f.sk);
        let squared = ev.mul(&ct, &ct, &f.rlk);
        let after = ev.noise_budget(&squared, &f.sk);
        prop_assert!(after < fresh, "budget must shrink: {} -> {}", fresh, after);
        prop_assert!(after > 0, "one multiplication cannot exhaust the budget");
    }
}
