//! Property-style tests of the FHE layer: homomorphism laws of BFV,
//! encoder/LUT/extraction invariants, all on random inputs.
//!
//! Originally written with `proptest`; ported to plain `#[test]`s driven by
//! the in-repo PRNG (fixed seeds, N random cases each) so the suite runs
//! with zero external dependencies.

use athena_fhe::bfv::{BfvContext, BfvEvaluator, RelinKey, SecretKey};
use athena_fhe::encoder::SlotEncoder;
use athena_fhe::extract::{mod_switch_to_t, rlwe_secret_as_lwe, sample_extract_all, SmallRlwe};
use athena_fhe::fbs::Lut;
use athena_fhe::lwe::LweSecret;
use athena_fhe::params::BfvParams;
use athena_math::modops::Modulus;
use athena_math::prng::Prng;
use athena_math::sampler::Sampler;
use std::sync::OnceLock;

const CASES: usize = 8;

/// Shared context (keygen is the slow part; the properties hold for any
/// fixed key).
struct Fixture {
    ctx: BfvContext,
    sk: SecretKey,
    rlk: RelinKey,
}

fn fixture() -> &'static Fixture {
    static FX: OnceLock<Fixture> = OnceLock::new();
    FX.get_or_init(|| {
        let ctx = BfvContext::new(BfvParams::test_small());
        let mut sampler = Sampler::from_seed(0xF1);
        let sk = SecretKey::generate(&ctx, &mut sampler);
        let rlk = RelinKey::generate(&ctx, &sk, &mut sampler);
        Fixture { ctx, sk, rlk }
    })
}

fn slot_values(rng: &mut Prng) -> Vec<u64> {
    (0..128).map(|_| rng.next_below(257)).collect()
}

#[test]
fn enc_dec_roundtrip() {
    let f = fixture();
    let ev = BfvEvaluator::new(&f.ctx);
    let mut rng = Prng::seed_from_u64(0x21);
    for _ in 0..CASES {
        let vals = slot_values(&mut rng);
        let mut s = Sampler::from_seed(rng.next_u64());
        let m = f.ctx.encoder().encode(&vals);
        let ct = ev.encrypt_sk(&m, &f.sk, &mut s);
        assert_eq!(ev.decrypt(&ct, &f.sk), m);
    }
}

#[test]
fn add_is_homomorphic() {
    let f = fixture();
    let ev = BfvEvaluator::new(&f.ctx);
    let enc = f.ctx.encoder();
    let mut rng = Prng::seed_from_u64(0x22);
    for _ in 0..CASES {
        let a = slot_values(&mut rng);
        let b = slot_values(&mut rng);
        let mut s = Sampler::from_seed(rng.next_u64());
        let ca = ev.encrypt_sk(&enc.encode(&a), &f.sk, &mut s);
        let cb = ev.encrypt_sk(&enc.encode(&b), &f.sk, &mut s);
        let got = enc.decode(&ev.decrypt(&ev.add(&ca, &cb), &f.sk));
        let want: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| (x + y) % 257).collect();
        assert_eq!(got, want);
    }
}

#[test]
fn mul_is_homomorphic() {
    let f = fixture();
    let ev = BfvEvaluator::new(&f.ctx);
    let enc = f.ctx.encoder();
    let mut rng = Prng::seed_from_u64(0x23);
    for _ in 0..CASES {
        let a = slot_values(&mut rng);
        let b = slot_values(&mut rng);
        let mut s = Sampler::from_seed(rng.next_u64());
        let ca = ev.encrypt_sk(&enc.encode(&a), &f.sk, &mut s);
        let cb = ev.encrypt_sk(&enc.encode(&b), &f.sk, &mut s);
        let got = enc.decode(&ev.decrypt(&ev.mul(&ca, &cb, &f.rlk), &f.sk));
        let want: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| x * y % 257).collect();
        assert_eq!(got, want);
    }
}

#[test]
fn lut_interpolation_is_exact_everywhere() {
    // Random LUT over t = 257: the interpolated polynomial must hit
    // every entry exactly (both interpolation paths).
    let t = 257u64;
    let m = Modulus::new(t);
    let mut rng = Prng::seed_from_u64(0x24);
    for _ in 0..CASES {
        let seed = rng.next_u64();
        let lut = Lut::from_fn(t, |k| (k.wrapping_mul(seed | 1) ^ (k >> 3)) % t);
        for coeffs in [lut.interpolate_ntt(), lut.interpolate_naive()] {
            for x in (0..t).step_by(17) {
                let mut acc = 0u64;
                for &c in coeffs.iter().rev() {
                    acc = m.mul_add(acc, x, c);
                }
                assert_eq!(acc, lut.get(x), "seed={seed} x={x}");
            }
        }
    }
}

#[test]
fn extraction_linear_in_ciphertext() {
    // Extracted LWE decryptions equal the SmallRlwe ring decryption at
    // every coefficient, for arbitrary ciphertext data.
    let f = fixture();
    let ev = BfvEvaluator::new(&f.ctx);
    let mut rng = Prng::seed_from_u64(0x25);
    for _ in 0..CASES {
        let vals = slot_values(&mut rng);
        let mut s = Sampler::from_seed(rng.next_u64());
        let m = athena_fhe::encoder::encode_coeff(
            &vals.iter().map(|&v| v as i64).collect::<Vec<_>>(),
            257,
            128,
        );
        let ct = ev.encrypt_sk(&m, &f.sk, &mut s);
        let small = mod_switch_to_t(&f.ctx, &ct);
        let ring_dec = small.decrypt(f.sk.coeffs());
        let lwe_sk = rlwe_secret_as_lwe(&f.ctx, &f.sk);
        for (i, lwe) in sample_extract_all(&small).iter().enumerate().step_by(13) {
            assert_eq!(lwe.decrypt(&lwe_sk), ring_dec[i]);
        }
    }
}

#[test]
fn extraction_of_trivial_is_exact() {
    let mut rng = Prng::seed_from_u64(0x26);
    for _ in 0..CASES {
        let b_vals: Vec<u64> = (0..16).map(|_| rng.next_below(257)).collect();
        let rlwe = SmallRlwe {
            a: vec![0; 16],
            b: b_vals.clone(),
            q: 257,
        };
        let sk = LweSecret::from_coeffs(vec![0; 16], 257);
        for (i, lwe) in sample_extract_all(&rlwe).iter().enumerate() {
            assert_eq!(lwe.decrypt(&sk), b_vals[i]);
        }
    }
}

#[test]
fn encoder_rotation_group_structure() {
    // rot(k1) ∘ rot(k2) = rot(k1 + k2) on the plaintext semantics.
    let enc = SlotEncoder::new(257, 128);
    let mut rng = Prng::seed_from_u64(0x27);
    for _ in 0..CASES * 4 {
        let vals = slot_values(&mut rng);
        let k1 = rng.next_below(64) as usize;
        let k2 = rng.next_below(64) as usize;
        let lhs = enc.rotate_slots(&enc.rotate_slots(&vals, k1), k2);
        let rhs = enc.rotate_slots(&vals, (k1 + k2) % 64);
        assert_eq!(lhs, rhs, "k1={k1} k2={k2}");
        // row swap is an involution
        assert_eq!(enc.swap_rows(&enc.swap_rows(&vals)), vals);
    }
}

#[test]
fn batched_fbs_parallel_matches_serial() {
    // fbs_apply_batch must agree with per-ciphertext fbs_apply, and must be
    // bit-identical for any worker count (the par layer reassembles chunks
    // in input order).
    use athena_fhe::fbs::{fbs_apply, fbs_apply_batch};
    use athena_math::par;
    let f = fixture();
    let ev = BfvEvaluator::new(&f.ctx);
    let enc = f.ctx.encoder();
    let lut = Lut::from_signed_fn(f.ctx.t(), |x| x.max(0));
    let mut rng = Prng::seed_from_u64(0x29);
    let mut s = Sampler::from_seed(rng.next_u64());
    let cts: Vec<_> = (0..4)
        .map(|_| ev.encrypt_sk(&enc.encode(&slot_values(&mut rng)), &f.sk, &mut s))
        .collect();

    let singles: Vec<_> = cts
        .iter()
        .map(|ct| fbs_apply(&f.ctx, ct, &lut, &f.rlk))
        .collect();
    par::set_threads(1);
    let batch_1 = fbs_apply_batch(&f.ctx, &cts, &lut, &f.rlk);
    par::set_threads(4);
    let batch_4 = fbs_apply_batch(&f.ctx, &cts, &lut, &f.rlk);
    par::set_threads(0);

    assert_eq!(batch_1.len(), cts.len());
    assert_eq!(batch_4.len(), cts.len());
    for (i, (single, stats)) in singles.iter().enumerate() {
        let want = ev.decrypt(single, &f.sk);
        assert_eq!(ev.decrypt(&batch_1[i].0, &f.sk), want, "ct {i} (1 thread)");
        assert_eq!(ev.decrypt(&batch_4[i].0, &f.sk), want, "ct {i} (4 threads)");
        assert_eq!(batch_1[i].1, *stats);
        assert_eq!(batch_4[i].1, *stats);
    }
}

#[test]
fn noise_budget_decreases_under_mul() {
    let f = fixture();
    let ev = BfvEvaluator::new(&f.ctx);
    let enc = f.ctx.encoder();
    let mut rng = Prng::seed_from_u64(0x28);
    for _ in 0..CASES {
        let vals = slot_values(&mut rng);
        let mut s = Sampler::from_seed(rng.next_u64());
        let ct = ev.encrypt_sk(&enc.encode(&vals), &f.sk, &mut s);
        let fresh = ev.noise_budget(&ct, &f.sk);
        let squared = ev.mul(&ct, &ct, &f.rlk);
        let after = ev.noise_budget(&squared, &f.sk);
        assert!(after < fresh, "budget must shrink: {fresh} -> {after}");
        assert!(after > 0, "one multiplication cannot exhaust the budget");
    }
}

/// The budget probe saturates instead of wrapping: repeated squaring
/// drives the budget monotonically down to the declared saturation value
/// `-1` (noise magnitude ≥ Q/4, past which the wrapped phase carries no
/// recoverable magnitude information), and *stays* exactly `-1` for
/// arbitrarily deeper circuits — no i64 underflow, no wrapped "recovered"
/// positive budget.
#[test]
fn noise_budget_saturates_at_minus_one_once_swamped() {
    let f = fixture();
    let ev = BfvEvaluator::new(&f.ctx);
    let enc = f.ctx.encoder();
    let mut s = Sampler::from_seed(0x5A7);
    let vals: Vec<u64> = (0..f.ctx.n() as u64).map(|i| (i * 3 + 1) % 17).collect();
    let mut ct = ev.encrypt_sk(&enc.encode(&vals), &f.sk, &mut s);
    let mut prev = ev.noise_budget(&ct, &f.sk);
    assert!(prev > 0, "fresh ciphertext must have positive budget");
    let mut exhausted_at = None;
    for depth in 1..=24 {
        ct = ev.mul(&ct, &ct, &f.rlk);
        let b = ev.noise_budget(&ct, &f.sk);
        if b >= 0 {
            assert!(
                b < prev,
                "depth {depth}: healthy budget must keep shrinking ({prev} -> {b})"
            );
        } else {
            assert_eq!(
                b, -1,
                "depth {depth}: saturation must read exactly -1, got {b}"
            );
            exhausted_at.get_or_insert(depth);
        }
        prev = b;
    }
    let first = exhausted_at.expect("test_small must exhaust within 24 squarings");
    // Two more squarings past exhaustion: still exactly -1.
    for _ in 0..2 {
        ct = ev.mul(&ct, &ct, &f.rlk);
        assert_eq!(
            ev.noise_budget(&ct, &f.sk),
            -1,
            "saturation band must be sticky"
        );
    }
    assert!(first >= 2, "budget should survive at least one squaring");
}
