//! Property-based tests of the CNN substrate: quantizer round-trips,
//! remap-LUT semantics, conv linearity, and pooling invariants.

use athena_nn::qmodel::{Activation, QLinear, QuantConfig};
use athena_nn::tensor::{ITensor, Tensor};
use proptest::prelude::*;

fn qlinear(act: Activation, in_scale: f64, w_scale: f64, out_scale: f64) -> QLinear {
    QLinear {
        weight: ITensor::from_vec(&[1, 1, 1, 1], vec![1]),
        bias: vec![0],
        stride: 1,
        padding: 0,
        is_fc: false,
        act,
        in_scale,
        w_scale,
        out_scale,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn quant_config_ranges(w in 2u32..16, a in 2u32..16) {
        let c = QuantConfig::new(w, a);
        prop_assert_eq!(c.w_max(), (1 << (w - 1)) - 1);
        prop_assert_eq!(c.a_max(), (1 << (a - 1)) - 1);
        let expect = format!("w{}a{}", w, a);
        prop_assert!(c.to_string().contains(&expect));
    }

    #[test]
    fn remap_identity_at_unit_scales(v in -1000i64..1000) {
        // With in·w = out scale, Identity remap is the identity (clamped).
        let l = qlinear(Activation::Identity, 0.5, 2.0, 1.0);
        prop_assert_eq!(l.remap(v, 10_000), v);
    }

    #[test]
    fn remap_relu_kills_negatives(v in -5000i64..0) {
        let l = qlinear(Activation::ReLU, 0.1, 0.1, 0.01);
        prop_assert_eq!(l.remap(v, 127), 0);
    }

    #[test]
    fn remap_monotone_for_monotone_activations(a in -500i64..500, b in -500i64..500) {
        for act in [Activation::Identity, Activation::ReLU, Activation::Sigmoid] {
            let l = qlinear(act, 0.03, 0.05, 0.02);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(l.remap(lo, 127) <= l.remap(hi, 127), "{:?}", act);
        }
    }

    #[test]
    fn remap_clamps_to_activation_range(v in -100_000i64..100_000, amax in 1i64..127) {
        let l = qlinear(Activation::Identity, 1.0, 1.0, 1.0);
        let r = l.remap(v, amax);
        prop_assert!(r >= -amax && r <= amax);
    }

    #[test]
    fn quantize_input_roundtrips_within_half_scale(vals in prop::collection::vec(-0.9f32..0.9, 8)) {
        use athena_nn::qmodel::{QModel, QNode, QOp};
        let model = QModel {
            nodes: vec![QNode {
                op: QOp::Linear(qlinear(Activation::Identity, 1.0, 1.0, 1.0)),
                input: 0,
                skip: None,
            }],
            input_scale: 1.0 / 63.0,
            cfg: QuantConfig::new(7, 7),
        };
        let t = Tensor::from_vec(&[8, 1, 1], vals.clone());
        let q = model.quantize_input(&t);
        for (&orig, &quant) in vals.iter().zip(q.data()) {
            let back = quant as f64 * model.input_scale;
            prop_assert!((back - orig as f64).abs() <= model.input_scale / 2.0 + 1e-9);
        }
    }

    #[test]
    fn activation_functions_are_sane(x in -8.0f64..8.0) {
        let s = Activation::Sigmoid.apply(x);
        prop_assert!(s > 0.0 && s < 1.0);
        prop_assert_eq!(Activation::ReLU.apply(x), x.max(0.0));
        prop_assert_eq!(Activation::Identity.apply(x), x);
        // GELU is between 0 and x for positive x, between x and 0 for negative
        let g = Activation::Gelu.apply(x);
        if x > 0.0 {
            prop_assert!(g <= x + 1e-9 && g >= 0.0 - 0.2);
        } else {
            prop_assert!(g >= x - 1e-9 && g <= 0.2);
        }
    }
}

mod conv_props {
    use super::*;
    use athena_nn::layers::conv2d_forward_f32;

    fn tensor(shape: &[usize], vals: &[f32]) -> Tensor {
        Tensor::from_vec(shape, vals.to_vec())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn conv_is_linear_in_input(
            a in prop::collection::vec(-2.0f32..2.0, 16),
            b in prop::collection::vec(-2.0f32..2.0, 16),
            w in prop::collection::vec(-1.0f32..1.0, 4),
        ) {
            let wt = tensor(&[1, 1, 2, 2], &w);
            let ya = conv2d_forward_f32(&tensor(&[1, 4, 4], &a), &wt, None, 1, 0);
            let yb = conv2d_forward_f32(&tensor(&[1, 4, 4], &b), &wt, None, 1, 0);
            let sum: Vec<f32> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
            let ysum = conv2d_forward_f32(&tensor(&[1, 4, 4], &sum), &wt, None, 1, 0);
            for i in 0..ysum.len() {
                prop_assert!((ysum.data()[i] - ya.data()[i] - yb.data()[i]).abs() < 1e-4);
            }
        }

        #[test]
        fn conv_with_delta_kernel_shifts(vals in prop::collection::vec(-3.0f32..3.0, 16)) {
            // Kernel = delta at (0,0) reproduces the top-left window values.
            let mut w = vec![0.0f32; 4];
            w[0] = 1.0;
            let y = conv2d_forward_f32(
                &tensor(&[1, 4, 4], &vals),
                &tensor(&[1, 1, 2, 2], &w),
                None,
                1,
                0,
            );
            for oy in 0..3 {
                for ox in 0..3 {
                    prop_assert_eq!(y.data()[oy * 3 + ox], vals[oy * 4 + ox]);
                }
            }
        }
    }
}
