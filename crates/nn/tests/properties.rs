//! Property-style tests of the CNN substrate: quantizer round-trips,
//! remap-LUT semantics, conv linearity, and pooling invariants.
//!
//! Originally written with `proptest`; ported to plain `#[test]`s driven by
//! the in-repo PRNG (fixed seeds, N random cases each) so the suite runs
//! with zero external dependencies.

use athena_math::prng::Prng;
use athena_nn::qmodel::{Activation, QLinear, QuantConfig};
use athena_nn::tensor::{ITensor, Tensor};

const CASES: usize = 128;

fn qlinear(act: Activation, in_scale: f64, w_scale: f64, out_scale: f64) -> QLinear {
    QLinear {
        weight: ITensor::from_vec(&[1, 1, 1, 1], vec![1]),
        bias: vec![0],
        stride: 1,
        padding: 0,
        is_fc: false,
        act,
        in_scale,
        w_scale,
        out_scale,
    }
}

#[test]
fn quant_config_ranges() {
    for w in 2u32..16 {
        for a in 2u32..16 {
            let c = QuantConfig::new(w, a);
            assert_eq!(c.w_max(), (1 << (w - 1)) - 1);
            assert_eq!(c.a_max(), (1 << (a - 1)) - 1);
            let expect = format!("w{}a{}", w, a);
            assert!(c.to_string().contains(&expect));
        }
    }
}

#[test]
fn remap_identity_at_unit_scales() {
    // With in·w = out scale, Identity remap is the identity (clamped).
    let mut rng = Prng::seed_from_u64(0x31);
    let l = qlinear(Activation::Identity, 0.5, 2.0, 1.0);
    for _ in 0..CASES {
        let v = rng.next_i64_in(-1000, 999);
        assert_eq!(l.remap(v, 10_000), v);
    }
}

#[test]
fn remap_relu_kills_negatives() {
    let mut rng = Prng::seed_from_u64(0x32);
    let l = qlinear(Activation::ReLU, 0.1, 0.1, 0.01);
    for _ in 0..CASES {
        let v = rng.next_i64_in(-5000, -1);
        assert_eq!(l.remap(v, 127), 0);
    }
}

#[test]
fn remap_monotone_for_monotone_activations() {
    let mut rng = Prng::seed_from_u64(0x33);
    for _ in 0..CASES {
        let a = rng.next_i64_in(-500, 499);
        let b = rng.next_i64_in(-500, 499);
        for act in [Activation::Identity, Activation::ReLU, Activation::Sigmoid] {
            let l = qlinear(act, 0.03, 0.05, 0.02);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            assert!(l.remap(lo, 127) <= l.remap(hi, 127), "{act:?}");
        }
    }
}

#[test]
fn remap_clamps_to_activation_range() {
    let mut rng = Prng::seed_from_u64(0x34);
    let l = qlinear(Activation::Identity, 1.0, 1.0, 1.0);
    for _ in 0..CASES {
        let v = rng.next_i64_in(-100_000, 99_999);
        let amax = rng.next_i64_in(1, 126);
        let r = l.remap(v, amax);
        assert!(r >= -amax && r <= amax);
    }
}

#[test]
fn quantize_input_roundtrips_within_half_scale() {
    use athena_nn::qmodel::{QModel, QNode, QOp};
    let mut rng = Prng::seed_from_u64(0x35);
    let model = QModel {
        nodes: vec![QNode {
            op: QOp::Linear(qlinear(Activation::Identity, 1.0, 1.0, 1.0)),
            input: 0,
            skip: None,
        }],
        input_scale: 1.0 / 63.0,
        cfg: QuantConfig::new(7, 7),
    };
    for _ in 0..CASES {
        let vals: Vec<f32> = (0..8)
            .map(|_| (rng.next_f64() * 1.8 - 0.9) as f32)
            .collect();
        let t = Tensor::from_vec(&[8, 1, 1], vals.clone());
        let q = model.quantize_input(&t);
        for (&orig, &quant) in vals.iter().zip(q.data()) {
            let back = quant as f64 * model.input_scale;
            assert!((back - orig as f64).abs() <= model.input_scale / 2.0 + 1e-9);
        }
    }
}

#[test]
fn activation_functions_are_sane() {
    let mut rng = Prng::seed_from_u64(0x36);
    for _ in 0..CASES {
        let x = rng.next_f64() * 16.0 - 8.0;
        let s = Activation::Sigmoid.apply(x);
        assert!(s > 0.0 && s < 1.0);
        assert_eq!(Activation::ReLU.apply(x), x.max(0.0));
        assert_eq!(Activation::Identity.apply(x), x);
        // GELU is between 0 and x for positive x, between x and 0 for negative
        let g = Activation::Gelu.apply(x);
        if x > 0.0 {
            assert!(g <= x + 1e-9 && g >= 0.0 - 0.2);
        } else {
            assert!(g >= x - 1e-9 && g <= 0.2);
        }
    }
}

mod conv_props {
    use super::*;
    use athena_nn::layers::conv2d_forward_f32;

    fn tensor(shape: &[usize], vals: &[f32]) -> Tensor {
        Tensor::from_vec(shape, vals.to_vec())
    }

    fn f32_vec(rng: &mut Prng, n: usize, lim: f32) -> Vec<f32> {
        (0..n)
            .map(|_| (rng.next_f64() as f32) * 2.0 * lim - lim)
            .collect()
    }

    #[test]
    fn conv_is_linear_in_input() {
        let mut rng = Prng::seed_from_u64(0x37);
        for _ in 0..CASES / 2 {
            let a = f32_vec(&mut rng, 16, 2.0);
            let b = f32_vec(&mut rng, 16, 2.0);
            let w = f32_vec(&mut rng, 4, 1.0);
            let wt = tensor(&[1, 1, 2, 2], &w);
            let ya = conv2d_forward_f32(&tensor(&[1, 4, 4], &a), &wt, None, 1, 0);
            let yb = conv2d_forward_f32(&tensor(&[1, 4, 4], &b), &wt, None, 1, 0);
            let sum: Vec<f32> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
            let ysum = conv2d_forward_f32(&tensor(&[1, 4, 4], &sum), &wt, None, 1, 0);
            for i in 0..ysum.len() {
                assert!((ysum.data()[i] - ya.data()[i] - yb.data()[i]).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn conv_with_delta_kernel_shifts() {
        let mut rng = Prng::seed_from_u64(0x38);
        for _ in 0..CASES / 2 {
            // Kernel = delta at (0,0) reproduces the top-left window values.
            let vals = f32_vec(&mut rng, 16, 3.0);
            let mut w = vec![0.0f32; 4];
            w[0] = 1.0;
            let y = conv2d_forward_f32(
                &tensor(&[1, 4, 4], &vals),
                &tensor(&[1, 1, 2, 2], &w),
                None,
                1,
                0,
            );
            for oy in 0..3 {
                for ox in 0..3 {
                    assert_eq!(y.data()[oy * 3 + ox], vals[oy * 4 + ox]);
                }
            }
        }
    }
}
