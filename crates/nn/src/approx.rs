//! Polynomial approximation of non-linear activations under CKKS-style
//! fixed-point arithmetic — the machinery behind Fig. 1's motivation study.
//!
//! CKKS evaluates non-linearities as truncated series; every multiplication
//! rescales by the scaling factor `Δ`, discarding low bits. [`FixedPoint`]
//! simulates exactly that: values carry `delta_bits` fractional bits and
//! every product is rounded back. Bit accuracy is measured against a 40-bit
//! ground truth, as in the figure.

/// Fixed-point simulator with `delta_bits` fractional bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedPoint {
    /// Fractional bits (the CKKS Δ).
    pub delta_bits: u32,
}

impl FixedPoint {
    /// New simulator.
    pub fn new(delta_bits: u32) -> Self {
        assert!((1..=60).contains(&delta_bits));
        Self { delta_bits }
    }

    /// Encodes a real number.
    pub fn encode(&self, x: f64) -> i128 {
        (x * (1u64 << self.delta_bits) as f64).round() as i128
    }

    /// Decodes back to a real number.
    pub fn decode(&self, v: i128) -> f64 {
        v as f64 / (1u64 << self.delta_bits) as f64
    }

    /// Fixed-point multiply with rescale (the CKKS `Rescale` after `Mult`).
    pub fn mul(&self, a: i128, b: i128) -> i128 {
        let p = a * b;
        let half = 1i128 << (self.delta_bits - 1);
        (p + if p >= 0 { half } else { -half }) >> self.delta_bits
    }

    /// Evaluates a polynomial (coefficients in real domain, Horner) under
    /// fixed-point arithmetic.
    pub fn eval_poly(&self, coeffs: &[f64], x: f64) -> f64 {
        let xe = self.encode(x);
        let mut acc = self.encode(*coeffs.last().expect("non-empty polynomial"));
        for &c in coeffs.iter().rev().skip(1) {
            acc = self.mul(acc, xe) + self.encode(c);
        }
        self.decode(acc)
    }
}

/// Chebyshev fit of `f` on `[-1, 1]` with the given polynomial degree,
/// returned as monomial coefficients (low-to-high).
pub fn chebyshev_fit(f: impl Fn(f64) -> f64, degree: usize) -> Vec<f64> {
    let n = degree + 1;
    // Chebyshev coefficients via Gauss–Chebyshev quadrature.
    let mut c = vec![0.0f64; n];
    let m = (4 * n).max(64); // quadrature points
    for (k, ck) in c.iter_mut().enumerate() {
        let mut s = 0.0;
        for j in 0..m {
            let theta = std::f64::consts::PI * (j as f64 + 0.5) / m as f64;
            s += f(theta.cos()) * (k as f64 * theta).cos();
        }
        *ck = 2.0 * s / m as f64;
    }
    c[0] /= 2.0;
    // Convert Chebyshev basis to monomials.
    // T_0 = 1, T_1 = x, T_{k+1} = 2x T_k - T_{k-1}.
    let mut mono = vec![0.0f64; n];
    let mut t_prev = vec![0.0f64; n]; // T_0
    t_prev[0] = 1.0;
    let mut t_cur = vec![0.0f64; n]; // T_1
    if n > 1 {
        t_cur[1] = 1.0;
    }
    for (k, &ck) in c.iter().enumerate() {
        let basis = if k == 0 { &t_prev } else { &t_cur };
        for (m, &b) in mono.iter_mut().zip(basis.iter()) {
            *m += ck * b;
        }
        if k >= 1 && k + 1 < n {
            // advance: T_{k+1} = 2x T_k - T_{k-1}
            let mut t_next = vec![0.0f64; n];
            for i in 0..n - 1 {
                t_next[i + 1] += 2.0 * t_cur[i];
            }
            for i in 0..n {
                t_next[i] -= t_prev[i];
            }
            t_prev = std::mem::take(&mut t_cur);
            t_cur = t_next;
        }
    }
    mono
}

/// Taylor (Maclaurin) coefficients of the logistic sigmoid up to `degree`.
/// Derived from the generating identity via the Bernoulli-style recurrence
/// on the derivatives of `σ` at 0.
pub fn sigmoid_taylor(degree: usize) -> Vec<f64> {
    // σ(x) = Σ a_k x^k. Use the ODE σ' = σ(1−σ):
    // with σ = Σ a_k x^k, σ' = Σ (k+1)a_{k+1} x^k and σ² by convolution.
    let n = degree + 1;
    let mut a = vec![0.0f64; n];
    a[0] = 0.5;
    for k in 0..n - 1 {
        // (k+1) a_{k+1} = a_k − (σ²)_k
        let mut sq = 0.0;
        for j in 0..=k {
            sq += a[j] * a[k - j];
        }
        a[k + 1] = (a[k] - sq) / (k + 1) as f64;
    }
    a
}

/// Activation targets of Fig. 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApproxTarget {
    /// ReLU (non-analytic: Chebyshev only is meaningful).
    Relu,
    /// Sigmoid.
    Sigmoid,
}

impl ApproxTarget {
    /// The exact function.
    pub fn exact(&self, x: f64) -> f64 {
        match self {
            ApproxTarget::Relu => x.max(0.0),
            ApproxTarget::Sigmoid => 1.0 / (1.0 + (-x).exp()),
        }
    }
}

/// Approximation families of Fig. 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApproxKind {
    /// Truncated Taylor series (Maclaurin).
    Taylor,
    /// Chebyshev fit on `[-1, 1]`.
    Chebyshev,
}

/// Builds the approximation polynomial.
pub fn approx_poly(target: ApproxTarget, kind: ApproxKind, degree: usize) -> Vec<f64> {
    match (target, kind) {
        (ApproxTarget::Sigmoid, ApproxKind::Taylor) => sigmoid_taylor(degree),
        (t, _) => chebyshev_fit(|x| t.exact(x), degree),
    }
}

/// Mean bit-accuracy of an approximation evaluated under fixed-point `Δ`,
/// against the 40-bit ground truth, over a uniform grid on `[-1, 1]`
/// (Fig. 1's Y axis).
pub fn bit_accuracy(
    target: ApproxTarget,
    kind: ApproxKind,
    degree: usize,
    delta_bits: u32,
    samples: usize,
) -> f64 {
    let poly = approx_poly(target, kind, degree);
    let fp = FixedPoint::new(delta_bits);
    let mut total_err = 0.0f64;
    for i in 0..samples {
        let x = -1.0 + 2.0 * (i as f64 + 0.5) / samples as f64;
        let approx = fp.eval_poly(&poly, x);
        let exact = target.exact(x);
        total_err += (approx - exact).abs();
    }
    let mean_err = (total_err / samples as f64).max(2.0f64.powi(-40));
    (-mean_err.log2()).clamp(0.0, 40.0)
}

/// Runs a folded float model with every ReLU replaced by a fixed-point
/// polynomial approximation (the CKKS execution model) — Fig. 1's
/// model-level probe. Pre-activations are normalized into `[-1, 1]` by
/// their per-tensor max (the most favorable scaling for the
/// approximation), evaluated through the polynomial at the given `Δ`, and
/// rescaled.
pub fn folded_forward_poly_relu(
    model: &crate::quant::FoldedModel,
    x: &crate::tensor::Tensor,
    degree: usize,
    fp: FixedPoint,
) -> crate::tensor::Tensor {
    use crate::qmodel::Activation;
    use crate::quant::FOp;
    use crate::tensor::Tensor;
    let poly = chebyshev_fit(|v| v.max(0.0), degree);
    let mut values: Vec<Tensor> = vec![x.clone()];
    for node in &model.nodes {
        let input = &values[node.input];
        let out = match &node.op {
            FOp::Linear(l) => {
                let mut acc = if l.is_fc {
                    let flat = input.reshape(&[input.len(), 1, 1]);
                    crate::layers::conv2d_forward_f32(&flat, &l.weight, Some(&l.bias), 1, 0)
                } else {
                    crate::layers::conv2d_forward_f32(
                        input,
                        &l.weight,
                        Some(&l.bias),
                        l.stride,
                        l.padding,
                    )
                };
                if let Some(skip_idx) = node.skip {
                    let skip = values[skip_idx].clone();
                    for (a, &s) in acc.data_mut().iter_mut().zip(skip.data()) {
                        *a += s;
                    }
                }
                match l.act {
                    Activation::ReLU => {
                        let bound = acc.abs_max().max(1e-6) as f64;
                        Tensor::from_vec(
                            acc.shape(),
                            acc.data()
                                .iter()
                                .map(|&v| {
                                    let z = v as f64 / bound;
                                    (fp.eval_poly(&poly, z) * bound) as f32
                                })
                                .collect(),
                        )
                    }
                    act => Tensor::from_vec(
                        acc.shape(),
                        acc.data()
                            .iter()
                            .map(|&v| act.apply(v as f64) as f32)
                            .collect(),
                    ),
                }
            }
            FOp::MaxPool { k } => crate::quant::pool_public(input, *k, true),
            FOp::AvgPool { k } => crate::quant::pool_public(input, *k, false),
        };
        values.push(out);
    }
    values.pop().expect("output")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_point_roundtrip_and_mul() {
        let fp = FixedPoint::new(30);
        let a = fp.encode(1.5);
        let b = fp.encode(-2.25);
        assert!((fp.decode(fp.mul(a, b)) + 3.375).abs() < 1e-6);
    }

    #[test]
    fn sigmoid_taylor_matches_known_series() {
        // σ(x) ≈ 1/2 + x/4 − x³/48 + x⁵/480 ...
        let a = sigmoid_taylor(5);
        assert!((a[0] - 0.5).abs() < 1e-12);
        assert!((a[1] - 0.25).abs() < 1e-12);
        assert!(a[2].abs() < 1e-12);
        assert!((a[3] + 1.0 / 48.0).abs() < 1e-12);
        assert!((a[5] - 1.0 / 480.0).abs() < 1e-12);
    }

    #[test]
    fn chebyshev_converges_on_sigmoid() {
        let lo = bit_accuracy(ApproxTarget::Sigmoid, ApproxKind::Chebyshev, 3, 40, 256);
        let hi = bit_accuracy(ApproxTarget::Sigmoid, ApproxKind::Chebyshev, 15, 40, 256);
        assert!(
            hi > lo + 4.0,
            "degree 15 ({hi} bits) should beat degree 3 ({lo} bits)"
        );
        assert!(hi > 15.0, "degree-15 Chebyshev sigmoid reaches {hi} bits");
    }

    #[test]
    fn relu_plateaus_below_sigmoid() {
        // ReLU is non-smooth: Chebyshev converges only ~O(1/deg), so at
        // equal degree its bit accuracy is far worse (the Fig. 1 gap).
        let relu = bit_accuracy(ApproxTarget::Relu, ApproxKind::Chebyshev, 31, 40, 256);
        let sig = bit_accuracy(ApproxTarget::Sigmoid, ApproxKind::Chebyshev, 31, 40, 256);
        assert!(sig > relu + 5.0, "sigmoid {sig} vs relu {relu}");
    }

    #[test]
    fn small_delta_caps_accuracy() {
        // Δ = 25 caps accuracy well below Δ = 40 at high degree (Fig. 1's
        // red-line separation and the Δ=25 collapse).
        let d25 = bit_accuracy(ApproxTarget::Sigmoid, ApproxKind::Chebyshev, 31, 25, 256);
        let d40 = bit_accuracy(ApproxTarget::Sigmoid, ApproxKind::Chebyshev, 31, 40, 256);
        assert!(d40 > d25, "Δ=40 ({d40}) must beat Δ=25 ({d25})");
    }
}
