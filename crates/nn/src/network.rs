//! Networks: a sequential container over an enum of layers (so quantization
//! can pattern-match the trained structure), residual blocks for the
//! ResNets, and the softmax cross-entropy loss used for training.

use crate::layers::{AvgPool2d, Conv2d, Layer, Linear, MaxPool2d, ReLU, ScaleBias};
use crate::tensor::Tensor;

/// One network node.
///
/// Networks hold at most a few dozen nodes, so the size spread between
/// e.g. `ReLU` and `Residual` is irrelevant — no need to box the big
/// variants.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum NetLayer {
    /// Convolution.
    Conv(Conv2d),
    /// Fully connected.
    Linear(Linear),
    /// ReLU activation.
    ReLU(ReLU),
    /// Average pooling.
    AvgPool(AvgPool2d),
    /// Max pooling.
    MaxPool(MaxPool2d),
    /// Per-channel scale/bias (foldable batch-norm stand-in).
    ScaleBias(ScaleBias),
    /// Residual block (ResNet basic block).
    Residual(ResidualBlock),
}

impl NetLayer {
    fn as_layer(&mut self) -> &mut dyn Layer {
        match self {
            NetLayer::Conv(l) => l,
            NetLayer::Linear(l) => l,
            NetLayer::ReLU(l) => l,
            NetLayer::AvgPool(l) => l,
            NetLayer::MaxPool(l) => l,
            NetLayer::ScaleBias(l) => l,
            NetLayer::Residual(l) => l,
        }
    }
}

/// A ResNet basic block: `relu(sb2(conv2(relu(sb1(conv1(x))))) + skip(x))`
/// where `skip` is identity or a strided 1×1 convolution.
#[derive(Debug)]
pub struct ResidualBlock {
    /// First 3×3 convolution.
    pub conv1: Conv2d,
    /// Scale/bias after conv1.
    pub sb1: ScaleBias,
    relu1: ReLU,
    /// Second 3×3 convolution.
    pub conv2: Conv2d,
    /// Scale/bias after conv2.
    pub sb2: ScaleBias,
    /// Optional 1×1 downsample on the skip path.
    pub downsample: Option<Conv2d>,
    relu_out: ReLU,
}

impl ResidualBlock {
    /// Builds a block `c_in → c_out` with the given first-conv stride.
    pub fn new(
        c_in: usize,
        c_out: usize,
        stride: usize,
        sampler: &mut athena_math::sampler::Sampler,
    ) -> Self {
        let downsample = if stride != 1 || c_in != c_out {
            Some(Conv2d::new(c_in, c_out, 1, stride, 0, sampler))
        } else {
            None
        };
        // Damp the residual branch at init (the "zero-init last BN gamma"
        // trick): without real batch normalization, full-gain branches make
        // deep ResNets diverge under SGD.
        let mut sb2 = ScaleBias::new(c_out);
        for g in sb2.gamma.data_mut() {
            *g = 0.2;
        }
        Self {
            conv1: Conv2d::new(c_in, c_out, 3, stride, 1, sampler),
            sb1: ScaleBias::new(c_out),
            relu1: ReLU::new(),
            conv2: Conv2d::new(c_out, c_out, 3, 1, 1, sampler),
            sb2,
            downsample,
            relu_out: ReLU::new(),
        }
    }
}

impl Layer for ResidualBlock {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        let main = self.conv1.forward(x);
        let main = self.sb1.forward(&main);
        let main = self.relu1.forward(&main);
        let main = self.conv2.forward(&main);
        let main = self.sb2.forward(&main);
        let skip = match &mut self.downsample {
            Some(d) => d.forward(x),
            None => x.clone(),
        };
        let sum = Tensor::from_vec(
            main.shape(),
            main.data()
                .iter()
                .zip(skip.data())
                .map(|(&a, &b)| a + b)
                .collect(),
        );
        self.relu_out.forward(&sum)
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let gsum = self.relu_out.backward(grad);
        // main path
        let g = self.sb2.backward(&gsum);
        let g = self.conv2.backward(&g);
        let g = self.relu1.backward(&g);
        let g = self.sb1.backward(&g);
        let g_main = self.conv1.backward(&g);
        // skip path
        let g_skip = match &mut self.downsample {
            Some(d) => d.backward(&gsum),
            None => gsum,
        };
        Tensor::from_vec(
            g_main.shape(),
            g_main
                .data()
                .iter()
                .zip(g_skip.data())
                .map(|(&a, &b)| a + b)
                .collect(),
        )
    }

    fn update(&mut self, lr: f32) {
        self.conv1.update(lr);
        self.sb1.update(lr);
        self.conv2.update(lr);
        self.sb2.update(lr);
        if let Some(d) = &mut self.downsample {
            d.update(lr);
        }
    }

    fn name(&self) -> &'static str {
        "residual"
    }
}

/// A sequential network.
#[derive(Debug, Default)]
pub struct Network {
    /// The layers in order.
    pub layers: Vec<NetLayer>,
}

impl Network {
    /// An empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a layer (builder style).
    pub fn push(&mut self, l: NetLayer) -> &mut Self {
        self.layers.push(l);
        self
    }

    /// Forward pass through all layers.
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        let mut cur = x.clone();
        for l in &mut self.layers {
            cur = l.as_layer().forward(&cur);
        }
        cur
    }

    /// Backward pass (after a forward).
    pub fn backward(&mut self, grad: &Tensor) {
        let mut g = grad.clone();
        for l in self.layers.iter_mut().rev() {
            g = l.as_layer().backward(&g);
        }
    }

    /// SGD update on all layers.
    pub fn update(&mut self, lr: f32) {
        for l in &mut self.layers {
            l.as_layer().update(lr);
        }
    }

    /// Predicted class of an input.
    pub fn predict(&mut self, x: &Tensor) -> usize {
        self.forward(x).argmax()
    }
}

/// Softmax cross-entropy: returns `(loss, dL/dlogits)`.
pub fn softmax_cross_entropy(logits: &Tensor, label: usize) -> (f32, Tensor) {
    let max = logits
        .data()
        .iter()
        .fold(f32::NEG_INFINITY, |m, &v| m.max(v));
    let exps: Vec<f32> = logits.data().iter().map(|&v| (v - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    let probs: Vec<f32> = exps.iter().map(|&e| e / sum).collect();
    let loss = -probs[label].max(1e-12).ln();
    let grad: Vec<f32> = probs
        .iter()
        .enumerate()
        .map(|(i, &p)| p - if i == label { 1.0 } else { 0.0 })
        .collect();
    (loss, Tensor::from_vec(logits.shape(), grad))
}

/// Softmax probabilities of a logit vector.
pub fn softmax(logits: &[f32]) -> Vec<f32> {
    let max = logits.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
    let exps: Vec<f32> = logits.iter().map(|&v| (v - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.iter().map(|&e| e / sum).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use athena_math::sampler::Sampler;

    #[test]
    fn softmax_ce_gradient_is_probs_minus_onehot() {
        let logits = Tensor::from_vec(&[3], vec![1.0, 2.0, 0.5]);
        let (loss, grad) = softmax_cross_entropy(&logits, 1);
        assert!(loss > 0.0);
        let s: f32 = grad.data().iter().sum();
        assert!(s.abs() < 1e-5, "gradient sums to zero");
        assert!(grad.data()[1] < 0.0);
    }

    #[test]
    fn residual_block_shapes() {
        let mut s = Sampler::from_seed(3);
        let mut blk = ResidualBlock::new(16, 32, 2, &mut s);
        let x = Tensor::zeros(&[16, 8, 8]);
        let y = blk.forward(&x);
        assert_eq!(y.shape(), &[32, 4, 4]);
        let g = blk.backward(&Tensor::zeros(&[32, 4, 4]));
        assert_eq!(g.shape(), &[16, 8, 8]);
    }

    #[test]
    fn residual_identity_block_gradcheck() {
        let mut s = Sampler::from_seed(4);
        let mut blk = ResidualBlock::new(2, 2, 1, &mut s);
        let x = Tensor::from_vec(
            &[2, 3, 3],
            (0..18).map(|i| (i as f32 * 0.4).sin() + 0.21).collect(),
        );
        let y = blk.forward(&x);
        let ones = Tensor::from_vec(y.shape(), vec![1.0; y.len()]);
        let gx = blk.backward(&ones);
        let eps = 1e-3;
        for i in 0..4 {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let yp: f32 = blk.forward(&xp).data().iter().sum();
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let ym: f32 = blk.forward(&xm).data().iter().sum();
            let num = (yp - ym) / (2.0 * eps);
            let diff = (num - gx.data()[i]).abs();
            assert!(diff < 5e-2, "grad {i}: numeric {num} vs {}", gx.data()[i]);
        }
    }

    #[test]
    fn tiny_network_learns_xor_like_task() {
        // 2-class task on 1x2x2 inputs: class = sign of sum.
        let mut s = Sampler::from_seed(11);
        let mut net = Network::new();
        net.push(NetLayer::Conv(Conv2d::new(1, 4, 2, 1, 0, &mut s)));
        net.push(NetLayer::ReLU(ReLU::new()));
        net.push(NetLayer::Linear(Linear::new(4, 2, &mut s)));
        let inputs: Vec<(Tensor, usize)> = (0..64)
            .map(|i| {
                let vals: Vec<f32> = (0..4)
                    .map(|j| ((i * 7 + j * 13) % 17) as f32 / 8.5 - 1.0)
                    .collect();
                let label = usize::from(vals.iter().sum::<f32>() > 0.0);
                (Tensor::from_vec(&[1, 2, 2], vals), label)
            })
            .collect();
        for _ in 0..60 {
            for (x, y) in &inputs {
                let logits = net.forward(x);
                let (_, g) = softmax_cross_entropy(&logits, *y);
                net.backward(&g);
                net.update(0.05);
            }
        }
        let correct = inputs.iter().filter(|(x, y)| net.predict(x) == *y).count();
        assert!(correct >= 58, "accuracy {correct}/64");
    }
}
