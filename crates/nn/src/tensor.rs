//! Minimal dense tensors for the CNN substrate: `f32` for training-time
//! float models, `i64` for the quantized integer pipeline that mirrors what
//! runs under FHE.

/// A dense row-major `f32` tensor.
///
/// # Examples
///
/// ```
/// use athena_nn::tensor::Tensor;
/// let t = Tensor::zeros(&[3, 4, 4]);
/// assert_eq!(t.len(), 48);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// An all-zero tensor.
    pub fn zeros(shape: &[usize]) -> Self {
        let len = shape.iter().product();
        Self {
            shape: shape.to_vec(),
            data: vec![0.0; len],
        }
    }

    /// Wraps data with a shape.
    ///
    /// # Panics
    ///
    /// Panics if the element count does not match the shape.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Self {
        assert_eq!(
            shape.iter().product::<usize>(),
            data.len(),
            "shape/data mismatch"
        );
        Self {
            shape: shape.to_vec(),
            data,
        }
    }

    /// The shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable data view.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable data view.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Reinterprets with a new shape of equal element count.
    ///
    /// # Panics
    ///
    /// Panics if the element count differs.
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        Tensor::from_vec(shape, self.data.clone())
    }

    /// Maximum absolute value (0 for empty tensors).
    pub fn abs_max(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// Index of the maximum element (NaNs compare low).
    pub fn argmax(&self) -> usize {
        self.data
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Less))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

/// A dense row-major `i64` tensor (the quantized/ FHE-mirror domain).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ITensor {
    shape: Vec<usize>,
    data: Vec<i64>,
}

impl ITensor {
    /// An all-zero tensor.
    pub fn zeros(shape: &[usize]) -> Self {
        let len = shape.iter().product();
        Self {
            shape: shape.to_vec(),
            data: vec![0; len],
        }
    }

    /// Wraps data with a shape.
    ///
    /// # Panics
    ///
    /// Panics if the element count does not match the shape.
    pub fn from_vec(shape: &[usize], data: Vec<i64>) -> Self {
        assert_eq!(
            shape.iter().product::<usize>(),
            data.len(),
            "shape/data mismatch"
        );
        Self {
            shape: shape.to_vec(),
            data,
        }
    }

    /// The shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable data view.
    pub fn data(&self) -> &[i64] {
        &self.data
    }

    /// Mutable data view.
    pub fn data_mut(&mut self) -> &mut [i64] {
        &mut self.data
    }

    /// Maximum absolute value.
    pub fn abs_max(&self) -> i64 {
        self.data.iter().map(|x| x.abs()).max().unwrap_or(0)
    }

    /// Index of the maximum element.
    pub fn argmax(&self) -> usize {
        self.data
            .iter()
            .enumerate()
            .max_by_key(|&(_, &v)| v)
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_views() {
        let t = Tensor::from_vec(&[2, 3], vec![1.0, -2.0, 3.0, 4.0, -5.0, 6.0]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.abs_max(), 6.0);
        assert_eq!(t.argmax(), 5);
        let r = t.reshape(&[3, 2]);
        assert_eq!(r.shape(), &[3, 2]);
        assert_eq!(r.data(), t.data());
    }

    #[test]
    fn itensor_basics() {
        let t = ITensor::from_vec(&[4], vec![-9, 2, 7, -1]);
        assert_eq!(t.abs_max(), 9);
        assert_eq!(t.argmax(), 2);
        assert_eq!(ITensor::zeros(&[2, 2]).data(), &[0, 0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "shape/data mismatch")]
    fn shape_mismatch_panics() {
        let _ = Tensor::from_vec(&[2, 2], vec![1.0]);
    }
}
