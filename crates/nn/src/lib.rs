//! # athena-nn
//!
//! The quantized-CNN substrate of the Athena reproduction: tensors, float
//! layers with backprop, the four benchmark architectures (MNIST-CNN,
//! LeNet-5, ResNet-20/56), synthetic datasets, an SGD trainer,
//! post-training quantization, and the integer [`qmodel::QModel`] whose
//! semantics the FHE pipeline mirrors exactly.
//!
//! ## Example
//!
//! ```
//! use athena_nn::models::ModelKind;
//! use athena_nn::tensor::Tensor;
//! use athena_math::sampler::Sampler;
//!
//! let mut sampler = Sampler::from_seed(1);
//! let mut net = ModelKind::LeNet.build(&mut sampler);
//! let logits = net.forward(&Tensor::zeros(&[1, 28, 28]));
//! assert_eq!(logits.len(), 10);
//! ```

pub mod approx;
pub mod data;
pub mod layers;
pub mod models;
pub mod network;
pub mod qmodel;
pub mod quant;
pub mod tensor;
pub mod train;

pub use models::{ModelKind, ModelSpec};
pub use qmodel::{Activation, QModel, QuantConfig};
pub use tensor::{ITensor, Tensor};
