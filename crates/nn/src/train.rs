//! A small SGD trainer producing the `plain-G` float models that
//! quantization-aware evaluation (Table 5) starts from.

use crate::data::Dataset;
use crate::network::{softmax_cross_entropy, Network};
use athena_math::sampler::Sampler;

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Learning rate.
    pub lr: f32,
    /// Epochs over the training set.
    pub epochs: usize,
    /// Mini-batch size (gradients accumulate over the batch).
    pub batch: usize,
    /// Multiplicative LR decay applied each epoch.
    pub lr_decay: f32,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            lr: 0.02,
            epochs: 3,
            batch: 8,
            lr_decay: 0.7,
        }
    }
}

/// Trains the network in place; returns the average loss of each epoch.
pub fn train(
    net: &mut Network,
    data: &Dataset,
    cfg: &TrainConfig,
    sampler: &mut Sampler,
) -> Vec<f32> {
    let n = data.len();
    let mut order: Vec<usize> = (0..n).collect();
    let mut lr = cfg.lr;
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    for _ in 0..cfg.epochs {
        // Fisher–Yates shuffle.
        for i in (1..n).rev() {
            let j = sampler.uniform_mod(i as u64 + 1) as usize;
            order.swap(i, j);
        }
        let mut total = 0.0;
        for (count, &idx) in order.iter().enumerate() {
            let logits = net.forward(&data.images[idx]);
            let (loss, grad) = softmax_cross_entropy(&logits, data.labels[idx]);
            total += loss;
            net.backward(&grad);
            if (count + 1) % cfg.batch == 0 {
                net.update(lr / cfg.batch as f32);
            }
        }
        net.update(lr / cfg.batch as f32); // flush remainder
        lr *= cfg.lr_decay;
        epoch_losses.push(total / n as f32);
    }
    epoch_losses
}

/// Top-1 accuracy of the float network on a dataset.
pub fn evaluate(net: &mut Network, data: &Dataset) -> f64 {
    let correct = data
        .images
        .iter()
        .zip(&data.labels)
        .filter(|(x, &y)| net.predict(x) == y)
        .count();
    correct as f64 / data.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{SyntheticConfig, SyntheticSource};
    use crate::models::ModelKind;

    #[test]
    fn mnist_cnn_learns_synthetic_task() {
        let src = SyntheticSource::new(SyntheticConfig::mnist_like(), 42);
        let train_set = src.generate(300, 1);
        let test_set = src.generate(100, 2);
        let mut s = Sampler::from_seed(7);
        let mut net = ModelKind::Mnist.build(&mut s);
        let losses = train(
            &mut net,
            &train_set,
            &TrainConfig {
                epochs: 3,
                ..TrainConfig::default()
            },
            &mut s,
        );
        assert!(
            losses.last().unwrap() < &losses[0],
            "loss should decrease: {losses:?}"
        );
        let acc = evaluate(&mut net, &test_set);
        assert!(acc > 0.8, "test accuracy {acc}");
    }
}
