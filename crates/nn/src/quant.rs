//! Post-training quantization: folds scale/bias layers into convolutions,
//! extracts the dataflow graph from a trained [`Network`], calibrates
//! activation ranges on sample data, and emits the integer [`QModel`] that
//! the Athena pipeline executes under FHE.

use crate::layers::conv2d_forward_f32;
use crate::network::{NetLayer, Network};
use crate::qmodel::{Activation, QLinear, QModel, QNode, QOp, QuantConfig};
use crate::tensor::{ITensor, Tensor};

/// Float version of a linear node (weights already folded).
#[derive(Debug, Clone)]
pub struct FLinear {
    /// Folded weights `[C_out, C_in, K, K]` (FC as `[Out, In, 1, 1]`).
    pub weight: Tensor,
    /// Folded bias.
    pub bias: Vec<f32>,
    /// Stride.
    pub stride: usize,
    /// Padding.
    pub padding: usize,
    /// FC flag.
    pub is_fc: bool,
    /// Fused activation.
    pub act: Activation,
}

/// Float op node.
#[derive(Debug, Clone)]
pub enum FOp {
    /// Linear with fused activation.
    Linear(FLinear),
    /// Max pooling.
    MaxPool {
        /// Kernel.
        k: usize,
    },
    /// Average pooling.
    AvgPool {
        /// Kernel.
        k: usize,
    },
}

/// Float node with dataflow.
#[derive(Debug, Clone)]
pub struct FNode {
    /// Operation.
    pub op: FOp,
    /// Input value index.
    pub input: usize,
    /// Residual input value index (added before the activation).
    pub skip: Option<usize>,
}

/// The folded float model — structurally identical to the [`QModel`] that
/// quantization produces from it.
#[derive(Debug, Clone, Default)]
pub struct FoldedModel {
    /// Nodes in topological order.
    pub nodes: Vec<FNode>,
}

fn fold_scale_bias(
    weight: &Tensor,
    bias: &[f32],
    gamma: &[f32],
    beta: &[f32],
) -> (Tensor, Vec<f32>) {
    let c_out = weight.shape()[0];
    let per = weight.len() / c_out;
    let mut w = weight.clone();
    for (co, &g) in gamma.iter().enumerate().take(c_out) {
        for v in &mut w.data_mut()[co * per..(co + 1) * per] {
            *v *= g;
        }
    }
    let b: Vec<f32> = bias
        .iter()
        .enumerate()
        .map(|(co, &bb)| bb * gamma[co] + beta[co])
        .collect();
    (w, b)
}

/// Extracts the folded dataflow graph from a trained network.
///
/// # Panics
///
/// Panics on layer patterns the quantizer does not recognize (all four
/// benchmark models are covered).
pub fn fold_network(net: &Network) -> FoldedModel {
    let mut nodes: Vec<FNode> = Vec::new();
    let mut cur_value = 0usize; // current dataflow head
    let push = |nodes: &mut Vec<FNode>, node: FNode| -> usize {
        nodes.push(node);
        nodes.len() // value index of the new output
    };
    let mut i = 0;
    let layers = &net.layers;
    while i < layers.len() {
        match &layers[i] {
            NetLayer::Conv(c) => {
                let (mut w, mut b) = (c.weight.clone(), c.bias.data().to_vec());
                let mut j = i + 1;
                if let Some(NetLayer::ScaleBias(sb)) = layers.get(j) {
                    let (wf, bf) = fold_scale_bias(&w, &b, sb.gamma.data(), sb.beta.data());
                    w = wf;
                    b = bf;
                    j += 1;
                }
                let act = if let Some(NetLayer::ReLU(_)) = layers.get(j) {
                    j += 1;
                    Activation::ReLU
                } else {
                    Activation::Identity
                };
                cur_value = push(
                    &mut nodes,
                    FNode {
                        op: FOp::Linear(FLinear {
                            weight: w,
                            bias: b,
                            stride: c.stride,
                            padding: c.padding,
                            is_fc: false,
                            act,
                        }),
                        input: cur_value,
                        skip: None,
                    },
                );
                i = j;
            }
            NetLayer::Linear(l) => {
                let (d_out, d_in) = (l.weight.shape()[0], l.weight.shape()[1]);
                let w = Tensor::from_vec(&[d_out, d_in, 1, 1], l.weight.data().to_vec());
                let mut j = i + 1;
                let act = if let Some(NetLayer::ReLU(_)) = layers.get(j) {
                    j += 1;
                    Activation::ReLU
                } else {
                    Activation::Identity
                };
                cur_value = push(
                    &mut nodes,
                    FNode {
                        op: FOp::Linear(FLinear {
                            weight: w,
                            bias: l.bias.data().to_vec(),
                            stride: 1,
                            padding: 0,
                            is_fc: true,
                            act,
                        }),
                        input: cur_value,
                        skip: None,
                    },
                );
                i = j;
            }
            NetLayer::MaxPool(p) => {
                cur_value = push(
                    &mut nodes,
                    FNode {
                        op: FOp::MaxPool { k: p.k },
                        input: cur_value,
                        skip: None,
                    },
                );
                i += 1;
            }
            NetLayer::AvgPool(p) => {
                cur_value = push(
                    &mut nodes,
                    FNode {
                        op: FOp::AvgPool { k: p.k },
                        input: cur_value,
                        skip: None,
                    },
                );
                i += 1;
            }
            NetLayer::Residual(blk) => {
                let block_in = cur_value;
                // Optional downsample on the skip path (Identity act).
                let skip_value = if let Some(d) = &blk.downsample {
                    push(
                        &mut nodes,
                        FNode {
                            op: FOp::Linear(FLinear {
                                weight: d.weight.clone(),
                                bias: d.bias.data().to_vec(),
                                stride: d.stride,
                                padding: d.padding,
                                is_fc: false,
                                act: Activation::Identity,
                            }),
                            input: block_in,
                            skip: None,
                        },
                    )
                } else {
                    block_in
                };
                // conv1 + sb1 + relu
                let (w1, b1) = fold_scale_bias(
                    &blk.conv1.weight,
                    blk.conv1.bias.data(),
                    blk.sb1.gamma.data(),
                    blk.sb1.beta.data(),
                );
                let v1 = push(
                    &mut nodes,
                    FNode {
                        op: FOp::Linear(FLinear {
                            weight: w1,
                            bias: b1,
                            stride: blk.conv1.stride,
                            padding: blk.conv1.padding,
                            is_fc: false,
                            act: Activation::ReLU,
                        }),
                        input: block_in,
                        skip: None,
                    },
                );
                // conv2 + sb2, add skip, relu
                let (w2, b2) = fold_scale_bias(
                    &blk.conv2.weight,
                    blk.conv2.bias.data(),
                    blk.sb2.gamma.data(),
                    blk.sb2.beta.data(),
                );
                cur_value = push(
                    &mut nodes,
                    FNode {
                        op: FOp::Linear(FLinear {
                            weight: w2,
                            bias: b2,
                            stride: blk.conv2.stride,
                            padding: blk.conv2.padding,
                            is_fc: false,
                            act: Activation::ReLU,
                        }),
                        input: v1,
                        skip: Some(skip_value),
                    },
                );
                i += 1;
            }
            NetLayer::ReLU(_) | NetLayer::ScaleBias(_) => {
                panic!(
                    "unconsumed {:?} at position {i}: unsupported layer pattern",
                    layers[i]
                );
            }
        }
    }
    FoldedModel { nodes }
}

impl FoldedModel {
    /// Float inference through the folded graph; returns all intermediate
    /// values (index 0 is the input).
    pub fn forward_values(&self, x: &Tensor) -> Vec<Tensor> {
        let mut values = vec![x.clone()];
        for node in &self.nodes {
            let input = &values[node.input];
            let out = match &node.op {
                FOp::Linear(l) => {
                    let mut acc = if l.is_fc {
                        let flat = input.reshape(&[input.len(), 1, 1]);
                        conv2d_forward_f32(&flat, &l.weight, Some(&l.bias), 1, 0)
                    } else {
                        conv2d_forward_f32(input, &l.weight, Some(&l.bias), l.stride, l.padding)
                    };
                    if let Some(skip_idx) = node.skip {
                        let skip = &values[skip_idx];
                        for (a, &s) in acc.data_mut().iter_mut().zip(skip.data()) {
                            *a += s;
                        }
                    }
                    Tensor::from_vec(
                        acc.shape(),
                        acc.data()
                            .iter()
                            .map(|&v| l.act.apply(v as f64) as f32)
                            .collect(),
                    )
                }
                FOp::MaxPool { k } => pool(input, *k, true),
                FOp::AvgPool { k } => pool(input, *k, false),
            };
            values.push(out);
        }
        values
    }

    /// Float logits.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        self.forward_values(x).pop().expect("at least the input")
    }
}

/// Pooling helper shared with the approximation probe.
pub fn pool_public(x: &Tensor, k: usize, is_max: bool) -> Tensor {
    pool(x, k, is_max)
}

fn pool(x: &Tensor, k: usize, is_max: bool) -> Tensor {
    let (c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2]);
    let (oh, ow) = (h / k, w / k);
    let mut out = Tensor::zeros(&[c, oh, ow]);
    for ci in 0..c {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut m = f32::NEG_INFINITY;
                let mut s = 0.0;
                for ky in 0..k {
                    for kx in 0..k {
                        let v = x.data()[(ci * h + oy * k + ky) * w + ox * k + kx];
                        m = m.max(v);
                        s += v;
                    }
                }
                out.data_mut()[(ci * oh + oy) * ow + ox] =
                    if is_max { m } else { s / (k * k) as f32 };
            }
        }
    }
    out
}

/// Calibration result: per-value absolute maxima.
#[derive(Debug, Clone)]
pub struct Calibration {
    /// `amax[v]` over the calibration set.
    pub amax: Vec<f32>,
}

/// Runs the folded model over calibration images, recording per-value
/// absolute maxima.
pub fn calibrate(model: &FoldedModel, images: &[Tensor]) -> Calibration {
    assert!(!images.is_empty(), "calibration needs at least one image");
    let mut amax = vec![0.0f32; model.nodes.len() + 1];
    for img in images {
        let values = model.forward_values(img);
        for (a, v) in amax.iter_mut().zip(&values) {
            *a = a.max(v.abs_max());
        }
    }
    // Guard against dead values.
    for a in &mut amax {
        if *a == 0.0 {
            *a = 1.0;
        }
    }
    Calibration { amax }
}

/// Quantizes a folded model given calibration data.
pub fn quantize_folded(model: &FoldedModel, cal: &Calibration, cfg: QuantConfig) -> QModel {
    let a_max = cfg.a_max() as f64;
    let w_max = cfg.w_max() as f64;
    // Value scales: input and linear outputs from calibration; pools
    // preserve their input scale.
    let mut scale = vec![0.0f64; model.nodes.len() + 1];
    scale[0] = cal.amax[0] as f64 / a_max;
    for (i, node) in model.nodes.iter().enumerate() {
        scale[i + 1] = match node.op {
            FOp::Linear(_) => cal.amax[i + 1] as f64 / a_max,
            FOp::MaxPool { .. } | FOp::AvgPool { .. } => scale[node.input],
        };
    }
    let nodes = model
        .nodes
        .iter()
        .enumerate()
        .map(|(i, node)| {
            let in_scale = scale[node.input];
            match &node.op {
                FOp::Linear(l) => {
                    let w_amax = l.weight.abs_max().max(1e-12) as f64;
                    let w_scale = w_amax / w_max;
                    let wq = ITensor::from_vec(
                        l.weight.shape(),
                        l.weight
                            .data()
                            .iter()
                            .map(|&v| {
                                ((v as f64 / w_scale).round() as i64)
                                    .clamp(-(w_max as i64), w_max as i64)
                            })
                            .collect(),
                    );
                    let acc_scale = in_scale * w_scale;
                    let bq: Vec<i64> = l
                        .bias
                        .iter()
                        .map(|&b| (b as f64 / acc_scale).round() as i64)
                        .collect();
                    let skip = node.skip.map(|sv| {
                        let mult = (scale[sv] / acc_scale).round() as i64;
                        (sv, mult.max(1))
                    });
                    QNode {
                        op: QOp::Linear(QLinear {
                            weight: wq,
                            bias: bq,
                            stride: l.stride,
                            padding: l.padding,
                            is_fc: l.is_fc,
                            act: l.act,
                            in_scale,
                            w_scale,
                            out_scale: scale[i + 1],
                        }),
                        input: node.input,
                        skip,
                    }
                }
                FOp::MaxPool { k } => QNode {
                    op: QOp::MaxPool { k: *k },
                    input: node.input,
                    skip: None,
                },
                FOp::AvgPool { k } => QNode {
                    op: QOp::AvgPool { k: *k },
                    input: node.input,
                    skip: None,
                },
            }
        })
        .collect();
    QModel {
        nodes,
        input_scale: scale[0],
        cfg,
    }
}

/// One-shot quantization: fold, calibrate, quantize.
pub fn quantize(net: &Network, calibration_images: &[Tensor], cfg: QuantConfig) -> QModel {
    let folded = fold_network(net);
    let cal = calibrate(&folded, calibration_images);
    quantize_folded(&folded, &cal, cfg)
}

/// Enforces the §3.3 modulus-headroom constraint: every accumulator must
/// stay within `±t/2` or the FBS LUT wraps. Layers whose calibrated max
/// |MAC| exceeds `margin·t/2` have their integer weights re-quantized at
/// half resolution (weights, biases, and skip multipliers halve; the weight
/// scale doubles; the remap LUT follows automatically through the scales)
/// until the bound holds. Returns the number of halvings applied.
///
/// This is the knob the paper turns from the other side: it *chose*
/// `t = 65537` so its trained models fit (Fig. 4); for a model that runs
/// hotter, per-layer precision yields instead.
pub fn enforce_mac_headroom(qm: &mut QModel, images: &[Tensor], t: u64, margin: f64) -> usize {
    use crate::qmodel::QStats;
    let bound = (t as f64 / 2.0 * margin) as i64;
    let mut adjustments = 0;
    for _round in 0..16 {
        // Measure.
        let mut stats = QStats::default();
        for img in images {
            let q = qm.quantize_input(img);
            let mut st = QStats::default();
            let _ = qm.forward_with_noise(&q, None, &mut st);
            stats.merge(&st);
        }
        // Adjust offenders.
        let mut changed = false;
        for (ni, node) in qm.nodes.iter_mut().enumerate() {
            let max = stats.max_acc.get(ni).copied().unwrap_or(0);
            if max <= bound {
                continue;
            }
            if let QOp::Linear(l) = &mut node.op {
                for w in l.weight.data_mut() {
                    *w = (*w + w.signum()) / 2;
                }
                for b in l.bias.iter_mut() {
                    *b = (*b + b.signum()) / 2;
                }
                l.w_scale *= 2.0;
                if let Some((_, mult)) = &mut node.skip {
                    *mult = (*mult / 2).max(1);
                }
                adjustments += 1;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    adjustments
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{SyntheticConfig, SyntheticSource};
    use crate::models::ModelKind;
    use crate::train::{train, TrainConfig};
    use athena_math::sampler::Sampler;

    #[test]
    fn folding_preserves_float_semantics() {
        let mut s = Sampler::from_seed(61);
        let mut net = ModelKind::ResNet20.build(&mut s);
        // perturb scale/bias so folding is non-trivial
        for l in &mut net.layers {
            if let NetLayer::Residual(b) = l {
                for (i, g) in b.sb1.gamma.data_mut().iter_mut().enumerate() {
                    *g = 1.0 + 0.1 * (i as f32 % 3.0);
                }
                for (i, bb) in b.sb1.beta.data_mut().iter_mut().enumerate() {
                    *bb = 0.05 * (i as f32 % 5.0);
                }
            }
        }
        let folded = fold_network(&net);
        let x = Tensor::from_vec(
            &[3, 32, 32],
            (0..3 * 32 * 32)
                .map(|i| ((i as f32) * 0.013).sin())
                .collect(),
        );
        let want = net.forward(&x);
        let got = folded.forward(&x);
        for (a, b) in want.data().iter().zip(got.data()) {
            assert!((a - b).abs() < 1e-3, "folded mismatch: {a} vs {b}");
        }
    }

    #[test]
    fn folded_structure_of_resnet20() {
        let mut s = Sampler::from_seed(62);
        let net = ModelKind::ResNet20.build(&mut s);
        let folded = fold_network(&net);
        // stem + 9 blocks × 2 convs + 2 downsample convs + pool + fc = 23
        assert_eq!(folded.nodes.len(), 23);
        let skips = folded.nodes.iter().filter(|n| n.skip.is_some()).count();
        assert_eq!(skips, 9, "one skip per residual block");
    }

    #[test]
    fn quantized_model_tracks_float_model() {
        // Train a small model, quantize at w7a7, and require the quantized
        // predictions to agree with the float predictions almost always.
        let src = SyntheticSource::new(SyntheticConfig::mnist_like(), 5);
        let train_set = src.generate(240, 11);
        let test_set = src.generate(80, 12);
        let mut s = Sampler::from_seed(63);
        let mut net = ModelKind::Mnist.build(&mut s);
        train(&mut net, &train_set, &TrainConfig::default(), &mut s);
        let calib: Vec<Tensor> = train_set.images.iter().take(32).cloned().collect();
        let qm = quantize(&net, &calib, QuantConfig::w7a7());
        let mut agree = 0;
        for img in &test_set.images {
            let fp = net.predict(img);
            let qp = qm.predict(&qm.quantize_input(img));
            if fp == qp {
                agree += 1;
            }
        }
        assert!(agree >= 76, "quantized/float agreement {agree}/80");
    }

    #[test]
    fn mac_headroom_enforcement_fits_and_preserves_predictions() {
        let src = SyntheticSource::new(SyntheticConfig::mnist_like(), 5);
        let train_set = src.generate(200, 31);
        let mut s = Sampler::from_seed(66);
        let mut net = ModelKind::Mnist.build(&mut s);
        train(&mut net, &train_set, &TrainConfig::default(), &mut s);
        let calib: Vec<Tensor> = train_set.images.iter().take(24).cloned().collect();
        let mut qm = quantize(&net, &calib, QuantConfig::w7a7());
        let before: Vec<usize> = train_set.images[..40]
            .iter()
            .map(|i| qm.predict(&qm.quantize_input(i)))
            .collect();
        // Enforce against an artificially small modulus to force halvings.
        let adjustments = enforce_mac_headroom(&mut qm, &calib, 16384, 0.9);
        assert!(adjustments > 0, "small modulus must force adjustments");
        // Now the accumulators fit.
        use crate::qmodel::QStats;
        let mut stats = QStats::default();
        for img in &calib {
            let q = qm.quantize_input(img);
            let mut st = QStats::default();
            let _ = qm.forward_with_noise(&q, None, &mut st);
            stats.merge(&st);
        }
        assert!(
            stats.max_acc.iter().all(|&m| m <= 16384 / 2),
            "{:?}",
            stats.max_acc
        );
        // Predictions mostly survive the precision loss.
        let after: Vec<usize> = train_set.images[..40]
            .iter()
            .map(|i| qm.predict(&qm.quantize_input(i)))
            .collect();
        let agree = before.iter().zip(&after).filter(|(a, b)| a == b).count();
        assert!(agree >= 30, "agreement {agree}/40 after headroom fitting");
    }

    #[test]
    fn lower_precision_degrades_gracefully() {
        let src = SyntheticSource::new(SyntheticConfig::mnist_like(), 5);
        let train_set = src.generate(160, 21);
        let mut s = Sampler::from_seed(64);
        let mut net = ModelKind::Mnist.build(&mut s);
        train(&mut net, &train_set, &TrainConfig::default(), &mut s);
        let calib: Vec<Tensor> = train_set.images.iter().take(16).cloned().collect();
        let imgs: Vec<Tensor> = train_set.images.iter().take(60).cloned().collect();
        let mut accs = Vec::new();
        for (w, a) in [(4u32, 4u32), (7, 7), (8, 8)] {
            let qm = quantize(&net, &calib, QuantConfig::new(w, a));
            let agree = imgs
                .iter()
                .filter(|img| qm.predict(&qm.quantize_input(img)) == net.predict(img))
                .count();
            accs.push(agree);
        }
        assert!(accs[1] >= accs[0], "w7a7 {} vs w4a4 {}", accs[1], accs[0]);
        assert!(
            accs[2] >= accs[1].saturating_sub(2),
            "monotone-ish: {accs:?}"
        );
    }
}
