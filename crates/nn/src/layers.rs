//! Float CNN layers with forward and backward passes — enough of a deep
//! learning substrate to train the paper's four benchmark models (MNIST-CNN,
//! LeNet-5, ResNet-20, ResNet-56) from scratch on synthetic data, producing
//! the `plain-G` models that quantization (`plain-Q`) and encrypted
//! inference are measured against.
//!
//! Layers are stateful: `forward` caches whatever `backward` needs;
//! `backward` accumulates parameter gradients; `update` applies SGD and
//! clears them. Single-sample processing keeps the code simple (mini-batches
//! are emulated by accumulating gradients across calls before `update`).

use crate::tensor::Tensor;
use athena_math::sampler::Sampler;

/// A trainable layer.
pub trait Layer: std::fmt::Debug {
    /// Forward pass (caches activations for backward).
    fn forward(&mut self, x: &Tensor) -> Tensor;
    /// Backward pass: consumes `dL/dout`, returns `dL/din`, accumulates
    /// parameter gradients.
    fn backward(&mut self, grad: &Tensor) -> Tensor;
    /// SGD step with learning rate `lr`; zeroes accumulated gradients.
    fn update(&mut self, _lr: f32) {}
    /// Layer name for debugging/UI.
    fn name(&self) -> &'static str;
}

fn conv_out_dim(h: usize, k: usize, stride: usize, pad: usize) -> usize {
    (h + 2 * pad - k) / stride + 1
}

/// Per-element gradient clip applied at update time — cheap insurance
/// against the exploding gradients deep unnormalized ResNets produce.
const GRAD_CLIP: f32 = 5.0;

fn sgd_step(params: &mut [f32], grads: &mut [f32], lr: f32) {
    for (w, g) in params.iter_mut().zip(grads.iter_mut()) {
        let gc = if g.is_finite() {
            g.clamp(-GRAD_CLIP, GRAD_CLIP)
        } else {
            0.0
        };
        *w -= lr * gc;
        *g = 0.0;
    }
}

/// 2D convolution over `[C, H, W]` tensors.
#[derive(Debug)]
pub struct Conv2d {
    /// `[C_out, C_in, K, K]`.
    pub weight: Tensor,
    /// `[C_out]`.
    pub bias: Tensor,
    /// Stride.
    pub stride: usize,
    /// Symmetric zero padding.
    pub padding: usize,
    cache_x: Option<Tensor>,
    gw: Tensor,
    gb: Tensor,
}

impl Conv2d {
    /// He-initialized convolution.
    pub fn new(
        c_in: usize,
        c_out: usize,
        k: usize,
        stride: usize,
        padding: usize,
        sampler: &mut Sampler,
    ) -> Self {
        let fan_in = (c_in * k * k) as f32;
        let std = (2.0 / fan_in).sqrt();
        let w: Vec<f32> = (0..c_out * c_in * k * k)
            .map(|_| {
                // Box–Muller via sampler uniform bits
                let u1 = (sampler.next_u64() as f64 / u64::MAX as f64).max(1e-12);
                let u2 = sampler.next_u64() as f64 / u64::MAX as f64;
                ((-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()) as f32 * std
            })
            .collect();
        Self {
            weight: Tensor::from_vec(&[c_out, c_in, k, k], w),
            bias: Tensor::zeros(&[c_out]),
            stride,
            padding,
            cache_x: None,
            gw: Tensor::zeros(&[c_out, c_in, k, k]),
            gb: Tensor::zeros(&[c_out]),
        }
    }

    /// Kernel spatial size.
    pub fn kernel(&self) -> usize {
        self.weight.shape()[2]
    }

    /// Output shape for an input shape.
    pub fn out_shape(&self, in_shape: &[usize]) -> Vec<usize> {
        let (c_out, k) = (self.weight.shape()[0], self.kernel());
        vec![
            c_out,
            conv_out_dim(in_shape[1], k, self.stride, self.padding),
            conv_out_dim(in_shape[2], k, self.stride, self.padding),
        ]
    }
}

/// Shared convolution arithmetic (also used by the quantized path with i64).
pub fn conv2d_forward_f32(
    x: &Tensor,
    w: &Tensor,
    b: Option<&[f32]>,
    stride: usize,
    padding: usize,
) -> Tensor {
    let (c_in, h, wd) = (x.shape()[0], x.shape()[1], x.shape()[2]);
    let (c_out, k) = (w.shape()[0], w.shape()[2]);
    assert_eq!(w.shape()[1], c_in, "channel mismatch");
    let oh = conv_out_dim(h, k, stride, padding);
    let ow = conv_out_dim(wd, k, stride, padding);
    let mut out = Tensor::zeros(&[c_out, oh, ow]);
    let xd = x.data();
    let wdta = w.data();
    let od = out.data_mut();
    // axpy ordering: the innermost loop runs contiguously over output x at
    // stride 1 (autovectorizes); strided layers use the scalar update.
    // Padding is handled by clamping the valid output range per (ky, kx)
    // instead of branching per element.
    for co in 0..c_out {
        if let Some(bb) = b {
            od[co * oh * ow..(co + 1) * oh * ow].fill(bb[co]);
        }
        for ci in 0..c_in {
            for ky in 0..k {
                for kx in 0..k {
                    let wv = wdta[((co * c_in + ci) * k + ky) * k + kx];
                    if wv == 0.0 {
                        continue;
                    }
                    for oy in 0..oh {
                        let iy = (oy * stride + ky) as isize - padding as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        let xrow =
                            &xd[(ci * h + iy as usize) * wd..(ci * h + iy as usize + 1) * wd];
                        let orow = &mut od[(co * oh + oy) * ow..(co * oh + oy + 1) * ow];
                        if stride == 1 {
                            // valid ox range: 0 <= ox + kx - padding < wd
                            let lo = padding.saturating_sub(kx);
                            let hi = (wd + padding - kx).min(ow);
                            let shift = kx as isize - padding as isize;
                            for (ox, o) in orow.iter_mut().enumerate().take(hi).skip(lo) {
                                *o += wv * xrow[(ox as isize + shift) as usize];
                            }
                        } else {
                            for (ox, o) in orow.iter_mut().enumerate() {
                                let ix = (ox * stride + kx) as isize - padding as isize;
                                if ix >= 0 && ix < wd as isize {
                                    *o += wv * xrow[ix as usize];
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

impl Layer for Conv2d {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        self.cache_x = Some(x.clone());
        conv2d_forward_f32(
            x,
            &self.weight,
            Some(self.bias.data()),
            self.stride,
            self.padding,
        )
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let x = self.cache_x.as_ref().expect("forward before backward");
        let (c_in, h, wd) = (x.shape()[0], x.shape()[1], x.shape()[2]);
        let (c_out, k) = (self.weight.shape()[0], self.kernel());
        let (oh, ow) = (grad.shape()[1], grad.shape()[2]);
        let mut gx = Tensor::zeros(x.shape());
        let gd = grad.data();
        let xd = x.data();
        let wdta = self.weight.data();
        {
            // Same axpy restructuring as the forward pass: for each weight
            // tap, a fused row-dot (for dL/dw) and row-axpy (for dL/dx).
            let gwd = self.gw.data_mut();
            let gxd = gx.data_mut();
            let (stride, padding) = (self.stride, self.padding);
            for co in 0..c_out {
                for ci in 0..c_in {
                    for ky in 0..k {
                        for kx in 0..k {
                            let wi = ((co * c_in + ci) * k + ky) * k + kx;
                            let wv = wdta[wi];
                            let mut wacc = 0.0f32;
                            for oy in 0..oh {
                                let iy = (oy * stride + ky) as isize - padding as isize;
                                if iy < 0 || iy >= h as isize {
                                    continue;
                                }
                                let grow = &gd[(co * oh + oy) * ow..(co * oh + oy + 1) * ow];
                                let base = (ci * h + iy as usize) * wd;
                                if stride == 1 {
                                    let lo = padding.saturating_sub(kx);
                                    let hi = (wd + padding - kx).min(ow);
                                    let shift = kx as isize - padding as isize;
                                    for (ox, &g) in grow.iter().enumerate().take(hi).skip(lo) {
                                        let xi = base + (ox as isize + shift) as usize;
                                        wacc += g * xd[xi];
                                        gxd[xi] += g * wv;
                                    }
                                } else {
                                    for (ox, &g) in grow.iter().enumerate() {
                                        let ix = (ox * stride + kx) as isize - padding as isize;
                                        if ix >= 0 && ix < wd as isize {
                                            let xi = base + ix as usize;
                                            wacc += g * xd[xi];
                                            gxd[xi] += g * wv;
                                        }
                                    }
                                }
                            }
                            gwd[wi] += wacc;
                        }
                    }
                }
            }
        }
        {
            let gbd = self.gb.data_mut();
            for co in 0..c_out {
                let mut s = 0.0;
                for oy in 0..oh {
                    for ox in 0..ow {
                        s += gd[(co * oh + oy) * ow + ox];
                    }
                }
                gbd[co] += s;
            }
        }
        gx
    }

    fn update(&mut self, lr: f32) {
        sgd_step(self.weight.data_mut(), self.gw.data_mut(), lr);
        sgd_step(self.bias.data_mut(), self.gb.data_mut(), lr);
    }

    fn name(&self) -> &'static str {
        "conv2d"
    }
}

/// Fully connected layer over flattened inputs.
#[derive(Debug)]
pub struct Linear {
    /// `[Out, In]`.
    pub weight: Tensor,
    /// `[Out]`.
    pub bias: Tensor,
    cache_x: Option<Tensor>,
    cache_in_shape: Vec<usize>,
    gw: Tensor,
    gb: Tensor,
}

impl Linear {
    /// He-initialized linear layer.
    pub fn new(d_in: usize, d_out: usize, sampler: &mut Sampler) -> Self {
        let std = (2.0 / d_in as f32).sqrt();
        let w: Vec<f32> = (0..d_in * d_out)
            .map(|_| {
                let u1 = (sampler.next_u64() as f64 / u64::MAX as f64).max(1e-12);
                let u2 = sampler.next_u64() as f64 / u64::MAX as f64;
                ((-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()) as f32 * std
            })
            .collect();
        Self {
            weight: Tensor::from_vec(&[d_out, d_in], w),
            bias: Tensor::zeros(&[d_out]),
            cache_x: None,
            cache_in_shape: Vec::new(),
            gw: Tensor::zeros(&[d_out, d_in]),
            gb: Tensor::zeros(&[d_out]),
        }
    }
}

impl Layer for Linear {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        self.cache_in_shape = x.shape().to_vec();
        let x = x.reshape(&[x.len()]);
        let (d_out, d_in) = (self.weight.shape()[0], self.weight.shape()[1]);
        assert_eq!(x.len(), d_in, "linear input size mismatch");
        let mut out = Tensor::zeros(&[d_out]);
        for o in 0..d_out {
            let mut acc = self.bias.data()[o];
            let row = &self.weight.data()[o * d_in..(o + 1) * d_in];
            for (wi, xi) in row.iter().zip(x.data()) {
                acc += wi * xi;
            }
            out.data_mut()[o] = acc;
        }
        self.cache_x = Some(x);
        out
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let x = self.cache_x.as_ref().expect("forward before backward");
        let (d_out, d_in) = (self.weight.shape()[0], self.weight.shape()[1]);
        let mut gx = Tensor::zeros(&[d_in]);
        for o in 0..d_out {
            let g = grad.data()[o];
            self.gb.data_mut()[o] += g;
            let row = &self.weight.data()[o * d_in..(o + 1) * d_in];
            let grow = &mut self.gw.data_mut()[o * d_in..(o + 1) * d_in];
            for i in 0..d_in {
                grow[i] += g * x.data()[i];
                gx.data_mut()[i] += g * row[i];
            }
        }
        gx.reshape(&self.cache_in_shape)
    }

    fn update(&mut self, lr: f32) {
        sgd_step(self.weight.data_mut(), self.gw.data_mut(), lr);
        sgd_step(self.bias.data_mut(), self.gb.data_mut(), lr);
    }

    fn name(&self) -> &'static str {
        "linear"
    }
}

/// ReLU activation.
#[derive(Debug, Default)]
pub struct ReLU {
    mask: Vec<bool>,
}

impl ReLU {
    /// New ReLU.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for ReLU {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        self.mask = x.data().iter().map(|&v| v > 0.0).collect();
        Tensor::from_vec(x.shape(), x.data().iter().map(|&v| v.max(0.0)).collect())
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        Tensor::from_vec(
            grad.shape(),
            grad.data()
                .iter()
                .zip(&self.mask)
                .map(|(&g, &m)| if m { g } else { 0.0 })
                .collect(),
        )
    }

    fn name(&self) -> &'static str {
        "relu"
    }
}

/// Average pooling with square kernel (stride = kernel).
#[derive(Debug)]
pub struct AvgPool2d {
    /// Kernel (and stride).
    pub k: usize,
    in_shape: Vec<usize>,
}

impl AvgPool2d {
    /// New average pool.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            in_shape: Vec::new(),
        }
    }
}

impl Layer for AvgPool2d {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        let (c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2]);
        self.in_shape = x.shape().to_vec();
        let (oh, ow) = (h / self.k, w / self.k);
        let mut out = Tensor::zeros(&[c, oh, ow]);
        for ci in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut s = 0.0;
                    for ky in 0..self.k {
                        for kx in 0..self.k {
                            s += x.data()[(ci * h + oy * self.k + ky) * w + ox * self.k + kx];
                        }
                    }
                    out.data_mut()[(ci * oh + oy) * ow + ox] = s / (self.k * self.k) as f32;
                }
            }
        }
        out
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let (c, h, w) = (self.in_shape[0], self.in_shape[1], self.in_shape[2]);
        let (oh, ow) = (grad.shape()[1], grad.shape()[2]);
        let mut gx = Tensor::zeros(&self.in_shape);
        let inv = 1.0 / (self.k * self.k) as f32;
        for ci in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let g = grad.data()[(ci * oh + oy) * ow + ox] * inv;
                    for ky in 0..self.k {
                        for kx in 0..self.k {
                            gx.data_mut()[(ci * h + oy * self.k + ky) * w + ox * self.k + kx] += g;
                        }
                    }
                }
            }
        }
        gx
    }

    fn name(&self) -> &'static str {
        "avgpool"
    }
}

/// Max pooling with square kernel (stride = kernel).
#[derive(Debug)]
pub struct MaxPool2d {
    /// Kernel (and stride).
    pub k: usize,
    in_shape: Vec<usize>,
    argmax: Vec<usize>,
}

impl MaxPool2d {
    /// New max pool.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            in_shape: Vec::new(),
            argmax: Vec::new(),
        }
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        let (c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2]);
        self.in_shape = x.shape().to_vec();
        let (oh, ow) = (h / self.k, w / self.k);
        let mut out = Tensor::zeros(&[c, oh, ow]);
        self.argmax = vec![0; c * oh * ow];
        for ci in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_i = 0;
                    for ky in 0..self.k {
                        for kx in 0..self.k {
                            let i = (ci * h + oy * self.k + ky) * w + ox * self.k + kx;
                            if x.data()[i] > best {
                                best = x.data()[i];
                                best_i = i;
                            }
                        }
                    }
                    let o = (ci * oh + oy) * ow + ox;
                    out.data_mut()[o] = best;
                    self.argmax[o] = best_i;
                }
            }
        }
        out
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let mut gx = Tensor::zeros(&self.in_shape);
        for (o, &i) in self.argmax.iter().enumerate() {
            gx.data_mut()[i] += grad.data()[o];
        }
        gx
    }

    fn name(&self) -> &'static str {
        "maxpool"
    }
}

/// Per-channel scale and bias (a trainable, foldable stand-in for frozen
/// batch normalization in the ResNets).
#[derive(Debug)]
pub struct ScaleBias {
    /// `[C]` multiplicative.
    pub gamma: Tensor,
    /// `[C]` additive.
    pub beta: Tensor,
    cache_x: Option<Tensor>,
    gg: Tensor,
    gb: Tensor,
}

impl ScaleBias {
    /// Identity-initialized scale/bias over `c` channels.
    pub fn new(c: usize) -> Self {
        Self {
            gamma: Tensor::from_vec(&[c], vec![1.0; c]),
            beta: Tensor::zeros(&[c]),
            cache_x: None,
            gg: Tensor::zeros(&[c]),
            gb: Tensor::zeros(&[c]),
        }
    }
}

impl Layer for ScaleBias {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        self.cache_x = Some(x.clone());
        let (c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2]);
        let mut out = x.clone();
        for ci in 0..c {
            let g = self.gamma.data()[ci];
            let b = self.beta.data()[ci];
            for v in &mut out.data_mut()[ci * h * w..(ci + 1) * h * w] {
                *v = *v * g + b;
            }
        }
        out
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let x = self.cache_x.as_ref().expect("forward before backward");
        let (c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2]);
        let mut gx = Tensor::zeros(x.shape());
        for ci in 0..c {
            let g = self.gamma.data()[ci];
            let mut sg = 0.0;
            let mut sb = 0.0;
            for i in ci * h * w..(ci + 1) * h * w {
                sg += grad.data()[i] * x.data()[i];
                sb += grad.data()[i];
                gx.data_mut()[i] = grad.data()[i] * g;
            }
            self.gg.data_mut()[ci] += sg;
            self.gb.data_mut()[ci] += sb;
        }
        gx
    }

    fn update(&mut self, lr: f32) {
        sgd_step(self.gamma.data_mut(), self.gg.data_mut(), lr);
        sgd_step(self.beta.data_mut(), self.gb.data_mut(), lr);
    }

    fn name(&self) -> &'static str {
        "scalebias"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_diff_check(layer: &mut dyn Layer, x: &Tensor, eps: f32, tol: f32) {
        // loss = sum(forward(x)); analytic dL/dx vs numeric.
        let y = layer.forward(x);
        let ones = Tensor::from_vec(y.shape(), vec![1.0; y.len()]);
        let gx = layer.backward(&ones);
        for i in 0..x.len().min(8) {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let yp: f32 = layer.forward(&xp).data().iter().sum();
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let ym: f32 = layer.forward(&xm).data().iter().sum();
            let num = (yp - ym) / (2.0 * eps);
            assert!(
                (num - gx.data()[i]).abs() < tol,
                "grad mismatch at {i}: numeric {num}, analytic {}",
                gx.data()[i]
            );
        }
    }

    #[test]
    fn conv_gradient_check() {
        let mut s = Sampler::from_seed(5);
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, &mut s);
        let x = Tensor::from_vec(
            &[2, 4, 4],
            (0..32).map(|i| (i as f32 * 0.37).sin()).collect(),
        );
        finite_diff_check(&mut conv, &x, 1e-3, 1e-2);
    }

    #[test]
    fn conv_stride_and_shape() {
        let mut s = Sampler::from_seed(6);
        let conv = Conv2d::new(3, 8, 3, 2, 1, &mut s);
        assert_eq!(conv.out_shape(&[3, 32, 32]), vec![8, 16, 16]);
        let conv = Conv2d::new(16, 32, 1, 2, 0, &mut s);
        assert_eq!(conv.out_shape(&[16, 32, 32]), vec![32, 16, 16]);
    }

    #[test]
    fn linear_gradient_check() {
        let mut s = Sampler::from_seed(7);
        let mut lin = Linear::new(6, 4, &mut s);
        let x = Tensor::from_vec(&[6], (0..6).map(|i| i as f32 * 0.3 - 1.0).collect());
        finite_diff_check(&mut lin, &x, 1e-3, 1e-2);
    }

    #[test]
    fn relu_forward_backward() {
        let mut r = ReLU::new();
        let x = Tensor::from_vec(&[4], vec![-1.0, 2.0, -3.0, 4.0]);
        let y = r.forward(&x);
        assert_eq!(y.data(), &[0.0, 2.0, 0.0, 4.0]);
        let g = r.backward(&Tensor::from_vec(&[4], vec![1.0; 4]));
        assert_eq!(g.data(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn pooling_shapes_and_values() {
        let x = Tensor::from_vec(
            &[1, 4, 4],
            vec![
                1.0, 2.0, 3.0, 4.0, //
                5.0, 6.0, 7.0, 8.0, //
                9.0, 10.0, 11.0, 12.0, //
                13.0, 14.0, 15.0, 16.0,
            ],
        );
        let mut avg = AvgPool2d::new(2);
        let a = avg.forward(&x);
        assert_eq!(a.data(), &[3.5, 5.5, 11.5, 13.5]);
        let mut mx = MaxPool2d::new(2);
        let m = mx.forward(&x);
        assert_eq!(m.data(), &[6.0, 8.0, 14.0, 16.0]);
        // max backward routes to argmax
        let g = mx.backward(&Tensor::from_vec(&[1, 2, 2], vec![1.0; 4]));
        assert_eq!(g.data()[5], 1.0);
        assert_eq!(g.data()[0], 0.0);
    }

    #[test]
    fn scalebias_gradcheck_and_identity() {
        let mut sb = ScaleBias::new(2);
        let x = Tensor::from_vec(&[2, 2, 2], (0..8).map(|i| i as f32 - 4.0).collect());
        assert_eq!(sb.forward(&x), x); // identity init
        finite_diff_check(&mut sb, &x, 1e-3, 1e-2);
    }

    #[test]
    fn conv_training_reduces_loss() {
        // Tiny regression: train conv+relu to match a target map.
        let mut s = Sampler::from_seed(8);
        let mut conv = Conv2d::new(1, 1, 3, 1, 1, &mut s);
        let x = Tensor::from_vec(
            &[1, 4, 4],
            (0..16).map(|i| (i as f32 / 8.0) - 1.0).collect(),
        );
        let target: Vec<f32> = x.data().iter().map(|&v| 2.0 * v + 0.5).collect();
        let mut first_loss = 0.0;
        let mut last_loss = 0.0;
        for it in 0..200 {
            let y = conv.forward(&x);
            let diff: Vec<f32> = y.data().iter().zip(&target).map(|(&a, &b)| a - b).collect();
            let loss: f32 = diff.iter().map(|d| d * d).sum::<f32>() / 16.0;
            if it == 0 {
                first_loss = loss;
            }
            last_loss = loss;
            let grad = Tensor::from_vec(&[1, 4, 4], diff.iter().map(|d| 2.0 * d / 16.0).collect());
            conv.backward(&grad);
            conv.update(0.05);
        }
        assert!(
            last_loss < first_loss * 0.05,
            "loss {first_loss} -> {last_loss}"
        );
    }
}
