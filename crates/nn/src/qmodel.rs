//! Quantized models: the integer-exact computation that Athena executes
//! under FHE, plus its plaintext reference implementation ("plain-Q" in
//! Table 5).
//!
//! Semantics mirror the framework exactly: each linear layer is an integer
//! MAC into a wide accumulator (the BFV coefficient domain), optionally with
//! a scale-aligned residual addition, followed by a **fused
//! remap+activation LUT** `v ↦ clamp(round(Act(v·s_in·s_w)/s_out))` — the
//! same LUT FBS evaluates homomorphically. Pooling is either integer max
//! (max-tree of LUTs under FHE) or a sum followed by a divide LUT.

use crate::models::{ConvShape, ModelSpec, NonLinear, SpecLayer};
use crate::tensor::{ITensor, Tensor};

/// Quantization precision (the paper's `wXaY` notation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuantConfig {
    /// Weight bits (signed).
    pub w_bits: u32,
    /// Activation bits (signed).
    pub a_bits: u32,
}

impl QuantConfig {
    /// The paper's primary mode.
    pub fn w7a7() -> Self {
        Self {
            w_bits: 7,
            a_bits: 7,
        }
    }

    /// The paper's secondary mode.
    pub fn w6a7() -> Self {
        Self {
            w_bits: 6,
            a_bits: 7,
        }
    }

    /// Arbitrary symmetric mode.
    pub fn new(w_bits: u32, a_bits: u32) -> Self {
        assert!((2..=16).contains(&w_bits) && (2..=16).contains(&a_bits));
        Self { w_bits, a_bits }
    }

    /// Largest representable weight magnitude.
    pub fn w_max(&self) -> i64 {
        (1 << (self.w_bits - 1)) - 1
    }

    /// Largest representable activation magnitude.
    pub fn a_max(&self) -> i64 {
        (1 << (self.a_bits - 1)) - 1
    }
}

impl std::fmt::Display for QuantConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "w{}a{}", self.w_bits, self.a_bits)
    }
}

/// Non-linearity fused into the remap LUT.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// No non-linearity (remap only, or raw logits).
    Identity,
    /// max(0, x).
    ReLU,
    /// Logistic sigmoid.
    Sigmoid,
    /// Gaussian error linear unit (tanh approximation).
    Gelu,
}

impl Activation {
    /// Applies the activation in the real domain.
    pub fn apply(&self, x: f64) -> f64 {
        match self {
            Activation::Identity => x,
            Activation::ReLU => x.max(0.0),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Gelu => {
                0.5 * x
                    * (1.0
                        + ((2.0 / std::f64::consts::PI).sqrt() * (x + 0.044715 * x * x * x)).tanh())
            }
        }
    }
}

/// A quantized linear (conv or FC) node.
#[derive(Debug, Clone)]
pub struct QLinear {
    /// Integer weights: `[C_out, C_in, K, K]` (FC uses `K = 1`, spatial 1).
    pub weight: ITensor,
    /// Bias in accumulator scale.
    pub bias: Vec<i64>,
    /// Stride.
    pub stride: usize,
    /// Padding.
    pub padding: usize,
    /// Whether this is a fully connected layer (input flattened).
    pub is_fc: bool,
    /// Fused activation.
    pub act: Activation,
    /// Scale of the input integers.
    pub in_scale: f64,
    /// Scale of the integer weights.
    pub w_scale: f64,
    /// Scale of the output integers (after remap).
    pub out_scale: f64,
}

impl QLinear {
    /// The remap LUT this layer needs: `v ↦ clamp(round(Act(v·s)/s_out))`
    /// on centered inputs, where `s = in_scale·w_scale`.
    pub fn remap(&self, v: i64, a_max: i64) -> i64 {
        let real = v as f64 * self.in_scale * self.w_scale;
        let out = self.act.apply(real) / self.out_scale;
        (out.round() as i64).clamp(-a_max, a_max)
    }
}

/// One operation node.
#[derive(Debug, Clone)]
pub enum QOp {
    /// Convolution / FC with fused remap LUT.
    Linear(QLinear),
    /// Integer max pooling.
    MaxPool {
        /// Kernel (= stride).
        k: usize,
    },
    /// Sum pooling followed by a divide LUT.
    AvgPool {
        /// Kernel (= stride).
        k: usize,
    },
}

/// A node plus its dataflow: input value index and optional residual input
/// (value index + integer alignment multiplier added into the accumulator).
#[derive(Debug, Clone)]
pub struct QNode {
    /// The operation.
    pub op: QOp,
    /// Index of the input value (0 = network input; `i+1` = output of node
    /// `i`).
    pub input: usize,
    /// Residual addition into the accumulator: `(value index, multiplier)`.
    pub skip: Option<(usize, i64)>,
}

/// A fully quantized model.
#[derive(Debug, Clone)]
pub struct QModel {
    /// Nodes in topological order.
    pub nodes: Vec<QNode>,
    /// Scale of the quantized input image.
    pub input_scale: f64,
    /// Precision.
    pub cfg: QuantConfig,
}

/// Per-inference statistics (drives Fig. 4 and the `t`-headroom check).
#[derive(Debug, Clone, Default)]
pub struct QStats {
    /// Max |accumulator| per linear/pool node, aligned with `nodes`.
    pub max_acc: Vec<i64>,
}

impl QStats {
    fn observe(&mut self, node: usize, v: i64) {
        if self.max_acc.len() <= node {
            self.max_acc.resize(node + 1, 0);
        }
        self.max_acc[node] = self.max_acc[node].max(v.abs());
    }

    /// Merges another run's stats.
    pub fn merge(&mut self, other: &QStats) {
        if self.max_acc.len() < other.max_acc.len() {
            self.max_acc.resize(other.max_acc.len(), 0);
        }
        for (a, &b) in self.max_acc.iter_mut().zip(&other.max_acc) {
            *a = (*a).max(b);
        }
    }
}

fn conv_i64(x: &ITensor, w: &ITensor, bias: &[i64], stride: usize, padding: usize) -> ITensor {
    let (c_in, h, wd) = (x.shape()[0], x.shape()[1], x.shape()[2]);
    let (c_out, k) = (w.shape()[0], w.shape()[2]);
    assert_eq!(w.shape()[1], c_in, "channel mismatch");
    let oh = (h + 2 * padding - k) / stride + 1;
    let ow = (wd + 2 * padding - k) / stride + 1;
    let mut out = ITensor::zeros(&[c_out, oh, ow]);
    let xd = x.data();
    let wdta = w.data();
    let od = out.data_mut();
    // Same axpy ordering as the float path: contiguous inner loops, padding
    // handled by range clamping.
    for co in 0..c_out {
        od[co * oh * ow..(co + 1) * oh * ow].fill(bias[co]);
        for ci in 0..c_in {
            for ky in 0..k {
                for kx in 0..k {
                    let wv = wdta[((co * c_in + ci) * k + ky) * k + kx];
                    if wv == 0 {
                        continue;
                    }
                    for oy in 0..oh {
                        let iy = (oy * stride + ky) as isize - padding as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        let xrow =
                            &xd[(ci * h + iy as usize) * wd..(ci * h + iy as usize + 1) * wd];
                        let orow = &mut od[(co * oh + oy) * ow..(co * oh + oy + 1) * ow];
                        if stride == 1 {
                            let lo = padding.saturating_sub(kx);
                            let hi = (wd + padding - kx).min(ow);
                            let shift = kx as isize - padding as isize;
                            for (ox, o) in orow.iter_mut().enumerate().take(hi).skip(lo) {
                                *o += wv * xrow[(ox as isize + shift) as usize];
                            }
                        } else {
                            for (ox, o) in orow.iter_mut().enumerate() {
                                let ix = (ox * stride + kx) as isize - padding as isize;
                                if ix >= 0 && ix < wd as isize {
                                    *o += wv * xrow[ix as usize];
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

impl QModel {
    /// Quantizes a float input image into the model's integer input domain.
    pub fn quantize_input(&self, x: &Tensor) -> ITensor {
        let a_max = self.cfg.a_max();
        ITensor::from_vec(
            x.shape(),
            x.data()
                .iter()
                .map(|&v| ((v as f64 / self.input_scale).round() as i64).clamp(-a_max, a_max))
                .collect(),
        )
    }

    /// Runs integer inference, optionally injecting per-accumulator noise
    /// (the `e_ms` model of §3.2.2). Returns the float logits and stats.
    pub fn forward_with_noise(
        &self,
        x: &ITensor,
        noise: Option<&mut dyn FnMut() -> i64>,
        stats: &mut QStats,
    ) -> Vec<f64> {
        self.forward_traced(x, noise, stats).0
    }

    /// Like [`QModel::forward_with_noise`] but also returns every
    /// intermediate value tensor (index 0 = input), for per-layer error-rate
    /// measurements (Fig. 4).
    pub fn forward_traced(
        &self,
        x: &ITensor,
        mut noise: Option<&mut dyn FnMut() -> i64>,
        stats: &mut QStats,
    ) -> (Vec<f64>, Vec<ITensor>) {
        let a_max = self.cfg.a_max();
        let mut values: Vec<ITensor> = vec![x.clone()];
        let mut logits: Vec<f64> = Vec::new();
        for (ni, node) in self.nodes.iter().enumerate() {
            let input = &values[node.input];
            let out = match &node.op {
                QOp::Linear(l) => {
                    let acc = if l.is_fc {
                        let flat = ITensor::from_vec(&[input.len(), 1, 1], input.data().to_vec());
                        conv_i64(&flat, &l.weight, &l.bias, 1, 0)
                    } else {
                        conv_i64(input, &l.weight, &l.bias, l.stride, l.padding)
                    };
                    let mut acc = acc;
                    if let Some((skip_idx, mult)) = node.skip {
                        let skip = &values[skip_idx];
                        assert_eq!(skip.len(), acc.len(), "skip shape mismatch");
                        for (a, &s) in acc.data_mut().iter_mut().zip(skip.data()) {
                            *a += s * mult;
                        }
                    }
                    if let Some(f) = noise.as_mut() {
                        for a in acc.data_mut() {
                            *a += f();
                        }
                    }
                    for &a in acc.data() {
                        stats.observe(ni, a);
                    }
                    let is_last = ni == self.nodes.len() - 1;
                    if is_last {
                        logits = acc
                            .data()
                            .iter()
                            .map(|&v| v as f64 * l.in_scale * l.w_scale)
                            .collect();
                        acc // unused afterwards
                    } else {
                        ITensor::from_vec(
                            acc.shape(),
                            acc.data().iter().map(|&v| l.remap(v, a_max)).collect(),
                        )
                    }
                }
                QOp::MaxPool { k } => {
                    let (c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2]);
                    let (oh, ow) = (h / k, w / k);
                    let mut out = ITensor::zeros(&[c, oh, ow]);
                    for ci in 0..c {
                        for oy in 0..oh {
                            for ox in 0..ow {
                                let mut best = i64::MIN;
                                for ky in 0..*k {
                                    for kx in 0..*k {
                                        best = best.max(
                                            input.data()[(ci * h + oy * k + ky) * w + ox * k + kx],
                                        );
                                    }
                                }
                                out.data_mut()[(ci * oh + oy) * ow + ox] = best;
                            }
                        }
                    }
                    out
                }
                QOp::AvgPool { k } => {
                    let (c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2]);
                    let (oh, ow) = (h / k, w / k);
                    let kk = (k * k) as i64;
                    let mut out = ITensor::zeros(&[c, oh, ow]);
                    for ci in 0..c {
                        for oy in 0..oh {
                            for ox in 0..ow {
                                let mut s = 0i64;
                                for ky in 0..*k {
                                    for kx in 0..*k {
                                        s += input.data()[(ci * h + oy * k + ky) * w + ox * k + kx];
                                    }
                                }
                                if let Some(f) = noise.as_mut() {
                                    s += f();
                                }
                                stats.observe(ni, s);
                                // divide LUT: round(s / k²)
                                let v = (s as f64 / kk as f64).round() as i64;
                                out.data_mut()[(ci * oh + oy) * ow + ox] = v.clamp(-a_max, a_max);
                            }
                        }
                    }
                    out
                }
            };
            values.push(out);
        }
        (logits, values)
    }

    /// Integer inference without noise.
    pub fn forward(&self, x: &ITensor) -> Vec<f64> {
        let mut stats = QStats::default();
        self.forward_with_noise(x, None, &mut stats)
    }

    /// Predicted class.
    pub fn predict(&self, x: &ITensor) -> usize {
        let logits = self.forward(x);
        logits
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("no NaNs"))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Derives the shape-level [`ModelSpec`] of this model, so a concrete
    /// quantized model can drive the same op-count and accelerator cost
    /// models as the built-in benchmark specs.
    ///
    /// Each linear node becomes one [`SpecLayer`]; a pooling node is folded
    /// into its producer layer's [`NonLinear`] (the spec convention — pools
    /// ride the preceding layer's FBS accounting) and emits no layer of its
    /// own. The final node gets [`NonLinear::None`] (raw logits).
    ///
    /// # Panics
    ///
    /// Panics on non-square conv inputs, or if a pooling node does not
    /// directly consume a linear node's output.
    pub fn to_spec(&self, input_shape: &[usize; 3]) -> ModelSpec {
        // Value shapes, indexed like the node inputs (0 = network input).
        let mut shapes: Vec<[usize; 3]> = vec![*input_shape];
        // (producing node, layer index) of each emitted SpecLayer.
        let mut layers: Vec<SpecLayer> = Vec::new();
        let mut layer_of_node: Vec<Option<usize>> = Vec::new();
        for (ni, node) in self.nodes.iter().enumerate() {
            let is_last = ni == self.nodes.len() - 1;
            let in_shape = shapes[node.input];
            match &node.op {
                QOp::Linear(l) => {
                    let (c_out, k) = (l.weight.shape()[0], l.weight.shape()[2]);
                    let conv = if l.is_fc {
                        ConvShape {
                            hw: 1,
                            c_in: in_shape.iter().product(),
                            c_out,
                            k: 1,
                            stride: 1,
                            padding: 0,
                        }
                    } else {
                        assert_eq!(in_shape[1], in_shape[2], "non-square conv input");
                        ConvShape {
                            hw: in_shape[1],
                            c_in: in_shape[0],
                            c_out,
                            k,
                            stride: l.stride,
                            padding: l.padding,
                        }
                    };
                    let out_hw = conv.out_hw();
                    shapes.push([c_out, out_hw, out_hw]);
                    layer_of_node.push(Some(layers.len()));
                    layers.push(SpecLayer {
                        conv,
                        act: if is_last {
                            NonLinear::None
                        } else {
                            NonLinear::Activation
                        },
                    });
                }
                QOp::MaxPool { k } | QOp::AvgPool { k } => {
                    let producer = node
                        .input
                        .checked_sub(1)
                        .and_then(|p| layer_of_node.get(p).copied().flatten())
                        .expect("pooling must consume a linear node's output");
                    layers[producer].act = match &node.op {
                        QOp::MaxPool { .. } => NonLinear::MaxPool { k: *k },
                        _ => NonLinear::AvgPool { k: *k },
                    };
                    shapes.push([in_shape[0], in_shape[1] / k, in_shape[2] / k]);
                    layer_of_node.push(None);
                }
            }
        }
        ModelSpec {
            name: "qmodel",
            layers,
        }
    }

    /// The linear-layer nodes (for LUT/size accounting).
    pub fn linear_nodes(&self) -> impl Iterator<Item = (usize, &QLinear)> {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| match &n.op {
                QOp::Linear(l) => Some((i, l)),
                _ => None,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_qlinear(act: Activation) -> QLinear {
        QLinear {
            weight: ITensor::from_vec(&[1, 1, 1, 1], vec![2]),
            bias: vec![0],
            stride: 1,
            padding: 0,
            is_fc: false,
            act,
            in_scale: 0.5,
            w_scale: 0.25,
            out_scale: 0.125,
        }
    }

    #[test]
    fn remap_relu_semantics() {
        let l = tiny_qlinear(Activation::ReLU);
        // v = 8 -> real 8*0.125 = 1.0 -> relu 1.0 -> /0.125 = 8
        assert_eq!(l.remap(8, 127), 8);
        assert_eq!(l.remap(-8, 127), 0);
        // clamping
        assert_eq!(l.remap(1000, 63), 63);
    }

    #[test]
    fn conv_i64_matches_manual() {
        let x = ITensor::from_vec(&[1, 2, 2], vec![1, 2, 3, 4]);
        let w = ITensor::from_vec(&[1, 1, 2, 2], vec![1, 0, 0, 1]);
        let y = conv_i64(&x, &w, &[10], 1, 0);
        assert_eq!(y.data(), &[10 + 1 + 4]);
    }

    #[test]
    fn forward_single_layer_model() {
        let model = QModel {
            nodes: vec![
                QNode {
                    op: QOp::Linear(tiny_qlinear(Activation::ReLU)),
                    input: 0,
                    skip: None,
                },
                QNode {
                    op: QOp::Linear(QLinear {
                        weight: ITensor::from_vec(&[1, 1, 1, 1], vec![1]),
                        bias: vec![0],
                        stride: 1,
                        padding: 0,
                        is_fc: false,
                        act: Activation::Identity,
                        in_scale: 0.125,
                        w_scale: 1.0,
                        out_scale: 1.0,
                    }),
                    input: 1,
                    skip: None,
                },
            ],
            input_scale: 0.5,
            cfg: QuantConfig::w7a7(),
        };
        let x = ITensor::from_vec(&[1, 1, 1], vec![4]);
        let logits = model.forward(&x);
        // layer1: acc = 8, remap: 8*0.125=1.0 relu -> /0.125 = 8
        // layer2: acc = 8 -> logits 8*0.125 = 1.0
        assert_eq!(logits, vec![1.0]);
    }

    #[test]
    fn noise_injection_and_stats() {
        let model = QModel {
            nodes: vec![QNode {
                op: QOp::Linear(tiny_qlinear(Activation::Identity)),
                input: 0,
                skip: None,
            }],
            input_scale: 0.5,
            cfg: QuantConfig::w7a7(),
        };
        let x = ITensor::from_vec(&[1, 1, 1], vec![10]);
        let mut stats = QStats::default();
        let mut inject = || 3i64;
        let logits = model.forward_with_noise(&x, Some(&mut inject), &mut stats);
        // acc = 20 + 3 = 23 -> logits 23*0.125
        assert_eq!(logits, vec![23.0 * 0.125]);
        assert_eq!(stats.max_acc[0], 23);
    }

    #[test]
    fn to_spec_folds_pooling_and_marks_last_layer() {
        // conv 1→6 5×5 pad 2 → maxpool 2 → FC 6·14·14 → 10.
        let model = QModel {
            nodes: vec![
                QNode {
                    op: QOp::Linear(QLinear {
                        weight: ITensor::from_vec(&[6, 1, 5, 5], vec![1; 6 * 25]),
                        bias: vec![0; 6],
                        stride: 1,
                        padding: 2,
                        is_fc: false,
                        act: Activation::ReLU,
                        in_scale: 1.0,
                        w_scale: 1.0,
                        out_scale: 1.0,
                    }),
                    input: 0,
                    skip: None,
                },
                QNode {
                    op: QOp::MaxPool { k: 2 },
                    input: 1,
                    skip: None,
                },
                QNode {
                    op: QOp::Linear(QLinear {
                        weight: ITensor::from_vec(&[10, 6 * 14 * 14, 1, 1], vec![0; 10 * 6 * 196]),
                        bias: vec![0; 10],
                        stride: 1,
                        padding: 0,
                        is_fc: true,
                        act: Activation::Identity,
                        in_scale: 1.0,
                        w_scale: 1.0,
                        out_scale: 1.0,
                    }),
                    input: 2,
                    skip: None,
                },
            ],
            input_scale: 1.0,
            cfg: QuantConfig::w7a7(),
        };
        let spec = model.to_spec(&[1, 28, 28]);
        assert_eq!(spec.layers.len(), 2); // pool folded, no layer of its own
        let l0 = &spec.layers[0];
        assert_eq!(
            (l0.conv.hw, l0.conv.c_in, l0.conv.c_out, l0.conv.k),
            (28, 1, 6, 5)
        );
        assert_eq!(l0.conv.out_hw(), 28);
        assert!(matches!(l0.act, NonLinear::MaxPool { k: 2 }));
        let l1 = &spec.layers[1];
        // FC input is the pooled 6×14×14 tensor, flattened.
        assert_eq!(
            (l1.conv.hw, l1.conv.c_in, l1.conv.c_out, l1.conv.k),
            (1, 6 * 14 * 14, 10, 1)
        );
        assert!(matches!(l1.act, NonLinear::None));
    }

    #[test]
    fn pooling_ops() {
        let model = QModel {
            nodes: vec![QNode {
                op: QOp::MaxPool { k: 2 },
                input: 0,
                skip: None,
            }],
            input_scale: 1.0,
            cfg: QuantConfig::w7a7(),
        };
        let x = ITensor::from_vec(&[1, 2, 2], vec![-5, 3, 7, 1]);
        let mut stats = QStats::default();
        // max pool output is the final node, but it is not Linear, so logits
        // stay empty — exercise via values: use forward_with_noise + check
        // no panic; dedicated avg test below.
        let _ = model.forward_with_noise(&x, None, &mut stats);
        let avg_model = QModel {
            nodes: vec![QNode {
                op: QOp::AvgPool { k: 2 },
                input: 0,
                skip: None,
            }],
            input_scale: 1.0,
            cfg: QuantConfig::w7a7(),
        };
        let mut stats = QStats::default();
        let _ = avg_model.forward_with_noise(&x, None, &mut stats);
        assert_eq!(stats.max_acc[0], 6); // |sum| = |-5+3+7+1| = 6
    }
}
