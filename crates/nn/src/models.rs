//! The paper's four benchmark architectures (§5.1): the MNIST toy CNN \[4\],
//! LeNet-5 with ReLU \[26\], ResNet-20 and ResNet-56 \[27, 28\] — plus a
//! shape-level [`ModelSpec`] used by the op-count and cost models without
//! instantiating weights.

use crate::layers::{AvgPool2d, Conv2d, Linear, MaxPool2d, ReLU};
use crate::network::{NetLayer, Network, ResidualBlock};
use athena_math::sampler::Sampler;

/// Identifier of a benchmark model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// One conv + two FC layers, 28×28×1 input.
    Mnist,
    /// LeNet-5 with ReLU and max pooling, 28×28×1 input.
    LeNet,
    /// ResNet-20, 32×32×3 input.
    ResNet20,
    /// ResNet-56, 32×32×3 input.
    ResNet56,
}

impl ModelKind {
    /// All four benchmarks in the paper's order.
    pub fn all() -> [ModelKind; 4] {
        [
            ModelKind::LeNet,
            ModelKind::Mnist,
            ModelKind::ResNet20,
            ModelKind::ResNet56,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::Mnist => "MNIST",
            ModelKind::LeNet => "LeNet",
            ModelKind::ResNet20 => "ResNet-20",
            ModelKind::ResNet56 => "ResNet-56",
        }
    }

    /// Input tensor shape `[C, H, W]`.
    pub fn input_shape(&self) -> [usize; 3] {
        match self {
            ModelKind::Mnist | ModelKind::LeNet => [1, 28, 28],
            ModelKind::ResNet20 | ModelKind::ResNet56 => [3, 32, 32],
        }
    }

    /// Builds the float network.
    pub fn build(&self, sampler: &mut Sampler) -> Network {
        match self {
            ModelKind::Mnist => mnist_cnn(sampler),
            ModelKind::LeNet => lenet5(sampler),
            ModelKind::ResNet20 => resnet(3, sampler),
            ModelKind::ResNet56 => resnet(9, sampler),
        }
    }

    /// The shape-level spec (for op counting and the accelerator model).
    pub fn spec(&self) -> ModelSpec {
        match self {
            ModelKind::Mnist => ModelSpec::mnist(),
            ModelKind::LeNet => ModelSpec::lenet(),
            ModelKind::ResNet20 => ModelSpec::resnet(3),
            ModelKind::ResNet56 => ModelSpec::resnet(9),
        }
    }
}

/// The MNIST toy CNN \[4\]: one convolution and two FC layers.
pub fn mnist_cnn(s: &mut Sampler) -> Network {
    let mut net = Network::new();
    net.push(NetLayer::Conv(Conv2d::new(1, 5, 5, 2, 2, s))); // 5×14×14
    net.push(NetLayer::ReLU(ReLU::new()));
    net.push(NetLayer::Linear(Linear::new(5 * 14 * 14, 64, s)));
    net.push(NetLayer::ReLU(ReLU::new()));
    net.push(NetLayer::Linear(Linear::new(64, 10, s)));
    net
}

/// LeNet-5 with ReLU activations and max pooling (two conv, two pool,
/// two FC — as the paper describes its variant).
pub fn lenet5(s: &mut Sampler) -> Network {
    let mut net = Network::new();
    net.push(NetLayer::Conv(Conv2d::new(1, 6, 5, 1, 2, s))); // 6×28×28
    net.push(NetLayer::ReLU(ReLU::new()));
    net.push(NetLayer::MaxPool(MaxPool2d::new(2))); // 6×14×14
    net.push(NetLayer::Conv(Conv2d::new(6, 16, 5, 1, 0, s))); // 16×10×10
    net.push(NetLayer::ReLU(ReLU::new()));
    net.push(NetLayer::MaxPool(MaxPool2d::new(2))); // 16×5×5
    net.push(NetLayer::Linear(Linear::new(16 * 5 * 5, 120, s)));
    net.push(NetLayer::ReLU(ReLU::new()));
    net.push(NetLayer::Linear(Linear::new(120, 10, s)));
    net
}

/// CIFAR ResNet with `blocks_per_stage` blocks in each of three stages
/// (3 → ResNet-20, 9 → ResNet-56).
pub fn resnet(blocks_per_stage: usize, s: &mut Sampler) -> Network {
    let mut net = Network::new();
    net.push(NetLayer::Conv(Conv2d::new(3, 16, 3, 1, 1, s)));
    net.push(NetLayer::ReLU(ReLU::new()));
    let stages = [(16usize, 16usize, 1usize), (16, 32, 2), (32, 64, 2)];
    for &(c_in, c_out, stride) in &stages {
        for b in 0..blocks_per_stage {
            let (ci, st) = if b == 0 { (c_in, stride) } else { (c_out, 1) };
            net.push(NetLayer::Residual(ResidualBlock::new(ci, c_out, st, s)));
        }
    }
    net.push(NetLayer::AvgPool(AvgPool2d::new(8))); // 64×1×1
    net.push(NetLayer::Linear(Linear::new(64, 10, s)));
    net
}

/// Shape of one linear layer for op counting: the conv tuple of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvShape {
    /// Feature map height = width.
    pub hw: usize,
    /// Input channels.
    pub c_in: usize,
    /// Output channels.
    pub c_out: usize,
    /// Kernel width (1 for FC viewed as conv).
    pub k: usize,
    /// Stride.
    pub stride: usize,
    /// Padding.
    pub padding: usize,
}

impl ConvShape {
    /// Output spatial dimension.
    pub fn out_hw(&self) -> usize {
        (self.hw + 2 * self.padding - self.k) / self.stride + 1
    }

    /// MAC count of the layer.
    pub fn macs(&self) -> u64 {
        (self.out_hw() * self.out_hw()) as u64
            * self.c_out as u64
            * self.c_in as u64
            * (self.k * self.k) as u64
    }

    /// Number of output activations.
    pub fn outputs(&self) -> u64 {
        (self.out_hw() * self.out_hw() * self.c_out) as u64
    }
}

/// Kind of non-linearity following a linear layer (drives the FBS count).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NonLinear {
    /// Single-LUT activation (ReLU & friends) fused with remap.
    Activation,
    /// Average pooling (one LUT for the divide).
    AvgPool {
        /// Kernel size.
        k: usize,
    },
    /// Max pooling (max-tree: O(k²) LUT passes per window).
    MaxPool {
        /// Kernel size.
        k: usize,
    },
    /// Softmax (exp LUT + inverse LUT + one CMult).
    Softmax,
    /// Nothing (final logits).
    None,
}

/// One layer of a [`ModelSpec`].
#[derive(Debug, Clone, Copy)]
pub struct SpecLayer {
    /// The linear part's shape.
    pub conv: ConvShape,
    /// The non-linearity after it.
    pub act: NonLinear,
}

/// Shape-level description of a model: enough to drive Tables 2/3/6-9 and
/// the cycle-level simulator without any weights.
#[derive(Debug, Clone)]
pub struct ModelSpec {
    /// Model identity.
    pub name: &'static str,
    /// Layers in order.
    pub layers: Vec<SpecLayer>,
}

impl ModelSpec {
    /// The MNIST toy CNN.
    pub fn mnist() -> Self {
        Self {
            name: "MNIST",
            layers: vec![
                SpecLayer {
                    conv: ConvShape {
                        hw: 28,
                        c_in: 1,
                        c_out: 5,
                        k: 5,
                        stride: 2,
                        padding: 2,
                    },
                    act: NonLinear::Activation,
                },
                SpecLayer {
                    conv: ConvShape {
                        hw: 1,
                        c_in: 980,
                        c_out: 64,
                        k: 1,
                        stride: 1,
                        padding: 0,
                    },
                    act: NonLinear::Activation,
                },
                SpecLayer {
                    conv: ConvShape {
                        hw: 1,
                        c_in: 64,
                        c_out: 10,
                        k: 1,
                        stride: 1,
                        padding: 0,
                    },
                    act: NonLinear::Softmax,
                },
            ],
        }
    }

    /// LeNet-5 (ReLU variant with max pooling).
    pub fn lenet() -> Self {
        Self {
            name: "LeNet",
            layers: vec![
                SpecLayer {
                    conv: ConvShape {
                        hw: 28,
                        c_in: 1,
                        c_out: 6,
                        k: 5,
                        stride: 1,
                        padding: 2,
                    },
                    act: NonLinear::Activation,
                },
                SpecLayer {
                    conv: ConvShape {
                        hw: 28,
                        c_in: 6,
                        c_out: 6,
                        k: 1,
                        stride: 1,
                        padding: 0,
                    },
                    act: NonLinear::MaxPool { k: 2 },
                },
                SpecLayer {
                    conv: ConvShape {
                        hw: 14,
                        c_in: 6,
                        c_out: 16,
                        k: 5,
                        stride: 1,
                        padding: 0,
                    },
                    act: NonLinear::Activation,
                },
                SpecLayer {
                    conv: ConvShape {
                        hw: 10,
                        c_in: 16,
                        c_out: 16,
                        k: 1,
                        stride: 1,
                        padding: 0,
                    },
                    act: NonLinear::MaxPool { k: 2 },
                },
                SpecLayer {
                    conv: ConvShape {
                        hw: 1,
                        c_in: 400,
                        c_out: 120,
                        k: 1,
                        stride: 1,
                        padding: 0,
                    },
                    act: NonLinear::Activation,
                },
                SpecLayer {
                    conv: ConvShape {
                        hw: 1,
                        c_in: 120,
                        c_out: 10,
                        k: 1,
                        stride: 1,
                        padding: 0,
                    },
                    act: NonLinear::Softmax,
                },
            ],
        }
    }

    /// CIFAR ResNet (3 blocks/stage → ResNet-20, 9 → ResNet-56).
    pub fn resnet(blocks_per_stage: usize) -> Self {
        let name = if blocks_per_stage == 3 {
            "ResNet-20"
        } else if blocks_per_stage == 9 {
            "ResNet-56"
        } else {
            "ResNet-n"
        };
        let mut layers = vec![SpecLayer {
            conv: ConvShape {
                hw: 32,
                c_in: 3,
                c_out: 16,
                k: 3,
                stride: 1,
                padding: 1,
            },
            act: NonLinear::Activation,
        }];
        let stages = [
            (16usize, 16usize, 1usize, 32usize),
            (16, 32, 2, 32),
            (32, 64, 2, 16),
        ];
        for &(c_in, c_out, stride, hw) in &stages {
            for b in 0..blocks_per_stage {
                let (ci, st, h) = if b == 0 {
                    (c_in, stride, hw)
                } else {
                    (c_out, 1, hw / stride)
                };
                // two 3×3 convs per block (skip conv counted when present)
                layers.push(SpecLayer {
                    conv: ConvShape {
                        hw: h,
                        c_in: ci,
                        c_out,
                        k: 3,
                        stride: st,
                        padding: 1,
                    },
                    act: NonLinear::Activation,
                });
                layers.push(SpecLayer {
                    conv: ConvShape {
                        hw: h / st,
                        c_in: c_out,
                        c_out,
                        k: 3,
                        stride: 1,
                        padding: 1,
                    },
                    act: NonLinear::Activation,
                });
                if b == 0 && (stride != 1 || c_in != c_out) {
                    layers.push(SpecLayer {
                        conv: ConvShape {
                            hw: h,
                            c_in: ci,
                            c_out,
                            k: 1,
                            stride: st,
                            padding: 0,
                        },
                        act: NonLinear::None,
                    });
                }
            }
        }
        layers.push(SpecLayer {
            conv: ConvShape {
                hw: 8,
                c_in: 64,
                c_out: 64,
                k: 1,
                stride: 1,
                padding: 0,
            },
            act: NonLinear::AvgPool { k: 8 },
        });
        layers.push(SpecLayer {
            conv: ConvShape {
                hw: 1,
                c_in: 64,
                c_out: 10,
                k: 1,
                stride: 1,
                padding: 0,
            },
            act: NonLinear::Softmax,
        });
        Self { name, layers }
    }

    /// Total MACs.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(|l| l.conv.macs()).sum()
    }

    /// Number of convolution/FC layers.
    pub fn linear_layer_count(&self) -> usize {
        self.layers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    #[test]
    fn models_produce_ten_logits() {
        let mut s = Sampler::from_seed(21);
        for kind in [ModelKind::Mnist, ModelKind::LeNet] {
            let mut net = kind.build(&mut s);
            let shape = kind.input_shape();
            let y = net.forward(&Tensor::zeros(&shape));
            assert_eq!(y.len(), 10, "{}", kind.name());
        }
    }

    #[test]
    fn resnet20_shape_flow() {
        let mut s = Sampler::from_seed(22);
        let mut net = ModelKind::ResNet20.build(&mut s);
        let y = net.forward(&Tensor::zeros(&[3, 32, 32]));
        assert_eq!(y.len(), 10);
        // 1 stem conv+relu + 9 blocks + pool + fc = 13 top-level layers
        assert_eq!(net.layers.len(), 13);
    }

    #[test]
    fn resnet_specs_match_paper_depth() {
        // ResNet-20: 19 conv layers + 1 FC (paper) — we also count the 2
        // skip 1×1 convs and the pooling pseudo-layer separately.
        let spec = ModelSpec::resnet(3);
        let convs_3x3 = spec.layers.iter().filter(|l| l.conv.k == 3).count();
        assert_eq!(convs_3x3, 19, "19 3×3 convolutions in ResNet-20");
        let spec56 = ModelSpec::resnet(9);
        let convs_3x3 = spec56.layers.iter().filter(|l| l.conv.k == 3).count();
        assert_eq!(convs_3x3, 55, "55 3×3 convolutions in ResNet-56");
    }

    #[test]
    fn macs_are_sane() {
        // ResNet-20 on CIFAR-10 is ~40.5M MACs in the literature.
        let m = ModelSpec::resnet(3).total_macs();
        assert!(m > 30_000_000 && m < 50_000_000, "ResNet-20 MACs = {m}");
        // ResNet-56 is ~126M.
        let m56 = ModelSpec::resnet(9).total_macs();
        assert!(
            m56 > 100_000_000 && m56 < 150_000_000,
            "ResNet-56 MACs = {m56}"
        );
    }

    #[test]
    fn table2_shapes_present_in_resnet() {
        // The conv shapes of Table 2 are exactly ResNet-20's distinct layer
        // shapes.
        let spec = ModelSpec::resnet(3);
        let expected = [
            (32usize, 3usize, 16usize, 3usize, 1usize, 1usize),
            (32, 16, 16, 3, 1, 1),
            (32, 16, 32, 1, 2, 0),
            (16, 32, 32, 3, 1, 1),
            (16, 32, 64, 1, 2, 0),
            (8, 64, 64, 3, 1, 1),
        ];
        for (hw, ci, co, k, s, p) in expected {
            assert!(
                spec.layers.iter().any(|l| {
                    let c = l.conv;
                    c.hw == hw
                        && c.c_in == ci
                        && c.c_out == co
                        && c.k == k
                        && c.stride == s
                        && c.padding == p
                }),
                "missing shape ({hw},{ci},{co},{k},{s},{p})"
            );
        }
    }
}
