//! Synthetic datasets standing in for MNIST / CIFAR-10 (which are not
//! available offline — see DESIGN.md §2). Each class has a smooth random
//! template; samples are noisy, shifted copies. The tasks are learnable by
//! the benchmark CNNs in a few epochs, which is what Table 5's
//! plain-G / plain-Q / cipher comparison needs: the accuracy *deltas*
//! between those three pipelines are the reproduced quantity, not the
//! absolute accuracy of any particular dataset.

use crate::tensor::Tensor;
use athena_math::sampler::Sampler;

/// A labelled dataset of `[C, H, W]` tensors.
#[derive(Debug)]
pub struct Dataset {
    /// Input tensors.
    pub images: Vec<Tensor>,
    /// Class labels in `[0, classes)`.
    pub labels: Vec<usize>,
    /// Number of classes.
    pub classes: usize,
}

impl Dataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }
}

/// Configuration for the synthetic generator.
#[derive(Debug, Clone, Copy)]
pub struct SyntheticConfig {
    /// Channels.
    pub c: usize,
    /// Height = width.
    pub hw: usize,
    /// Number of classes.
    pub classes: usize,
    /// Additive noise amplitude (template amplitude is ~1).
    pub noise: f32,
    /// Maximum random translation in pixels.
    pub max_shift: usize,
}

impl SyntheticConfig {
    /// MNIST-like: 1×28×28, 10 classes.
    pub fn mnist_like() -> Self {
        Self {
            c: 1,
            hw: 28,
            classes: 10,
            noise: 0.35,
            max_shift: 2,
        }
    }

    /// CIFAR-like: 3×32×32, 10 classes.
    pub fn cifar_like() -> Self {
        Self {
            c: 3,
            hw: 32,
            classes: 10,
            noise: 0.45,
            max_shift: 2,
        }
    }
}

/// Deterministic synthetic data source.
#[derive(Debug)]
pub struct SyntheticSource {
    config: SyntheticConfig,
    /// One template per class, `[C, H, W]`, amplitude ~1.
    templates: Vec<Tensor>,
}

impl SyntheticSource {
    /// Builds class templates from a seed: low-resolution random fields,
    /// bilinearly upsampled (so they are smooth, like natural images).
    pub fn new(config: SyntheticConfig, seed: u64) -> Self {
        let mut s = Sampler::from_seed(seed);
        let grid = 6; // low-res control grid
        let templates = (0..config.classes)
            .map(|_| {
                let mut t = Tensor::zeros(&[config.c, config.hw, config.hw]);
                for ci in 0..config.c {
                    // control points in [-1, 1]
                    let ctrl: Vec<f32> = (0..grid * grid)
                        .map(|_| s.uniform_mod(2001) as f32 / 1000.0 - 1.0)
                        .collect();
                    for y in 0..config.hw {
                        for x in 0..config.hw {
                            // bilinear sample of the control grid
                            let fy = y as f32 / (config.hw - 1) as f32 * (grid - 1) as f32;
                            let fx = x as f32 / (config.hw - 1) as f32 * (grid - 1) as f32;
                            let (y0, x0) = (fy as usize, fx as usize);
                            let (y1, x1) = ((y0 + 1).min(grid - 1), (x0 + 1).min(grid - 1));
                            let (dy, dx) = (fy - y0 as f32, fx - x0 as f32);
                            let v = ctrl[y0 * grid + x0] * (1.0 - dy) * (1.0 - dx)
                                + ctrl[y0 * grid + x1] * (1.0 - dy) * dx
                                + ctrl[y1 * grid + x0] * dy * (1.0 - dx)
                                + ctrl[y1 * grid + x1] * dy * dx;
                            t.data_mut()[(ci * config.hw + y) * config.hw + x] = v;
                        }
                    }
                }
                t
            })
            .collect();
        Self { config, templates }
    }

    /// Generates a dataset of `n` samples (round-robin labels) with the
    /// given seed.
    pub fn generate(&self, n: usize, seed: u64) -> Dataset {
        let mut s = Sampler::from_seed(seed);
        let cfg = self.config;
        let mut images = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let label = i % cfg.classes;
            let tpl = &self.templates[label];
            let sy = s.uniform_mod(2 * cfg.max_shift as u64 + 1) as isize - cfg.max_shift as isize;
            let sx = s.uniform_mod(2 * cfg.max_shift as u64 + 1) as isize - cfg.max_shift as isize;
            let mut img = Tensor::zeros(&[cfg.c, cfg.hw, cfg.hw]);
            for ci in 0..cfg.c {
                for y in 0..cfg.hw {
                    for x in 0..cfg.hw {
                        let ty = y as isize + sy;
                        let tx = x as isize + sx;
                        let base = if ty >= 0
                            && tx >= 0
                            && (ty as usize) < cfg.hw
                            && (tx as usize) < cfg.hw
                        {
                            tpl.data()[(ci * cfg.hw + ty as usize) * cfg.hw + tx as usize]
                        } else {
                            0.0
                        };
                        let noise = (s.uniform_mod(2001) as f32 / 1000.0 - 1.0) * cfg.noise;
                        img.data_mut()[(ci * cfg.hw + y) * cfg.hw + x] = base + noise;
                    }
                }
            }
            images.push(img);
            labels.push(label);
        }
        Dataset {
            images,
            labels,
            classes: cfg.classes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_generation() {
        let src = SyntheticSource::new(SyntheticConfig::mnist_like(), 1);
        let a = src.generate(10, 2);
        let b = src.generate(10, 2);
        assert_eq!(a.images[3], b.images[3]);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn labels_balanced() {
        let src = SyntheticSource::new(SyntheticConfig::cifar_like(), 1);
        let d = src.generate(100, 3);
        for c in 0..10 {
            assert_eq!(d.labels.iter().filter(|&&l| l == c).count(), 10);
        }
    }

    #[test]
    fn classes_are_distinguishable() {
        // Nearest-template classification should already beat chance by a
        // lot — the CNNs then only need to do better than this baseline.
        let src = SyntheticSource::new(SyntheticConfig::mnist_like(), 7);
        let d = src.generate(200, 8);
        let mut correct = 0;
        for (img, &label) in d.images.iter().zip(&d.labels) {
            let mut best = (f32::INFINITY, 0usize);
            for (c, tpl) in src.templates.iter().enumerate() {
                let dist: f32 = img
                    .data()
                    .iter()
                    .zip(tpl.data())
                    .map(|(&a, &b)| (a - b) * (a - b))
                    .sum();
                if dist < best.0 {
                    best = (dist, c);
                }
            }
            if best.1 == label {
                correct += 1;
            }
        }
        assert!(correct > 150, "nearest-template accuracy {correct}/200");
    }
}
