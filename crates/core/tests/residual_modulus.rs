//! Round-trip coverage of the residual-skip mixed-modulus path: the
//! client-bound branch keeps both the accumulator and the skip LWEs at the
//! extraction prime `q_mid` (no `e_ms` rounding), the in-pipeline branch
//! drops both to `t` — and `lwe_add_scaled` + `decrypt_lwes` are exact at
//! either level.

use athena_core::pipeline::{AthenaEngine, PipelineStats};
use athena_fhe::params::BfvParams;
use athena_math::sampler::Sampler;

fn centered(v: i64, t: i64) -> i64 {
    let r = v.rem_euclid(t);
    if r > t / 2 {
        r - t
    } else {
        r
    }
}

/// Client-bound residual: both operands stay at `q_mid`
/// (`extract_lwes_mid`), the scaled add happens at `q_mid`, and
/// `decrypt_lwes` recovers `a + mult·b` exactly — no rounding noise at all.
#[test]
fn residual_add_at_q_mid_is_exact() {
    let engine = AthenaEngine::new(BfvParams::test_small());
    let mut sampler = Sampler::from_seed(24_601);
    let (secrets, keys) = engine.keygen(&mut sampler);
    let mut stats = PipelineStats::default();
    let n = engine.context().n();
    let t = engine.context().t() as i64;

    let positions: Vec<usize> = (0..16).collect();
    let a_vals: Vec<i64> = (0..16).map(|i| i - 8).collect();
    let b_vals: Vec<i64> = (0..16).map(|i| 2 * i - 15).collect();
    let mut a_coeffs = vec![0i64; n];
    let mut b_coeffs = vec![0i64; n];
    for (i, &p) in positions.iter().enumerate() {
        a_coeffs[p] = a_vals[i];
        b_coeffs[p] = b_vals[i];
    }
    let all: Vec<usize> = (0..n).collect();
    let ct_a = engine.encrypt_at(&a_coeffs, &all, &secrets, &mut sampler);
    let ct_b = engine.encrypt_at(&b_coeffs, &all, &secrets, &mut sampler);

    let lwes_a = engine.extract_lwes_mid(&ct_a, &positions, &keys, &mut stats);
    let lwes_b = engine.extract_lwes_mid(&ct_b, &positions, &keys, &mut stats);
    assert!(
        lwes_a.iter().all(|c| c.q() == engine.q_mid()),
        "client-bound LWEs must stay at q_mid"
    );

    let mult = 3i64;
    let sum: Vec<_> = lwes_a
        .iter()
        .zip(&lwes_b)
        .map(|(a, b)| engine.lwe_add_scaled(a, b, mult))
        .collect();
    let ints = engine.decrypt_lwes(&sum, &secrets);
    for (i, &got) in ints.iter().enumerate() {
        let want = centered(a_vals[i] + mult * b_vals[i], t);
        assert_eq!(got, want, "position {i}: {got} != {want} (exact path)");
    }
}

/// In-pipeline residual: both operands drop to `t` (`extract_lwes`), the
/// add is exact mod-`t` arithmetic, and decryption recovers the centered
/// sum (the `e_ms` rounding is absorbed by the noise margin of the small
/// values used here).
#[test]
fn residual_add_at_t_round_trips() {
    let engine = AthenaEngine::new(BfvParams::test_small());
    let mut sampler = Sampler::from_seed(24_602);
    let (secrets, keys) = engine.keygen(&mut sampler);
    let mut stats = PipelineStats::default();
    let n = engine.context().n();
    let t = engine.context().t();

    let positions: Vec<usize> = (0..12).collect();
    let a_vals: Vec<i64> = (0..12).map(|i| i - 6).collect();
    let b_vals: Vec<i64> = (0..12).map(|i| 5 - i).collect();
    let mut a_coeffs = vec![0i64; n];
    let mut b_coeffs = vec![0i64; n];
    for (i, &p) in positions.iter().enumerate() {
        a_coeffs[p] = a_vals[i];
        b_coeffs[p] = b_vals[i];
    }
    let all: Vec<usize> = (0..n).collect();
    let ct_a = engine.encrypt_at(&a_coeffs, &all, &secrets, &mut sampler);
    let ct_b = engine.encrypt_at(&b_coeffs, &all, &secrets, &mut sampler);

    let lwes_a = engine.extract_lwes(&ct_a, &positions, &keys, &mut stats);
    let lwes_b = engine.extract_lwes(&ct_b, &positions, &keys, &mut stats);
    assert!(lwes_a.iter().all(|c| c.q() == t), "pipeline LWEs live at t");

    let mult = 2i64;
    let sum: Vec<_> = lwes_a
        .iter()
        .zip(&lwes_b)
        .map(|(a, b)| engine.lwe_add_scaled(a, b, mult))
        .collect();
    let ints = engine.decrypt_lwes(&sum, &secrets);
    for (i, &got) in ints.iter().enumerate() {
        let want = a_vals[i] + mult * b_vals[i];
        // Each operand carries its own e_ms rounding error (a few plaintext
        // units at test_small) and the skip's is amplified by `mult`.
        assert!(
            (got - want).abs() <= 10,
            "position {i}: {got} vs {want} (mod-t path, e_ms-bounded)"
        );
    }
}

/// The two levels must not be mixed: `lwe_add_scaled` on a `q_mid` operand
/// and a `t` operand is a modulus mismatch and panics rather than silently
/// mis-adding.
#[test]
#[should_panic(expected = "modulus mismatch")]
fn mixed_modulus_residual_add_panics() {
    let engine = AthenaEngine::new(BfvParams::test_small());
    let mut sampler = Sampler::from_seed(24_603);
    let (secrets, keys) = engine.keygen(&mut sampler);
    let mut stats = PipelineStats::default();
    let n = engine.context().n();

    let positions = vec![0usize];
    let coeffs = vec![1i64; n];
    let all: Vec<usize> = (0..n).collect();
    let ct = engine.encrypt_at(&coeffs, &all, &secrets, &mut sampler);
    let at_mid = engine.extract_lwes_mid(&ct, &positions, &keys, &mut stats);
    let at_t = engine.extract_lwes(&ct, &positions, &keys, &mut stats);
    let _ = engine.lwe_add_scaled(&at_mid[0], &at_t[0], 1);
}
