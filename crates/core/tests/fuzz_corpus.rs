//! Replays every pinned case in `tests/fuzz_corpus/` through all four
//! oracles. Each `.case` file is a minimized fuzzing failure that was
//! fixed; this test keeps it fixed forever. A regression panics with the
//! file name, the originating seed, and the full minimized case text.

use athena_core::fuzz::{corpus, run_case, OracleCtx};

#[test]
fn pinned_corpus_cases_stay_fixed() {
    let dir = corpus::corpus_dir();
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("corpus dir {} unreadable: {e}", dir.display()))
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("case"))
        .collect();
    entries.sort();
    assert!(
        !entries.is_empty(),
        "corpus at {} holds no .case files; the directory must ship with \
         the pinned regression set",
        dir.display()
    );
    let mut ctx = OracleCtx::new();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("?");
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("corpus case {name} unreadable: {e}"));
        let case = corpus::from_text(&text)
            .unwrap_or_else(|e| panic!("corpus case {name} does not parse: {e}"));
        if let Err(failure) = run_case(&mut ctx, &case, true) {
            panic!(
                "pinned corpus case {name} regressed (originating seed {}): \
                 {failure}\ncase:\n{text}",
                case.seed
            );
        }
    }
}
