//! Cross-validation of analytic op counts against counter-measured counts.
//!
//! Three independent count models exist for the same computation:
//!
//! 1. the plan compiler's per-step `analytic` counts (schedule dry-runs:
//!    `pack_expected_op_counts`, `expected_stats`, `SlotToCoeff::op_counts`);
//! 2. the `op-stats` counters measured around the executor's real
//!    homomorphic calls;
//! 3. `trace.rs`'s closed-form production cost model (Table 3 constants,
//!    `O(∛N)`-factored S2C, `t_eff` LUTs).
//!
//! (1) and (2) must agree **exactly** — they describe the same schedules.
//! (3) deliberately models a different implementation point (production
//! packing, factored S2C, effective LUT sizes), so this file pins the
//! documented deltas instead: where the models count the same physical
//! quantity (extracted samples, LUT work volume) they must line up; where
//! they diverge (BSGS constants after the PR 3 hoisting rework, S2C
//! factorization) the divergence is bounded and explained.
//!
//! The `op-stats` counters are process-global relaxed atomics; tests that
//! read them serialize on one mutex (same pattern as
//! `crates/fhe/tests/hoisting.rs`).

#![cfg(feature = "op-stats")]

use std::sync::Mutex;

use athena_core::pipeline::{AthenaEngine, PackingMethod};
use athena_core::plan;
use athena_core::trace::{self, OpCounts, TraceParams};
use athena_fhe::params::BfvParams;
use athena_math::sampler::Sampler;
use athena_nn::qmodel::{Activation, QLinear, QModel, QNode, QOp, QuantConfig};
use athena_nn::tensor::ITensor;

static COUNTER_GUARD: Mutex<()> = Mutex::new(());

/// Small conv layer + FC head at test parameters.
fn conv_model() -> QModel {
    let conv_w: Vec<i64> = (0..2 * 9).map(|i| ((i % 5) as i64) - 2).collect();
    let fc_w: Vec<i64> = (0..3 * 18).map(|i| ((i % 3) as i64) - 1).collect();
    QModel {
        nodes: vec![
            QNode {
                op: QOp::Linear(QLinear {
                    weight: ITensor::from_vec(&[2, 1, 3, 3], conv_w),
                    bias: vec![1, -2],
                    stride: 1,
                    padding: 0,
                    is_fc: false,
                    act: Activation::ReLU,
                    in_scale: 0.5,
                    w_scale: 0.5,
                    out_scale: 1.0,
                }),
                input: 0,
                skip: None,
            },
            QNode {
                op: QOp::Linear(QLinear {
                    weight: ITensor::from_vec(&[3, 18, 1, 1], fc_w),
                    bias: vec![0, 1, -1],
                    stride: 1,
                    padding: 0,
                    is_fc: true,
                    act: Activation::Identity,
                    in_scale: 1.0,
                    w_scale: 0.5,
                    out_scale: 1.0,
                }),
                input: 1,
                skip: None,
            },
        ],
        input_scale: 0.5,
        cfg: QuantConfig::new(3, 3),
    }
}

/// The central invariant: every step's measured counts equal its analytic
/// counts, for both packing methods. The analytic side is computed at
/// compile time from the schedules (BSGS splits, diagonal occupancy, LUT
/// dry-run); the measured side is counted at the ring-op choke points —
/// two independent code paths.
#[cfg(feature = "op-stats")]
#[test]
fn measured_counts_match_plan_analytic_per_step() {
    let _lock = COUNTER_GUARD.lock().unwrap();
    let model = conv_model();
    let input = ITensor::from_vec(&[1, 5, 5], (0..25).map(|i| ((i % 5) as i64) - 2).collect());
    for method in [PackingMethod::Column, PackingMethod::Bsgs] {
        let engine = AthenaEngine::with_packing(BfvParams::test_small(), method);
        let compiled = plan::compile(&engine, &model, input.shape());
        let mut sampler = Sampler::from_seed(4_040);
        let (secrets, keys) = engine.keygen_for_plan(&compiled, &mut sampler);
        let run = plan::execute(&engine, &secrets, &keys, &compiled, &input, &mut sampler);
        for s in &run.steps {
            assert_eq!(
                s.analytic, s.measured,
                "{method:?} node {} step {} ({}): analytic != measured",
                s.node, s.step, s.label
            );
        }
        // And the derived trace carries exactly the measured totals.
        let tr = compiled.to_trace("conv_model", &model.cfg);
        let mut trace_total = OpCounts::default();
        for (_, c) in tr.phase_totals() {
            trace_total.add(&c);
        }
        let mut measured_total = OpCounts::default();
        for s in &run.steps {
            measured_total.add(&s.measured);
        }
        assert_eq!(
            trace_total, measured_total,
            "{method:?}: to_trace() diverged from the measured run"
        );
    }
}

/// Where `trace.rs`'s production model and the measured executor count the
/// same physical quantity, they agree exactly: extracted samples per layer
/// (one per output activation) and FBS invocation volume.
#[cfg(feature = "op-stats")]
#[test]
fn trace_model_extraction_counts_match_measured() {
    let _lock = COUNTER_GUARD.lock().unwrap();
    let model = conv_model();
    let input = ITensor::from_vec(&[1, 5, 5], (0..25).map(|i| (i % 3) as i64 - 1).collect());
    let engine = AthenaEngine::new(BfvParams::test_small());
    let compiled = plan::compile(&engine, &model, input.shape());
    let mut sampler = Sampler::from_seed(4_041);
    let (secrets, keys) = engine.keygen_for_plan(&compiled, &mut sampler);
    let run = plan::execute(&engine, &secrets, &keys, &compiled, &input, &mut sampler);

    // trace.rs counts `outputs` sample extractions per layer.
    let spec = model.to_spec(&[1, 5, 5]);
    let params = TraceParams {
        n: engine.context().n(),
        limbs: engine.context().params().q_primes.len(),
        t: engine.context().t(),
        lwe_n: engine.context().params().lwe_n,
    };
    let analytic_tr = trace::trace_model(&spec, &params, &model.cfg);
    for (li, layer) in analytic_tr.layers.iter().enumerate() {
        let spec_se: u64 = layer.phases.iter().map(|(_, c)| c.sample_extract).sum();
        let measured_se: u64 = run
            .steps
            .iter()
            .filter(|s| s.node == li)
            .map(|s| s.measured.sample_extract)
            .sum();
        assert_eq!(
            spec_se,
            measured_se,
            "layer {li}: trace.rs charges {spec_se} sample extractions, run performed {measured_se}"
        );
        assert_eq!(spec_se, spec.layers[li].conv.outputs());
    }
}

/// Pinned drift between `trace.rs`'s closed-form FBS cost
/// (`smult = hadd = t_eff`, `cmult = 2√t_eff`) and the measured Alg. 2
/// schedule after the PR 3 hoisting rework:
///
/// * SMult: the real evaluation skips zero LUT coefficients, so measured
///   SMult is ≤ `t − 1` but stays within a few counts of it (the LUT here
///   has nearly full support);
/// * CMult: the concrete Paterson–Stockmeyer split also pays CMults to
///   build the baby-power basis, so measured CMult lands between the
///   idealized `2√t` and `3√t`;
/// * HAdd: one add per nonzero coefficient plus cross-group adds — within
///   `[t − 8, t + 8]`.
///
/// These bounds pin the constants: a schedule regression (e.g. losing the
/// hoisted giant steps) would push CMult or SMult outside them.
#[cfg(feature = "op-stats")]
#[test]
fn trace_fbs_formula_vs_measured_fbs_drift_is_pinned() {
    use athena_core::pipeline::PipelineStats;
    use athena_fhe::fbs::Lut;
    use athena_fhe::lwe::LweCiphertext;
    use athena_math::stats::op_stats;

    let _lock = COUNTER_GUARD.lock().unwrap();
    let engine = AthenaEngine::new(BfvParams::test_small());
    let mut sampler = Sampler::from_seed(4_042);
    let (secrets, keys) = engine.keygen(&mut sampler);
    let mut stats = PipelineStats::default();
    let t = engine.context().t();

    // A ReLU-like remap LUT with nearly full support (only ~half the table
    // maps to 0, but the interpolated polynomial is dense).
    let a_max = 3i64;
    let lut = Lut::from_signed_fn(t, move |v| v.clamp(-a_max, a_max).max(0));
    let lwes: Vec<Option<LweCiphertext>> = (0..8u64)
        .map(|i| {
            Some(LweCiphertext::encrypt(
                (i * 3) % t,
                &secrets.lwe_sk,
                &mut sampler,
            ))
        })
        .collect();
    let packed = engine.pack(&lwes, &keys, &mut stats);
    let (_, hom) = op_stats::measure(|| engine.fbs(&packed, &lut, &lwes, &keys, &mut stats));

    let formula = {
        // trace.rs's closed form at t_eff = t (test scale has no headroom
        // to shrink the LUT).
        let bs = (t as f64).sqrt().ceil() as u64;
        (2 * bs, t, t) // (cmult, smult, hadd)
    };
    assert!(
        hom.smult <= formula.1 && hom.smult + 8 >= formula.1,
        "SMult drift out of pinned range: measured {} vs closed-form {}",
        hom.smult,
        formula.1
    );
    assert!(
        hom.cmult >= formula.0 && hom.cmult <= formula.0 * 3 / 2,
        "CMult drift out of pinned range: measured {} vs closed-form {} (2√t)",
        hom.cmult,
        formula.0
    );
    assert!(
        hom.hadd + 8 >= formula.2 && hom.hadd <= formula.2 + 8,
        "HAdd drift out of pinned range: measured {} vs closed-form {}",
        hom.hadd,
        formula.2
    );
}

/// The S2C factorization drift, documented and pinned: the executor runs a
/// *single-stage* slot-to-coefficient transform whose BSGS schedule costs
/// `rotation_count()` HRots, while `trace.rs` charges the production
/// `O(∛N)`-factored pipeline (`packed_cts·∛N` HRot per layer). Both are
/// internally consistent — the trace's own constant is smaller at test
/// scale, and this test pins the relationship so a change to either model
/// is caught.
#[test]
fn s2c_factorization_drift_is_documented() {
    let engine = AthenaEngine::new(BfvParams::test_small());
    let ctx = engine.context();
    let single_stage_hrot = engine.slot_to_coeff().rotation_count() as u64;
    let cbrt_n = (ctx.n() as f64).cbrt().ceil() as u64;
    // Single-stage BSGS: O(√N) rotations. Factored model: O(∛N) per stage.
    assert!(
        single_stage_hrot > cbrt_n,
        "single-stage S2C ({single_stage_hrot} HRot) should exceed the \
         factored model's per-ct constant ({cbrt_n})"
    );
    // And the plan's analytic S2C counts are exactly the transform's own
    // schedule — not the trace's production constant.
    let s2c_counts = engine.slot_to_coeff().op_counts();
    assert_eq!(s2c_counts.hrot, single_stage_hrot);
}

/// Per-step measured counts are thread-count invariant: the `op-stats`
/// counters are process-global relaxed atomics bumped from worker threads,
/// so a mis-scoped measurement window (or counter bumps escaping a step's
/// `measure()` bracket from still-running workers) would show up as counts
/// drifting between serial and parallel runs. Pins the serial run and a
/// 4-worker run of the same seeded plan to identical per-step counts —
/// the CI `ATHENA_THREADS={1,4}` matrix relies on this invariance.
#[cfg(feature = "op-stats")]
#[test]
fn per_step_counts_are_thread_count_invariant() {
    let _lock = COUNTER_GUARD.lock().unwrap();
    let model = conv_model();
    let input = ITensor::from_vec(&[1, 5, 5], (0..25).map(|i| ((i % 5) as i64) - 2).collect());
    let run_with = |threads: usize| {
        athena_math::par::set_threads(threads);
        let engine = AthenaEngine::with_packing(BfvParams::test_small(), PackingMethod::Bsgs);
        let compiled = plan::compile(&engine, &model, input.shape());
        let mut sampler = Sampler::from_seed(4_242);
        let (secrets, keys) = engine.keygen_for_plan(&compiled, &mut sampler);
        plan::execute(&engine, &secrets, &keys, &compiled, &input, &mut sampler)
    };
    let serial = run_with(1);
    let parallel = run_with(4);
    athena_math::par::set_threads(0);
    assert_eq!(serial.steps.len(), parallel.steps.len());
    for (s1, s4) in serial.steps.iter().zip(&parallel.steps) {
        assert_eq!(
            s1.measured, s4.measured,
            "node {} step {} ({}): counts drift between 1 and 4 threads",
            s1.node, s1.step, s1.label
        );
        assert_eq!(s1.analytic, s4.analytic);
    }
    assert_eq!(
        serial.logits, parallel.logits,
        "threading changed arithmetic"
    );
}
