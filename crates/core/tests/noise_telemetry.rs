//! Plan-derived noise accounting vs the measured invariant-noise budget.
//!
//! Mirrors `plan_counts.rs` for the noise dimension: the plan compiler
//! attaches an analytic Table-4 noise charge (`PlanStep::noise_bits`) to
//! every step, and the executor's probe mode samples the real
//! `BfvEvaluator::noise_budget` after every RLWE-producing step. This file
//! pins the contract between the two:
//!
//! * `analytic charge ≥ measured consumption` for every probed step, on
//!   both packing engines and across pooling and residual models — the
//!   analytic model is a true upper bound, never an underestimate;
//! * budgets decrease monotonically along every RLWE chain (fresh input →
//!   linear; pack → FBS → S2C → next linear);
//! * exhaustion is a typed `NoiseExhausted` error, not garbage logits:
//!   deliberately undersized parameters make a probed run fail at the
//!   step where the budget dies;
//! * probing changes nothing: logits are bit-identical with the probe on
//!   or off (the probe performs no homomorphic ops and no sampler draws).
//!
//! The probe reads `op-stats`-free code paths only, but the executor still
//! measures global counters around each step, so tests serialize on the
//! same counter mutex pattern as `plan_counts.rs`.

use std::sync::Mutex;

use athena_core::pipeline::{AthenaEngine, PackingMethod};
use athena_core::plan::{self, NoiseProbe, StepReport};
use athena_fhe::params::BfvParams;
use athena_math::sampler::Sampler;
use athena_nn::qmodel::{Activation, QLinear, QModel, QNode, QOp, QuantConfig};
use athena_nn::tensor::ITensor;

static COUNTER_GUARD: Mutex<()> = Mutex::new(());

fn linear_node(
    shape: &[usize],
    w: Vec<i64>,
    bias: Vec<i64>,
    is_fc: bool,
    input: usize,
    skip: Option<(usize, i64)>,
) -> QNode {
    QNode {
        op: QOp::Linear(QLinear {
            weight: ITensor::from_vec(shape, w),
            bias,
            stride: 1,
            padding: 0,
            is_fc,
            act: if is_fc {
                Activation::Identity
            } else {
                Activation::ReLU
            },
            in_scale: 0.5,
            w_scale: 0.5,
            out_scale: 1.0,
        }),
        input,
        skip,
    }
}

/// conv 1→2 3×3 on 5×5 + FC 18→3 (the tier-1 reference shape).
fn conv_model() -> QModel {
    let conv_w: Vec<i64> = (0..2 * 9).map(|i| ((i % 5) as i64) - 2).collect();
    let fc_w: Vec<i64> = (0..3 * 18).map(|i| ((i % 3) as i64) - 1).collect();
    QModel {
        nodes: vec![
            linear_node(&[2, 1, 3, 3], conv_w, vec![1, -2], false, 0, None),
            linear_node(&[3, 18, 1, 1], fc_w, vec![0, 1, -1], true, 1, None),
        ],
        input_scale: 0.5,
        cfg: QuantConfig::new(3, 3),
    }
}

/// conv 1→2 3×3 on 5×5 + MaxPool 2 (on 3×3 → 1×1... use 4×4 conv out) —
/// conv on 6×6 gives 4×4, pooled to 2×2 — then FC 8→2.
fn pool_model() -> QModel {
    let conv_w: Vec<i64> = (0..2 * 9).map(|i| ((i % 3) as i64) - 1).collect();
    let fc_w: Vec<i64> = (0..2 * 8).map(|i| ((i % 3) as i64) - 1).collect();
    QModel {
        nodes: vec![
            linear_node(&[2, 1, 3, 3], conv_w, vec![1, 0], false, 0, None),
            QNode {
                op: QOp::MaxPool { k: 2 },
                input: 1,
                skip: None,
            },
            linear_node(&[2, 8, 1, 1], fc_w, vec![0, 0], true, 2, None),
        ],
        input_scale: 0.5,
        cfg: QuantConfig::new(3, 3),
    }
}

/// Two padded 1→1 convs (shape-preserving, as residual blocks are) with a
/// skip from the first activation into the second linear layer, then FC.
fn residual_model() -> QModel {
    let c1: Vec<i64> = vec![1, 0, -1, 0, 1, 0, -1, 0, 1];
    let c2: Vec<i64> = vec![0, 1, 0, 1, -1, 1, 0, 1, 0];
    let fc_w: Vec<i64> = (0..3 * 25).map(|i| ((i % 3) as i64) - 1).collect();
    let mut conv1 = linear_node(&[1, 1, 3, 3], c1, vec![1], false, 0, None);
    let mut conv2 = linear_node(&[1, 1, 3, 3], c2, vec![0], false, 1, Some((1, 1)));
    for node in [&mut conv1, &mut conv2] {
        if let QOp::Linear(l) = &mut node.op {
            l.padding = 1;
        }
    }
    QModel {
        nodes: vec![
            conv1,
            conv2,
            linear_node(&[3, 25, 1, 1], fc_w, vec![1, 0, -1], true, 2, None),
        ],
        input_scale: 0.5,
        cfg: QuantConfig::new(3, 3),
    }
}

fn run_probed(
    model: &QModel,
    in_shape: &[usize],
    method: PackingMethod,
    seed: u64,
) -> plan::PlanRun {
    let len: usize = in_shape.iter().product();
    let input = ITensor::from_vec(in_shape, (0..len).map(|i| ((i % 5) as i64) - 2).collect());
    let engine = AthenaEngine::with_packing(BfvParams::test_small(), method);
    let compiled = plan::compile(&engine, model, in_shape);
    let mut sampler = Sampler::from_seed(seed);
    let (secrets, keys) = engine.keygen_for_plan(&compiled, &mut sampler);
    plan::execute_probed(
        &engine,
        &secrets,
        &keys,
        &compiled,
        &input,
        &mut sampler,
        NoiseProbe::On,
    )
    .expect("test_small has ample budget")
}

fn assert_telemetry_contract(run: &plan::PlanRun, tag: &str) {
    let fresh = run.fresh_budget.expect("probe records fresh budget");
    assert!(fresh > 0, "{tag}: fresh budget must be positive");
    let probed: Vec<&StepReport> = run
        .steps
        .iter()
        .filter(|s| s.noise_budget.is_some())
        .collect();
    assert!(!probed.is_empty(), "{tag}: no step was probed");
    for s in &run.steps {
        let rlwe_step = matches!(s.label, "linear" | "pack" | "fbs" | "s2c");
        assert_eq!(
            s.noise_budget.is_some(),
            rlwe_step,
            "{tag}: node {} step {} ({}): probe presence wrong",
            s.node,
            s.step,
            s.label
        );
        if let (Some(b), Some(c)) = (s.noise_budget, s.noise_consumed) {
            assert!(
                b > 0,
                "{tag}: node {} step {} ({}): budget exhausted ({b})",
                s.node,
                s.step,
                s.label
            );
            assert!(
                c >= 0,
                "{tag}: node {} step {} ({}): budget grew ({c} consumed)",
                s.node,
                s.step,
                s.label
            );
            assert!(
                i64::from(s.noise_bits) >= c,
                "{tag}: node {} step {} ({}): analytic charge {} < measured consumption {c}",
                s.node,
                s.step,
                s.label,
                s.noise_bits
            );
        }
        if s.noise_budget.is_some() {
            assert!(
                s.noise_bits > 0,
                "{tag}: RLWE step {} charges no noise",
                s.label
            );
            assert!(
                s.noise_consumed.is_some(),
                "{tag}: probed step {} has no consumption baseline",
                s.label
            );
        }
    }
    // Chain monotonicity: every probed budget sits strictly below the
    // fresh baseline, and pack → fbs → s2c budgets never grow along the
    // chain (the bit measure is coarse, so equality is legitimate — e.g.
    // two consecutive outputs both pinned to the key-switch noise floor).
    for s in &probed {
        assert!(
            s.noise_budget.unwrap() < fresh,
            "{tag}: step {} budget did not decrease from fresh",
            s.label
        );
    }
    let mut chain_prev: Option<i64> = None;
    for s in &run.steps {
        match s.label {
            "pack" => chain_prev = s.noise_budget,
            "fbs" | "s2c" => {
                if let (Some(prev), Some(b)) = (chain_prev, s.noise_budget) {
                    assert!(
                        b <= prev,
                        "{tag}: {} budget {b} grew along the chain ({prev})",
                        s.label
                    );
                    chain_prev = Some(b);
                }
            }
            _ => {}
        }
    }
}

/// The central pin: for every step of every test-model plan, on both
/// packing engines, pooling and residual included, the analytic Table-4
/// charge bounds the measured consumption and budgets shrink
/// monotonically along each RLWE chain.
#[test]
fn analytic_noise_charge_covers_measured_consumption() {
    let _lock = COUNTER_GUARD.lock().unwrap();
    for method in [PackingMethod::Column, PackingMethod::Bsgs] {
        let run = run_probed(&conv_model(), &[1, 5, 5], method, 5_050);
        assert_telemetry_contract(&run, &format!("conv/{method:?}"));
        let run = run_probed(&pool_model(), &[1, 6, 6], method, 5_051);
        assert_telemetry_contract(&run, &format!("pool/{method:?}"));
        let run = run_probed(&residual_model(), &[1, 5, 5], method, 5_052);
        assert_telemetry_contract(&run, &format!("residual/{method:?}"));
    }
}

/// Probing is observation only: logits bit-identical with the probe on or
/// off, and the probed run's reports carry exactly the plan's charges.
#[test]
fn probe_mode_is_pure_observation() {
    let _lock = COUNTER_GUARD.lock().unwrap();
    let model = conv_model();
    let input = ITensor::from_vec(&[1, 5, 5], (0..25).map(|i| ((i % 5) as i64) - 2).collect());
    let engine = AthenaEngine::new(BfvParams::test_small());
    let compiled = plan::compile(&engine, &model, input.shape());

    let mut s1 = Sampler::from_seed(6_060);
    let (sec1, keys1) = engine.keygen_for_plan(&compiled, &mut s1);
    let plain = plan::execute(&engine, &sec1, &keys1, &compiled, &input, &mut s1);

    let mut s2 = Sampler::from_seed(6_060);
    let (sec2, keys2) = engine.keygen_for_plan(&compiled, &mut s2);
    let probed = plan::execute_probed(
        &engine,
        &sec2,
        &keys2,
        &compiled,
        &input,
        &mut s2,
        NoiseProbe::On,
    )
    .expect("ample budget");

    assert_eq!(plain.logits, probed.logits, "probe changed the arithmetic");
    assert!(plain.fresh_budget.is_none() && plain.steps.iter().all(|s| s.noise_budget.is_none()));
    let plan_charges: Vec<u32> = compiled
        .layers
        .iter()
        .flat_map(|l| l.steps.iter().map(|s| s.noise_bits))
        .collect();
    let report_charges: Vec<u32> = probed.steps.iter().map(|s| s.noise_bits).collect();
    assert_eq!(plan_charges, report_charges);
}

/// Exhaustion is typed, not silent: with a deliberately tiny modulus chain
/// (two 50-bit limbs — far below what the FBS depth needs) the probed run
/// must return `NoiseExhausted` at the step whose output died, instead of
/// completing and decrypting garbage.
#[test]
fn exhaustion_surfaces_as_typed_error() {
    let _lock = COUNTER_GUARD.lock().unwrap();
    let params = BfvParams {
        q_primes: athena_math::prime::ntt_primes(50, 128, 2),
        ..BfvParams::test_small()
    };
    params.validate();
    let model = conv_model();
    let input = ITensor::from_vec(&[1, 5, 5], (0..25).map(|i| ((i % 5) as i64) - 2).collect());
    let engine = AthenaEngine::new(params);
    let compiled = plan::compile(&engine, &model, input.shape());
    let mut sampler = Sampler::from_seed(7_070);
    let (secrets, keys) = engine.keygen_for_plan(&compiled, &mut sampler);
    let err = plan::execute_probed(
        &engine,
        &secrets,
        &keys,
        &compiled,
        &input,
        &mut sampler,
        NoiseProbe::On,
    )
    .expect_err("100-bit Q cannot survive a depth-9 FBS");
    assert!(
        err.budget <= 0,
        "exhaustion error carries a positive budget: {err}"
    );
    // The FBS chain is where the depth lives; the budget must die inside
    // the RLWE tail, not at a step that cannot even be probed.
    assert!(
        matches!(err.label, "pack" | "fbs" | "s2c" | "linear"),
        "exhaustion at unprobeable step: {err}"
    );
    let msg = err.to_string();
    assert!(msg.contains("noise budget exhausted"), "display: {msg}");
    // Ergonomics: the error carries the analytic-vs-measured gap when the
    // dying step had a measured consumption.
    if let Some(gap) = err.budget_gap() {
        let consumed = err.consumed.expect("gap implies a measurement");
        assert_eq!(gap, i64::from(err.analytic_bits) - consumed);
    }
}

/// The compile-time guardrail: an engine with a noise margin rejects a
/// plan whose worst analytic chain cannot fit the parameter headroom,
/// returning the typed [`plan::CompileError::NoiseBudget`] before any key
/// or ciphertext work. The guardrail is opt-in (default `None`) because
/// the analytic chain charge is deliberately conservative — the default
/// engine must keep compiling models whose real runs fit fine.
#[test]
fn noise_margin_guardrail_rejects_at_compile_time() {
    let model = conv_model();
    let engine = AthenaEngine::new(BfvParams::test_small());
    plan::try_compile(&engine, &model, &[1, 5, 5]).expect("guardrail is opt-in");

    let engine = AthenaEngine::new(BfvParams::test_small()).with_noise_margin(Some(10_000));
    let err = plan::try_compile(&engine, &model, &[1, 5, 5])
        .expect_err("a 10k-bit margin cannot fit any parameter set");
    match err {
        plan::CompileError::NoiseBudget {
            chain_bits,
            budget_bits,
            margin,
        } => {
            assert_eq!(margin, 10_000);
            assert!(budget_bits > 0, "headroom must be reported");
            assert!(
                chain_bits.saturating_add(margin) > budget_bits,
                "rejection arithmetic must hold: {chain_bits} + {margin} vs {budget_bits}"
            );
        }
        other => panic!("expected NoiseBudget, got {other:?}"),
    }
}
