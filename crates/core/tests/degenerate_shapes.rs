//! Degenerate-shape coverage: 1×1 convolutions (with and without
//! padding), output-channel counts that do not divide the packing group
//! split, and single-layer models — each run through all four
//! differential oracles (plain reference, fast sim, plan sim, real
//! encryption at reduced parameters) via the fuzz harness.

use athena_core::fuzz::{run_case, CaseParams, FuzzCase, OracleCtx};
use athena_core::pipeline::PackingMethod;
use athena_nn::qmodel::{Activation, QLinear, QModel, QNode, QOp, QuantConfig};
use athena_nn::tensor::ITensor;

fn params(packing: PackingMethod) -> CaseParams {
    CaseParams {
        n: 64,
        lwe_n: 16,
        ks_base_log: 4,
        packing,
    }
}

fn conv(
    weight: ITensor,
    bias: Vec<i64>,
    stride: usize,
    padding: usize,
    act: Activation,
    input: usize,
) -> QNode {
    QNode {
        op: QOp::Linear(QLinear {
            weight,
            bias,
            stride,
            padding,
            is_fc: false,
            act,
            in_scale: 0.5,
            w_scale: 0.5,
            out_scale: 1.0,
        }),
        input,
        skip: None,
    }
}

fn check(name: &str, model: QModel, input: ITensor, packing: PackingMethod) {
    let case = FuzzCase {
        seed: 0,
        params: params(packing),
        model,
        input,
    };
    let mut ctx = OracleCtx::new();
    if let Err(failure) = run_case(&mut ctx, &case, true) {
        panic!("{name} ({packing:?}): {failure}");
    }
}

/// A 1×1 convolution is a pure per-pixel channel mix; the coefficient
/// encoding degenerates to kernel taps with no spatial extent.
#[test]
fn one_by_one_conv_all_oracles() {
    for packing in [PackingMethod::Column, PackingMethod::Bsgs] {
        let model = QModel {
            nodes: vec![
                conv(
                    ITensor::from_vec(&[2, 2, 1, 1], vec![1, -2, 2, 1]),
                    vec![1, -1],
                    1,
                    0,
                    Activation::ReLU,
                    0,
                ),
                conv(
                    ITensor::from_vec(&[1, 2, 1, 1], vec![2, -1]),
                    vec![0],
                    1,
                    0,
                    Activation::Identity,
                    1,
                ),
            ],
            input_scale: 0.5,
            cfg: QuantConfig::new(3, 3),
        };
        let input = ITensor::from_vec(&[2, 3, 3], (0..18).map(|i| (i % 5) - 2).collect());
        check("1x1 conv chain", model, input, packing);
    }
}

/// A 1×1 kernel with padding 1: every border output sees only the
/// zero-padding, so the layer *grows* the spatial extent — a planner
/// layout edge case.
#[test]
fn one_by_one_conv_with_padding_grows_output() {
    let model = QModel {
        nodes: vec![conv(
            ITensor::from_vec(&[1, 1, 1, 1], vec![2]),
            vec![1],
            1,
            1,
            Activation::Identity,
            0,
        )],
        input_scale: 1.0,
        cfg: QuantConfig::new(3, 3),
    };
    // Reference: output is 5×5 with the 3×3 input centered.
    let input = ITensor::from_vec(&[1, 3, 3], (0..9).map(|i| (i % 3) - 1).collect());
    let logits = model.forward(&input);
    assert_eq!(logits.len(), 25, "padding must grow 3×3 to 5×5");
    check("1x1 conv pad 1", model, input, PackingMethod::Column);
}

/// `c_out = 3` at a ring degree where only 2 output channels fit per
/// group: the planner must split 2 + 1 (non-dividing), and the tail
/// group's partial fill must still place every output and bias.
#[test]
fn non_dividing_output_channel_split() {
    for packing in [PackingMethod::Column, PackingMethod::Bsgs] {
        let w: Vec<i64> = (0..3)
            .flat_map(|co| vec![1 + co as i64, -1, 0, 2])
            .collect();
        let model = QModel {
            nodes: vec![conv(
                ITensor::from_vec(&[3, 1, 2, 2], w.clone()),
                vec![1, 0, -2],
                1,
                0,
                Activation::Identity,
                0,
            )],
            input_scale: 0.5,
            cfg: QuantConfig::new(3, 3),
        };
        // n = 64, input 5×5 (hw = 25): co_g = 3 needs 25·2 + 2·5+1 + 25 > 64,
        // so the planner halves to co_g = 2 → groups of 2 and 1.
        let input = ITensor::from_vec(&[1, 5, 5], (0..25).map(|i| (i % 5) - 2).collect());
        check("non-dividing channel split", model, input, packing);
    }
}

/// Single-node models: one conv, one FC — the plan has exactly one
/// linear layer ending in `Output`, no FBS chain at all.
#[test]
fn single_layer_models_all_oracles() {
    let conv_model = QModel {
        nodes: vec![conv(
            ITensor::from_vec(&[2, 1, 2, 2], vec![1, -1, 2, 0, -2, 1, 1, 1]),
            vec![0, 3],
            1,
            0,
            Activation::Identity,
            0,
        )],
        input_scale: 1.0,
        cfg: QuantConfig::new(3, 3),
    };
    let input = ITensor::from_vec(&[1, 4, 4], (0..16).map(|i| (i % 4) - 1).collect());
    check("single conv", conv_model, input, PackingMethod::Column);

    let fc_model = QModel {
        nodes: vec![QNode {
            op: QOp::Linear(QLinear {
                weight: ITensor::from_vec(&[2, 9, 1, 1], (0..18).map(|i| (i % 3) - 1).collect()),
                bias: vec![1, -1],
                stride: 1,
                padding: 0,
                is_fc: true,
                act: Activation::Identity,
                in_scale: 0.5,
                w_scale: 0.5,
                out_scale: 1.0,
            }),
            input: 0,
            skip: None,
        }],
        input_scale: 0.5,
        cfg: QuantConfig::new(3, 3),
    };
    let input = ITensor::from_vec(&[1, 3, 3], (0..9).map(|i| (i % 3) - 1).collect());
    check("single fc", fc_model, input, PackingMethod::Bsgs);
}

/// Stride 2 over an even extent leaves a dangling input column/row
/// (5 = 2·2+1 taps at positions 0, 2 — position 4 unused by row 3);
/// the planner's position mapping must skip it exactly like the
/// reference.
#[test]
fn stride_two_with_dangling_tail() {
    let model = QModel {
        nodes: vec![conv(
            ITensor::from_vec(&[1, 1, 2, 2], vec![1, -1, -1, 1]),
            vec![0],
            2,
            0,
            Activation::Identity,
            0,
        )],
        input_scale: 1.0,
        cfg: QuantConfig::new(3, 3),
    };
    let input = ITensor::from_vec(&[1, 5, 5], (0..25).map(|i| (i % 3) - 1).collect());
    assert_eq!(model.forward(&input).len(), 4, "stride-2 5×5 → 2×2");
    check(
        "stride-2 dangling tail",
        model,
        input,
        PackingMethod::Column,
    );
}
