//! Chaos suite for the resilient serving path: every injectable fault at
//! every step index surfaces as a typed [`AthenaError`] — never a raw
//! panic — and the next clean run on the same session is bit-identical
//! to a session that never faulted (the arena-quarantine contract), at
//! both `ATHENA_THREADS` legs.
//!
//! The arena and its counters are process-global, so every test in this
//! binary serializes behind one lock.

use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use athena_core::fuzz::{run_chaos, ChaosConfig};
use athena_core::pipeline::AthenaEngine;
use athena_core::plan::{
    AthenaError, FaultKind, FaultPlan, FaultSpec, InferenceSession, RetryPolicy, RunPolicy,
};
use athena_fhe::params::BfvParams;
use athena_math::par;
use athena_math::sampler::Sampler;
use athena_nn::qmodel::{Activation, QLinear, QModel, QNode, QOp, QuantConfig};
use athena_nn::tensor::ITensor;

fn lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|p| p.into_inner())
}

/// A tiny conv+FC model; `w0` perturbs one conv weight so distinct models
/// hash to distinct cache keys.
fn model_with(w0: i64) -> QModel {
    let mut conv_w: Vec<i64> = (0..2 * 9).map(|i| ((i % 5) as i64) - 2).collect();
    conv_w[0] = w0;
    let fc_w: Vec<i64> = (0..3 * 18).map(|i| ((i % 3) as i64) - 1).collect();
    QModel {
        nodes: vec![
            QNode {
                op: QOp::Linear(QLinear {
                    weight: ITensor::from_vec(&[2, 1, 3, 3], conv_w),
                    bias: vec![1, -2],
                    stride: 1,
                    padding: 0,
                    is_fc: false,
                    act: Activation::ReLU,
                    in_scale: 0.5,
                    w_scale: 0.5,
                    out_scale: 1.0,
                }),
                input: 0,
                skip: None,
            },
            QNode {
                op: QOp::Linear(QLinear {
                    weight: ITensor::from_vec(&[3, 18, 1, 1], fc_w),
                    bias: vec![0, 1, -1],
                    stride: 1,
                    padding: 0,
                    is_fc: true,
                    act: Activation::Identity,
                    in_scale: 1.0,
                    w_scale: 0.5,
                    out_scale: 1.0,
                }),
                input: 1,
                skip: None,
            },
        ],
        input_scale: 0.5,
        cfg: QuantConfig::new(3, 3),
    }
}

fn input(k: usize) -> ITensor {
    ITensor::from_vec(
        &[1, 5, 5],
        (0..25).map(|i| ((i + k) % 5) as i64 - 2).collect(),
    )
}

fn session() -> InferenceSession {
    InferenceSession::new(AthenaEngine::new(BfvParams::test_small()), 4, 42)
}

/// The acceptance invariant, exhaustively: a panic injected at *every*
/// flat step index comes back as [`AthenaError::StepPanicked`] naming the
/// right step, and a clean run right after on the *same* session is
/// bit-identical to a never-faulted twin — at 1 and 4 workers.
#[test]
fn panic_at_every_step_surfaces_typed_and_recovers() {
    let _g = lock();
    let model = model_with(-2);
    for threads in [1usize, 4] {
        par::set_threads(threads);
        // The never-faulted twin (same key seed, same request sampler).
        let clean_logits = {
            let mut twin = session();
            let mut sampler = Sampler::from_seed(9_999);
            twin.run_encrypted(&model, &input(0), &mut sampler)
                .expect("twin clean run")
                .logits
        };

        let mut chaotic = session();
        let plan = chaotic.plan_for(&model, &[1, 5, 5]);
        // (flat index → (node, step-in-node, label)) for the assertion.
        let flat_steps: Vec<(usize, usize, &'static str)> = plan
            .layers
            .iter()
            .flat_map(|l| {
                l.steps
                    .iter()
                    .enumerate()
                    .map(|(si, s)| (l.node, si, s.op.label()))
            })
            .collect();
        drop(plan);

        for (k, &(node, si, label)) in flat_steps.iter().enumerate() {
            let policy = RunPolicy::default().with_faults(FaultPlan::panic_at(k));
            let mut sampler = Sampler::from_seed(1_000 + k as u64);
            let err = chaotic
                .run_encrypted_with(&model, &input(0), &mut sampler, &policy)
                .expect_err("the injected panic must fail the request");
            match err {
                AthenaError::StepPanicked {
                    node: n,
                    step: s,
                    label: l,
                    payload,
                } => {
                    assert_eq!(
                        (n, s, l),
                        (node, si, label),
                        "flat step {k}: wrong attribution"
                    );
                    assert!(payload.contains("injected fault"), "payload: {payload}");
                }
                other => panic!("flat step {k}: expected StepPanicked, got {other:?}"),
            }

            let mut sampler = Sampler::from_seed(9_999);
            let recovered = chaotic
                .run_encrypted(&model, &input(0), &mut sampler)
                .expect("clean run after fault");
            assert_eq!(
                recovered.logits, clean_logits,
                "flat step {k} at {threads} threads: the faulted attempt leaked state"
            );
        }
        par::set_threads(0);
    }
}

/// After a faulted (quarantined) attempt the pool is empty — the next run
/// refills it (fresh checkouts), and the one after is warm again. The
/// quarantine trades one cold run for the guarantee that nothing the
/// faulted attempt touched is ever recycled.
#[cfg(feature = "alloc-stats")]
#[test]
fn quarantine_costs_one_cold_run_then_warms() {
    use athena_math::stats::alloc_stats;
    let _g = lock();
    let model = model_with(-2);
    let mut chaotic = session();
    let mut sampler = Sampler::from_seed(555);
    chaotic
        .run_encrypted(&model, &input(0), &mut sampler)
        .expect("warm-up run");

    let policy = RunPolicy::default().with_faults(FaultPlan::panic_at(3));
    chaotic
        .run_encrypted_with(&model, &input(0), &mut sampler, &policy)
        .expect_err("fault fires");

    let (first, cold) =
        alloc_stats::measure(|| chaotic.run_encrypted(&model, &input(0), &mut sampler));
    first.expect("first run after quarantine");
    assert!(
        cold.fresh > 0,
        "the quarantined pool must be refilled, not recycled"
    );
    let (second, warm) =
        alloc_stats::measure(|| chaotic.run_encrypted(&model, &input(0), &mut sampler));
    second.expect("second run after quarantine");
    assert_eq!(warm.fresh, 0, "steady state must return after one refill");
}

/// One faulted batch item never poisons its neighbors: item 1 fails typed,
/// items 0 and 2 stay bit-identical to an unfaulted batch — the
/// regression test for `run_batch` routing workers through the same
/// quarantine path as single requests.
#[test]
fn batch_item_fault_is_isolated() {
    let _g = lock();
    let model = model_with(-2);
    let imgs: Vec<ITensor> = (0..3).map(input).collect();

    for threads in [1usize, 4] {
        par::set_threads(threads);
        let clean: Vec<Vec<f64>> = {
            let mut twin = session();
            let mut sampler = Sampler::from_seed(555);
            twin.run_batch(&model, &imgs, &mut sampler)
                .expect("twin batch")
                .into_iter()
                .map(|r| r.expect("twin item").logits)
                .collect()
        };

        let mut chaotic = session();
        let mut sampler = Sampler::from_seed(555);
        let faults = FaultPlan::new(0, vec![FaultSpec::at(2, FaultKind::Panic).on_input(1)]);
        let policy = RunPolicy::default().with_faults(faults);
        let batch = chaotic
            .run_batch_with(&model, &imgs, &mut sampler, &policy)
            .expect("whole-batch result");
        par::set_threads(0);

        assert!(
            matches!(batch[1], Err(AthenaError::StepPanicked { .. })),
            "item 1 must fail typed, got {:?}",
            batch[1]
        );
        for i in [0usize, 2] {
            let item = batch[i].as_ref().expect("unfaulted item");
            assert_eq!(
                item.logits, clean[i],
                "item {i} at {threads} threads diverged next to a faulted neighbor"
            );
        }
    }
}

/// A zero deadline fails fast — before the first step — with the typed
/// error naming it. (Zero is the only portably deterministic deadline in
/// a debug build; positive deadlines are covered by the slow-step chaos
/// dimension.)
#[test]
fn zero_deadline_fails_fast_and_typed() {
    let _g = lock();
    let mut s = session();
    let mut sampler = Sampler::from_seed(1);
    let policy = RunPolicy::default().with_deadline(Duration::ZERO);
    let err = s
        .run_encrypted_with(&model_with(-2), &input(0), &mut sampler, &policy)
        .expect_err("a zero deadline cannot be met");
    match err {
        AthenaError::DeadlineExceeded { step, deadline, .. } => {
            assert_eq!(step, 0, "must trip before the first step");
            assert_eq!(deadline, Duration::ZERO);
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
}

/// A transient fault (panic on attempt 1 only) succeeds under a 2-attempt
/// retry policy; the retry re-encrypts with a fresh sampler fork.
#[test]
fn transient_fault_retries_to_success() {
    let _g = lock();
    let mut s = session();
    let mut sampler = Sampler::from_seed(7);
    let faults = FaultPlan::new(0, vec![FaultSpec::at(2, FaultKind::Panic).on_attempt(1)]);
    let policy = RunPolicy::default()
        .with_faults(faults)
        .with_retry(RetryPolicy {
            max_attempts: 2,
            backoff: Duration::ZERO,
        });
    let inf = s
        .run_encrypted_with(&model_with(-2), &input(0), &mut sampler, &policy)
        .expect("the retry must recover the transient fault");
    assert_eq!(inf.logits.len(), 3);
}

/// A deterministic fault is never retried, even with attempts to spare: a
/// noise spike scoped to attempt 1 would vanish on attempt 2, but noise
/// exhaustion fails fast — so the request must come back exhausted.
#[test]
fn deterministic_fault_is_not_retried() {
    let _g = lock();
    let mut s = session();
    let mut sampler = Sampler::from_seed(7);
    let faults = FaultPlan::new(
        0,
        vec![FaultSpec::at(2, FaultKind::NoiseSpike { bits: 60_000 }).on_attempt(1)],
    );
    let policy = RunPolicy::default()
        .with_faults(faults)
        .with_retry(RetryPolicy {
            max_attempts: 3,
            backoff: Duration::ZERO,
        });
    let err = s
        .run_encrypted_with(&model_with(-2), &input(0), &mut sampler, &policy)
        .expect_err("noise exhaustion is deterministic and must fail fast");
    assert_eq!(err.kind(), "noise-exhausted");
    assert!(!err.is_transient());
}

/// A noise spike surfaces as typed exhaustion at any step index — spikes
/// injected below the RLWE layer carry forward to the next probe point,
/// and one past the last probe is charged against the fresh baseline.
#[test]
fn noise_spike_surfaces_as_exhaustion_at_every_step() {
    let _g = lock();
    let model = model_with(-2);
    let mut s = session();
    let step_count = s.plan_for(&model, &[1, 5, 5]).step_count();
    for k in 0..step_count {
        let faults = FaultPlan::new(
            0,
            vec![FaultSpec::at(k, FaultKind::NoiseSpike { bits: 60_000 })],
        );
        let policy = RunPolicy::default().with_faults(faults);
        let mut sampler = Sampler::from_seed(100 + k as u64);
        let err = s
            .run_encrypted_with(&model, &input(0), &mut sampler, &policy)
            .expect_err("a 60k-bit spike dwarfs any budget");
        match err {
            AthenaError::NoiseExhausted(ne) => {
                assert!(ne.budget <= 0, "step {k}: budget {}", ne.budget);
            }
            other => panic!("step {k}: expected NoiseExhausted, got {other:?}"),
        }
    }
}

/// A corrupted limb makes the CRT residues inconsistent; under probing the
/// measured budget collapses and the request fails typed, not garbled.
#[test]
fn corrupt_limb_is_caught_by_the_probe() {
    let _g = lock();
    let mut s = session();
    let mut sampler = Sampler::from_seed(11);
    let faults = FaultPlan::new(3, vec![FaultSpec::at(0, FaultKind::CorruptLimb)]);
    let policy = RunPolicy::default().with_probe().with_faults(faults);
    let err = s
        .run_encrypted_with(&model_with(-2), &input(0), &mut sampler, &policy)
        .expect_err("corruption must collapse the measured budget");
    assert_eq!(err.kind(), "noise-exhausted", "got {err:?}");
}

/// A panic caught while a poisoned shard lock was recovered is reported
/// as [`AthenaError::PoolPoisoned`] — the pool itself was implicated, not
/// just the one step.
#[test]
fn poisoned_shard_lock_reports_pool_poisoned() {
    let _g = lock();
    let mut s = session();
    // Compile + keygen first (both touch the arena): the poison must be
    // in place during the *attempt*, not recovered by setup work.
    s.plan_for(&model_with(-2), &[1, 5, 5]);
    athena_math::arena::poison_shard_lock_for_test(0);
    let mut sampler = Sampler::from_seed(13);
    let policy = RunPolicy::default().with_faults(FaultPlan::panic_at(1));
    let err = s
        .run_encrypted_with(&model_with(-2), &input(0), &mut sampler, &policy)
        .expect_err("fault fires");
    match err {
        AthenaError::PoolPoisoned { recoveries, .. } => {
            assert!(recoveries > 0);
        }
        other => panic!("expected PoolPoisoned, got {other:?}"),
    }
    // The pool recovered: a clean run succeeds.
    let mut sampler = Sampler::from_seed(13);
    s.run_encrypted(&model_with(-2), &input(0), &mut sampler)
        .expect("pool must have recovered");
}

/// The seeded chaos sweep over the fuzz model zoo: random models, random
/// faults, typed errors and bit-identical recovery throughout.
#[test]
fn seeded_chaos_sweep_is_clean() {
    let _g = lock();
    let report = run_chaos(&ChaosConfig {
        seed: 77_000_000,
        cases: 8,
    })
    .unwrap_or_else(|failure| panic!("{failure}"));
    assert_eq!(report.cases, 8);
    assert_eq!(report.typed_errors + report.clean_passes, 8);
}
