//! Fixed-seed differential-fuzzing smoke legs (CI tier-1, both
//! `ATHENA_THREADS` legs). A failure prints the failing seed and the
//! minimized case in the corpus text format — copy it into
//! `tests/fuzz_corpus/` once fixed to pin it forever.

use athena_core::fuzz::{corpus, run_fuzz, FuzzConfig, FuzzReport};

fn sweep(cfg: &FuzzConfig) -> FuzzReport {
    match run_fuzz(cfg) {
        Ok(report) => report,
        Err(failure) => panic!(
            "{failure}\nreproduce with seed {}; minimized case:\n{}",
            failure.case.seed,
            corpus::to_text(&failure.case)
        ),
    }
}

/// 256 seeded cases through the three plaintext oracles (plain reference,
/// fast sim at σ = 0, plan-driven sim at σ = 0 — both bit-equal). Cheap:
/// no ciphertext work.
#[test]
fn fixed_seed_sweep_plaintext_oracles() {
    let report = sweep(&FuzzConfig {
        seed: 1_000_000,
        cases: 256,
        encrypted: false,
    });
    assert_eq!(report.cases, 256);
    // The zoo must actually cover the op mix, not degenerate to FC chains.
    assert!(report.op_counts[0] > 0, "no conv coverage");
    assert!(report.op_counts[1] > 0, "no fc coverage");
    assert!(report.op_counts[2] > 0, "no maxpool coverage");
    assert!(report.op_counts[3] > 0, "no avgpool coverage");
    assert!(report.op_counts[4] > 0, "no residual coverage");
    assert!(
        report.packing_counts[0] > 0 && report.packing_counts[1] > 0,
        "both packing methods must be exercised"
    );
}

/// A slice of the sweep through all four oracles, real encryption
/// included. The full 400-case encrypted sweep runs as `report_fuzz`
/// (release) in CI; this leg keeps the suite itself honest.
#[test]
fn fixed_seed_sweep_all_oracles() {
    let report = sweep(&FuzzConfig {
        seed: 20_260_808,
        cases: 12,
        encrypted: true,
    });
    assert_eq!(report.encrypted_runs, 12);
    assert!(
        report.max_encrypted_dev <= report.tolerance_at_max || report.encrypted_runs == 0,
        "deviation {} above tolerance {}",
        report.max_encrypted_dev,
        report.tolerance_at_max
    );
}
