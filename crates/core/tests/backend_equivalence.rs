//! Cross-backend equivalence over the same compiled plan.
//!
//! One generic interpreter drives every backend, so the three views of a
//! model must cohere:
//!
//! * `NoiseSimBackend` at σ = 0 is **exactly** the plain-Q integer
//!   reference (`QModel::forward`) on every zoo model — the simulated
//!   pipeline is certified against the plan, not a parallel
//!   reimplementation;
//! * the legacy fast path (`simulate_inference`, which walks the model
//!   directly) equals the plan-driven simulation at σ = 0;
//! * `EncryptedBackend` logits stay within the propagated `e_ms` bound of
//!   the noise-free simulation on conv / pool / residual models under
//!   both packing strategies.
//!
//! The zoo uses power-of-two scales, so the final dequantization
//! (`acc · in_scale · w_scale`) is exact in `f64` and the σ = 0
//! comparisons can demand bit equality.

use athena_core::pipeline::{AthenaEngine, PackingMethod};
use athena_core::simulate::{simulate_inference, simulate_inference_planned, NoiseSpec};
use athena_core::{infer, plan};
use athena_fhe::params::BfvParams;
use athena_math::sampler::Sampler;
use athena_nn::qmodel::{Activation, QLinear, QModel, QNode, QOp, QuantConfig};
use athena_nn::tensor::ITensor;

fn conv(weight: Vec<i64>, shape: &[usize], bias: Vec<i64>, padding: usize, act: Activation) -> QOp {
    QOp::Linear(QLinear {
        weight: ITensor::from_vec(shape, weight),
        bias,
        stride: 1,
        padding,
        is_fc: false,
        act,
        in_scale: 1.0,
        w_scale: 0.5,
        out_scale: 1.0,
    })
}

fn fc(weight: Vec<i64>, shape: &[usize], bias: Vec<i64>) -> QOp {
    QOp::Linear(QLinear {
        weight: ITensor::from_vec(shape, weight),
        bias,
        stride: 1,
        padding: 0,
        is_fc: true,
        act: Activation::Identity,
        in_scale: 1.0,
        w_scale: 0.5,
        out_scale: 1.0,
    })
}

fn conv_fc_model() -> (QModel, ITensor) {
    let conv_w: Vec<i64> = (0..2 * 9).map(|i| ((i % 5) as i64) - 2).collect();
    let fc_w: Vec<i64> = (0..3 * 18).map(|i| ((i % 3) as i64) - 1).collect();
    let model = QModel {
        nodes: vec![
            QNode {
                op: conv(conv_w, &[2, 1, 3, 3], vec![1, -2], 0, Activation::ReLU),
                input: 0,
                skip: None,
            },
            QNode {
                op: fc(fc_w, &[3, 18, 1, 1], vec![0, 1, -1]),
                input: 1,
                skip: None,
            },
        ],
        input_scale: 0.5,
        cfg: QuantConfig::new(3, 3),
    };
    let input = ITensor::from_vec(&[1, 5, 5], (0..25).map(|i| ((i % 5) as i64) - 2).collect());
    (model, input)
}

fn maxpool_model() -> (QModel, ITensor) {
    let model = QModel {
        nodes: vec![
            QNode {
                op: conv(
                    vec![0, 1, 0, 1, 2, 1, 0, 1, 0],
                    &[1, 1, 3, 3],
                    vec![0],
                    1,
                    Activation::ReLU,
                ),
                input: 0,
                skip: None,
            },
            QNode {
                op: QOp::MaxPool { k: 2 },
                input: 1,
                skip: None,
            },
            QNode {
                op: fc(vec![1, -1, 1, -1, 2, 0, -2, 0], &[2, 4, 1, 1], vec![0, 0]),
                input: 2,
                skip: None,
            },
        ],
        input_scale: 1.0,
        cfg: QuantConfig::new(3, 4),
    };
    let input = ITensor::from_vec(
        &[1, 4, 4],
        vec![1, -2, 3, 0, 2, 1, -1, 2, 0, 3, 1, -2, 1, 0, 2, 1],
    );
    (model, input)
}

fn avgpool_model() -> (QModel, ITensor) {
    let model = QModel {
        nodes: vec![
            QNode {
                op: conv(
                    vec![0, 1, 0, 1, 2, 1, 0, 1, 0],
                    &[1, 1, 3, 3],
                    vec![1],
                    1,
                    Activation::ReLU,
                ),
                input: 0,
                skip: None,
            },
            QNode {
                op: QOp::AvgPool { k: 2 },
                input: 1,
                skip: None,
            },
            QNode {
                op: fc(vec![1, -1, 2, 0, -1, 1, 0, 2], &[2, 4, 1, 1], vec![1, -1]),
                input: 2,
                skip: None,
            },
        ],
        input_scale: 1.0,
        cfg: QuantConfig::new(3, 4),
    };
    let input = ITensor::from_vec(
        &[1, 4, 4],
        vec![2, 0, -1, 3, 1, 2, 0, -2, 3, 1, 2, 0, -1, 2, 1, 1],
    );
    (model, input)
}

fn skip_model() -> (QModel, ITensor) {
    let model = QModel {
        nodes: vec![
            QNode {
                op: conv(
                    vec![0, 0, 0, 0, 1, 0, 0, 0, 0],
                    &[1, 1, 3, 3],
                    vec![0],
                    1,
                    Activation::ReLU,
                ),
                input: 0,
                skip: None,
            },
            QNode {
                op: conv(
                    vec![0, 1, 0, 0, 0, 0, 0, 1, 0],
                    &[1, 1, 3, 3],
                    vec![0],
                    1,
                    Activation::ReLU,
                ),
                input: 1,
                skip: Some((1, 2)),
            },
            QNode {
                op: fc(vec![1; 9], &[1, 9, 1, 1], vec![0]),
                input: 2,
                skip: None,
            },
        ],
        input_scale: 1.0,
        cfg: QuantConfig::new(4, 4),
    };
    let input = ITensor::from_vec(&[1, 3, 3], vec![2, -1, 3, 0, 1, -2, 4, 2, 0]);
    (model, input)
}

fn zoo() -> Vec<(&'static str, QModel, ITensor)> {
    let (m1, i1) = conv_fc_model();
    let (m2, i2) = maxpool_model();
    let (m3, i3) = avgpool_model();
    let (m4, i4) = skip_model();
    vec![
        ("conv_fc", m1, i1),
        ("maxpool", m2, i2),
        ("avgpool", m3, i3),
        ("skip", m4, i4),
    ]
}

/// σ = 0: the plan-driven simulation is the plain-Q integer reference,
/// bit for bit, on every zoo model under both packing strategies (the
/// packing choice changes the compiled schedule metadata, never the
/// arithmetic).
#[test]
fn sim_at_sigma_zero_equals_plain_q_reference() {
    for (name, model, input) in zoo() {
        let reference = model.forward(&input);
        for method in [PackingMethod::Column, PackingMethod::Bsgs] {
            let engine = AthenaEngine::with_packing(BfvParams::test_small(), method);
            let compiled = plan::compile(&engine, &model, input.shape());
            let mut sampler = Sampler::from_seed(9_001);
            let run = plan::execute_sim(&compiled, &input, &NoiseSpec::zero(), &mut sampler);
            assert_eq!(
                run.logits, reference,
                "{name} ({method:?}): σ=0 sim diverged from plain-Q forward"
            );
            assert_eq!(run.predicted, athena_core::util::argmax(&reference));
        }
    }
}

/// The legacy fast path (`simulate_inference`, walking the model
/// directly) and the plan-driven path agree exactly at σ = 0.
#[test]
fn fast_path_sim_matches_planned_sim_at_sigma_zero() {
    let engine = AthenaEngine::new(BfvParams::test_small());
    for (name, model, input) in zoo() {
        let mut s1 = Sampler::from_seed(123);
        let fast = simulate_inference(&model, &input, &NoiseSpec::zero(), &mut s1);
        let mut s2 = Sampler::from_seed(456);
        let planned =
            simulate_inference_planned(&engine, &model, &input, &NoiseSpec::zero(), &mut s2);
        assert_eq!(fast.logits, planned.logits, "{name}: fast vs planned sim");
        assert_eq!(fast.predicted, planned.predicted, "{name}");
    }
}

/// With noise on, the plan-driven simulation only perturbs accumulators
/// (it never changes the integer semantics): at production-shaped σ the
/// logits stay near the noise-free run and the distribution is seeded /
/// deterministic.
#[test]
fn sim_noise_is_seeded_and_bounded() {
    let engine = AthenaEngine::new(BfvParams::test_small());
    let noise = NoiseSpec::for_bfv(engine.context().params());
    for (name, model, input) in zoo() {
        let compiled = plan::compile(&engine, &model, input.shape());
        let clean = {
            let mut s = Sampler::from_seed(7);
            plan::execute_sim(&compiled, &input, &NoiseSpec::zero(), &mut s)
        };
        let mut s = Sampler::from_seed(7);
        let noisy_a = plan::execute_sim(&compiled, &input, &noise, &mut s);
        let mut s = Sampler::from_seed(7);
        let noisy_b = plan::execute_sim(&compiled, &input, &noise, &mut s);
        assert_eq!(noisy_a.logits, noisy_b.logits, "{name}: sim not seeded");
        for (i, (&c, &n)) in clean.logits.iter().zip(&noisy_a.logits).enumerate() {
            assert!(
                (c - n).abs() <= 30.0,
                "{name} logit {i}: noisy sim {n} too far from clean {c}"
            );
        }
    }
}

/// The encrypted backend and the noise simulation describe the same
/// pipeline: encrypted logits stay within the propagated `e_ms` bound of
/// the σ = 0 simulation (which this suite separately pins to plain-Q) on
/// conv / pool / residual models under both packing strategies. The bound
/// matches the pre-refactor end-to-end tolerances: a handful of
/// activation steps of drift from `e_ms ≈ σ` per accumulator, propagated
/// through the final layer's weights.
#[test]
fn encrypted_within_ems_bound_of_sim() {
    for (name, model, input) in zoo() {
        for method in [PackingMethod::Column, PackingMethod::Bsgs] {
            let engine = AthenaEngine::with_packing(BfvParams::test_small(), method);
            let mut sampler = Sampler::from_seed(60_606);
            let (secrets, keys) = engine.keygen(&mut sampler);
            let enc = infer::run_encrypted(&engine, &secrets, &keys, &model, &input, &mut sampler);
            let compiled = plan::compile(&engine, &model, input.shape());
            let mut sim_sampler = Sampler::from_seed(60_607);
            let sim = plan::execute_sim(&compiled, &input, &NoiseSpec::zero(), &mut sim_sampler);
            assert_eq!(enc.logits.len(), sim.logits.len(), "{name} ({method:?})");
            for (i, (&e, &s)) in enc.logits.iter().zip(&sim.logits).enumerate() {
                assert!(
                    (e - s).abs() <= 30.0,
                    "{name} ({method:?}) logit {i}: encrypted {e} vs sim {s}"
                );
            }
        }
    }
}

/// The counting backend's per-step totals match the plan's backfilled
/// analytic counts (they are produced by the same dry run) and
/// re-deriving them is deterministic.
#[test]
fn counting_backend_rederives_plan_analytic() {
    for method in [PackingMethod::Column, PackingMethod::Bsgs] {
        let engine = AthenaEngine::with_packing(BfvParams::test_small(), method);
        for (name, model, input) in zoo() {
            let compiled = plan::compile(&engine, &model, input.shape());
            let counts = plan::execute_counting(&engine, &compiled);
            let steps: Vec<_> = compiled
                .layers
                .iter()
                .flat_map(|l| l.steps.iter())
                .collect();
            assert_eq!(counts.len(), steps.len(), "{name} ({method:?})");
            for (i, (c, s)) in counts.iter().zip(&steps).enumerate() {
                assert_eq!(
                    *c,
                    s.analytic,
                    "{name} ({method:?}) step {i} ({}): counting re-derivation drifted",
                    s.op.label()
                );
            }
        }
    }
}
