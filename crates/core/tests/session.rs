//! `InferenceSession` contracts: plan-cache pointer identity, LRU
//! eviction, and `run_batch` ≡ sequential `run_encrypted` bit-identity at
//! every worker count.

use std::sync::Arc;

use athena_core::pipeline::AthenaEngine;
use athena_core::plan::InferenceSession;
use athena_fhe::params::BfvParams;
use athena_math::par;
use athena_math::sampler::Sampler;
use athena_nn::qmodel::{Activation, QLinear, QModel, QNode, QOp, QuantConfig};
use athena_nn::tensor::ITensor;

/// A tiny conv+FC model; `w0` perturbs one conv weight so distinct models
/// hash to distinct cache keys.
fn model_with(w0: i64) -> QModel {
    let mut conv_w: Vec<i64> = (0..2 * 9).map(|i| ((i % 5) as i64) - 2).collect();
    conv_w[0] = w0;
    let fc_w: Vec<i64> = (0..3 * 18).map(|i| ((i % 3) as i64) - 1).collect();
    QModel {
        nodes: vec![
            QNode {
                op: QOp::Linear(QLinear {
                    weight: ITensor::from_vec(&[2, 1, 3, 3], conv_w),
                    bias: vec![1, -2],
                    stride: 1,
                    padding: 0,
                    is_fc: false,
                    act: Activation::ReLU,
                    in_scale: 0.5,
                    w_scale: 0.5,
                    out_scale: 1.0,
                }),
                input: 0,
                skip: None,
            },
            QNode {
                op: QOp::Linear(QLinear {
                    weight: ITensor::from_vec(&[3, 18, 1, 1], fc_w),
                    bias: vec![0, 1, -1],
                    stride: 1,
                    padding: 0,
                    is_fc: true,
                    act: Activation::Identity,
                    in_scale: 1.0,
                    w_scale: 0.5,
                    out_scale: 1.0,
                }),
                input: 1,
                skip: None,
            },
        ],
        input_scale: 0.5,
        cfg: QuantConfig::new(3, 3),
    }
}

fn inputs(n: usize) -> Vec<ITensor> {
    (0..n)
        .map(|k| {
            ITensor::from_vec(
                &[1, 5, 5],
                (0..25).map(|i| ((i + k) % 5) as i64 - 2).collect(),
            )
        })
        .collect()
}

#[test]
fn cache_hit_returns_pointer_identical_plan() {
    let mut session = InferenceSession::new(AthenaEngine::new(BfvParams::test_small()), 4, 42);
    let model = model_with(-2);
    let shape = [1usize, 5, 5];
    let first = session.plan_for(&model, &shape);
    let second = session.plan_for(&model, &shape);
    assert!(
        Arc::ptr_eq(&first, &second),
        "cache hit must return the same compiled plan, not a recompilation"
    );
    let stats = session.stats();
    assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));

    // A structurally different model is a different artifact.
    let third = session.plan_for(&model_with(3), &shape);
    assert!(!Arc::ptr_eq(&first, &third));
    assert_eq!(session.stats().misses, 2);

    // A different input shape likewise (a shape-agnostic conv-only model,
    // since the conv+FC zoo model fixes its input size).
    let conv_only = QModel {
        nodes: vec![QNode {
            op: QOp::Linear(QLinear {
                weight: ITensor::from_vec(&[1, 1, 3, 3], vec![0, 1, 0, 1, 2, 1, 0, 1, 0]),
                bias: vec![0],
                stride: 1,
                padding: 1,
                is_fc: false,
                act: Activation::ReLU,
                in_scale: 1.0,
                w_scale: 0.5,
                out_scale: 1.0,
            }),
            input: 0,
            skip: None,
        }],
        input_scale: 1.0,
        cfg: QuantConfig::new(3, 3),
    };
    let at_4 = session.plan_for(&conv_only, &[1usize, 4, 4]);
    let at_5 = session.plan_for(&conv_only, &[1usize, 5, 5]);
    assert!(!Arc::ptr_eq(&at_4, &at_5));
    assert_eq!(session.stats().misses, 4);
}

#[test]
fn lru_evicts_at_capacity() {
    let mut session = InferenceSession::new(AthenaEngine::new(BfvParams::test_small()), 2, 43);
    let shape = [1usize, 5, 5];
    let (a, b, c) = (model_with(-2), model_with(-1), model_with(0));

    let plan_a = session.plan_for(&a, &shape);
    session.plan_for(&b, &shape);
    // Touch `a` so it is the most recently used, then insert `c`: `b` must
    // be the victim.
    let plan_a2 = session.plan_for(&a, &shape);
    assert!(Arc::ptr_eq(&plan_a, &plan_a2));
    session.plan_for(&c, &shape);
    assert_eq!(session.stats().entries, 2, "capacity must hold");

    let plan_a3 = session.plan_for(&a, &shape);
    assert!(Arc::ptr_eq(&plan_a, &plan_a3), "`a` must have survived");
    let misses_before_b = session.stats().misses;
    session.plan_for(&b, &shape);
    assert_eq!(
        session.stats().misses,
        misses_before_b + 1,
        "`b` must have been evicted and recompiled"
    );
}

/// `run_batch` must produce bit-identical logits to running the same
/// inputs one-by-one through `run_encrypted`, at every worker count. Two
/// fresh sessions (same key seed) isolate the sampler streams; the
/// per-input forks happen sequentially before the parallel fan-out, so
/// thread interleaving cannot reorder randomness.
#[test]
fn run_batch_matches_sequential_at_any_thread_count() {
    let model = model_with(-2);
    let imgs = inputs(5);

    let sequential: Vec<Vec<f64>> = {
        let mut session = InferenceSession::new(AthenaEngine::new(BfvParams::test_small()), 4, 77);
        let mut sampler = Sampler::from_seed(555);
        imgs.iter()
            .map(|img| {
                session
                    .run_encrypted(&model, img, &mut sampler)
                    .expect("clean run")
                    .logits
            })
            .collect()
    };

    for threads in [1usize, 4] {
        par::set_threads(threads);
        let mut session = InferenceSession::new(AthenaEngine::new(BfvParams::test_small()), 4, 77);
        let mut sampler = Sampler::from_seed(555);
        let batch = session
            .run_batch(&model, &imgs, &mut sampler)
            .expect("batch runs");
        par::set_threads(0);
        assert_eq!(batch.len(), imgs.len());
        for (i, (b, s)) in batch.iter().zip(&sequential).enumerate() {
            let b = b.as_ref().expect("clean batch item");
            assert_eq!(
                &b.logits, s,
                "input {i} at {threads} threads: batch diverged from sequential"
            );
        }
        // One compile + keygen serves the whole batch: a single lookup,
        // not one per input.
        let stats = session.stats();
        assert_eq!((stats.misses, stats.hits), (1, 0));
    }
}

#[test]
fn empty_batch_is_a_no_op() {
    let mut session = InferenceSession::new(AthenaEngine::new(BfvParams::test_small()), 2, 9);
    let mut sampler = Sampler::from_seed(1);
    let out = session
        .run_batch(&model_with(-2), &[], &mut sampler)
        .expect("empty batch");
    assert!(out.is_empty());
    assert_eq!(session.stats().misses, 0, "no plan should be compiled");
}

/// A shape-mixed batch fails with a typed error naming the offending
/// input, before any ciphertext work (no plan compiled).
#[test]
fn mixed_shape_batch_reports_offending_input() {
    use athena_core::plan::AthenaError;
    let mut session = InferenceSession::new(AthenaEngine::new(BfvParams::test_small()), 2, 9);
    let mut sampler = Sampler::from_seed(1);
    let mut imgs = inputs(3);
    imgs[2] = ITensor::from_vec(&[1, 4, 4], vec![0; 16]);
    let err = session
        .run_batch(&model_with(-2), &imgs, &mut sampler)
        .expect_err("mixed shapes must be rejected");
    match err {
        AthenaError::ShapeMismatch {
            input,
            expected,
            got,
        } => {
            assert_eq!(input, 2);
            assert_eq!(expected, vec![1, 5, 5]);
            assert_eq!(got, vec![1, 4, 4]);
        }
        other => panic!("expected ShapeMismatch, got {other:?}"),
    }
    assert_eq!(session.stats().misses, 0, "no plan should be compiled");
}

/// An uncompilable model comes back as `AthenaError::Compile`, not a
/// panic, from the batch path.
#[test]
fn uncompilable_model_is_a_typed_batch_error() {
    use athena_core::plan::{AthenaError, CompileError};
    let mut session = InferenceSession::new(AthenaEngine::new(BfvParams::test_small()), 2, 9);
    let mut sampler = Sampler::from_seed(1);
    // Pool-final model: the plain reference defines no logits for it.
    let model = QModel {
        nodes: vec![QNode {
            op: QOp::MaxPool { k: 2 },
            input: 0,
            skip: None,
        }],
        input_scale: 1.0,
        cfg: QuantConfig::new(3, 3),
    };
    let err = session
        .run_batch(&model, &inputs(1), &mut sampler)
        .expect_err("pool-final model must be rejected");
    assert!(
        matches!(
            err,
            AthenaError::Compile(CompileError::PoolingFinal { node: 0 })
        ),
        "got {err:?}"
    );
}

/// Capacity 0 is rejected at construction (documented contract).
#[test]
#[should_panic(expected = "cache capacity must be at least 1")]
fn zero_capacity_session_is_rejected() {
    let _ = InferenceSession::new(AthenaEngine::new(BfvParams::test_small()), 0, 9);
}
