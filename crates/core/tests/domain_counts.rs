//! NTT budget of one five-step Athena layer (linear → mod-switch/extract →
//! pack → FBS → S2C) under the Eval-resident ciphertext representation.
//!
//! The pre-refactor baseline on `test_small` — recorded by
//! `report_domains` in `reports/domain_ntt_baseline.txt` — spent
//! 12 095 forward and 7 107 inverse NTTs on this layer. Keeping key
//! material and rotation chains in Eval form must beat that; the bound
//! below leaves headroom over the measured post-refactor cost so the test
//! guards the representation, not one exact schedule. A second, tighter
//! forward bound pins the hoisting layer on top: shared digit
//! decompositions in the BSGS schedules plus the FBS tensor-lift cache
//! must keep the layer at least 30% below the Eval-resident measurement.

#![cfg(feature = "op-stats")]

use athena_core::pipeline::{AthenaEngine, PackingMethod, PipelineStats};
use athena_fhe::fbs::Lut;
use athena_fhe::lwe::LweCiphertext;
use athena_fhe::params::BfvParams;
use athena_math::sampler::Sampler;
use athena_math::stats::ntt_stats;

/// Pre-refactor counts from `reports/domain_ntt_baseline.txt`; the
/// Eval-resident path measures 4 095 / 2 149 (`reports/domain_ntt.txt`),
/// so requiring better than *half* the baseline still leaves ~45% slack
/// for schedule changes while catching any fall-back to Coeff residency.
const BASELINE_FORWARD: u64 = 12_095;
const BASELINE_INVERSE: u64 = 7_107;

/// Eval-resident counts from `reports/domain_ntt.txt`, the pre-hoisting
/// measurement. Hoisted rotations (decompose-once/rotate-many in the BSGS
/// schedules) plus the FBS tensor-lift cache measure 2 523 / 2 054
/// (`reports/hoisting.txt`); the bound pins the headline ≥30% forward-NTT
/// cut over the Eval-resident schedule with ~12% slack, so losing either
/// digit cache (every rotation decomposing again) or the lift cache
/// (every CMult re-lifting its operands) trips it.
const EVAL_RESIDENT_FORWARD: u64 = 4_095;

#[test]
fn five_step_layer_beats_coeff_resident_baseline() {
    let engine = AthenaEngine::with_packing(BfvParams::test_small(), PackingMethod::Bsgs);
    let ctx = engine.context();
    let mut sampler = Sampler::from_seed(4242);
    let (secrets, keys) = engine.keygen(&mut sampler);
    let ev = athena_fhe::bfv::BfvEvaluator::new(ctx);
    let enc = ctx.encoder();
    let n = ctx.n();
    let t = ctx.t();

    let vals: Vec<u64> = (0..n as u64).map(|i| (i * 3 + 1) % t).collect();
    let ct = ev.encrypt_sk(&enc.encode(&vals), &secrets.sk, &mut sampler);
    let positions: Vec<usize> = (0..32).collect();
    let kernel: Vec<i64> = {
        let mut v = vec![0i64; n];
        v[0] = 2;
        v[1] = -1;
        v
    };
    let lut = Lut::from_signed_fn(t, |x| x.max(0));

    let ((), counts) = ntt_stats::measure(|| {
        let mut stats = PipelineStats::default();
        let conv = engine.linear(&ct, &kernel, &[], &mut stats);
        let lw = engine.extract_lwes(&conv, &positions, &keys, &mut stats);
        let opt: Vec<Option<LweCiphertext>> = lw.into_iter().map(Some).collect();
        std::hint::black_box(engine.pack_fbs_s2c(&opt, &lut, &keys, &mut stats));
    });

    assert!(
        counts.forward < BASELINE_FORWARD / 2,
        "five-step layer forward NTTs regressed: {} >= half the Coeff-resident baseline {}",
        counts.forward,
        BASELINE_FORWARD
    );
    assert!(
        counts.inverse < BASELINE_INVERSE / 2,
        "five-step layer inverse NTTs regressed: {} >= half the Coeff-resident baseline {}",
        counts.inverse,
        BASELINE_INVERSE
    );
    assert!(
        counts.forward <= EVAL_RESIDENT_FORWARD * 7 / 10,
        "five-step layer forward NTTs regressed: {} > 70% of the pre-hoisting \
         Eval-resident measurement {} — a hoisting digit cache or the CMult \
         tensor-lift cache stopped being shared",
        counts.forward,
        EVAL_RESIDENT_FORWARD
    );
}
