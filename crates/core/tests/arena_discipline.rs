//! Scratch-arena memory discipline of the plan executor:
//!
//! * steady-state plan-step execution on a warm [`InferenceSession`]
//!   performs **zero** fresh limb-buffer heap allocations (`fresh == 0`
//!   in the `alloc-stats` counters) — the tentpole invariant;
//! * the checkout totals are thread-count invariant (the work is
//!   deterministic, only its scheduling changes);
//! * pool poisoning proves no step reads stale buffer contents: with
//!   every checked-out buffer pre-filled with a sentinel, the logits are
//!   bit-identical;
//! * evicting a plan-cache entry drops its arena lease, releasing the
//!   pool-capacity reservation.
//!
//! The arena and its counters are process-global, so every test in this
//! binary serializes behind one lock.

use std::sync::{Mutex, MutexGuard, OnceLock};

use athena_core::pipeline::AthenaEngine;
use athena_core::plan::InferenceSession;
use athena_fhe::params::BfvParams;
use athena_math::arena;
use athena_math::par;
use athena_math::sampler::Sampler;
use athena_math::stats::alloc_stats;
use athena_nn::qmodel::{Activation, QLinear, QModel, QNode, QOp, QuantConfig};
use athena_nn::tensor::ITensor;

fn lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|p| p.into_inner())
}

/// Clears any poison sentinel on drop, so a failing assertion cannot leak
/// poisoning into later tests.
struct PoisonGuard;

impl Drop for PoisonGuard {
    fn drop(&mut self) {
        arena::set_poison(None);
    }
}

/// A tiny conv+FC model; `w0` perturbs one conv weight so distinct models
/// hash to distinct cache keys.
fn model_with(w0: i64) -> QModel {
    let mut conv_w: Vec<i64> = (0..2 * 9).map(|i| ((i % 5) as i64) - 2).collect();
    conv_w[0] = w0;
    let fc_w: Vec<i64> = (0..3 * 18).map(|i| ((i % 3) as i64) - 1).collect();
    QModel {
        nodes: vec![
            QNode {
                op: QOp::Linear(QLinear {
                    weight: ITensor::from_vec(&[2, 1, 3, 3], conv_w),
                    bias: vec![1, -2],
                    stride: 1,
                    padding: 0,
                    is_fc: false,
                    act: Activation::ReLU,
                    in_scale: 0.5,
                    w_scale: 0.5,
                    out_scale: 1.0,
                }),
                input: 0,
                skip: None,
            },
            QNode {
                op: QOp::Linear(QLinear {
                    weight: ITensor::from_vec(&[3, 18, 1, 1], fc_w),
                    bias: vec![0, 1, -1],
                    stride: 1,
                    padding: 0,
                    is_fc: true,
                    act: Activation::Identity,
                    in_scale: 1.0,
                    w_scale: 0.5,
                    out_scale: 1.0,
                }),
                input: 1,
                skip: None,
            },
        ],
        input_scale: 0.5,
        cfg: QuantConfig::new(3, 3),
    }
}

fn input(k: usize) -> ITensor {
    ITensor::from_vec(
        &[1, 5, 5],
        (0..25).map(|i| ((i + k) % 5) as i64 - 2).collect(),
    )
}

/// The tentpole invariant: on a warm session (plan compiled, keys
/// generated, pool populated by a first run), a repeat `run_encrypted`
/// checks every limb buffer out of the pool — zero fresh heap
/// allocations in the limb hot path.
#[cfg(feature = "alloc-stats")]
#[test]
fn warm_session_steady_state_has_zero_fresh_limb_allocations() {
    let _g = lock();
    let mut session = InferenceSession::new(AthenaEngine::new(BfvParams::test_small()), 4, 42);
    let model = model_with(-2);
    let mut sampler = Sampler::from_seed(555);
    // Cold run: compiles, keygens, and fills the pool.
    let cold = session
        .run_encrypted(&model, &input(0), &mut sampler)
        .expect("cold run");
    // Warm runs: every limb checkout must hit the pool.
    for round in 0..2 {
        let (inf, counts) =
            alloc_stats::measure(|| session.run_encrypted(&model, &input(0), &mut sampler));
        let inf = inf.expect("warm run");
        assert!(counts.takes > 0, "executor must go through the arena");
        assert_eq!(
            counts.fresh, 0,
            "warm round {round}: {} of {} limb checkouts missed the pool",
            counts.fresh, counts.takes
        );
        assert!(!inf.logits.is_empty());
        assert_eq!(inf.logits.len(), cold.logits.len());
    }
}

/// The checkout total of one inference is determined by the executed
/// ops, not by how they were scheduled: identical at 1 and 4 workers.
#[cfg(feature = "alloc-stats")]
#[test]
fn limb_checkout_totals_are_thread_count_invariant() {
    let _g = lock();
    let model = model_with(-2);
    let mut takes = Vec::new();
    for threads in [1usize, 4] {
        par::set_threads(threads);
        let mut session = InferenceSession::new(AthenaEngine::new(BfvParams::test_small()), 4, 77);
        let mut sampler = Sampler::from_seed(555);
        // Warm up so the measured run is steady-state at both counts.
        session
            .run_encrypted(&model, &input(0), &mut sampler)
            .expect("warm-up run");
        let (_, counts) =
            alloc_stats::measure(|| session.run_encrypted(&model, &input(0), &mut sampler));
        par::set_threads(0);
        takes.push(counts.takes);
        assert_eq!(counts.fresh, 0, "steady state at {threads} threads");
    }
    assert_eq!(
        takes[0], takes[1],
        "limb checkout totals must not depend on the worker count"
    );
}

/// Poison mode fills every raw checkout with a sentinel before handing it
/// out. If any step consumed stale pool contents (a buffer it never
/// wrote), the sentinel would reach the logits — so bit-identical logits
/// prove the write-before-read discipline of every `take_raw` site.
#[test]
fn poisoned_pool_produces_bit_identical_logits() {
    let _g = lock();
    let model = model_with(-2);
    let run = |poison: Option<u64>| -> Vec<f64> {
        let _guard = PoisonGuard;
        arena::set_poison(poison);
        let mut session = InferenceSession::new(AthenaEngine::new(BfvParams::test_small()), 4, 77);
        let mut sampler = Sampler::from_seed(555);
        // Two runs: the second consumes recycled (poison-refilled) buffers.
        session
            .run_encrypted(&model, &input(0), &mut sampler)
            .expect("first run");
        session
            .run_encrypted(&model, &input(0), &mut sampler)
            .expect("second run")
            .logits
    };
    let clean = run(None);
    let poisoned = run(Some(0xDEAD_BEEF_DEAD_BEEF));
    assert_eq!(
        clean, poisoned,
        "a step read stale pool contents (sentinel reached the logits)"
    );
}

/// `run_batch` over a shared-session arena stays bit-identical to the
/// sequential path at every worker count, even with the pool poisoned —
/// concurrent workers checking buffers in and out never observe one
/// another's data.
#[test]
fn poisoned_batch_matches_sequential_at_any_thread_count() {
    let _g = lock();
    let _guard = PoisonGuard;
    let model = model_with(-2);
    let imgs: Vec<ITensor> = (0..4).map(input).collect();

    let sequential: Vec<Vec<f64>> = {
        let mut session = InferenceSession::new(AthenaEngine::new(BfvParams::test_small()), 4, 77);
        let mut sampler = Sampler::from_seed(555);
        imgs.iter()
            .map(|img| {
                session
                    .run_encrypted(&model, img, &mut sampler)
                    .expect("sequential run")
                    .logits
            })
            .collect()
    };

    arena::set_poison(Some(0xA5A5_A5A5_A5A5_A5A5));
    for threads in [1usize, 4] {
        par::set_threads(threads);
        let mut session = InferenceSession::new(AthenaEngine::new(BfvParams::test_small()), 4, 77);
        let mut sampler = Sampler::from_seed(555);
        let batch = session
            .run_batch(&model, &imgs, &mut sampler)
            .expect("batch runs");
        par::set_threads(0);
        for (i, (b, s)) in batch.iter().zip(&sequential).enumerate() {
            let b = b.as_ref().expect("clean batch item");
            assert_eq!(
                &b.logits, s,
                "input {i} at {threads} threads diverged under poisoning"
            );
        }
    }
}

/// Every cached plan holds an arena lease; evicting the entry releases
/// its share of the pool reservation (the RAII contract of
/// `ArenaLease`).
#[test]
fn evicting_a_plan_releases_its_arena_reservation() {
    let _g = lock();
    let shape = [1usize, 5, 5];
    let mut session = InferenceSession::new(AthenaEngine::new(BfvParams::test_small()), 1, 43);
    let before = arena::reserved_bytes();

    session.plan_for(&model_with(-2), &shape);
    let one = session.stats().arena_reserved;
    assert!(one > 0, "a cached plan must reserve pool capacity");
    assert_eq!(arena::reserved_bytes(), before + one);

    // Capacity 1: compiling a second model evicts the first entry and
    // drops its lease — the global reservation must not accumulate.
    session.plan_for(&model_with(3), &shape);
    assert_eq!(session.stats().entries, 1);
    assert_eq!(session.stats().arena_reserved, one);
    assert_eq!(
        arena::reserved_bytes(),
        before + one,
        "the evicted entry's lease must have been released"
    );

    drop(session);
    assert_eq!(
        arena::reserved_bytes(),
        before,
        "dropping the session releases every lease"
    );
}
