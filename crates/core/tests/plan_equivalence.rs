//! Bit-identity of the plan-driven executor against the pre-plan monolithic
//! inference loop.
//!
//! `legacy` below is a frozen copy of the original `infer::run_encrypted`
//! (before it became a compile-then-execute wrapper), preserved verbatim so
//! the refactor is checked against the real old control flow, not against a
//! re-derivation. Both paths draw the same keys and the same input
//! encryption randomness, and every evaluation step is exact modular
//! arithmetic — so the logits must agree **exactly**, not within tolerance.

use athena_core::pipeline::{AthenaEngine, PackingMethod};
use athena_core::{infer, plan};
use athena_fhe::params::BfvParams;
use athena_math::sampler::Sampler;
use athena_nn::qmodel::{Activation, QLinear, QModel, QNode, QOp, QuantConfig};
use athena_nn::tensor::ITensor;

/// The pre-plan inference loop, frozen.
mod legacy {
    use athena_core::encoding::ConvEncoder;
    use athena_core::pipeline::{AthenaEngine, AthenaEvalKeys, AthenaSecrets, PipelineStats};
    use athena_fhe::bfv::BfvCiphertext;
    use athena_fhe::fbs::Lut;
    use athena_fhe::lwe::LweCiphertext;
    use athena_math::sampler::Sampler;
    use athena_nn::models::ConvShape;
    use athena_nn::qmodel::{QLinear, QModel, QOp};
    use athena_nn::tensor::ITensor;

    #[derive(Debug, Clone)]
    struct StoredValue {
        ct: BfvCiphertext,
        positions: Vec<usize>,
        shape: Vec<usize>,
    }

    #[derive(Debug, Clone)]
    struct ConsumerLayout {
        slot_of: Vec<Option<usize>>,
        positions: Vec<usize>,
    }

    fn flat_layout(len: usize, n: usize) -> ConsumerLayout {
        assert!(len <= n);
        let mut slot_of = vec![None; n];
        for (i, s) in slot_of.iter_mut().take(len).enumerate() {
            *s = Some(i);
        }
        ConsumerLayout {
            slot_of,
            positions: (0..len).collect(),
        }
    }

    fn conv_layout(shape: &[usize], padding: usize, n: usize) -> ConsumerLayout {
        let (c, h, w) = (shape[0], shape[1], shape[2]);
        let (hp, wp) = (h + 2 * padding, w + 2 * padding);
        assert!(c * hp * wp <= n);
        let mut slot_of = vec![None; n];
        let mut positions = vec![0usize; c * h * w];
        for ci in 0..c {
            for y in 0..h {
                for x in 0..w {
                    let flat = (ci * h + y) * w + x;
                    let slot = ci * hp * wp + (y + padding) * wp + (x + padding);
                    slot_of[slot] = Some(flat);
                    positions[flat] = slot;
                }
            }
        }
        ConsumerLayout { slot_of, positions }
    }

    fn consumer_layout(
        model: &QModel,
        value_idx: usize,
        shape: &[usize],
        n: usize,
    ) -> ConsumerLayout {
        for node in &model.nodes {
            if node.input == value_idx {
                return match &node.op {
                    QOp::Linear(l) if !l.is_fc => conv_layout(shape, l.padding, n),
                    _ => flat_layout(shape.iter().product(), n),
                };
            }
        }
        flat_layout(shape.iter().product(), n)
    }

    pub fn run_encrypted(
        engine: &AthenaEngine,
        secrets: &AthenaSecrets,
        keys: &AthenaEvalKeys,
        model: &QModel,
        input: &ITensor,
        sampler: &mut Sampler,
    ) -> Vec<f64> {
        let n = engine.context().n();
        let t = engine.context().t();
        let a_max = model.cfg.a_max();
        let mut stats = PipelineStats::default();

        let in_layout = consumer_layout(model, 0, input.shape(), n);
        let input_sv = {
            let mut coeffs = vec![0i64; n];
            for (flat, &pos) in in_layout.positions.iter().enumerate() {
                coeffs[pos] = input.data()[flat];
            }
            let positions_all: Vec<usize> = (0..n).collect();
            StoredValue {
                ct: engine.encrypt_at(&coeffs, &positions_all, secrets, sampler),
                positions: in_layout.positions.clone(),
                shape: input.shape().to_vec(),
            }
        };

        let mut values: Vec<Option<StoredValue>> = vec![Some(input_sv)];
        let mut logits: Vec<f64> = Vec::new();

        for (ni, node) in model.nodes.iter().enumerate() {
            let is_last = ni == model.nodes.len() - 1;
            let sv = values[node.input]
                .as_ref()
                .expect("producer stored")
                .clone();
            let (out_lwes, out_shape): (Vec<LweCiphertext>, Vec<usize>) = match &node.op {
                QOp::Linear(l) => {
                    let (acc_lwes, shape) =
                        run_linear_accumulate(engine, keys, &sv, l, is_last, &mut stats);
                    let mut acc_lwes = acc_lwes;
                    if let Some((skip_idx, mult)) = node.skip {
                        let skip_sv = values[skip_idx].as_ref().expect("skip stored");
                        let skip_lwes = if is_last {
                            engine.extract_lwes_mid(
                                &skip_sv.ct,
                                &skip_sv.positions,
                                keys,
                                &mut stats,
                            )
                        } else {
                            engine.extract_lwes(&skip_sv.ct, &skip_sv.positions, keys, &mut stats)
                        };
                        assert_eq!(skip_lwes.len(), acc_lwes.len());
                        for (a, s) in acc_lwes.iter_mut().zip(&skip_lwes) {
                            *a = engine.lwe_add_scaled(a, s, mult);
                        }
                    }
                    (acc_lwes, shape)
                }
                QOp::MaxPool { k } => {
                    let lwes = engine.extract_lwes(&sv.ct, &sv.positions, keys, &mut stats);
                    let (c, h, w) = (sv.shape[0], sv.shape[1], sv.shape[2]);
                    let (oh, ow) = (h / k, w / k);
                    let mut streams: Vec<Vec<LweCiphertext>> = Vec::with_capacity(k * k);
                    for ky in 0..*k {
                        for kx in 0..*k {
                            let mut s = Vec::with_capacity(c * oh * ow);
                            for ci in 0..c {
                                for oy in 0..oh {
                                    for ox in 0..ow {
                                        s.push(
                                            lwes[(ci * h + oy * k + ky) * w + ox * k + kx].clone(),
                                        );
                                    }
                                }
                            }
                            streams.push(s);
                        }
                    }
                    while streams.len() > 1 {
                        let b = streams.pop().expect("len > 1");
                        let a = streams.pop().expect("len > 1");
                        streams.push(engine.lwe_max(&a, &b, keys, &mut stats));
                    }
                    (streams.pop().expect("one stream left"), vec![c, oh, ow])
                }
                QOp::AvgPool { k } => {
                    let lwes = engine.extract_lwes(&sv.ct, &sv.positions, keys, &mut stats);
                    let (c, h, w) = (sv.shape[0], sv.shape[1], sv.shape[2]);
                    let (oh, ow) = (h / k, w / k);
                    let mut sums = Vec::with_capacity(c * oh * ow);
                    for ci in 0..c {
                        for oy in 0..oh {
                            for ox in 0..ow {
                                let mut acc: Option<LweCiphertext> = None;
                                for ky in 0..*k {
                                    for kx in 0..*k {
                                        let e = &lwes[(ci * h + oy * k + ky) * w + ox * k + kx];
                                        acc = Some(match acc {
                                            None => e.clone(),
                                            Some(a) => engine.lwe_add_scaled(&a, e, 1),
                                        });
                                    }
                                }
                                sums.push(acc.expect("k >= 1"));
                            }
                        }
                    }
                    (sums, vec![c, oh, ow])
                }
            };

            if is_last {
                let ints = engine.decrypt_lwes(&out_lwes, secrets);
                if let QOp::Linear(l) = &node.op {
                    logits = ints
                        .iter()
                        .map(|&v| v as f64 * l.in_scale * l.w_scale)
                        .collect();
                } else {
                    logits = ints.iter().map(|&v| v as f64).collect();
                }
                values.push(None);
                continue;
            }

            let out_len: usize = out_shape.iter().product();
            let layout = consumer_layout(model, ni + 1, &out_shape, n);
            let mut slots: Vec<Option<LweCiphertext>> = vec![None; n];
            for (slot, flat) in layout.slot_of.iter().enumerate() {
                if let Some(f) = flat {
                    slots[slot] = Some(out_lwes[*f].clone());
                }
            }
            let lut = match &node.op {
                QOp::Linear(l) => {
                    let lc = l.clone();
                    Lut::from_signed_fn(t, move |v| lc.remap(v, a_max))
                }
                QOp::AvgPool { k } => {
                    let kk = (k * k) as f64;
                    Lut::from_signed_fn(t, move |v| {
                        ((v as f64 / kk).round() as i64).clamp(-a_max, a_max)
                    })
                }
                QOp::MaxPool { .. } => Lut::from_signed_fn(t, |v| v),
            };
            let ct = engine.pack_fbs_s2c(&slots, &lut, keys, &mut stats);
            assert_eq!(layout.positions.len(), out_len);
            values.push(Some(StoredValue {
                ct,
                positions: layout.positions,
                shape: out_shape,
            }));
        }

        logits
    }

    fn run_linear_accumulate(
        engine: &AthenaEngine,
        keys: &AthenaEvalKeys,
        sv: &StoredValue,
        l: &QLinear,
        client_bound: bool,
        stats: &mut PipelineStats,
    ) -> (Vec<LweCiphertext>, Vec<usize>) {
        let n = engine.context().n();
        let (c_out, c_in, k) = (
            l.weight.shape()[0],
            l.weight.shape()[1],
            l.weight.shape()[2],
        );
        let (hp, wp) = if l.is_fc {
            (1usize, 1usize)
        } else {
            (sv.shape[1] + 2 * l.padding, sv.shape[2] + 2 * l.padding)
        };
        let eff_cin = if l.is_fc { sv.positions.len() } else { c_in };
        assert_eq!(
            if l.is_fc { eff_cin } else { c_in },
            if l.is_fc { c_in } else { sv.shape[0] },
        );
        let hw = hp * wp;
        let mut co_g = c_out;
        loop {
            let t_idx = hw * (co_g * eff_cin - 1) + wp * (k - 1) + k - 1;
            if t_idx + eff_cin * hw <= n {
                break;
            }
            assert!(co_g > 1);
            co_g = co_g.div_ceil(2);
        }
        let groups = c_out.div_ceil(co_g);
        let valid = hp - k + 1;
        let out_hw = if l.is_fc {
            1
        } else {
            (sv.shape[1] + 2 * l.padding - k) / l.stride + 1
        };
        let mut all_lwes: Vec<LweCiphertext> = Vec::new();
        for g in 0..groups {
            let co_lo = g * co_g;
            let co_hi = ((g + 1) * co_g).min(c_out);
            let g_cout = co_hi - co_lo;
            let shape = ConvShape {
                hw: hp,
                c_in: eff_cin,
                c_out: g_cout,
                k,
                stride: 1,
                padding: 0,
            };
            let enc = ConvEncoder::new(shape, n);
            let per = eff_cin * k * k;
            let kw = ITensor::from_vec(
                &[g_cout, eff_cin, k, k],
                l.weight.data()[co_lo * per..co_hi * per].to_vec(),
            );
            let mut bias_at = Vec::new();
            let mut positions = Vec::new();
            for co in 0..g_cout {
                for oy in 0..out_hw {
                    for ox in 0..out_hw {
                        let (y, x) = (oy * l.stride, ox * l.stride);
                        debug_assert!(y < valid && x < valid);
                        let pos = enc.output_index(co, y, x);
                        positions.push(pos);
                        let b = l.bias[co_lo + co];
                        if b != 0 {
                            bias_at.push((pos, b));
                        }
                    }
                }
            }
            let conv_ct = engine.linear(&sv.ct, &enc.encode_kernel(&kw), &bias_at, stats);
            all_lwes.extend(if client_bound {
                engine.extract_lwes_mid(&conv_ct, &positions, keys, stats)
            } else {
                engine.extract_lwes(&conv_ct, &positions, keys, stats)
            });
        }
        (all_lwes, vec![c_out, out_hw, out_hw])
    }
}

fn conv_fc_model() -> QModel {
    let conv_w: Vec<i64> = (0..2 * 9).map(|i| ((i % 5) as i64) - 2).collect();
    let fc_w: Vec<i64> = (0..3 * 18).map(|i| ((i % 3) as i64) - 1).collect();
    QModel {
        nodes: vec![
            QNode {
                op: QOp::Linear(QLinear {
                    weight: ITensor::from_vec(&[2, 1, 3, 3], conv_w),
                    bias: vec![1, -2],
                    stride: 1,
                    padding: 0,
                    is_fc: false,
                    act: Activation::ReLU,
                    in_scale: 0.5,
                    w_scale: 0.5,
                    out_scale: 1.0,
                }),
                input: 0,
                skip: None,
            },
            QNode {
                op: QOp::Linear(QLinear {
                    weight: ITensor::from_vec(&[3, 18, 1, 1], fc_w),
                    bias: vec![0, 1, -1],
                    stride: 1,
                    padding: 0,
                    is_fc: true,
                    act: Activation::Identity,
                    in_scale: 1.0,
                    w_scale: 0.5,
                    out_scale: 1.0,
                }),
                input: 1,
                skip: None,
            },
        ],
        input_scale: 0.5,
        cfg: QuantConfig::new(3, 3),
    }
}

fn pool_model() -> QModel {
    QModel {
        nodes: vec![
            QNode {
                op: QOp::Linear(QLinear {
                    weight: ITensor::from_vec(&[1, 1, 3, 3], vec![0, 1, 0, 1, 2, 1, 0, 1, 0]),
                    bias: vec![0],
                    stride: 1,
                    padding: 1,
                    is_fc: false,
                    act: Activation::ReLU,
                    in_scale: 1.0,
                    w_scale: 0.5,
                    out_scale: 1.0,
                }),
                input: 0,
                skip: None,
            },
            QNode {
                op: QOp::MaxPool { k: 2 },
                input: 1,
                skip: None,
            },
            QNode {
                op: QOp::Linear(QLinear {
                    weight: ITensor::from_vec(&[2, 4, 1, 1], vec![1, -1, 1, -1, 2, 0, -2, 0]),
                    bias: vec![0, 0],
                    stride: 1,
                    padding: 0,
                    is_fc: true,
                    act: Activation::Identity,
                    in_scale: 1.0,
                    w_scale: 1.0,
                    out_scale: 1.0,
                }),
                input: 2,
                skip: None,
            },
        ],
        input_scale: 1.0,
        cfg: QuantConfig::new(3, 4),
    }
}

fn skip_model() -> QModel {
    let idk = |w: Vec<i64>| ITensor::from_vec(&[1, 1, 3, 3], w);
    QModel {
        nodes: vec![
            QNode {
                op: QOp::Linear(QLinear {
                    weight: idk(vec![0, 0, 0, 0, 1, 0, 0, 0, 0]),
                    bias: vec![0],
                    stride: 1,
                    padding: 1,
                    is_fc: false,
                    act: Activation::ReLU,
                    in_scale: 1.0,
                    w_scale: 1.0,
                    out_scale: 1.0,
                }),
                input: 0,
                skip: None,
            },
            QNode {
                op: QOp::Linear(QLinear {
                    weight: idk(vec![0, 1, 0, 0, 0, 0, 0, 1, 0]),
                    bias: vec![0],
                    stride: 1,
                    padding: 1,
                    is_fc: false,
                    act: Activation::ReLU,
                    in_scale: 1.0,
                    w_scale: 1.0,
                    out_scale: 1.0,
                }),
                input: 1,
                skip: Some((1, 2)),
            },
            QNode {
                op: QOp::Linear(QLinear {
                    weight: ITensor::from_vec(&[1, 9, 1, 1], vec![1; 9]),
                    bias: vec![0],
                    stride: 1,
                    padding: 0,
                    is_fc: true,
                    act: Activation::Identity,
                    in_scale: 1.0,
                    w_scale: 1.0,
                    out_scale: 1.0,
                }),
                input: 2,
                skip: None,
            },
        ],
        input_scale: 1.0,
        cfg: QuantConfig::new(4, 4),
    }
}

/// Runs both paths with identical key and encryption draws and asserts the
/// logits are exactly equal.
fn assert_bit_identical(method: PackingMethod, model: &QModel, input: &ITensor, seed: u64) {
    let engine = AthenaEngine::with_packing(BfvParams::test_small(), method);
    let mut key_sampler = Sampler::from_seed(seed);
    let (secrets, keys) = engine.keygen(&mut key_sampler);

    let mut s_legacy = Sampler::from_seed(seed + 1);
    let legacy_logits =
        legacy::run_encrypted(&engine, &secrets, &keys, model, input, &mut s_legacy);

    let mut s_plan = Sampler::from_seed(seed + 1);
    let enc = infer::run_encrypted(&engine, &secrets, &keys, model, input, &mut s_plan);

    assert_eq!(
        enc.logits, legacy_logits,
        "plan executor diverged from the legacy loop ({method:?})"
    );
    assert!(!enc.logits.is_empty());
}

#[test]
fn conv_fc_bit_identical_column() {
    let input = ITensor::from_vec(&[1, 5, 5], (0..25).map(|i| ((i % 5) as i64) - 2).collect());
    assert_bit_identical(PackingMethod::Column, &conv_fc_model(), &input, 31_337);
}

#[test]
fn conv_fc_bit_identical_bsgs() {
    let input = ITensor::from_vec(&[1, 5, 5], (0..25).map(|i| ((i % 5) as i64) - 2).collect());
    assert_bit_identical(PackingMethod::Bsgs, &conv_fc_model(), &input, 31_338);
}

#[test]
fn padding_and_maxpool_bit_identical() {
    let input = ITensor::from_vec(
        &[1, 4, 4],
        vec![1, -2, 3, 0, 2, 1, -1, 2, 0, 3, 1, -2, 1, 0, 2, 1],
    );
    assert_bit_identical(PackingMethod::Column, &pool_model(), &input, 31_339);
}

#[test]
fn residual_skip_bit_identical() {
    let input = ITensor::from_vec(&[1, 3, 3], vec![2, -1, 3, 0, 1, -2, 4, 2, 0]);
    assert_bit_identical(PackingMethod::Column, &skip_model(), &input, 31_340);
}

/// Plan-driven keygen is draw-identical to the engine's blanket keygen for
/// a full-pipeline plan: same sampler seed, same keys, same logits.
#[test]
fn keygen_for_plan_matches_keygen_on_full_pipeline() {
    for method in [PackingMethod::Column, PackingMethod::Bsgs] {
        let engine = AthenaEngine::with_packing(BfvParams::test_small(), method);
        let model = conv_fc_model();
        let input = ITensor::from_vec(&[1, 5, 5], (0..25).map(|i| (i % 3) as i64 - 1).collect());
        let compiled = plan::compile(&engine, &model, input.shape());

        let mut s_a = Sampler::from_seed(90_210);
        let (sec_a, keys_a) = engine.keygen(&mut s_a);
        let mut s_b = Sampler::from_seed(90_210);
        let (sec_b, keys_b) = engine.keygen_for_plan(&compiled, &mut s_b);

        assert_eq!(
            keys_a.gk.elements(),
            keys_b.gk.elements(),
            "{method:?}: galois element sets differ"
        );
        let mut r_a = Sampler::from_seed(555);
        let run_a = plan::execute(&engine, &sec_a, &keys_a, &compiled, &input, &mut r_a);
        let mut r_b = Sampler::from_seed(555);
        let run_b = plan::execute(&engine, &sec_b, &keys_b, &compiled, &input, &mut r_b);
        assert_eq!(run_a.logits, run_b.logits, "{method:?}: logits differ");
    }
}
