//! Small shared utilities.

/// Index of the maximal logit, with ties broken toward the **last**
/// maximal index — the convention every Athena result path shares
/// (simulated, encrypted, and plain-Q reference), so predictions stay
/// comparable across backends. Returns `0` for an empty slice.
///
/// # Panics
///
/// Panics if any logit is NaN (logits are dequantized integers scaled by
/// finite scales; a NaN means the caller already has corrupt data).
///
/// # Examples
///
/// ```
/// assert_eq!(athena_core::util::argmax(&[0.5, 2.0, -1.0]), 1);
/// assert_eq!(athena_core::util::argmax(&[1.0, 3.0, 3.0]), 2);
/// ```
pub fn argmax(logits: &[f64]) -> usize {
    logits
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("NaN logit"))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::argmax;

    #[test]
    fn picks_the_maximum() {
        assert_eq!(argmax(&[-3.0, 7.5, 2.0, 7.4]), 1);
        assert_eq!(argmax(&[4.0]), 0);
    }

    #[test]
    fn ties_break_toward_last() {
        assert_eq!(argmax(&[1.0, 5.0, 5.0, 0.0]), 2);
        assert_eq!(argmax(&[2.0, 2.0]), 1);
    }

    #[test]
    fn empty_returns_zero() {
        assert_eq!(argmax(&[]), 0);
    }

    #[test]
    fn infinities_are_ordinary_values() {
        assert_eq!(argmax(&[f64::NEG_INFINITY, 0.0, f64::INFINITY]), 2);
    }

    #[test]
    #[should_panic(expected = "NaN logit")]
    fn nan_panics() {
        argmax(&[1.0, f64::NAN]);
    }
}
