//! Table 3: symbolic computational-complexity comparison between the
//! CKKS-based pipeline \[27\] and Athena.

/// One operation row: counts as closed-form strings plus evaluated values
/// for concrete parameters.
#[derive(Debug, Clone)]
pub struct ComplexityRow {
    /// Solution name.
    pub solution: &'static str,
    /// Operation name.
    pub operation: &'static str,
    /// PMult complexity (formula, value).
    pub pmult: (String, u64),
    /// CMult complexity.
    pub cmult: (String, u64),
    /// HRot complexity.
    pub hrot: (String, u64),
}

/// Parameters the formulas are evaluated at.
#[derive(Debug, Clone, Copy)]
pub struct ComplexityParams {
    /// Ring degree.
    pub n: u64,
    /// Kernel width/height `f`.
    pub f: u64,
    /// Channels `C`.
    pub c: u64,
    /// ReLU fit degree `p`.
    pub p: u64,
    /// Bootstrap fit degree `r`.
    pub r: u64,
    /// Plaintext modulus `t`.
    pub t: u64,
}

impl Default for ComplexityParams {
    fn default() -> Self {
        // A representative ResNet-20 middle layer under both systems.
        Self {
            n: 1 << 15,
            f: 3,
            c: 32,
            p: 27, // typical minimax ReLU composite degree [27]
            r: 31, // sine-approximation degree
            t: 65537,
        }
    }
}

fn cbrt(x: u64) -> u64 {
    (x as f64).cbrt().ceil() as u64
}

fn sqrt(x: u64) -> u64 {
    (x as f64).sqrt().ceil() as u64
}

/// Builds all Table 3 rows.
pub fn table3(p: &ComplexityParams) -> Vec<ComplexityRow> {
    vec![
        ComplexityRow {
            solution: "CKKS-based [27]",
            operation: "Conv",
            pmult: ("O(f^2 C)".into(), p.f * p.f * p.c),
            cmult: ("/".into(), 0),
            hrot: ("O(f^2)+O(C)".into(), p.f * p.f + p.c),
        },
        ComplexityRow {
            solution: "CKKS-based [27]",
            operation: "ReLU",
            pmult: ("O(p)".into(), p.p),
            cmult: ("O(sqrt(p))".into(), sqrt(p.p)),
            hrot: ("/".into(), 0),
        },
        ComplexityRow {
            solution: "CKKS-based [27]",
            operation: "Bootstrap",
            pmult: ("O(cbrt(N))+O(r)".into(), cbrt(p.n) + p.r),
            cmult: ("O(sqrt(r))".into(), sqrt(p.r)),
            hrot: ("O(cbrt(N))".into(), cbrt(p.n)),
        },
        ComplexityRow {
            solution: "Athena",
            operation: "Conv",
            pmult: ("O(C)".into(), p.c),
            cmult: ("/".into(), 0),
            hrot: ("/".into(), 0),
        },
        ComplexityRow {
            solution: "Athena",
            operation: "Packing",
            pmult: ("O(C)".into(), p.c),
            cmult: ("/".into(), 0),
            hrot: ("O(C)".into(), p.c),
        },
        ComplexityRow {
            solution: "Athena",
            operation: "FBS",
            pmult: ("O(t)".into(), p.t),
            cmult: ("O(sqrt(t))".into(), sqrt(p.t)),
            hrot: ("/".into(), 0),
        },
        ComplexityRow {
            solution: "Athena",
            operation: "S2C",
            pmult: ("O(cbrt(N))".into(), cbrt(p.n)),
            cmult: ("/".into(), 0),
            hrot: ("O(cbrt(N))".into(), cbrt(p.n)),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn athena_conv_needs_no_rotations() {
        let rows = table3(&ComplexityParams::default());
        let athena_conv = rows
            .iter()
            .find(|r| r.solution == "Athena" && r.operation == "Conv")
            .expect("row exists");
        assert_eq!(athena_conv.hrot.1, 0);
        let ckks_conv = rows
            .iter()
            .find(|r| r.solution.starts_with("CKKS") && r.operation == "Conv")
            .expect("row exists");
        assert!(ckks_conv.hrot.1 > 0);
        // Athena conv PMult is f² smaller.
        assert_eq!(ckks_conv.pmult.1, athena_conv.pmult.1 * 9);
    }

    #[test]
    fn fbs_dominates_athena() {
        let rows = table3(&ComplexityParams::default());
        let fbs = rows
            .iter()
            .find(|r| r.operation == "FBS")
            .expect("row exists");
        let others: u64 = rows
            .iter()
            .filter(|r| r.solution == "Athena" && r.operation != "FBS")
            .map(|r| r.pmult.1 + r.cmult.1 + r.hrot.1)
            .sum();
        assert!(fbs.pmult.1 > 100 * others, "FBS must dominate");
    }
}
