//! Plan types and the compiler: the typed step program, key requirements,
//! trace derivation, and plan-driven key generation.

use athena_fhe::bfv::{GaloisKeys, RelinKey, SecretKey};
use athena_fhe::extract::rlwe_secret_as_lwe_mod;
use athena_fhe::fbs::Lut;
use athena_fhe::lwe::{LweKeySwitchKey, LweSecret};
use athena_fhe::noise::{NoiseModel, StepDepths};
use athena_fhe::pack::{BsgsPackingKey, ColumnPackingKey};
use athena_math::sampler::Sampler;
use athena_math::stats::op_stats::HomOpCounts;
use athena_nn::models::ConvShape;
use athena_nn::qmodel::{QLinear, QModel, QOp, QuantConfig};
use athena_nn::tensor::ITensor;

use std::fmt;

use crate::encoding::{ConvEncoder, EncodingError};
use crate::pipeline::{AthenaEngine, AthenaEvalKeys, AthenaSecrets, PackingMethod};
use crate::trace::{LayerTrace, ModelTrace, OpCounts, Phase, TraceParams};

use super::exec::execute_counting;

/// Typed failure of plan compilation. Everything here is reachable with a
/// user-supplied model on the serving path ([`super::InferenceSession`]),
/// so [`try_compile`] returns these as values; [`compile`] keeps the
/// panicking contract for internal callers with pre-validated models.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The model has no nodes.
    EmptyModel,
    /// The input tensor is not rank-3 (`[C, H, W]`).
    BadInputShape {
        /// The shape supplied.
        shape: Vec<usize>,
    },
    /// The final node is a pooling op. The integer reference
    /// ([`QModel::forward`]) defines logits only for a final *linear*
    /// node (pool-final models return no logits), so there is nothing
    /// well-defined for the encrypted pipeline to output.
    PoolingFinal {
        /// Offending node index.
        node: usize,
    },
    /// A node reads a value that is not produced before it runs
    /// (`input`/`skip` must reference value `0..=node`).
    BadReference {
        /// Offending node index.
        node: usize,
        /// The out-of-range value index.
        value: usize,
    },
    /// A coefficient encoding rejected the layer.
    Encoding {
        /// Offending node index.
        node: usize,
        /// The underlying encoding failure.
        source: EncodingError,
    },
    /// The layer does not fit the ring degree even with one output
    /// channel per group.
    LayerTooLarge {
        /// Offending node index.
        node: usize,
        /// Ring degree.
        n: usize,
    },
    /// Input channel count does not match the consumed value's shape
    /// (conv: weight `C_in` vs value channels; FC: weight `C_in` vs the
    /// value's flat length).
    ChannelMismatch {
        /// Offending node index.
        node: usize,
        /// Channels the weight expects.
        expected: usize,
        /// Channels the consumed value provides.
        got: usize,
    },
    /// Bias length does not match the layer's output channel count.
    BiasMismatch {
        /// Offending node index.
        node: usize,
        /// Output channel count.
        expected: usize,
        /// Bias entries supplied.
        got: usize,
    },
    /// The kernel is larger than the (padded) input extent it slides
    /// over, or an FC weight has a spatial kernel.
    KernelExceedsInput {
        /// Offending node index.
        node: usize,
        /// Kernel size `K`.
        k: usize,
        /// Padded input extent the kernel must fit.
        extent: usize,
    },
    /// A stride or pool kernel of zero.
    ZeroDim {
        /// Offending node index.
        node: usize,
    },
    /// Pooling would produce an empty output (`k` exceeds the input).
    PoolEmptyOutput {
        /// Offending node index.
        node: usize,
        /// Pool kernel.
        k: usize,
        /// Input spatial extent.
        h: usize,
    },
    /// A residual skip's element count differs from the accumulator's.
    SkipShapeMismatch {
        /// Offending node index.
        node: usize,
        /// Accumulator element count.
        acc: usize,
        /// Skip value element count.
        skip: usize,
    },
    /// A value is consumed under conflicting layouts: every linear/pool
    /// consumer of one stored value must demand the same padding (the
    /// value is packed into coefficient slots exactly once, for its
    /// first consumer).
    LayoutConflict {
        /// The multiply-consumed value index.
        value: usize,
        /// The distinct paddings demanded by its consumers.
        paddings: Vec<usize>,
    },
    /// A stored value (with its consumer's padding) exceeds the ring.
    ValueTooLarge {
        /// The value index.
        value: usize,
        /// Padded slot count the consumer demands.
        len: usize,
        /// Ring degree.
        n: usize,
    },
    /// The compile-time noise guardrail: the plan's worst analytic RLWE
    /// chain ([`ExecutionPlan::worst_chain_noise_bits`]) plus the
    /// engine's configured safety margin exceeds the parameter set's
    /// noise headroom, so a probed run would exhaust deterministically —
    /// rejected at compile time instead of mid-inference. Disable via
    /// [`crate::pipeline::AthenaEngine::with_noise_margin`]`(None)`.
    NoiseBudget {
        /// The worst chain's analytic charge in bits.
        chain_bits: u32,
        /// The parameter set's headroom in bits.
        budget_bits: u32,
        /// The engine's configured margin in bits.
        margin: u32,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::EmptyModel => write!(f, "model has no nodes"),
            CompileError::BadInputShape { shape } => {
                write!(f, "input must be rank-3 [C, H, W], got {shape:?}")
            }
            CompileError::PoolingFinal { node } => write!(
                f,
                "node {node}: final node is a pooling op (no logits defined); end with a linear node"
            ),
            CompileError::BadReference { node, value } => {
                write!(f, "node {node}: reads value {value} which is not yet produced")
            }
            CompileError::Encoding { node, source } => write!(f, "node {node}: {source}"),
            CompileError::LayerTooLarge { node, n } => write!(
                f,
                "node {node}: layer does not fit ring degree {n} even with one output channel"
            ),
            CompileError::ChannelMismatch {
                node,
                expected,
                got,
            } => write!(
                f,
                "node {node}: input channel mismatch (weight expects {expected}, value has {got})"
            ),
            CompileError::BiasMismatch {
                node,
                expected,
                got,
            } => write!(f, "node {node}: bias length {got} != output channels {expected}"),
            CompileError::KernelExceedsInput { node, k, extent } => write!(
                f,
                "node {node}: kernel {k} exceeds padded input extent {extent}"
            ),
            CompileError::ZeroDim { node } => {
                write!(f, "node {node}: stride / pool kernel must be nonzero")
            }
            CompileError::PoolEmptyOutput { node, k, h } => {
                write!(f, "node {node}: pool k={k} over extent {h} yields an empty output")
            }
            CompileError::SkipShapeMismatch { node, acc, skip } => write!(
                f,
                "node {node}: skip value has {skip} elements, accumulator has {acc}"
            ),
            CompileError::LayoutConflict { value, paddings } => write!(
                f,
                "value {value}: consumers demand conflicting paddings {paddings:?}"
            ),
            CompileError::ValueTooLarge { value, len, n } => {
                write!(f, "value {value}: padded layout of {len} slots exceeds ring degree {n}")
            }
            CompileError::NoiseBudget {
                chain_bits,
                budget_bits,
                margin,
            } => write!(
                f,
                "analytic noise of the worst chain ({chain_bits} bits + {margin} margin) exceeds \
                 the parameter set's {budget_bits}-bit headroom; a probed run would exhaust"
            ),
        }
    }
}

impl std::error::Error for CompileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CompileError::Encoding { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// The layout a consumer wants its input packed into.
#[derive(Debug, Clone)]
pub(crate) struct ConsumerLayout {
    /// For each slot `s`, which flat activation index goes there (None =
    /// trivial zero / padding).
    pub slot_of: Vec<Option<usize>>,
    /// `positions[i]` = slot (= coefficient after S2C) of flat activation
    /// `i`.
    pub positions: Vec<usize>,
}

pub(crate) fn flat_layout(len: usize, n: usize) -> ConsumerLayout {
    assert!(len <= n, "value of {len} activations exceeds {n} slots");
    let mut slot_of = vec![None; n];
    for (i, s) in slot_of.iter_mut().take(len).enumerate() {
        *s = Some(i);
    }
    ConsumerLayout {
        slot_of,
        positions: (0..len).collect(),
    }
}

/// Padded `M̂` layout for a conv consumer: activation `(c,h,w)` of the
/// unpadded tensor goes to slot `c·H'W' + (h+p)·W' + (w+p)`.
pub(crate) fn conv_layout(shape: &[usize], padding: usize, n: usize) -> ConsumerLayout {
    let (c, h, w) = (shape[0], shape[1], shape[2]);
    let (hp, wp) = (h + 2 * padding, w + 2 * padding);
    assert!(c * hp * wp <= n, "padded input does not fit the ring");
    let mut slot_of = vec![None; n];
    let mut positions = vec![0usize; c * h * w];
    for ci in 0..c {
        for y in 0..h {
            for x in 0..w {
                let flat = (ci * h + y) * w + x;
                let slot = ci * hp * wp + (y + padding) * wp + (x + padding);
                slot_of[slot] = Some(flat);
                positions[flat] = slot;
            }
        }
    }
    ConsumerLayout { slot_of, positions }
}

/// Layout for the consumer of value `value_idx` (first node reading it):
/// conv consumers get the padded `M̂` layout of Eq. 1, everything else flat.
pub(crate) fn consumer_layout(
    model: &QModel,
    value_idx: usize,
    shape: &[usize],
    n: usize,
) -> ConsumerLayout {
    for node in &model.nodes {
        if node.input == value_idx {
            return match &node.op {
                QOp::Linear(l) if !l.is_fc => conv_layout(shape, l.padding, n),
                _ => flat_layout(shape.iter().product(), n),
            };
        }
    }
    flat_layout(shape.iter().product(), n)
}

/// One typed step of the plan.
#[derive(Debug, Clone)]
pub enum StepOp {
    /// Coefficient-encoded conv/FC over stored value `value`: one PMult by
    /// the pre-encoded `kernel` polynomial plus a bias add when `bias` is
    /// non-empty. Large layers appear as several `Linear` steps (one per
    /// output-channel group that fits the ring).
    Linear {
        /// Input value index.
        value: usize,
        /// Encoded kernel polynomial coefficients.
        kernel: Vec<i64>,
        /// Bias terms at output coefficient positions.
        bias: Vec<(usize, i64)>,
    },
    /// Modulus switch `Q → q_mid` of the pending linear output (`None`) or
    /// of a stored value (`Some(idx)` — pooling reads its producer).
    ModSwitch {
        /// Source value, or `None` for the preceding `Linear` output.
        value: Option<usize>,
    },
    /// Sample extraction (Alg. 1) of the listed coefficients.
    ExtractLwes {
        /// Coefficient positions, in flat-activation order.
        positions: Vec<usize>,
    },
    /// LWE dimension switch `N → n`; with `drop_to_t` the LWEs also pay the
    /// final modulus drop (the `e_ms` rounding) — skipped for client-bound
    /// accumulators. Appends to the layer's LWE accumulator.
    DimSwitch {
        /// Whether to drop the switched LWEs from `q_mid` to `t`.
        drop_to_t: bool,
    },
    /// Residual skip: re-extract the skip value's LWEs (mod switch + sample
    /// extraction + dimension switch) and add them into the accumulator at
    /// the LWE level, scaled by `mult`.
    ResidualAdd {
        /// Skip value index.
        skip: usize,
        /// Coefficient positions of the skip value.
        positions: Vec<usize>,
        /// Integer alignment multiplier.
        mult: i64,
        /// Whether the skip LWEs drop to `t` (must match the accumulator's
        /// level).
        drop_to_t: bool,
    },
    /// Max-pooling composite: `k²` window streams over the accumulator and
    /// a max tree of `k²−1` rounds, each a full
    /// diff → pack → FBS(ReLU) → S2C → extract cycle.
    MaxReduce {
        /// Pool kernel (= stride).
        k: usize,
        /// Input shape `[c, h, w]` of the accumulator.
        shape: [usize; 3],
    },
    /// Average-pooling composite: exact LWE-level window sums (the divide
    /// rides the next FBS LUT).
    AvgReduce {
        /// Pool kernel (= stride).
        k: usize,
        /// Input shape `[c, h, w]` of the accumulator.
        shape: [usize; 3],
    },
    /// Packing: place accumulator LWEs into slots per `slot_of` (trivial
    /// zeros elsewhere) and run the LWE → RLWE homomorphic decryption.
    Pack {
        /// `slot_of[s]` = flat accumulator index for slot `s`.
        slot_of: Vec<Option<usize>>,
    },
    /// Functional bootstrapping with the materialized fused remap LUT
    /// (plus the non-valid-slot mask when the LUT moves 0).
    Fbs {
        /// The LUT, resolved at compile time.
        lut: Lut,
    },
    /// Slot-to-coefficient bridge; stores the result as value `value`.
    S2C {
        /// Output value index.
        value: usize,
        /// Coefficient positions of the stored value (for its consumers).
        positions: Vec<usize>,
        /// Logical shape of the stored value.
        shape: Vec<usize>,
    },
    /// Client-side decryption of the accumulator and dequantization by
    /// `scale`.
    Output {
        /// Dequantization factor (`in_scale·w_scale` for a final linear
        /// layer, 1 otherwise).
        scale: f64,
    },
}

impl StepOp {
    /// Short display label.
    pub fn label(&self) -> &'static str {
        match self {
            StepOp::Linear { .. } => "linear",
            StepOp::ModSwitch { .. } => "mod_switch",
            StepOp::ExtractLwes { .. } => "extract",
            StepOp::DimSwitch { .. } => "dim_switch",
            StepOp::ResidualAdd { .. } => "residual_add",
            StepOp::MaxReduce { .. } => "max_reduce",
            StepOp::AvgReduce { .. } => "avg_reduce",
            StepOp::Pack { .. } => "pack",
            StepOp::Fbs { .. } => "fbs",
            StepOp::S2C { .. } => "s2c",
            StepOp::Output { .. } => "output",
        }
    }
}

/// One plan step plus its static metadata.
#[derive(Debug, Clone)]
pub struct PlanStep {
    /// The operation.
    pub op: StepOp,
    /// Phase attribution (Fig. 9 breakdown).
    pub phase: Phase,
    /// Analytic operation counts the step should perform. The compiler
    /// fills these by dry-running the finished plan through the value-free
    /// [`super::CountingBackend`] — the same generic `run_step`
    /// interpreter the executor uses, with each engine primitive replaced
    /// by its schedule dry-run — so the analytic accounting is literally
    /// the execution code path. The executor's measured counts must match
    /// these exactly up to documented data-dependent skips.
    pub analytic: OpCounts,
    /// Analytic noise charge in bits (Table-4 model): an upper bound on
    /// the invariant-noise growth this step inflicts on the RLWE chain it
    /// participates in, computed at compile time from
    /// [`athena_fhe::noise::NoiseModel`]/[`StepDepths`] with the step's
    /// concrete fan-ins.
    /// Steps that operate below the RLWE layer (extraction, dimension
    /// switch, LWE adds, output) charge 0; the pooling composite charges
    /// its worst single inner pack→FBS→S2C chain (each round restarts from
    /// fresh packing noise, so one round's chain is the binding
    /// constraint). The probe mode of [`super::execute_probed`] pins
    /// `charge ≥ measured consumption` per step.
    pub noise_bits: u32,
}

/// All steps of one model node.
#[derive(Debug, Clone)]
pub struct PlanLayer {
    /// Node index in the source model.
    pub node: usize,
    /// Steps in execution order.
    pub steps: Vec<PlanStep>,
}

/// Key material a plan demands (all deduplicated).
#[derive(Debug, Clone, Default)]
pub struct KeyRequirements {
    /// Galois elements for every rotation in the plan (S2C ∪ BSGS packing),
    /// sorted and deduplicated.
    pub galois: Vec<usize>,
    /// Whether any step relinearizes (FBS CMults).
    pub relin: bool,
    /// Whether any step switches LWE dimension.
    pub lwe_ksk: bool,
    /// Whether the column packing key is used.
    pub pack_column: bool,
    /// Whether the BSGS packing key is used.
    pub pack_bsgs: bool,
}

/// A compiled execution plan: the typed IR the executor interprets, the
/// trace derives from, and keygen sizes key material against.
#[derive(Debug, Clone)]
pub struct ExecutionPlan {
    /// Ring degree.
    pub n: usize,
    /// Plaintext modulus.
    pub t: u64,
    /// Intermediate extraction prime.
    pub q_mid: u64,
    /// Small LWE dimension.
    pub lwe_n: usize,
    /// RNS limb count of `Q`.
    pub limbs: usize,
    /// Packing method the plan was compiled for.
    pub packing: PackingMethod,
    /// Coefficient position of each flat input activation.
    pub input_positions: Vec<usize>,
    /// Input tensor shape.
    pub input_shape: Vec<usize>,
    /// Per-node step lists.
    pub layers: Vec<PlanLayer>,
    keys: KeyRequirements,
}

impl ExecutionPlan {
    /// The key material this plan demands.
    pub fn required_keys(&self) -> &KeyRequirements {
        &self.keys
    }

    /// Total step count.
    pub fn step_count(&self) -> usize {
        self.layers.iter().map(|l| l.steps.len()).sum()
    }

    /// Sum of all steps' analytic counts.
    pub fn analytic_total(&self) -> OpCounts {
        let mut t = OpCounts::default();
        for l in &self.layers {
            for s in &l.steps {
                t.add(&s.analytic);
            }
        }
        t
    }

    /// The worst single RLWE chain's analytic noise charge in bits: each
    /// `pack` starts a fresh chain (homomorphic decryption re-encrypts
    /// from fresh key material) that runs pack → FBS → S2C → the next
    /// `linear`, so the decryptability constraint of Table 4 is the
    /// maximum chain total, not the whole-plan sum. The input encryption
    /// opens the first chain (its `linear` steps charge against fresh
    /// noise too).
    pub fn worst_chain_noise_bits(&self) -> u32 {
        let mut worst = 0u32;
        let mut chain = 0u32;
        for l in &self.layers {
            for s in &l.steps {
                if matches!(s.op, StepOp::Pack { .. }) {
                    worst = worst.max(chain);
                    chain = 0;
                }
                chain += s.noise_bits;
            }
        }
        worst.max(chain)
    }

    /// Derives the [`ModelTrace`] the accelerator model consumes from the
    /// plan's analytic per-step counts: same steps, same schedules — the
    /// trace *is* the plan, re-grouped by (layer, phase).
    pub fn to_trace(&self, name: &'static str, quant: &QuantConfig) -> ModelTrace {
        let params = TraceParams {
            n: self.n,
            limbs: self.limbs,
            t: self.t,
            lwe_n: self.lwe_n,
        };
        let layers = self
            .layers
            .iter()
            .map(|pl| {
                let mut per: Vec<(Phase, OpCounts)> = Phase::all()
                    .iter()
                    .map(|&p| (p, OpCounts::default()))
                    .collect();
                for s in &pl.steps {
                    let slot = per
                        .iter_mut()
                        .find(|(p, _)| *p == s.phase)
                        .expect("phase present");
                    slot.1.add(&s.analytic);
                }
                LayerTrace {
                    layer: pl.node,
                    phases: per
                        .into_iter()
                        .filter(|(_, c)| *c != OpCounts::default())
                        .collect(),
                }
            })
            .collect();
        ModelTrace {
            name,
            params,
            quant: *quant,
            layers,
        }
    }
}

/// Converts the measured counter snapshot into trace units.
pub fn counts_from_hom(h: &HomOpCounts) -> OpCounts {
    OpCounts {
        pmult: h.pmult,
        cmult: h.cmult,
        smult: h.smult,
        hadd: h.hadd,
        hrot: h.hrot,
        sample_extract: h.sample_extract,
        mod_switch: h.mod_switch,
    }
}

/// The runtime noise charge of one FBS step: the paper's Table-4 row
/// ([`StepDepths::fbs`]: `⌈log₂(t−1)⌉+1` CMult, 1 SMult,
/// `⌈log₂(t−1)⌉−1` HAdd) plus the slack the concrete Alg. 2 schedule
/// demonstrably pays and the paper's production row absorbs in its
/// Δ-granularity rounding: one binary operand-sum HAdd per CMult level
/// (`v_out ≈ N·t·(v₁+v₂)` — the `+v₂` is a real bit per depth), the
/// relinearization key-switch slack (`ks_slack` — injected at every tree
/// level and amplified by the remainder, bounded by one floor hop), and
/// the non-valid-slot mask PMult when the LUT moves 0. The
/// noise-telemetry tests pin this as a true upper bound on the measured
/// consumption; §7 of DESIGN.md records the deviation from the published
/// row.
fn fbs_runtime_charge(t: u64, mask: bool, nm: &NoiseModel, ks_slack: u32) -> u32 {
    let d = StepDepths::fbs(t).cmult; // ⌈log₂(t−1)⌉ + 1
    StepDepths::fbs(t)
        .with_pmult(u32::from(mask))
        .with_hadd(d)
        .noise_bits(nm)
        + ks_slack
}

/// One output-channel group of a linear layer, fully resolved.
struct LinearGroupPlan {
    kernel: Vec<i64>,
    bias: Vec<(usize, i64)>,
    positions: Vec<usize>,
}

/// Splits a linear layer into output-channel groups that fit the ring and
/// resolves each group's encoded kernel, bias placement, and output
/// positions (the planner half of the old `run_linear_accumulate`).
/// `node` only labels errors.
fn plan_linear_groups(
    node: usize,
    n: usize,
    in_shape: &[usize],
    in_len: usize,
    l: &QLinear,
) -> Result<(Vec<LinearGroupPlan>, Vec<usize>), CompileError> {
    let (c_out, c_in, k) = (
        l.weight.shape()[0],
        l.weight.shape()[1],
        l.weight.shape()[2],
    );
    // Effective input spatial dims (padded for conv; 1×1 for FC). The
    // shape-level constraints (channel/bias/kernel fit, nonzero stride)
    // were checked by `validate_model` before planning started.
    let (hp, wp) = if l.is_fc {
        (1usize, 1usize)
    } else {
        (in_shape[1] + 2 * l.padding, in_shape[2] + 2 * l.padding)
    };
    let eff_cin = if l.is_fc { in_len } else { c_in };
    debug_assert_eq!(
        if l.is_fc { eff_cin } else { c_in },
        if l.is_fc { c_in } else { in_shape[0] },
        "input channel mismatch"
    );
    // Choose output-channel group size that fits.
    let hw = hp * wp;
    let mut co_g = c_out;
    loop {
        let t_idx = hw * (co_g * eff_cin - 1) + wp * (k - 1) + k - 1;
        if t_idx + eff_cin * hw <= n {
            break;
        }
        if co_g == 1 {
            return Err(CompileError::LayerTooLarge { node, n });
        }
        co_g = co_g.div_ceil(2);
    }
    let groups = c_out.div_ceil(co_g);
    let valid = hp - k + 1;
    let out_hw = if l.is_fc {
        1
    } else {
        (in_shape[1] + 2 * l.padding - k) / l.stride + 1
    };
    let mut out = Vec::with_capacity(groups);
    for g in 0..groups {
        let co_lo = g * co_g;
        let co_hi = ((g + 1) * co_g).min(c_out);
        let g_cout = co_hi - co_lo;
        let shape = ConvShape {
            hw: hp,
            c_in: eff_cin,
            c_out: g_cout,
            k,
            stride: 1,
            padding: 0,
        };
        let enc = ConvEncoder::try_new(shape, n)
            .map_err(|source| CompileError::Encoding { node, source })?;
        let per = eff_cin * k * k;
        let kw = ITensor::from_vec(
            &[g_cout, eff_cin, k, k],
            l.weight.data()[co_lo * per..co_hi * per].to_vec(),
        );
        let mut bias = Vec::new();
        let mut positions = Vec::new();
        for co in 0..g_cout {
            for oy in 0..out_hw {
                for ox in 0..out_hw {
                    let (y, x) = (oy * l.stride, ox * l.stride);
                    debug_assert!(y < valid && x < valid);
                    let pos = enc.output_index(co, y, x);
                    positions.push(pos);
                    let b = l.bias[co_lo + co];
                    if b != 0 {
                        bias.push((pos, b));
                    }
                }
            }
        }
        out.push(LinearGroupPlan {
            kernel: enc
                .try_encode_kernel(&kw)
                .map_err(|source| CompileError::Encoding { node, source })?,
            bias,
            positions,
        });
    }
    Ok((out, vec![c_out, out_hw, out_hw]))
}

/// Shape-level validation of a model against a ring degree: walks the
/// dataflow once (no encoding work), inferring every value's shape and
/// rejecting anything the planner or the executor would otherwise panic
/// on. Also enforces the one-layout-per-value rule: every linear/pool
/// consumer of a stored value must demand the same padding, because the
/// value is packed into coefficient slots exactly once (for its first
/// consumer).
pub(crate) fn validate_model(
    model: &QModel,
    input_shape: &[usize],
    n: usize,
) -> Result<Vec<Vec<usize>>, CompileError> {
    if model.nodes.is_empty() {
        return Err(CompileError::EmptyModel);
    }
    if input_shape.len() != 3 {
        return Err(CompileError::BadInputShape {
            shape: input_shape.to_vec(),
        });
    }
    let last = model.nodes.len() - 1;
    if !matches!(model.nodes[last].op, QOp::Linear(_)) {
        return Err(CompileError::PoolingFinal { node: last });
    }
    let mut shapes: Vec<Vec<usize>> = vec![input_shape.to_vec()];
    for (ni, node) in model.nodes.iter().enumerate() {
        if node.input > ni {
            return Err(CompileError::BadReference {
                node: ni,
                value: node.input,
            });
        }
        let in_shape = shapes[node.input].clone();
        let out_shape: Vec<usize> = match &node.op {
            QOp::Linear(l) => {
                let (c_out, c_in, k) = (
                    l.weight.shape()[0],
                    l.weight.shape()[1],
                    l.weight.shape()[2],
                );
                if l.stride == 0 {
                    return Err(CompileError::ZeroDim { node: ni });
                }
                if l.bias.len() != c_out {
                    return Err(CompileError::BiasMismatch {
                        node: ni,
                        expected: c_out,
                        got: l.bias.len(),
                    });
                }
                if l.is_fc {
                    let in_len: usize = in_shape.iter().product();
                    if c_in != in_len {
                        return Err(CompileError::ChannelMismatch {
                            node: ni,
                            expected: c_in,
                            got: in_len,
                        });
                    }
                    if k != 1 {
                        return Err(CompileError::KernelExceedsInput {
                            node: ni,
                            k,
                            extent: 1,
                        });
                    }
                    // Single-output-channel group fit (the planner's co_g=1
                    // floor): 2·in_len − 1 coefficients.
                    if 2 * in_len - 1 > n {
                        return Err(CompileError::LayerTooLarge { node: ni, n });
                    }
                    vec![c_out, 1, 1]
                } else {
                    if c_in != in_shape[0] {
                        return Err(CompileError::ChannelMismatch {
                            node: ni,
                            expected: c_in,
                            got: in_shape[0],
                        });
                    }
                    let extent = in_shape[1].min(in_shape[2]) + 2 * l.padding;
                    if k == 0 || k > extent {
                        return Err(CompileError::KernelExceedsInput {
                            node: ni,
                            k,
                            extent,
                        });
                    }
                    // Single-output-channel group fit (the planner's co_g=1
                    // floor): the tail kernel tap plus one input copy.
                    let (hp, wp) = (in_shape[1] + 2 * l.padding, in_shape[2] + 2 * l.padding);
                    let hw = hp * wp;
                    let t_idx = hw * (c_in - 1) + wp * (k - 1) + k - 1;
                    if t_idx + c_in * hw > n {
                        return Err(CompileError::LayerTooLarge { node: ni, n });
                    }
                    let oh = (in_shape[1] + 2 * l.padding - k) / l.stride + 1;
                    let ow = (in_shape[2] + 2 * l.padding - k) / l.stride + 1;
                    vec![c_out, oh, ow]
                }
            }
            QOp::MaxPool { k } | QOp::AvgPool { k } => {
                if *k == 0 {
                    return Err(CompileError::ZeroDim { node: ni });
                }
                let (c, h, w) = (in_shape[0], in_shape[1], in_shape[2]);
                if h / k == 0 || w / k == 0 {
                    return Err(CompileError::PoolEmptyOutput {
                        node: ni,
                        k: *k,
                        h: h.min(w),
                    });
                }
                vec![c, h / k, w / k]
            }
        };
        if let Some((skip_idx, _)) = node.skip {
            if skip_idx > ni {
                return Err(CompileError::BadReference {
                    node: ni,
                    value: skip_idx,
                });
            }
            let acc: usize = out_shape.iter().product();
            let skip: usize = shapes[skip_idx].iter().product();
            if acc != skip {
                return Err(CompileError::SkipShapeMismatch {
                    node: ni,
                    acc,
                    skip,
                });
            }
        }
        shapes.push(out_shape);
    }
    // One layout per stored value: collect the padding every linear/pool
    // consumer demands (FC and pooling read the flat layout, which equals
    // a conv layout of padding 0) and reject conflicts. Residual skips
    // read by stored positions, so they are layout-agnostic.
    for (value, s) in shapes.iter().enumerate() {
        let mut paddings: Vec<usize> = Vec::new();
        for node in &model.nodes {
            if node.input != value {
                continue;
            }
            let p = match &node.op {
                QOp::Linear(l) if !l.is_fc => l.padding,
                _ => 0,
            };
            if !paddings.contains(&p) {
                paddings.push(p);
            }
        }
        if paddings.len() > 1 {
            return Err(CompileError::LayoutConflict { value, paddings });
        }
        let p = paddings.first().copied().unwrap_or(0);
        let len = s[0] * (s[1] + 2 * p) * (s[2] + 2 * p);
        if len > n {
            return Err(CompileError::ValueTooLarge { value, len, n });
        }
    }
    Ok(shapes)
}

/// Compiles a quantized model into an [`ExecutionPlan`] for an engine.
///
/// The structural pass below resolves layouts, group splits, LUTs, key
/// requirements, and per-step noise charges; the per-step *analytic op
/// counts* are then backfilled by dry-running the finished plan through
/// [`super::CountingBackend`] — the same `run_step` interpreter the
/// executor walks, so the analytic accounting cannot drift from the
/// execution semantics.
///
/// # Panics
///
/// Panics if the model is rejected by [`try_compile`] — misfit layers,
/// shape mismatches, pool-final models, conflicting consumer layouts.
pub fn compile(engine: &AthenaEngine, model: &QModel, input_shape: &[usize]) -> ExecutionPlan {
    try_compile(engine, model, input_shape)
        .unwrap_or_else(|e| panic!("plan compilation failed: {e}"))
}

/// Fallible [`compile`]: the serving path, which takes user-shaped models,
/// gets a typed [`CompileError`] instead of a panic.
pub fn try_compile(
    engine: &AthenaEngine,
    model: &QModel,
    input_shape: &[usize],
) -> Result<ExecutionPlan, CompileError> {
    let ctx = engine.context();
    let n = ctx.n();
    let t = ctx.t();
    let a_max = model.cfg.a_max();
    validate_model(model, input_shape, n)?;

    // The Table-4 noise model at this engine's parameters, and the charges
    // of the two fixed-shape tail steps. The S2C fan-in is the single-stage
    // transform's own diagonal count (its schedule is engine-static).
    // Key-switching steps (S2C and BSGS-packing rotations, FBS relin) also
    // charge the gadget noise-floor slack — see
    // `NoiseModel::keyswitch_slack_bits`.
    let nm = engine.noise_model();
    let limb_bits = ctx
        .params()
        .q_primes
        .iter()
        .map(|&p| 64 - p.leading_zeros())
        .max()
        .unwrap_or(0);
    let ks_slack = nm.keyswitch_slack_bits(limb_bits, ctx.params().q_primes.len() as u32);
    let pack_charge = StepDepths::packing(ctx.params().lwe_n as u64).noise_bits(&nm)
        + match engine.packing_method() {
            PackingMethod::Column => 0,
            PackingMethod::Bsgs => ks_slack,
        };
    let s2c_charge = StepDepths::s2c(1, engine.slot_to_coeff().op_counts().pmult.max(1))
        .noise_bits(&nm)
        + ks_slack;

    struct PlannedValue {
        positions: Vec<usize>,
        shape: Vec<usize>,
    }
    let in_layout = consumer_layout(model, 0, input_shape, n);
    let mut values: Vec<Option<PlannedValue>> = vec![Some(PlannedValue {
        positions: in_layout.positions.clone(),
        shape: input_shape.to_vec(),
    })];

    let mut layers = Vec::with_capacity(model.nodes.len());
    let mut keys = KeyRequirements::default();
    let note_pack = |keys: &mut KeyRequirements| match engine.packing_method() {
        PackingMethod::Column => keys.pack_column = true,
        PackingMethod::Bsgs => keys.pack_bsgs = true,
    };

    for (ni, node) in model.nodes.iter().enumerate() {
        let is_last = ni == model.nodes.len() - 1;
        let sv = values[node.input].as_ref().expect("producer planned");
        let (sv_positions, sv_shape) = (sv.positions.clone(), sv.shape.clone());
        let mut steps: Vec<PlanStep> = Vec::new();
        let out_shape: Vec<usize> = match &node.op {
            QOp::Linear(l) => {
                // Structural accumulation fan-in of the step: all of
                // `C_in·k²` taps (the paper's production row charges the
                // channel fan-in only; counting the spatial taps too is
                // strictly more conservative).
                let k = l.weight.shape()[2];
                let eff_cin = if l.is_fc {
                    sv_positions.len()
                } else {
                    l.weight.shape()[1]
                };
                let fan_in = (eff_cin * k * k).max(1) as u64;
                let (groups, out_shape) =
                    plan_linear_groups(ni, n, &sv_shape, sv_positions.len(), l)?;
                for g in groups {
                    let has_bias = !g.bias.is_empty();
                    steps.push(PlanStep {
                        phase: Phase::Linear,
                        analytic: OpCounts::default(),
                        noise_bits: StepDepths::linear(fan_in)
                            .with_hadd(u32::from(has_bias))
                            .noise_bits(&nm),
                        op: StepOp::Linear {
                            value: node.input,
                            kernel: g.kernel,
                            bias: g.bias,
                        },
                    });
                    steps.push(PlanStep {
                        phase: Phase::Conversion,
                        analytic: OpCounts::default(),
                        noise_bits: 0,
                        op: StepOp::ModSwitch { value: None },
                    });
                    steps.push(PlanStep {
                        phase: Phase::Conversion,
                        analytic: OpCounts::default(),
                        noise_bits: 0,
                        op: StepOp::ExtractLwes {
                            positions: g.positions,
                        },
                    });
                    keys.lwe_ksk = true;
                    steps.push(PlanStep {
                        phase: Phase::Conversion,
                        analytic: OpCounts::default(),
                        noise_bits: 0,
                        op: StepOp::DimSwitch {
                            drop_to_t: !is_last,
                        },
                    });
                }
                if let Some((skip_idx, mult)) = node.skip {
                    let skip = values[skip_idx].as_ref().expect("skip planned");
                    steps.push(PlanStep {
                        phase: Phase::Conversion,
                        analytic: OpCounts::default(),
                        noise_bits: 0,
                        op: StepOp::ResidualAdd {
                            skip: skip_idx,
                            positions: skip.positions.clone(),
                            mult,
                            drop_to_t: !is_last,
                        },
                    });
                }
                out_shape
            }
            QOp::MaxPool { k } => {
                let (c, h, w) = (sv_shape[0], sv_shape[1], sv_shape[2]);
                steps.push(PlanStep {
                    phase: Phase::Conversion,
                    analytic: OpCounts::default(),
                    noise_bits: 0,
                    op: StepOp::ModSwitch {
                        value: Some(node.input),
                    },
                });
                steps.push(PlanStep {
                    phase: Phase::Conversion,
                    analytic: OpCounts::default(),
                    noise_bits: 0,
                    op: StepOp::ExtractLwes {
                        positions: sv_positions.clone(),
                    },
                });
                keys.lwe_ksk = true;
                steps.push(PlanStep {
                    phase: Phase::Conversion,
                    analytic: OpCounts::default(),
                    noise_bits: 0,
                    op: StepOp::DimSwitch { drop_to_t: true },
                });
                // Each max round packs, bootstraps, and re-extracts.
                keys.relin = true;
                note_pack(&mut keys);
                steps.push(PlanStep {
                    phase: Phase::Pooling,
                    analytic: OpCounts::default(),
                    // Each inner round runs a full pack → FBS(ReLU) → S2C
                    // chain that restarts from fresh packing noise, so the
                    // composite's charge is one round's chain total.
                    noise_bits: pack_charge
                        + fbs_runtime_charge(t, false, &nm, ks_slack)
                        + s2c_charge,
                    op: StepOp::MaxReduce {
                        k: *k,
                        shape: [c, h, w],
                    },
                });
                vec![c, h / k, w / k]
            }
            QOp::AvgPool { k } => {
                let (c, h, w) = (sv_shape[0], sv_shape[1], sv_shape[2]);
                steps.push(PlanStep {
                    phase: Phase::Conversion,
                    analytic: OpCounts::default(),
                    noise_bits: 0,
                    op: StepOp::ModSwitch {
                        value: Some(node.input),
                    },
                });
                steps.push(PlanStep {
                    phase: Phase::Conversion,
                    analytic: OpCounts::default(),
                    noise_bits: 0,
                    op: StepOp::ExtractLwes {
                        positions: sv_positions.clone(),
                    },
                });
                keys.lwe_ksk = true;
                steps.push(PlanStep {
                    phase: Phase::Conversion,
                    analytic: OpCounts::default(),
                    noise_bits: 0,
                    op: StepOp::DimSwitch { drop_to_t: true },
                });
                steps.push(PlanStep {
                    phase: Phase::Pooling,
                    analytic: OpCounts::default(),
                    noise_bits: 0,
                    op: StepOp::AvgReduce {
                        k: *k,
                        shape: [c, h, w],
                    },
                });
                vec![c, h / k, w / k]
            }
        };

        if is_last {
            let scale = match &node.op {
                QOp::Linear(l) => l.in_scale * l.w_scale,
                _ => 1.0,
            };
            steps.push(PlanStep {
                phase: Phase::Linear,
                analytic: OpCounts::default(),
                noise_bits: 0,
                op: StepOp::Output { scale },
            });
            values.push(None);
            layers.push(PlanLayer { node: ni, steps });
            continue;
        }

        // The five-step tail: pack into the consumer's layout, bootstrap
        // through the fused remap LUT, and bridge back to coefficients.
        let layout = consumer_layout(model, ni + 1, &out_shape, n);
        let lut = match &node.op {
            QOp::Linear(l) => {
                let lc = l.clone();
                Lut::from_signed_fn(t, move |v| lc.remap(v, a_max))
            }
            QOp::AvgPool { k } => {
                let kk = (k * k) as f64;
                Lut::from_signed_fn(t, move |v| {
                    ((v as f64 / kk).round() as i64).clamp(-a_max, a_max)
                })
            }
            QOp::MaxPool { .. } => Lut::from_signed_fn(t, |v| v),
        };
        note_pack(&mut keys);
        keys.relin = true;
        steps.push(PlanStep {
            phase: Phase::Conversion,
            analytic: OpCounts::default(),
            noise_bits: pack_charge,
            op: StepOp::Pack {
                slot_of: layout.slot_of.clone(),
            },
        });
        let needs_mask = lut.get(0) != 0 && layout.slot_of.iter().any(|s| s.is_none());
        let fbs_phase = match &node.op {
            QOp::Linear(_) => Phase::Activation,
            _ => Phase::Pooling,
        };
        steps.push(PlanStep {
            phase: fbs_phase,
            analytic: OpCounts::default(),
            noise_bits: fbs_runtime_charge(t, needs_mask, &nm, ks_slack),
            op: StepOp::Fbs { lut },
        });
        steps.push(PlanStep {
            phase: Phase::Conversion,
            analytic: OpCounts::default(),
            noise_bits: s2c_charge,
            op: StepOp::S2C {
                value: ni + 1,
                positions: layout.positions.clone(),
                shape: out_shape.clone(),
            },
        });
        values.push(Some(PlannedValue {
            positions: layout.positions,
            shape: out_shape,
        }));
        layers.push(PlanLayer { node: ni, steps });
    }

    // Galois requirements: the S2C schedule whenever an S2C happens (every
    // non-final layer and every max round), and the BSGS packing schedule
    // when packing runs via BSGS — merged into one deduplicated set.
    let uses_s2c = layers.iter().any(|l| {
        l.steps
            .iter()
            .any(|s| matches!(s.op, StepOp::S2C { .. } | StepOp::MaxReduce { .. }))
    });
    let mut galois = Vec::new();
    if uses_s2c {
        galois.extend(engine.slot_to_coeff().required_galois_elements(ctx));
    }
    if keys.pack_bsgs {
        galois.extend(BsgsPackingKey::required_galois_elements_for(
            ctx,
            ctx.params().lwe_n,
        ));
    }
    galois.sort_unstable();
    galois.dedup();
    keys.galois = galois;

    let mut plan = ExecutionPlan {
        n,
        t,
        q_mid: engine.q_mid(),
        lwe_n: ctx.params().lwe_n,
        limbs: ctx.params().q_primes.len(),
        packing: engine.packing_method(),
        input_positions: in_layout.positions,
        input_shape: input_shape.to_vec(),
        layers,
        keys,
    };

    // Backfill the analytic op counts by dry-running the finished plan
    // through the CountingBackend: per-step counts come out of the same
    // generic interpreter the executor runs, with every engine primitive
    // replaced by its schedule dry-run.
    let counts = execute_counting(engine, &plan);
    debug_assert_eq!(counts.len(), plan.step_count());
    let mut it = counts.into_iter();
    for layer in &mut plan.layers {
        for step in &mut layer.steps {
            step.analytic = it.next().expect("one count per step");
        }
    }

    // Compile-time noise guardrail: reject plans whose worst analytic
    // chain cannot fit the parameter set's headroom (with the engine's
    // configured margin) — the run would exhaust deterministically, so
    // fail typed at compile time rather than mid-inference.
    if let Some(margin) = engine.noise_margin_bits() {
        let chain_bits = plan.worst_chain_noise_bits();
        let budget_bits = nm.headroom_bits();
        if chain_bits.saturating_add(margin) > budget_bits {
            return Err(CompileError::NoiseBudget {
                chain_bits,
                budget_bits,
                margin,
            });
        }
    }
    Ok(plan)
}

impl AthenaEngine {
    /// Plan-driven key generation: generates exactly the deduplicated
    /// Galois and packing key material [`ExecutionPlan::required_keys`]
    /// demands, and validates Galois coverage with `ensure_covers` before
    /// returning. For a plan that exercises the engine's full loop this
    /// produces the same key set as [`AthenaEngine::keygen`] (identical
    /// sampler draw order); for narrower plans it generates less.
    pub fn keygen_for_plan(
        &self,
        plan: &ExecutionPlan,
        sampler: &mut Sampler,
    ) -> (AthenaSecrets, AthenaEvalKeys) {
        let req = plan.required_keys();
        let ctx = self.context();
        let sk = SecretKey::generate(ctx, sampler);
        let lwe_sk = LweSecret::generate(ctx.params().lwe_n, ctx.t(), sampler);
        let rlk = RelinKey::generate(ctx, &sk, sampler);
        let gk = GaloisKeys::generate(ctx, &sk, &req.galois, sampler);
        // A schedule change that forgets an element fails at keygen, not
        // mid-inference.
        gk.ensure_covers(&req.galois);
        let big = rlwe_secret_as_lwe_mod(&sk, plan.q_mid);
        let small_mid = LweSecret::from_coeffs(lwe_sk.coeffs().to_vec(), plan.q_mid);
        let lwe_ksk =
            LweKeySwitchKey::generate(&big, &small_mid, ctx.params().lwe_ks_base_log, sampler);
        let pack = ColumnPackingKey::generate(ctx, &sk, &lwe_sk, sampler);
        let pack_bsgs = if req.pack_bsgs {
            let k = BsgsPackingKey::generate(ctx, &sk, &lwe_sk, sampler);
            gk.ensure_covers(&k.required_galois_elements(ctx));
            Some(k)
        } else {
            None
        };
        (
            AthenaSecrets { sk, lwe_sk },
            AthenaEvalKeys {
                rlk,
                gk,
                lwe_ksk,
                pack,
                pack_bsgs,
            },
        )
    }
}
