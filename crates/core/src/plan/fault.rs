//! Seeded fault injection for the plan executor: a [`FaultPlan`] chooses
//! *what* goes wrong at *which* step, and [`FaultInjectingBackend`] wraps
//! any [`PlanBackend`] to make it happen.
//!
//! The harness exists to exercise the resilient serving path
//! ([`super::execute_resilient`], [`super::InferenceSession`]) against
//! the failure modes a long-lived FHE server actually sees: a step that
//! panics mid-request, a ciphertext whose limbs are corrupted (a single
//! perturbed word makes the CRT residues inconsistent, so the measured
//! invariant-noise budget collapses), a run whose noise budget is
//! artificially exhausted, and a step slow enough to blow a deadline.
//! Faults are chosen by an in-repo PRNG under the same seed-salting
//! discipline as `crate::fuzz::gen`, so every chaos case is reproducible
//! from `(seed, case index)` alone.
//!
//! Composability: the wrapper is generic over the backend and its value
//! types — it injects into the encrypted pipeline, the noise simulation,
//! and the counting dry run alike (corruption is a [`FaultTarget`]
//! behavior of the value type; the unit values of the counting backend
//! corrupt to nothing).

use std::time::Duration;

use athena_fhe::bfv::BfvCiphertext;
use athena_fhe::fbs::Lut;
use athena_math::prng::Prng;

use crate::trace::OpCounts;

use super::backend::PlanBackend;

/// Seed salt of the fault-plan PRNG (the same discipline as
/// `fuzz::gen`: independent streams come from XOR salts on one seed).
const FAULT_SALT: u64 = 0x5f_a0_17_c3_8e_21_d9_44;

/// What goes wrong at an injected step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The step panics (a worker crash mid-request).
    Panic,
    /// One word of one limb of the step's RLWE output is perturbed,
    /// making its CRT residues inconsistent — under probing the measured
    /// budget collapses and the run fails typed as noise exhaustion.
    CorruptLimb,
    /// `bits` of artificial noise-budget consumption charged at the
    /// step's probe point (carried forward to the next probed step when
    /// the step itself produces no RLWE value). Only observable under
    /// [`super::NoiseProbe::On`].
    NoiseSpike {
        /// Budget bits to burn.
        bits: u32,
    },
    /// The step sleeps before running (a straggler; pairs with
    /// [`super::RunPolicy`] deadlines).
    SlowStep {
        /// Sleep duration in milliseconds.
        millis: u64,
    },
}

impl FaultKind {
    /// A stable short name, for reports.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::CorruptLimb => "corrupt-limb",
            FaultKind::NoiseSpike { .. } => "noise-spike",
            FaultKind::SlowStep { .. } => "slow-step",
        }
    }
}

/// One injected fault: which flat step index it fires at, what it does,
/// and optional filters for retry/batch scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Flat step index (execution order across all layers) the fault
    /// fires at.
    pub step: usize,
    /// What goes wrong.
    pub kind: FaultKind,
    /// Fire only on this attempt number (1-based); `None` = every
    /// attempt. `Some(1)` makes a fault transient: the first attempt
    /// fails, the retry succeeds.
    pub on_attempt: Option<u32>,
    /// Fire only for this batch input index; `None` = every input. Lets
    /// a chaos case fault exactly one item of a batch and assert its
    /// neighbors are unharmed.
    pub on_input: Option<usize>,
}

impl FaultSpec {
    /// A fault firing at `step` on every attempt and input.
    pub fn at(step: usize, kind: FaultKind) -> Self {
        Self {
            step,
            kind,
            on_attempt: None,
            on_input: None,
        }
    }

    /// Restricts the fault to attempt `attempt` (1-based).
    pub fn on_attempt(mut self, attempt: u32) -> Self {
        self.on_attempt = Some(attempt);
        self
    }

    /// Restricts the fault to batch input `input`.
    pub fn on_input(mut self, input: usize) -> Self {
        self.on_input = Some(input);
        self
    }
}

/// A reproducible set of faults to inject into one execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed of the corruption PRNG (which word of which limb gets
    /// perturbed).
    pub seed: u64,
    /// The faults, in no particular order; at most one fires per step.
    pub faults: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An explicit fault plan.
    pub fn new(seed: u64, faults: Vec<FaultSpec>) -> Self {
        Self { seed, faults }
    }

    /// The single-fault plan "panic at flat step `step`" — the workhorse
    /// of the chaos sweep.
    pub fn panic_at(step: usize) -> Self {
        Self::new(0, vec![FaultSpec::at(step, FaultKind::Panic)])
    }

    /// A seeded random fault plan over a plan of `step_count` steps:
    /// picks one step and one kind per `(seed, case)` pair, under the
    /// `fuzz::gen` salting discipline.
    pub fn seeded(seed: u64, case: usize, step_count: usize) -> Self {
        let mut r = Prng::seed_from_u64(seed ^ FAULT_SALT ^ (case as u64).wrapping_mul(0x9e37));
        let step = r.next_below(step_count.max(1) as u64) as usize;
        let kind = match r.next_below(4) {
            0 => FaultKind::Panic,
            1 => FaultKind::CorruptLimb,
            2 => FaultKind::NoiseSpike {
                bits: 10_000 + r.next_below(50_000) as u32,
            },
            _ => FaultKind::SlowStep {
                millis: r.next_below(3),
            },
        };
        Self::new(seed, vec![FaultSpec::at(step, kind)])
    }

    /// The fault (if any) firing at flat step `index` for `(attempt,
    /// input)`.
    pub fn fault_at(&self, index: usize, attempt: u32, input: Option<usize>) -> Option<FaultKind> {
        self.faults
            .iter()
            .find(|f| {
                f.step == index
                    && f.on_attempt.is_none_or(|a| a == attempt)
                    && (f.on_input.is_none() || f.on_input == input)
            })
            .map(|f| f.kind)
    }
}

/// A value a [`FaultKind::CorruptLimb`] fault can perturb. The encrypted
/// backend's ciphertexts take a single-word limb perturbation; the
/// simulation's integer vectors take a single-element perturbation; the
/// counting backend's unit values have nothing to corrupt.
pub trait FaultTarget {
    /// Perturbs one element of `self`, chosen by `prng`.
    fn corrupt(&mut self, prng: &mut Prng);
}

impl FaultTarget for BfvCiphertext {
    fn corrupt(&mut self, prng: &mut Prng) {
        // Perturb one word of one limb of part 0. The decrement keeps the
        // value reduced mod the limb prime (primes are > 2), but the CRT
        // residues are now inconsistent, so reconstruction — and with it
        // the measured invariant-noise budget — collapses.
        let part = &mut self.parts_mut()[0];
        let limb = prng.next_below(part.limb_count() as u64) as usize;
        let word = prng.next_below(part.n() as u64) as usize;
        let v = &mut part.limbs_mut()[limb].values_mut()[word];
        *v = if *v > 0 { *v - 1 } else { 1 };
    }
}

impl FaultTarget for Vec<i64> {
    fn corrupt(&mut self, prng: &mut Prng) {
        if !self.is_empty() {
            let i = prng.next_below(self.len() as u64) as usize;
            self[i] = self[i].wrapping_add(1);
        }
    }
}

impl FaultTarget for () {
    fn corrupt(&mut self, _prng: &mut Prng) {}
}

/// Wraps a backend and injects the faults of a [`FaultPlan`]: panics and
/// sleeps fire in [`PlanBackend::note_step`] (before the step runs),
/// corruption arms there and lands on the step's RLWE output, and noise
/// spikes accumulate for the executor to drain via
/// [`FaultInjectingBackend::take_spike`].
pub struct FaultInjectingBackend<'p, B: PlanBackend> {
    inner: B,
    plan: &'p FaultPlan,
    attempt: u32,
    input: Option<usize>,
    armed_corrupt: bool,
    pending_spike: u32,
    prng: Prng,
}

impl<'p, B: PlanBackend> FaultInjectingBackend<'p, B> {
    /// Wraps `inner`, injecting `plan`'s faults for `(attempt, input)`.
    pub fn new(inner: B, plan: &'p FaultPlan, attempt: u32, input: Option<usize>) -> Self {
        Self {
            inner,
            plan,
            attempt,
            input,
            armed_corrupt: false,
            pending_spike: 0,
            prng: Prng::seed_from_u64(plan.seed ^ FAULT_SALT.rotate_left(17)),
        }
    }

    /// Drains the artificial noise-budget consumption armed since the
    /// last call (bits).
    pub fn take_spike(&mut self) -> u32 {
        std::mem::take(&mut self.pending_spike)
    }

    /// Unwraps the inner backend.
    pub fn into_inner(self) -> B {
        self.inner
    }

    fn maybe_corrupt(&mut self, mut v: B::Rlwe) -> B::Rlwe
    where
        B::Rlwe: FaultTarget,
    {
        if self.armed_corrupt {
            self.armed_corrupt = false;
            v.corrupt(&mut self.prng);
        }
        v
    }
}

impl<B: PlanBackend> PlanBackend for FaultInjectingBackend<'_, B>
where
    B::Rlwe: FaultTarget,
{
    type Rlwe = B::Rlwe;
    type Mid = B::Mid;
    type Lwe = B::Lwe;

    fn note_step(&mut self, node: usize, step: usize, index: usize) {
        self.inner.note_step(node, step, index);
        match self.plan.fault_at(index, self.attempt, self.input) {
            None => {}
            Some(FaultKind::Panic) => {
                panic!("injected fault: panic at node {node} step {step} (flat index {index})")
            }
            Some(FaultKind::CorruptLimb) => self.armed_corrupt = true,
            Some(FaultKind::NoiseSpike { bits }) => self.pending_spike += bits,
            Some(FaultKind::SlowStep { millis }) => {
                std::thread::sleep(Duration::from_millis(millis))
            }
        }
    }

    fn encrypt_input(&mut self, coeffs: &[i64]) -> Self::Rlwe {
        let v = self.inner.encrypt_input(coeffs);
        self.maybe_corrupt(v)
    }

    fn linear(&mut self, ct: &Self::Rlwe, kernel: &[i64], bias: &[(usize, i64)]) -> Self::Rlwe {
        let v = self.inner.linear(ct, kernel, bias);
        self.maybe_corrupt(v)
    }

    fn mod_switch(&mut self, ct: &Self::Rlwe) -> Self::Mid {
        self.inner.mod_switch(ct)
    }

    fn extract_lwes(&mut self, mid: &Self::Mid, positions: &[usize]) -> Vec<Self::Lwe> {
        self.inner.extract_lwes(mid, positions)
    }

    fn dim_switch(&mut self, big: Vec<Self::Lwe>, drop_to_t: bool) -> Vec<Self::Lwe> {
        self.inner.dim_switch(big, drop_to_t)
    }

    fn lwe_add_scaled(&mut self, a: &Self::Lwe, b: &Self::Lwe, mult: i64) -> Self::Lwe {
        self.inner.lwe_add_scaled(a, b, mult)
    }

    fn pack(&mut self, slots: &[Option<Self::Lwe>]) -> Self::Rlwe {
        let v = self.inner.pack(slots);
        self.maybe_corrupt(v)
    }

    fn fbs(&mut self, packed: &Self::Rlwe, lut: &Lut, slots: &[Option<Self::Lwe>]) -> Self::Rlwe {
        let v = self.inner.fbs(packed, lut, slots);
        self.maybe_corrupt(v)
    }

    fn s2c(&mut self, ct: &Self::Rlwe) -> Self::Rlwe {
        let v = self.inner.s2c(ct);
        self.maybe_corrupt(v)
    }

    fn output(&mut self, acc: &[Self::Lwe], scale: f64) -> Vec<f64> {
        self.inner.output(acc, scale)
    }

    fn take_counts(&mut self) -> OpCounts {
        self.inner.take_counts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_reproducible_and_case_varied() {
        let a = FaultPlan::seeded(42, 0, 20);
        let b = FaultPlan::seeded(42, 0, 20);
        assert_eq!(a, b, "same (seed, case) must give the same plan");
        let kinds: Vec<FaultKind> = (0..16)
            .map(|c| FaultPlan::seeded(42, c, 20).faults[0].kind)
            .collect();
        assert!(
            kinds.iter().any(|k| matches!(k, FaultKind::Panic)),
            "16 cases should hit panic at least once: {kinds:?}"
        );
        assert!(
            kinds.iter().any(|k| !matches!(k, FaultKind::Panic)),
            "16 cases should hit a non-panic kind at least once: {kinds:?}"
        );
    }

    #[test]
    fn attempt_and_input_filters_gate_firing() {
        let plan = FaultPlan::new(
            0,
            vec![
                FaultSpec::at(3, FaultKind::Panic).on_attempt(1),
                FaultSpec::at(5, FaultKind::CorruptLimb).on_input(2),
            ],
        );
        assert_eq!(plan.fault_at(3, 1, None), Some(FaultKind::Panic));
        assert_eq!(plan.fault_at(3, 2, None), None, "attempt filter");
        assert_eq!(plan.fault_at(5, 1, Some(2)), Some(FaultKind::CorruptLimb));
        assert_eq!(plan.fault_at(5, 1, Some(1)), None, "input filter");
        assert_eq!(plan.fault_at(5, 1, None), None, "no input in scope");
        assert_eq!(plan.fault_at(4, 1, None), None, "unfaulted step");
    }

    #[test]
    fn corrupting_a_sim_vector_changes_one_element() {
        let mut v = vec![1i64, 2, 3, 4];
        let orig = v.clone();
        let mut prng = Prng::seed_from_u64(7);
        v.corrupt(&mut prng);
        let diffs = v.iter().zip(&orig).filter(|(a, b)| a != b).count();
        assert_eq!(diffs, 1);
    }
}
