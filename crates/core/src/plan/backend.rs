//! The [`PlanBackend`] trait and its three implementations.
//!
//! A backend supplies the *value types* and *primitive semantics* the
//! generic step interpreter ([`super::exec`]) drives; the interpreter owns
//! the control flow (group accumulation, pooling trees, residual adds), so
//! every backend interprets the identical step sequence:
//!
//! * [`EncryptedBackend`] — the real RNS-BFV pipeline. Each method wraps
//!   the corresponding [`AthenaEngine`] primitive; logits are bit-identical
//!   to the pre-refactor monolithic executor.
//! * [`NoiseSimBackend`] — exact mod-`t` integer arithmetic over plaintext
//!   vectors with the §3.2.2 `e_ms` rounding noise injected at every
//!   `q_mid → t` LWE drop. At σ = 0 it reproduces the plain-Q integer
//!   reference exactly; at σ > 0 it is the plan-certified counterpart of
//!   [`crate::simulate::simulate_inference`].
//! * [`CountingBackend`] — value-free: every method only tallies the
//!   analytic [`OpCounts`] of the schedule the engine would run. The
//!   compiler dry-runs it over the finished plan to backfill
//!   [`super::PlanStep::analytic`], so analytic accounting is literally
//!   the execution code path.

use athena_fhe::bfv::BfvCiphertext;
use athena_fhe::extract::SmallRlwe;
use athena_fhe::fbs::{expected_stats, FbsStats, Lut};
use athena_fhe::lwe::LweCiphertext;
use athena_math::modops::Modulus;
use athena_math::sampler::Sampler;

use crate::pipeline::{AthenaEngine, AthenaEvalKeys, AthenaSecrets, PipelineStats};
use crate::simulate::NoiseSpec;
use crate::trace::OpCounts;

use super::ir::ExecutionPlan;

/// Value types + one primitive per step semantic: what a plan interpreter
/// needs to run a compiled [`ExecutionPlan`] end to end.
///
/// `Rlwe` is a coefficient-encoded ring value (the `Q`-basis ciphertext of
/// the real pipeline), `Mid` its mod-switched `q_mid` form, and `Lwe` one
/// extracted sample. The composite steps (`MaxReduce`, `AvgReduce`,
/// `ResidualAdd`) are *not* trait methods: the interpreter decomposes them
/// into these primitives, so a backend cannot diverge from the executor on
/// the composites' structure.
pub trait PlanBackend {
    /// Coefficient-encoded ring value at the full modulus `Q`.
    type Rlwe: Clone;
    /// Mod-switched ring value at the extraction prime `q_mid`.
    type Mid;
    /// One extracted LWE sample.
    type Lwe: Clone;

    /// Encrypts the length-`n` coefficient vector of the input layout.
    fn encrypt_input(&mut self, coeffs: &[i64]) -> Self::Rlwe;
    /// One linear group: PMult by the encoded kernel + optional bias add.
    fn linear(&mut self, ct: &Self::Rlwe, kernel: &[i64], bias: &[(usize, i64)]) -> Self::Rlwe;
    /// Modulus switch `Q → q_mid`.
    fn mod_switch(&mut self, ct: &Self::Rlwe) -> Self::Mid;
    /// Sample extraction of the listed coefficients (Alg. 1).
    fn extract_lwes(&mut self, mid: &Self::Mid, positions: &[usize]) -> Vec<Self::Lwe>;
    /// LWE dimension switch `N → n`, optionally paying the final drop to
    /// `t` — the exact point where the paper's `e_ms` enters.
    fn dim_switch(&mut self, big: Vec<Self::Lwe>, drop_to_t: bool) -> Vec<Self::Lwe>;
    /// Exact LWE-level `a + mult·b` at the operands' shared modulus.
    fn lwe_add_scaled(&mut self, a: &Self::Lwe, b: &Self::Lwe, mult: i64) -> Self::Lwe;
    /// LWE → RLWE homomorphic decryption (trivial zeros where `None`).
    fn pack(&mut self, slots: &[Option<Self::Lwe>]) -> Self::Rlwe;
    /// Functional bootstrapping with `lut` (plus the non-valid-slot mask
    /// when the LUT moves 0 — `slots` carries the validity pattern).
    fn fbs(&mut self, packed: &Self::Rlwe, lut: &Lut, slots: &[Option<Self::Lwe>]) -> Self::Rlwe;
    /// Slot-to-coefficient bridge.
    fn s2c(&mut self, ct: &Self::Rlwe) -> Self::Rlwe;
    /// Client-side decrypt of the accumulator and dequantization.
    fn output(&mut self, acc: &[Self::Lwe], scale: f64) -> Vec<f64>;
    /// Drains the analytic counts accrued since the last call (the
    /// [`CountingBackend`]'s channel; other backends report none — their
    /// measured counts come from the `op-stats` counters instead).
    fn take_counts(&mut self) -> OpCounts {
        OpCounts::default()
    }
    /// Hook the executor calls immediately before interpreting the step
    /// at `(node, step)` — `index` is the flat execution-order step
    /// index. No-op by default; the fault-injection wrapper
    /// ([`super::FaultInjectingBackend`]) fires panics/sleeps here.
    fn note_step(&mut self, _node: usize, _step: usize, _index: usize) {}
}

/// The real pipeline: every primitive delegates to the corresponding
/// [`AthenaEngine`] call with this backend's keys, secrets, and sampler —
/// the exact calls (and sampler draws) of the pre-trait executor, so
/// logits are bit-identical.
pub struct EncryptedBackend<'a> {
    engine: &'a AthenaEngine,
    secrets: &'a AthenaSecrets,
    keys: &'a AthenaEvalKeys,
    sampler: &'a mut Sampler,
    stats: PipelineStats,
}

impl<'a> EncryptedBackend<'a> {
    /// Wraps an engine + key material + sampler into a backend.
    pub fn new(
        engine: &'a AthenaEngine,
        secrets: &'a AthenaSecrets,
        keys: &'a AthenaEvalKeys,
        sampler: &'a mut Sampler,
    ) -> Self {
        Self {
            engine,
            secrets,
            keys,
            sampler,
            stats: PipelineStats::default(),
        }
    }

    /// The aggregate pipeline statistics accrued so far.
    pub fn into_stats(self) -> PipelineStats {
        self.stats
    }
}

impl PlanBackend for EncryptedBackend<'_> {
    type Rlwe = BfvCiphertext;
    type Mid = SmallRlwe;
    type Lwe = LweCiphertext;

    fn encrypt_input(&mut self, coeffs: &[i64]) -> BfvCiphertext {
        let positions: Vec<usize> = (0..coeffs.len()).collect();
        self.engine
            .encrypt_at(coeffs, &positions, self.secrets, self.sampler)
    }

    fn linear(
        &mut self,
        ct: &BfvCiphertext,
        kernel: &[i64],
        bias: &[(usize, i64)],
    ) -> BfvCiphertext {
        self.engine.linear(ct, kernel, bias, &mut self.stats)
    }

    fn mod_switch(&mut self, ct: &BfvCiphertext) -> SmallRlwe {
        self.engine.mod_switch_mid(ct)
    }

    fn extract_lwes(&mut self, mid: &SmallRlwe, positions: &[usize]) -> Vec<LweCiphertext> {
        self.engine.sample_extract(mid, positions, &mut self.stats)
    }

    fn dim_switch(&mut self, big: Vec<LweCiphertext>, drop_to_t: bool) -> Vec<LweCiphertext> {
        let mut sw = self.engine.dim_switch(&big, self.keys);
        if drop_to_t {
            sw = self.engine.lwes_to_t(&sw);
        }
        sw
    }

    fn lwe_add_scaled(&mut self, a: &LweCiphertext, b: &LweCiphertext, mult: i64) -> LweCiphertext {
        self.engine.lwe_add_scaled(a, b, mult)
    }

    fn pack(&mut self, slots: &[Option<LweCiphertext>]) -> BfvCiphertext {
        self.engine.pack(slots, self.keys, &mut self.stats)
    }

    fn fbs(
        &mut self,
        packed: &BfvCiphertext,
        lut: &Lut,
        slots: &[Option<LweCiphertext>],
    ) -> BfvCiphertext {
        self.engine
            .fbs(packed, lut, slots, self.keys, &mut self.stats)
    }

    fn s2c(&mut self, ct: &BfvCiphertext) -> BfvCiphertext {
        self.engine.s2c(ct, self.keys, &mut self.stats)
    }

    fn output(&mut self, acc: &[LweCiphertext], scale: f64) -> Vec<f64> {
        self.engine
            .decrypt_lwes(acc, self.secrets)
            .iter()
            .map(|&v| v as f64 * scale)
            .collect()
    }
}

/// One simulated LWE sample: the exact message value plus whether it has
/// been dropped to the plaintext modulus `t` (client-bound accumulators
/// stay at `q_mid`, where arithmetic never wraps mod `t` — mirroring the
/// real pipeline's level discipline).
#[derive(Debug, Clone, Copy)]
pub struct SimLwe {
    /// Centered message value.
    pub v: i64,
    /// Whether the sample lives at modulus `t` (wraps) or `q_mid` (exact).
    pub at_t: bool,
}

/// Noise-faithful plaintext interpreter: exact integer arithmetic over
/// centered mod-`t` coefficient vectors, with the §3.2.2 `e_ms` rounding
/// noise `N(0, (tσ/Q)² + (‖s‖²+1)/12)` injected at every `q_mid → t` LWE
/// drop — the only point where the encrypted pipeline perturbs the
/// plaintext computation. At σ = 0 no draws happen and the run is exactly
/// the plain-Q integer reference (given the `t/2` accumulator headroom of
/// §3.3).
///
/// Construction needs only the plan (for `n`, `t`) — no engine, keys, or
/// ciphertext work — so simulated runs cost microseconds. The `Linear`
/// primitive is an `O(n·nnz(kernel))` sparse negacyclic convolution,
/// mirroring the coefficient-encoded PMult.
pub struct NoiseSimBackend {
    n: usize,
    t: u64,
    sigma: f64,
    noise: Sampler,
}

impl NoiseSimBackend {
    /// Builds a simulator for `plan`, forking `sampler` for the noise
    /// stream exactly like [`crate::simulate::simulate_inference`] does.
    pub fn new(plan: &ExecutionPlan, noise: &NoiseSpec, sampler: &mut Sampler) -> Self {
        Self {
            n: plan.n,
            t: plan.t,
            sigma: noise.sigma,
            noise: sampler.fork().with_sigma(noise.sigma),
        }
    }

    fn center(&self, v: i64) -> i64 {
        let m = Modulus::new(self.t);
        m.center(m.from_i64(v))
    }
}

impl PlanBackend for NoiseSimBackend {
    /// Length-`n` centered mod-`t` coefficient (or slot) vector.
    type Rlwe = Vec<i64>;
    type Mid = Vec<i64>;
    type Lwe = SimLwe;

    fn encrypt_input(&mut self, coeffs: &[i64]) -> Vec<i64> {
        assert_eq!(coeffs.len(), self.n);
        coeffs.iter().map(|&v| self.center(v)).collect()
    }

    fn linear(&mut self, ct: &Vec<i64>, kernel: &[i64], bias: &[(usize, i64)]) -> Vec<i64> {
        // Sparse negacyclic convolution: X^i · X^j = ±X^{(i+j) mod n}.
        let n = self.n;
        let mut acc = vec![0i64; n];
        for (j, &w) in kernel.iter().enumerate() {
            if w == 0 {
                continue;
            }
            for (i, &a) in ct.iter().enumerate() {
                if a == 0 {
                    continue;
                }
                let k = i + j;
                if k < n {
                    acc[k] += a * w;
                } else {
                    acc[k - n] -= a * w;
                }
            }
        }
        for &(p, b) in bias {
            acc[p] += b;
        }
        acc.iter().map(|&v| self.center(v)).collect()
    }

    fn mod_switch(&mut self, ct: &Vec<i64>) -> Vec<i64> {
        // Q → q_mid rescales the noise, not the message.
        ct.to_vec()
    }

    fn extract_lwes(&mut self, mid: &Vec<i64>, positions: &[usize]) -> Vec<SimLwe> {
        positions
            .iter()
            .map(|&p| SimLwe {
                v: mid[p],
                at_t: false,
            })
            .collect()
    }

    fn dim_switch(&mut self, big: Vec<SimLwe>, drop_to_t: bool) -> Vec<SimLwe> {
        if !drop_to_t {
            return big;
        }
        big.into_iter()
            .map(|l| {
                let e = if self.sigma > 0.0 {
                    self.noise.gaussian_one()
                } else {
                    0
                };
                SimLwe {
                    v: self.center(l.v + e),
                    at_t: true,
                }
            })
            .collect()
    }

    fn lwe_add_scaled(&mut self, a: &SimLwe, b: &SimLwe, mult: i64) -> SimLwe {
        assert_eq!(a.at_t, b.at_t, "lwe_add_scaled: modulus mismatch");
        let v = a.v + mult * b.v;
        SimLwe {
            v: if a.at_t { self.center(v) } else { v },
            at_t: a.at_t,
        }
    }

    fn pack(&mut self, slots: &[Option<SimLwe>]) -> Vec<i64> {
        let mut out = vec![0i64; self.n];
        for (slot, o) in slots.iter().enumerate() {
            if let Some(l) = o {
                debug_assert!(l.at_t, "packing a q_mid-level LWE");
                out[slot] = l.v;
            }
        }
        out
    }

    fn fbs(&mut self, packed: &Vec<i64>, lut: &Lut, slots: &[Option<SimLwe>]) -> Vec<i64> {
        let needs_mask =
            lut.get(0) != 0 && (slots.len() < self.n || slots.iter().any(|o| o.is_none()));
        (0..self.n)
            .map(|i| {
                let filled = matches!(slots.get(i), Some(Some(_)));
                if filled {
                    lut.get_signed(packed[i])
                } else if needs_mask {
                    0
                } else {
                    lut.get_signed(0)
                }
            })
            .collect()
    }

    fn s2c(&mut self, ct: &Vec<i64>) -> Vec<i64> {
        // Slot i moves to coefficient i — the identity on message values.
        ct.to_vec()
    }

    fn output(&mut self, acc: &[SimLwe], scale: f64) -> Vec<f64> {
        acc.iter().map(|l| l.v as f64 * scale).collect()
    }
}

/// Analytic counts of one FBS step: the dry-run BSGS schedule of the
/// interpolated LUT, the final constant add (paid whenever the evaluation
/// is non-trivial), and the non-valid-slot mask PMult when needed.
pub(crate) fn fbs_analytic(lut: &Lut, mask: bool) -> OpCounts {
    let es = expected_stats(lut);
    let mut c = OpCounts {
        cmult: es.cmult as u64,
        smult: es.smult as u64,
        hadd: es.hadd as u64,
        ..OpCounts::default()
    };
    if es != FbsStats::default() {
        c.hadd += 1; // the constant-coefficient add_plain
    }
    if mask {
        c.pmult += 1;
    }
    c
}

/// Value-free dry run: every primitive tallies the [`OpCounts`] of the
/// schedule the engine would execute — `pack` asks the engine's packing
/// schedule for its expected counts at the step's non-trivial slot count,
/// `fbs` dry-runs the interpolated LUT's BSGS evaluation, `s2c` reads the
/// transform's static schedule. The interpreter drains per-step totals via
/// [`PlanBackend::take_counts`]; `plan::compile` uses them to backfill
/// [`super::PlanStep::analytic`].
pub struct CountingBackend<'a> {
    engine: &'a AthenaEngine,
    counts: OpCounts,
}

impl<'a> CountingBackend<'a> {
    /// A counting backend borrowing the engine's schedules.
    pub fn new(engine: &'a AthenaEngine) -> Self {
        Self {
            engine,
            counts: OpCounts::default(),
        }
    }
}

impl PlanBackend for CountingBackend<'_> {
    type Rlwe = ();
    type Mid = ();
    type Lwe = ();

    fn encrypt_input(&mut self, _coeffs: &[i64]) {}

    fn linear(&mut self, _ct: &(), _kernel: &[i64], bias: &[(usize, i64)]) {
        self.counts.pmult += 1;
        self.counts.hadd += u64::from(!bias.is_empty());
    }

    fn mod_switch(&mut self, _ct: &()) {
        self.counts.mod_switch += 1;
    }

    fn extract_lwes(&mut self, _mid: &(), positions: &[usize]) -> Vec<()> {
        self.counts.sample_extract += positions.len() as u64;
        vec![(); positions.len()]
    }

    fn dim_switch(&mut self, big: Vec<()>, _drop_to_t: bool) -> Vec<()> {
        // LWE-level arithmetic is below the op-count abstraction.
        big
    }

    fn lwe_add_scaled(&mut self, _a: &(), _b: &(), _mult: i64) {}

    fn pack(&mut self, slots: &[Option<()>]) {
        let nontrivial = slots.iter().filter(|s| s.is_some()).count();
        self.counts.add(&super::counts_from_hom(
            &self.engine.pack_expected_op_counts(nontrivial),
        ));
    }

    fn fbs(&mut self, _packed: &(), lut: &Lut, slots: &[Option<()>]) {
        let n = self.engine.context().n();
        let needs_mask = lut.get(0) != 0 && (slots.len() < n || slots.iter().any(|o| o.is_none()));
        self.counts.add(&fbs_analytic(lut, needs_mask));
    }

    fn s2c(&mut self, _ct: &()) {
        self.counts.add(&super::counts_from_hom(
            &self.engine.slot_to_coeff().op_counts(),
        ));
    }

    fn output(&mut self, acc: &[()], _scale: f64) -> Vec<f64> {
        vec![0.0; acc.len()]
    }

    fn take_counts(&mut self) -> OpCounts {
        std::mem::take(&mut self.counts)
    }
}
