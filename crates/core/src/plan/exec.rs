//! The generic plan interpreter and its drivers.
//!
//! [`run_step`] owns the control flow of every step — group accumulation,
//! residual re-extraction, the pooling window streams and max tree — and
//! is generic over [`PlanBackend`], so all three backends interpret the
//! identical step structure. Three drivers walk the plan:
//!
//! * [`execute`] / [`execute_probed`] / [`execute_resilient`] — the
//!   encrypted run, with optional per-step noise probing, measured
//!   `op-stats` brackets, and (for the resilient form) per-step
//!   `catch_unwind` isolation, cooperative deadlines, fault injection,
//!   and scratch-arena quarantine on unwind;
//! * [`execute_sim`] — the plan-driven noise-faithful simulation
//!   ([`super::NoiseSimBackend`]);
//! * [`execute_counting`] — the value-free analytic dry run
//!   ([`super::CountingBackend`]), which `compile` uses to backfill
//!   [`super::PlanStep::analytic`].
//!
//! ## Panic safety and quarantine
//!
//! [`execute_resilient`] wraps every step in `catch_unwind`. When a step
//! unwinds, the executor quarantines the scratch arena
//! ([`athena_math::arena::quarantine`]) *before* constructing the typed
//! error: the generation bump means every limb buffer checked out by the
//! faulted request — including partially-written ones still held by the
//! executor state — is freed on drop instead of recycled into the pool,
//! so a faulted request can never leak scratch state into a later run.
//! The caught payload is downcast back into the taxonomy: a typed
//! [`athena_fhe::FheError`] becomes [`AthenaError::KeyMissing`] or
//! [`AthenaError::Fhe`], a panic that poisoned a pool shard becomes
//! [`AthenaError::PoolPoisoned`], and anything else
//! [`AthenaError::StepPanicked`] — callers never see a raw unwind.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use athena_fhe::bfv::{BfvCiphertext, BfvEvaluator};
use athena_fhe::fbs::Lut;
use athena_fhe::FheError;
use athena_math::arena;
use athena_math::sampler::Sampler;
use athena_math::stats::{alloc_stats, op_stats};
use athena_nn::tensor::ITensor;

use crate::pipeline::{AthenaEngine, AthenaEvalKeys, AthenaSecrets, PipelineStats};
use crate::simulate::NoiseSpec;
use crate::trace::{OpCounts, Phase};

use super::backend::{CountingBackend, EncryptedBackend, NoiseSimBackend, PlanBackend};
use super::error::{AthenaError, RunPolicy};
use super::fault::{FaultInjectingBackend, FaultKind};
use super::ir::{counts_from_hom, ExecutionPlan, StepOp};

/// The measured record of one executed step.
#[derive(Debug, Clone)]
pub struct StepReport {
    /// Source node index.
    pub node: usize,
    /// Step index within the node.
    pub step: usize,
    /// Step label ([`StepOp::label`]).
    pub label: &'static str,
    /// Phase attribution.
    pub phase: Phase,
    /// Compile-time analytic counts.
    pub analytic: OpCounts,
    /// Counter-measured counts (zero when the `op-stats` feature is off,
    /// and attributable only when no other thread drives the engine
    /// concurrently — the counters are process-global).
    pub measured: OpCounts,
    /// Arena limb-buffer allocation counts of the step (zero when the
    /// `alloc-stats` feature is off; process-global, like `measured`).
    /// `takes` and the drop total are schedule-independent; the
    /// `fresh`/pooled split of a *cold* step depends on thread
    /// interleaving, so only the warm-pool invariant `fresh == 0` is
    /// meaningful across thread counts.
    pub alloc: alloc_stats::AllocCounts,
    /// Compile-time analytic noise charge in bits
    /// ([`super::PlanStep::noise_bits`]).
    pub noise_bits: u32,
    /// Measured invariant-noise budget of the step's RLWE output, sampled
    /// right after the step ran. `Some` only under [`NoiseProbe::On`] and
    /// only for RLWE-producing steps (`linear`, `pack`, `fbs`, `s2c`) —
    /// extraction and LWE-level steps have no `Q`-basis ciphertext to
    /// probe, and the pooling composite's inner chains end at the LWE
    /// level.
    pub noise_budget: Option<i64>,
    /// Measured noise consumption of the step in bits: the budget of its
    /// RLWE input (the stored value for `linear`, the fresh input budget
    /// for `pack` — packing restarts the chain from fresh key-material
    /// noise — the packed/bootstrapped register for `fbs`/`s2c`) minus
    /// [`StepReport::noise_budget`]. The plan pins
    /// `noise_bits ≥ noise_consumed` in tests.
    pub noise_consumed: Option<i64>,
}

/// Typed failure of a probed execution: the measured invariant-noise
/// budget reached zero after a step, so every value downstream of it would
/// decrypt to garbage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NoiseExhausted {
    /// Source node index of the exhausting step.
    pub node: usize,
    /// Step index within the node.
    pub step: usize,
    /// Step label ([`StepOp::label`]).
    pub label: &'static str,
    /// The measured budget (`≤ 0`; `-1` once the noise has swamped the
    /// invariant — the probe saturates there).
    pub budget: i64,
    /// The exhausting step's compile-time analytic charge
    /// ([`super::PlanStep::noise_bits`]), for comparing the analytic
    /// model against what was measured.
    pub analytic_bits: u32,
    /// The measured consumption of the exhausting step (its chain
    /// predecessor's budget minus [`NoiseExhausted::budget`]), when the
    /// probe had a predecessor to charge against.
    pub consumed: Option<i64>,
}

impl NoiseExhausted {
    /// Analytic-minus-measured consumption of the exhausting step:
    /// positive means the analytic model was conservative (the usual
    /// case), negative means the step consumed more than its compile-time
    /// charge — the signal that the Table-4 accounting missed something.
    pub fn budget_gap(&self) -> Option<i64> {
        self.consumed.map(|c| i64::from(self.analytic_bits) - c)
    }
}

impl std::fmt::Display for NoiseExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "noise budget exhausted at node {} step {} ({}): {} bits left",
            self.node, self.step, self.label, self.budget
        )
    }
}

impl std::error::Error for NoiseExhausted {}

/// Whether [`execute_probed`] samples the measured noise budget after
/// every step. Probing needs the secret key (already supplied to the
/// executor for input encryption) and is for tests/debugging only: a
/// production server holds no secret key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NoiseProbe {
    /// No probing; `noise_budget`/`noise_consumed` stay `None` and the
    /// execution cannot fail.
    Off,
    /// Probe after every RLWE-producing step and fail with
    /// [`NoiseExhausted`] the moment a budget reaches zero, instead of
    /// silently decrypting garbage at the end.
    On,
}

/// Result of executing a plan.
#[derive(Debug)]
pub struct PlanRun {
    /// Decrypted float logits.
    pub logits: Vec<f64>,
    /// Aggregate pipeline statistics.
    pub stats: PipelineStats,
    /// Per-step analytic vs measured counts, in execution order.
    pub steps: Vec<StepReport>,
    /// Budget of the freshly encrypted input (probe mode only): the
    /// baseline every chain starts from.
    pub fresh_budget: Option<i64>,
}

/// Result of a plan-driven simulated execution.
#[derive(Debug, Clone)]
pub struct SimRun {
    /// Float logits.
    pub logits: Vec<f64>,
    /// Predicted class.
    pub predicted: usize,
}

/// Executor state: the registers the step vocabulary reads and writes,
/// generic over the backend's value types.
pub(crate) struct ExecState<B: PlanBackend> {
    /// Stored values (S2C outputs + the encrypted input), by value index.
    pub values: Vec<Option<B::Rlwe>>,
    /// Pending linear output (between `Linear` and `ModSwitch`).
    pub cur: Option<B::Rlwe>,
    /// Mod-switched RLWE (between `ModSwitch` and `ExtractLwes`).
    pub small: Option<B::Mid>,
    /// Extracted dimension-`N` LWEs (between `ExtractLwes` and
    /// `DimSwitch`).
    pub big: Vec<B::Lwe>,
    /// The layer's LWE accumulator (grows across groups, consumed by
    /// `Pack`/reduce/`Output`).
    pub acc: Vec<B::Lwe>,
    /// Slot assignment of the last `Pack` (the FBS mask needs it).
    pub slots: Vec<Option<B::Lwe>>,
    /// Packed ciphertext (between `Pack` and `Fbs`).
    pub packed: Option<B::Rlwe>,
    /// Bootstrapped ciphertext (between `Fbs` and `S2C`).
    pub boot: Option<B::Rlwe>,
    pub logits: Vec<f64>,
}

impl<B: PlanBackend> ExecState<B> {
    fn new(plan: &ExecutionPlan) -> Self {
        Self {
            values: (0..plan.layers.len() + 1).map(|_| None).collect(),
            cur: None,
            small: None,
            big: Vec::new(),
            acc: Vec::new(),
            slots: Vec::new(),
            packed: None,
            boot: None,
            logits: Vec::new(),
        }
    }
}

/// Places the flat input activations at the plan's input-layout
/// coefficient positions.
fn place_input(plan: &ExecutionPlan, input: &ITensor) -> Vec<i64> {
    assert_eq!(input.shape(), &plan.input_shape[..], "input shape mismatch");
    let mut coeffs = vec![0i64; plan.n];
    for (flat, &pos) in plan.input_positions.iter().enumerate() {
        coeffs[pos] = input.data()[flat];
    }
    coeffs
}

/// Drives `backend` through the whole plan — encrypt plus every step, in
/// order, with no resilience wrapping — and returns the logits.
/// Crate-internal: the chaos sweep uses it to replay fault plans through
/// the simulation and counting backends.
pub(crate) fn drive_plain<B: PlanBackend>(
    backend: &mut B,
    plan: &ExecutionPlan,
    input: &ITensor,
) -> Vec<f64> {
    let coeffs = place_input(plan, input);
    let mut st = ExecState::new(plan);
    st.values[0] = Some(backend.encrypt_input(&coeffs));
    let mut flat = 0usize;
    for layer in &plan.layers {
        for (si, step) in layer.steps.iter().enumerate() {
            backend.note_step(layer.node, si, flat);
            run_step(backend, plan, &step.op, &mut st);
            flat += 1;
        }
    }
    st.logits
}

/// Interprets one step against a backend. All control flow — including
/// the pooling composites' window streams, max tree, and window sums, and
/// the residual re-extraction — lives here, decomposed into backend
/// primitives, so every backend runs the identical structure.
pub(crate) fn run_step<B: PlanBackend>(
    backend: &mut B,
    plan: &ExecutionPlan,
    op: &StepOp,
    st: &mut ExecState<B>,
) {
    match op {
        StepOp::Linear {
            value,
            kernel,
            bias,
        } => {
            let ct = st.values[*value].as_ref().expect("producer stored");
            st.cur = Some(backend.linear(ct, kernel, bias));
        }
        StepOp::ModSwitch { value } => {
            let src = match value {
                Some(i) => st.values[*i].as_ref().expect("value stored"),
                None => st.cur.as_ref().expect("pending linear output"),
            };
            st.small = Some(backend.mod_switch(src));
        }
        StepOp::ExtractLwes { positions } => {
            let small = st.small.as_ref().expect("mod-switched ciphertext");
            st.big = backend.extract_lwes(small, positions);
        }
        StepOp::DimSwitch { drop_to_t } => {
            let big = std::mem::take(&mut st.big);
            st.acc.extend(backend.dim_switch(big, *drop_to_t));
        }
        StepOp::ResidualAdd {
            skip,
            positions,
            mult,
            drop_to_t,
        } => {
            let ct = st.values[*skip].as_ref().expect("skip stored");
            let small = backend.mod_switch(ct);
            let big = backend.extract_lwes(&small, positions);
            let sw = backend.dim_switch(big, *drop_to_t);
            assert_eq!(sw.len(), st.acc.len(), "skip shape mismatch");
            for (a, s) in st.acc.iter_mut().zip(&sw) {
                *a = backend.lwe_add_scaled(a, s, *mult);
            }
        }
        StepOp::MaxReduce { k, shape } => {
            let lwes = std::mem::take(&mut st.acc);
            let (c, h, w) = (shape[0], shape[1], shape[2]);
            let (oh, ow) = (h / k, w / k);
            // Window-position streams, then a max tree over them. Each
            // round is max(a,b) = b + ReLU(a − b): LWE diffs, one
            // pack → FBS(ReLU) → S2C cycle, re-extraction, and the add —
            // the same decomposition as `AthenaEngine::lwe_max`, spelled
            // in backend primitives.
            let mut streams: Vec<Vec<B::Lwe>> = Vec::with_capacity(k * k);
            for ky in 0..*k {
                for kx in 0..*k {
                    let mut s = Vec::with_capacity(c * oh * ow);
                    for ci in 0..c {
                        for oy in 0..oh {
                            for ox in 0..ow {
                                s.push(lwes[(ci * h + oy * k + ky) * w + ox * k + kx].clone());
                            }
                        }
                    }
                    streams.push(s);
                }
            }
            let relu = Lut::from_signed_fn(plan.t, |x| x.max(0));
            while streams.len() > 1 {
                let b = streams.pop().expect("len > 1");
                let a = streams.pop().expect("len > 1");
                let diffs: Vec<Option<B::Lwe>> = a
                    .iter()
                    .zip(&b)
                    .map(|(x, y)| Some(backend.lwe_add_scaled(x, y, -1)))
                    .collect();
                let packed = backend.pack(&diffs);
                let relu_ct = backend.fbs(&packed, &relu, &diffs);
                let relu_coeff = backend.s2c(&relu_ct);
                let small = backend.mod_switch(&relu_coeff);
                let positions: Vec<usize> = (0..a.len()).collect();
                let big = backend.extract_lwes(&small, &positions);
                let relu_lwes = backend.dim_switch(big, true);
                streams.push(
                    b.iter()
                        .zip(&relu_lwes)
                        .map(|(y, r)| backend.lwe_add_scaled(y, r, 1))
                        .collect(),
                );
            }
            st.acc = streams.pop().expect("one stream left");
        }
        StepOp::AvgReduce { k, shape } => {
            let lwes = std::mem::take(&mut st.acc);
            let (c, h, w) = (shape[0], shape[1], shape[2]);
            let (oh, ow) = (h / k, w / k);
            let mut sums = Vec::with_capacity(c * oh * ow);
            for ci in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc: Option<B::Lwe> = None;
                        for ky in 0..*k {
                            for kx in 0..*k {
                                let e = &lwes[(ci * h + oy * k + ky) * w + ox * k + kx];
                                acc = Some(match acc {
                                    None => e.clone(),
                                    Some(a) => backend.lwe_add_scaled(&a, e, 1),
                                });
                            }
                        }
                        sums.push(acc.expect("k >= 1"));
                    }
                }
            }
            st.acc = sums;
        }
        StepOp::Pack { slot_of } => {
            let acc = std::mem::take(&mut st.acc);
            let mut slots: Vec<Option<B::Lwe>> = (0..plan.n).map(|_| None).collect();
            for (slot, flat) in slot_of.iter().enumerate() {
                if let Some(f) = flat {
                    slots[slot] = Some(acc[*f].clone());
                }
            }
            st.packed = Some(backend.pack(&slots));
            st.slots = slots;
        }
        StepOp::Fbs { lut } => {
            let packed = st.packed.take().expect("packed ciphertext");
            st.boot = Some(backend.fbs(&packed, lut, &st.slots));
        }
        StepOp::S2C { value, .. } => {
            let boot = st.boot.take().expect("bootstrapped ciphertext");
            st.values[*value] = Some(backend.s2c(&boot));
            st.slots.clear();
        }
        StepOp::Output { scale } => {
            st.logits = backend.output(&st.acc, *scale);
        }
    }
}

/// Executes a compiled plan on one encrypted input.
///
/// Bit-identical to the pre-plan monolithic loop: the steps perform the
/// same exact modular arithmetic in the same order, and the only sampler
/// draws are the input encryption's. Equivalent to [`execute_probed`] with
/// [`NoiseProbe::Off`], which cannot fail.
pub fn execute(
    engine: &AthenaEngine,
    secrets: &AthenaSecrets,
    keys: &AthenaEvalKeys,
    plan: &ExecutionPlan,
    input: &ITensor,
    sampler: &mut Sampler,
) -> PlanRun {
    execute_probed(engine, secrets, keys, plan, input, sampler, NoiseProbe::Off)
        .expect("unprobed execution cannot exhaust")
}

/// Per-register noise-budget tracker for probe mode: mirrors the RLWE
/// registers of [`ExecState`] so each step's consumption is measured
/// against its actual chain predecessor.
struct NoiseTracker {
    /// Fresh input budget (also the baseline of every `pack`, whose output
    /// noise is built from fresh packing-key encryptions).
    fresh: i64,
    /// Budget of each stored value (input + S2C outputs).
    values: Vec<Option<i64>>,
    /// Budget after the last `pack`.
    packed: Option<i64>,
    /// Budget after the last `fbs`.
    boot: Option<i64>,
}

/// Executes a compiled plan, optionally sampling the measured
/// invariant-noise budget after every RLWE-producing step.
///
/// With [`NoiseProbe::On`] the returned [`StepReport`]s carry
/// `noise_budget`/`noise_consumed` alongside the analytic `noise_bits`
/// charge, and the execution aborts with a typed [`NoiseExhausted`] error
/// the moment a probed budget reaches zero — the paper's Table-4 invariant
/// ("total noise stays under Δ/2") made observable and enforced at
/// runtime, instead of decrypting garbage logits. Probing performs no
/// sampler draws and no homomorphic ops, so the logits (and the measured
/// op counts) are bit-identical with the probe on or off.
#[allow(clippy::too_many_arguments)]
pub fn execute_probed(
    engine: &AthenaEngine,
    secrets: &AthenaSecrets,
    keys: &AthenaEvalKeys,
    plan: &ExecutionPlan,
    input: &ITensor,
    sampler: &mut Sampler,
    probe: NoiseProbe,
) -> Result<PlanRun, NoiseExhausted> {
    let policy = RunPolicy {
        probe: Some(probe),
        ..RunPolicy::default()
    };
    match execute_resilient(
        engine, secrets, keys, plan, input, sampler, &policy, 1, None,
    ) {
        Ok(run) => Ok(run),
        Err(AthenaError::NoiseExhausted(ne)) => Err(ne),
        // This driver keeps the pre-resilience contract: faults other
        // than exhaustion propagate as panics (re-raised typed where the
        // payload was typed).
        Err(AthenaError::Fhe { source, .. }) => athena_fhe::error::raise(source),
        Err(AthenaError::KeyMissing {
            element, available, ..
        }) => athena_fhe::error::raise(FheError::KeyMissing { element, available }),
        Err(e) => std::panic::panic_any(e.to_string()),
    }
}

/// Executes one attempt of a compiled plan under a [`RunPolicy`]: every
/// step runs inside `catch_unwind` with the scratch arena quarantined on
/// unwind, a cooperative deadline is checked before each step, and the
/// policy's [`super::FaultPlan`] (if any) is injected. This is the
/// single-attempt primitive [`super::InferenceSession`] builds its retry
/// loop on; `attempt` (1-based) and `batch_input` scope the fault plan's
/// filters.
///
/// With a default policy the run is bit-identical to [`execute`]: no
/// extra sampler draws, no homomorphic ops, the same step order.
///
/// [`FaultKind::NoiseSpike`] faults force the probe on — an artificial
/// budget burn is only observable at a probe point. A spike injected at a
/// step with no RLWE output is carried to the next probed step (noise
/// travels down the chain); one injected past the last probe point is
/// charged against the fresh-input baseline at end of run.
#[allow(clippy::too_many_arguments)]
pub fn execute_resilient(
    engine: &AthenaEngine,
    secrets: &AthenaSecrets,
    keys: &AthenaEvalKeys,
    plan: &ExecutionPlan,
    input: &ITensor,
    sampler: &mut Sampler,
    policy: &RunPolicy,
    attempt: u32,
    batch_input: Option<usize>,
) -> Result<PlanRun, AthenaError> {
    if input.shape() != &plan.input_shape[..] {
        return Err(AthenaError::ShapeMismatch {
            input: batch_input.unwrap_or(0),
            expected: plan.input_shape.clone(),
            got: input.shape().to_vec(),
        });
    }
    let spikes = policy.faults.as_ref().is_some_and(|fp| {
        fp.faults
            .iter()
            .any(|f| matches!(f.kind, FaultKind::NoiseSpike { .. }))
    });
    let probe = match policy.probe {
        Some(p) => p,
        None if spikes => NoiseProbe::On,
        None => NoiseProbe::Off,
    };
    match &policy.faults {
        None => {
            let backend = EncryptedBackend::new(engine, secrets, keys, sampler);
            drive_resilient(
                backend,
                |_| 0,
                EncryptedBackend::into_stats,
                engine,
                secrets,
                plan,
                input,
                policy,
                probe,
            )
        }
        Some(fp) => {
            let backend = FaultInjectingBackend::new(
                EncryptedBackend::new(engine, secrets, keys, sampler),
                fp,
                attempt,
                batch_input,
            );
            drive_resilient(
                backend,
                FaultInjectingBackend::take_spike,
                |b| b.into_inner().into_stats(),
                engine,
                secrets,
                plan,
                input,
                policy,
                probe,
            )
        }
    }
}

/// Classifies a caught panic payload into the [`AthenaError`] taxonomy.
/// `recoveries` is the number of poisoned arena-shard locks recovered
/// during the attempt (a nonzero count means the panic crossed — or
/// another holder of — a shard lock, so the pool itself was implicated).
fn classify_panic(
    payload: Box<dyn std::any::Any + Send>,
    node: usize,
    step: usize,
    label: &'static str,
    recoveries: usize,
) -> AthenaError {
    if let Some(fhe) = payload.downcast_ref::<FheError>() {
        return match fhe.clone() {
            FheError::KeyMissing { element, available } => AthenaError::KeyMissing {
                node,
                step,
                label,
                element,
                available,
            },
            source => AthenaError::Fhe {
                node,
                step,
                label,
                source,
            },
        };
    }
    let text = payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string());
    if recoveries > 0 {
        AthenaError::PoolPoisoned {
            recoveries,
            payload: text,
        }
    } else {
        AthenaError::StepPanicked {
            node,
            step,
            label,
            payload: text,
        }
    }
}

/// The shared resilient driver: generic over the backend so the fault
/// wrapper and the bare encrypted backend monomorphize to the same loop.
#[allow(clippy::too_many_arguments)]
fn drive_resilient<B>(
    mut backend: B,
    mut take_spike: impl FnMut(&mut B) -> u32,
    into_stats: impl FnOnce(B) -> PipelineStats,
    engine: &AthenaEngine,
    secrets: &AthenaSecrets,
    plan: &ExecutionPlan,
    input: &ITensor,
    policy: &RunPolicy,
    probe: NoiseProbe,
) -> Result<PlanRun, AthenaError>
where
    B: PlanBackend<Rlwe = BfvCiphertext>,
{
    let start = Instant::now();
    let poison_base = arena::poison_recoveries();
    // Quarantine-then-classify on every caught unwind: the generation
    // bump must land before the executor state (and its in-flight limb
    // checkouts) drops, so nothing the faulted attempt touched is pooled.
    let caught =
        |payload: Box<dyn std::any::Any + Send>, node: usize, step: usize, label: &'static str| {
            arena::quarantine();
            let recoveries = arena::poison_recoveries() - poison_base;
            classify_panic(payload, node, step, label, recoveries)
        };

    let coeffs = place_input(plan, input);
    let mut st = ExecState::new(plan);
    let first_node = plan.layers.first().map_or(0, |l| l.node);
    let encrypted = catch_unwind(AssertUnwindSafe(|| backend.encrypt_input(&coeffs)))
        .map_err(|p| caught(p, first_node, 0, "encrypt"))?;
    st.values[0] = Some(encrypted);

    let budget_of =
        |ct: &BfvCiphertext| BfvEvaluator::new(engine.context()).noise_budget(ct, &secrets.sk);
    let mut tracker = match probe {
        NoiseProbe::Off => None,
        NoiseProbe::On => {
            let fresh = budget_of(st.values[0].as_ref().expect("input encrypted"));
            let mut values = vec![None; plan.layers.len() + 1];
            values[0] = Some(fresh);
            Some(NoiseTracker {
                fresh,
                values,
                packed: None,
                boot: None,
            })
        }
    };

    let mut reports = Vec::with_capacity(plan.step_count());
    let mut carry_spike: i64 = 0;
    let mut flat = 0usize;
    for layer in &plan.layers {
        for (si, step) in layer.steps.iter().enumerate() {
            if let Some(deadline) = policy.deadline {
                if start.elapsed() >= deadline {
                    return Err(AthenaError::DeadlineExceeded {
                        node: layer.node,
                        step: si,
                        label: step.op.label(),
                        deadline,
                    });
                }
            }
            let (((), hom), alloc) = catch_unwind(AssertUnwindSafe(|| {
                alloc_stats::measure(|| {
                    op_stats::measure(|| {
                        backend.note_step(layer.node, si, flat);
                        run_step(&mut backend, plan, &step.op, &mut st)
                    })
                })
            }))
            .map_err(|p| caught(p, layer.node, si, step.op.label()))?;
            flat += 1;
            carry_spike += i64::from(take_spike(&mut backend));
            let (budget, consumed) = match &mut tracker {
                None => (None, None),
                Some(tr) => probe_step(&step.op, &st, tr, &budget_of),
            };
            let budget = budget.map(|b| b - carry_spike);
            if budget.is_some() {
                carry_spike = 0;
            }
            reports.push(StepReport {
                node: layer.node,
                step: si,
                label: step.op.label(),
                phase: step.phase,
                analytic: step.analytic,
                measured: counts_from_hom(&hom),
                alloc,
                noise_bits: step.noise_bits,
                noise_budget: budget,
                noise_consumed: consumed,
            });
            if let Some(b) = budget {
                if b <= 0 {
                    return Err(AthenaError::NoiseExhausted(NoiseExhausted {
                        node: layer.node,
                        step: si,
                        label: step.op.label(),
                        budget: b,
                        analytic_bits: step.noise_bits,
                        consumed,
                    }));
                }
            }
        }
    }
    if carry_spike > 0 {
        // A spike injected after the last probe point: charge it against
        // the fresh-input baseline so it still surfaces typed.
        if let Some(tr) = &tracker {
            let b = tr.fresh - carry_spike;
            if b <= 0 {
                let (node, si, label) = plan
                    .layers
                    .last()
                    .and_then(|l| {
                        l.steps
                            .last()
                            .map(|s| (l.node, l.steps.len() - 1, s.op.label()))
                    })
                    .unwrap_or((0, 0, "encrypt"));
                return Err(AthenaError::NoiseExhausted(NoiseExhausted {
                    node,
                    step: si,
                    label,
                    budget: b,
                    analytic_bits: 0,
                    consumed: None,
                }));
            }
        }
    }
    Ok(PlanRun {
        logits: st.logits,
        stats: into_stats(backend),
        steps: reports,
        fresh_budget: tracker.map(|t| t.fresh),
    })
}

/// Probes the RLWE register a step just wrote and charges the consumption
/// to the step's chain predecessor. Steps whose output lives below the
/// RLWE layer (extraction, dimension/modulus switches, LWE adds, the
/// pooling composites, output) yield `(None, None)`.
fn probe_step<B: PlanBackend<Rlwe = BfvCiphertext>>(
    op: &StepOp,
    st: &ExecState<B>,
    tr: &mut NoiseTracker,
    budget_of: &dyn Fn(&BfvCiphertext) -> i64,
) -> (Option<i64>, Option<i64>) {
    match op {
        StepOp::Linear { value, .. } => {
            let after = budget_of(st.cur.as_ref().expect("linear output"));
            (Some(after), tr.values[*value].map(|b| b - after))
        }
        StepOp::Pack { .. } => {
            // Packing starts a new chain: its output noise is a sum of
            // PMulted fresh packing-key encryptions, so the fresh budget
            // is the chain's baseline.
            let after = budget_of(st.packed.as_ref().expect("packed output"));
            tr.packed = Some(after);
            (Some(after), Some(tr.fresh - after))
        }
        StepOp::Fbs { .. } => {
            let after = budget_of(st.boot.as_ref().expect("bootstrapped output"));
            let consumed = tr.packed.take().map(|b| b - after);
            tr.boot = Some(after);
            (Some(after), consumed)
        }
        StepOp::S2C { value, .. } => {
            let after = budget_of(st.values[*value].as_ref().expect("s2c output"));
            let consumed = tr.boot.take().map(|b| b - after);
            tr.values[*value] = Some(after);
            (Some(after), consumed)
        }
        _ => (None, None),
    }
}

/// Runs the plan through the noise-faithful [`NoiseSimBackend`]: exact
/// integer semantics with the §3.2.2 `e_ms` injection at every LWE drop,
/// no ciphertext work. At σ = 0 the logits equal the plain-Q integer
/// reference exactly (pinned in the backend-equivalence tests), so the
/// simulation is certified against the same plan the encrypted executor
/// interprets.
pub fn execute_sim(
    plan: &ExecutionPlan,
    input: &ITensor,
    noise: &NoiseSpec,
    sampler: &mut Sampler,
) -> SimRun {
    let coeffs = place_input(plan, input);
    let mut backend = NoiseSimBackend::new(plan, noise, sampler);
    let mut st = ExecState::new(plan);
    st.values[0] = Some(backend.encrypt_input(&coeffs));
    let mut flat = 0usize;
    for layer in &plan.layers {
        for (si, step) in layer.steps.iter().enumerate() {
            backend.note_step(layer.node, si, flat);
            run_step(&mut backend, plan, &step.op, &mut st);
            flat += 1;
        }
    }
    SimRun {
        predicted: crate::util::argmax(&st.logits),
        logits: st.logits,
    }
}

/// Runs the plan through the value-free [`CountingBackend`] and returns
/// one [`OpCounts`] per step, in execution order. This is the pass
/// [`super::compile`] uses to backfill [`super::PlanStep::analytic`] —
/// exposed so tests and reports can re-derive the counts independently.
pub fn execute_counting(engine: &AthenaEngine, plan: &ExecutionPlan) -> Vec<OpCounts> {
    let mut backend = CountingBackend::new(engine);
    let mut st = ExecState::new(plan);
    backend.encrypt_input(&vec![0i64; plan.n]);
    st.values[0] = Some(());
    let mut out = Vec::with_capacity(plan.step_count());
    let mut flat = 0usize;
    for layer in &plan.layers {
        for (si, step) in layer.steps.iter().enumerate() {
            backend.note_step(layer.node, si, flat);
            run_step(&mut backend, plan, &step.op, &mut st);
            out.push(backend.take_counts());
            flat += 1;
        }
    }
    out
}
