//! [`InferenceSession`]: the serving-shaped front end over the plan
//! pipeline.
//!
//! A session owns an [`AthenaEngine`] and an LRU cache of compiled
//! artifacts, keyed by `(parameter fingerprint, model fingerprint, input
//! shape)`. A cache hit returns the pointer-identical
//! [`ExecutionPlan`] (and its key material), so repeated requests against
//! the same model pay compilation and [`AthenaEngine::keygen_for_plan`]
//! exactly once. [`InferenceSession::run_batch`] fans a batch of inputs
//! out over `athena_math::par` worker threads (the `ATHENA_THREADS`
//! knob), with per-input forked samplers so the results are bit-identical
//! to the same inputs run sequentially at any thread count.
//!
//! ## Resilience
//!
//! Every request runs through [`super::execute_resilient`]: failures come
//! back as typed [`AthenaError`] values (never a raw panic), a faulted
//! attempt quarantines the scratch arena so no partially-written state
//! survives into later requests, and a [`RunPolicy`] can add a
//! cooperative deadline and a retry budget. Retries re-encrypt with a
//! *fresh* sampler fork — the first attempt draws directly on the
//! request's fork (preserving bit-identity with the no-retry path), and
//! only transient faults ([`AthenaError::is_transient`]) are retried;
//! deterministic ones fail fast.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use athena_math::arena::{self, ArenaLease};
use athena_math::par;
use athena_math::sampler::Sampler;
use athena_nn::qmodel::{QModel, QOp};
use athena_nn::tensor::ITensor;

use crate::infer::EncryptedInference;
use crate::pipeline::{AthenaEngine, AthenaEvalKeys, AthenaSecrets};

use super::error::{AthenaError, RunPolicy};
use super::exec::execute_resilient;
use super::ir::{try_compile, CompileError, ExecutionPlan};

/// 64-bit FNV-1a — a tiny deterministic fingerprint hasher, enough to key
/// an in-process plan cache (collisions are astronomically unlikely at
/// the handful of models a session serves, and a collision only costs a
/// wrong cache hit between models the caller deliberately aliased).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn i64(&mut self, v: i64) {
        self.u64(v as u64);
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    fn f64(&mut self, v: f64) {
        // Normalize before hashing: `-0.0` and `0.0` compare equal (and
        // behave identically through every scale computation), and all
        // NaN payloads behave alike, but their bit patterns differ —
        // hashing raw bits would key semantically identical models to
        // different cache slots.
        let bits = if v == 0.0 {
            0u64
        } else if v.is_nan() {
            f64::NAN.to_bits()
        } else {
            v.to_bits()
        };
        self.u64(bits);
    }

    fn finish(self) -> u64 {
        self.0
    }
}

/// Fingerprint of the engine's parameter set.
fn fingerprint_params(engine: &AthenaEngine) -> u64 {
    let p = engine.context().params();
    let mut h = Fnv::new();
    h.usize(p.n);
    h.usize(p.q_primes.len());
    for &q in &p.q_primes {
        h.u64(q);
    }
    h.u64(p.t);
    h.usize(p.lwe_n);
    h.f64(p.sigma);
    h.u64(u64::from(p.lwe_ks_base_log));
    h.finish()
}

/// Structural fingerprint of a quantized model: weights, biases, scales,
/// shapes, dataflow. Two models hash equal iff they compile to the same
/// plan and execute identically.
fn fingerprint_model(model: &QModel) -> u64 {
    let mut h = Fnv::new();
    h.u64(u64::from(model.cfg.w_bits));
    h.u64(u64::from(model.cfg.a_bits));
    h.f64(model.input_scale);
    h.usize(model.nodes.len());
    for node in &model.nodes {
        h.usize(node.input);
        match node.skip {
            None => h.u64(0),
            Some((v, m)) => {
                h.u64(1);
                h.usize(v);
                h.i64(m);
            }
        }
        match &node.op {
            QOp::Linear(l) => {
                h.u64(2);
                h.usize(l.weight.shape().len());
                for &d in l.weight.shape() {
                    h.usize(d);
                }
                for &w in l.weight.data() {
                    h.i64(w);
                }
                for &b in &l.bias {
                    h.i64(b);
                }
                h.usize(l.stride);
                h.usize(l.padding);
                h.u64(u64::from(l.is_fc));
                h.u64(l.act as u64);
                h.f64(l.in_scale);
                h.f64(l.w_scale);
                h.f64(l.out_scale);
            }
            QOp::MaxPool { k } => {
                h.u64(3);
                h.usize(*k);
            }
            QOp::AvgPool { k } => {
                h.u64(4);
                h.usize(*k);
            }
        }
    }
    h.finish()
}

/// Scratch-arena sizing for one cached plan: how much limb-pool retention
/// (`athena_math::arena`) the steady-state working set of an execution
/// needs beyond the base cap — the `k²` hoisted digit-lift polynomials
/// (`k` limbs each) plus headroom for the in-flight ciphertext parts of a
/// step. Derived deterministically from the engine's parameter set, so it
/// can be fingerprinted into the cache key before compilation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ArenaConfig {
    /// Limb length in words (the ring degree `N`).
    limb_len: usize,
    /// RNS limb count `k` of the `Q` basis.
    limb_count: usize,
    /// Bytes of pool retention reserved on top of the base cap.
    reserve_bytes: usize,
}

impl ArenaConfig {
    fn for_engine(engine: &AthenaEngine) -> Self {
        let p = engine.context().params();
        let (n, k) = (p.n, p.q_primes.len());
        Self {
            limb_len: n,
            limb_count: k,
            reserve_bytes: 8 * n * k * (k * k + 8),
        }
    }

    fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.usize(self.limb_len);
        h.usize(self.limb_count);
        h.usize(self.reserve_bytes);
        h.finish()
    }
}

type CacheKey = (u64, u64, Vec<usize>, u64);

/// One cached compiled artifact: the plan and the key material generated
/// for it, shared out to callers by `Arc` — plus the arena reservation
/// that keeps the plan's scratch working set pooled. Evicting the entry
/// (once every shared `Arc` is gone) drops the lease, which releases the
/// reservation and trims the pool back to cap.
#[derive(Clone)]
struct CacheEntry {
    key: CacheKey,
    plan: Arc<ExecutionPlan>,
    secrets: Arc<AthenaSecrets>,
    keys: Arc<AthenaEvalKeys>,
    arena: Arc<ArenaLease>,
}

/// Cache counters of a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionStats {
    /// Requests served from the plan cache.
    pub hits: u64,
    /// Requests that compiled (and keygenned) a fresh plan.
    pub misses: u64,
    /// Plans currently cached.
    pub entries: usize,
    /// Bytes of scratch-pool retention reserved by the cached plans'
    /// arena leases (see `athena_math::arena`).
    pub arena_reserved: usize,
}

/// An owning inference server: engine + LRU plan cache + amortized
/// keygen + batched execution.
///
/// # Examples
///
/// ```no_run
/// use athena_core::pipeline::AthenaEngine;
/// use athena_core::plan::InferenceSession;
/// use athena_fhe::params::BfvParams;
/// use athena_math::sampler::Sampler;
/// # let model: athena_nn::qmodel::QModel = unimplemented!();
/// # let inputs: Vec<athena_nn::tensor::ITensor> = unimplemented!();
///
/// let mut session = InferenceSession::new(AthenaEngine::new(BfvParams::test_small()), 4, 42);
/// let mut sampler = Sampler::from_seed(7);
/// let results = session.run_batch(&model, &inputs, &mut sampler);
/// ```
pub struct InferenceSession {
    engine: AthenaEngine,
    params_fp: u64,
    capacity: usize,
    key_sampler: Sampler,
    entries: Vec<CacheEntry>,
    hits: u64,
    misses: u64,
}

impl InferenceSession {
    /// Creates a session over `engine` caching at most `capacity` compiled
    /// plans (LRU eviction). `key_seed` seeds the dedicated key-generation
    /// sampler, so key material is independent of request order and of the
    /// per-request encryption samplers.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(engine: AthenaEngine, capacity: usize, key_seed: u64) -> Self {
        assert!(capacity > 0, "cache capacity must be at least 1");
        let params_fp = fingerprint_params(&engine);
        Self {
            engine,
            params_fp,
            capacity,
            key_sampler: Sampler::from_seed(key_seed),
            entries: Vec::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// The engine this session serves with.
    pub fn engine(&self) -> &AthenaEngine {
        &self.engine
    }

    /// Cache counters.
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            hits: self.hits,
            misses: self.misses,
            entries: self.entries.len(),
            arena_reserved: self.entries.iter().map(|e| e.arena.bytes()).sum(),
        }
    }

    /// The compiled plan for `model` at `input_shape` — from cache when
    /// present (pointer-identical `Arc` across calls), compiled and
    /// keygenned on first use.
    ///
    /// # Panics
    ///
    /// Panics if the model fails to compile
    /// ([`InferenceSession::try_plan_for`] is the fallible form).
    pub fn plan_for(&mut self, model: &QModel, input_shape: &[usize]) -> Arc<ExecutionPlan> {
        self.try_plan_for(model, input_shape)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`InferenceSession::plan_for`]: returns the typed
    /// [`CompileError`] when the model cannot be served.
    pub fn try_plan_for(
        &mut self,
        model: &QModel,
        input_shape: &[usize],
    ) -> Result<Arc<ExecutionPlan>, CompileError> {
        Ok(self.entry_for(model, input_shape)?.plan)
    }

    /// Runs one encrypted inference through the session cache with a
    /// default [`RunPolicy`] (no deadline, no retries, no probing).
    ///
    /// Forks `sampler` for the request's encryption draws, so a sequence
    /// of calls consumes exactly one fork per call — the property that
    /// makes [`InferenceSession::run_batch`] bit-identical to a sequential
    /// loop. Failures are typed [`AthenaError`] values; a faulted request
    /// quarantines the scratch arena, so the next clean request on this
    /// session is bit-identical to one on a session that never faulted.
    pub fn run_encrypted(
        &mut self,
        model: &QModel,
        input: &ITensor,
        sampler: &mut Sampler,
    ) -> Result<EncryptedInference, AthenaError> {
        self.run_encrypted_with(model, input, sampler, &RunPolicy::default())
    }

    /// [`InferenceSession::run_encrypted`] under an explicit
    /// [`RunPolicy`]: deadline, retry budget, noise probing, and (for
    /// chaos tests) fault injection.
    pub fn run_encrypted_with(
        &mut self,
        model: &QModel,
        input: &ITensor,
        sampler: &mut Sampler,
        policy: &RunPolicy,
    ) -> Result<EncryptedInference, AthenaError> {
        let mut fork = sampler.fork();
        let entry = self
            .entry_for(model, input.shape())
            .map_err(AthenaError::from)?;
        run_one(&self.engine, &entry, input, &mut fork, policy, None)
    }

    /// Runs a batch of encrypted inferences, fanning out over the
    /// `athena_math::par` worker pool (`ATHENA_THREADS`), with a default
    /// [`RunPolicy`].
    ///
    /// Samplers are forked from `sampler` sequentially (one per input, in
    /// order) before the parallel region, so the results — and the
    /// caller-visible sampler state afterwards — are bit-identical to
    /// calling [`InferenceSession::run_encrypted`] on each input in order,
    /// at any thread count. All inputs must share one shape (one plan).
    ///
    /// The outer `Result` fails for whole-batch problems (a shape
    /// mismatch, a compile rejection) before any ciphertext work; each
    /// inner `Result` is its input's own outcome, so one faulted item
    /// never poisons its neighbors — the faulted worker routes through
    /// the same arena-quarantine path as
    /// [`InferenceSession::run_encrypted`], and the other items' logits
    /// are bit-identical to an unfaulted batch.
    pub fn run_batch(
        &mut self,
        model: &QModel,
        inputs: &[ITensor],
        sampler: &mut Sampler,
    ) -> Result<Vec<Result<EncryptedInference, AthenaError>>, AthenaError> {
        self.run_batch_with(model, inputs, sampler, &RunPolicy::default())
    }

    /// [`InferenceSession::run_batch`] under an explicit [`RunPolicy`].
    /// The policy applies to every item; a [`super::FaultPlan`] in it can
    /// scope faults to single items via `FaultSpec::on_input`.
    pub fn run_batch_with(
        &mut self,
        model: &QModel,
        inputs: &[ITensor],
        sampler: &mut Sampler,
        policy: &RunPolicy,
    ) -> Result<Vec<Result<EncryptedInference, AthenaError>>, AthenaError> {
        let Some(first) = inputs.first() else {
            return Ok(Vec::new());
        };
        for (i, input) in inputs.iter().enumerate() {
            if input.shape() != first.shape() {
                return Err(AthenaError::ShapeMismatch {
                    input: i,
                    expected: first.shape().to_vec(),
                    got: input.shape().to_vec(),
                });
            }
        }
        let entry = self
            .entry_for(model, first.shape())
            .map_err(AthenaError::from)?;
        type JobResult = Result<EncryptedInference, AthenaError>;
        let mut jobs: Vec<(usize, Sampler, Option<JobResult>)> = inputs
            .iter()
            .enumerate()
            .map(|(i, _)| (i, sampler.fork(), None))
            .collect();
        let engine = &self.engine;
        par::parallel_for_each_mut(&mut jobs, |(i, fork, out)| {
            // `run_one` already catches per-step unwinds and quarantines;
            // this outer catch is the backstop for a panic outside the
            // step loop, so a worker can never unwind through the pool —
            // and it, too, quarantines before reporting.
            *out = Some(
                catch_unwind(AssertUnwindSafe(|| {
                    run_one(engine, &entry, &inputs[*i], fork, policy, Some(*i))
                }))
                .unwrap_or_else(|payload| {
                    arena::quarantine();
                    Err(AthenaError::StepPanicked {
                        node: 0,
                        step: 0,
                        label: "batch",
                        payload: payload
                            .downcast_ref::<&str>()
                            .map(|s| (*s).to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "non-string panic payload".to_string()),
                    })
                }),
            );
        });
        Ok(jobs
            .into_iter()
            .map(|(_, _, out)| {
                out.unwrap_or(Err(AthenaError::StepPanicked {
                    node: 0,
                    step: 0,
                    label: "batch",
                    payload: "job never ran".to_string(),
                }))
            })
            .collect())
    }

    /// Looks up (moving the entry to the back of the LRU order) or
    /// compiles + keygens the artifact for `(model, input_shape)`.
    fn entry_for(
        &mut self,
        model: &QModel,
        input_shape: &[usize],
    ) -> Result<CacheEntry, CompileError> {
        let arena_cfg = ArenaConfig::for_engine(&self.engine);
        let key: CacheKey = (
            self.params_fp,
            fingerprint_model(model),
            input_shape.to_vec(),
            arena_cfg.fingerprint(),
        );
        if let Some(pos) = self.entries.iter().position(|e| e.key == key) {
            let entry = self.entries.remove(pos);
            self.entries.push(entry.clone());
            self.hits += 1;
            return Ok(entry);
        }
        self.misses += 1;
        let plan = Arc::new(try_compile(&self.engine, model, input_shape)?);
        let mut key_fork = self.key_sampler.fork();
        let (secrets, keys) = self.engine.keygen_for_plan(&plan, &mut key_fork);
        let entry = CacheEntry {
            key,
            plan,
            secrets: Arc::new(secrets),
            keys: Arc::new(keys),
            arena: Arc::new(ArenaLease::reserve(arena_cfg.reserve_bytes)),
        };
        if self.entries.len() == self.capacity {
            self.entries.remove(0);
        }
        self.entries.push(entry.clone());
        Ok(entry)
    }
}

/// Executes one input against a cached artifact under `policy`,
/// retrying transient faults with fresh encryption randomness.
///
/// Attempt 1 draws directly on `fork` (the request's sampler fork), so a
/// no-retry success is bit-identical to the pre-retry serving path; each
/// retry draws on a *fresh* sub-fork — the faulted attempt's randomness
/// is never replayed, since a deterministic replay of a deterministic
/// fault cannot succeed. Deterministic errors fail fast regardless of
/// the retry budget.
fn run_one(
    engine: &AthenaEngine,
    entry: &CacheEntry,
    input: &ITensor,
    fork: &mut Sampler,
    policy: &RunPolicy,
    input_idx: Option<usize>,
) -> Result<EncryptedInference, AthenaError> {
    let max_attempts = policy.retry.max_attempts.max(1);
    let mut attempt = 1u32;
    loop {
        let result = if attempt == 1 {
            execute_resilient(
                engine,
                &entry.secrets,
                &entry.keys,
                &entry.plan,
                input,
                fork,
                policy,
                attempt,
                input_idx,
            )
        } else {
            let mut retry_fork = fork.fork();
            execute_resilient(
                engine,
                &entry.secrets,
                &entry.keys,
                &entry.plan,
                input,
                &mut retry_fork,
                policy,
                attempt,
                input_idx,
            )
        };
        match result {
            Ok(run) => {
                return Ok(EncryptedInference {
                    logits: run.logits,
                    stats: run.stats,
                })
            }
            Err(e) if e.is_transient() && attempt < max_attempts => {
                if !policy.retry.backoff.is_zero() {
                    std::thread::sleep(policy.retry.backoff);
                }
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use athena_nn::qmodel::{Activation, QLinear, QuantConfig};

    fn model_with_scales(input_scale: f64, out_scale: f64) -> QModel {
        QModel {
            nodes: vec![athena_nn::qmodel::QNode {
                op: QOp::Linear(QLinear {
                    weight: ITensor::from_vec(&[1, 4, 1, 1], vec![1, -1, 2, 0]),
                    bias: vec![0],
                    stride: 1,
                    padding: 0,
                    is_fc: true,
                    act: Activation::Identity,
                    in_scale: 1.0,
                    w_scale: 0.5,
                    out_scale,
                }),
                input: 0,
                skip: None,
            }],
            input_scale,
            cfg: QuantConfig::new(3, 3),
        }
    }

    /// `-0.0` and `0.0` scales are semantically identical (they compare
    /// equal and flow identically through every scale product), so they
    /// must fingerprint — and therefore cache — identically.
    #[test]
    fn negative_zero_scale_fingerprints_equal() {
        let a = fingerprint_model(&model_with_scales(0.5, 0.0));
        let b = fingerprint_model(&model_with_scales(0.5, -0.0));
        assert_eq!(a, b, "-0.0 vs 0.0 out_scale must not split the cache");
        let a = fingerprint_model(&model_with_scales(0.0, 1.0));
        let b = fingerprint_model(&model_with_scales(-0.0, 1.0));
        assert_eq!(a, b, "-0.0 vs 0.0 input_scale must not split the cache");
    }

    /// All NaN payloads behave alike downstream; they must hash alike.
    #[test]
    fn nan_payloads_fingerprint_equal() {
        let q1 = f64::NAN;
        let q2 = f64::from_bits(f64::NAN.to_bits() ^ 0x1); // different payload
        assert!(q2.is_nan());
        assert_ne!(q1.to_bits(), q2.to_bits());
        let a = fingerprint_model(&model_with_scales(1.0, q1));
        let b = fingerprint_model(&model_with_scales(1.0, q2));
        assert_eq!(a, b, "NaN payloads must not split the cache");
    }

    /// Distinct ordinary scales still fingerprint apart (the
    /// normalization only merges the degenerate classes).
    #[test]
    fn distinct_scales_fingerprint_apart() {
        let a = fingerprint_model(&model_with_scales(1.0, 0.5));
        let b = fingerprint_model(&model_with_scales(1.0, 0.25));
        assert_ne!(a, b);
    }
}
