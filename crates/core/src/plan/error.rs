//! The unified error taxonomy of the serving path, and the run policy
//! (deadline + retry) the resilient executor enforces.
//!
//! Every failure a caller of [`super::InferenceSession`] or the resilient
//! executor ([`super::execute_resilient`]) can observe is an
//! [`AthenaError`] — a typed value naming the offending plan step, never a
//! raw panic payload. The taxonomy splits along one axis that matters for
//! serving: [`AthenaError::is_transient`]. Transient faults (a worker
//! panic, a poisoned scratch pool) may succeed on a retry with fresh
//! encryption randomness; deterministic faults (a compile rejection, a
//! shape mismatch, analytic noise exhaustion, missing key material) will
//! fail identically every time and are never retried.

use std::fmt;
use std::time::Duration;

use athena_fhe::FheError;

use super::exec::{NoiseExhausted, NoiseProbe};
use super::fault::FaultPlan;
use super::ir::CompileError;

/// Typed failure of a plan execution or session request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AthenaError {
    /// The model cannot be compiled for this engine (includes the
    /// compile-time noise-budget guardrail,
    /// [`CompileError::NoiseBudget`]).
    Compile(CompileError),
    /// Batch input `input`'s shape differs from the first input's (one
    /// batch shares one plan).
    ShapeMismatch {
        /// Index of the offending input.
        input: usize,
        /// Shape of the batch's first input.
        expected: Vec<usize>,
        /// Shape of the offending input.
        got: Vec<usize>,
    },
    /// A probed run measured its invariant-noise budget at zero.
    NoiseExhausted(NoiseExhausted),
    /// A rotation schedule needed a Galois key that was never generated.
    KeyMissing {
        /// Source node index of the step that needed the key.
        node: usize,
        /// Step index within the node.
        step: usize,
        /// Step label.
        label: &'static str,
        /// The absent Galois element.
        element: usize,
        /// The elements keys exist for.
        available: Vec<usize>,
    },
    /// The FHE substrate rejected a precondition mid-step (encoder
    /// lengths, packing capacity, LWE dimensions — see [`FheError`]).
    Fhe {
        /// Source node index of the offending step.
        node: usize,
        /// Step index within the node.
        step: usize,
        /// Step label.
        label: &'static str,
        /// The typed substrate fault.
        source: FheError,
    },
    /// The cooperative per-step deadline expired before the step started.
    DeadlineExceeded {
        /// Source node index of the step that would have run next.
        node: usize,
        /// Step index within the node.
        step: usize,
        /// Step label.
        label: &'static str,
        /// The deadline that expired.
        deadline: Duration,
    },
    /// A step panicked with a payload the executor could not type; the
    /// scratch arena was quarantined before returning.
    StepPanicked {
        /// Source node index of the panicking step.
        node: usize,
        /// Step index within the node.
        step: usize,
        /// Step label.
        label: &'static str,
        /// Stringified panic payload.
        payload: String,
    },
    /// A scratch-pool shard's lock was poisoned by a panicking holder;
    /// the pool recovered (flushing the shard) but the in-flight request
    /// was abandoned.
    PoolPoisoned {
        /// Shard-lock recoveries observed during the failed attempt.
        recoveries: usize,
        /// Stringified panic payload of the step that observed it.
        payload: String,
    },
}

impl fmt::Display for AthenaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AthenaError::Compile(e) => write!(f, "plan compilation failed: {e}"),
            AthenaError::ShapeMismatch {
                input,
                expected,
                got,
            } => write!(
                f,
                "batch input {input} has shape {got:?}, batch shape is {expected:?}"
            ),
            AthenaError::NoiseExhausted(e) => write!(f, "{e}"),
            AthenaError::KeyMissing {
                node,
                step,
                label,
                element,
                available,
            } => write!(
                f,
                "missing Galois key at node {node} step {step} ({label}): element {element}, \
                 available {available:?}"
            ),
            AthenaError::Fhe {
                node,
                step,
                label,
                source,
            } => write!(
                f,
                "FHE fault at node {node} step {step} ({label}): {source}"
            ),
            AthenaError::DeadlineExceeded {
                node,
                step,
                label,
                deadline,
            } => write!(
                f,
                "deadline of {deadline:?} exceeded before node {node} step {step} ({label})"
            ),
            AthenaError::StepPanicked {
                node,
                step,
                label,
                payload,
            } => write!(
                f,
                "step panicked at node {node} step {step} ({label}): {payload}"
            ),
            AthenaError::PoolPoisoned {
                recoveries,
                payload,
            } => write!(
                f,
                "scratch pool poisoned ({recoveries} shard recoveries): {payload}"
            ),
        }
    }
}

impl std::error::Error for AthenaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AthenaError::Compile(e) => Some(e),
            AthenaError::NoiseExhausted(e) => Some(e),
            AthenaError::Fhe { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<CompileError> for AthenaError {
    fn from(e: CompileError) -> Self {
        AthenaError::Compile(e)
    }
}

impl From<NoiseExhausted> for AthenaError {
    fn from(e: NoiseExhausted) -> Self {
        AthenaError::NoiseExhausted(e)
    }
}

impl AthenaError {
    /// Whether a retry with fresh encryption randomness could plausibly
    /// succeed. Compile rejections, shape mismatches, noise exhaustion,
    /// missing keys, substrate precondition faults, and expired deadlines
    /// are deterministic — the same request fails the same way every time
    /// — so the retry loop fails fast on them. Panics and pool poisoning
    /// are environmental and worth one more attempt.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            AthenaError::StepPanicked { .. } | AthenaError::PoolPoisoned { .. }
        )
    }

    /// A stable short name of the variant, for reports and log lines.
    pub fn kind(&self) -> &'static str {
        match self {
            AthenaError::Compile(_) => "compile",
            AthenaError::ShapeMismatch { .. } => "shape-mismatch",
            AthenaError::NoiseExhausted(_) => "noise-exhausted",
            AthenaError::KeyMissing { .. } => "key-missing",
            AthenaError::Fhe { .. } => "fhe",
            AthenaError::DeadlineExceeded { .. } => "deadline-exceeded",
            AthenaError::StepPanicked { .. } => "step-panicked",
            AthenaError::PoolPoisoned { .. } => "pool-poisoned",
        }
    }
}

/// Retry discipline of a session request: how many attempts a transient
/// fault earns, with a fixed backoff between them. Retries re-encrypt
/// with a *fresh* sampler fork — the faulted attempt's randomness is
/// never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (1 = no retries).
    pub max_attempts: u32,
    /// Sleep between attempts.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 1,
            backoff: Duration::ZERO,
        }
    }
}

/// Execution policy of one session request: deadline, retries, noise
/// probing, and the (test-only) fault plan to inject.
#[derive(Debug, Clone, Default)]
pub struct RunPolicy {
    /// Cooperative per-request deadline, checked before every step; the
    /// granularity is one step, so a step already running is never
    /// interrupted.
    pub deadline: Option<Duration>,
    /// Retry discipline for transient faults.
    pub retry: RetryPolicy,
    /// Whether to probe the measured noise budget after every
    /// RLWE-producing step (needs the secret key; tests/debugging only).
    pub probe: Option<NoiseProbe>,
    /// Faults to inject (chaos testing); `None` in production.
    pub faults: Option<FaultPlan>,
}

impl RunPolicy {
    /// A policy with `deadline` set.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// A policy with `retry` set.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// A policy with the noise probe on.
    pub fn with_probe(mut self) -> Self {
        self.probe = Some(NoiseProbe::On);
        self
    }

    /// A policy injecting `faults`.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = Some(faults);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transience_splits_the_taxonomy() {
        let transient = [
            AthenaError::StepPanicked {
                node: 0,
                step: 1,
                label: "pack",
                payload: "boom".into(),
            },
            AthenaError::PoolPoisoned {
                recoveries: 1,
                payload: "boom".into(),
            },
        ];
        for e in &transient {
            assert!(e.is_transient(), "{e}");
        }
        let deterministic = [
            AthenaError::ShapeMismatch {
                input: 2,
                expected: vec![1, 5, 5],
                got: vec![1, 4, 4],
            },
            AthenaError::NoiseExhausted(NoiseExhausted {
                node: 0,
                step: 3,
                label: "fbs",
                budget: -1,
                analytic_bits: 40,
                consumed: None,
            }),
            AthenaError::KeyMissing {
                node: 0,
                step: 2,
                label: "s2c",
                element: 3,
                available: vec![5, 9],
            },
            AthenaError::DeadlineExceeded {
                node: 0,
                step: 0,
                label: "linear",
                deadline: Duration::ZERO,
            },
        ];
        for e in &deterministic {
            assert!(!e.is_transient(), "{e}");
        }
    }

    #[test]
    fn display_names_the_step() {
        let e = AthenaError::StepPanicked {
            node: 2,
            step: 5,
            label: "fbs",
            payload: "injected".into(),
        };
        let s = e.to_string();
        assert!(s.contains("node 2"), "{s}");
        assert!(s.contains("step 5"), "{s}");
        assert!(s.contains("fbs"), "{s}");
        assert_eq!(e.kind(), "step-panicked");
    }

    #[test]
    fn fhe_source_is_chained() {
        use std::error::Error;
        let e = AthenaError::Fhe {
            node: 1,
            step: 0,
            label: "pack",
            source: FheError::PackCapacity {
                lwes: 200,
                slots: 128,
            },
        };
        assert!(e.source().is_some());
        assert!(e.to_string().contains("more LWE ciphertexts than slots"));
    }
}
