//! The execution-plan IR: a typed, per-layer step program compiled from a
//! [`athena_nn::qmodel::QModel`] ahead of any ciphertext work.
//!
//! The planner ([`compile`]) resolves everything that is static for a
//! (model, engine) pair up front — consumer layouts, output-channel group
//! splits, encoded kernels and bias positions, materialized remap LUTs,
//! Galois-element and key requirements, and per-step *analytic* operation
//! counts. Execution is one generic interpreter (`exec::run_step`)
//! parameterized by a [`PlanBackend`] — the step structure, group
//! accumulation, residual re-extraction, and pooling decompositions are
//! written once and retargeted across three backends:
//!
//! * [`EncryptedBackend`] ([`execute`] / [`execute_probed`]) — real
//!   RNS-BFV via the [`crate::pipeline::AthenaEngine`] primitives,
//!   bit-identical to the pre-plan `infer::run_encrypted` path — every
//!   step is exact modular arithmetic, so re-grouping the loop cannot
//!   change a single coefficient;
//! * [`NoiseSimBackend`] ([`execute_sim`]) — the §3.2.2 noise-faithful
//!   integer simulation, driven step-by-step from the same compiled plan
//!   (exact plain-Q semantics at σ = 0, `e_ms` injection at every LWE
//!   drop otherwise);
//! * [`CountingBackend`] ([`execute_counting`]) — a value-free dry run
//!   producing the per-step analytic [`crate::trace::OpCounts`] that
//!   `compile` backfills into [`PlanStep::analytic`], so analytic
//!   accounting is literally the same code path as execution.
//!
//! Two more consumers hang off the same plan:
//! [`ExecutionPlan::to_trace`], which derives the
//! [`crate::trace::ModelTrace`] the accelerator model lowers to
//! cycles/energy, and [`crate::pipeline::AthenaEngine::keygen_for_plan`],
//! which generates
//! exactly the deduplicated key material [`ExecutionPlan::required_keys`]
//! demands and validates Galois coverage with `ensure_covers`. On top,
//! [`InferenceSession`] caches compiled plans + key material in an LRU
//! and batches encrypted requests over the worker pool.
//!
//! Step vocabulary: `Linear` (coefficient-encoded conv/FC group),
//! `ModSwitch` (Q → q_mid), `ExtractLwes` (Alg. 1 sample extraction),
//! `DimSwitch` (LWE N → n, optionally dropping to `t`), `ResidualAdd`
//! (skip-path extraction + LWE-level scaled add), `Pack` (LWE → RLWE
//! homomorphic decryption), `Fbs` (the fused remap LUT of Alg. 2), `S2C`
//! (slots back to coefficients), the pooling composites
//! `MaxReduce`/`AvgReduce` (LWE-level trees over the accumulator), and
//! `Output` (client-side decrypt + dequantize).

//!
//! The serving path is *resilient*: [`execute_resilient`] isolates every
//! step behind `catch_unwind` with scratch-arena quarantine on unwind,
//! enforces a cooperative [`RunPolicy`] deadline, and surfaces every
//! failure as a typed [`AthenaError`]; the seeded fault-injection harness
//! ([`FaultPlan`] / [`FaultInjectingBackend`]) drives those paths in the
//! chaos tests.

mod backend;
mod error;
mod exec;
mod fault;
mod ir;
mod session;

pub use backend::{CountingBackend, EncryptedBackend, NoiseSimBackend, PlanBackend, SimLwe};
pub use error::{AthenaError, RetryPolicy, RunPolicy};
pub(crate) use exec::drive_plain;
pub use exec::{
    execute, execute_counting, execute_probed, execute_resilient, execute_sim, NoiseExhausted,
    NoiseProbe, PlanRun, SimRun, StepReport,
};
pub use fault::{FaultInjectingBackend, FaultKind, FaultPlan, FaultSpec, FaultTarget};
pub(crate) use ir::validate_model;
pub use ir::{
    compile, counts_from_hom, try_compile, CompileError, ExecutionPlan, KeyRequirements, PlanLayer,
    PlanStep, StepOp,
};
pub use session::{InferenceSession, SessionStats};
